# Build, test, and benchmark entry points. `make verify` is the tier-1
# gate (see ROADMAP.md); `make test-race` must also stay green since
# the batch-mining engine runs annotation, CRF training, and K-Means on
# worker pools.

GO ?= go

.PHONY: build vet test test-race verify bench bench-parallel tables clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over every package; exercises the worker pool,
# sharded CRF trainer, and parallel K-Means under -race.
test-race:
	$(GO) test -race ./...

verify: build vet test

# Full benchmark suite (quality tables + hot-kernel micro benches).
bench:
	$(GO) test . -run '^$$' -bench . -benchtime 3x

# Serial-vs-parallel twins of the batch engine only; the scaling factor
# on a machine is the ratio of the twins' */sec metrics.
bench-parallel:
	$(GO) test . -run '^$$' -bench 'AnnotateCorpus|AnnotateRunParallel|CRFTrain|KMeans(Serial|Parallel)' -benchtime 3x

# Paper-scale artifact generation.
tables:
	$(GO) run ./cmd/benchtables

clean:
	$(GO) clean ./...
