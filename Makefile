# Build, test, and benchmark entry points. `make verify` is the tier-1
# gate (see ROADMAP.md); `make test-race` must also stay green since
# the batch-mining engine runs annotation, CRF training, and K-Means on
# worker pools.

GO ?= go

.PHONY: build vet test test-race verify bench bench-parallel tables crash-test fuzz-smoke clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over every package; exercises the worker pool,
# sharded CRF trainer, and parallel K-Means under -race.
test-race:
	$(GO) test -race ./...

verify: build vet test

# Full benchmark suite (quality tables + hot-kernel micro benches).
bench:
	$(GO) test . -run '^$$' -bench . -benchtime 3x

# Serial-vs-parallel twins of the batch engine only; the scaling factor
# on a machine is the ratio of the twins' */sec metrics.
bench-parallel:
	$(GO) test . -run '^$$' -bench 'AnnotateCorpus|AnnotateRunParallel|CRFTrain|KMeans(Serial|Parallel)' -benchtime 3x

# Crash-safety drills: kill-at-exact-call-count mining resumes
# (byte-identical), store crash windows, checkpoint torn-tail
# recovery, and hot-reload rejection paths.
crash-test:
	$(GO) test ./cmd/recipemine -run 'TestMine(Crash|Resume|Interrupt|Refuses)' -count=1
	$(GO) test ./internal/checkpoint ./internal/persist -count=1
	$(GO) test ./internal/server -run 'TestReload' -count=1

# Short fuzz passes over the model-load boundary — enough to catch a
# decode-hardening regression in CI without a long fuzz budget.
fuzz-smoke:
	$(GO) test ./internal/persist -run '^$$' -fuzz 'FuzzLoadBundle' -fuzztime 15s
	$(GO) test ./internal/persist -run '^$$' -fuzz 'FuzzLoadTagger' -fuzztime 15s

# Paper-scale artifact generation.
tables:
	$(GO) run ./cmd/benchtables

clean:
	$(GO) clean ./...
