# Build, test, and benchmark entry points. `make verify` is the tier-1
# gate (see ROADMAP.md); `make test-race` must also stay green since
# the batch-mining engine runs annotation, CRF training, and K-Means on
# worker pools.

GO ?= go

.PHONY: build vet test test-race verify lint staticcheck bench bench-parallel tables crash-test poison-test fuzz-smoke clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over every package; exercises the worker pool,
# sharded CRF trainer, and parallel K-Means under -race.
test-race:
	$(GO) test -race ./...

verify: build vet test lint staticcheck

# Project-specific static analysis (DESIGN §11): the recipelint rule
# suite enforces the invariants the reproduction rests on — determinism
# of the modeling packages, context threading, durable-write
# discipline, fault-point hygiene, and the quarantine error taxonomy.
# Built on the stdlib go/types toolchain, so it needs nothing beyond
# the Go toolchain itself.
lint:
	$(GO) run ./cmd/recipelint ./...

# Static analysis beyond vet. The tool is not vendored: when it is
# absent the target skips with a notice instead of failing, so `make
# verify` works on a bare toolchain; CI installs a pinned version and
# runs it for real.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi

# Full benchmark suite (quality tables + hot-kernel micro benches).
bench:
	$(GO) test . -run '^$$' -bench . -benchtime 3x

# Serial-vs-parallel twins of the batch engine only; the scaling factor
# on a machine is the ratio of the twins' */sec metrics.
bench-parallel:
	$(GO) test . -run '^$$' -bench 'AnnotateCorpus|AnnotateRunParallel|CRFTrain|KMeans(Serial|Parallel)' -benchtime 3x

# Crash-safety drills: kill-at-exact-call-count mining resumes
# (byte-identical), store crash windows, checkpoint torn-tail
# recovery, and hot-reload rejection paths.
crash-test:
	$(GO) test ./cmd/recipemine -run 'TestMine(Crash|Resume|Interrupt|Refuses)' -count=1
	$(GO) test ./internal/checkpoint ./internal/persist -count=1
	$(GO) test ./internal/server -run 'TestReload' -count=1

# Poison-record drills: an index-targeted panic at any batch position
# costs exactly that record — survivors byte-identical, one typed
# dead-letter line, resume arithmetic intact.
poison-test:
	$(GO) test ./cmd/recipemine -run 'TestMinePoison' -count=1
	$(GO) test ./internal/core -run 'TestContained|TestPartial|TestModelRecipesPartial|TestInstructionsPartial' -count=1

# Short fuzz passes over the model-load boundary and the end-to-end
# annotate path (arbitrary bytes through sanitizer, tagger, parser) —
# enough to catch a hardening regression in CI without a long budget.
fuzz-smoke:
	$(GO) test ./internal/persist -run '^$$' -fuzz 'FuzzLoadBundle' -fuzztime 15s
	$(GO) test ./internal/persist -run '^$$' -fuzz 'FuzzLoadTagger' -fuzztime 15s
	$(GO) test ./internal/core -run '^$$' -fuzz 'FuzzAnnotateIngredient' -fuzztime 15s
	$(GO) test ./internal/core -run '^$$' -fuzz 'FuzzAnnotateInstruction' -fuzztime 15s

# Paper-scale artifact generation.
tables:
	$(GO) run ./cmd/benchtables

clean:
	$(GO) clean ./...
