# Build, test, and benchmark entry points. `make verify` is the tier-1
# gate (see ROADMAP.md); `make test-race` must also stay green since
# the batch-mining engine runs annotation, CRF training, and K-Means on
# worker pools.

GO ?= go

.PHONY: build vet test test-race verify lint staticcheck bench bench-parallel bench-smoke bench-baseline bench-compare bench-tiers profile tables crash-test poison-test herd-test tier-test query-chaos-test fuzz-smoke clean

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over every package; exercises the worker pool,
# sharded CRF trainer, and parallel K-Means under -race.
test-race:
	$(GO) test -race ./...

verify: build vet test lint staticcheck

# Project-specific static analysis (DESIGN §11, §16): the recipelint
# rule suite enforces the invariants the reproduction rests on —
# determinism of the modeling packages, context threading, durable-
# write discipline, fault-point hygiene, the quarantine error
# taxonomy, and since PR 10 the concurrency contracts (lock discipline,
# pool lifetimes, generation pinning, sleep-free tests). The load
# includes _test.go universes, so test code is linted too. -budget
# pins the //recipelint:allow count to the checked-in
# lint-budget.json: a new suppression fails the build until the budget
# is raised in the same change. Built on the stdlib go/types
# toolchain, so it needs nothing beyond the Go toolchain itself.
lint:
	$(GO) run ./cmd/recipelint -budget lint-budget.json ./...

# Static analysis beyond vet. The tool is not vendored: when it is
# absent the target skips with a notice instead of failing, so `make
# verify` works on a bare toolchain; CI installs a pinned version and
# runs it for real.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it pinned)"; \
	fi

# Full benchmark suite (quality tables + hot-kernel micro benches).
bench:
	$(GO) test . -run '^$$' -bench . -benchtime 3x

# Serial-vs-parallel twins of the batch engine only; the scaling factor
# on a machine is the ratio of the twins' */sec metrics.
bench-parallel:
	$(GO) test . -run '^$$' -bench 'AnnotateCorpus|AnnotateRunParallel|CRFTrain|KMeans(Serial|Parallel)' -benchtime 3x

# One-iteration pass over the hot-path benchmarks: catches a benchmark
# that no longer compiles or crashes without paying full measurement
# cost. CI runs this on every push.
bench-smoke:
	$(GO) test . -run '^$$' -bench 'AnnotateCorpusSerial|CRFDecode|Tokenizer|POSTagger' -benchtime 1x
	$(GO) test ./internal/ner ./internal/crf ./internal/postag ./internal/tokenize -run '^$$' -bench . -benchtime 1x

# Compare HEAD's hot-path throughput against a saved baseline.
#   make bench-baseline   # record the current numbers
#   ...hack...
#   make bench-compare    # re-run and print old vs new side by side
# The baseline lives in /tmp by default (BENCH_BASELINE=path to
# override) — it is machine-specific and should not be committed;
# BENCH_PR*.json are the curated, committed snapshots.
BENCH_BASELINE ?= /tmp/recipemodel-bench-baseline.txt
BENCH_PATTERN  ?= AnnotateCorpusSerial|AnnotateCorpusParallel|CRFDecode
bench-baseline:
	$(GO) test . -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 10x | tee $(BENCH_BASELINE)

bench-compare:
	@test -f $(BENCH_BASELINE) || { echo "no baseline at $(BENCH_BASELINE); run 'make bench-baseline' first"; exit 1; }
	$(GO) test . -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 10x | tee /tmp/recipemodel-bench-head.txt
	@echo "--- baseline ($(BENCH_BASELINE)) vs HEAD ---"
	@grep '^Benchmark' $(BENCH_BASELINE) | while read -r line; do \
		name=$$(echo "$$line" | awk '{print $$1}'); \
		new=$$(grep "^$$name " /tmp/recipemodel-bench-head.txt || true); \
		echo "old: $$line"; \
		echo "new: $$new"; \
	done

# CPU + heap profile of an end-to-end mining run (train + mine). Open
# with: go tool pprof cpu.prof (or mem.prof). See README "Profiling".
PROFILE_N ?= 2000
profile: build
	$(GO) run ./cmd/recipemine mine -n $(PROFILE_N) -cpuprofile cpu.prof -memprofile mem.prof > /dev/null
	@echo "wrote cpu.prof and mem.prof (n=$(PROFILE_N)); inspect with: go tool pprof -top cpu.prof"

# Crash-safety drills: kill-at-exact-call-count mining resumes
# (byte-identical), store crash windows, checkpoint torn-tail
# recovery, and hot-reload rejection paths.
crash-test:
	$(GO) test ./cmd/recipemine -run 'TestMine(Crash|Resume|Interrupt|Refuses)' -count=1
	$(GO) test ./internal/checkpoint ./internal/persist -count=1
	$(GO) test ./internal/server -run 'TestReload' -count=1

# Poison-record drills: an index-targeted panic at any batch position
# costs exactly that record — survivors byte-identical, one typed
# dead-letter line, resume arithmetic intact.
poison-test:
	$(GO) test ./cmd/recipemine -run 'TestMinePoison' -count=1
	$(GO) test ./internal/core -run 'TestContained|TestPartial|TestModelRecipesPartial|TestInstructionsPartial' -count=1

# Heavy-tail chaos drills (DESIGN §13), under -race: a duplicated-
# phrase herd replayed at worker counts 1 and 4 while a hot reload or
# a leader kill lands mid-herd, every response byte-identical to an
# uncached serial oracle; plus the 1000-strong herd that must decode
# exactly once, the reload-mid-herd generation pinning, and the
# degraded-mode (saturated limiter) posture. All disruption timing is
# fault-point driven — no sleeps.
herd-test:
	$(GO) test -race ./internal/server -run 'TestHerdChaos|TestHerdCoalescesToOneDecode|TestReloadDuringHerdNoStaleGenerationServed|TestDegradedModeHitsServedMissesShed' -count=1
	$(GO) test -race ./internal/flight ./internal/cache -count=1

# Degradation-ladder chaos drills (DESIGN §15), under -race: the
# trip→degrade→recover drill (CRF tier switched dead: zero 5xx, every
# miss answers 200 tier:"rules", the breaker trips and then recovers
# on an injected clock within the probe budget), the differential
# byte-identity contract (rules tier + breaker configured, routing
# off: responses identical to the pre-tier server), the saturated-miss
# and mixed-batch ladder rungs, plus the breaker and rules-tier unit
# drills. No sleeps anywhere — breaker time is clock-injected.
tier-test:
	$(GO) test -race ./internal/server -run 'TestTier' -count=1
	$(GO) test -race ./internal/breaker ./internal/rules -count=1

# Sharded-query chaos drills (DESIGN §14), under -race: kill one of N
# shards mid-query (every response degraded yet byte-identical to the
# serial oracle restricted to the survivors), reload a new snapshot
# while a query is in flight (generation pinning: the in-flight answer
# stays on the old version), and publish a torn snapshot (rejected
# with the previous version still serving). Disruption timing is
# fault-point driven — no sleeps.
query-chaos-test:
	$(GO) test -race ./internal/server -run 'TestQueryChaos' -count=1
	$(GO) test -race ./internal/snapshot -count=1

# Short fuzz passes over the model-load boundary, the end-to-end
# annotate path (arbitrary bytes through sanitizer, tagger, parser),
# and the snapshot manifest/segment loader — enough to catch a
# hardening regression in CI without a long budget.
fuzz-smoke:
	$(GO) test ./internal/persist -run '^$$' -fuzz 'FuzzLoadBundle' -fuzztime 15s
	$(GO) test ./internal/persist -run '^$$' -fuzz 'FuzzLoadTagger' -fuzztime 15s
	$(GO) test ./internal/core -run '^$$' -fuzz 'FuzzAnnotateIngredient' -fuzztime 15s
	$(GO) test ./internal/core -run '^$$' -fuzz 'FuzzAnnotateInstruction' -fuzztime 15s
	$(GO) test ./internal/snapshot -run '^$$' -fuzz 'FuzzLoadSnapshot' -fuzztime 15s

# Rules-tier vs CRF-tier score card (DESIGN §15/§16): per-tier entity
# F1 and single-goroutine phrases/sec on the shared gold ingredient
# corpus. The committed BENCH_PR10.json is this target's output.
bench-tiers:
	$(GO) run ./cmd/benchtiers -out BENCH_PR10.json

# Paper-scale artifact generation.
tables:
	$(GO) run ./cmd/benchtables

clean:
	$(GO) clean ./...
