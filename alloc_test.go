// The race runtime instruments allocations of its own, so
// AllocsPerRun counts are only meaningful in normal builds.
//go:build !race

package recipemodel

import (
	"testing"

	"recipemodel/internal/ner"
	"recipemodel/internal/tokenize"
)

// Steady-state allocation regression caps. The compiled fast path
// makes extraction and decoding allocation-free; what remains per
// phrase is the record's own output strings (joins, lowering, field
// splits in RecordFromSpans) plus sanitization. The cap is set with a
// little headroom over the worst measured phrase (7) so a regression
// that reintroduces per-token allocation — tokens × features × labels
// would blow far past it — fails loudly, while GC-timing noise does
// not.
const maxAllocsPerPhrase = 10

// TestAnnotateIngredientAllocCap pins the steady-state allocation
// count of the public single-phrase path.
func TestAnnotateIngredientAllocCap(t *testing.T) {
	p := pipe(t)
	phrases := []string{
		"1 (8 ounce) package cream cheese, softened",
		"2 cups chopped fresh basil",
		"salt to taste",
		"1 1/2 pounds skinless, boneless chicken breast halves",
	}
	for _, ph := range phrases {
		p.AnnotateIngredient(ph) // warm the pools
		allocs := testing.AllocsPerRun(200, func() {
			p.AnnotateIngredient(ph)
		})
		if allocs > maxAllocsPerPhrase {
			t.Errorf("AnnotateIngredient(%q) allocates %.1f per call, cap %d",
				ph, allocs, maxAllocsPerPhrase)
		}
	}
}

// TestCompiledDecodePathZeroAlloc pins the stronger invariant under
// the cap: the compiled extract→decode→span path itself performs zero
// heap allocations in steady state. Everything AnnotateIngredient
// still allocates is record assembly, not tagging.
func TestCompiledDecodePathZeroAlloc(t *testing.T) {
	p := pipe(t)
	tagger := p.inner.IngredientNER
	if !tagger.Compiled() {
		t.Fatal("ingredient tagger did not compile")
	}
	tokens := tokenize.Words(tokenize.Tokenize("1 ( 8 ounce ) package cream cheese , softened"))
	spans := make([]ner.Span, 0, 16)
	spans = tagger.AppendPredict(spans[:0], tokens) // warm the pool
	if len(spans) == 0 {
		t.Fatal("no spans predicted")
	}
	allocs := testing.AllocsPerRun(200, func() {
		spans = tagger.AppendPredict(spans[:0], tokens)
	})
	if allocs != 0 {
		t.Errorf("compiled AppendPredict allocates %.1f per call, want 0", allocs)
	}
}
