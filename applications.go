package recipemodel

import (
	"math/rand"

	"recipemodel/internal/core"
	"recipemodel/internal/cuisine"
	"recipemodel/internal/flowgraph"
	"recipemodel/internal/graph"
	"recipemodel/internal/index"
	"recipemodel/internal/textgen"
	"recipemodel/internal/translate"
)

// This file exposes the downstream applications the paper motivates
// (§I, §IV): knowledge graphs over mined models, cuisine prediction
// from ingredient names, structure-based translation, and novel-recipe
// generation.

// KnowledgeGraph accumulates mined recipe models into a graph of
// ingredients, utensils and processes (§IV).
type KnowledgeGraph = graph.Graph

// GraphNode identifies a knowledge-graph node.
type GraphNode = graph.Node

// WeightedNode pairs a node with an occurrence count.
type WeightedNode = graph.Weighted

// Knowledge-graph node kinds.
const (
	NodeIngredient = graph.Ingredient
	NodeUtensil    = graph.Utensil
	NodeProcess    = graph.Process
)

// BuildKnowledgeGraph folds mined models into a fresh knowledge graph.
func BuildKnowledgeGraph(models []*RecipeModel) *KnowledgeGraph {
	g := graph.New()
	for _, m := range models {
		g.AddRecipe(m)
	}
	return g
}

// Translate renders a mined model in the target language ("fr" or
// "es") using per-field dictionary lookup over the structure — the
// translation application of §IV.
func Translate(m *RecipeModel, lang string) (string, error) {
	tr, err := translate.New(translate.Lang(lang))
	if err != nil {
		return "", err
	}
	return tr.Recipe(m), nil
}

// GeneratedRecipe is a novel recipe composed from a knowledge graph.
type GeneratedRecipe = textgen.Recipe

// GenerateRecipe composes a novel recipe from the knowledge graph,
// seeded by an ingredient name (empty = most common) — the
// recipe-generation application of §IV.
func GenerateRecipe(g *KnowledgeGraph, seedIngredient string, seed int64) (GeneratedRecipe, error) {
	return textgen.Compose(g, seedIngredient, textgen.Config{}, rand.New(rand.NewSource(seed)))
}

// CuisineClassifier predicts a recipe's cuisine from its mined
// ingredient names (§I's cuisine-prediction use case).
type CuisineClassifier = cuisine.Classifier

// CuisineExample is one labeled training instance for the cuisine
// classifier.
type CuisineExample = cuisine.Example

// TrainCuisineClassifier fits a naive Bayes cuisine model.
func TrainCuisineClassifier(examples []CuisineExample) *CuisineClassifier {
	return cuisine.Train(examples)
}

// ScaleRecipe returns a copy of the model with every parseable
// quantity multiplied by num/den, rendered back in recipe notation —
// e.g. doubling "1 1/2 cups" to "3 cups" exactly. Unparseable
// quantities carry over verbatim.
func ScaleRecipe(m *RecipeModel, num, den int64) *RecipeModel {
	return core.ScaleRecipe(m, num, den)
}

// FlowGraph is the dataflow DAG of a recipe: raw ingredients flow
// through actions into intermediate mixtures and finally the dish
// (the flow-graph representation of Mori et al. that the paper cites
// as prior work and subsumes).
type FlowGraph = flowgraph.Graph

// FlowNode is one flow-graph vertex.
type FlowNode = flowgraph.Node

// BuildFlowGraph converts a mined model into its dataflow graph.
func BuildFlowGraph(m *RecipeModel) *FlowGraph {
	return flowgraph.Build(m)
}

// RecipeIndex is a structured retrieval index over mined models.
type RecipeIndex = index.Index

// RecipeQuery is a conjunctive structured query over the mined facets.
type RecipeQuery = index.Query

// FacetPair is a (process, ingredient) or (ingredient, state)
// combination used in structured queries.
type FacetPair = index.Pair

// BuildIndex indexes mined models for structured search.
func BuildIndex(models []*RecipeModel) *RecipeIndex {
	return index.New(models)
}

// CuisineExamplesFrom converts mined models with known cuisines into
// training examples.
func CuisineExamplesFrom(models []*RecipeModel) []CuisineExample {
	out := make([]CuisineExample, 0, len(models))
	for _, m := range models {
		ex := CuisineExample{Cuisine: m.Cuisine}
		for _, r := range m.Ingredients {
			if r.Name != "" {
				ex.Ingredients = append(ex.Ingredients, r.Name)
			}
		}
		out = append(out, ex)
	}
	return out
}
