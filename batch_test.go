package recipemodel

import (
	"reflect"
	"testing"
)

// batchAt runs fn with the shared pipeline temporarily pinned to the
// given worker count, restoring the previous bound afterwards.
func batchAt[R any](t *testing.T, workers int, fn func(p *Pipeline) R) R {
	t.Helper()
	p := pipe(t)
	prev := p.Workers()
	p.SetWorkers(workers)
	defer p.SetWorkers(prev)
	return fn(p)
}

var batchPhrases = []string{
	"1 sheet frozen puff pastry ( thawed )",
	"2 cups chopped onion",
	"6 ounces blue cheese , at room temperature",
	"1/2 teaspoon fresh thyme , minced",
	"2-3 medium tomatoes",
	"1 teaspoon extra virgin olive oil",
	"1 tablespoon whole milk",
	"100 grams sugar",
}

// TestAnnotateIngredientsMatchesSerial is the determinism contract of
// the batch API: workers=1 and workers=8 must produce identical
// records, each identical to the single-phrase method.
func TestAnnotateIngredientsMatchesSerial(t *testing.T) {
	serial := batchAt(t, 1, func(p *Pipeline) []IngredientRecord {
		return p.AnnotateIngredients(batchPhrases)
	})
	if len(serial) != len(batchPhrases) {
		t.Fatalf("want %d records, got %d", len(batchPhrases), len(serial))
	}
	for i, phrase := range batchPhrases {
		if one := pipe(t).AnnotateIngredient(phrase); !reflect.DeepEqual(one, serial[i]) {
			t.Fatalf("batch[%d] != AnnotateIngredient(%q):\n%+v\n%+v", i, phrase, serial[i], one)
		}
	}
	for _, w := range []int{2, 8} {
		par := batchAt(t, w, func(p *Pipeline) []IngredientRecord {
			return p.AnnotateIngredients(batchPhrases)
		})
		if !reflect.DeepEqual(par, serial) {
			t.Fatalf("workers=%d batch diverged from serial", w)
		}
	}
}

// TestAnnotateInstructionsMatchesSerial covers the instruction stack:
// spans, parse trees and relations must all agree across worker
// counts.
func TestAnnotateInstructionsMatchesSerial(t *testing.T) {
	steps := []string{
		"Bring the water to a boil in a large pot.",
		"Add the chopped tomatoes to the skillet.",
		"Preheat the oven to 375 °F.",
		"Mix the flour and sugar in a bowl.",
		"Simmer for 10 minutes.",
	}
	serial := batchAt(t, 1, func(p *Pipeline) []InstructionAnnotation {
		return p.AnnotateInstructions(steps)
	})
	par := batchAt(t, 8, func(p *Pipeline) []InstructionAnnotation {
		return p.AnnotateInstructions(steps)
	})
	if !reflect.DeepEqual(par, serial) {
		t.Fatal("workers=8 instruction batch diverged from serial")
	}
	for i, a := range serial {
		if a.Step != steps[i] {
			t.Fatalf("annotation %d is for %q, want %q", i, a.Step, steps[i])
		}
		if a.Tree == nil {
			t.Fatalf("annotation %d has no parse tree", i)
		}
	}
}

// TestModelRecipesMatchesSerial checks corpus mining end to end.
func TestModelRecipesMatchesSerial(t *testing.T) {
	inputs := Inputs(SyntheticRecipes(6, 42))
	serial := batchAt(t, 1, func(p *Pipeline) []*RecipeModel {
		return p.ModelRecipes(inputs)
	})
	par := batchAt(t, 8, func(p *Pipeline) []*RecipeModel {
		return p.ModelRecipes(inputs)
	})
	if !reflect.DeepEqual(par, serial) {
		t.Fatal("workers=8 recipe mining diverged from serial")
	}
	for i, m := range serial {
		if m.Title != inputs[i].Title {
			t.Fatalf("model %d is %q, want %q", i, m.Title, inputs[i].Title)
		}
		if len(m.Ingredients) == 0 {
			t.Fatalf("model %d mined no ingredients", i)
		}
	}
}

// TestClusterPhrasesDeterministic: the now-parallel clustering path
// must stay a pure function of (phrases, k, seed).
func TestClusterPhrasesDeterministic(t *testing.T) {
	phrases := make([]string, 0, 40)
	for _, r := range SyntheticRecipes(8, 3) {
		phrases = append(phrases, r.IngredientLines...)
	}
	a1, p1, err := ClusterPhrases(phrases, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	a2, p2, err := ClusterPhrases(phrases, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) || !reflect.DeepEqual(p1, p2) {
		t.Fatal("ClusterPhrases is not deterministic across runs")
	}
}

// TestSetWorkersBounds pins the knob's contract.
func TestSetWorkersBounds(t *testing.T) {
	p := pipe(t)
	prev := p.Workers()
	defer p.SetWorkers(prev)
	p.SetWorkers(3)
	if p.Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", p.Workers())
	}
	p.SetWorkers(0)
	if p.Workers() < 1 {
		t.Fatalf("SetWorkers(0) must reset to >= 1, got %d", p.Workers())
	}
}
