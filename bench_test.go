package recipemodel

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index), plus the
// ablation benches of DESIGN.md §5 and micro-benchmarks of the hot
// kernels. Experiment benches run at 1/10 paper scale per iteration
// and report the headline quality metric via b.ReportMetric; the
// paper-scale artifacts are produced by cmd/benchtables.

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"recipemodel/internal/cluster"
	"recipemodel/internal/corpus"
	"recipemodel/internal/crf"
	"recipemodel/internal/depparse"
	"recipemodel/internal/experiments"
	"recipemodel/internal/mathx"
	"recipemodel/internal/ner"
	"recipemodel/internal/postag"
	"recipemodel/internal/recipedb"
	"recipemodel/internal/tokenize"
)

// benchCfg is the shared 1/10-scale experiment configuration.
func benchCfg() experiments.Config {
	return experiments.DefaultConfig().Scaled(10)
}

var (
	benchPipeOnce sync.Once
	benchPipe     *Pipeline
)

func benchPipeline(b *testing.B) *Pipeline {
	b.Helper()
	benchPipeOnce.Do(func() {
		p, err := NewPipeline(DefaultOptions())
		if err != nil {
			panic(err)
		}
		benchPipe = p
	})
	return benchPipe
}

// --- Table benches ---

// BenchmarkTableI annotates the paper's seven example phrases.
func BenchmarkTableI(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, phrase := range experiments.TableIExamples {
			rec := p.AnnotateIngredient(phrase)
			if rec.Name == "" && rec.Quantity == "" {
				b.Fatalf("empty record for %q", phrase)
			}
		}
	}
}

// BenchmarkTableIII measures the training-set construction pipeline:
// phrase generation, POS embedding, K-Means, stratified sampling.
func BenchmarkTableIII(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunIngredient(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.TrainSize[experiments.CorpusBoth]), "train-size")
	}
}

// BenchmarkTableIV measures the full 3×3 cross-evaluation and reports
// the diagonal and weakest-cell F1.
func BenchmarkTableIV(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunIngredient(cfg)
		if err != nil {
			b.Fatal(err)
		}
		worst := 1.0
		for ti := 0; ti < 3; ti++ {
			for mi := 0; mi < 3; mi++ {
				if res.F1[ti][mi] < worst {
					worst = res.F1[ti][mi]
				}
			}
		}
		b.ReportMetric(res.F1[0][0], "F1-AA")
		b.ReportMetric(res.F1[1][1], "F1-FF")
		b.ReportMetric(worst, "F1-worst")
	}
}

// BenchmarkTableV measures the instruction NER evaluation.
func BenchmarkTableV(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res := experiments.RunInstruction(cfg)
		b.ReportMetric(res.Processes.F1, "F1-processes")
		b.ReportMetric(res.Utensils.F1, "F1-utensils")
	}
}

// --- Figure benches ---

// BenchmarkFigure2 measures the cluster/PCA visualization pipeline.
func BenchmarkFigure2(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.ElbowK), "elbow-k")
	}
}

// BenchmarkFigure3 measures the dependency parse of the running
// example.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tree, _ := experiments.RunFigure3()
		if tree.RootIndex() < 0 {
			b.Fatal("no root")
		}
	}
}

// BenchmarkFigure4 measures NER inference over the example instruction
// section.
func BenchmarkFigure4(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, step := range tokenize.SplitSentences(experiments.Figure4Section) {
			spans, _, _ := p.AnnotateInstruction(step)
			_ = spans
		}
	}
}

// BenchmarkFigure5 measures relation extraction on the running
// example, checking the Bring+Water/Bring+Pot merge each iteration.
func BenchmarkFigure5(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, rels := p.AnnotateInstruction(experiments.Figure3Instruction)
		ok := false
		for _, r := range rels {
			if r.Process == "bring" && len(r.Ingredients) > 0 && len(r.Utensils) > 0 {
				ok = true
			}
		}
		if !ok {
			b.Fatalf("bring{water | pot} not reproduced: %v", rels)
		}
	}
}

// BenchmarkConclusionStats measures the §V corpus statistics pass.
func BenchmarkConclusionStats(b *testing.B) {
	cfg := benchCfg()
	cfg.ConclusionRecipes = 400
	ing, err := experiments.RunIngredient(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ins := experiments.RunInstruction(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.RunConclusion(cfg, ing.Models[experiments.CorpusBoth], ins.Tagger)
		b.ReportMetric(res.RelationsPerStep.Mean, "rel-mean")
		b.ReportMetric(res.RelationsPerStep.StdDev, "rel-std")
	}
}

// --- Ablation benches (DESIGN.md §5) ---

func BenchmarkAblationTrainer(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		a := experiments.AblationTrainer(cfg)
		b.ReportMetric(a.F1A, "F1-sgd")
		b.ReportMetric(a.F1B, "F1-perceptron")
	}
}

func BenchmarkAblationSampling(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		a, err := experiments.AblationSampling(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(a.F1A, "F1-stratified")
		b.ReportMetric(a.F1B, "F1-uniform")
	}
}

func BenchmarkAblationGazetteer(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		a := experiments.AblationGazetteer(cfg)
		b.ReportMetric(a.F1A, "F1-with")
		b.ReportMetric(a.F1B, "F1-without")
	}
}

func BenchmarkAblationPreprocess(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		a := experiments.AblationPreprocess(cfg)
		b.ReportMetric(a.F1A, "F1-with")
		b.ReportMetric(a.F1B, "F1-without")
	}
}

func BenchmarkAblationThreshold(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		a := experiments.AblationThreshold(cfg)
		b.ReportMetric(a.F1A, "F1-filtered")
		b.ReportMetric(a.F1B, "F1-unfiltered")
	}
}

// --- micro-benchmarks of the hot kernels ---

func BenchmarkTokenizer(b *testing.B) {
	const phrase = "1 (8 ounce) package cream cheese, softened and 1 1/2 cups whole milk"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if toks := tokenize.Tokenize(phrase); len(toks) == 0 {
			b.Fatal("no tokens")
		}
	}
}

func BenchmarkPOSTagger(b *testing.B) {
	tg := postag.Default()
	words := strings.Fields("bring the water to a boil in a large pot and add the chopped tomatoes")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tags := tg.Tag(words); len(tags) != len(words) {
			b.Fatal("length mismatch")
		}
	}
}

func BenchmarkCRFDecode(b *testing.B) {
	p := benchPipeline(b)
	tokens := strings.Fields("1 ( 8 ounce ) package cream cheese , softened")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec := p.AnnotateIngredient(strings.Join(tokens, " ")); rec.Name == "" {
			b.Fatal("no name")
		}
	}
}

func BenchmarkDependencyParse(b *testing.B) {
	tokens := strings.Fields("fry the potatoes with olive oil in a large pan for 10 minutes")
	tags := postag.Default().Tag(tokens)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr := depparse.Parse(tokens, tags); tr.RootIndex() < 0 {
			b.Fatal("no root")
		}
	}
}

func BenchmarkKMeans(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]mathx.Vector, 2000)
	for i := range pts {
		pts[i] = make(mathx.Vector, 36)
		for d := 0; d < 6; d++ {
			pts[i][rng.Intn(36)] = float64(rng.Intn(4))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(pts, cluster.Config{K: 23}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineTraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := NewPipeline(Options{Seed: int64(i), TrainingPhrases: 300, TrainingInstructions: 100, Epochs: 3})
		if err != nil {
			b.Fatal(err)
		}
		if p == nil {
			b.Fatal("nil pipeline")
		}
	}
}

func BenchmarkRecipeGeneration(b *testing.B) {
	g := recipedb.NewGenerator(recipedb.SourceFoodCom, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r := g.Recipe(); len(r.Ingredients) == 0 {
			b.Fatal("empty recipe")
		}
	}
}

func BenchmarkEndToEndRecipe(b *testing.B) {
	p := benchPipeline(b)
	raw := SyntheticRecipes(1, 5)[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := p.ModelRecipe(raw.Title, raw.Cuisine, raw.IngredientLines, raw.Instructions)
		if len(m.Ingredients) == 0 {
			b.Fatal("no ingredients")
		}
	}
}

func BenchmarkAblationParser(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		a := experiments.AblationParser(cfg)
		b.ReportMetric(a.F1A, "UAS")
		b.ReportMetric(a.F1B, "LAS")
	}
}

// BenchmarkCrossValidation measures the 5-fold CV protocol of §II.F.
func BenchmarkCrossValidation(b *testing.B) {
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		res := experiments.RunCrossValidation(cfg, 5)
		b.ReportMetric(res.Mean, "F1-mean")
		b.ReportMetric(res.Std, "F1-std")
	}
}

// --- parallel batch-mining engine benches ---
//
// Each parallel bench has a workers=1 twin so the scaling factor on a
// given machine is the ratio of their phrases/sec (or seqs/sec,
// points/sec) metrics; the twins compute identical results by the
// engine's determinism guarantee.

// benchCorpusPhrases is a fixed synthetic phrase corpus for the batch
// annotation benches.
func benchCorpusPhrases(n int) []string {
	phrases := recipedb.NewGenerator(recipedb.SourceAllRecipes, 7).UniquePhrases(n)
	out := make([]string, len(phrases))
	for i, p := range phrases {
		out[i] = p.Text
	}
	return out
}

func benchAnnotateCorpus(b *testing.B, workers int) {
	p := benchPipeline(b)
	prev := p.Workers()
	p.SetWorkers(workers)
	defer p.SetWorkers(prev)
	phrases := benchCorpusPhrases(512)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if recs := p.AnnotateIngredients(phrases); len(recs) != len(phrases) {
			b.Fatal("short batch")
		}
	}
	if secs := time.Since(start).Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*len(phrases))/secs, "phrases/sec")
	}
}

// BenchmarkAnnotateCorpusSerial / BenchmarkAnnotateCorpusParallel
// drive the batch API over a 512-phrase corpus at workers=1 vs all
// CPUs.
func BenchmarkAnnotateCorpusSerial(b *testing.B)   { benchAnnotateCorpus(b, 1) }
func BenchmarkAnnotateCorpusParallel(b *testing.B) { benchAnnotateCorpus(b, 0) }

// BenchmarkAnnotateRunParallel measures single-phrase annotation under
// b.RunParallel — the server's concurrent-request shape, many
// goroutines sharing one read-only pipeline.
func BenchmarkAnnotateRunParallel(b *testing.B) {
	p := benchPipeline(b)
	phrases := benchCorpusPhrases(64)
	b.ReportAllocs()
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			rec := p.AnnotateIngredient(phrases[i%len(phrases)])
			if rec.Phrase == "" {
				b.Fatal("empty record")
			}
			i++
		}
	})
	if secs := time.Since(start).Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N)/secs, "phrases/sec")
	}
}

func benchTrainCRF(b *testing.B, workers int) {
	const epochs = 3
	sents := corpus.IngredientSentences(
		recipedb.NewGenerator(recipedb.SourceFoodCom, 13).UniquePhrases(400))
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		tg := ner.Train(sents, ner.IngredientTypes,
			ner.NewIngredientExtractor(ner.DefaultFeatureOptions),
			ner.TrainConfig{Epochs: epochs, Seed: 1, Shards: crf.DefaultShards, Workers: workers})
		if tg == nil {
			b.Fatal("nil tagger")
		}
	}
	if secs := time.Since(start).Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*len(sents)*epochs)/secs, "seqs/sec")
	}
}

// BenchmarkCRFTrainSerial / BenchmarkCRFTrainSharded run the
// epoch-synchronous sharded trainer at workers=1 vs all CPUs; both fit
// the identical model (same Seed, same Shards).
func BenchmarkCRFTrainSerial(b *testing.B)  { benchTrainCRF(b, 1) }
func BenchmarkCRFTrainSharded(b *testing.B) { benchTrainCRF(b, 0) }

func benchKMeansWorkers(b *testing.B, workers int) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]mathx.Vector, 2000)
	for i := range pts {
		pts[i] = make(mathx.Vector, 36)
		for d := 0; d < 6; d++ {
			pts[i][rng.Intn(36)] = float64(rng.Intn(4))
		}
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans(pts, cluster.Config{K: 23, Workers: workers}, rng); err != nil {
			b.Fatal(err)
		}
	}
	if secs := time.Since(start).Seconds(); secs > 0 {
		b.ReportMetric(float64(b.N*len(pts))/secs, "points/sec")
	}
}

// BenchmarkKMeansSerial / BenchmarkKMeansParallel compare the Lloyd
// distance scans at workers=1 vs all CPUs (bit-identical results).
func BenchmarkKMeansSerial(b *testing.B)   { benchKMeansWorkers(b, 1) }
func BenchmarkKMeansParallel(b *testing.B) { benchKMeansWorkers(b, 0) }
