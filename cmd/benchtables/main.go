// Command benchtables regenerates every table and figure of the
// paper's evaluation section on the synthetic RecipeDB corpus and
// writes the artifacts (text tables, SVG figures) to an output
// directory.
//
// Usage:
//
//	benchtables -out out            # everything, paper scale
//	benchtables -out out -scale 10  # 10× smaller (quick)
//	benchtables -only table4        # one artifact to stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"recipemodel/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	outDir := fs.String("out", "", "directory for artifacts (empty: stdout only)")
	scale := fs.Int("scale", 1, "shrink factor for quick runs (1 = paper scale)")
	only := fs.String("only", "", "single artifact: table1..table5, fig2..fig5, conclusion, crossval, ablations")
	seed := fs.Int64("seed", 1, "experiment seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.DefaultConfig().Scaled(*scale)
	cfg.Seed = *seed

	emit := func(name, content string) error {
		fmt.Fprintf(stdout, "==== %s ====\n%s\n", name, content)
		if *outDir == "" {
			return nil
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(*outDir, name), []byte(content), 0o644)
	}

	want := func(name string) bool { return *only == "" || *only == name }

	var ing *experiments.IngredientResult
	needIngredient := want("table1") || want("table3") || want("table4") || want("conclusion")
	if needIngredient {
		var err error
		if ing, err = experiments.RunIngredient(cfg); err != nil {
			return err
		}
	}
	var ins *experiments.InstructionResult
	if want("table5") || want("fig1") || want("fig4") || want("fig5") || want("conclusion") {
		ins = experiments.RunInstruction(cfg)
	}

	if want("fig1") {
		if ing == nil {
			var err error
			if ing, err = experiments.RunIngredient(cfg); err != nil {
				return err
			}
		}
		if err := emit("fig1.txt", experiments.RunFigure1(ing.Models[experiments.CorpusBoth], ins.Tagger)); err != nil {
			return err
		}
	}

	if want("table1") {
		_, table := experiments.RunTableI(ing.Models[experiments.CorpusBoth])
		if err := emit("table1.txt", table); err != nil {
			return err
		}
	}
	if want("table2") {
		if err := emit("table2.txt", experiments.RenderTableII()); err != nil {
			return err
		}
	}
	if want("table3") {
		if err := emit("table3.txt", ing.RenderTableIII()); err != nil {
			return err
		}
	}
	if want("table4") {
		if err := emit("table4.txt", ing.RenderTableIV()); err != nil {
			return err
		}
	}
	if want("table5") {
		if err := emit("table5.txt", ins.RenderTableV()); err != nil {
			return err
		}
	}
	if want("fig2") {
		f2, err := experiments.RunFigure2(cfg)
		if err != nil {
			return err
		}
		if err := emit("fig2.txt", f2.Render()); err != nil {
			return err
		}
		if err := emit("fig2a.svg", f2.SVGA()); err != nil {
			return err
		}
		if err := emit("fig2b.svg", f2.SVGB()); err != nil {
			return err
		}
	}
	if want("fig3") {
		_, text := experiments.RunFigure3()
		if err := emit("fig3.txt", text); err != nil {
			return err
		}
	}
	if want("fig4") {
		text, _ := experiments.RunFigure4(ins.Tagger)
		if err := emit("fig4.txt", text); err != nil {
			return err
		}
	}
	if want("fig5") {
		_, text := experiments.RunFigure5(ins.Tagger)
		if err := emit("fig5.txt", text); err != nil {
			return err
		}
	}
	if want("conclusion") {
		res := experiments.RunConclusion(cfg, ing.Models[experiments.CorpusBoth], ins.Tagger)
		if err := emit("conclusion.txt", res.Render()); err != nil {
			return err
		}
	}
	if want("crossval") {
		res := experiments.RunCrossValidation(cfg, 5)
		if err := emit("crossval.txt", res.Render()); err != nil {
			return err
		}
	}
	if want("ablations") {
		text, err := experiments.RenderAblations(cfg)
		if err != nil {
			return err
		}
		if err := emit("ablations.txt", text); err != nil {
			return err
		}
	}
	return nil
}
