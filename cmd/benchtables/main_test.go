package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestOnlyTable2(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "table2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Named Entity Recognition Tags") {
		t.Fatalf("table2 missing:\n%s", out.String())
	}
	if strings.Contains(out.String(), "Table IV") {
		t.Fatal("-only leaked other artifacts")
	}
}

func TestOnlyFig3(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "fig3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "dependency parse") {
		t.Fatalf("fig3 missing:\n%s", out.String())
	}
}

func TestScaledRunWritesArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs experiments")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-scale", "40", "-out", dir, "-only", "table4"}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table4.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Testing Set") {
		t.Fatalf("artifact content:\n%s", data)
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}, &bytes.Buffer{}); err == nil {
		t.Fatal("expected flag error")
	}
}
