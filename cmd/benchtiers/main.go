// Command benchtiers measures the two annotation tiers — the trained
// CRF pipeline and the deterministic rules fallback (DESIGN §15) —
// against the same gold ingredient corpus, reporting per-tier entity
// F1 (micro and per type) and decode throughput. The numbers quantify
// the degradation ladder's middle rung: what accuracy a client gives
// up, and what latency it gains, when the breaker routes a request to
// the rules tier because the CRF tier is unhealthy.
//
// Usage:
//
//	benchtiers                      # paper-scale corpus, print JSON
//	benchtiers -out BENCH_PR10.json # also write the artifact
//	benchtiers -scale 10            # 10× smaller (quick smoke)
//
// The corpus is the same synthetic RecipeDB gold set the accuracy
// tables use (both sources pooled, deterministic seed), so the CRF
// side of this report is directly comparable to Table IV. Throughput
// is measured over repeated full passes of the held-out test set on a
// single goroutine — the per-decode cost a saturated server pays, not
// a parallel-scaling claim.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"recipemodel/internal/corpus"
	"recipemodel/internal/metrics"
	"recipemodel/internal/ner"
	"recipemodel/internal/recipedb"
	"recipemodel/internal/rules"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtiers:", err)
		os.Exit(1)
	}
}

// tierResult is one tier's score card.
type tierResult struct {
	MicroF1        float64            `json:"micro_f1"`
	Precision      float64            `json:"precision"`
	Recall         float64            `json:"recall"`
	PerTypeF1      map[string]float64 `json:"per_type_f1"`
	PhrasesPerSec  float64            `json:"phrases_per_sec"`
	NsPerPhrase    float64            `json:"ns_per_phrase"`
	MeasuredPasses int                `json:"measured_passes"`
}

// report is the BENCH_PR10.json shape.
type report struct {
	PR      int    `json:"pr"`
	Title   string `json:"title"`
	Machine struct {
		Cores  int    `json:"cores"`
		GOOS   string `json:"goos"`
		GOARCH string `json:"goarch"`
		Note   string `json:"note"`
	} `json:"machine"`
	Corpus struct {
		PoolAllRecipes int   `json:"pool_allrecipes"`
		PoolFoodCom    int   `json:"pool_foodcom"`
		Train          int   `json:"train_sentences"`
		Test           int   `json:"test_sentences"`
		Epochs         int     `json:"crf_epochs"`
		NoiseRate      float64 `json:"noise_rate"`
		Seed           int64   `json:"seed"`
	} `json:"corpus"`
	Tiers   map[string]*tierResult `json:"tiers"`
	Summary struct {
		F1Gap        string `json:"f1_gap"`
		SpeedRatio   string `json:"speed_ratio"`
		Interpreting string `json:"interpreting"`
	} `json:"summary"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchtiers", flag.ContinueOnError)
	out := fs.String("out", "", "also write the JSON artifact to this path")
	scale := fs.Int("scale", 1, "shrink factor for quick runs (1 = paper scale)")
	seed := fs.Int64("seed", 1, "corpus + training seed")
	epochs := fs.Int("epochs", 6, "CRF training epochs")
	noise := fs.Float64("noise", 0.04, "annotation noise rate (the Table IV protocol)")
	minTime := fs.Duration("mintime", 2*time.Second, "minimum wall time per tier's throughput measurement")
	if err := fs.Parse(args); err != nil {
		return err
	}

	poolA, poolF := 14700/max(1, *scale), 25710/max(1, *scale)
	rng := rand.New(rand.NewSource(*seed))

	// The same gold corpus the accuracy tables draw from: both sources
	// pooled, an 80/20 split. No clustering stage here — tier-vs-tier
	// only needs one shared test set, not the paper's sampling design.
	pool := func(src recipedb.Source, n int, seed int64) []ner.Sentence {
		g := recipedb.NewGenerator(src, seed)
		return corpus.IngredientSentences(g.UniquePhrases(n))
	}
	all := append(pool(recipedb.SourceAllRecipes, poolA, *seed+10),
		pool(recipedb.SourceFoodCom, poolF, *seed+20)...)
	all = corpus.Noisify(all, *noise, rng)
	train, test := corpus.Split(all, 0.2, rng)
	gold := corpus.Gold(test)

	model := ner.Train(train, ner.IngredientTypes,
		ner.NewIngredientExtractor(ner.DefaultFeatureOptions),
		ner.TrainConfig{Epochs: *epochs, Seed: *seed + 30, Method: "sgd"})
	rt := rules.New()

	// The rules tier tags lower-cased words (the server lower-cases
	// post-tokenization); span indices are unaffected, so predictions
	// stay comparable to the gold spans over the original tokens.
	lower := make([][]string, len(test))
	for i, s := range test {
		ws := make([]string, len(s.Tokens))
		for j, tok := range s.Tokens {
			ws[j] = strings.ToLower(tok)
		}
		lower[i] = ws
	}

	crfPredict := func() [][]ner.Span { return corpus.Predict(model, test) }
	rulesPredict := func() [][]ner.Span {
		out := make([][]ner.Span, len(test))
		for i, ws := range lower {
			out[i] = rt.AppendTag(nil, ws)
		}
		return out
	}

	rep := &report{PR: 10, Title: "Rules tier vs CRF tier: accuracy and latency on the gold ingredient corpus"}
	rep.Machine.Cores = runtime.NumCPU()
	rep.Machine.GOOS = runtime.GOOS
	rep.Machine.GOARCH = runtime.GOARCH
	rep.Machine.Note = "single-goroutine decode passes over the held-out test set; throughput is per-decode cost, not parallel scaling"
	rep.Corpus.PoolAllRecipes = poolA
	rep.Corpus.PoolFoodCom = poolF
	rep.Corpus.Train = len(train)
	rep.Corpus.Test = len(test)
	rep.Corpus.Epochs = *epochs
	rep.Corpus.NoiseRate = *noise
	rep.Corpus.Seed = *seed
	rep.Tiers = map[string]*tierResult{
		"crf":   measure(gold, crfPredict, *minTime),
		"rules": measure(gold, rulesPredict, *minTime),
	}

	crf, rl := rep.Tiers["crf"], rep.Tiers["rules"]
	rep.Summary.F1Gap = fmt.Sprintf("crf %.4f vs rules %.4f (Δ %.4f micro-F1)",
		crf.MicroF1, rl.MicroF1, crf.MicroF1-rl.MicroF1)
	rep.Summary.SpeedRatio = fmt.Sprintf("rules %.0f vs crf %.0f phrases/sec (%.1fx)",
		rl.PhrasesPerSec, crf.PhrasesPerSec, rl.PhrasesPerSec/crf.PhrasesPerSec)
	rep.Summary.Interpreting = "the gap is the accuracy cost of a breaker-routed rules answer; " +
		"the ratio is why the rules tier can absorb a herd the CRF tier cannot"

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if _, err := stdout.Write(data); err != nil {
		return err
	}
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// measure scores one tier (accuracy from a single pass — both tiers
// are deterministic) and times repeated passes until minTime of wall
// clock has accumulated.
func measure(gold [][]ner.Span, predict func() [][]ner.Span, minTime time.Duration) *tierResult {
	pred := predict()
	er := metrics.EvaluateEntities(gold, pred)
	res := &tierResult{
		MicroF1:   er.Micro.F1,
		Precision: er.Micro.Precision,
		Recall:    er.Micro.Recall,
		PerTypeF1: map[string]float64{},
	}
	var types []string
	for typ := range er.PerType {
		types = append(types, typ)
	}
	sort.Strings(types)
	for _, typ := range types {
		res.PerTypeF1[typ] = er.PerType[typ].F1
	}

	start := time.Now()
	var elapsed time.Duration
	for elapsed < minTime {
		predict()
		res.MeasuredPasses++
		elapsed = time.Since(start)
	}
	phrases := res.MeasuredPasses * len(gold)
	res.PhrasesPerSec = float64(phrases) / elapsed.Seconds()
	res.NsPerPhrase = float64(elapsed.Nanoseconds()) / float64(phrases)
	return res
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
