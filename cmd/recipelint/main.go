// Command recipelint is the project's static-analysis driver: it
// loads every non-test package of the module with the stdlib
// go/parser + go/types toolchain and runs the recipelint rule suite
// (internal/analyzers) over them — the machine-checked form of the
// invariants DESIGN documents (determinism, context propagation,
// durable writes, fault-point hygiene, quarantine taxonomy).
//
// Usage:
//
//	recipelint [-rules nondeterminism,ctxflow,...] [-list] [-report out.json] [-budget lint-budget.json] [patterns]
//
// Patterns follow the go tool's shape: ./... (the default) lints the
// whole module, ./internal/core lints one package, ./internal/...
// lints a subtree. The whole module is always loaded and type-checked
// (rules like faultpoint are module-wide); patterns only filter which
// packages' findings are reported. Since PR 10 the load includes
// _test.go universes, so test-only rules (nosleep) and test code run
// under the same suite.
//
// -report writes the machine-readable outcome (findings plus the used
// suppression inventory) as JSON to the given path, or to stdout with
// "-". -budget reads a checked-in {"suppressions": N} file and fails
// the run unless the used-suppression count equals N exactly: a new
// //recipelint:allow needs the budget raised in the same change, and a
// removed one needs it lowered — the count stays honest both ways.
//
// Exit status: 0 — clean; 1 — findings or a busted budget; 2 — usage,
// load, or type-check errors. Every finding prints file:line:col, the
// rule, the violation, and a fix hint. Findings are silenced
// line-by-line with a justified directive (see DESIGN §11 for the
// policy):
//
//	//recipelint:allow <rule> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"recipemodel/internal/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("recipelint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	list := fs.Bool("list", false, "list the rules and exit")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	reportPath := fs.String("report", "", "write the JSON lint report (findings + suppression inventory) to this path, or - for stdout")
	budgetPath := fs.String("budget", "", "enforce the checked-in suppression budget ({\"suppressions\": N}); the used count must equal N")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(out, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *rules != "" {
		var selected []*analyzers.Analyzer
		for _, name := range strings.Split(*rules, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, a := range suite {
				if a.Name == name {
					selected = append(selected, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(errOut, "recipelint: unknown rule %q (try -list)\n", name)
				return 2
			}
		}
		suite = selected
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(errOut, "recipelint:", err)
		return 2
	}
	root, err := moduleRoot(cwd)
	if err != nil {
		fmt.Fprintln(errOut, "recipelint:", err)
		return 2
	}
	fset, pkgs, err := analyzers.LoadModule(root)
	if err != nil {
		fmt.Fprintln(errOut, "recipelint:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected, err := filterPackages(pkgs, cwd, patterns)
	if err != nil {
		fmt.Fprintln(errOut, "recipelint:", err)
		return 2
	}

	rep := analyzers.RunReport(fset, selected, suite)
	for i := range rep.Findings {
		rep.Findings[i].Pos.Filename = relPath(cwd, rep.Findings[i].Pos.Filename)
		fmt.Fprintln(out, rep.Findings[i])
	}
	// The report (and budget) addresses files module-relative so the
	// checked-in numbers don't depend on the checkout path.
	for i := range rep.Suppressions {
		rep.Suppressions[i].File = relPath(root, rep.Suppressions[i].File)
	}
	if *reportPath != "" {
		if err := writeReport(*reportPath, rep, out); err != nil {
			fmt.Fprintln(errOut, "recipelint:", err)
			return 2
		}
	}
	status := 0
	if len(rep.Findings) > 0 {
		fmt.Fprintf(errOut, "recipelint: %d finding(s)\n", len(rep.Findings))
		status = 1
	}
	if *budgetPath != "" {
		if err := checkBudget(*budgetPath, rep); err != nil {
			fmt.Fprintln(errOut, "recipelint:", err)
			status = max(status, 1)
		}
	}
	return status
}

// writeReport renders the report as indented JSON to path ("-" =
// stdout).
func writeReport(path string, rep analyzers.Report, stdout io.Writer) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// budgetFile is the checked-in suppression budget's shape.
type budgetFile struct {
	Suppressions int `json:"suppressions"`
}

// checkBudget enforces the exact-match suppression budget: more used
// directives than budgeted means new unreviewed debt; fewer means the
// budget is stale and must shrink with the cleanup.
func checkBudget(path string, rep analyzers.Report) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("budget: %w", err)
	}
	var b budgetFile
	if err := json.Unmarshal(data, &b); err != nil {
		return fmt.Errorf("budget %s: %w", path, err)
	}
	switch {
	case rep.SuppressionCount > b.Suppressions:
		return fmt.Errorf("suppression budget exceeded: %d //recipelint:allow directives in use, budget %s allows %d — remove the new suppression or raise the budget in the same change",
			rep.SuppressionCount, path, b.Suppressions)
	case rep.SuppressionCount < b.Suppressions:
		return fmt.Errorf("suppression budget stale: %d //recipelint:allow directives in use, budget %s still says %d — lower the budget to match",
			rep.SuppressionCount, path, b.Suppressions)
	}
	return nil
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) (string, error) {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// filterPackages keeps the packages matching the go-tool-style dir
// patterns, resolved relative to cwd.
func filterPackages(pkgs []*analyzers.Package, cwd string, patterns []string) ([]*analyzers.Package, error) {
	var out []*analyzers.Package
	for _, p := range pkgs {
		match := false
		for _, pat := range patterns {
			ok, err := matchPattern(p.Dir, cwd, pat)
			if err != nil {
				return nil, err
			}
			if ok {
				match = true
				break
			}
		}
		if match {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages match %s", strings.Join(patterns, " "))
	}
	return out, nil
}

// matchPattern reports whether the package directory matches one
// pattern: "dir/..." matches the subtree rooted at dir, a plain dir
// matches exactly.
func matchPattern(pkgDir, cwd, pat string) (bool, error) {
	recursive := false
	if rest, ok := strings.CutSuffix(pat, "/..."); ok {
		recursive = true
		pat = rest
		if pat == "" || pat == "." {
			pat = "."
		}
	}
	base := pat
	if !filepath.IsAbs(base) {
		base = filepath.Join(cwd, base)
	}
	base = filepath.Clean(base)
	pkgDir = filepath.Clean(pkgDir)
	if pkgDir == base {
		return true, nil
	}
	if recursive {
		rel, err := filepath.Rel(base, pkgDir)
		if err != nil {
			return false, nil
		}
		return rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)), nil
	}
	return false, nil
}

// relPath renders path relative to base when that is shorter and
// doesn't escape it; used to keep findings readable.
func relPath(base, path string) string {
	rel, err := filepath.Rel(base, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
