package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a throwaway module with one seeded
// nondeterminism violation and one suppressed counterpart.
func writeTree(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"core/clock.go": `package core

import "time"

// Stamp is the seeded violation.
func Stamp() int64 { return time.Now().Unix() }

// Allowed is the suppressed counterpart.
func Allowed() int64 {
	//recipelint:allow nondeterminism driver test: justified suppression
	return time.Now().UnixNano()
}
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// chdir moves the test into dir; run resolves the module from cwd.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

func TestRunFindsViolations(t *testing.T) {
	chdir(t, writeTree(t))
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "nondeterminism") || !strings.Contains(got, filepath.Join("core", "clock.go")) {
		t.Fatalf("finding not rendered as expected:\n%s", got)
	}
	// Exactly one wall-clock finding: the second time.Now is suppressed.
	if strings.Count(got, "time.Now") != 1 {
		t.Fatalf("suppression did not hold to one finding:\n%s", got)
	}
}

func TestRunRuleSelection(t *testing.T) {
	chdir(t, writeTree(t))
	var out, errOut bytes.Buffer
	// ctxflow has nothing to say about the tree, and the unused-
	// suppression check must not fire for the nondeterminism directive
	// belonging to a rule that did not run.
	if code := run([]string{"-rules", "ctxflow"}, &out, &errOut); code != 0 {
		t.Fatalf("-rules ctxflow: exit %d, want 0; out:\n%s%s", code, out.String(), errOut.String())
	}
	if code := run([]string{"-rules", "nosuchrule"}, &out, &errOut); code != 2 {
		t.Fatalf("-rules nosuchrule: exit %d, want 2", code)
	}
}

func TestRunListAndPatterns(t *testing.T) {
	chdir(t, writeTree(t))
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list: exit %d, want 0", code)
	}
	for _, rule := range []string{"nondeterminism", "ctxflow", "atomicwrite", "faultpoint", "errtaxonomy"} {
		if !strings.Contains(out.String(), rule) {
			t.Fatalf("-list output misses %s:\n%s", rule, out.String())
		}
	}
	out.Reset()
	if code := run([]string{"./core"}, &out, &errOut); code != 1 {
		t.Fatalf("./core: exit %d, want 1", code)
	}
	out.Reset()
	if code := run([]string{"./nosuchdir"}, &out, &errOut); code != 2 {
		t.Fatalf("./nosuchdir: exit %d, want 2", code)
	}
}
