package main

// Crash-safety drills for the durable mining path: every test kills a
// run at an exact, fault-injected call count (no signals, no sleeps),
// resumes it with -resume, and requires the recovered output to be
// byte-identical to an uninterrupted run — the headline guarantee of
// the checkpoint design.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"recipemodel/internal/checkpoint"
	"recipemodel/internal/faults"
)

var errKill = errors.New("injected kill")

// crashModel trains one small pipeline shared by every crash test in
// this file (training dominates test time; the model is read-only).
var (
	crashModelOnce sync.Once
	crashModelDir  string
	crashModelErr  error
)

func crashModel(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("trains a pipeline")
	}
	crashModelOnce.Do(func() {
		crashModelDir, crashModelErr = os.MkdirTemp("", "recipemine-crash")
		if crashModelErr != nil {
			return
		}
		var out bytes.Buffer
		crashModelErr = run([]string{"train", "-o", filepath.Join(crashModelDir, "p.bin"),
			"-phrases", "400", "-instructions", "200"}, strings.NewReader(""), &out)
	})
	if crashModelErr != nil {
		t.Fatal(crashModelErr)
	}
	return filepath.Join(crashModelDir, "p.bin")
}

func TestMain(m *testing.M) {
	code := m.Run()
	if crashModelDir != "" {
		os.RemoveAll(crashModelDir)
	}
	os.Exit(code)
}

// mineTo runs a durable mine of 12 records into path with the shared
// model, returning any error.
func mineTo(t *testing.T, model, path string, extra ...string) error {
	t.Helper()
	args := append([]string{"mine", "-model", model, "-n", "12", "-seed", "11", "-o", path}, extra...)
	var out bytes.Buffer
	return run(args, strings.NewReader(""), &out)
}

// baseline mines the reference output once per test dir.
func baseline(t *testing.T, model, dir string) []byte {
	t.Helper()
	path := filepath.Join(dir, "base.jsonl")
	if err := mineTo(t, model, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(data, []byte("\n")); n != 12 {
		t.Fatalf("baseline has %d lines, want 12", n)
	}
	return data
}

// TestMineCrashAndResumeByteIdentical is the acceptance drill: kill
// the run at several distinct record counts (first record, mid-chunk,
// later chunk), resume each, and require bytes identical to the
// uninterrupted baseline.
func TestMineCrashAndResumeByteIdentical(t *testing.T) {
	model := crashModel(t)
	dir := t.TempDir()
	want := baseline(t, model, dir)

	for _, kill := range []int{1, 4, 9} {
		path := filepath.Join(dir, "kill.jsonl")
		// Arm the emit point to fail on exactly the kill-th record:
		// buffered bytes past the last checkpoint are lost, like a
		// SIGKILL between fsyncs.
		disarm := faults.Enable(FaultEmit, faults.Fault{Err: errKill, Skip: kill - 1})
		err := mineTo(t, model, path)
		disarm()
		if !errors.Is(err, errKill) {
			t.Fatalf("kill@%d: mine returned %v, want injected kill", kill, err)
		}

		if err := mineTo(t, model, path, "-resume"); err != nil {
			t.Fatalf("kill@%d: resume: %v", kill, err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("kill@%d: resumed output differs from uninterrupted run (%d vs %d bytes)", kill, len(got), len(want))
		}
		man, err := checkpoint.Load(checkpoint.PathFor(path))
		if err != nil {
			t.Fatalf("kill@%d: %v", kill, err)
		}
		if man.Records != 12 || man.Offset != int64(len(want)) {
			t.Fatalf("kill@%d: final checkpoint %+v, want 12 records at offset %d", kill, man, len(want))
		}
		os.Remove(path)
		os.Remove(checkpoint.PathFor(path))
	}
}

// TestMineCrashDuringCheckpointSave kills the run inside the manifest
// write itself (after data is fsync'd, before the manifest rename).
// The previous manifest still describes a durable prefix, so -resume
// must recover byte-identically.
func TestMineCrashDuringCheckpointSave(t *testing.T) {
	model := crashModel(t)
	dir := t.TempDir()
	want := baseline(t, model, dir)

	path := filepath.Join(dir, "ckptkill.jsonl")
	// Skip: 1 lets the run's initial (empty) manifest through and
	// kills the first post-chunk checkpoint.
	disarm := faults.Enable(checkpoint.FaultSave, faults.Fault{Err: errKill, Skip: 1})
	err := mineTo(t, model, path)
	disarm()
	if !errors.Is(err, errKill) {
		t.Fatalf("mine returned %v, want injected kill", err)
	}

	if err := mineTo(t, model, path, "-resume"); err != nil {
		t.Fatalf("resume: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed output differs from uninterrupted run")
	}
}

// TestMineResumeTruncatesTornTail: bytes written past the last
// checkpoint (a torn line from a crash mid-write) must be cut before
// mining continues; the end state is still byte-identical.
func TestMineResumeTruncatesTornTail(t *testing.T) {
	model := crashModel(t)
	dir := t.TempDir()
	want := baseline(t, model, dir)

	path := filepath.Join(dir, "torn.jsonl")
	disarm := faults.Enable(FaultEmit, faults.Fault{Err: errKill, Skip: 5})
	err := mineTo(t, model, path)
	disarm()
	if !errors.Is(err, errKill) {
		t.Fatalf("mine returned %v, want injected kill", err)
	}
	// Simulate a crash mid-line: garbage past the checkpointed offset.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"Title":"torn rec`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := mineTo(t, model, path, "-resume"); err != nil {
		t.Fatalf("resume: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resume did not truncate the torn tail: output differs from uninterrupted run")
	}
}

// TestMineRefusesExistingOutput: a fresh -o run must not silently
// clobber an existing file; -force overrides.
func TestMineRefusesExistingOutput(t *testing.T) {
	model := crashModel(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "out.jsonl")
	if err := os.WriteFile(path, []byte("precious\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := mineTo(t, model, path)
	if err == nil || !strings.Contains(err.Error(), "already exists") {
		t.Fatalf("mine over existing file = %v, want refusal", err)
	}
	if data, _ := os.ReadFile(path); string(data) != "precious\n" {
		t.Fatal("refused mine still modified the file")
	}
	if err := mineTo(t, model, path, "-force"); err != nil {
		t.Fatalf("-force: %v", err)
	}
	if data, _ := os.ReadFile(path); bytes.Contains(data, []byte("precious")) {
		t.Fatal("-force did not truncate the old contents")
	}
}

// TestMineResumeRefusesFingerprintMismatch: resuming with a different
// -seed must be refused — splicing two corpora would corrupt the file.
func TestMineResumeRefusesFingerprintMismatch(t *testing.T) {
	model := crashModel(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "fp.jsonl")
	disarm := faults.Enable(FaultEmit, faults.Fault{Err: errKill, Skip: 3})
	err := mineTo(t, model, path)
	disarm()
	if !errors.Is(err, errKill) {
		t.Fatalf("mine returned %v, want injected kill", err)
	}
	var out bytes.Buffer
	err = run([]string{"mine", "-model", model, "-n", "12", "-seed", "999", "-o", path, "-resume"},
		strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "different run configuration") {
		t.Fatalf("resume with different seed = %v, want fingerprint refusal", err)
	}
}

// TestMineResumeAlreadyComplete: resuming a finished run is a no-op
// that leaves the file untouched.
func TestMineResumeAlreadyComplete(t *testing.T) {
	model := crashModel(t)
	dir := t.TempDir()
	want := baseline(t, model, dir)
	path := filepath.Join(dir, "base.jsonl")
	if err := mineTo(t, model, path, "-resume"); err != nil {
		t.Fatalf("resume of complete run: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("no-op resume modified the file")
	}
}

// TestMineInterruptDurable: a context cancellation (the SIGINT path)
// on a durable run checkpoints what finished and exits 0; -resume then
// completes to a byte-identical file.
func TestMineInterruptDurable(t *testing.T) {
	model := crashModel(t)
	dir := t.TempDir()
	want := baseline(t, model, dir)

	path := filepath.Join(dir, "int.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	disarm := faults.Enable(FaultEmit, faults.Fault{OnHit: func(hit int) {
		if hit == 2 {
			cancel()
		}
	}})
	var out bytes.Buffer
	err := runCtx(ctx, []string{"mine", "-model", model, "-n", "12", "-seed", "11", "-workers", "2", "-o", path},
		strings.NewReader(""), &out)
	disarm()
	if err != nil {
		t.Fatalf("interrupted durable mine must exit 0, got %v", err)
	}
	man, err := checkpoint.Load(checkpoint.PathFor(path))
	if err != nil {
		t.Fatal(err)
	}
	if man.Records >= 12 {
		t.Fatalf("interrupt did not stop the run: %d records", man.Records)
	}
	if err := mineTo(t, model, path, "-resume"); err != nil {
		t.Fatalf("resume: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed output differs from uninterrupted run")
	}
}

// Flag-validation paths (no training needed).
func TestMineResumeRequiresOutput(t *testing.T) {
	err := run([]string{"mine", "-resume"}, strings.NewReader(""), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "-resume requires -o") {
		t.Fatalf("got %v", err)
	}
}

func TestMineResumeForceContradiction(t *testing.T) {
	err := run([]string{"mine", "-resume", "-force", "-o", "x.jsonl"}, strings.NewReader(""), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "contradictory") {
		t.Fatalf("got %v", err)
	}
}

func TestMineResumeMissingCheckpoint(t *testing.T) {
	model := crashModel(t)
	dir := t.TempDir()
	err := mineTo(t, model, filepath.Join(dir, "none.jsonl"), "-resume")
	if err == nil || !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("resume without a checkpoint = %v, want not-exist", err)
	}
}
