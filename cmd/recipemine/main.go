// Command recipemine is the CLI front end of the recipe-modeling
// pipeline: generate synthetic RecipeDB-style recipes, annotate
// ingredient phrases, and mine full recipes into the paper's uniform
// structure.
//
// Usage:
//
//	recipemine generate  -n 3 -seed 7
//	recipemine train     -o pipeline.bin
//	recipemine train     -store models/   # publish a version into the model store
//	recipemine annotate  [-model pipeline.bin] [-workers N] "2 cups chopped onion" [...]
//	recipemine instruct  "Bring the water to a boil in a large pot."
//	recipemine mine      -n 100 -workers 8            # batch-mine to stdout
//	recipemine mine      -n 100000 -o corpus.jsonl    # durable, checkpointed run
//	recipemine mine      -resume -n 100000 -o corpus.jsonl  # continue after a crash
//	recipemine mine      -n 100000 -o corpus.jsonl -quarantine bad.jsonl  # dead-letter poison records
//	recipemine snapshot  -store snapshots/ -from corpus.jsonl  # publish a corpus snapshot version
//	recipemine model     < recipe.txt     # title \n ingredients... \n -- \n instructions
//	recipemine nutrition < recipe.txt
//	recipemine translate -lang fr < recipe.txt
//	recipemine flow      < recipe.txt     # dataflow graph as DOT
//
// Batch subcommands fan out over -workers goroutines (default: all
// CPUs); output is identical at any worker count.
//
// With -o, mine is crash-safe: after every chunk the output file is
// fsync'd and a write-ahead manifest (<out>.ckpt) records how many
// records are durable and at what byte offset. A run killed at any
// point — SIGKILL included — resumes with -resume: the torn tail past
// the last durable record is truncated and mining continues from the
// recorded position, producing output byte-identical to an
// uninterrupted run (mining is deterministic, so re-derived records
// match exactly). The checkpoint fingerprints -n/-seed/-model; a
// resume under a different configuration is refused rather than
// splicing incompatible outputs. -workers is deliberately absent from
// the fingerprint: results are identical at any worker count, so a
// resume may use a different pool size.
package main

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"

	"recipemodel"
	"recipemodel/internal/checkpoint"
	"recipemodel/internal/core"
	"recipemodel/internal/faults"
	"recipemodel/internal/quarantine"
	"recipemodel/internal/recipedb"
	"recipemodel/internal/snapshot"
)

// FaultEmit fires after every record a durable (-o) mine appends,
// before any flush or checkpoint. Crash tests arm it with an error at
// exact call counts to simulate a kill mid-run — unflushed bytes are
// lost and the manifest is stale, exactly the state a SIGKILL leaves.
const FaultEmit = "recipemine.emit"

var _ = faults.MustRegister(FaultEmit)

func main() {
	// SIGINT cancels the context; streaming subcommands (mine) flush
	// the complete records written so far and exit 0 instead of dying
	// mid-line. A second SIGINT kills the process the hard way (the
	// stop func restores default signal handling).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := runCtx(ctx, os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "recipemine:", err)
		os.Exit(1)
	}
}

// run keeps the historical signature for non-streaming callers.
func run(args []string, in io.Reader, out io.Writer) error {
	return runCtx(context.Background(), args, in, out)
}

func runCtx(ctx context.Context, args []string, in io.Reader, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: recipemine <generate|annotate|instruct|mine|snapshot|model|nutrition> [args]")
	}
	switch args[0] {
	case "generate":
		return cmdGenerate(args[1:], out)
	case "train":
		return cmdTrain(args[1:], out)
	case "annotate":
		return cmdAnnotate(args[1:], out)
	case "instruct":
		return cmdInstruct(args[1:], out)
	case "mine":
		return cmdMine(ctx, args[1:], out)
	case "snapshot":
		return cmdSnapshot(args[1:], out)
	case "model":
		return cmdModel(args[1:], in, out, modeStructure)
	case "nutrition":
		return cmdModel(args[1:], in, out, modeNutrition)
	case "translate":
		return cmdModel(args[1:], in, out, modeTranslate)
	case "flow":
		return cmdModel(args[1:], in, out, modeFlow)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// cmdTrain trains a pipeline and persists it — either to a flat file
// (-o) or as a new version in a crash-safe model store (-store), the
// form recipeserver hot-reloads from.
func cmdTrain(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	output := fs.String("o", "pipeline.bin", "output model file")
	store := fs.String("store", "", "versioned model store directory (publishes a new version; overrides -o)")
	seed := fs.Int64("seed", 1, "training seed")
	phrases := fs.Int("phrases", 2500, "training phrases per source")
	instructions := fs.Int("instructions", 1200, "training instructions per source")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := recipemodel.DefaultOptions()
	opts.Seed = *seed
	opts.TrainingPhrases = *phrases
	opts.TrainingInstructions = *instructions
	fmt.Fprintln(out, "training pipeline on synthetic gold corpus ...")
	p, err := recipemodel.NewPipeline(opts)
	if err != nil {
		return err
	}
	if *store != "" {
		version, err := p.SaveToStore(*store)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "published %s to store %s\n", version, *store)
		return nil
	}
	// The model file is a durable artifact: write it atomically
	// (temp + fsync + rename) so a crash mid-save can never leave a
	// torn pipeline.bin for a later -model load to choke on.
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		return err
	}
	if err := checkpoint.WriteFileAtomic(*output, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "saved pipeline to %s\n", *output)
	return nil
}

// loadOrTrain loads a persisted pipeline when path is non-empty, else
// trains a fresh one.
func loadOrTrain(path string, out io.Writer) (*recipemodel.Pipeline, error) {
	if path == "" {
		return trainPipeline(out)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return recipemodel.LoadPipeline(f)
}

func cmdGenerate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	n := fs.Int("n", 3, "number of recipes")
	seed := fs.Int64("seed", 1, "generator seed")
	jsonl := fs.Bool("jsonl", false, "emit the gold-annotated corpus as JSON Lines")
	src := fs.String("source", "allrecipes", "site style: allrecipes or foodcom")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonl {
		source := recipedb.SourceAllRecipes
		if strings.EqualFold(*src, "foodcom") {
			source = recipedb.SourceFoodCom
		}
		g := recipedb.NewGenerator(source, *seed)
		return recipedb.WriteJSONL(out, g.Recipes(*n))
	}
	for _, r := range recipemodel.SyntheticRecipes(*n, *seed) {
		fmt.Fprintf(out, "# %s (%s)\n", r.Title, r.Cuisine)
		fmt.Fprintln(out, "Ingredients:")
		for _, line := range r.IngredientLines {
			fmt.Fprintf(out, "  %s\n", line)
		}
		fmt.Fprintf(out, "Instructions:\n  %s\n\n", r.Instructions)
	}
	return nil
}

func trainPipeline(out io.Writer) (*recipemodel.Pipeline, error) {
	fmt.Fprintln(out, "training pipeline on synthetic gold corpus ...")
	return recipemodel.NewPipeline(recipemodel.DefaultOptions())
}

func cmdAnnotate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("annotate", flag.ContinueOnError)
	modelPath := fs.String("model", "", "persisted pipeline file (empty: train fresh)")
	workers := fs.Int("workers", runtime.NumCPU(), "batch annotation goroutines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	args = fs.Args()
	if len(args) == 0 {
		return fmt.Errorf("annotate: need at least one ingredient phrase")
	}
	p, err := loadOrTrain(*modelPath, out)
	if err != nil {
		return err
	}
	p.SetWorkers(*workers)
	fmt.Fprintf(out, "%-40s %-20s %-10s %-9s %-10s %-10s %-9s %-8s\n",
		"Phrase", "Name", "State", "Quantity", "Unit", "Temp", "DryFresh", "Size")
	for _, r := range p.AnnotateIngredients(args) {
		fmt.Fprintf(out, "%-40s %-20s %-10s %-9s %-10s %-10s %-9s %-8s\n",
			r.Phrase, r.Name, r.State, r.Quantity, r.Unit, r.Temp, r.DryFresh, r.Size)
	}
	return nil
}

// startCPUProfile begins a CPU profile into path and returns the stop
// function. The file is opened with explicit flags and synced on stop:
// recipemine is a durable package, and a truncated profile from a
// crashed run should at least be visibly truncated, not silently
// cached.
func startCPUProfile(path string) (stop func(), err error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		if err := f.Sync(); err != nil {
			fmt.Fprintln(os.Stderr, "recipemine: cpuprofile:", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "recipemine: cpuprofile:", err)
		}
	}, nil
}

// writeHeapProfile dumps a heap profile to path, forcing a GC first so
// the profile reflects live objects rather than garbage awaiting
// collection.
func writeHeapProfile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("memprofile: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("memprofile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

// cmdMine is the batch-mining engine: generate (or later: ingest) a
// recipe corpus and mine every recipe into the paper's uniform
// structure on a worker pool, emitting one RecipeModel JSON per line.
// Mining streams in chunks so an interrupt (SIGINT) stops dispatch at
// a chunk boundary, flushes every complete record already mined, and
// exits 0 — downstream consumers never see a torn JSONL line.
//
// Mining degrades per record, not per batch: a poison recipe (invalid
// UTF-8, a pathological phrase, a contained panic) is skipped in the
// output and written to the -quarantine dead-letter file as one JSONL
// line {index, phrase, code, detail}; the other records are
// byte-identical to a clean run. Without -quarantine, rejections are
// counted but discarded. The final summary line always reports the
// cumulative quarantine counters (total, by code).
//
// With -o the run is additionally crash-safe: see mineDurable.
func cmdMine(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mine", flag.ContinueOnError)
	n := fs.Int("n", 100, "number of synthetic recipes to mine")
	seed := fs.Int64("seed", 1, "corpus generator seed")
	modelPath := fs.String("model", "", "persisted pipeline file (empty: train fresh)")
	workers := fs.Int("workers", runtime.NumCPU(), "mining goroutines")
	output := fs.String("o", "", "durable output file (empty: stream to stdout)")
	quarantinePath := fs.String("quarantine", "", "dead-letter JSONL file for poison records (empty: count but discard)")
	resume := fs.Bool("resume", false, "continue an interrupted -o run from its checkpoint")
	force := fs.Bool("force", false, "overwrite an existing -o file instead of refusing")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run (train + mine) to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile at exit to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("mine: -n must be positive")
	}
	if *resume && *output == "" {
		return fmt.Errorf("mine: -resume requires -o")
	}
	if *resume && *force {
		return fmt.Errorf("mine: -resume and -force are contradictory; pick one")
	}
	if *cpuprofile != "" {
		stopProfile, err := startCPUProfile(*cpuprofile)
		if err != nil {
			return err
		}
		defer stopProfile()
	}
	if *memprofile != "" {
		// A failed profile write at exit must not fail the mine (the
		// mined records are already flushed); report it and move on.
		defer func() {
			if perr := writeHeapProfile(*memprofile); perr != nil {
				fmt.Fprintln(os.Stderr, "recipemine:", perr)
			}
		}()
	}
	p, err := loadOrTrain(*modelPath, os.Stderr)
	if err != nil {
		return err
	}
	p.SetWorkers(*workers)
	inputs := recipemodel.Inputs(recipemodel.SyntheticRecipes(*n, *seed))

	if *output != "" {
		fp, err := mineFingerprint(*n, *seed, *modelPath)
		if err != nil {
			return err
		}
		return mineDurable(ctx, p, inputs, *output, *quarantinePath, *resume, *force, fp)
	}

	var sink *quarantine.Sink
	if *quarantinePath != "" {
		sink, err = quarantine.Create(*quarantinePath)
		if err != nil {
			return err
		}
		defer sink.Close()
	}
	var qc quarantine.Counters
	bw := bufio.NewWriter(out)
	enc := json.NewEncoder(bw)
	chunk := 4 * p.Workers()
	mined := 0
	for lo := 0; lo < len(inputs); lo += chunk {
		hi := min(lo+chunk, len(inputs))
		models, rejs, mineErr := p.ModelRecipesPartial(ctx, inputs[lo:hi])
		// On cancellation the processed slots form a contiguous prefix
		// of the chunk (the pool dispatches in order and finishes what
		// it started); emit the prefix, never a partial record. A slot
		// that is neither mined nor rejected was never dispatched.
		rejected := rejectionsByIndex(rejs)
		for i, m := range models {
			if m == nil {
				r, ok := rejected[i]
				if !ok {
					break
				}
				r.Index = lo + i
				qc.Observe(r.Code)
				if err := sink.Append(r); err != nil {
					return err
				}
				continue
			}
			if err := enc.Encode(m); err != nil {
				return err
			}
			mined++
		}
		if mineErr != nil {
			if err := bw.Flush(); err != nil {
				return err
			}
			if errors.Is(mineErr, context.Canceled) {
				fmt.Fprintf(os.Stderr, "recipemine: interrupted; flushed %d/%d complete records; quarantined %s\n", mined, len(inputs), qc.Summary())
				return nil
			}
			return mineErr
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "recipemine: mined %d/%d records; quarantined %s\n", mined, len(inputs), qc.Summary())
	return nil
}

// rejectionsByIndex keys a chunk's rejections by their chunk-local
// index so emit loops can distinguish "rejected" from "undispatched"
// nil slots.
func rejectionsByIndex(rejs []recipemodel.Rejection) map[int]recipemodel.Rejection {
	m := make(map[int]recipemodel.Rejection, len(rejs))
	for _, r := range rejs {
		m[r.Index] = r
	}
	return m
}

// mineFingerprint hashes everything that determines a mining run's
// output — corpus size, generator seed, and the exact model bytes —
// into a short hex digest stored in the checkpoint manifest. A -resume
// whose fingerprint differs would splice records from two different
// runs into one file, so it is refused. -workers is deliberately
// excluded: output is byte-identical at any worker count, and a resume
// is free to use a different pool size.
func mineFingerprint(n int, seed int64, modelPath string) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "recipemine/v1 n=%d seed=%d model=", n, seed)
	if modelPath == "" {
		io.WriteString(h, "fresh-default")
	} else {
		f, err := os.Open(modelPath)
		if err != nil {
			return "", fmt.Errorf("mine: fingerprint model: %w", err)
		}
		defer f.Close()
		if _, err := io.Copy(h, f); err != nil {
			return "", fmt.Errorf("mine: fingerprint model: %w", err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:8]), nil
}

// mineDurable is the crash-safe mining path. The discipline per chunk
// is data-first write-ahead: append records, flush, fsync the data
// file, then atomically persist a manifest recording how many records
// and bytes are durable. A crash at ANY point leaves the previous
// manifest describing an fsync'd prefix of the file; -resume truncates
// whatever torn tail lies past that offset and re-mines from the
// recorded record count. Mining is deterministic, so the resumed run's
// bytes are identical to an uninterrupted run's.
//
// The quarantine dead-letter file rides the same discipline: its bytes
// are fsync'd before every manifest save, the manifest records its
// durable offset and rejection count, and a resume truncates its torn
// tail too. Inputs consumed = Records + Quarantined, which is where a
// resume re-enters the corpus; both files end byte-identical to an
// uninterrupted run's.
func mineDurable(ctx context.Context, p *recipemodel.Pipeline, inputs []recipemodel.RecipeInput, path, quarantinePath string, resume, force bool, fp string) error {
	ckptPath := checkpoint.PathFor(path)
	var f *os.File
	var sink *quarantine.Sink
	var qc quarantine.Counters
	start := 0
	quarantined := 0
	if resume {
		man, err := checkpoint.Load(ckptPath)
		if err != nil {
			return fmt.Errorf("mine: -resume: %w", err)
		}
		if man.Fingerprint != fp {
			return fmt.Errorf("mine: -resume refused: checkpoint %s was written by a different run configuration (fingerprint %s, this run %s); rerun with the original -n/-seed/-model or start fresh with -force", ckptPath, man.Fingerprint, fp)
		}
		if man.Records+man.Quarantined > len(inputs) {
			return fmt.Errorf("mine: -resume: checkpoint %s records %d inputs consumed but this run mines only %d", ckptPath, man.Records+man.Quarantined, len(inputs))
		}
		// The dead-letter file is part of the run's durable state: a
		// resume must keep writing the same file (or keep discarding),
		// or the rejection log would silently lose or skip records.
		if man.QuarantineOffset > 0 && quarantinePath == "" {
			return fmt.Errorf("mine: -resume: checkpoint %s has a quarantine file at offset %d; pass the original -quarantine path", ckptPath, man.QuarantineOffset)
		}
		if man.Quarantined > 0 && man.QuarantineOffset == 0 && quarantinePath != "" {
			return fmt.Errorf("mine: -resume: the original run discarded %d rejections (no -quarantine); resuming with -quarantine would produce a dead-letter file missing them", man.Quarantined)
		}
		f, err = os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			return fmt.Errorf("mine: -resume: %w", err)
		}
		// Drop the torn tail: anything past the manifest offset was
		// never covered by a checkpoint and may be a partial line.
		if err := f.Truncate(man.Offset); err != nil {
			f.Close()
			return fmt.Errorf("mine: -resume truncate: %w", err)
		}
		if _, err := f.Seek(man.Offset, io.SeekStart); err != nil {
			f.Close()
			return fmt.Errorf("mine: -resume seek: %w", err)
		}
		if quarantinePath != "" {
			sink, err = quarantine.Resume(quarantinePath, man.QuarantineOffset)
			if err != nil {
				f.Close()
				return fmt.Errorf("mine: -resume: %w", err)
			}
			// Rebuild the by-code counters from the durable rejections so
			// the final summary covers the whole run, not just this
			// process.
			durable, err := quarantine.ReadFile(quarantinePath)
			if err != nil {
				f.Close()
				sink.Close()
				return fmt.Errorf("mine: -resume: %w", err)
			}
			for _, r := range durable {
				qc.Observe(r.Code)
			}
		}
		start = man.Records
		quarantined = man.Quarantined
		if start+quarantined == len(inputs) {
			f.Close()
			sink.Close()
			fmt.Fprintf(os.Stderr, "recipemine: %s already complete (%d records, %d quarantined)\n", path, start, quarantined)
			return nil
		}
		fmt.Fprintf(os.Stderr, "recipemine: resuming %s at input %d/%d (offset %d, %d quarantined)\n", path, start+quarantined, len(inputs), man.Offset, quarantined)
	} else {
		flags := os.O_WRONLY | os.O_CREATE | os.O_EXCL
		if force {
			flags = os.O_WRONLY | os.O_CREATE | os.O_TRUNC
		}
		var err error
		f, err = os.OpenFile(path, flags, 0o644)
		if errors.Is(err, os.ErrExist) {
			return fmt.Errorf("mine: %s already exists; pass -resume to continue it or -force to overwrite", path)
		}
		if err != nil {
			return err
		}
		if quarantinePath != "" {
			sink, err = quarantine.Create(quarantinePath)
			if err != nil {
				f.Close()
				return err
			}
		}
		// Write-ahead: an empty manifest marks the run as started so a
		// crash before the first checkpoint still resumes cleanly.
		if err := checkpoint.Save(ckptPath, checkpoint.Manifest{Fingerprint: fp}); err != nil {
			f.Close()
			sink.Close()
			return fmt.Errorf("mine: %w", err)
		}
	}
	defer f.Close()
	defer sink.Close()

	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	mined := start
	// sync makes everything appended so far durable and checkpoints it:
	// flush the buffers, fsync the data (output and dead-letter), then
	// atomically replace the manifest. Ordering is the crash-safety
	// invariant — the manifest never describes bytes that are not
	// already on disk.
	sync := func() error {
		if err := bw.Flush(); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
		offset, err := f.Seek(0, io.SeekCurrent)
		if err != nil {
			return err
		}
		qoff, err := sink.Sync()
		if err != nil {
			return err
		}
		return checkpoint.Save(ckptPath, checkpoint.Manifest{
			Fingerprint:      fp,
			Records:          mined,
			Offset:           offset,
			Quarantined:      quarantined,
			QuarantineOffset: qoff,
		})
	}

	chunk := 4 * p.Workers()
	for lo := start + quarantined; lo < len(inputs); lo += chunk {
		hi := min(lo+chunk, len(inputs))
		models, rejs, mineErr := p.ModelRecipesPartial(ctx, inputs[lo:hi])
		rejected := rejectionsByIndex(rejs)
		for i, m := range models {
			if m == nil {
				r, ok := rejected[i]
				if !ok {
					// Neither mined nor rejected: the pool never
					// dispatched this slot (cancellation mid-chunk).
					break
				}
				r.Index = lo + i
				qc.Observe(r.Code)
				if err := sink.Append(r); err != nil {
					return err
				}
				quarantined++
				continue
			}
			if err := enc.Encode(m); err != nil {
				return err
			}
			// Simulated-kill point for crash tests: an injected error
			// aborts before any flush or checkpoint, losing buffered
			// bytes exactly like a SIGKILL would.
			if err := faults.InjectContext(ctx, FaultEmit); err != nil {
				return fmt.Errorf("mine: %w", err)
			}
			mined++
		}
		if mineErr != nil {
			if err := sync(); err != nil {
				return err
			}
			if errors.Is(mineErr, context.Canceled) {
				fmt.Fprintf(os.Stderr, "recipemine: interrupted; %d/%d records durable in %s (quarantined %s); continue with -resume\n", mined, len(inputs), path, qc.Summary())
				return nil
			}
			return mineErr
		}
		if err := sync(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "recipemine: mined %d/%d records to %s; quarantined %s\n", mined, len(inputs), path, qc.Summary())
	return nil
}

// cmdSnapshot packs a mined JSONL corpus into a new version of the
// versioned snapshot store — the segmented, sha256-manifested form
// recipeserver's query endpoints load and hot-swap. Publishing is
// two-phase and crash-safe; the store's CURRENT pointer swings to the
// new version only after every segment and the manifest are durable.
func cmdSnapshot(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("snapshot", flag.ContinueOnError)
	store := fs.String("store", "", "snapshot store directory (required)")
	from := fs.String("from", "", "mined corpus JSONL file, as produced by `recipemine mine -o` (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *store == "" || *from == "" {
		return fmt.Errorf("snapshot: -store and -from are required")
	}
	f, err := os.Open(*from)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	var models []*core.RecipeModel
	dec := json.NewDecoder(bufio.NewReader(f))
	for {
		var m core.RecipeModel
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("snapshot: %s: decode record %d: %w", *from, len(models), err)
		}
		models = append(models, &m)
	}
	st, err := snapshot.OpenStore(*store)
	if err != nil {
		return err
	}
	version, err := st.Build(models)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "published snapshot %s (%d docs) to %s\n", version, len(models), *store)
	return nil
}

func cmdInstruct(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("instruct: need an instruction sentence")
	}
	p, err := trainPipeline(out)
	if err != nil {
		return err
	}
	for _, step := range args {
		spans, tree, rels := p.AnnotateInstruction(step)
		fmt.Fprintf(out, "%s\n", step)
		fmt.Fprintln(out, "entities:")
		tokens := tree.Tokens
		for _, sp := range spans {
			fmt.Fprintf(out, "  [%s] %s\n", sp.Type, strings.Join(tokens[sp.Start:sp.End], " "))
		}
		fmt.Fprintln(out, "dependency parse:")
		fmt.Fprint(out, tree.String())
		fmt.Fprintln(out, "relations:")
		for _, r := range rels {
			fmt.Fprintf(out, "  %s\n", r)
		}
	}
	return nil
}

// output modes of cmdModel.
type modelMode int

const (
	modeStructure modelMode = iota
	modeNutrition
	modeTranslate
	modeFlow
)

// cmdModel reads a recipe from stdin: first line is the title, then
// ingredient lines until a "--" separator, then instruction text.
func cmdModel(args []string, in io.Reader, out io.Writer, mode modelMode) error {
	fs := flag.NewFlagSet("model", flag.ContinueOnError)
	cuisine := fs.String("cuisine", "", "cuisine label")
	modelPath := fs.String("model", "", "persisted pipeline file (empty: train fresh)")
	lang := fs.String("lang", "fr", "target language for translate (fr, es)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc := bufio.NewScanner(in)
	var title string
	var ingredients []string
	var instructions strings.Builder
	stage := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case stage == 0:
			title = line
			stage = 1
		case stage == 1 && line == "--":
			stage = 2
		case stage == 1 && line != "":
			ingredients = append(ingredients, line)
		case stage == 2 && line != "":
			instructions.WriteString(line)
			instructions.WriteByte(' ')
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if title == "" || len(ingredients) == 0 {
		return fmt.Errorf("model: expected 'title\\ningredients...\\n--\\ninstructions' on stdin")
	}
	p, err := loadOrTrain(*modelPath, out)
	if err != nil {
		return err
	}
	m := p.ModelRecipe(title, *cuisine, ingredients, instructions.String())

	switch mode {
	case modeTranslate:
		text, err := recipemodel.Translate(m, *lang)
		if err != nil {
			return err
		}
		fmt.Fprint(out, text)
		return nil
	case modeFlow:
		fmt.Fprint(out, recipemodel.BuildFlowGraph(m).DOT())
		return nil
	}

	fmt.Fprintf(out, "# %s\n", m.Title)
	fmt.Fprintln(out, "Ingredient records:")
	for _, r := range m.Ingredients {
		fmt.Fprintf(out, "  name=%q state=%q qty=%q unit=%q temp=%q dryfresh=%q size=%q\n",
			r.Name, r.State, r.Quantity, r.Unit, r.Temp, r.DryFresh, r.Size)
	}
	fmt.Fprintln(out, "Event chain:")
	for _, e := range m.Events {
		fmt.Fprintf(out, "  step %d: %s\n", e.Step+1, e.Relation)
	}
	if mode == modeNutrition {
		profile, resolved := p.EstimateNutrition(m)
		fmt.Fprintf(out, "Nutrition (%d/%d ingredients resolved): %s\n",
			resolved, len(m.Ingredients), profile)
	}
	return nil
}
