// Command recipemine is the CLI front end of the recipe-modeling
// pipeline: generate synthetic RecipeDB-style recipes, annotate
// ingredient phrases, and mine full recipes into the paper's uniform
// structure.
//
// Usage:
//
//	recipemine generate  -n 3 -seed 7
//	recipemine train     -o pipeline.bin
//	recipemine annotate  [-model pipeline.bin] [-workers N] "2 cups chopped onion" [...]
//	recipemine instruct  "Bring the water to a boil in a large pot."
//	recipemine mine      -n 100 -workers 8  # batch-mine a synthetic corpus to JSONL
//	recipemine model     < recipe.txt     # title \n ingredients... \n -- \n instructions
//	recipemine nutrition < recipe.txt
//	recipemine translate -lang fr < recipe.txt
//	recipemine flow      < recipe.txt     # dataflow graph as DOT
//
// Batch subcommands fan out over -workers goroutines (default: all
// CPUs); output is identical at any worker count.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strings"

	"recipemodel"
	"recipemodel/internal/recipedb"
)

func main() {
	// SIGINT cancels the context; streaming subcommands (mine) flush
	// the complete records written so far and exit 0 instead of dying
	// mid-line. A second SIGINT kills the process the hard way (the
	// stop func restores default signal handling).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := runCtx(ctx, os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "recipemine:", err)
		os.Exit(1)
	}
}

// run keeps the historical signature for non-streaming callers.
func run(args []string, in io.Reader, out io.Writer) error {
	return runCtx(context.Background(), args, in, out)
}

func runCtx(ctx context.Context, args []string, in io.Reader, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: recipemine <generate|annotate|instruct|mine|model|nutrition> [args]")
	}
	switch args[0] {
	case "generate":
		return cmdGenerate(args[1:], out)
	case "train":
		return cmdTrain(args[1:], out)
	case "annotate":
		return cmdAnnotate(args[1:], out)
	case "instruct":
		return cmdInstruct(args[1:], out)
	case "mine":
		return cmdMine(ctx, args[1:], out)
	case "model":
		return cmdModel(args[1:], in, out, modeStructure)
	case "nutrition":
		return cmdModel(args[1:], in, out, modeNutrition)
	case "translate":
		return cmdModel(args[1:], in, out, modeTranslate)
	case "flow":
		return cmdModel(args[1:], in, out, modeFlow)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// cmdTrain trains a pipeline and persists it.
func cmdTrain(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("train", flag.ContinueOnError)
	output := fs.String("o", "pipeline.bin", "output model file")
	seed := fs.Int64("seed", 1, "training seed")
	phrases := fs.Int("phrases", 2500, "training phrases per source")
	instructions := fs.Int("instructions", 1200, "training instructions per source")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := recipemodel.DefaultOptions()
	opts.Seed = *seed
	opts.TrainingPhrases = *phrases
	opts.TrainingInstructions = *instructions
	fmt.Fprintln(out, "training pipeline on synthetic gold corpus ...")
	p, err := recipemodel.NewPipeline(opts)
	if err != nil {
		return err
	}
	f, err := os.Create(*output)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := p.Save(f); err != nil {
		return err
	}
	fmt.Fprintf(out, "saved pipeline to %s\n", *output)
	return nil
}

// loadOrTrain loads a persisted pipeline when path is non-empty, else
// trains a fresh one.
func loadOrTrain(path string, out io.Writer) (*recipemodel.Pipeline, error) {
	if path == "" {
		return trainPipeline(out)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return recipemodel.LoadPipeline(f)
}

func cmdGenerate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	n := fs.Int("n", 3, "number of recipes")
	seed := fs.Int64("seed", 1, "generator seed")
	jsonl := fs.Bool("jsonl", false, "emit the gold-annotated corpus as JSON Lines")
	src := fs.String("source", "allrecipes", "site style: allrecipes or foodcom")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *jsonl {
		source := recipedb.SourceAllRecipes
		if strings.EqualFold(*src, "foodcom") {
			source = recipedb.SourceFoodCom
		}
		g := recipedb.NewGenerator(source, *seed)
		return recipedb.WriteJSONL(out, g.Recipes(*n))
	}
	for _, r := range recipemodel.SyntheticRecipes(*n, *seed) {
		fmt.Fprintf(out, "# %s (%s)\n", r.Title, r.Cuisine)
		fmt.Fprintln(out, "Ingredients:")
		for _, line := range r.IngredientLines {
			fmt.Fprintf(out, "  %s\n", line)
		}
		fmt.Fprintf(out, "Instructions:\n  %s\n\n", r.Instructions)
	}
	return nil
}

func trainPipeline(out io.Writer) (*recipemodel.Pipeline, error) {
	fmt.Fprintln(out, "training pipeline on synthetic gold corpus ...")
	return recipemodel.NewPipeline(recipemodel.DefaultOptions())
}

func cmdAnnotate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("annotate", flag.ContinueOnError)
	modelPath := fs.String("model", "", "persisted pipeline file (empty: train fresh)")
	workers := fs.Int("workers", runtime.NumCPU(), "batch annotation goroutines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	args = fs.Args()
	if len(args) == 0 {
		return fmt.Errorf("annotate: need at least one ingredient phrase")
	}
	p, err := loadOrTrain(*modelPath, out)
	if err != nil {
		return err
	}
	p.SetWorkers(*workers)
	fmt.Fprintf(out, "%-40s %-20s %-10s %-9s %-10s %-10s %-9s %-8s\n",
		"Phrase", "Name", "State", "Quantity", "Unit", "Temp", "DryFresh", "Size")
	for _, r := range p.AnnotateIngredients(args) {
		fmt.Fprintf(out, "%-40s %-20s %-10s %-9s %-10s %-10s %-9s %-8s\n",
			r.Phrase, r.Name, r.State, r.Quantity, r.Unit, r.Temp, r.DryFresh, r.Size)
	}
	return nil
}

// cmdMine is the batch-mining engine: generate (or later: ingest) a
// recipe corpus and mine every recipe into the paper's uniform
// structure on a worker pool, emitting one RecipeModel JSON per line.
// Mining streams in chunks so an interrupt (SIGINT) stops dispatch at
// a chunk boundary, flushes every complete record already mined, and
// exits 0 — downstream consumers never see a torn JSONL line.
func cmdMine(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mine", flag.ContinueOnError)
	n := fs.Int("n", 100, "number of synthetic recipes to mine")
	seed := fs.Int64("seed", 1, "corpus generator seed")
	modelPath := fs.String("model", "", "persisted pipeline file (empty: train fresh)")
	workers := fs.Int("workers", runtime.NumCPU(), "mining goroutines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n <= 0 {
		return fmt.Errorf("mine: -n must be positive")
	}
	p, err := loadOrTrain(*modelPath, os.Stderr)
	if err != nil {
		return err
	}
	p.SetWorkers(*workers)
	inputs := recipemodel.Inputs(recipemodel.SyntheticRecipes(*n, *seed))

	bw := bufio.NewWriter(out)
	enc := json.NewEncoder(bw)
	chunk := 4 * p.Workers()
	mined := 0
	for lo := 0; lo < len(inputs); lo += chunk {
		hi := min(lo+chunk, len(inputs))
		models, mineErr := p.ModelRecipesContext(ctx, inputs[lo:hi])
		// On cancellation the mined slots form a contiguous prefix of
		// the chunk (the pool dispatches in order and finishes what it
		// started); emit the prefix, never a partial record.
		for _, m := range models {
			if m == nil {
				break
			}
			if err := enc.Encode(m); err != nil {
				return err
			}
			mined++
		}
		if mineErr != nil {
			if err := bw.Flush(); err != nil {
				return err
			}
			if errors.Is(mineErr, context.Canceled) {
				fmt.Fprintf(os.Stderr, "recipemine: interrupted; flushed %d/%d complete records\n", mined, len(inputs))
				return nil
			}
			return mineErr
		}
	}
	return bw.Flush()
}

func cmdInstruct(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("instruct: need an instruction sentence")
	}
	p, err := trainPipeline(out)
	if err != nil {
		return err
	}
	for _, step := range args {
		spans, tree, rels := p.AnnotateInstruction(step)
		fmt.Fprintf(out, "%s\n", step)
		fmt.Fprintln(out, "entities:")
		tokens := tree.Tokens
		for _, sp := range spans {
			fmt.Fprintf(out, "  [%s] %s\n", sp.Type, strings.Join(tokens[sp.Start:sp.End], " "))
		}
		fmt.Fprintln(out, "dependency parse:")
		fmt.Fprint(out, tree.String())
		fmt.Fprintln(out, "relations:")
		for _, r := range rels {
			fmt.Fprintf(out, "  %s\n", r)
		}
	}
	return nil
}

// output modes of cmdModel.
type modelMode int

const (
	modeStructure modelMode = iota
	modeNutrition
	modeTranslate
	modeFlow
)

// cmdModel reads a recipe from stdin: first line is the title, then
// ingredient lines until a "--" separator, then instruction text.
func cmdModel(args []string, in io.Reader, out io.Writer, mode modelMode) error {
	fs := flag.NewFlagSet("model", flag.ContinueOnError)
	cuisine := fs.String("cuisine", "", "cuisine label")
	modelPath := fs.String("model", "", "persisted pipeline file (empty: train fresh)")
	lang := fs.String("lang", "fr", "target language for translate (fr, es)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc := bufio.NewScanner(in)
	var title string
	var ingredients []string
	var instructions strings.Builder
	stage := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case stage == 0:
			title = line
			stage = 1
		case stage == 1 && line == "--":
			stage = 2
		case stage == 1 && line != "":
			ingredients = append(ingredients, line)
		case stage == 2 && line != "":
			instructions.WriteString(line)
			instructions.WriteByte(' ')
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if title == "" || len(ingredients) == 0 {
		return fmt.Errorf("model: expected 'title\\ningredients...\\n--\\ninstructions' on stdin")
	}
	p, err := loadOrTrain(*modelPath, out)
	if err != nil {
		return err
	}
	m := p.ModelRecipe(title, *cuisine, ingredients, instructions.String())

	switch mode {
	case modeTranslate:
		text, err := recipemodel.Translate(m, *lang)
		if err != nil {
			return err
		}
		fmt.Fprint(out, text)
		return nil
	case modeFlow:
		fmt.Fprint(out, recipemodel.BuildFlowGraph(m).DOT())
		return nil
	}

	fmt.Fprintf(out, "# %s\n", m.Title)
	fmt.Fprintln(out, "Ingredient records:")
	for _, r := range m.Ingredients {
		fmt.Fprintf(out, "  name=%q state=%q qty=%q unit=%q temp=%q dryfresh=%q size=%q\n",
			r.Name, r.State, r.Quantity, r.Unit, r.Temp, r.DryFresh, r.Size)
	}
	fmt.Fprintln(out, "Event chain:")
	for _, e := range m.Events {
		fmt.Fprintf(out, "  step %d: %s\n", e.Step+1, e.Relation)
	}
	if mode == modeNutrition {
		profile, resolved := p.EstimateNutrition(m)
		fmt.Fprintf(out, "Nutrition (%d/%d ingredients resolved): %s\n",
			resolved, len(m.Ingredients), profile)
	}
	return nil
}
