package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"recipemodel/internal/core"
	"recipemodel/internal/faults"
)

func TestRunNoArgs(t *testing.T) {
	if err := run(nil, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("expected usage error")
	}
}

func TestRunUnknownSubcommand(t *testing.T) {
	if err := run([]string{"bogus"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestGenerate(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"generate", "-n", "2", "-seed", "3"}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Count(s, "# ") != 2 {
		t.Fatalf("expected 2 recipes:\n%s", s)
	}
	if !strings.Contains(s, "Ingredients:") || !strings.Contains(s, "Instructions:") {
		t.Fatalf("missing sections:\n%s", s)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run([]string{"generate", "-n", "1", "-seed", "9"}, strings.NewReader(""), &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"generate", "-n", "1", "-seed", "9"}, strings.NewReader(""), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("generate not deterministic")
	}
}

func TestAnnotateRequiresArgs(t *testing.T) {
	if err := run([]string{"annotate"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestModelRequiresWellFormedInput(t *testing.T) {
	if err := run([]string{"model"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("expected error on empty stdin")
	}
}

// TestModelEndToEnd exercises the full CLI path; it trains a pipeline,
// so it is the slowest test in the package.
func TestModelEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline")
	}
	in := "Pasta\n1 pound spaghetti\n2 cups flour\n--\nBring the water to a boil in a large pot.\n"
	var out bytes.Buffer
	if err := run([]string{"nutrition"}, strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Ingredient records:") || !strings.Contains(s, "Event chain:") {
		t.Fatalf("missing output sections:\n%s", s)
	}
	if !strings.Contains(s, "Nutrition") {
		t.Fatalf("missing nutrition line:\n%s", s)
	}
}

func TestTrainAndReuseModel(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline")
	}
	dir := t.TempDir()
	model := filepath.Join(dir, "p.bin")
	var out bytes.Buffer
	if err := run([]string{"train", "-o", model, "-phrases", "400", "-instructions", "200"},
		strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(model); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"annotate", "-model", model, "2 cups chopped onion"},
		strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "onion") {
		t.Fatalf("annotate output:\n%s", out.String())
	}
}

// TestMineSubcommand drives the batch-mining engine end to end: train
// a small pipeline, mine a corpus at two worker counts, and require
// valid, identical JSONL from both (the parallel-equals-serial
// guarantee at the CLI boundary).
func TestMineSubcommand(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline")
	}
	dir := t.TempDir()
	model := filepath.Join(dir, "p.bin")
	var out bytes.Buffer
	if err := run([]string{"train", "-o", model, "-phrases", "400", "-instructions", "200"},
		strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	mine := func(workers string) string {
		var buf bytes.Buffer
		if err := run([]string{"mine", "-model", model, "-n", "4", "-seed", "11", "-workers", workers},
			strings.NewReader(""), &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := mine("1")
	lines := strings.Split(strings.TrimSpace(serial), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 JSONL lines, got %d", len(lines))
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if m["Title"] == "" {
			t.Fatalf("line %d has empty title", i)
		}
	}
	if par := mine("3"); par != serial {
		t.Fatal("mine output differs between -workers 1 and -workers 3")
	}
}

// TestMineInterruptFlushesPartial is the SIGINT drill without a real
// signal: the context wired by main's signal.NotifyContext is
// cancelled deterministically mid-mine via a fault hook, and mine must
// flush only complete JSONL records and report success (the exit-0
// path). No sleeps — the fault's OnHit counter fixes the cancel point.
func TestMineInterruptFlushesPartial(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline")
	}
	dir := t.TempDir()
	model := filepath.Join(dir, "p.bin")
	var out bytes.Buffer
	if err := run([]string{"train", "-o", model, "-phrases", "400", "-instructions", "200"},
		strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	defer faults.Enable(core.FaultModel, faults.Fault{OnHit: func(hit int) {
		if hit == 3 {
			cancel()
		}
	}})()

	var buf bytes.Buffer
	err := runCtx(ctx, []string{"mine", "-model", model, "-n", "64", "-seed", "11", "-workers", "2"},
		strings.NewReader(""), &buf)
	if err != nil {
		t.Fatalf("interrupted mine must exit 0, got %v", err)
	}
	got := strings.TrimSpace(buf.String())
	if got == "" {
		t.Fatal("expected at least one flushed record before the interrupt")
	}
	lines := strings.Split(got, "\n")
	if len(lines) >= 64 {
		t.Fatalf("interrupt did not stop mining: %d lines", len(lines))
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is torn or invalid JSON: %v", i, err)
		}
	}
}

func TestMineRejectsBadN(t *testing.T) {
	if err := run([]string{"mine", "-n", "0"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("expected error for -n 0")
	}
}

func TestTranslateSubcommand(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline")
	}
	in := "Pasta\n2 cups chopped onion\n--\nBoil the onion in a pot.\n"
	var out bytes.Buffer
	if err := run([]string{"translate", "-lang", "es"}, strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cebolla") {
		t.Fatalf("spanish output:\n%s", out.String())
	}
}

func TestFlowSubcommand(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline")
	}
	in := "Pasta\n1 pound spaghetti\n--\nBoil the spaghetti in a pot. Drain and serve.\n"
	var out bytes.Buffer
	if err := run([]string{"flow"}, strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "digraph flow") {
		t.Fatalf("flow output:\n%s", out.String())
	}
}

func TestGenerateJSONL(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"generate", "-jsonl", "-n", "2", "-seed", "4", "-source", "foodcom"},
		strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 JSONL lines, got %d", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, `{"id":`) || !strings.Contains(l, `"spans"`) {
			t.Fatalf("bad JSONL line: %s", l[:60])
		}
	}
}
