package main

// Poison-corpus chaos drills for the durable mining path: one record
// in the batch panics (via the index-targeted fault point inside the
// per-record containment), and the run must degrade per record — the
// N-1 good records land byte-identical to a clean run, the poison
// record becomes exactly one typed dead-letter line, and the
// checkpoint arithmetic (Records + Quarantined) keeps -resume exact.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"recipemodel/internal/checkpoint"
	"recipemodel/internal/core"
	"recipemodel/internal/faults"
	"recipemodel/internal/quarantine"
)

// armPoison arms the per-record fault point so that exactly global
// record g of a 12-record mine panics, for the given -workers value.
// The miner chunks inputs at 4*workers and passes chunk-local indices
// to the pool, so the targeting depends on the chunk geometry:
// with workers=4 the chunk (16) covers all 12 records and the local
// index IS the global index; with workers=1 processing is serial, so
// hit g+1 is record g and Skip pins the exact chunk occurrence of the
// recurring local index.
func armPoison(g, workers int) func() {
	chunk := 4 * workers
	f := faults.Fault{PanicMsg: "poison record", Indices: []int{g % chunk}, Limit: 1}
	if chunk < 12 {
		f.Skip = g
	}
	return faults.Enable(core.FaultRecord, f)
}

// dropLine removes the g-th JSONL line from a mined corpus.
func dropLine(t *testing.T, data []byte, g int) []byte {
	t.Helper()
	lines := bytes.SplitAfter(data, []byte("\n"))
	var out []byte
	kept := 0
	for i, l := range lines {
		if len(l) == 0 {
			continue
		}
		if i == g {
			continue
		}
		out = append(out, l...)
		kept++
	}
	if kept != 11 {
		t.Fatalf("dropLine kept %d lines, want 11", kept)
	}
	return out
}

// TestMinePoisonRecordQuarantined is the acceptance drill: for a
// poison record at the first, middle, and last index, at worker counts
// 1 and 4, the durable mine must finish with the other 11 records
// byte-identical to the clean baseline and exactly one typed
// dead-letter line for the poisoned index.
func TestMinePoisonRecordQuarantined(t *testing.T) {
	model := crashModel(t)
	dir := t.TempDir()
	want := baseline(t, model, dir)

	for _, g := range []int{0, 6, 11} {
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("idx%d-w%d", g, workers)
			path := filepath.Join(dir, name+".jsonl")
			qpath := filepath.Join(dir, name+".bad.jsonl")

			disarm := armPoison(g, workers)
			err := mineTo(t, model, path, "-workers", fmt.Sprint(workers), "-quarantine", qpath)
			disarm()
			if err != nil {
				t.Fatalf("%s: poisoned mine must still succeed, got %v", name, err)
			}

			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if wantOut := dropLine(t, want, g); !bytes.Equal(got, wantOut) {
				t.Fatalf("%s: survivors differ from clean run minus record %d (%d vs %d bytes)",
					name, g, len(got), len(wantOut))
			}

			rejs, err := quarantine.ReadFile(qpath)
			if err != nil {
				t.Fatal(err)
			}
			if len(rejs) != 1 || rejs[0].Index != g || rejs[0].Code != quarantine.CodeRecordPanic {
				t.Fatalf("%s: dead-letter = %+v, want one record_panic at index %d", name, rejs, g)
			}
			if rejs[0].Phrase == "" {
				t.Fatalf("%s: dead-letter line does not echo the recipe title", name)
			}

			man, err := checkpoint.Load(checkpoint.PathFor(path))
			if err != nil {
				t.Fatal(err)
			}
			qfi, err := os.Stat(qpath)
			if err != nil {
				t.Fatal(err)
			}
			if man.Records != 11 || man.Quarantined != 1 ||
				man.Offset != int64(len(got)) || man.QuarantineOffset != qfi.Size() {
				t.Fatalf("%s: manifest %+v, want 11 records + 1 quarantined at offsets %d/%d",
					name, man, len(got), qfi.Size())
			}
		}
	}
}

// TestMinePoisonWithoutQuarantineFile: with no -quarantine flag the
// rejection is counted but discarded — the run still succeeds with the
// 11 survivors and the manifest still records the consumed input.
func TestMinePoisonWithoutQuarantineFile(t *testing.T) {
	model := crashModel(t)
	dir := t.TempDir()
	want := baseline(t, model, dir)

	path := filepath.Join(dir, "discard.jsonl")
	disarm := armPoison(6, 1)
	err := mineTo(t, model, path, "-workers", "1")
	disarm()
	if err != nil {
		t.Fatalf("poisoned mine without -quarantine = %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, dropLine(t, want, 6)) {
		t.Fatal("survivors differ from clean run minus record 6")
	}
	man, err := checkpoint.Load(checkpoint.PathFor(path))
	if err != nil {
		t.Fatal(err)
	}
	if man.Records != 11 || man.Quarantined != 1 || man.QuarantineOffset != 0 {
		t.Fatalf("manifest %+v, want 11 records + 1 discarded quarantine", man)
	}
}

// TestMinePoisonCrashResume: a run that has already quarantined a
// poison record is killed mid-flight and resumed. The resume must
// re-enter the corpus at Records+Quarantined — not Records — and both
// the output and the dead-letter file must end byte-identical to an
// uninterrupted poisoned run.
func TestMinePoisonCrashResume(t *testing.T) {
	model := crashModel(t)
	dir := t.TempDir()

	// Reference: the same poisoned run, uninterrupted.
	refPath := filepath.Join(dir, "ref.jsonl")
	refQ := filepath.Join(dir, "ref.bad.jsonl")
	disarm := armPoison(2, 1)
	err := mineTo(t, model, refPath, "-workers", "1", "-quarantine", refQ)
	disarm()
	if err != nil {
		t.Fatal(err)
	}
	wantOut, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	wantQ, err := os.ReadFile(refQ)
	if err != nil {
		t.Fatal(err)
	}

	// Killed run: poison at record 2 (chunk 0, checkpointed with the
	// first sync), then an injected kill on the 5th good-record emit —
	// inside chunk 1, past the checkpoint that recorded the quarantine.
	path := filepath.Join(dir, "kill.jsonl")
	qpath := filepath.Join(dir, "kill.bad.jsonl")
	disarmPoison := armPoison(2, 1)
	disarmKill := faults.Enable(FaultEmit, faults.Fault{Err: errKill, Skip: 4})
	err = mineTo(t, model, path, "-workers", "1", "-quarantine", qpath)
	disarmKill()
	disarmPoison()
	if !errors.Is(err, errKill) {
		t.Fatalf("mine returned %v, want injected kill", err)
	}
	man, err := checkpoint.Load(checkpoint.PathFor(path))
	if err != nil {
		t.Fatal(err)
	}
	if man.Quarantined != 1 || man.Records != 3 {
		t.Fatalf("mid-run manifest %+v, want 3 records + 1 quarantined durable", man)
	}

	// Resume past the poison: the tail has no poison record, so no
	// fault is re-armed; the quarantine file must be preserved as-is.
	if err := mineTo(t, model, path, "-workers", "1", "-quarantine", qpath, "-resume"); err != nil {
		t.Fatalf("resume: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantOut) {
		t.Fatalf("resumed output differs from uninterrupted poisoned run (%d vs %d bytes)", len(got), len(wantOut))
	}
	gotQ, err := os.ReadFile(qpath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotQ, wantQ) {
		t.Fatal("resumed dead-letter file differs from uninterrupted poisoned run")
	}
	man, err = checkpoint.Load(checkpoint.PathFor(path))
	if err != nil {
		t.Fatal(err)
	}
	if man.Records != 11 || man.Quarantined != 1 {
		t.Fatalf("final manifest %+v, want 11 records + 1 quarantined", man)
	}
}

// TestMineResumeRefusesQuarantineMismatch: resuming a run whose
// checkpoint records a quarantine file without passing -quarantine
// (or vice versa after a discarding run) is refused — the dead-letter
// log must stay complete.
func TestMineResumeRefusesQuarantineMismatch(t *testing.T) {
	model := crashModel(t)
	dir := t.TempDir()

	path := filepath.Join(dir, "mm.jsonl")
	qpath := filepath.Join(dir, "mm.bad.jsonl")
	disarmPoison := armPoison(2, 1)
	disarmKill := faults.Enable(FaultEmit, faults.Fault{Err: errKill, Skip: 4})
	err := mineTo(t, model, path, "-workers", "1", "-quarantine", qpath)
	disarmKill()
	disarmPoison()
	if !errors.Is(err, errKill) {
		t.Fatalf("mine returned %v, want injected kill", err)
	}
	err = mineTo(t, model, path, "-workers", "1", "-resume")
	if err == nil || !strings.Contains(err.Error(), "quarantine") {
		t.Fatalf("resume without -quarantine = %v, want quarantine refusal", err)
	}
}
