package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"recipemodel/internal/core"
	"recipemodel/internal/snapshot"
)

// writeCorpusJSONL writes n hand-built RecipeModels in the exact wire
// form `recipemine mine -o` produces (one JSON object per line).
func writeCorpusJSONL(t *testing.T, path string, n int) {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := 0; i < n; i++ {
		m := core.RecipeModel{
			Title:   "corpus-recipe",
			Cuisine: "french",
			Ingredients: []core.IngredientRecord{
				{Phrase: "2 cups onion", Name: "onion", Quantity: "2", Unit: "cups"},
			},
			Instructions: []string{"Chop the onion."},
		}
		if err := enc.Encode(&m); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotSubcommand publishes a mined corpus into a snapshot
// store and loads it back through the store's integrity checks.
func TestSnapshotSubcommand(t *testing.T) {
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus.jsonl")
	storeDir := filepath.Join(dir, "snapshots")
	writeCorpusJSONL(t, corpus, 7)

	var out bytes.Buffer
	if err := run([]string{"snapshot", "-store", storeDir, "-from", corpus}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "published snapshot v000001 (7 docs)") {
		t.Fatalf("output: %s", out.String())
	}
	st, err := snapshot.OpenStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := st.Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != "v000001" || len(snap.Models) != 7 {
		t.Fatalf("loaded %q with %d docs", snap.Version, len(snap.Models))
	}
	if snap.Models[0].Ingredients[0].Name != "onion" {
		t.Fatalf("round-trip lost ingredient: %+v", snap.Models[0])
	}

	// A second publish becomes v000002 and CURRENT follows it.
	out.Reset()
	if err := run([]string{"snapshot", "-store", storeDir, "-from", corpus}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "v000002") {
		t.Fatalf("second publish output: %s", out.String())
	}
}

func TestSnapshotSubcommandValidation(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"snapshot"}, strings.NewReader(""), &bytes.Buffer{}); err == nil {
		t.Fatal("missing flags accepted")
	}
	corpus := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(corpus, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"snapshot", "-store", filepath.Join(dir, "s"), "-from", corpus}, strings.NewReader(""), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "empty snapshot") {
		t.Fatalf("empty corpus: err = %v", err)
	}
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"snapshot", "-store", filepath.Join(dir, "s2"), "-from", bad}, strings.NewReader(""), &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "decode record 0") {
		t.Fatalf("bad corpus: err = %v", err)
	}
}
