package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"recipemodel/internal/server"
)

func TestResolveCacheEntries(t *testing.T) {
	cases := []struct {
		entries int
		off     bool
		want    int
	}{
		{entries: defaultCacheEntries, off: false, want: defaultCacheEntries},
		{entries: 128, off: false, want: 128},
		{entries: 128, off: true, want: 0}, // -cache-off wins
		{entries: 0, off: false, want: 0},
		{entries: -5, off: false, want: 0},
	}
	for _, c := range cases {
		if got := resolveCacheEntries(c.entries, c.off); got != c.want {
			t.Errorf("resolveCacheEntries(%d, %v) = %d, want %d", c.entries, c.off, got, c.want)
		}
	}
}

// TestCacheConfigLine: the startup line states the posture and, when
// on, the bound — the operator-facing contract of satellite (a).
func TestCacheConfigLine(t *testing.T) {
	on := cacheConfigLine(defaultCacheEntries)
	if !strings.Contains(on, "on") || !strings.Contains(on, "65536 entries") {
		t.Fatalf("on line = %q", on)
	}
	if off := cacheConfigLine(0); !strings.Contains(off, "off") {
		t.Fatalf("off line = %q", off)
	}
}

// TestBuildServerWiresCache: the flag value reaches the running
// server — a trained server built with CacheEntries answers the
// second identical annotate from cache, visible on /readyz.
func TestBuildServerWiresCache(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline")
	}
	h, err := buildServer("", "", 0, smallOpts(), server.Config{
		CacheEntries: resolveCacheEntries(defaultCacheEntries, false),
	})
	if err != nil {
		t.Fatal(err)
	}
	h.SetReady(true)
	for i := 0; i < 2; i++ {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/annotate",
			strings.NewReader(`{"phrase":"2 cups chopped onion"}`)))
		if w.Code != 200 {
			t.Fatalf("annotate %d: %d %s", i, w.Code, w.Body.String())
		}
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	var ready struct {
		Cache struct {
			Enabled    bool   `json:"enabled"`
			Hits       int64  `json:"hits"`
			Generation uint64 `json:"generation"`
		} `json:"cache"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &ready); err != nil {
		t.Fatalf("readyz: %v\n%s", err, w.Body.String())
	}
	if !ready.Cache.Enabled || ready.Cache.Hits != 1 || ready.Cache.Generation != 1 {
		t.Fatalf("cache status = %+v", ready.Cache)
	}
}
