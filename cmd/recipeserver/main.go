// Command recipeserver serves the recipe-modeling pipeline over HTTP:
// it trains (or loads) a pipeline, optionally mines and indexes a
// synthetic corpus for /search, and listens until a SIGINT/SIGTERM
// asks it to drain.
//
// Usage:
//
//	recipeserver -addr :8080 -corpus 200
//	recipeserver -model pipeline.bin -corpus 0 -max-inflight 512 -request-timeout 30s
//	recipeserver -store models/ -corpus 0    # versioned store + hot reload
//
// Endpoints: POST /annotate, POST /annotate/batch, POST /model,
// POST /search, POST /admin/reload (hot model swap, -store only),
// GET /healthz (liveness), GET /readyz (readiness + reload state —
// true only once training and corpus indexing finish).
//
// Resilience posture: the http.Server runs with hardened read/write
// timeouts (a stalled client cannot hold a connection forever), the
// handler stack sheds load with 429 once -max-inflight work units are
// admitted, panics answer 500 without killing the process, and a
// termination signal flips /readyz to false, drains in-flight requests
// for up to -drain-timeout, then exits 0.
//
// Heavy-tail posture: annotations are memoized in a bounded,
// generation-pinned cache (-cache-entries, default 65536; -cache-off
// disables) with singleflight coalescing, so a herd of identical
// requests decodes once and, under a saturated limiter, cached
// phrases still answer while only uncached work sheds. /readyz
// reports the cache and shed counters.
//
// Tier posture: annotation resolves through the degradation ladder
// (DESIGN §15): CRF tier → cache hot-set → rules tier → shed. A
// circuit breaker watches CRF-tier health (contained record panics,
// canary-rejected reloads, shard failures); when it trips, annotation
// endpoints answer 200 from the deterministic gazetteer tier
// (degraded:true, tier:"rules") instead of 429/500, and half-open
// probes restore the CRF tier automatically. -rules-off disables the
// ladder; -rules-route enables healthy-mode short-circuiting of
// high-confidence phrases; -breaker-* tune the trip/probe behavior;
// -agreement-sample audits CRF output against the rules tier. /readyz
// reports per-tier counters and the breaker state.
//
// Query posture: with -snapshots the server boots a versioned corpus
// snapshot store (internal/snapshot) and serves POST /query/similar,
// /query/search, and /query/nutrition over -query-shards in-memory
// shards with per-shard panic containment and an optional
// -query-shard-budget deadline. A failed shard degrades queries to
// partial results (degraded:true in the envelope) instead of 5xx. Boot
// uses the newest snapshot that passes integrity checks — a torn
// CURRENT version is rejected with a named-file digest error and the
// previous version serves. SIGHUP (or POST /admin/reload/corpus)
// hot-swaps to a newly published snapshot; in-flight queries finish on
// the snapshot they started on.
//
// Durability posture: with -store the pipeline is served out of a
// versioned, checksummed model store (internal/persist). A retrain
// publishes a new version with `recipemine train -store`; SIGHUP or
// POST /admin/reload makes the server load it off to the side, run the
// canary self-check, and atomically swap it in — a corrupt or
// canary-failing bundle is rejected and the old model keeps serving.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"recipemodel"
	"recipemodel/internal/breaker"
	"recipemodel/internal/core"
	"recipemodel/internal/faults"
	"recipemodel/internal/index"
	"recipemodel/internal/quarantine"
	"recipemodel/internal/resilience"
	"recipemodel/internal/rules"
	"recipemodel/internal/server"
	"recipemodel/internal/snapshot"
)

// pipeAdapter bridges the public Pipeline to the server's interface.
type pipeAdapter struct {
	p *recipemodel.Pipeline
}

func (a pipeAdapter) AnnotateIngredient(phrase string) core.IngredientRecord {
	return a.p.AnnotateIngredient(phrase)
}

func (a pipeAdapter) AnnotateIngredientChecked(phrase string) (core.IngredientRecord, error) {
	return a.p.AnnotateIngredientChecked(phrase)
}

func (a pipeAdapter) AnnotateIngredientsContext(ctx context.Context, phrases []string) ([]core.IngredientRecord, error) {
	return a.p.AnnotateIngredientsContext(ctx, phrases)
}

func (a pipeAdapter) AnnotateIngredientsPartial(ctx context.Context, phrases []string) ([]core.IngredientRecord, []quarantine.Rejection, error) {
	return a.p.AnnotateIngredientsPartial(ctx, phrases)
}

func (a pipeAdapter) ModelRecipeContext(ctx context.Context, title, cuisine string, ingredientLines []string, instructions string) (*core.RecipeModel, error) {
	return a.p.ModelRecipeContext(ctx, title, cuisine, ingredientLines, instructions)
}

// storeLoader builds the hot-reload loader for a versioned model
// store: every call loads the store's CURRENT version fresh, so a
// retrain that published a new version is picked up by the next
// reload.
func storeLoader(storePath string) func() (server.Pipeline, string, error) {
	return func() (server.Pipeline, string, error) {
		p, version, err := recipemodel.LoadPipelineFromStore(storePath)
		if err != nil {
			return nil, version, err
		}
		return pipeAdapter{p}, version, nil
	}
}

// buildServer assembles the resilient HTTP server: load (from a flat
// file or a versioned store) or train a pipeline, optionally mine a
// corpus for /search. With a store path the hot-reload loader is wired
// into the config so /admin/reload and SIGHUP can swap in retrained
// versions. The returned server is not yet ready (SetReady) — main
// flips it after assembly so /readyz answers false for the whole
// training window. Extracted from main so tests can drive the full
// assembly.
func buildServer(modelPath, storePath string, corpusSize int, opts recipemodel.Options, cfg server.Config) (*server.Server, error) {
	var p *recipemodel.Pipeline
	var err error
	switch {
	case storePath != "":
		p, cfg.ModelVersion, err = recipemodel.LoadPipelineFromStore(storePath)
		cfg.Loader = storeLoader(storePath)
	case modelPath != "":
		var f *os.File
		f, err = os.Open(modelPath)
		if err != nil {
			return nil, err
		}
		p, err = recipemodel.LoadPipeline(f)
		f.Close()
	default:
		log.Println("training pipeline on synthetic gold corpus ...")
		p, err = recipemodel.NewPipeline(opts)
	}
	if err != nil {
		return nil, err
	}

	var ix *index.Index
	if corpusSize > 0 {
		log.Printf("mining %d recipes for /search on %d workers ...", corpusSize, p.Workers())
		models := p.ModelRecipes(recipemodel.Inputs(recipemodel.SyntheticRecipes(corpusSize, 1)))
		ix = index.New(models)
	}
	return server.NewWithConfig(pipeAdapter{p}, ix, cfg), nil
}

// defaultCacheEntries bounds the annotation cache out of the box: at
// ~200 bytes per cached record, 64k entries is on the order of 15 MB
// — big enough that a heavy-tail phrase distribution lives entirely
// in cache, small enough to be irrelevant next to the model itself.
const defaultCacheEntries = 64 << 10

// resolveCacheEntries folds the two cache flags into the config
// value: -cache-off wins over any -cache-entries, and a negative
// entry count means off (the cache constructor treats <= 0 as
// disabled, so the fold is total).
func resolveCacheEntries(entries int, off bool) int {
	if off || entries < 0 {
		return 0
	}
	return entries
}

// cacheConfigLine is the startup log line stating the cache posture,
// so an operator reading the log knows whether heavy-tail hardening
// is active without probing /readyz.
func cacheConfigLine(entries int) string {
	if entries <= 0 {
		return "annotation cache: off (every request decodes; no coalescing)"
	}
	return fmt.Sprintf("annotation cache: on (%d entries, singleflight coalescing, hits served under overload)", entries)
}

// tierConfigLine is the startup log line stating the degradation-
// ladder posture (DESIGN §15), mirroring cacheConfigLine.
func tierConfigLine(enabled, route bool, threshold float64) string {
	if !enabled {
		return "rules tier: off (CRF failures surface; no degraded fallback)"
	}
	if route {
		return fmt.Sprintf("rules tier: on (breaker-guarded fallback; healthy-mode routing at confidence >= %g)", threshold)
	}
	return "rules tier: on (breaker-guarded fallback; healthy-mode routing off)"
}

// openCorpus boots the query-service corpus from a versioned snapshot
// store: the newest snapshot that passes integrity checks is loaded
// (each rejected version is logged with its named-file digest error),
// and the returned loader backs /admin/reload/corpus and the SIGHUP
// hot-swap. The loader reads CURRENT strictly — a torn freshly
// published version is a rejected reload, never a silent rollback.
func openCorpus(dir string, logger *log.Logger) (*snapshot.Snapshot, func() (*snapshot.Snapshot, error), error) {
	st, err := snapshot.OpenStore(dir)
	if err != nil {
		return nil, nil, err
	}
	snap, rejected, err := st.LoadLatestGood(context.Background())
	for _, rerr := range rejected {
		logger.Printf("corpus snapshot rejected at boot: %v", rerr)
	}
	if err != nil {
		return nil, nil, err
	}
	return snap, func() (*snapshot.Snapshot, error) { return st.Load(context.Background()) }, nil
}

// newHTTPServer wraps the handler in a hardened http.Server: header
// reads, full-request reads, response writes, and idle keep-alives are
// all bounded so no stalled peer can pin a connection goroutine
// indefinitely.
func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

// FaultSighup fires after a SIGHUP reload round (model and, when
// configured, corpus) has fully completed. Tests gate on its OnHit
// instead of sleep-polling the served versions.
const FaultSighup = "recipeserver.sighup_done"

// FaultDrain fires right after a termination signal flips readiness
// false, before the drain starts — the exact instant load balancers
// stop routing here.
const FaultDrain = "recipeserver.drain_start"

var (
	_ = faults.MustRegister(FaultSighup)
	_ = faults.MustRegister(FaultDrain)
)

// serve runs srv on ln until a termination signal arrives on sigs,
// then drains gracefully: readiness flips false (load balancers stop
// routing here), in-flight requests get up to drain to finish, and a
// clean drain returns nil so the process exits 0. A SIGHUP is not a
// termination: it triggers a validated hot reload (rejections are
// logged, the old model keeps serving) and the server keeps running.
// Split from main so tests can feed the signal channel directly.
func serve(srv *http.Server, s *server.Server, ln net.Listener, drain time.Duration, sigs <-chan os.Signal, logger *log.Logger) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	for {
		select {
		case err := <-errc:
			return err
		case sig := <-sigs:
			if sig == syscall.SIGHUP {
				if version, err := s.Reload(); err != nil {
					logger.Printf("SIGHUP reload rejected: %v (still serving %s)", err, s.ModelVersion())
				} else {
					logger.Printf("SIGHUP reload ok: serving model %s", version)
				}
				if s.CorpusReloadEnabled() {
					if version, err := s.ReloadCorpus(); err != nil {
						logger.Printf("SIGHUP corpus reload rejected: %v (still serving %s)", err, s.CorpusVersion())
					} else {
						logger.Printf("SIGHUP corpus reload ok: serving snapshot %s", version)
					}
				}
				_ = faults.Inject(FaultSighup)
				continue
			}
			logger.Printf("received %v; draining in-flight requests (up to %v)", sig, drain)
			s.SetReady(false)
			_ = faults.Inject(FaultDrain)
			ctx, cancel := context.WithTimeout(context.Background(), drain)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				return fmt.Errorf("drain incomplete: %w", err)
			}
			logger.Print("drained; exiting")
			return nil
		}
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelPath := flag.String("model", "", "persisted pipeline file (empty: train fresh)")
	storePath := flag.String("store", "", "versioned model store directory; enables /admin/reload and SIGHUP hot reload (overrides -model)")
	corpusSize := flag.Int("corpus", 200, "synthetic recipes to mine and index for /search (0 disables)")
	maxInFlight := flag.Int("max-inflight", 1024, "admitted work units before shedding with 429 (batch = phrase count; 0 = unlimited)")
	requestTimeout := flag.Duration("request-timeout", 30*time.Second, "per-request deadline threaded through the pipeline (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "graceful-shutdown budget for in-flight requests")
	cacheEntries := flag.Int("cache-entries", defaultCacheEntries, "annotation cache capacity in entries (0 disables)")
	cacheOff := flag.Bool("cache-off", false, "disable the annotation cache and request coalescing entirely")
	snapshotsPath := flag.String("snapshots", "", "versioned corpus snapshot store directory; enables the /query endpoints and corpus hot reload")
	queryShards := flag.Int("query-shards", 4, "in-memory corpus shards behind the /query endpoints (clamped to the doc count)")
	queryShardBudget := flag.Duration("query-shard-budget", 2*time.Second, "per-shard deadline before a query degrades to partial results (0 disables)")
	rulesOff := flag.Bool("rules-off", false, "disable the rule-tier annotation fallback (annotation errors surface instead of degrading)")
	rulesRoute := flag.Bool("rules-route", false, "healthy-mode routing: answer high-confidence phrases from the rules tier without a CRF decode")
	rulesThreshold := flag.Float64("rules-threshold", 1, "minimum rules-tier confidence for healthy-mode routing and agreement audits, in (0, 1]")
	breakerWindow := flag.Int("breaker-window", 64, "CRF-tier breaker: sliding outcome window size")
	breakerFailureRate := flag.Float64("breaker-failure-rate", 0.5, "CRF-tier breaker: failure fraction of the window that trips it open")
	breakerMinSamples := flag.Int("breaker-min-samples", 8, "CRF-tier breaker: outcomes required in the window before it can trip")
	breakerOpenTimeout := flag.Duration("breaker-open-timeout", 5*time.Second, "CRF-tier breaker: base open interval before half-open probing (escalates with jittered backoff)")
	breakerProbes := flag.Int("breaker-probes", 1, "CRF-tier breaker: concurrent half-open probe decodes")
	breakerCloseAfter := flag.Int("breaker-close-successes", 3, "CRF-tier breaker: consecutive probe successes that close it")
	agreementSample := flag.Int("agreement-sample", 0, "audit every Nth successful CRF decode against the rules tier (0 disables)")
	flag.Parse()

	cfg := server.Config{
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *requestTimeout,
		RetryAfter:     time.Second,
		CacheEntries:   resolveCacheEntries(*cacheEntries, *cacheOff),
	}
	log.Print(cacheConfigLine(cfg.CacheEntries))
	if !*rulesOff {
		cfg.Rules = rules.New()
		cfg.RulesRoute = *rulesRoute
		cfg.RulesThreshold = *rulesThreshold
		cfg.AgreementSample = *agreementSample
		cfg.Breaker = breaker.Config{
			Window:      *breakerWindow,
			FailureRate: *breakerFailureRate,
			MinSamples:  *breakerMinSamples,
			OpenTimeout: *breakerOpenTimeout,
			MaxProbes:   *breakerProbes,
			CloseAfter:  *breakerCloseAfter,
			// Escalating, spread-jittered reopen schedule: a fleet of
			// replicas tripping together desynchronizes its probes
			// instead of re-hammering a struggling model in lockstep.
			ReopenBackoff: &resilience.Backoff{
				Base:     *breakerOpenTimeout,
				Max:      8 * *breakerOpenTimeout,
				Attempts: 6,
				Jitter:   0.5,
				Mode:     resilience.JitterSpread,
				Seed:     int64(os.Getpid()),
			},
		}
	}
	log.Print(tierConfigLine(!*rulesOff, *rulesRoute, *rulesThreshold))
	if *snapshotsPath != "" {
		snap, loader, err := openCorpus(*snapshotsPath, log.Default())
		if err != nil {
			log.Fatal(err)
		}
		cfg.CorpusSnapshot = snap
		cfg.CorpusShards = *queryShards
		cfg.CorpusLoader = loader
		cfg.QueryShardBudget = *queryShardBudget
		log.Printf("serving corpus snapshot %s (%d docs) over %d shards", snap.Version, len(snap.Models), *queryShards)
	}
	s, err := buildServer(*modelPath, *storePath, *corpusSize, recipemodel.DefaultOptions(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	s.SetReady(true)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM, syscall.SIGHUP)
	log.Printf("listening on %s (ready)", *addr)
	if err := serve(newHTTPServer(*addr, s), s, ln, *drainTimeout, sigs, log.Default()); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
