// Command recipeserver serves the recipe-modeling pipeline over HTTP:
// it trains (or loads) a pipeline, optionally mines and indexes a
// synthetic corpus for /search, and listens.
//
// Usage:
//
//	recipeserver -addr :8080 -corpus 200
//	recipeserver -model pipeline.bin -corpus 0
//
// Endpoints: POST /annotate, POST /model, POST /search, GET /healthz.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"recipemodel"
	"recipemodel/internal/core"
	"recipemodel/internal/index"
	"recipemodel/internal/server"
)

// pipeAdapter bridges the public Pipeline to the server's interface.
type pipeAdapter struct {
	p *recipemodel.Pipeline
}

func (a pipeAdapter) AnnotateIngredient(phrase string) core.IngredientRecord {
	return a.p.AnnotateIngredient(phrase)
}

func (a pipeAdapter) AnnotateIngredients(phrases []string) []core.IngredientRecord {
	return a.p.AnnotateIngredients(phrases)
}

func (a pipeAdapter) ModelRecipe(title, cuisine string, ingredientLines []string, instructions string) *core.RecipeModel {
	return a.p.ModelRecipe(title, cuisine, ingredientLines, instructions)
}

// buildServer assembles the HTTP handler: load or train a pipeline,
// optionally mine a corpus for /search. Extracted from main so tests
// can drive the full assembly.
func buildServer(modelPath string, corpusSize int, opts recipemodel.Options) (http.Handler, error) {
	var p *recipemodel.Pipeline
	var err error
	if modelPath != "" {
		f, ferr := os.Open(modelPath)
		if ferr != nil {
			return nil, ferr
		}
		p, err = recipemodel.LoadPipeline(f)
		f.Close()
	} else {
		log.Println("training pipeline on synthetic gold corpus ...")
		p, err = recipemodel.NewPipeline(opts)
	}
	if err != nil {
		return nil, err
	}

	var ix *index.Index
	if corpusSize > 0 {
		log.Printf("mining %d recipes for /search on %d workers ...", corpusSize, p.Workers())
		models := p.ModelRecipes(recipemodel.Inputs(recipemodel.SyntheticRecipes(corpusSize, 1)))
		ix = index.New(models)
	}
	return server.New(pipeAdapter{p}, ix), nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	modelPath := flag.String("model", "", "persisted pipeline (empty: train fresh)")
	corpusSize := flag.Int("corpus", 200, "synthetic recipes to mine and index for /search (0 disables)")
	flag.Parse()

	srv, err := buildServer(*modelPath, *corpusSize, recipemodel.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("listening on %s", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
