package main

import (
	"context"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"recipemodel"
	"recipemodel/internal/core"
	"recipemodel/internal/faults"
	"recipemodel/internal/quarantine"
	"recipemodel/internal/server"
)

// smallOpts keeps test training fast.
func smallOpts() recipemodel.Options {
	o := recipemodel.DefaultOptions()
	o.TrainingPhrases = 400
	o.TrainingInstructions = 200
	o.Epochs = 3
	return o
}

func TestBuildServerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline")
	}
	h, err := buildServer("", "", 20, smallOpts(), server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// annotate
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/annotate",
		strings.NewReader(`{"phrase":"2 cups chopped onion"}`)))
	if w.Code != 200 || !strings.Contains(w.Body.String(), "onion") {
		t.Fatalf("annotate: %d %s", w.Code, w.Body.String())
	}
	// batch with the request context threaded through the pool
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/annotate/batch",
		strings.NewReader(`{"phrases":["2 cups chopped onion","1 tsp salt"]}`)))
	if w.Code != 200 {
		t.Fatalf("batch: %d %s", w.Code, w.Body.String())
	}
	// search over the mined corpus
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/search",
		strings.NewReader(`{"processes":["preheat"]}`)))
	if w.Code != 200 {
		t.Fatalf("search: %d %s", w.Code, w.Body.String())
	}
	// readiness is main's to flip: still false out of buildServer.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before SetReady: %d", w.Code)
	}
	h.SetReady(true)
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if w.Code != 200 {
		t.Fatalf("readyz after SetReady: %d", w.Code)
	}
}

func TestBuildServerFromPersistedModel(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline")
	}
	p, err := recipemodel.NewPipeline(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	h, err := buildServer(path, "", 0, recipemodel.Options{}, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != 200 {
		t.Fatalf("health: %d", w.Code)
	}
	// /search disabled without a corpus.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/search", strings.NewReader(`{}`)))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("search without corpus: %d", w.Code)
	}
}

func TestBuildServerMissingModelFile(t *testing.T) {
	if _, err := buildServer("/nonexistent/model.bin", "", 0, recipemodel.Options{}, server.Config{}); err == nil {
		t.Fatal("expected error for missing model file")
	}
}

// gatedPipe is a minimal server.Pipeline whose single-phrase
// annotation signals `entered` then blocks until `gate` closes, so
// shutdown tests can hold a request in flight deterministically — no
// sleeps.
type gatedPipe struct {
	entered chan struct{}
	gate    chan struct{}
}

func (g gatedPipe) AnnotateIngredient(phrase string) core.IngredientRecord {
	if g.entered != nil {
		g.entered <- struct{}{}
	}
	if g.gate != nil {
		<-g.gate
	}
	return core.IngredientRecord{Phrase: phrase}
}

func (g gatedPipe) AnnotateIngredientChecked(phrase string) (core.IngredientRecord, error) {
	return g.AnnotateIngredient(phrase), nil
}

func (g gatedPipe) AnnotateIngredientsContext(ctx context.Context, phrases []string) ([]core.IngredientRecord, error) {
	out := make([]core.IngredientRecord, len(phrases))
	for i, p := range phrases {
		out[i] = core.IngredientRecord{Phrase: p}
	}
	return out, ctx.Err()
}

func (g gatedPipe) AnnotateIngredientsPartial(ctx context.Context, phrases []string) ([]core.IngredientRecord, []quarantine.Rejection, error) {
	out, err := g.AnnotateIngredientsContext(ctx, phrases)
	return out, nil, err
}

func (g gatedPipe) ModelRecipeContext(ctx context.Context, title, cuisine string, lines []string, instr string) (*core.RecipeModel, error) {
	return &core.RecipeModel{Title: title}, nil
}

// TestServeGracefulShutdown is the kill -INT drill without a real
// process kill: a request is held in flight, the termination signal
// arrives, and serve must (1) flip readiness off, (2) let the
// in-flight request finish with 200, (3) return nil — the exit-0 path
// — and (4) stop accepting new connections.
func TestServeGracefulShutdown(t *testing.T) {
	entered := make(chan struct{}, 1)
	gate := make(chan struct{})
	s := server.New(gatedPipe{entered: entered, gate: gate}, nil)
	s.SetReady(true)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := newHTTPServer(ln.Addr().String(), s)
	sigs := make(chan os.Signal, 1)

	serveDone := make(chan error, 1)
	go func() { serveDone <- serve(srv, s, ln, 5*time.Second, sigs, log.New(io.Discard, "", 0)) }()

	base := "http://" + ln.Addr().String()
	inFlight := make(chan int, 1)
	go func() {
		resp, err := http.Post(base+"/annotate", "application/json",
			strings.NewReader(`{"phrase":"slow"}`))
		if err != nil {
			inFlight <- -1
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		inFlight <- resp.StatusCode
	}()
	<-entered // the request is now inside the pipeline, holding its connection

	// the drain_start fault point fires right after readiness flips
	// false, so gating on it replaces sleep-polling s.Ready().
	draining := make(chan struct{})
	defer faults.Enable(FaultDrain, faults.Fault{OnHit: func(int) { close(draining) }})()
	sigs <- syscall.SIGTERM
	select {
	case <-draining:
	case <-time.After(3 * time.Second):
		t.Fatal("drain never started after termination signal")
	}
	if s.Ready() {
		t.Fatal("readiness still true after termination signal")
	}

	close(gate) // release the in-flight request; the drain must let it finish
	if code := <-inFlight; code != 200 {
		t.Fatalf("in-flight request during drain = %d, want 200", code)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("serve returned %v, want nil (exit 0)", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after drain")
	}
}
