package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"recipemodel"
)

// smallOpts keeps test training fast.
func smallOpts() recipemodel.Options {
	o := recipemodel.DefaultOptions()
	o.TrainingPhrases = 400
	o.TrainingInstructions = 200
	o.Epochs = 3
	return o
}

func TestBuildServerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline")
	}
	h, err := buildServer("", 20, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	// annotate
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/annotate",
		strings.NewReader(`{"phrase":"2 cups chopped onion"}`)))
	if w.Code != 200 || !strings.Contains(w.Body.String(), "onion") {
		t.Fatalf("annotate: %d %s", w.Code, w.Body.String())
	}
	// search over the mined corpus
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/search",
		strings.NewReader(`{"processes":["preheat"]}`)))
	if w.Code != 200 {
		t.Fatalf("search: %d %s", w.Code, w.Body.String())
	}
}

func TestBuildServerFromPersistedModel(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline")
	}
	p, err := recipemodel.NewPipeline(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.bin")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	h, err := buildServer(path, 0, recipemodel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if w.Code != 200 {
		t.Fatalf("health: %d", w.Code)
	}
	// /search disabled without a corpus.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/search", strings.NewReader(`{}`)))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("search without corpus: %d", w.Code)
	}
}

func TestBuildServerMissingModelFile(t *testing.T) {
	if _, err := buildServer("/nonexistent/model.bin", 0, recipemodel.Options{}); err == nil {
		t.Fatal("expected error for missing model file")
	}
}
