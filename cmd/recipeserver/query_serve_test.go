package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"recipemodel/internal/core"
	"recipemodel/internal/faults"
	"recipemodel/internal/server"
	"recipemodel/internal/snapshot"
)

// corpusModels builds a small, structurally varied corpus.
func corpusModels(n int) []*core.RecipeModel {
	names := []string{"onion", "garlic", "tomato"}
	out := make([]*core.RecipeModel, n)
	for i := range out {
		out[i] = &core.RecipeModel{
			Title:   "recipe",
			Cuisine: "thai",
			Ingredients: []core.IngredientRecord{
				{Phrase: "1 cup " + names[i%3], Name: names[i%3], Quantity: "1", Unit: "cup"},
			},
			Instructions: []string{"Cook."},
		}
	}
	return out
}

// TestOpenCorpus: boot loads the newest good version; a torn CURRENT
// version is logged and rolled past.
func TestOpenCorpus(t *testing.T) {
	dir := t.TempDir()
	st, err := snapshot.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Build(corpusModels(5)); err != nil {
		t.Fatal(err)
	}
	v2, err := st.Build(corpusModels(8))
	if err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "snapshots", v2, "seg-000000.jsonl")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	var logBuf bytes.Buffer
	snap, loader, err := openCorpus(dir, log.New(&logBuf, "", 0))
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != "v000001" || len(snap.Models) != 5 {
		t.Fatalf("boot snapshot %q with %d docs, want v000001 with 5", snap.Version, len(snap.Models))
	}
	if !strings.Contains(logBuf.String(), v2) || !strings.Contains(logBuf.String(), "manifest expects") {
		t.Fatalf("rejection log: %s", logBuf.String())
	}
	// The strict loader keeps refusing the torn CURRENT version.
	if _, err := loader(); err == nil {
		t.Fatal("loader accepted the torn CURRENT version")
	}
}

// TestServeSIGHUPReloadsCorpus: a SIGHUP swaps in a newly published
// snapshot without terminating the server.
func TestServeSIGHUPReloadsCorpus(t *testing.T) {
	dir := t.TempDir()
	st, err := snapshot.OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Build(corpusModels(4)); err != nil {
		t.Fatal(err)
	}
	snap, loader, err := openCorpus(dir, log.New(io.Discard, "", 0))
	if err != nil {
		t.Fatal(err)
	}
	s := server.NewWithConfig(gatedPipe{}, nil, server.Config{
		CorpusSnapshot: snap,
		CorpusShards:   2,
		CorpusLoader:   loader,
	})
	s.SetReady(true)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := newHTTPServer(ln.Addr().String(), s)
	sigs := make(chan os.Signal, 1)
	serveDone := make(chan error, 1)
	go func() { serveDone <- serve(srv, s, ln, 5*time.Second, sigs, log.New(io.Discard, "", 0)) }()
	base := "http://" + ln.Addr().String()
	waitHealthy(t, base)

	// Queries serve the boot snapshot.
	resp, err := http.Post(base+"/query/similar", "application/json", strings.NewReader(`{"id": 0, "k": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Snapshot string `json:"snapshot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if env.Snapshot != "v000001" {
		t.Fatalf("boot query served %q", env.Snapshot)
	}

	// Publish v2, SIGHUP, and wait for the swap.
	if _, err := st.Build(corpusModels(6)); err != nil {
		t.Fatal(err)
	}
	hupDone := make(chan struct{}, 1)
	defer faults.Enable(FaultSighup, faults.Fault{OnHit: func(int) {
		select {
		case hupDone <- struct{}{}:
		default:
		}
	}})()
	sigs <- syscall.SIGHUP
	select {
	case <-hupDone:
	case <-time.After(3 * time.Second):
		t.Fatal("SIGHUP round never completed")
	}
	if got := s.CorpusVersion(); got != "v000002" {
		t.Fatalf("corpus after SIGHUP = %q, want v000002", got)
	}

	sigs <- syscall.SIGTERM
	if err := <-serveDone; err != nil {
		t.Fatalf("serve returned %v, want nil", err)
	}
}
