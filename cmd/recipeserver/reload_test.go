package main

import (
	"encoding/json"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"recipemodel"
	"recipemodel/internal/core"
	"recipemodel/internal/faults"
	"recipemodel/internal/server"
)

// TestBuildServerFromStoreAndHotReload is the full retrain-and-redeploy
// loop against a real versioned store: train v1, serve it, publish v2,
// reload over HTTP, and confirm /readyz tracks the swap.
func TestBuildServerFromStoreAndHotReload(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline")
	}
	storeDir := t.TempDir()
	p, err := recipemodel.NewPipeline(smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	v1, err := p.SaveToStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}

	h, err := buildServer("", storeDir, 0, recipemodel.Options{}, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	h.SetReady(true)
	if got := h.ModelVersion(); got != v1 {
		t.Fatalf("serving %q, want %q", got, v1)
	}

	// the live request path works off the store-loaded model.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/annotate",
		strings.NewReader(`{"phrase":"2 cups chopped onion"}`)))
	if w.Code != 200 || !strings.Contains(w.Body.String(), "onion") {
		t.Fatalf("annotate: %d %s", w.Code, w.Body.String())
	}

	// publish v2 (a retrain), then hot-reload into it.
	v2, err := p.SaveToStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/admin/reload", nil))
	if w.Code != 200 {
		t.Fatalf("reload: %d %s", w.Code, w.Body.String())
	}
	if got := h.ModelVersion(); got != v2 {
		t.Fatalf("serving %q after reload, want %q", got, v2)
	}
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	var ready struct {
		Model   string `json:"model"`
		Reloads int64  `json:"reloads"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Model != v2 || ready.Reloads != 1 {
		t.Fatalf("readyz = %+v", ready)
	}
}

func TestBuildServerFromEmptyStore(t *testing.T) {
	if _, err := buildServer("", t.TempDir(), 0, recipemodel.Options{}, server.Config{}); err == nil {
		t.Fatal("expected error for a store with no versions")
	}
}

// TestServeSIGHUPReloads: a SIGHUP mid-serve triggers a reload without
// terminating; the server keeps answering and a later SIGTERM still
// drains cleanly. Uses a fake loader so no training is needed.
func TestServeSIGHUPReloads(t *testing.T) {
	reloaded := make(chan struct{}, 1)
	// gatedPipe extracts no entities, so pin a canary it passes (empty
	// name) — this test exercises the signal plumbing, not the canary.
	s := server.NewWithConfig(gatedPipe{}, nil, server.Config{
		ModelVersion: "v1",
		Canary:       []core.CanaryCase{{Phrase: "2 cups chopped onion", WantName: ""}},
		Loader: func() (server.Pipeline, string, error) {
			select {
			case reloaded <- struct{}{}:
			default:
			}
			return gatedPipe{}, "v2", nil
		},
	})
	s.SetReady(true)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := newHTTPServer(ln.Addr().String(), s)
	sigs := make(chan os.Signal, 1)
	serveDone := make(chan error, 1)
	go func() { serveDone <- serve(srv, s, ln, 5*time.Second, sigs, log.New(io.Discard, "", 0)) }()

	base := "http://" + ln.Addr().String()
	waitHealthy(t, base)

	// sighup_done fires after the whole reload round lands, so the
	// version assertions below need no polling.
	hupDone := make(chan struct{}, 1)
	defer faults.Enable(FaultSighup, faults.Fault{OnHit: func(int) {
		select {
		case hupDone <- struct{}{}:
		default:
		}
	}})()
	sigs <- syscall.SIGHUP
	select {
	case <-reloaded:
	case <-time.After(3 * time.Second):
		t.Fatal("SIGHUP did not trigger the loader")
	}
	select {
	case <-hupDone:
	case <-time.After(3 * time.Second):
		t.Fatal("SIGHUP round never completed")
	}
	if got := s.ModelVersion(); got != "v2" {
		t.Fatalf("model after SIGHUP = %q, want v2", got)
	}
	if resp, err := http.Get(base + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz after SIGHUP: %v %v", resp, err)
	}

	sigs <- syscall.SIGTERM
	if err := <-serveDone; err != nil {
		t.Fatalf("serve returned %v, want nil", err)
	}
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	// The listener is bound before serve starts, so a connection made
	// here queues in the accept backlog until Serve picks it up — one
	// blocking GET replaces the old retry-and-sleep loop.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("server never became healthy: %v", err)
	}
	resp.Body.Close()
}
