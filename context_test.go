package recipemodel

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"recipemodel/internal/core"
	"recipemodel/internal/faults"
)

// TestAnnotateIngredientsContextMatchesPlain: with an uncancelled
// context the ctx batch API must be byte-identical to the plain one at
// any worker count.
func TestAnnotateIngredientsContextMatchesPlain(t *testing.T) {
	plain := batchAt(t, 4, func(p *Pipeline) []IngredientRecord {
		return p.AnnotateIngredients(batchPhrases)
	})
	for _, w := range []int{1, 8} {
		got := batchAt(t, w, func(p *Pipeline) []IngredientRecord {
			recs, err := p.AnnotateIngredientsContext(context.Background(), batchPhrases)
			if err != nil {
				t.Fatalf("workers=%d: err = %v", w, err)
			}
			return recs
		})
		if !reflect.DeepEqual(got, plain) {
			t.Fatalf("workers=%d: ctx batch diverged from plain batch", w)
		}
	}
}

// TestAnnotateIngredientsContextCancel: the core.annotate fault point
// cancels the context at an exact phrase count; dispatch must stop,
// the partial records must come back with context.Canceled, and the
// worker pool must fully drain (goroutine accounting) — all without a
// single sleep in the cancellation path.
func TestAnnotateIngredientsContextCancel(t *testing.T) {
	p := pipe(t)
	prev := p.Workers()
	p.SetWorkers(2)
	defer p.SetWorkers(prev)

	phrases := make([]string, 500)
	for i := range phrases {
		phrases[i] = "2 cups chopped onion"
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	defer faults.Enable(core.FaultAnnotate, faults.Fault{OnHit: func(hit int) {
		if hit == 5 {
			cancel()
		}
	}})()

	before := runtime.NumGoroutine()
	recs, err := p.AnnotateIngredientsContext(ctx, phrases)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(recs) != len(phrases) {
		t.Fatalf("result length = %d, want %d (partial slots zero-valued)", len(recs), len(phrases))
	}
	annotated := 0
	for _, r := range recs {
		if r.Phrase != "" {
			annotated++
		}
	}
	if annotated == 0 || annotated >= len(phrases) {
		t.Fatalf("annotated = %d of %d; cancellation should stop dispatch mid-batch", annotated, len(phrases))
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
	}
}

// TestModelRecipesContextCancel covers the corpus-mining batch API.
func TestModelRecipesContextCancel(t *testing.T) {
	p := pipe(t)
	prev := p.Workers()
	p.SetWorkers(2)
	defer p.SetWorkers(prev)

	inputs := Inputs(SyntheticRecipes(80, 7))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mined atomic.Int32
	defer faults.Enable(core.FaultModel, faults.Fault{OnHit: func(hit int) {
		mined.Store(int32(hit))
		if hit == 3 {
			cancel()
		}
	}})()

	models, err := p.ModelRecipesContext(ctx, inputs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	nonNil := 0
	for _, m := range models {
		if m != nil {
			nonNil++
		}
	}
	if nonNil == 0 || nonNil >= len(inputs) {
		t.Fatalf("mined %d of %d; cancellation should stop mid-corpus", nonNil, len(inputs))
	}
}

// TestModelRecipeContextDeadline: a single pathological recipe stops
// between steps once its deadline passes, returning the partial model.
func TestModelRecipeContextDeadline(t *testing.T) {
	p := pipe(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lines := make([]string, 50)
	for i := range lines {
		lines[i] = "1 cup flour"
	}
	defer faults.Enable(core.FaultAnnotate, faults.Fault{OnHit: func(hit int) {
		if hit == 2 {
			cancel()
		}
	}})()
	m, err := p.ModelRecipeContext(ctx, "Bread", "", lines, "Mix the flour.")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m == nil || len(m.Ingredients) == 0 || len(m.Ingredients) >= len(lines) {
		t.Fatalf("partial model: %+v", m)
	}

	// uncancelled, the ctx form matches ModelRecipe exactly.
	faults.Reset()
	want := p.ModelRecipe("Bread", "", lines[:3], "Mix the flour.")
	got, err := p.ModelRecipeContext(context.Background(), "Bread", "", lines[:3], "Mix the flour.")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("ModelRecipeContext diverged from ModelRecipe on an uncancelled run")
	}
}
