package recipemodel

import (
	"strings"
	"testing"

	"recipemodel/internal/ner"
	"recipemodel/internal/quarantine"
	"recipemodel/internal/recipedb"
	"recipemodel/internal/tokenize"
)

// TestCompiledEquivalenceCorpus pins the compiled fast path against
// the legacy string-keyed path over a full recipedb corpus (both
// source styles, at training scale) plus the poison-phrase corpus:
// for every phrase, tags and spans must be identical. This is the
// repo-level half of the determinism contract — the per-package
// randomized differentials check the layers, this checks the wired
// pipeline.
func TestCompiledEquivalenceCorpus(t *testing.T) {
	p := pipe(t)
	ing := p.inner.IngredientNER
	ins := p.inner.InstructionNER
	if !ing.Compiled() || !ins.Compiled() {
		t.Fatal("pipeline taggers did not compile")
	}
	// Legacy twins share the trained models but not the compiled path.
	legacyIng := ner.FromModel(ing.Model, ing.Extract)
	legacyIns := ner.FromModel(ins.Model, ins.Extract)

	gA := recipedb.NewGenerator(recipedb.SourceAllRecipes, 99)
	gF := recipedb.NewGenerator(recipedb.SourceFoodCom, 100)

	var phrases []string
	for _, ph := range gA.UniquePhrases(2500) {
		phrases = append(phrases, ph.Text)
	}
	for _, ph := range gF.UniquePhrases(2500) {
		phrases = append(phrases, ph.Text)
	}
	phrases = append(phrases, quarantine.PoisonPhrases()...)
	checkTaggerEquivalence(t, "ingredient", ing, legacyIng, phrases)

	var steps []string
	for _, in := range gA.Instructions(1200) {
		steps = append(steps, in.Text)
	}
	for _, in := range gF.Instructions(1200) {
		steps = append(steps, in.Text)
	}
	steps = append(steps, quarantine.PoisonPhrases()...)
	checkTaggerEquivalence(t, "instruction", ins, legacyIns, steps)
}

func checkTaggerEquivalence(t *testing.T, name string, compiled, legacy *ner.Tagger, texts []string) {
	t.Helper()
	for _, text := range texts {
		tokens := tokenize.Words(tokenize.Tokenize(text))
		wantTags := legacy.PredictTags(tokens)
		gotTags := compiled.PredictTags(tokens)
		if strings.Join(gotTags, " ") != strings.Join(wantTags, " ") {
			t.Fatalf("%s tags diverge on %q:\n got %v\nwant %v", name, text, gotTags, wantTags)
		}
		wantSpans := legacy.Predict(tokens)
		gotSpans := compiled.Predict(tokens)
		if len(gotSpans) != len(wantSpans) {
			t.Fatalf("%s spans diverge on %q:\n got %v\nwant %v", name, text, gotSpans, wantSpans)
		}
		for i := range gotSpans {
			if gotSpans[i] != wantSpans[i] {
				t.Fatalf("%s span %d diverges on %q:\n got %v\nwant %v", name, i, text, gotSpans, wantSpans)
			}
		}
	}
}
