package recipemodel_test

import (
	"fmt"
	"log"
	"sync"

	"recipemodel"
)

// examplePipe trains one pipeline shared by the godoc examples.
var (
	examplePipeOnce sync.Once
	examplePipe     *recipemodel.Pipeline
)

func pipeline() *recipemodel.Pipeline {
	examplePipeOnce.Do(func() {
		p, err := recipemodel.NewPipeline(recipemodel.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		examplePipe = p
	})
	return examplePipe
}

// ExamplePipeline_AnnotateIngredient decomposes one ingredient phrase
// into the paper's seven attributes (Table II).
func ExamplePipeline_AnnotateIngredient() {
	rec := pipeline().AnnotateIngredient("2-3 medium tomatoes")
	fmt.Printf("name=%s quantity=%s size=%s\n", rec.Name, rec.Quantity, rec.Size)
	// Output: name=tomato quantity=2-3 size=medium
}

// ExamplePipeline_AnnotateInstruction extracts the many-to-many
// relation of the paper's Fig 5.
func ExamplePipeline_AnnotateInstruction() {
	_, _, rels := pipeline().AnnotateInstruction("Bring the water to a boil in a large pot.")
	for _, r := range rels {
		fmt.Println(r)
	}
	// Output: bring{water | pot}
}

// ExampleScaleRecipe doubles mined quantities exactly.
func ExampleScaleRecipe() {
	m := &recipemodel.RecipeModel{Ingredients: []recipemodel.IngredientRecord{
		{Name: "flour", Quantity: "1 1/2", Unit: "cups"},
	}}
	doubled := recipemodel.ScaleRecipe(m, 2, 1)
	fmt.Println(doubled.Ingredients[0].Quantity, doubled.Ingredients[0].Unit)
	// Output: 3 cups
}

// ExampleSimilarity compares two mined recipes structurally.
func ExampleSimilarity() {
	p := pipeline()
	a := p.ModelRecipe("A", "", []string{"2 cups flour"}, "Mix the flour in a bowl. Bake for 30 minutes.")
	b := p.ModelRecipe("B", "", []string{"2 cups flour"}, "Mix the flour in a bowl. Bake for 30 minutes.")
	fmt.Printf("%.2f\n", recipemodel.Similarity(a, b))
	// Output: 1.00
}
