// Clustering: reproduce the paper's §II.D-E embedding on fresh
// phrases — POS-tag-frequency vectors clustered with K-Means and
// projected to 2-D with PCA (the Fig 2 view) — and show that phrases
// with the same lexical structure land in the same cluster.
package main

import (
	"fmt"
	"log"

	"recipemodel"
)

func main() {
	phrases := []string{
		// structure A: "CD NNS NN NN"
		"3 teaspoons olive oil",
		"2 tablespoons canola oil",
		"4 cups chicken broth",
		// structure B: "CD JJ NNS"
		"2-3 medium tomatoes",
		"4 large eggs",
		"2 small onions",
		// structure C: "CD (CD NN) NN NN NN" packaging phrases
		"1 (8 ounce) package cream cheese",
		"1 (14 ounce) can tomato sauce",
		"1 (12 ounce) jar apricot jam",
		// structure D: bare "NN TO NN"
		"salt to taste",
		"pepper to taste",
		"sugar to taste",
	}
	assignment, projected, err := recipemodel.ClusterPhrases(phrases, 4, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cluster  pca-x    pca-y    phrase")
	for i, ph := range phrases {
		fmt.Printf("   %d    %7.3f  %7.3f  %s\n",
			assignment[i], projected[i][0], projected[i][1], ph)
	}

	// phrases sharing a lexical structure must share a cluster.
	groups := [][]int{{0, 1, 2}, {3, 4, 5}, {6, 7, 8}, {9, 10, 11}}
	for _, g := range groups {
		for _, i := range g[1:] {
			if assignment[i] != assignment[g[0]] {
				log.Fatalf("phrases %q and %q should share a cluster",
					phrases[g[0]], phrases[i])
			}
		}
	}
	fmt.Println("\nall structurally identical phrases share clusters, as the paper's Fig 2 intuition predicts")
}
