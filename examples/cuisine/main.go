// Cuisine: the cuisine-prediction use case from the paper's
// introduction (§I) — a naive Bayes classifier over mined ingredient
// names, trained and evaluated on synthetic recipes whose cuisines
// carry signature ingredient distributions.
package main

import (
	"fmt"
	"log"

	"recipemodel"
)

func main() {
	p, err := recipemodel.NewPipeline(recipemodel.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	mine := func(n int, seed int64) []*recipemodel.RecipeModel {
		raw := recipemodel.SyntheticRecipes(n, seed)
		models := make([]*recipemodel.RecipeModel, len(raw))
		for i, r := range raw {
			m := p.ModelRecipe(r.Title, r.Cuisine, r.IngredientLines, r.Instructions)
			models[i] = m
		}
		return models
	}

	fmt.Println("mining 600 training and 150 test recipes ...")
	train := recipemodel.CuisineExamplesFrom(mine(600, 21))
	test := recipemodel.CuisineExamplesFrom(mine(150, 22))

	clf := recipemodel.TrainCuisineClassifier(train)
	acc := clf.Accuracy(test)
	fmt.Printf("cuisines: %d, held-out accuracy: %.3f (random baseline %.3f)\n",
		len(clf.Cuisines()), acc, 1.0/float64(len(clf.Cuisines())))
	if acc < 3.0/float64(len(clf.Cuisines())) {
		log.Fatal("classifier barely beats the baseline — no cuisine signal mined")
	}

	sample := test[0]
	fmt.Printf("\nexample: ingredients %v\n", sample.Ingredients)
	for i, s := range clf.Scores(sample.Ingredients)[:3] {
		fmt.Printf("  %d. %-14s logP=%.2f\n", i+1, s.Cuisine, s.LogProb)
	}
	fmt.Printf("gold cuisine: %s\n", sample.Cuisine)
}
