// Explorer: structured retrieval plus flow graphs — mine a corpus,
// index it by the typed facets (who fries what in which utensil), run
// structured queries the raw text could never answer, and render a
// hit's dataflow graph.
package main

import (
	"fmt"
	"log"

	"recipemodel"
)

func main() {
	p, err := recipemodel.NewPipeline(recipemodel.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("mining 120 recipes ...")
	raw := recipemodel.SyntheticRecipes(120, 33)
	models := make([]*recipemodel.RecipeModel, len(raw))
	for i, r := range raw {
		models[i] = p.ModelRecipe(r.Title, r.Cuisine, r.IngredientLines, r.Instructions)
	}
	ix := recipemodel.BuildIndex(models)

	queries := []struct {
		label string
		q     recipemodel.RecipeQuery
	}{
		{"recipes that preheat an oven", recipemodel.RecipeQuery{Processes: []string{"preheat"}, Utensils: []string{"oven"}}},
		{"recipes using garlic", recipemodel.RecipeQuery{Ingredients: []string{"garlic"}}},
		{"recipes where something is added to a bowl", recipemodel.RecipeQuery{Processes: []string{"add"}, Utensils: []string{"bowl"}}},
	}
	for _, q := range queries {
		hits := ix.Search(q.q)
		fmt.Printf("%-44s → %d hits", q.label, len(hits))
		if len(hits) > 0 {
			fmt.Printf("  (e.g. %q)", ix.Model(hits[0]).Title)
		}
		fmt.Println()
	}

	// flow graph of the first recipe with at least 3 events.
	for _, m := range models {
		if len(m.Events) < 3 {
			continue
		}
		fg := recipemodel.BuildFlowGraph(m)
		fmt.Printf("\nflow graph of %q: %d nodes\n", m.Title, len(fg.Nodes))
		fmt.Print("critical path: ")
		for i, n := range fg.CriticalPath() {
			if i > 0 {
				fmt.Print(" → ")
			}
			fmt.Print(n.Label)
		}
		fmt.Println()
		reach := fg.ReachesFinal()
		fmt.Printf("ingredients reaching the final dish: %d of %d\n",
			len(reach), len(m.Ingredients))
		break
	}
}
