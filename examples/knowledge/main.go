// Knowledge: build a knowledge graph over a corpus of mined recipes
// (§IV "Knowledge Graphs and Thought Graphs") and use it two ways —
// querying food pairings and technique statistics, and composing a
// novel recipe (§IV "generation of novel recipes").
package main

import (
	"fmt"
	"log"

	"recipemodel"
)

func main() {
	p, err := recipemodel.NewPipeline(recipemodel.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// mine 150 synthetic recipes into models.
	fmt.Println("mining 150 recipes ...")
	raw := recipemodel.SyntheticRecipes(150, 11)
	models := make([]*recipemodel.RecipeModel, len(raw))
	for i, r := range raw {
		models[i] = p.ModelRecipe(r.Title, r.Cuisine, r.IngredientLines, r.Instructions)
	}
	g := recipemodel.BuildKnowledgeGraph(models)
	fmt.Printf("graph: %d recipes, %d nodes\n\n", g.Recipes(), g.NodeCount())

	fmt.Println("most common processes:")
	for _, w := range g.TopNodes(recipemodel.NodeProcess, 5) {
		fmt.Printf("  %-12s ×%d\n", w.Node.Name, w.Count)
	}
	if top := g.TopNodes(recipemodel.NodeIngredient, 1); len(top) > 0 {
		seed := top[0].Node.Name
		fmt.Printf("\npairings of %q:\n", seed)
		for _, w := range g.Pairings(seed, 5) {
			fmt.Printf("  %-18s ×%d\n", w.Node.Name, w.Count)
		}
		fmt.Printf("\nprocesses applied to %q:\n", seed)
		for _, w := range g.ProcessesFor(seed, 5) {
			fmt.Printf("  %-12s ×%d\n", w.Node.Name, w.Count)
		}
	}

	novel, err := recipemodel.GenerateRecipe(g, "", 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\na novel recipe composed from the graph:")
	fmt.Println(novel.Text())
}
