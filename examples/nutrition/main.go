// Nutrition: the §IV application — estimate the nutritional profile
// of recipes from their mined ingredient records (name, quantity,
// unit), resolving against the embedded per-100g nutrient table.
package main

import (
	"fmt"
	"log"

	"recipemodel"
)

func main() {
	p, err := recipemodel.NewPipeline(recipemodel.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	recipes := []struct {
		title       string
		ingredients []string
		steps       string
	}{
		{
			"Simple Butter Cake",
			[]string{
				"2 cups all-purpose flour",
				"1 cup sugar",
				"1/2 pound butter, softened",
				"4 eggs",
				"1 cup whole milk",
			},
			"Preheat the oven to 350 °F. Cream the butter and the sugar in a bowl. " +
				"Add the eggs and the milk to the bowl. Fold in the flour. Bake for 45 minutes.",
		},
		{
			"Garden Salad",
			[]string{
				"1 head lettuce, torn",
				"2-3 medium tomatoes",
				"1 cucumber, thinly sliced",
				"2 tablespoons olive oil",
				"salt to taste",
			},
			"Toss the lettuce and the tomatoes in a bowl. Drizzle the olive oil over the salad. Season with salt.",
		},
	}

	for _, r := range recipes {
		m := p.ModelRecipe(r.title, "", r.ingredients, r.steps)
		profile, resolved := p.EstimateNutrition(m)
		fmt.Printf("%-20s %s  (%d/%d ingredients resolved)\n",
			r.title, profile, resolved, len(m.Ingredients))
		for _, rec := range m.Ingredients {
			fmt.Printf("    %-20s qty=%-6s unit=%s\n", rec.Name, rec.Quantity, rec.Unit)
		}
		fmt.Println()
	}
}
