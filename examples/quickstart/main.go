// Quickstart: train the pipeline, model one recipe, and print the
// paper's uniform structure (Fig 1) — ingredient records plus the
// temporal chain of many-to-many cooking events.
package main

import (
	"fmt"
	"log"

	"recipemodel"
)

func main() {
	p, err := recipemodel.NewPipeline(recipemodel.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// the paper's running example: Tomato and Blue Cheese Tart.
	m := p.ModelRecipe("Heirloom Tomato and Blue Cheese Tart", "French",
		[]string{
			"1 sheet frozen puff pastry (thawed)",
			"6 ounces blue cheese, at room temperature",
			"1 tablespoon whole milk (or half-and-half)",
			"2-3 medium tomatoes",
			"1/2 teaspoon pepper, freshly ground",
			"1/2 teaspoon fresh thyme, minced",
			"1 teaspoon extra virgin olive oil",
		},
		"Preheat the oven to 400 °F. Mix the blue cheese and the milk in a bowl. "+
			"Spread the cheese over the puff pastry. Slice the tomatoes and the thyme in a bowl. "+
			"Add the tomatoes to the pastry. Bake for 30 minutes. Drain and serve.")

	fmt.Printf("# %s (%s)\n\n", m.Title, m.Cuisine)
	fmt.Println("Ingredient records (Table I structure):")
	fmt.Printf("  %-22s %-10s %-9s %-12s %-18s %-9s %-7s\n",
		"NAME", "STATE", "QUANTITY", "UNIT", "TEMP", "DRY/FRESH", "SIZE")
	for _, r := range m.Ingredients {
		fmt.Printf("  %-22s %-10s %-9s %-12s %-18s %-9s %-7s\n",
			r.Name, r.State, r.Quantity, r.Unit, r.Temp, r.DryFresh, r.Size)
	}

	fmt.Println("\nTemporal event chain (many-to-many relations):")
	for _, e := range m.Events {
		fmt.Printf("  step %d: %s\n", e.Step+1, e.Relation)
	}
}
