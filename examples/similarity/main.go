// Similarity: the second §IV application — rank recipes by the
// structural similarity of their mined models (shared ingredients,
// shared techniques, and shared technique order), as the paper does
// inside RecipeDB.
package main

import (
	"fmt"
	"log"

	"recipemodel"
)

func main() {
	p, err := recipemodel.NewPipeline(recipemodel.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// model a query recipe and a small candidate library (synthetic,
	// generated from the RecipeDB-style grammar).
	query := p.ModelRecipe("Tomato Basil Pasta", "Italian",
		[]string{"1 pound spaghetti", "2-3 medium tomatoes", "1/4 cup fresh basil, torn", "2 tablespoons olive oil"},
		"Bring the water to a boil in a large pot. Add the spaghetti to the pot. "+
			"Chop the tomatoes and the basil in a bowl. Toss the spaghetti with the tomatoes in a pan. Serve.")

	raw := recipemodel.SyntheticRecipes(20, 99)
	candidates := make([]*recipemodel.RecipeModel, len(raw))
	for i, r := range raw {
		candidates[i] = p.ModelRecipe(r.Title, r.Cuisine, r.IngredientLines, r.Instructions)
	}
	// plant a near-duplicate to show the ranking finds it.
	twin := p.ModelRecipe("Weeknight Tomato Spaghetti", "Italian",
		[]string{"1 pound spaghetti", "3 medium tomatoes", "2 tablespoons olive oil"},
		"Bring the water to a boil in a large pot. Add the spaghetti to the pot. "+
			"Chop the tomatoes in a bowl. Toss the spaghetti with the tomatoes in a pan. Serve.")
	candidates = append(candidates, twin)

	fmt.Printf("query: %s\n\n", query.Title)
	ranked := recipemodel.MostSimilar(query, candidates)
	for rank, r := range ranked[:5] {
		title := twin.Title
		if r.Index < len(raw) {
			title = raw[r.Index].Title
		}
		fmt.Printf("%d. %-38s score=%.3f\n", rank+1, title, r.Score)
	}
	if ranked[0].Index != len(candidates)-1 {
		log.Fatal("expected the planted twin to rank first")
	}
	fmt.Println("\nthe planted near-duplicate ranks first, as expected")
}
