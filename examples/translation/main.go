// Translation: the §IV application — because the recipe is mined into
// typed fields, translating it is per-field dictionary lookup plus
// target-language re-ordering, with no MT system.
package main

import (
	"fmt"
	"log"

	"recipemodel"
)

func main() {
	p, err := recipemodel.NewPipeline(recipemodel.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	m := p.ModelRecipe("Tomato Tart", "French",
		[]string{
			"1 sheet frozen puff pastry (thawed)",
			"2-3 medium tomatoes",
			"2 cups chopped onion",
			"1/2 teaspoon pepper, freshly ground",
		},
		"Preheat the oven to 400 °F. Chop the onion and the tomatoes in a bowl. Bake for 30 minutes. Serve.")

	for _, lang := range []string{"fr", "es"} {
		out, err := recipemodel.Translate(m, lang)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}
	if _, err := recipemodel.Translate(m, "xx"); err == nil {
		log.Fatal("expected unsupported-language error")
	}
	fmt.Println("unsupported languages are rejected, as expected")
}
