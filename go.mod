module recipemodel

go 1.22
