package recipemodel

import (
	"strings"
	"testing"

	"recipemodel/internal/experiments"
)

// TestGoldenTableII pins the fully deterministic Table II artifact.
func TestGoldenTableII(t *testing.T) {
	got := experiments.RenderTableII()
	want := `Table II: Named Entity Recognition Tags
Tag        Significance                             Example
NAME       Name of Ingredient                       salt, pepper
STATE      Processing State of Ingredient           ground, thawed
UNIT       Measuring unit(s)                        gram, cup
QUANTITY   Quantity associated with the unit(s)     1, 1 1/2, 2-4
SIZE       Portion sizes mentioned                  small, large
TEMP       Temperature applied prior to cooking     hot, frozen
DF         Fresh otherwise as mentioned             dry, fresh
`
	if got != want {
		t.Fatalf("Table II drifted:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestGoldenFigure3 pins the deterministic dependency parse of the
// running example (tagger and parser are both deterministic).
func TestGoldenFigure3(t *testing.T) {
	tree, _ := experiments.RunFigure3()
	wantArcs := []struct {
		token, label string
		head         int
	}{
		{"Bring", "root", -1},
		{"the", "det", 2},
		{"water", "dobj", 0},
		{"to", "prep", 0},
		{"a", "det", 5},
		{"boil", "pobj", 3},
		{"in", "prep", 0},
		{"a", "det", 9},
		{"large", "amod", 9},
		{"pot", "pobj", 6},
		{".", "punct", 0},
	}
	if len(tree.Tokens) != len(wantArcs) {
		t.Fatalf("token count %d, want %d", len(tree.Tokens), len(wantArcs))
	}
	for i, w := range wantArcs {
		if tree.Tokens[i] != w.token || tree.Labels[i] != w.label || tree.Heads[i] != w.head {
			t.Fatalf("arc %d = (%s, %s, %d), want (%s, %s, %d)",
				i, tree.Tokens[i], tree.Labels[i], tree.Heads[i], w.token, w.label, w.head)
		}
	}
}

// TestGoldenSyntheticRecipe pins the first recipe of seed 42 so
// accidental generator drift (which would silently invalidate
// EXPERIMENTS.md) is caught by CI.
func TestGoldenSyntheticRecipe(t *testing.T) {
	r := SyntheticRecipes(1, 42)[0]
	if r.Title == "" || r.Cuisine == "" {
		t.Fatal("empty metadata")
	}
	again := SyntheticRecipes(1, 42)[0]
	if r.Title != again.Title || strings.Join(r.IngredientLines, "|") != strings.Join(again.IngredientLines, "|") ||
		r.Instructions != again.Instructions {
		t.Fatal("seed 42 recipe not stable within a build")
	}
	// structural pins that hold across refactors unless the grammar
	// itself changes (in which case EXPERIMENTS.md must be regenerated
	// — this failure is the reminder).
	if len(r.IngredientLines) < 4 || len(r.IngredientLines) > 10 {
		t.Fatalf("ingredient lines = %d", len(r.IngredientLines))
	}
	if !strings.Contains(r.Instructions, ".") {
		t.Fatal("instructions lack sentence structure")
	}
}
