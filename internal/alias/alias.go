// Package alias resolves ingredient-name aliases. The paper notes
// that its census of 20,280 unique ingredient names is inflated by
// aliases — "okhra and ladyfinger are counted as two different
// ingredient names although they represent the same ingredient"
// (§II.F). This package provides the canonicalization table that
// de-inflates such a census and a resolver with normalization.
package alias

import (
	"sort"
	"strings"

	"recipemodel/internal/lemma"
)

// table maps alias → canonical name. Canonical names map to
// themselves implicitly.
var table = map[string]string{
	// the paper's own example
	"okhra": "okra", "ladyfinger": "okra", "lady finger": "okra",
	"bhindi": "okra",
	// common US/UK/regional aliases
	"cilantro": "coriander", "coriander leaf": "coriander",
	"scallion": "green onion", "spring onion": "green onion",
	"eggplant": "aubergine", "brinjal": "aubergine",
	"zucchini":      "courgette",
	"garbanzo bean": "chickpea", "garbanzo": "chickpea",
	"powdered sugar": "confectioners sugar", "icing sugar": "confectioners sugar",
	"corn flour": "cornstarch", "cornflour": "cornstarch",
	"capsicum": "bell pepper", "sweet pepper": "bell pepper",
	"prawn":    "shrimp",
	"rocket":   "arugula",
	"beetroot": "beet",
	"snow pea": "mangetout",
	"romaine":  "lettuce", "iceberg": "lettuce",
	"ap flour": "all-purpose flour", "plain flour": "all-purpose flour",
	"whole wheat flour": "wholemeal flour",
	"heavy cream":       "whipping cream", "double cream": "whipping cream",
	"half-and-half": "light cream",
	"green bean":    "string bean",
	"swede":         "rutabaga", "yellow turnip": "rutabaga",
	"filbert": "hazelnut",
	"pawpaw":  "papaya",
	"maize":   "corn",
	"sooji":   "semolina", "rava": "semolina",
}

// Resolver canonicalizes ingredient names.
type Resolver struct {
	table map[string]string
	lem   *lemma.Lemmatizer
}

// NewResolver returns a resolver over the embedded alias table; the
// table is flattened so chains (a→b, b→c) resolve in one lookup.
func NewResolver() *Resolver {
	flat := make(map[string]string, len(table))
	for from, to := range table {
		seen := map[string]bool{from: true}
		for {
			next, ok := table[to]
			if !ok || seen[next] {
				break
			}
			seen[to] = true
			to = next
		}
		flat[from] = to
	}
	return &Resolver{table: flat, lem: lemma.New()}
}

// Canonical returns the canonical form of an ingredient name:
// lower-cased, head-word lemmatized, alias-resolved.
func (r *Resolver) Canonical(name string) string {
	n := strings.ToLower(strings.TrimSpace(name))
	if n == "" {
		return n
	}
	ws := strings.Fields(n)
	ws[len(ws)-1] = r.lem.Lemma(ws[len(ws)-1], lemma.Noun)
	n = strings.Join(ws, " ")
	if c, ok := r.table[n]; ok {
		return c
	}
	return n
}

// IsAlias reports whether name resolves to a different canonical form.
func (r *Resolver) IsAlias(name string) bool {
	n := strings.ToLower(strings.TrimSpace(name))
	return r.Canonical(n) != n
}

// Dedup canonicalizes and de-duplicates a name set, returning the
// sorted canonical names.
func (r *Resolver) Dedup(names []string) []string {
	set := map[string]bool{}
	for _, n := range names {
		if c := r.Canonical(n); c != "" {
			set[c] = true
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
