package alias

import (
	"reflect"
	"testing"
)

func TestCanonicalPaperExample(t *testing.T) {
	r := NewResolver()
	if got := r.Canonical("okhra"); got != "okra" {
		t.Fatalf("okhra → %q", got)
	}
	if got := r.Canonical("ladyfinger"); got != "okra" {
		t.Fatalf("ladyfinger → %q", got)
	}
	if got := r.Canonical("okra"); got != "okra" {
		t.Fatalf("okra → %q", got)
	}
}

func TestCanonicalNormalizes(t *testing.T) {
	r := NewResolver()
	if got := r.Canonical("  Scallions "); got != "green onion" {
		t.Fatalf("scallions → %q", got)
	}
	if got := r.Canonical("Prawns"); got != "shrimp" {
		t.Fatalf("prawns → %q", got)
	}
	if got := r.Canonical("tomatoes"); got != "tomato" {
		t.Fatalf("tomatoes → %q", got)
	}
	if got := r.Canonical(""); got != "" {
		t.Fatalf("empty → %q", got)
	}
}

func TestIsAlias(t *testing.T) {
	r := NewResolver()
	if !r.IsAlias("okhra") || !r.IsAlias("cilantro") {
		t.Fatal("known aliases not detected")
	}
	if r.IsAlias("okra") || r.IsAlias("salt") {
		t.Fatal("canonical names misdetected")
	}
}

func TestDedup(t *testing.T) {
	r := NewResolver()
	got := r.Dedup([]string{"okhra", "ladyfinger", "okra", "Tomatoes", "tomato", "salt"})
	want := []string{"okra", "salt", "tomato"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Dedup = %v", got)
	}
}

func TestNoCycles(t *testing.T) {
	r := NewResolver()
	for from := range table {
		c := r.Canonical(from)
		if c2 := r.Canonical(c); c2 != c {
			t.Fatalf("canonical not idempotent: %q → %q → %q", from, c, c2)
		}
	}
}
