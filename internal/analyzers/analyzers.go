// Package analyzers is recipelint's rule suite: custom static
// analyzers that enforce the project invariants the paper's
// reproducibility rests on — bit-determinism of the modeling packages,
// context propagation, durable-write discipline, fault-point hygiene,
// and the typed quarantine taxonomy. The rules are encoded against the
// stdlib go/types facts of every non-test package; cmd/recipelint is
// the driver and `make lint` the entry point.
//
// Every finding carries a rule name and a fix hint, and any finding
// can be silenced at its line (or the line above) with a justified
// directive:
//
//	//recipelint:allow <rule> <reason>
//
// A directive without a reason, for an unknown rule, or that silences
// nothing is itself a finding — suppressions stay minimal and honest.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	// Pos is the violation's resolved file position.
	Pos token.Position
	// Rule names the analyzer (or "directive" for suppression misuse).
	Rule string
	// Message states the violation.
	Message string
	// Hint says how to fix it.
	Hint string
}

// String renders a finding as file:line:col: rule: message (fix: hint).
func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Message)
	if f.Hint != "" {
		s += " (fix: " + f.Hint + ")"
	}
	return s
}

// Pass is one analyzer's view of one package.
type Pass struct {
	// Fset resolves token positions for the whole loaded universe.
	Fset *token.FileSet
	// Pkg is the package under analysis.
	Pkg *Package
	// report records a raw finding (suppression is applied later).
	report func(pos token.Pos, msg, hint string)
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, msg, hint string) { p.report(pos, msg, hint) }

// Info is the package's type-checker facts.
func (p *Pass) Info() *types.Info { return p.Pkg.Info }

// Analyzer is one recipelint rule. Run is invoked once per package;
// Finish, when non-nil, runs after every package and carries
// module-wide checks (e.g. fault-point name collisions). Analyzers may
// keep state between Run calls, so instances must not be reused across
// independent lint runs — construct a fresh suite with All.
type Analyzer struct {
	// Name is the rule name used in findings and allow directives.
	Name string
	// Doc is a one-line description for -list.
	Doc string
	// Run analyzes one package.
	Run func(*Pass)
	// Finish reports module-wide findings after all packages ran.
	Finish func(report func(pos token.Pos, msg, hint string))
	// Tests opts the rule into test universes (Package.Test). Rules
	// that encode production-path invariants leave it false and see
	// only base packages; the concurrency-contract rules (DESIGN §16)
	// set it — test helpers hold locks and borrow pool values too,
	// and nosleep exists only for test packages.
	Tests bool
}

// All returns a fresh instance of every analyzer, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		NewNondeterminism(),
		NewCtxflow(),
		NewAtomicwrite(),
		NewFaultpoint(),
		NewErrtaxonomy(),
		NewLocksafe(),
		NewPoolscope(),
		NewSingleload(),
		NewNosleep(),
	}
}

// AllNames returns the rule names of every analyzer.
func AllNames() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	return names
}

// deterministicPkgs are the packages whose output must be
// bit-identical run to run (parallel == serial, resume == fresh):
// the modeling pipeline and everything it trains on. Matched by final
// import-path segment.
var deterministicPkgs = map[string]bool{
	"core":        true,
	"crf":         true,
	"cluster":     true,
	"ner":         true,
	"perceptron":  true,
	"depparse":    true,
	"experiments": true,
	// The rules tier must answer identically on every replica: it is
	// the thing the fleet degrades to in unison.
	"rules": true,
}

// durablePkgs are the packages that persist durable artifacts and so
// must write through checkpoint.WriteFileAtomic or an fsynced sink.
// Matched by final import-path segment.
var durablePkgs = map[string]bool{
	"checkpoint": true,
	"persist":    true,
	"quarantine": true,
	"recipemine": true,
}

// lastSegment returns the final element of an import path.
func lastSegment(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// isDeterministic reports whether the package must be bit-deterministic.
func isDeterministic(path string) bool { return deterministicPkgs[lastSegment(path)] }

// isDurable reports whether the package persists durable artifacts.
func isDurable(path string) bool { return durablePkgs[lastSegment(path)] }

// isInternal reports whether the import path lies under an internal/
// directory.
func isInternal(path string) bool {
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/")
}

// pathEndsWith reports whether an import path equals want or ends with
// "/"+want — how rules recognize project packages (internal/faults,
// internal/quarantine) in both the real module and testdata universes.
func pathEndsWith(path, want string) bool {
	return path == want || strings.HasSuffix(path, "/"+want)
}

// callee resolves the function or method a call statically invokes;
// nil for builtins, conversions, and calls through function values.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// recvOf returns the receiver of fn, or nil for package-level
// functions. (types.Func.Signature is a Go 1.23 API; the module
// declares go 1.22, so go through Type().)
func recvOf(fn *types.Func) *types.Var {
	return fn.Type().(*types.Signature).Recv()
}

// sigOf returns fn's signature.
func sigOf(fn *types.Func) *types.Signature {
	return fn.Type().(*types.Signature)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}

// withStack walks root depth-first, passing each node together with
// its ancestor chain (outermost first, excluding the node itself).
func withStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// enclosingFuncs returns the function declarations and literals on the
// ancestor stack, innermost last.
func enclosingFuncs(stack []ast.Node) []ast.Node {
	var fns []ast.Node
	for _, n := range stack {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			fns = append(fns, n)
		}
	}
	return fns
}

// ctxParam returns the named context.Context parameter object of a
// function node, or nil. Unnamed context parameters cannot be threaded
// and so do not count.
func ctxParam(info *types.Info, fn ast.Node) *types.Var {
	var ft *ast.FuncType
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		ft = fn.Type
	case *ast.FuncLit:
		ft = fn.Type
	default:
		return nil
	}
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			obj, ok := info.Defs[name].(*types.Var)
			if ok && obj.Name() != "_" && isContextType(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}
