// The atomicwrite rule. The durability story (PR 3/4) rests on one
// discipline: bytes that a resume depends on are fsync'd before any
// manifest references them, and whole-file artifacts are replaced
// atomically (temp file + fsync + rename + dir fsync — see
// checkpoint.WriteFileAtomic). A single raw os.WriteFile can silently
// void the crash-safety contract, so in the packages that persist
// durable artifacts (checkpoint, persist, quarantine, recipemine):
//
//  1. os.WriteFile and os.Create are banned — both hand back a file
//     whose contents are not durable on close. Durable code opens
//     with os.OpenFile (the flags make the create/truncate intent
//     explicit) and fsyncs, or goes through WriteFileAtomic.
//  2. A (*os.File).Write/WriteString call must share a function with
//     an (*os.File).Sync call — writes without a visible fsync in the
//     same function are either missing their sync or belong behind
//     one of the fsynced sinks. (Cross-function disciplines carry a
//     justified //recipelint:allow.)

package analyzers

import (
	"go/ast"
	"go/types"
)

// NewAtomicwrite builds the atomicwrite rule.
func NewAtomicwrite() *Analyzer {
	return &Analyzer{
		Name: "atomicwrite",
		Doc:  "ban unsynced/non-atomic file writes in the durable packages (checkpoint, persist, quarantine, recipemine)",
		Run:  runAtomicwrite,
	}
}

func runAtomicwrite(p *Pass) {
	if !isDurable(p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkDurableWrites(p, fd)
		}
	}
}

// checkDurableWrites applies both atomicwrite checks inside one
// function declaration.
func checkDurableWrites(p *Pass, fd *ast.FuncDecl) {
	syncs := containsFileSync(p.Info(), fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := callee(p.Info(), call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if recvOf(fn) == nil {
			if pkg := fn.Pkg().Path(); (pkg == "os" || pkg == "io/ioutil") &&
				(fn.Name() == "WriteFile" || fn.Name() == "Create") {
				p.Report(call.Pos(),
					pkg+"."+fn.Name()+" in durable package "+lastSegment(p.Pkg.Path),
					"use checkpoint.WriteFileAtomic, or os.OpenFile with explicit flags plus Sync")
			}
			return true
		}
		if !isOSFileRecv(fn) {
			return true
		}
		if (fn.Name() == "Write" || fn.Name() == "WriteString") && !syncs {
			p.Report(call.Pos(),
				"(*os.File)."+fn.Name()+" without a Sync in the same function (durable package "+lastSegment(p.Pkg.Path)+")",
				"fsync before the bytes matter: call f.Sync(), or write through WriteFileAtomic / the fsynced sinks")
		}
		return true
	})
}

// isOSFileRecv reports whether fn is a method on *os.File.
func isOSFileRecv(fn *types.Func) bool {
	recv := recvOf(fn)
	if recv == nil {
		return false
	}
	ptr, ok := recv.Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}

// containsFileSync reports whether body calls (*os.File).Sync.
func containsFileSync(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := callee(info, call); fn != nil && fn.Name() == "Sync" && isOSFileRecv(fn) {
			found = true
		}
		return !found
	})
	return found
}
