// The ctxflow rule. PR 2 made cancellation flow end to end — a
// request deadline or SIGINT reaches every worker — and that only
// holds if nothing along the call chain silently re-roots the context
// tree. Three checks:
//
//  1. context.Background() / context.TODO() are banned inside
//     internal/ packages: library code receives its context, it never
//     invents one. The documented exceptions are the non-ctx wrapper
//     shims (AnnotateIngredients → AnnotateIngredientsContext, ...),
//     which carry an explicit //recipelint:allow with the reason.
//  2. In any package, a function that takes a ctx parameter must not
//     call context.Background()/TODO() or pass a nil context — it
//     already has the right context to thread.
//  3. In a function that takes a ctx parameter, calling F(...) when a
//     sibling FContext/FCtx accepting a context exists is an
//     un-threaded context: the cancellable variant must be used.

package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// NewCtxflow builds the ctxflow rule.
func NewCtxflow() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "require context threading: no Background/TODO in internal/, no dropping ctx when a Context-accepting variant exists",
		Run:  runCtxflow,
	}
}

func runCtxflow(p *Pass) {
	internal := isInternal(p.Pkg.Path)
	for _, f := range p.Pkg.Files {
		withStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(p.Info(), call)
			if fn == nil {
				return true
			}
			hasCtx := enclosingCtxParam(p.Info(), stack) != nil

			// Check 1 + 2: re-rooting the context tree.
			if fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
				(fn.Name() == "Background" || fn.Name() == "TODO") {
				switch {
				case hasCtx:
					p.Report(call.Pos(),
						"context."+fn.Name()+"() inside a function that already receives a ctx",
						"thread the function's ctx instead of re-rooting the context tree")
				case internal:
					p.Report(call.Pos(),
						"context."+fn.Name()+"() in internal package "+p.Pkg.Path,
						"accept a ctx parameter; only documented non-ctx wrapper shims may allow this")
				}
				return true
			}
			if !hasCtx {
				return true
			}

			// Check 2b: a nil context where a context is expected.
			sig := sigOf(fn)
			for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
				if !isContextType(sig.Params().At(i).Type()) {
					continue
				}
				if id, ok := ast.Unparen(call.Args[i]).(*ast.Ident); ok && id.Name == "nil" {
					if _, isNil := p.Info().Uses[id].(*types.Nil); isNil {
						p.Report(call.Args[i].Pos(),
							"nil context passed to "+fn.Name(),
							"pass the enclosing function's ctx")
					}
				}
			}

			// Check 3: a context-accepting sibling exists but the
			// non-ctx variant is called.
			if !acceptsContext(sig) {
				if sib := contextSibling(p, fn); sib != nil {
					p.Report(call.Pos(),
						"call to "+fn.Name()+" drops ctx; "+sib.Name()+" accepts one",
						"call "+sib.Name()+"(ctx, ...) so cancellation propagates")
				}
			}
			return true
		})
	}
}

// enclosingCtxParam returns the context parameter of the nearest
// enclosing function on the stack that has one (closures may capture
// an outer function's ctx), or nil.
func enclosingCtxParam(info *types.Info, stack []ast.Node) *types.Var {
	fns := enclosingFuncs(stack)
	for i := len(fns) - 1; i >= 0; i-- {
		if v := ctxParam(info, fns[i]); v != nil {
			return v
		}
	}
	return nil
}

// acceptsContext reports whether any parameter of sig is a
// context.Context.
func acceptsContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// contextSibling looks for a cancellable twin of fn — a function or
// method named <fn>Context or <fn>Ctx, in the same package (or method
// set), that accepts a context.Context.
func contextSibling(p *Pass, fn *types.Func) *types.Func {
	name := fn.Name()
	if fn.Pkg() == nil || strings.HasSuffix(name, "Context") || strings.HasSuffix(name, "Ctx") {
		return nil
	}
	for _, suffix := range []string{"Context", "Ctx"} {
		var obj types.Object
		if recv := recvOf(fn); recv != nil {
			obj, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), name+suffix)
		} else {
			obj = fn.Pkg().Scope().Lookup(name + suffix)
		}
		sib, ok := obj.(*types.Func)
		if ok && acceptsContext(sigOf(sib)) {
			return sib
		}
	}
	return nil
}
