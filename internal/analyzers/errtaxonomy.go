// The errtaxonomy rule. The quarantine boundary (PR 4) promises
// operators stable machine-readable rejection codes, and the rest of
// internal/ promises errors.Is/As keep working across wrapping. Two
// checks:
//
//  1. In internal/ packages, fmt.Errorf with an error-typed argument
//     must wrap with %w — otherwise the cause is flattened to text
//     and errors.Is(err, quarantine.ErrTooLong) stops matching at
//     that frame.
//  2. Quarantine errors are constructed from the declared taxonomy:
//     outside internal/quarantine itself, quarantine.Errorf's code
//     argument and the Code field of quarantine.Error / Rejection
//     literals must be a typed Code value (a taxonomy constant or a
//     threaded Code variable), never a raw string — ad-hoc codes
//     would silently fork the wire taxonomy.

package analyzers

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// quarantinePkgSuffix identifies the taxonomy package by import path.
const quarantinePkgSuffix = "internal/quarantine"

// NewErrtaxonomy builds the errtaxonomy rule.
func NewErrtaxonomy() *Analyzer {
	return &Analyzer{
		Name: "errtaxonomy",
		Doc:  "errors wrap with %w in internal/; quarantine codes come from the declared taxonomy, never raw strings",
		Run:  runErrtaxonomy,
	}
}

func runErrtaxonomy(p *Pass) {
	internal := isInternal(p.Pkg.Path)
	inQuarantine := pathEndsWith(p.Pkg.Path, quarantinePkgSuffix)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := callee(p.Info(), n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				if internal && fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf" {
					checkErrorfWrap(p, n)
				}
				if !inQuarantine && pathEndsWith(fn.Pkg().Path(), quarantinePkgSuffix) &&
					fn.Name() == "Errorf" && len(n.Args) > 0 {
					checkCodeExpr(p, n.Args[0], "quarantine.Errorf code")
				}
			case *ast.CompositeLit:
				if !inQuarantine {
					checkQuarantineLit(p, n)
				}
			}
			return true
		})
	}
}

// checkErrorfWrap flags fmt.Errorf calls that carry an error argument
// but no %w verb in a constant format string.
func checkErrorfWrap(p *Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		tv, ok := p.Info().Types[arg]
		if ok && tv.Type != nil && isErrorType(tv.Type) {
			p.Report(arg.Pos(),
				"fmt.Errorf flattens an error argument without %w",
				"wrap the cause with %w so errors.Is/As and the quarantine taxonomy survive")
			return
		}
	}
}

// checkCodeExpr flags raw-string (or string-conversion) quarantine
// codes: the expression must reference a typed Code value.
func checkCodeExpr(p *Pass, e ast.Expr, what string) {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr:
		return // a taxonomy constant or threaded Code variable
	}
	p.Report(e.Pos(),
		what+" is not a declared taxonomy code",
		"pass a quarantine.Code constant (CodeInvalidUTF8, CodeTooLong, ...) or a threaded Code value")
}

// checkQuarantineLit flags quarantine.Error / quarantine.Rejection
// composite literals whose Code field is populated with a raw string.
func checkQuarantineLit(p *Pass, lit *ast.CompositeLit) {
	tv, ok := p.Info().Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !pathEndsWith(obj.Pkg().Path(), quarantinePkgSuffix) {
		return
	}
	if name := obj.Name(); name != "Error" && name != "Rejection" {
		return
	}
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Code" {
			continue
		}
		checkCodeExpr(p, kv.Value, "quarantine."+obj.Name()+" Code field")
	}
}
