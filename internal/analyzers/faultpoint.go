// The faultpoint rule. The fault-injection harness (internal/faults)
// addresses points by string name, and the crash/poison drills depend
// on those names being stable, declared, and unique — a typo'd or
// colliding name silently turns a drill into a no-op. Module-wide
// checks:
//
//  1. Every faults.Inject / InjectIndexed / InjectContext /
//     InjectIndexedContext call site passes a declared package-level
//     constant whose name starts with "Fault" — never a raw string
//     literal or computed value.
//  2. Fault-point names are unique across the module: two Fault*
//     constants with the same string value collide.
//  3. No orphans: a Fault* constant that no Inject/InjectIndexed call
//     plants is a dead drill hook.
//  4. Static and runtime registries agree: every Fault* constant is
//     registered with faults.MustRegister (which panics on duplicate
//     names the moment two colliding packages are linked into one
//     test binary).
//  5. Namespaced: the point's "<ns>." prefix names the declaring
//     package (its import path's last segment), so an operator reading
//     "breaker.trip" in a drill log finds the hook in
//     internal/breaker without a module-wide grep. A deliberate
//     cross-namespace point carries a justified //recipelint:allow.

package analyzers

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// faultsPkgSuffix identifies the fault-injection package by import
// path (matches the real module and testdata universes alike).
const faultsPkgSuffix = "internal/faults"

// faultConst is one declared package-level Fault* string constant.
type faultConst struct {
	pos   token.Pos
	pkg   string
	name  string
	value string
}

// NewFaultpoint builds the faultpoint rule.
func NewFaultpoint() *Analyzer {
	var consts []*faultConst
	injected := map[string]bool{}   // point name → some Inject site plants it
	registered := map[string]bool{} // point name → MustRegister'd
	a := &Analyzer{
		Name: "faultpoint",
		Doc:  "fault points must be declared Fault* constants, unique module-wide, planted somewhere, runtime-registered, and namespaced to their package",
	}
	a.Run = func(p *Pass) {
		// The faults package itself forwards names through parameters
		// (Inject → InjectIndexed); the constant rule applies to the
		// packages that plant points, not the harness.
		if pathEndsWith(p.Pkg.Path, faultsPkgSuffix) {
			return
		}
		// Collect the package's Fault* constants (scope names are
		// sorted, keeping report order deterministic).
		scope := p.Pkg.Types.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || !strings.HasPrefix(name, "Fault") || c.Val().Kind() != constant.String {
				continue
			}
			consts = append(consts, &faultConst{
				pos: c.Pos(), pkg: p.Pkg.Path, name: name,
				value: constant.StringVal(c.Val()),
			})
		}
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := callee(p.Info(), call)
				if fn == nil || fn.Pkg() == nil || !pathEndsWith(fn.Pkg().Path(), faultsPkgSuffix) || len(call.Args) == 0 {
					return true
				}
				// The Context variants carry the point name after the
				// context argument.
				nameArg := call.Args[0]
				if strings.HasSuffix(fn.Name(), "Context") && len(call.Args) > 1 {
					nameArg = call.Args[1]
				}
				switch fn.Name() {
				case "Inject", "InjectIndexed", "InjectContext", "InjectIndexedContext":
					if c := faultConstArg(p.Info(), nameArg); c != nil {
						injected[constant.StringVal(c.Val())] = true
					} else {
						p.Report(nameArg.Pos(),
							"faults."+fn.Name()+" called without a declared Fault* constant",
							"declare `const FaultX = \"pkg.point\"` at package level and pass it")
					}
				case "MustRegister":
					if tv, ok := p.Info().Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
						registered[constant.StringVal(tv.Value)] = true
					}
				}
				return true
			})
		}
	}
	a.Finish = func(report func(pos token.Pos, msg, hint string)) {
		byValue := map[string]*faultConst{}
		for _, c := range consts {
			if ns, _, ok := strings.Cut(c.value, "."); !ok || ns != lastSegment(c.pkg) {
				report(c.pos,
					fmt.Sprintf("fault point %s (%q) is not namespaced to its package %q", c.name, c.value, lastSegment(c.pkg)),
					fmt.Sprintf("name it %q or justify with //recipelint:allow faultpoint <reason>", lastSegment(c.pkg)+".<point>"))
			}
			if first, ok := byValue[c.value]; ok {
				report(c.pos,
					fmt.Sprintf("fault point name %q of %s.%s collides with %s.%s", c.value, c.pkg, c.name, first.pkg, first.name),
					"fault-point names are module-unique; rename one of the points")
				continue
			}
			byValue[c.value] = c
			if !injected[c.value] {
				report(c.pos,
					fmt.Sprintf("orphaned fault point %s (%q): no faults.Inject site plants it", c.name, c.value),
					"plant the point with faults.Inject/InjectIndexed or delete the constant")
			}
			if !registered[c.value] {
				report(c.pos,
					fmt.Sprintf("fault point %s (%q) is not runtime-registered", c.name, c.value),
					"add `var _ = faults.MustRegister("+c.name+")` next to the declaration")
			}
		}
	}
	return a
}

// faultConstArg resolves arg to a declared package-level Fault* string
// constant, or nil.
func faultConstArg(info *types.Info, arg ast.Expr) *types.Const {
	var id *ast.Ident
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok || !strings.HasPrefix(c.Name(), "Fault") || c.Val().Kind() != constant.String {
		return nil
	}
	// Package-level: the constant's parent scope is its package scope.
	if c.Pkg() == nil || c.Parent() != c.Pkg().Scope() {
		return nil
	}
	return c
}
