// Path-sensitive control-flow walking shared by the concurrency-
// contract rules (DESIGN §16). The engine tracks "obligations" — a
// held mutex, a pool value that must be returned — through one
// function body without building a CFG: Go's structured statements
// are walked in order, branches fork the abstract state, and only the
// branches that fall through merge back. A path that returns (or
// provably terminates: panic, os.Exit, t.Fatal) while an obligation
// is live and has no registered deferred release is reported through
// the atExit hook.
//
// The engine deliberately stays intra-procedural and first-order:
// nested function literals are independent functions (the analyzers
// visit them separately), and loop bodies are walked once — an
// obligation acquired before a loop and released inside it merges
// conservatively to "maybe held". The rules this engine backs all
// offer a //recipelint:allow escape hatch for the patterns it cannot
// prove.

package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// heldInfo is one live obligation.
type heldInfo struct {
	// pos is the acquisition site (the Lock call, the pool Get) —
	// exit reports anchor here so one directive silences every path.
	pos token.Pos
	// what names the obligation in reports ("mutex s.mu", "pool value sc").
	what string
	// deferred records a registered deferred release: the obligation
	// stays live for forbidden-op checks but is satisfied at exits.
	deferred bool
}

// flowState maps obligation keys to their info. Keys are canonical
// expression strings (exprKey) or variable identities, chosen by the
// analyzer's effects hook.
type flowState map[string]*heldInfo

func (st flowState) clone() flowState {
	out := make(flowState, len(st))
	for k, v := range st {
		c := *v
		out[k] = &c
	}
	return out
}

// mergeStates joins two fall-through branch states: an obligation
// live in either branch stays live (conservative for forbidden-op
// checks), and a deferred release must cover both branches to count.
func mergeStates(a, b flowState) flowState {
	out := a.clone()
	for k, v := range b {
		if prev, ok := out[k]; ok {
			prev.deferred = prev.deferred && v.deferred
		} else {
			c := *v
			out[k] = &c
		}
	}
	return out
}

// Effect opcodes, produced by the effects hook.
const (
	opAcquire = iota
	opRelease
	opDeferRelease
)

// effect is one state transition derived from a statement.
type effect struct {
	op   int
	key  string
	pos  token.Pos
	what string
}

// flowHooks parameterize the engine for one rule.
type flowHooks struct {
	// effects extracts obligation transitions from one simple
	// statement (ExprStmt, AssignStmt, DeclStmt, DeferStmt, ...).
	effects func(stmt ast.Stmt) []effect
	// inspect, when non-nil, is called with every simple statement
	// and branch-condition expression after effects apply, together
	// with the live obligations — forbidden-op checks live here. The
	// hook must not descend into nested *ast.FuncLit bodies.
	inspect func(n ast.Node, held flowState)
	// atExit is called once per obligation that is live, not covered
	// by a deferred release, on some exiting path.
	atExit func(h *heldInfo)
}

// flowEngine walks one function body.
type flowEngine struct {
	info   *types.Info
	hooks  flowHooks
	exited map[token.Pos]bool // atExit dedupe across paths
}

// runFlow analyzes one function body with the given hooks.
func runFlow(info *types.Info, body *ast.BlockStmt, hooks flowHooks) {
	e := &flowEngine{info: info, hooks: hooks, exited: map[token.Pos]bool{}}
	st, falls := e.stmts(body.List, flowState{})
	if falls {
		e.exit(st)
	}
}

// exit fires atExit for live, non-deferred obligations (once each).
func (e *flowEngine) exit(st flowState) {
	for _, h := range st {
		if !h.deferred && !e.exited[h.pos] {
			e.exited[h.pos] = true
			e.hooks.atExit(h)
		}
	}
}

// stmts walks a statement sequence, returning the out-state and
// whether control falls off the end.
func (e *flowEngine) stmts(list []ast.Stmt, st flowState) (flowState, bool) {
	for _, s := range list {
		var falls bool
		st, falls = e.stmt(s, st)
		if !falls {
			return st, false
		}
	}
	return st, true
}

// inspect forwards a node to the rule's forbidden-op hook.
func (e *flowEngine) inspect(n ast.Node, st flowState) {
	if e.hooks.inspect != nil && n != nil {
		e.hooks.inspect(n, st)
	}
}

// apply runs the effects hook over one simple statement.
func (e *flowEngine) apply(s ast.Stmt, st flowState) flowState {
	if e.hooks.effects == nil {
		return st
	}
	for _, ef := range e.hooks.effects(s) {
		switch ef.op {
		case opAcquire:
			st[ef.key] = &heldInfo{pos: ef.pos, what: ef.what}
		case opRelease:
			delete(st, ef.key)
		case opDeferRelease:
			if h, ok := st[ef.key]; ok {
				h.deferred = true
			}
		}
	}
	return st
}

// stmt walks one statement.
func (e *flowEngine) stmt(s ast.Stmt, st flowState) (flowState, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return e.stmts(s.List, st)
	case *ast.LabeledStmt:
		return e.stmt(s.Stmt, st)

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = e.stmt(s.Init, st)
		}
		e.inspect(s.Cond, st)
		thenSt, thenFalls := e.stmt(s.Body, st.clone())
		elseSt, elseFalls := st.clone(), true
		if s.Else != nil {
			elseSt, elseFalls = e.stmt(s.Else, elseSt)
		}
		switch {
		case thenFalls && elseFalls:
			return mergeStates(thenSt, elseSt), true
		case thenFalls:
			return thenSt, true
		case elseFalls:
			return elseSt, true
		default:
			return st, false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = e.stmt(s.Init, st)
		}
		e.inspect(s.Cond, st)
		bodySt, bodyFalls := e.stmts(s.Body.List, st.clone())
		if s.Post != nil && bodyFalls {
			bodySt, _ = e.stmt(s.Post, bodySt)
		}
		// The body runs zero or more times; merge its out-state with
		// the skip path. An infinite `for {}` with no falls-through
		// body still conservatively falls here — break edges are not
		// tracked.
		if bodyFalls {
			return mergeStates(st, bodySt), true
		}
		return st, true

	case *ast.RangeStmt:
		e.inspect(s.X, st)
		bodySt, bodyFalls := e.stmts(s.Body.List, st.clone())
		if bodyFalls {
			return mergeStates(st, bodySt), true
		}
		return st, true

	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = e.stmt(s.Init, st)
		}
		e.inspect(s.Tag, st)
		return e.caseBodies(s.Body, st, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st, _ = e.stmt(s.Init, st)
		}
		e.inspect(s.Assign, st)
		return e.caseBodies(s.Body, st, nil)

	case *ast.SelectStmt:
		// With a default clause the comm ops are non-blocking polls;
		// without one, a send/receive here blocks while obligations
		// are held, so the comm statements go through the normal
		// simple-statement path (and get inspected).
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		return e.caseBodies(s.Body, st, func(clause ast.Stmt, cst flowState) flowState {
			cc := clause.(*ast.CommClause)
			if cc.Comm != nil && !hasDefault {
				cst, _ = e.stmt(cc.Comm, cst)
			}
			return cst
		})

	case *ast.ReturnStmt:
		e.inspect(s, st)
		e.exit(st)
		return st, false

	case *ast.BranchStmt:
		// break/continue/goto leave the current sequence; the engine
		// does not track their target, so the path conservatively
		// stops here.
		return st, false

	default:
		// Simple statements: ExprStmt, AssignStmt, DeclStmt,
		// SendStmt, IncDecStmt, DeferStmt, GoStmt, EmptyStmt.
		st = e.apply(s, st)
		e.inspect(s, st)
		if es, ok := s.(*ast.ExprStmt); ok && e.terminates(es.X) {
			return st, false
		}
		return st, true
	}
}

// caseBodies walks every clause body of a switch/select block with a
// forked state and merges the fall-through results. prep, when
// non-nil, pre-processes the clause (select comm statements) on the
// forked state.
func (e *flowEngine) caseBodies(body *ast.BlockStmt, st flowState, prep func(clause ast.Stmt, cst flowState) flowState) (flowState, bool) {
	var merged flowState
	anyFalls := false
	hasDefault := false
	for _, clause := range body.List {
		var list []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			list = c.Body
		default:
			continue
		}
		cst := st.clone()
		if prep != nil {
			cst = prep(clause, cst)
		}
		cst, falls := e.stmts(list, cst)
		if !falls {
			continue
		}
		anyFalls = true
		if merged == nil {
			merged = cst
		} else {
			merged = mergeStates(merged, cst)
		}
	}
	// Without a default clause the zero-match path skips the block.
	if !hasDefault {
		if merged == nil {
			merged = st
		} else {
			merged = mergeStates(merged, st)
		}
		anyFalls = true
	}
	if !anyFalls {
		return st, false
	}
	return merged, true
}

// terminates reports whether a call expression provably ends the
// path: panic, os.Exit, runtime.Goexit, log.Fatal*/Panic*, or a
// testing Fatal/FailNow/Skip method. Obligations held here are not
// reported — the deferred-release machinery (or process death)
// covers them.
func (e *flowEngine) terminates(x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := e.info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	}
	fn := callee(e.info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "os":
		return name == "Exit"
	case "runtime":
		return name == "Goexit"
	case "log":
		return strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic")
	case "testing":
		switch name {
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			return true
		}
	}
	return false
}

// exprKey renders an expression as a canonical obligation key:
// "s.mu", "*p", "shards[i].mu". Expressions the renderer cannot
// resolve get a position-qualified fallback so distinct sites never
// collide.
func exprKey(x ast.Expr) string {
	switch x := x.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + exprKey(x.X)
	case *ast.ParenExpr:
		return exprKey(x.X)
	case *ast.IndexExpr:
		return exprKey(x.X) + "[" + exprKey(x.Index) + "]"
	case *ast.BasicLit:
		return x.Value
	case *ast.CallExpr:
		return exprKey(x.Fun) + "()"
	default:
		return fmt.Sprintf("expr@%d", x.Pos())
	}
}
