// Golden tests: each rule runs over its testdata/src/<rule> universe,
// and every line carrying a `// want `regexp“ comment must produce a
// matching finding — while any finding without a want comment fails
// the test. Suppressed seeds prove the //recipelint:allow machinery:
// if suppression broke, the silenced finding would surface as
// "unexpected".
package analyzers

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the backtick-quoted expectations of a want comment.
var wantRe = regexp.MustCompile("`([^`]*)`")

// want is one expected finding: a message regexp anchored to a line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// collectWants parses the `// want` comments of the loaded universe.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*Package) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := fset.Position(c.Pos())
					ms := wantRe.FindAllStringSubmatch(text, -1)
					if len(ms) == 0 {
						t.Fatalf("%s: want comment carries no backtick-quoted regexp", pos)
					}
					for _, m := range ms {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, m[1], err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: m[1]})
					}
				}
			}
		}
	}
	return wants
}

// checkGolden matches findings against want comments, both ways.
func checkGolden(t *testing.T, fset *token.FileSet, pkgs []*Package, findings []Finding) {
	t.Helper()
	wants := collectWants(t, fset, pkgs)
	for _, f := range findings {
		ok := false
		for _, w := range wants {
			if w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				w.matched = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched %q", w.file, w.line, w.raw)
		}
	}
}

func TestGolden(t *testing.T) {
	cases := []struct {
		dir string
		mk  func() *Analyzer
	}{
		{"nondet", NewNondeterminism},
		{"ctxflow", NewCtxflow},
		{"atomicwrite", NewAtomicwrite},
		{"faultpoint", NewFaultpoint},
		{"errtaxonomy", NewErrtaxonomy},
		{"locksafe", NewLocksafe},
		{"poolscope", NewPoolscope},
		{"singleload", NewSingleload},
		{"nosleep", NewNosleep},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			fset, pkgs, err := LoadTree(filepath.Join("testdata", "src", tc.dir), tc.dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(pkgs) == 0 {
				t.Fatal("no packages loaded")
			}
			checkGolden(t, fset, pkgs, RunRules(fset, pkgs, []*Analyzer{tc.mk()}))
		})
	}
}

// TestDirectiveMisuse covers the findings a want comment cannot mark:
// malformed, unknown-rule, reasonless, and unused directives are
// themselves comments, and a second comment cannot share their line.
func TestDirectiveMisuse(t *testing.T) {
	fset, pkgs, err := LoadTree(filepath.Join("testdata", "src", "directive"), "directive")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range RunRules(fset, pkgs, All()) {
		if f.Rule != DirectiveRule {
			t.Errorf("unexpected non-directive finding: %s", f)
			continue
		}
		got = append(got, fmt.Sprintf("%d: %s", f.Pos.Line, f.Message))
	}
	expect := []string{
		"6: suppression directive names no rule",
		`9: suppression directive names unknown rule "bogusrule"`,
		"12: suppression of nondeterminism gives no reason",
		"15: suppression of nondeterminism silences nothing",
	}
	if len(got) != len(expect) {
		t.Fatalf("got %d directive findings %q, want %d", len(got), got, len(expect))
	}
	for i := range expect {
		if got[i] != expect[i] {
			t.Errorf("finding %d: got %q, want %q", i, got[i], expect[i])
		}
	}
}

// TestUnusedSuppressionScopedToSelectedRules: a partial -rules run
// must not misreport directives belonging to the rules it skipped —
// but still reports stale directives for the rules it ran.
func TestUnusedSuppressionScopedToSelectedRules(t *testing.T) {
	fset, pkgs, err := LoadTree(filepath.Join("testdata", "src", "directive"), "directive")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range RunRules(fset, pkgs, []*Analyzer{NewCtxflow()}) {
		if strings.Contains(f.Message, "silences nothing") {
			t.Errorf("unused-suppression finding for a rule that did not run: %s", f)
		}
	}
}
