// Package loading for the recipelint static-analysis suite, built on
// the stdlib go/parser + go/types toolchain only — the module stays
// zero-dependency (see DESIGN §11 for why golang.org/x/tools was not
// needed).
//
// The loader walks a directory tree for Go packages, parses every
// file, and type-checks the packages in dependency order. Imports
// that resolve inside the walked tree are served from the loader's
// own results (so intra-module types are shared); everything else —
// the standard library — is compiled from source by the stdlib
// "source" importer, which needs no pre-built export data.
//
// Test universes load too (DESIGN §16): every directory with
// _test.go files yields, beyond its base package, a test-augmented
// variant (base sources + in-package test files, type-checked
// together the way `go test` compiles them) and, when external
// package foo_test files exist, an external test package whose import
// of the base path resolves to the augmented variant — so
// export_test.go helpers type-check. Test packages carry Test=true
// and expose only their _test.go files for analysis, keeping base
// findings single-reported.

package analyzers

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the analyzed tree.
type Package struct {
	// Path is the package's import path inside the loaded universe.
	// External test packages carry the base path + "_test".
	Path string
	// Dir is the directory the package's files live in.
	Dir string
	// Files are the files rules analyze and report on, sorted by file
	// name: the non-test sources for a base package, only the _test.go
	// files for a test package (the base sources are type-checked into
	// a test package's universe but their findings belong to the base
	// entry).
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression, use, and selection
	// facts for the package's files.
	Info *types.Info
	// Test marks a test universe (in-package augmented variant or
	// external _test package). Rules that don't opt into test
	// packages (Analyzer.Tests) skip these.
	Test bool
}

// LoadModule loads every non-test package of the Go module rooted at
// root (the directory holding go.mod), excluding testdata, vendor,
// and hidden directories. It returns the shared FileSet and the
// packages sorted by import path.
func LoadModule(root string) (*token.FileSet, []*Package, error) {
	modpath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, nil, err
	}
	return LoadTree(root, modpath)
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analyzers: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analyzers: %s has no module directive", gomod)
}

// rawPkg is a parsed-but-not-yet-type-checked package.
type rawPkg struct {
	path  string
	dir   string
	files []*ast.File
	names []string // file names, parallel to files
	// testFiles are the in-package _test.go files (package foo);
	// xtestFiles the external ones (package foo_test).
	testFiles  []*ast.File
	xtestFiles []*ast.File
}

// LoadTree parses and type-checks every package under root, assigning
// import path basePath for root itself and basePath/<rel> for
// subdirectories. Directories named testdata or vendor, and entries
// starting with "." or "_", are skipped, mirroring the go tool.
func LoadTree(root, basePath string) (*token.FileSet, []*Package, error) {
	fset := token.NewFileSet()
	raw := map[string]*rawPkg{} // import path → package
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		rp, err := parseDir(fset, path, root, basePath)
		if err != nil {
			return err
		}
		if rp != nil {
			raw[rp.path] = rp
		}
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("analyzers: %w", err)
	}
	pkgs, err := typeCheck(fset, raw)
	if err != nil {
		return nil, nil, err
	}
	return fset, pkgs, nil
}

// parseDir parses the Go files of one directory — base sources plus
// the _test.go files, split into in-package and external (package
// foo_test) groups — returning nil when the directory holds none.
func parseDir(fset *token.FileSet, dir, root, basePath string) (*rawPkg, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := basePath
	if rel != "." {
		path = basePath + "/" + filepath.ToSlash(rel)
	}
	rp := &rawPkg{path: path, dir: dir}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			rp.files = append(rp.files, f)
			rp.names = append(rp.names, name)
		case strings.HasSuffix(f.Name.Name, "_test"):
			rp.xtestFiles = append(rp.xtestFiles, f)
		default:
			rp.testFiles = append(rp.testFiles, f)
		}
	}
	if len(rp.files) == 0 && len(rp.testFiles) == 0 && len(rp.xtestFiles) == 0 {
		return nil, nil
	}
	return rp, nil
}

// moduleImporter resolves imports during type checking: paths loaded
// from the walked tree come from the loader's own results (one
// types.Package per path, shared by every importer), everything else
// falls through to the stdlib source importer.
type moduleImporter struct {
	local    map[string]*types.Package
	fallback types.ImporterFrom
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := m.local[path]; ok {
		return p, nil
	}
	return m.fallback.ImportFrom(path, dir, mode)
}

// typeCheck type-checks the raw packages in dependency order: first
// every base package, then the test universes (which may import any
// base package).
func typeCheck(fset *token.FileSet, raw map[string]*rawPkg) ([]*Package, error) {
	imp := &moduleImporter{
		local:    make(map[string]*types.Package, len(raw)),
		fallback: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	newInfo := func() *types.Info {
		return &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
	}
	order, err := topoOrder(raw)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, path := range order {
		rp := raw[path]
		if len(rp.files) == 0 {
			continue // test-only directory; handled below
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, rp.files, info)
		if err != nil {
			return nil, fmt.Errorf("analyzers: type-check %s: %w", path, err)
		}
		imp.local[path] = tpkg
		pkgs = append(pkgs, &Package{Path: path, Dir: rp.dir, Files: rp.files, Types: tpkg, Info: info})
	}

	// Test universes. The augmented variant re-checks the base sources
	// together with the in-package test files — the same compilation
	// unit `go test` builds — into a fresh types.Package that never
	// enters the import graph (other packages keep importing the base
	// result). External foo_test packages resolve their base import to
	// the augmented variant so export_test.go helpers are visible.
	for _, path := range order {
		rp := raw[path]
		var augmented *types.Package
		if len(rp.testFiles) > 0 {
			info := newInfo()
			conf := types.Config{Importer: imp}
			all := append(append([]*ast.File{}, rp.files...), rp.testFiles...)
			tpkg, err := conf.Check(path, fset, all, info)
			if err != nil {
				return nil, fmt.Errorf("analyzers: type-check %s [tests]: %w", path, err)
			}
			augmented = tpkg
			pkgs = append(pkgs, &Package{Path: path, Dir: rp.dir, Files: rp.testFiles, Types: tpkg, Info: info, Test: true})
		}
		if len(rp.xtestFiles) > 0 {
			info := newInfo()
			conf := types.Config{Importer: &overrideImporter{base: imp, path: path, pkg: augmented}}
			tpkg, err := conf.Check(path+"_test", fset, rp.xtestFiles, info)
			if err != nil {
				return nil, fmt.Errorf("analyzers: type-check %s_test: %w", path, err)
			}
			pkgs = append(pkgs, &Package{Path: path + "_test", Dir: rp.dir, Files: rp.xtestFiles, Types: tpkg, Info: info, Test: true})
		}
	}
	sort.Slice(pkgs, func(i, j int) bool {
		if pkgs[i].Path != pkgs[j].Path {
			return pkgs[i].Path < pkgs[j].Path
		}
		return !pkgs[i].Test && pkgs[j].Test
	})
	return pkgs, nil
}

// overrideImporter resolves one import path to a specific package (the
// test-augmented variant an external _test package compiles against)
// and defers everything else to the module importer. A nil pkg (no
// in-package test files) falls through to the base package.
type overrideImporter struct {
	base *moduleImporter
	path string
	pkg  *types.Package
}

func (o *overrideImporter) Import(path string) (*types.Package, error) {
	return o.ImportFrom(path, "", 0)
}

func (o *overrideImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == o.path && o.pkg != nil {
		return o.pkg, nil
	}
	return o.base.ImportFrom(path, dir, mode)
}

// topoOrder sorts the raw packages so every package follows its
// intra-tree imports, failing on import cycles.
func topoOrder(raw map[string]*rawPkg) ([]string, error) {
	const (
		white = 0 // unvisited
		gray  = 1 // on the current DFS path (a repeat visit is a cycle)
		black = 2 // done
	)
	state := map[string]int{}
	var order []string
	var visit func(path string, chain []string) error
	visit = func(path string, chain []string) error {
		switch state[path] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("analyzers: import cycle: %s", strings.Join(append(chain, path), " -> "))
		}
		state[path] = gray
		rp := raw[path]
		var deps []string
		for _, f := range rp.files {
			for _, spec := range f.Imports {
				dep := strings.Trim(spec.Path.Value, `"`)
				if _, ok := raw[dep]; ok {
					deps = append(deps, dep)
				}
			}
		}
		sort.Strings(deps)
		for _, dep := range deps {
			if err := visit(dep, append(chain, path)); err != nil {
				return err
			}
		}
		state[path] = black
		order = append(order, path)
		return nil
	}
	paths := make([]string, 0, len(raw))
	for p := range raw {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}
