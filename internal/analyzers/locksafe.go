// The locksafe rule. PRs 6–9 made the serving hot path concurrent,
// and every deadlock post-mortem in that style of system starts the
// same way: something slow or re-entrant ran while a sync.Mutex was
// held. The project discipline — breaker tickets fire outside locks,
// singleflight leaders run after Unlock, fault points sit outside
// critical sections — is enforced here:
//
//  1. While a sync.Mutex/RWMutex acquired in the current function is
//     held, the critical section must not: fire a fault point
//     (faults.Inject* — an armed Delay/OnHit would stall every other
//     request on the lock), call into internal/flight (Do blocks on a
//     leader; a flight inside a lock inverts the coalescing order),
//     call through a function value (callbacks run arbitrary user
//     code — the breaker-ticket rule), perform blocking I/O (os file
//     ops, net, net/http, io/bufio reads and writes, log output), or
//     send on / receive from a channel (a full or empty channel
//     parks the goroutine with the lock held). Select statements
//     with a default clause are non-blocking polls and exempt.
//  2. A lock acquired in a function must be released on every path
//     out of it: either a deferred unlock (directly or inside a
//     deferred closure) or an unlock on all fall-through and return
//     paths. Functions that intentionally hand a locked mutex to a
//     caller carry a justified //recipelint:allow.
//
// The analysis is intra-procedural: function literals are independent
// functions, and a callee that locks and returns is the callee's
// business.

package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// flightPkgSuffix identifies the singleflight package by import path.
const flightPkgSuffix = "internal/flight"

// NewLocksafe builds the locksafe rule.
func NewLocksafe() *Analyzer {
	return &Analyzer{
		Name:  "locksafe",
		Doc:   "no fault-point fire, flight call, callback, blocking I/O, or channel op while a sync lock is held; unlocks deferred or on all paths",
		Run:   runLocksafe,
		Tests: true,
	}
}

func runLocksafe(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				lockFlow(p, body)
			}
			return true
		})
	}
}

// lockFlow runs the flow engine over one function body with
// lock-obligation semantics.
func lockFlow(p *Pass, body *ast.BlockStmt) {
	reported := map[token.Pos]bool{}
	runFlow(p.Info(), body, flowHooks{
		effects: func(stmt ast.Stmt) []effect {
			switch s := stmt.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
					if recv, method, ok := syncLockCall(p.Info(), call); ok {
						key := exprKey(recv)
						switch method {
						case "Lock", "RLock":
							return []effect{{op: opAcquire, key: key, pos: call.Pos(), what: "lock " + key}}
						case "Unlock", "RUnlock":
							return []effect{{op: opRelease, key: key}}
						}
					}
				}
			case *ast.DeferStmt:
				return deferredUnlocks(p.Info(), s)
			}
			return nil
		},
		inspect: func(n ast.Node, held flowState) {
			if len(held) == 0 {
				return
			}
			checkCriticalSection(p, n, held, reported)
		},
		atExit: func(h *heldInfo) {
			p.Report(h.pos,
				h.what+" acquired here is not released on every path out of the function",
				"defer the unlock right after the Lock, or unlock on every return path")
		},
	})
}

// deferredUnlocks extracts deferred lock releases: `defer mu.Unlock()`
// directly, or unlock calls inside a deferred closure.
func deferredUnlocks(info *types.Info, s *ast.DeferStmt) []effect {
	if recv, method, ok := syncLockCall(info, s.Call); ok && (method == "Unlock" || method == "RUnlock") {
		return []effect{{op: opDeferRelease, key: exprKey(recv)}}
	}
	lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit)
	if !ok {
		return nil
	}
	var effs []effect
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if recv, method, ok := syncLockCall(info, call); ok && (method == "Unlock" || method == "RUnlock") {
				effs = append(effs, effect{op: opDeferRelease, key: exprKey(recv)})
			}
		}
		return true
	})
	return effs
}

// checkCriticalSection scans one statement (or condition expression)
// for operations forbidden while a lock is held.
func checkCriticalSection(p *Pass, root ast.Node, held flowState, reported map[token.Pos]bool) {
	what := heldDescription(held)
	report := func(pos token.Pos, msg, hint string) {
		if !reported[pos] {
			reported[pos] = true
			p.Report(pos, msg, hint)
		}
	}
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A nested literal is an independent function; merely
			// defining it does nothing under the lock.
			return false
		case *ast.SendStmt:
			report(n.Arrow, "channel send while "+what+" is held",
				"move the send outside the critical section (unlock first, or collect and send after)")
			return true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n.OpPos, "channel receive while "+what+" is held",
					"receive outside the critical section; a parked receiver holds the lock against every other goroutine")
			}
			return true
		case *ast.CallExpr:
			checkCallUnderLock(p, n, what, report)
			return true
		}
		return true
	})
}

// checkCallUnderLock classifies one call made while a lock is held.
func checkCallUnderLock(p *Pass, call *ast.CallExpr, what string, report func(pos token.Pos, msg, hint string)) {
	fn := callee(p.Info(), call)
	if fn == nil {
		if dynamicCall(p.Info(), call) {
			report(call.Pos(), "call through a function value while "+what+" is held",
				"callbacks run arbitrary code; capture the value under the lock, unlock, then call (the breaker-ticket discipline)")
		}
		return
	}
	if fn.Pkg() == nil {
		return
	}
	path := fn.Pkg().Path()
	switch {
	case pathEndsWith(path, faultsPkgSuffix) && isInjectName(fn.Name()):
		report(call.Pos(), "fault point fired while "+what+" is held",
			"move the faults.Inject outside the critical section; an armed Delay or OnHit gate stalls every goroutine behind the lock")
	case pathEndsWith(path, flightPkgSuffix):
		report(call.Pos(), "flight."+fn.Name()+" called while "+what+" is held",
			"a flight blocks on its leader; unlock before joining or leading a flight")
	case blockingIO(fn):
		report(call.Pos(), path+"."+fn.Name()+" (blocking I/O) while "+what+" is held",
			"do the I/O outside the critical section; copy what you need under the lock and release it first")
	}
}

// isInjectName reports whether name is a fault-injection entry point.
func isInjectName(name string) bool {
	switch name {
	case "Inject", "InjectIndexed", "InjectContext", "InjectIndexedContext":
		return true
	}
	return false
}

// heldDescription names the held lock(s) for a report, picking the
// lexicographically first key so messages are deterministic.
func heldDescription(held flowState) string {
	best := ""
	for _, h := range held {
		if best == "" || h.what < best {
			best = h.what
		}
	}
	return best
}

// syncLockCall matches a call to a sync.Mutex/RWMutex lock method and
// returns the receiver expression and method name.
func syncLockCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	fn := callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	rv := recvOf(fn)
	if rv == nil {
		return nil, "", false
	}
	t := rv.Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return nil, "", false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return nil, "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return sel.X, fn.Name(), true
	}
	return nil, "", false
}

// dynamicCall reports whether call invokes a function value (not a
// statically resolved function, builtin, or type conversion).
func dynamicCall(info *types.Info, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		return false // conversion
	}
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	case *ast.FuncLit:
		return true // invoking a literal immediately still runs code under the lock
	case *ast.IndexExpr, *ast.IndexListExpr:
		// Generic instantiation F[T](...) resolves statically.
		return callee(info, call) == nil && !isTypeExpr(info, f)
	default:
		return true // e.g. f()() — a computed function value
	}
	switch info.Uses[id].(type) {
	case *types.Builtin, *types.TypeName, *types.Nil:
		return false
	case *types.Func:
		return false
	}
	// A *types.Var (field, parameter, local) of function type.
	if obj := info.Uses[id]; obj != nil {
		_, isSig := obj.Type().Underlying().(*types.Signature)
		return isSig
	}
	return false
}

// isTypeExpr reports whether x denotes a type (generic conversion).
func isTypeExpr(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	return ok && tv.IsType()
}

// pureIOFuncs are the functions of otherwise-blocking packages that
// never touch the outside world — predicates, env reads, parsers,
// constructors — and so are fine under a lock.
var pureIOFuncs = map[string]map[string]bool{
	"os": {
		"IsNotExist": true, "IsExist": true, "IsPermission": true,
		"IsTimeout": true, "IsPathSeparator": true, "Getenv": true,
		"LookupEnv": true, "Environ": true, "Getpid": true,
		"Getppid": true, "Getuid": true, "Geteuid": true,
		"Getpagesize": true, "Expand": true, "ExpandEnv": true,
		"TempDir": true, "UserHomeDir": true, "UserCacheDir": true,
		"UserConfigDir": true, "Exit": true, // Exit never returns; the terminator logic owns it
	},
	"net": {
		"JoinHostPort": true, "SplitHostPort": true, "ParseIP": true,
		"ParseMAC": true, "ParseCIDR": true, "CIDRMask": true,
		"IPv4": true, "IPv4Mask": true,
	},
	"net/http": {
		"StatusText": true, "CanonicalHeaderKey": true,
		"DetectContentType": true, "NewRequest": true,
		"NewRequestWithContext": true, "NewServeMux": true,
		"ProxyURL": true,
	},
	"bufio": {
		"NewReader": true, "NewReaderSize": true, "NewWriter": true,
		"NewWriterSize": true, "NewScanner": true, "NewReadWriter": true,
		"ScanLines": true, "ScanWords": true, "ScanRunes": true,
		"ScanBytes": true,
	},
	"log": {
		"New": true, "Default": true, "Flags": true, "Prefix": true,
		"SetFlags": true, "SetPrefix": true, "SetOutput": true,
		"Writer": true,
	},
}

// ioBlockingFuncs are the package-level io functions that drive reads
// or writes (the rest of io — constructors, wrappers — is pure).
var ioBlockingFuncs = map[string]bool{
	"Copy": true, "CopyN": true, "CopyBuffer": true, "ReadAll": true,
	"ReadFull": true, "ReadAtLeast": true, "WriteString": true,
	"Pipe": false, // constructor
}

// blockingIO reports whether fn performs (potentially) blocking I/O:
// file-system and network operations, io/bufio reads and writes, and
// log output — none of which belong inside a critical section.
func blockingIO(fn *types.Func) bool {
	pkg := fn.Pkg().Path()
	name := fn.Name()
	switch pkg {
	case "os", "net", "net/http", "bufio":
		if pure, ok := pureIOFuncs[pkg]; ok && recvOf(fn) == nil && pure[name] {
			return false
		}
		return true
	case "io":
		if recvOf(fn) != nil {
			return true // io.Reader/Writer/Closer interface methods
		}
		return ioBlockingFuncs[name]
	case "log":
		if recvOf(fn) == nil && pureIOFuncs["log"][name] {
			return false
		}
		switch name {
		case "Flags", "Prefix", "SetFlags", "SetPrefix", "SetOutput", "Writer":
			return false // Logger config accessors
		}
		return true // Print*/Fatal*/Panic*/Output/Write emit to the sink
	}
	return false
}
