// The nondeterminism rule. The paper's pipeline promises bit-identical
// output for a fixed seed — parallel == serial, resume == fresh — so
// the modeling packages (core, crf, cluster, ner, perceptron,
// depparse, experiments) must never consult a wall clock, draw from
// the global math/rand source, or let Go's randomized map iteration
// order leak into anything they emit or accumulate.
//
// Three checks, all restricted to the deterministic packages:
//
//  1. time.Now / time.Since / time.Until are banned: timestamps must
//     be injected by the caller (cmd/ and internal/server may measure
//     time; the model math may not).
//  2. Package-level math/rand draws (rand.Intn, rand.Float64,
//     rand.Shuffle, ...) are banned: all randomness flows through a
//     seeded *rand.Rand handed down from the run configuration
//     (recipedb.Fork / rand.New(rand.NewSource(seed))). Constructors
//     (rand.New, rand.NewSource) are exactly how such RNGs are built
//     and stay legal.
//  3. A `for ... range m` over a map must not write to an output
//     stream inside the loop body, and a slice appended to under the
//     loop must be sorted later in the same function (the
//     collect-keys-then-sort idiom); otherwise map iteration order —
//     randomized per run by the runtime — becomes output order.

package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// bannedClockFuncs are the time package functions that read the wall
// clock.
var bannedClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are the package-level math/rand functions that
// build seeded generators rather than drawing from the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

// NewNondeterminism builds the nondeterminism rule.
func NewNondeterminism() *Analyzer {
	return &Analyzer{
		Name: "nondeterminism",
		Doc:  "forbid wall clocks, global math/rand, and map-iteration-ordered output in the deterministic packages",
		Run:  runNondet,
	}
}

func runNondet(p *Pass) {
	if !isDeterministic(p.Pkg.Path) {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(p.Info(), call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if recvOf(fn) != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are seeded
			}
			switch fn.Pkg().Path() {
			case "time":
				if bannedClockFuncs[fn.Name()] {
					p.Report(call.Pos(),
						"wall-clock call time."+fn.Name()+" in deterministic package "+lastSegment(p.Pkg.Path),
						"inject the timestamp from the caller; the modeling packages must be bit-deterministic")
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					p.Report(call.Pos(),
						"global math/rand draw rand."+fn.Name()+" in deterministic package "+lastSegment(p.Pkg.Path),
						"draw from a seeded *rand.Rand (recipedb.Fork or rand.New(rand.NewSource(seed)))")
				}
			}
			return true
		})
		// Map-iteration checks need the enclosing function for the
		// later-sort search, so walk declarations rather than the file.
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkMapRanges(p, fd)
			}
		}
	}
}

// checkMapRanges flags map iterations in fd whose order leaks into
// output: direct writes/sends inside the body, or appends to an outer
// slice that is never sorted after the loop.
func checkMapRanges(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := p.Info().Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		var appended []*types.Var // outer slices appended to in the body
		ast.Inspect(rs.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.SendStmt:
				p.Report(m.Pos(),
					"channel send under map iteration: map order becomes delivery order",
					"iterate sorted keys instead")
			case *ast.CallExpr:
				if isEmitCall(p.Info(), m) {
					p.Report(m.Pos(),
						"output written under map iteration: map order becomes output order",
						"collect and sort keys, then iterate the sorted slice")
				}
			case *ast.AssignStmt:
				for i, rhs := range m.Rhs {
					if i >= len(m.Lhs) {
						break
					}
					if v := appendTarget(p.Info(), m.Lhs[i], rhs); v != nil && v.Pos() < rs.Pos() {
						appended = append(appended, v)
					}
				}
			}
			return true
		})
		for _, v := range appended {
			if !sortedAfter(p.Info(), fd.Body, v, rs.End()) {
				p.Report(rs.Pos(),
					"append to "+v.Name()+" under map iteration without a later sort",
					"sort "+v.Name()+" after the loop (sort.* / slices.Sort*) or iterate sorted keys")
			}
		}
		return true
	})
}

// isEmitCall reports whether the call writes to an output stream:
// fmt print functions or Write/Encode-style methods.
func isEmitCall(info *types.Info, call *ast.CallExpr) bool {
	fn := callee(info, call)
	if fn == nil {
		return false
	}
	if recvOf(fn) != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			return true
		}
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return true
		}
	}
	return false
}

// appendTarget returns the variable v when the assignment element is
// `v = append(v, ...)` with v a plain identifier; nil otherwise.
func appendTarget(info *types.Info, lhs, rhs ast.Expr) *types.Var {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil {
		v, _ = info.Defs[id].(*types.Var)
	}
	return v
}

// sortedAfter reports whether body contains, after pos, a sort or
// slices call that mentions v — the "collect then sort" idiom that
// makes a map-order append deterministic.
func sortedAfter(info *types.Info, body *ast.BlockStmt, v *types.Var, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn := callee(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && info.Uses[id] == v {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
