// The nosleep rule. Sleep-based test synchronization is the repo's
// most persistent flake source: a time.Sleep long enough to pass
// under the race detector on a loaded CI box is long enough to
// dominate the suite's wall clock, and one short enough to be fast is
// a coin flip. The fault-injection registry (PR 8) exists precisely
// so tests can wait on events instead of durations: OnHit callbacks
// close channels at the exact instrumented point, injected clocks
// advance deterministically, and condition loops can yield with
// runtime.Gosched under a deadline. Test packages therefore may not
// call time.Sleep at all.
//
// The rule only fires in test universes (Package.Test); production
// code has legitimate sleeps (backoff, jitter) policed by review, not
// lint. A deliberately-slow test documenting a real-time dependency
// can carry a //recipelint:allow nosleep directive with its reason.

package analyzers

import "go/ast"

// NewNosleep builds the nosleep rule.
func NewNosleep() *Analyzer {
	return &Analyzer{
		Name:  "nosleep",
		Doc:   "test packages must not call time.Sleep — wait on fault-point OnHit channels, injected clocks, or Gosched condition loops",
		Tests: true,
		Run: func(p *Pass) {
			if !p.Pkg.Test {
				return
			}
			for _, f := range p.Pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					fn := callee(p.Info(), call)
					if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
						p.Report(call.Pos(),
							"time.Sleep in a test package",
							"wait on a fault-point OnHit channel, an injected clock, or a deadline-bounded runtime.Gosched loop instead")
					}
					return true
				})
			}
		},
	}
}
