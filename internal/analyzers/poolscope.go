// The poolscope rule. The zero-alloc hot path (PR 6) leans on
// sync.Pool scratch buffers — decode scratch in crf, extract scratch
// in ner, annotation scratch in core/rules. The whole optimization is
// safe only under a strict borrowing contract: a pooled value lives
// inside the function that got it, and goes back on every path out.
// A single retained buffer aliases two concurrent requests and
// silently reintroduces the data races the differential tests catch
// only probabilistically. Checks, per function:
//
//  1. No escape: a value from (*sync.Pool).Get — or from a project
//     pool accessor (see below) — must not be returned, stored into a
//     struct field, global, map, slice element, or pointer target,
//     sent on a channel, or captured by a spawned goroutine.
//  2. Put on every path: the value must be released — pool.Put(v)
//     directly, deferred, or via a put*/release*/free* helper — on
//     every return path (a deferred release covers them all).
//
// The one sanctioned hand-off is the accessor idiom the compiled hot
// path uses: a function named get* / Get* whose body Gets from a
// sync.Pool and returns the value (crf.getScratch, ner.getScratch,
// postag.getScratch). Accessors transfer the obligation: the rule
// exempts their own return and instead tracks the value at every
// call site, exactly as if the caller had called pool.Get itself. A
// function that returns a pooled value under any other name is an
// escape.

package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NewPoolscope builds the poolscope rule.
func NewPoolscope() *Analyzer {
	return &Analyzer{
		Name:  "poolscope",
		Doc:   "sync.Pool values must not escape their function (return, store, goroutine capture, channel) and must be Put on every return path",
		Run:   runPoolscope,
		Tests: true,
	}
}

func runPoolscope(p *Pass) {
	// First pass: find the package's pool accessors, so call sites
	// acquire obligations and the accessors' own returns are exempt.
	accessors := map[*types.Func]bool{}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isPoolAccessor(p.Info(), fd) {
				if fn, ok := p.Info().Defs[fd.Name].(*types.Func); ok {
					accessors[fn] = true
				}
			}
		}
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					analyzePoolFunc(p, fn.Body, accessors, isPoolAccessor(p.Info(), fn))
				}
			case *ast.FuncLit:
				if fn.Body != nil {
					analyzePoolFunc(p, fn.Body, accessors, false)
				}
			}
			return true
		})
	}
}

// isPoolAccessor reports whether fd is a sanctioned pool accessor: a
// get*-named function with results whose body Gets from a sync.Pool.
func isPoolAccessor(info *types.Info, fd *ast.FuncDecl) bool {
	name := fd.Name.Name
	if !strings.HasPrefix(name, "get") && !strings.HasPrefix(name, "Get") {
		return false
	}
	if fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
		return false
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPoolMethod(info, call, "Get") {
			found = true
		}
		return !found
	})
	return found
}

// isPoolMethod matches a call to (*sync.Pool).<method>.
func isPoolMethod(info *types.Info, call *ast.CallExpr, method string) bool {
	fn := callee(info, call)
	if fn == nil || fn.Name() != method || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	rv := recvOf(fn)
	if rv == nil {
		return false
	}
	t := rv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Pool"
}

// poolAcquisition matches the RHS of an assignment that borrows a
// pooled value: pool.Get(), pool.Get().(T), or a call to a package
// pool accessor.
func poolAcquisition(info *types.Info, rhs ast.Expr, accessors map[*types.Func]bool) bool {
	x := ast.Unparen(rhs)
	if ta, ok := x.(*ast.TypeAssertExpr); ok {
		x = ast.Unparen(ta.X)
	}
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return false
	}
	if isPoolMethod(info, call, "Get") {
		return true
	}
	fn := callee(info, call)
	return fn != nil && accessors[fn]
}

// trackedVar resolves the variable object an acquisition binds.
func trackedVar(info *types.Info, lhs ast.Expr) *types.Var {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// releaseName reports whether a function name is a release helper.
func releaseName(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "put") || strings.HasPrefix(lower, "release") || strings.HasPrefix(lower, "free")
}

// analyzePoolFunc checks one function body: escape analysis over the
// whole body, then put-on-every-path via the flow engine. accessor
// marks a sanctioned get* accessor, whose return hands the value (and
// the Put obligation) to its caller.
func analyzePoolFunc(p *Pass, body *ast.BlockStmt, accessors map[*types.Func]bool, accessor bool) {
	info := p.Info()

	// Collect this function's tracked pool variables (not those of
	// nested literals — each literal is analyzed on its own).
	tracked := map[*types.Var]token.Pos{}
	inOwnBody(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return
		}
		if !poolAcquisition(info, as.Rhs[0], accessors) {
			return
		}
		if v := trackedVar(info, as.Lhs[0]); v != nil {
			tracked[v] = as.Pos()
		}
	})
	if len(tracked) == 0 {
		return
	}
	// trackedRoot resolves the base identifier of a selector / index /
	// slice / deref / address chain and returns it if it is a tracked
	// pool variable. s, s.delta, s.path[i], &s.buf all root at s.
	trackedRoot := func(x ast.Expr) *types.Var {
		for {
			switch e := x.(type) {
			case *ast.Ident:
				v, ok := info.Uses[e].(*types.Var)
				if !ok {
					return nil
				}
				if _, yes := tracked[v]; yes {
					return v
				}
				return nil
			case *ast.SelectorExpr:
				x = e.X
			case *ast.IndexExpr:
				x = e.X
			case *ast.SliceExpr:
				x = e.X
			case *ast.StarExpr:
				x = e.X
			case *ast.ParenExpr:
				x = e.X
			case *ast.UnaryExpr:
				if e.Op != token.AND {
					return nil
				}
				x = e.X
			case *ast.TypeAssertExpr:
				x = e.X
			default:
				return nil
			}
		}
	}
	// storedAlias reports the tracked variable whose pooled memory the
	// expression would leak if stored: the pooled pointer itself, its
	// address, or a reference-typed projection (slice field, sub-slice,
	// pointer field). Scalar and string projections are copies —
	// `out[i] = h.tags[s.path[i]]` stores a value, not the buffer.
	// Calls are assumed to return copies; that is the escape the
	// callee's own analysis polices.
	storedAlias := func(x ast.Expr) *types.Var {
		v := trackedRoot(x)
		if v == nil {
			return nil
		}
		if t := info.TypeOf(x); t != nil && refType(t) {
			return v
		}
		return nil
	}

	// Escape analysis.
	inOwnBody(body, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.ReturnStmt:
			if accessor {
				return
			}
			for _, res := range s.Results {
				if v := storedAlias(res); v != nil {
					p.Report(s.Pos(),
						"pool value "+v.Name()+" escapes via return",
						"only a get*-named pool accessor may return a pooled value; Put it here and let the caller Get its own")
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				var rhs ast.Expr
				switch {
				case len(s.Rhs) == len(s.Lhs):
					rhs = s.Rhs[i]
				case len(s.Rhs) == 1:
					rhs = s.Rhs[0]
				default:
					continue
				}
				v := storedAlias(rhs)
				if v == nil {
					continue
				}
				// A store into the pooled value's own fields or
				// elements (s.delta = s.delta[:need]) stays inside
				// the borrow.
				if trackedRoot(lhs) != nil {
					continue
				}
				if escapingLHS(info, lhs) {
					p.Report(s.Pos(),
						"pool value "+v.Name()+" escapes via store to "+exprKey(lhs),
						"a pooled buffer stored outside the function aliases future borrowers; copy the data out instead")
				}
			}
		case *ast.SendStmt:
			if v := storedAlias(s.Value); v != nil {
				p.Report(s.Pos(),
					"pool value "+v.Name()+" escapes via channel send",
					"the receiver outlives this function's borrow; send a copy, or hand over ownership without Put and document it")
			}
		case *ast.GoStmt:
			var v *types.Var
			for _, arg := range s.Call.Args {
				if v = storedAlias(arg); v != nil {
					break
				}
			}
			if v == nil {
				if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
					ast.Inspect(lit.Body, func(n ast.Node) bool {
						if id, ok := n.(*ast.Ident); ok {
							if tv, ok := info.Uses[id].(*types.Var); ok {
								if _, yes := tracked[tv]; yes {
									v = tv
									return false
								}
							}
						}
						return v == nil
					})
				}
			}
			if v != nil {
				p.Report(s.Pos(),
					"pool value "+v.Name()+" captured by a spawned goroutine",
					"the goroutine can outlive the borrow and race the next Get; give the goroutine its own Get or pass a copy")
			}
		}
	})

	// Put-on-every-path. Accessors hand the obligation to their
	// caller, so only non-accessor functions are checked.
	if accessor {
		return
	}
	varKey := func(v *types.Var) string { return "pool:" + v.Name() + "@" + fmt.Sprint(v.Pos()) }
	releasedVar := func(call *ast.CallExpr) *types.Var {
		isPut := isPoolMethod(info, call, "Put")
		if !isPut {
			fn := callee(info, call)
			if fn == nil || !releaseName(fn.Name()) {
				return nil
			}
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok {
					if _, yes := tracked[v]; yes {
						return v
					}
				}
			}
		}
		return nil
	}
	runFlow(info, body, flowHooks{
		effects: func(stmt ast.Stmt) []effect {
			switch s := stmt.(type) {
			case *ast.AssignStmt:
				if len(s.Rhs) == 1 && len(s.Lhs) > 0 && poolAcquisition(info, s.Rhs[0], accessors) {
					if v := trackedVar(info, s.Lhs[0]); v != nil {
						return []effect{{op: opAcquire, key: varKey(v), pos: s.Pos(), what: "pool value " + v.Name()}}
					}
				}
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
					if v := releasedVar(call); v != nil {
						return []effect{{op: opRelease, key: varKey(v)}}
					}
				}
			case *ast.DeferStmt:
				if v := releasedVar(s.Call); v != nil {
					return []effect{{op: opDeferRelease, key: varKey(v)}}
				}
				if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
					var effs []effect
					ast.Inspect(lit.Body, func(n ast.Node) bool {
						if call, ok := n.(*ast.CallExpr); ok {
							if v := releasedVar(call); v != nil {
								effs = append(effs, effect{op: opDeferRelease, key: varKey(v)})
							}
						}
						return true
					})
					return effs
				}
			}
			return nil
		},
		atExit: func(h *heldInfo) {
			p.Report(h.pos,
				h.what+" borrowed here is not Put on every path out of the function",
				"defer pool.Put right after the Get (or the get* accessor call)")
		},
	})
}

// refType reports whether a type carries a reference into the pooled
// allocation: pointers, slices, maps, channels, funcs, and interfaces
// alias; scalars and strings are copies (string headers share bytes,
// but the repo's pooled byte buffers are only turned into strings via
// copying conversions).
func refType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// escapingLHS reports whether an assignment target outlives the
// function: a struct field, slice/map element, pointer target, or
// package-level variable. A plain local identifier is a harmless
// rebinding.
func escapingLHS(info *types.Info, lhs ast.Expr) bool {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		v, ok := info.Uses[x].(*types.Var)
		if !ok {
			if dv, ok := info.Defs[x].(*types.Var); ok {
				v = dv
			}
		}
		return v != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

// inOwnBody walks a function body, visiting every node except the
// interiors of nested function literals.
func inOwnBody(body *ast.BlockStmt, visit func(n ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
