// The machine-readable lint report. Beyond pass/fail, the quantity CI
// guards is the suppression inventory: every //recipelint:allow is a
// debt note, and the checked-in budget (lint-budget.json) pins their
// exact count. A new suppression fails the build until the budget is
// consciously raised in the same change — the review-time speed bump
// that keeps "just silence it" from becoming the default. The budget
// can only drift downward silently: removing a suppression without
// lowering the budget is reported too, so the number stays honest in
// both directions.

package analyzers

import (
	"go/token"
	"sort"
)

// Suppression is one used //recipelint:allow directive.
type Suppression struct {
	// File is the path as resolved by the loader (the driver
	// relativizes it for display and for the checked-in report).
	File string `json:"file"`
	// Line is the directive's own line.
	Line int `json:"line"`
	// Rule is the silenced rule.
	Rule string `json:"rule"`
	// Reason is the directive's justification text.
	Reason string `json:"reason"`
}

// Report is the full machine-readable outcome of a lint run.
type Report struct {
	// Rules lists the analyzers that ran, sorted.
	Rules []string `json:"rules"`
	// Packages counts the packages linted (test universes included).
	Packages int `json:"packages"`
	// Findings are the violations that survived suppression.
	Findings []Finding `json:"findings"`
	// Suppressions inventories the used directives, in file order.
	Suppressions []Suppression `json:"suppressions"`
	// SuppressionCount = len(Suppressions), the budgeted quantity.
	SuppressionCount int `json:"suppression_count"`
	// SuppressionsPerRule breaks the count down by silenced rule.
	SuppressionsPerRule map[string]int `json:"suppressions_per_rule"`
}

// RunReport runs the rule suite like RunRules and additionally
// returns the suppression inventory for budget enforcement.
func RunReport(fset *token.FileSet, pkgs []*Package, rules []*Analyzer) Report {
	findings, dirs := runRules(fset, pkgs, rules)
	rep := Report{
		Packages:            len(pkgs),
		Findings:            findings,
		SuppressionsPerRule: map[string]int{},
	}
	for _, a := range rules {
		rep.Rules = append(rep.Rules, a.Name)
	}
	sort.Strings(rep.Rules)
	for _, d := range dirs {
		if !d.used {
			continue
		}
		rep.Suppressions = append(rep.Suppressions, Suppression{
			File: d.file, Line: d.line, Rule: d.rule, Reason: d.reason,
		})
		rep.SuppressionsPerRule[d.rule]++
	}
	sort.Slice(rep.Suppressions, func(i, j int) bool {
		a, b := rep.Suppressions[i], rep.Suppressions[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Line < b.Line
	})
	rep.SuppressionCount = len(rep.Suppressions)
	return rep
}
