// Orchestration: run a rule suite over loaded packages, apply
// suppression directives, and return the surviving findings in stable
// position order.

package analyzers

import (
	"go/token"
	"sort"
)

// RunRules runs the given analyzers over the packages and returns the
// findings that survive suppression, sorted by position. Directive
// misuse (malformed, unknown-rule, reasonless, or unused suppressions)
// is reported alongside rule findings under the "directive" rule;
// unused-suppression findings are only raised for rules present in
// this run, so a partial -rules invocation does not misreport
// directives belonging to the rules it skipped.
func RunRules(fset *token.FileSet, pkgs []*Package, rules []*Analyzer) []Finding {
	findings, _ := runRules(fset, pkgs, rules)
	return findings
}

// runRules is the shared core: it returns the surviving findings and
// the full directive inventory (with used flags resolved), which
// RunReport turns into the suppression-budget report.
func runRules(fset *token.FileSet, pkgs []*Package, rules []*Analyzer) ([]Finding, []*directive) {
	type raw struct {
		pos  token.Pos
		rule string
		msg  string
		hint string
	}
	var found []raw
	for _, a := range rules {
		report := func(pos token.Pos, msg, hint string) {
			found = append(found, raw{pos: pos, rule: a.Name, msg: msg, hint: hint})
		}
		for _, pkg := range pkgs {
			if pkg.Test && !a.Tests {
				continue
			}
			a.Run(&Pass{Fset: fset, Pkg: pkg, report: report})
		}
		if a.Finish != nil {
			a.Finish(report)
		}
	}

	known := map[string]bool{}
	for _, name := range AllNames() {
		known[name] = true
	}
	selected := map[string]bool{}
	for _, a := range rules {
		selected[a.Name] = true
	}
	dirs, out := collectDirectives(fset, pkgs, known)

	for _, r := range found {
		pos := fset.Position(r.pos)
		suppressed := false
		for _, d := range dirs {
			if d.suppresses(r.rule, pos.Filename, pos.Line) {
				d.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, Finding{Pos: pos, Rule: r.rule, Message: r.msg, Hint: r.hint})
		}
	}
	for _, d := range dirs {
		if !d.used && selected[d.rule] {
			out = append(out, Finding{
				Pos:     fset.Position(d.pos),
				Rule:    DirectiveRule,
				Message: "suppression of " + d.rule + " silences nothing",
				Hint:    "delete the stale //recipelint:allow directive",
			})
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out, dirs
}
