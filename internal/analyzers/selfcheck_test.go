// The self-check: recipelint must be clean on its own repository.
// This is the acceptance bar for the suite, and the reason deleting
// any justified //recipelint:allow fails the build — the directive
// machinery reports the re-exposed finding (or a stale directive) and
// this test prints it.
package analyzers

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRecipelintSelfCheck(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := cwd
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			t.Fatalf("no go.mod above %s", cwd)
		}
		root = parent
	}
	fset, pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded from the module")
	}
	for _, f := range RunRules(fset, pkgs, All()) {
		t.Errorf("recipelint: %s", f)
	}
}
