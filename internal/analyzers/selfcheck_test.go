// The self-check: recipelint must be clean on its own repository.
// This is the acceptance bar for the suite, and the reason deleting
// any justified //recipelint:allow fails the build — the directive
// machinery reports the re-exposed finding (or a stale directive) and
// this test prints it. The companion budget check pins the used
// suppression count to the checked-in lint-budget.json, so directives
// can neither accrete nor vanish without the number moving in the
// same change.
package analyzers

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// moduleRootForTest walks up from the working directory to go.mod.
func moduleRootForTest(t *testing.T) string {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := cwd
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			return root
		}
		parent := filepath.Dir(root)
		if parent == root {
			t.Fatalf("no go.mod above %s", cwd)
		}
		root = parent
	}
}

func TestRecipelintSelfCheck(t *testing.T) {
	root := moduleRootForTest(t)
	fset, pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded from the module")
	}
	sawTest := false
	for _, pkg := range pkgs {
		if pkg.Test {
			sawTest = true
			break
		}
	}
	if !sawTest {
		t.Error("LoadModule returned no test universes; the nosleep rule has nothing to police")
	}
	rep := RunReport(fset, pkgs, All())
	for _, f := range rep.Findings {
		t.Errorf("recipelint: %s", f)
	}

	// The suppression inventory must match the checked-in budget
	// exactly: adding a //recipelint:allow requires raising the budget
	// in the same change, removing one requires lowering it.
	data, err := os.ReadFile(filepath.Join(root, "lint-budget.json"))
	if err != nil {
		t.Fatalf("read lint-budget.json: %v", err)
	}
	var budget struct {
		Suppressions int `json:"suppressions"`
	}
	if err := json.Unmarshal(data, &budget); err != nil {
		t.Fatalf("parse lint-budget.json: %v", err)
	}
	if rep.SuppressionCount != budget.Suppressions {
		for _, s := range rep.Suppressions {
			t.Logf("suppression: %s:%d %s (%s)", s.File, s.Line, s.Rule, s.Reason)
		}
		t.Errorf("suppressions in use = %d, lint-budget.json = %d; adjust the budget with the change that moved the count",
			rep.SuppressionCount, budget.Suppressions)
	}
}
