// The singleload rule. The server's consistency story (PRs 3, 7, 9)
// is generation pinning: a handler calls s.pipe.Load() (or s.state(),
// its accessor) exactly once, and everything the request touches —
// model, cache generation, corpus snapshot — comes off that one
// pinned value. Two Loads in one request straddle a hot reload: the
// first answers from generation N, the second from N+1, and the
// response mixes models — the torn-generation read the differential
// reload tests catch only when the race window cooperates. Checks:
//
//  1. Direct: a sync/atomic Value or Pointer may be .Load()ed at most
//     once per function. The second Load is reported. Functions that
//     also Store/Swap/CompareAndSwap the same atomic are exempt —
//     they are writers (reload, publish), not pinned readers, and
//     their double reads are guarded by the reload mutex.
//  2. Through accessors: a function whose body is a single
//     `return x.Load()` (possibly type-asserted) of an atomic
//     Value/Pointer is a pinning accessor (server.state,
//     server.lastReload). Calling the same accessor twice on the
//     same receiver in one function is the same torn read one hop
//     removed, and is reported module-wide.
//
// Function literals are separate functions: a closure that pins its
// own generation (a retry loop re-resolving deliberately) counts on
// its own.

package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewSingleload builds the singleload rule.
func NewSingleload() *Analyzer {
	type accessorCall struct {
		fn   *types.Func // the accessor being called
		recv string      // receiver expression key
		pos  token.Pos
		n    int // 1-based call index within the enclosing function
	}
	accessors := map[*types.Func]bool{}
	var pending []accessorCall
	a := &Analyzer{
		Name:  "singleload",
		Doc:   "a generation-pinned atomic.Value/Pointer (or its accessor) loads at most once per function — two loads straddle a reload",
		Tests: true,
	}
	a.Run = func(p *Pass) {
		// Accessor discovery must precede call counting only for
		// reporting, and reporting happens in Finish — so one pass
		// does both.
		for _, f := range p.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if isPinnedAccessor(p.Info(), fd) {
					if fn, ok := p.Info().Defs[fd.Name].(*types.Func); ok {
						accessors[fn] = true
					}
				}
			}
		}
		for _, f := range p.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					body = fn.Body
				case *ast.FuncLit:
					body = fn.Body
				default:
					return true
				}
				if body == nil {
					return true
				}
				loads := map[string][]token.Pos{} // direct Loads per atomic
				writes := map[string]bool{}       // Store/Swap/CAS per atomic
				calls := map[*types.Func]map[string]int{}
				inOwnBody(body, func(n ast.Node) {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return
					}
					if recv, method, ok := atomicCall(p.Info(), call); ok {
						key := exprKey(recv)
						if method == "Load" {
							loads[key] = append(loads[key], call.Pos())
						} else {
							writes[key] = true
						}
						return
					}
					fn := callee(p.Info(), call)
					if fn == nil {
						return
					}
					// Record every static method call; Finish keeps
					// only the ones that resolved to accessors.
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
						recvKey := exprKey(sel.X)
						if calls[fn] == nil {
							calls[fn] = map[string]int{}
						}
						calls[fn][recvKey]++
						if calls[fn][recvKey] == 2 {
							pending = append(pending, accessorCall{fn: fn, recv: recvKey, pos: call.Pos(), n: 2})
						}
					}
				})
				for key, positions := range loads {
					if len(positions) < 2 || writes[key] {
						continue
					}
					for _, pos := range positions[1:] {
						p.Report(pos,
							"second atomic Load of "+key+" in one function — a reload between the loads mixes generations",
							"Load once at the top and thread the pinned value through the request")
					}
				}
				return true
			})
		}
	}
	a.Finish = func(report func(pos token.Pos, msg, hint string)) {
		for _, c := range pending {
			if accessors[c.fn] {
				report(c.pos,
					"second call to generation-pinning accessor "+c.fn.Name()+" on "+c.recv+" in one function",
					"call "+c.fn.Name()+" once and pass the pinned value; a second call may observe a newer generation")
			}
		}
	}
	return a
}

// atomicCall matches a method call on sync/atomic.Value or
// sync/atomic.Pointer and returns the receiver expression and method.
func atomicCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	fn := callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil, "", false
	}
	rv := recvOf(fn)
	if rv == nil {
		return nil, "", false
	}
	t := rv.Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return nil, "", false
	}
	if name := named.Obj().Name(); name != "Value" && name != "Pointer" {
		return nil, "", false
	}
	switch fn.Name() {
	case "Load", "Store", "Swap", "CompareAndSwap":
		return sel.X, fn.Name(), true
	}
	return nil, "", false
}

// isPinnedAccessor reports whether fd is a generation-pinning
// accessor: a single-statement `return x.Load()` (the Load possibly
// wrapped in a type assertion) of an atomic Value/Pointer.
func isPinnedAccessor(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Body == nil || len(fd.Body.List) != 1 {
		return false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	x := ast.Unparen(ret.Results[0])
	if ta, isTA := x.(*ast.TypeAssertExpr); isTA {
		x = ast.Unparen(ta.X)
	}
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return false
	}
	_, method, ok := atomicCall(info, call)
	return ok && method == "Load"
}
