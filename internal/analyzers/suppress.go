// Suppression directives. A finding is silenced by a justified
// directive on its line or the line directly above:
//
//	//recipelint:allow <rule> <reason...>
//
// Directives are themselves linted: an unknown rule, a missing
// reason, or a directive that silences nothing is reported under the
// "directive" rule, so the suppression inventory can only shrink to
// what is actually needed — deleting any live directive makes the run
// fail again.

package analyzers

import (
	"fmt"
	"go/token"
	"strings"
)

// directivePrefix introduces a suppression comment.
const directivePrefix = "//recipelint:allow"

// DirectiveRule is the rule name under which malformed or unused
// suppression directives are reported.
const DirectiveRule = "directive"

// directive is one parsed //recipelint:allow comment.
type directive struct {
	pos    token.Pos
	file   string
	line   int
	rule   string
	reason string
	used   bool
}

// collectDirectives parses every suppression directive in the files,
// reporting malformed ones (unknown rule, missing reason) as findings.
func collectDirectives(fset *token.FileSet, pkgs []*Package, known map[string]bool) ([]*directive, []Finding) {
	var dirs []*directive
	var bad []Finding
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, directivePrefix) {
						continue
					}
					pos := fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, directivePrefix)
					fields := strings.Fields(rest)
					switch {
					case len(fields) == 0:
						bad = append(bad, Finding{
							Pos: pos, Rule: DirectiveRule,
							Message: "suppression directive names no rule",
							Hint:    "write //recipelint:allow <rule> <reason>",
						})
					case !known[fields[0]]:
						bad = append(bad, Finding{
							Pos: pos, Rule: DirectiveRule,
							Message: fmt.Sprintf("suppression directive names unknown rule %q", fields[0]),
							Hint:    "known rules: " + strings.Join(AllNames(), ", "),
						})
					case len(fields) == 1:
						bad = append(bad, Finding{
							Pos: pos, Rule: DirectiveRule,
							Message: "suppression of " + fields[0] + " gives no reason",
							Hint:    "justify the suppression: //recipelint:allow " + fields[0] + " <reason>",
						})
					default:
						dirs = append(dirs, &directive{
							pos:  c.Pos(),
							file: pos.Filename, line: pos.Line,
							rule:   fields[0],
							reason: strings.Join(fields[1:], " "),
						})
					}
				}
			}
		}
	}
	return dirs, bad
}

// suppresses reports whether d silences a finding of rule at file:line
// — the directive must sit on the finding's line or the line above.
func (d *directive) suppresses(rule, file string, line int) bool {
	return d.rule == rule && d.file == file && (d.line == line || d.line == line-1)
}
