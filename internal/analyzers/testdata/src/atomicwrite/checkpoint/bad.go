// Seeded violations for the atomicwrite golden test. The package is
// named checkpoint so the rule classifies it as durable.
package checkpoint

import "os"

// WriteRaw uses the non-durable one-shot writer.
func WriteRaw(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os.WriteFile in durable package checkpoint`
}

// CreateRaw hands back a file that is not durable on close.
func CreateRaw(path string) (*os.File, error) {
	return os.Create(path) // want `os.Create in durable package checkpoint`
}

// UnsyncedWrite writes with no fsync anywhere in the function.
func UnsyncedWrite(f *os.File, data []byte) error {
	_, err := f.Write(data) // want `\(\*os.File\)\.Write without a Sync`
	return err
}

// SyncedWrite pairs the write with its fsync.
func SyncedWrite(f *os.File, data []byte) error {
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Sync()
}

// AllowedCreate carries a justified suppression.
func AllowedCreate(path string) (*os.File, error) {
	//recipelint:allow atomicwrite golden: proves a justified directive silences the rule
	return os.Create(path)
}
