// A package outside the durable set: raw writes carry no durability
// contract and the rule must stay silent.
package scratch

import "os"

// Dump writes a scratch file.
func Dump(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
