// Seeded violations for the ctxflow golden test. The package sits
// under internal/ so the Background/TODO ban applies to it.
package pipe

import "context"

// Helper accepts a context.
func Helper(ctx context.Context) error { return ctx.Err() }

// Fetch has a context-accepting sibling, FetchContext.
func Fetch() int { return 0 }

// FetchContext is the cancellable variant of Fetch.
func FetchContext(ctx context.Context) int {
	if ctx.Err() != nil {
		return -1
	}
	return 0
}

// Rooted invents a context inside library code.
func Rooted() error {
	return Helper(context.Background()) // want `context.Background\(\) in internal package`
}

// ReRoots already receives a ctx and re-roots anyway.
func ReRoots(ctx context.Context) error {
	_ = ctx
	return Helper(context.Background()) // want `context.Background\(\) inside a function that already receives a ctx`
}

// NilCtx passes nil where a context is expected.
func NilCtx(ctx context.Context) error {
	_ = ctx
	return Helper(nil) // want `nil context passed to Helper`
}

// DropsCtx calls the non-ctx variant of a sibling pair.
func DropsCtx(ctx context.Context) int {
	_ = ctx
	return Fetch() // want `call to Fetch drops ctx; FetchContext accepts one`
}

// Threads is the clean path: the received ctx flows everywhere.
func Threads(ctx context.Context) error {
	if FetchContext(ctx) < 0 {
		return context.Canceled
	}
	return Helper(ctx)
}

// Shim is a documented non-ctx wrapper — the sanctioned suppression.
func Shim() error {
	return Helper(context.Background()) //recipelint:allow ctxflow golden: documented non-ctx wrapper shim
}
