// A package outside internal/: Background at the composition root is
// legal when no ctx parameter is in scope.
package outside

import "context"

// Root builds the root context of a program.
func Root() context.Context { return context.Background() }
