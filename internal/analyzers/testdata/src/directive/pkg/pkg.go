// Directive-misuse seeds: a want comment cannot share a line with a
// directive comment (a // comment runs to end of line), so the golden
// harness asserts these findings explicitly in TestDirectiveMisuse.
package pkg

//recipelint:allow
func Bare() {}

//recipelint:allow bogusrule because reasons
func Unknown() {}

//recipelint:allow nondeterminism
func NoReason() {}

//recipelint:allow nondeterminism golden: silences nothing on purpose
func Unused() {}
