// Package quarantine is a miniature stand-in for the real taxonomy
// package: the errtaxonomy rule recognizes it by its import-path
// suffix, internal/quarantine, and exempts its own internals.
package quarantine

import "fmt"

// Code is a stable machine-readable rejection code.
type Code string

// CodeTooLong is the one declared taxonomy code of the fake.
const CodeTooLong Code = "too_long"

// Error is a quarantine rejection error.
type Error struct {
	Code   Code
	Detail string
}

// Error renders the code and detail.
func (e *Error) Error() string { return string(e.Code) + ": " + e.Detail }

// Rejection is the dead-letter wire record.
type Rejection struct {
	Index int
	Code  Code
}

// Errorf builds an Error from a taxonomy code and a format string.
func Errorf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Detail: fmt.Sprintf(format, args...)}
}
