// Seeded violations for the errtaxonomy golden test. The package sits
// under internal/ so the %w wrapping rule applies.
package taxo

import (
	"fmt"

	"errtaxonomy/internal/quarantine"
)

// Flattens loses the cause chain.
func Flattens(err error) error {
	return fmt.Errorf("stage: %v", err) // want `fmt.Errorf flattens an error argument without %w`
}

// Wraps preserves the cause chain.
func Wraps(err error) error {
	return fmt.Errorf("stage: %w", err)
}

// AdHocCode forks the taxonomy with a raw string.
func AdHocCode() error {
	return quarantine.Errorf("made_up", "bad input") // want `quarantine.Errorf code is not a declared taxonomy code`
}

// TypedCode passes a declared taxonomy constant.
func TypedCode() error {
	return quarantine.Errorf(quarantine.CodeTooLong, "bad input")
}

// ThreadedCode passes a Code value through.
func ThreadedCode(code quarantine.Code) error {
	return quarantine.Errorf(code, "bad input")
}

// RawLit populates a Code field with a raw string.
func RawLit() *quarantine.Error {
	return &quarantine.Error{Code: "raw", Detail: "bad input"} // want `quarantine.Error Code field is not a declared taxonomy code`
}

// RawRejection hides the raw string behind a conversion.
func RawRejection() quarantine.Rejection {
	return quarantine.Rejection{Index: 1, Code: quarantine.Code("raw")} // want `quarantine.Rejection Code field is not a declared taxonomy code`
}

// Allowed carries a justified suppression.
func Allowed(err error) error {
	//recipelint:allow errtaxonomy golden: proves a justified directive silences the rule
	return fmt.Errorf("stage: %v", err)
}
