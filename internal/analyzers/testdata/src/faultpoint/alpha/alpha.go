// Seeded fault-point declarations for the faultpoint golden test.
package alpha

import "faultpoint/internal/faults"

// FaultGood is declared, planted, and registered — fully clean.
const FaultGood = "alpha.good"

var _ = faults.MustRegister(FaultGood)

// FaultOrphan is registered but never planted.
const FaultOrphan = "alpha.orphan" // want `orphaned fault point FaultOrphan`

var _ = faults.MustRegister(FaultOrphan)

// FaultNoReg is planted but never registered.
const FaultNoReg = "alpha.noreg" // want `fault point FaultNoReg \("alpha.noreg"\) is not runtime-registered`

// Plant exercises the Inject call-site checks.
func Plant() error {
	if err := faults.Inject(FaultGood); err != nil {
		return err
	}
	if err := faults.InjectIndexed(FaultNoReg, 3); err != nil {
		return err
	}
	return faults.Inject("alpha.literal") // want `faults.Inject called without a declared Fault\* constant`
}

// FaultWrongNS is planted and registered but named into another
// package's namespace.
const FaultWrongNS = "gamma.point" // want `fault point FaultWrongNS \("gamma.point"\) is not namespaced to its package "alpha"`

var _ = faults.MustRegister(FaultWrongNS)

// FaultLegacy crosses namespaces deliberately; the directive keeps it.
//
//recipelint:allow faultpoint golden: legacy cross-namespace name kept for drill compat
const FaultLegacy = "legacy.point"

var _ = faults.MustRegister(FaultLegacy)

// PlantAllowed carries a justified suppression for a literal name.
func PlantAllowed() error {
	if err := faults.Inject(FaultWrongNS); err != nil {
		return err
	}
	if err := faults.Inject(FaultLegacy); err != nil {
		return err
	}
	//recipelint:allow faultpoint golden: proves a justified directive silences the rule
	return faults.Inject("alpha.allowed")
}
