// A second package whose fault point collides with alpha's — the
// collision check is module-wide.
package beta

import "faultpoint/internal/faults"

// FaultClash reuses alpha.FaultGood's string value.
const FaultClash = "alpha.good" // want `fault point name "alpha.good" of faultpoint/beta.FaultClash collides with faultpoint/alpha.FaultGood`

var _ = faults.MustRegister(FaultClash)

// Plant keeps FaultClash planted so only the collision fires.
func Plant() error { return faults.Inject(FaultClash) }
