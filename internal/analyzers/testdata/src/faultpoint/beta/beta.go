// A second package whose fault point collides with alpha's — the
// collision check is module-wide.
package beta

import "faultpoint/internal/faults"

// FaultClash reuses alpha.FaultGood's string value — which also lands
// it in alpha's namespace, so both the collision and the namespace
// checks fire.
const FaultClash = "alpha.good" // want `fault point name "alpha.good" of faultpoint/beta.FaultClash collides with faultpoint/alpha.FaultGood` `fault point FaultClash \("alpha.good"\) is not namespaced to its package "beta"`

var _ = faults.MustRegister(FaultClash)

// Plant keeps FaultClash planted so only the collision fires.
func Plant() error { return faults.Inject(FaultClash) }
