// Package faults is a miniature stand-in for the real injection
// harness: the faultpoint rule recognizes it by its import-path
// suffix, internal/faults, and exempts it from the constant rule.
package faults

// Inject fires the named fault point.
func Inject(name string) error {
	_ = name
	return nil
}

// InjectIndexed fires the named fault point at an index.
func InjectIndexed(name string, index int) error {
	_, _ = name, index
	return nil
}

// MustRegister records a fault-point name.
func MustRegister(name string) string { return name }
