// Package guard seeds every class of critical-section violation the
// locksafe rule catches, next to the disciplined forms it must stay
// quiet about.
package guard

import (
	"fmt"
	"os"
	"sync"

	"locksafe/internal/faults"
	"locksafe/internal/flight"
)

type store struct {
	mu sync.Mutex
	n  int
	cb func()
	ch chan int
	g  *flight.Group
}

// A fault point fired inside the critical section: an armed Delay or
// OnHit gate would stall every goroutine queued on the lock.
func (s *store) badInject() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return faults.Inject("guard.point") // want `fault point fired while lock s\.mu is held`
}

// A flight joined under the lock inverts the coalescing order.
func (s *store) badFlight() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.g.Do("key", func() error { return nil }) // want `flight\.Do called while lock s\.mu is held`
}

// Blocking I/O under the lock.
func (s *store) badIO() {
	s.mu.Lock()
	defer s.mu.Unlock()
	os.ReadFile("state.json") // want `os\.ReadFile \(blocking I/O\) while lock s\.mu is held`
}

// A callback through a function value runs arbitrary code under the
// lock — the breaker-ticket rule.
func (s *store) badCallback() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cb() // want `call through a function value while lock s\.mu is held`
}

// A channel send parks the goroutine with the lock held when the
// buffer is full.
func (s *store) badSend(v int) {
	s.mu.Lock()
	s.ch <- v // want `channel send while lock s\.mu is held`
	s.mu.Unlock()
}

// A channel receive parks the same way on an empty channel.
func (s *store) badRecv() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n = <-s.ch // want `channel receive while lock s\.mu is held`
}

// An early return that skips the unlock leaks the lock forever.
func (s *store) badLeak(flag bool) error {
	s.mu.Lock() // want `lock s\.mu acquired here is not released on every path out of the function`
	if flag {
		return fmt.Errorf("early exit with the lock held")
	}
	s.mu.Unlock()
	return nil
}

// The disciplined forms: deferred unlock, capture-then-call outside
// the lock, unlocks on every branch, and non-blocking polls.
func (s *store) okDeferred() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return s.n
}

func (s *store) okUnlockThenCall() {
	s.mu.Lock()
	cb := s.cb
	s.mu.Unlock()
	cb()
}

func (s *store) okBranches(flag bool) int {
	s.mu.Lock()
	if flag {
		n := s.n
		s.mu.Unlock()
		return n
	}
	s.mu.Unlock()
	return 0
}

// A select with a default clause is a non-blocking poll and is exempt.
func (s *store) okPoll() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		s.n = v
		return true
	default:
		return false
	}
}

// A panic path needs no unlock — the deferred release (or process
// death) owns it.
func (s *store) okPanicPath(flag bool) {
	s.mu.Lock()
	if flag {
		panic("invariant broken")
	}
	s.mu.Unlock()
}

// lockForUpdate hands the locked mutex to its caller by contract (the
// two-phase update API); the caller must Unlock after mutating.
func (s *store) lockForUpdate() *store {
	//recipelint:allow locksafe lockForUpdate hands the locked mutex to its caller by contract; the caller unlocks after the two-phase update
	s.mu.Lock()
	return s
}
