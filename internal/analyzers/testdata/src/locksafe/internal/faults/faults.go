// Package faults is a miniature stand-in for the real injection
// harness: locksafe recognizes it by its import-path suffix,
// internal/faults.
package faults

// Inject fires the named fault point.
func Inject(name string) error {
	_ = name
	return nil
}

// InjectContext fires the named fault point with a caller context
// (modeled as any to keep the stand-in dependency-free).
func InjectContext(ctx any, name string) error {
	_, _ = ctx, name
	return nil
}
