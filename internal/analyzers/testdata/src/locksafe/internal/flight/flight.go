// Package flight is a miniature stand-in for the real singleflight
// package: locksafe recognizes it by its import-path suffix,
// internal/flight, and forbids calling into it under a lock.
package flight

// Group coalesces duplicate work per key.
type Group struct{}

// Do runs the keyed work, blocking followers on the leader.
func (g *Group) Do(key string, fn func() error) error {
	_ = key
	return fn()
}
