// Seeded violations and clean counterparts for the nondeterminism
// golden test. The package is named core so the rule classifies it as
// a deterministic package.
package core

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 {
	return time.Now().Unix() // want `wall-clock call time.Now`
}

// GlobalDraw draws from the unseeded global source.
func GlobalDraw() int {
	return rand.Intn(10) // want `global math/rand draw rand.Intn`
}

// SeededDraw builds a seeded generator — constructors are legal, and
// methods on a *rand.Rand are too.
func SeededDraw(seed int64) int {
	return rand.New(rand.NewSource(seed)).Intn(10)
}

// AllowedDraw carries a justified suppression.
func AllowedDraw() int {
	//recipelint:allow nondeterminism golden: proves a justified directive silences the rule
	return rand.Int()
}

// EmitMap writes under map iteration.
func EmitMap(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `output written under map iteration`
	}
}

// SendMap sends under map iteration.
func SendMap(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want `channel send under map iteration`
	}
}

// CollectNoSort appends map keys and never sorts them.
func CollectNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `append to keys under map iteration without a later sort`
		keys = append(keys, k)
	}
	return keys
}

// CollectSorted is the collect-keys-then-sort idiom the rule accepts.
func CollectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
