// A package outside the deterministic set: the rule must stay silent
// here even though the code reads the wall clock and the global
// math/rand source.
package helper

import (
	"math/rand"
	"time"
)

// Timestamp may read the clock and draw globally in a helper package.
func Timestamp() int64 {
	return time.Now().UnixNano() + int64(rand.Intn(5))
}
