package poll_test

import (
	"time"

	"nosleep/poll"
)

// External test packages are test universes too.
func waitExternal() bool {
	for i := 0; i < 100; i++ {
		if poll.Ready() {
			return true
		}
		time.Sleep(time.Millisecond) // want `time\.Sleep in a test package`
	}
	return false
}

// slowByDesign documents a genuine wall-clock dependency; the
// suppression carries the justification.
func slowByDesign() {
	//recipelint:allow nosleep this check measures a real 1ms wall-clock interval by design
	time.Sleep(time.Millisecond)
}
