// Package poll exists so its in-package and external test files
// exercise the nosleep rule over _test.go universes — and so its own
// production sleep proves the rule leaves non-test code alone.
package poll

import "time"

// Ready reports whether the poller is ready.
func Ready() bool { return true }

// Backoff sleeps between retries. Production code may sleep; nosleep
// polices test packages only.
func Backoff() { time.Sleep(time.Millisecond) }
