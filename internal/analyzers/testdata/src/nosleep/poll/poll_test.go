package poll

import "time"

// The classic flake: sleep-polling a condition from an in-package
// test.
func waitReady() bool {
	for i := 0; i < 100; i++ {
		if Ready() {
			return true
		}
		time.Sleep(time.Millisecond) // want `time\.Sleep in a test package`
	}
	return false
}
