// Package bufpool seeds the pool-borrowing violations poolscope
// catches — escapes and missed Puts — next to the sanctioned accessor
// and release-helper idioms it must stay quiet about.
package bufpool

import "sync"

type buf struct{ b []byte }

var pool = sync.Pool{New: func() any { return new(buf) }}

var leaked *buf

var sink = make(chan *buf, 1)

// Returning a pooled value from a non-accessor leaks the borrow (and,
// with no Put anywhere, trips the every-path check at the Get).
func fetch() *buf {
	s := pool.Get().(*buf) // want `pool value s borrowed here is not Put on every path`
	return s               // want `pool value s escapes via return`
}

// Storing the pooled pointer in a global aliases the next borrower.
func stash() {
	s := pool.Get().(*buf)
	defer pool.Put(s)
	leaked = s // want `pool value s escapes via store to leaked`
}

// Sending the pooled pointer hands it to a receiver that outlives the
// borrow.
func send() {
	s := pool.Get().(*buf)
	defer pool.Put(s)
	sink <- s // want `pool value s escapes via channel send`
}

// A goroutine capturing the borrow can race the next Get.
func spawn() {
	s := pool.Get().(*buf)
	defer pool.Put(s)
	go func() { // want `pool value s captured by a spawned goroutine`
		s.b = s.b[:0]
	}()
}

// A branch that returns before the Put leaks the buffer.
func leakOnSkip(skip bool) {
	s := pool.Get().(*buf) // want `pool value s borrowed here is not Put on every path`
	if skip {
		return
	}
	pool.Put(s)
}

// getBuf is the sanctioned accessor: a get*-named function may return
// the pooled value, transferring the Put obligation to its caller.
func getBuf() *buf {
	s := pool.Get().(*buf)
	if s.b == nil {
		s.b = make([]byte, 0, 64)
	}
	return s
}

// putBuf is a put*-named release helper; poolscope credits it like a
// direct pool.Put.
func putBuf(s *buf) { pool.Put(s) }

// The disciplined borrow: accessor Get, deferred Put, all mutation of
// the pooled value's own fields in between.
func okAccessorUse() int {
	s := getBuf()
	defer pool.Put(s)
	s.b = append(s.b[:0], 'x')
	return len(s.b)
}

func okHelperRelease() int {
	s := getBuf()
	defer putBuf(s)
	s.b = s.b[:0]
	return cap(s.b)
}

// Copying data out of the borrow is not an escape.
func okCopyOut() []byte {
	s := getBuf()
	defer putBuf(s)
	s.b = append(s.b[:0], "payload"...)
	out := make([]byte, len(s.b))
	copy(out, s.b)
	return out
}

// hand transfers ownership of the buffer to the channel consumer,
// which Puts it back after draining — the one documented handoff, so
// both the missing local Put and the channel escape are justified.
func hand() {
	//recipelint:allow poolscope ownership moves to the channel consumer, which Puts the buffer after draining it
	s := getBuf()
	//recipelint:allow poolscope ownership moves to the channel consumer, which Puts the buffer after draining it
	sink <- s
}
