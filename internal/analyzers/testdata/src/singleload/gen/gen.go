// Package gen seeds the torn-generation reads singleload catches —
// double Loads of a pinned atomic, directly and through the pinning
// accessor — next to the writer and single-pin forms it must stay
// quiet about.
package gen

import "sync/atomic"

type state struct{ v int }

type Server struct {
	pipe atomic.Value
}

// state is the generation-pinning accessor: a single `return Load`
// body, recognized module-wide.
func (s *Server) state() *state {
	return s.pipe.Load().(*state)
}

// Two direct Loads in one handler straddle a reload.
func (s *Server) badDouble() int {
	a := s.pipe.Load().(*state)
	b := s.pipe.Load().(*state) // want `second atomic Load of s\.pipe in one function`
	return a.v + b.v
}

// The same torn read one hop removed: two accessor calls.
func (s *Server) badAccessor() int {
	a := s.state()
	b := s.state() // want `second call to generation-pinning accessor state on s`
	return a.v + b.v
}

// Writers are exempt: a function that Stores (or CASes) the same
// atomic is a reload path, serialized elsewhere, not a pinned reader.
func (s *Server) reload(n *state) *state {
	old, _ := s.pipe.Load().(*state)
	if cur, _ := s.pipe.Load().(*state); cur != nil {
		old = cur
	}
	s.pipe.Store(n)
	return old
}

// The pinned form: one Load, threaded through the request.
func (s *Server) ok() int {
	st := s.state()
	return st.v * st.v
}

// A closure pins its own generation independently of its parent.
func (s *Server) okClosurePins() func() int {
	first := s.state()
	_ = first
	return func() int {
		return s.state().v
	}
}

// refresh deliberately reads the generation before and after a reload
// barrier — a diagnostic, not a request path.
func (s *Server) refresh() (int, int) {
	before := s.state()
	//recipelint:allow singleload deliberate before/after generation read across the reload barrier in this diagnostic
	after := s.state()
	return before.v, after.v
}
