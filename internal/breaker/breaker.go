// Package breaker implements a generic circuit breaker for the
// serving tiers (DESIGN §15): a sliding failure-rate window over
// recent outcomes, the classic closed → open → half-open state
// machine, and a bounded half-open probe budget. Every time source is
// injected (Config.Clock plus an optional reopen Backoff schedule), so
// the full state machine is exercisable in tests without a single
// sleep: advance a fake clock, call Acquire, observe the transition.
//
// Protocol: callers bracket each guarded operation with
//
//	tk := b.Acquire()      // admission decision
//	if !tk.OK() { ... }    // open: serve the fallback tier
//	err := op()
//	b.Done(tk, err == nil) // outcome report
//
// Tickets are epoch-stamped: a Done that arrives after the state
// machine has since transitioned (a slow decode finishing during a
// new probe round) is discarded rather than polluting the fresh
// window or probe accounting. Out-of-band failure signals that have
// no bracketed operation — a rejected reload canary, a shard budget
// overrun — feed the window through Report.
//
// A nil *Breaker is valid and always admits: tiering is opt-in, and
// the server passes nil when no fallback tier is configured, keeping
// that configuration byte-identical to the pre-tier server.
package breaker

import (
	"sync"
	"time"

	"recipemodel/internal/faults"
	"recipemodel/internal/resilience"
)

// FaultTrip fires at the moment the breaker trips closed → open, after
// the transition is published. Chaos drills hook its OnHit to timestamp
// the trip without sleeping; an injected error is ignored (the trip
// itself is not abortable).
const FaultTrip = "breaker.trip"

// FaultProbe fires when a half-open probe slot is about to be granted.
// An injected error denies the probe (the slot is returned), letting
// drills hold the breaker half-open deterministically.
const FaultProbe = "breaker.probe"

var (
	_ = faults.MustRegister(FaultTrip)
	_ = faults.MustRegister(FaultProbe)
)

// State is the breaker position.
type State int32

const (
	// StateClosed: traffic flows; outcomes feed the sliding window.
	StateClosed State = iota
	// StateOpen: traffic is denied until the reopen delay elapses.
	StateOpen
	// StateHalfOpen: up to MaxProbes trial operations are admitted;
	// CloseAfter consecutive successes close the breaker, any failure
	// reopens it with the next (escalated) delay.
	StateHalfOpen
)

// String returns the conventional lower-case state name.
func (s State) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Config tunes a Breaker. The zero value is usable: every field has a
// production default.
type Config struct {
	// Window is the sliding outcome window size (default 64).
	Window int
	// FailureRate in (0, 1] trips the breaker when the window's
	// failure fraction reaches it (default 0.5).
	FailureRate float64
	// MinSamples gates tripping until the window holds at least this
	// many outcomes, so one early failure cannot open the breaker
	// (default 8).
	MinSamples int
	// OpenTimeout is the base delay before an open breaker admits
	// half-open probes (default 5s). When ReopenBackoff is set it
	// supplies the full escalation schedule instead.
	OpenTimeout time.Duration
	// ReopenBackoff, when non-nil, supplies the reopen delay
	// schedule: Delays()[k] spaces the k-th consecutive reopen
	// (capped at the last entry), typically with JitterSpread so
	// probe storms desynchronize across instances. Nil uses the fixed
	// OpenTimeout for every reopen.
	ReopenBackoff *resilience.Backoff
	// MaxProbes bounds concurrently admitted half-open probes
	// (default 1).
	MaxProbes int
	// CloseAfter is the consecutive probe successes required to close
	// (default 3).
	CloseAfter int
	// Clock replaces time.Now in tests; nil uses the real clock.
	Clock func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.FailureRate <= 0 || c.FailureRate > 1 {
		c.FailureRate = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = 5 * time.Second
	}
	if c.MaxProbes <= 0 {
		c.MaxProbes = 1
	}
	if c.CloseAfter <= 0 {
		c.CloseAfter = 3
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Ticket is an admission stamp returned by Acquire and redeemed by
// Done (or Cancel). The zero Ticket is not OK.
type Ticket struct {
	epoch uint64
	probe bool
	ok    bool
}

// OK reports whether the operation was admitted.
func (t Ticket) OK() bool { return t.ok }

// Probe reports whether the ticket is a half-open trial slot.
func (t Ticket) Probe() bool { return t.probe }

// Breaker is the circuit breaker. All methods are safe for concurrent
// use and safe on a nil receiver (which always admits and ignores
// reports).
type Breaker struct {
	cfg Config
	// delays is the resolved reopen schedule; delays[min(k, len-1)]
	// spaces the k-th consecutive reopen. Always non-empty.
	delays []time.Duration

	mu    sync.Mutex
	state State
	// epoch increments on every transition; tickets minted before a
	// transition are stale and their Done is discarded.
	epoch uint64
	// outcomes is a ring of recent closed-state results (true =
	// failure); head is the next write slot.
	outcomes    []bool
	head, count int
	fails       int
	openedAt    time.Time
	// delayIdx indexes delays for the current open period.
	delayIdx int
	// probes is the number of outstanding half-open tickets; streak
	// the consecutive probe successes this half-open round.
	probes, streak int

	// monotonic counters for /readyz.
	trips, reopens, closes, probesGranted, denied int64
}

// New builds a Breaker; zero-value Config fields take the documented
// defaults.
func New(cfg Config) *Breaker {
	cfg = cfg.withDefaults()
	b := &Breaker{cfg: cfg, outcomes: make([]bool, cfg.Window)}
	if bo := cfg.ReopenBackoff; bo != nil {
		b.delays = bo.Delays()
	}
	if len(b.delays) == 0 {
		b.delays = []time.Duration{cfg.OpenTimeout}
	}
	return b
}

// reopenDelay returns the delay for the k-th consecutive reopen.
func (b *Breaker) reopenDelay(k int) time.Duration {
	if k >= len(b.delays) {
		k = len(b.delays) - 1
	}
	return b.delays[k]
}

// Acquire decides admission for one guarded operation. A non-OK
// ticket means the breaker is open (or the probe budget is spent) and
// the caller must serve its fallback. An OK ticket must be redeemed
// with exactly one Done (or Cancel if the operation never ran).
func (b *Breaker) Acquire() Ticket {
	if b == nil {
		return Ticket{ok: true}
	}
	b.mu.Lock()
	//recipelint:allow locksafe Config.Clock is the injected time source — a pure, non-blocking read; every state decision must see it under the same lock acquisition
	if b.state == StateOpen && b.cfg.Clock().Sub(b.openedAt) >= b.reopenDelay(b.delayIdx) {
		// Reopen delay elapsed: lazily transition to half-open. No
		// background timer — the state machine only moves under
		// traffic, which is what makes it fully clock-injectable.
		b.state = StateHalfOpen
		b.epoch++
		b.probes = 0
		b.streak = 0
	}
	switch b.state {
	case StateClosed:
		t := Ticket{epoch: b.epoch, ok: true}
		b.mu.Unlock()
		return t
	case StateHalfOpen:
		if b.probes >= b.cfg.MaxProbes {
			b.denied++
			b.mu.Unlock()
			return Ticket{}
		}
		b.probes++
		b.probesGranted++
		t := Ticket{epoch: b.epoch, probe: true, ok: true}
		b.mu.Unlock()
		// The probe fault point runs outside the lock: OnHit hooks
		// may call back into the breaker (e.g. to inspect Stats).
		if err := faults.Inject(FaultProbe); err != nil {
			b.Cancel(t)
			b.mu.Lock()
			b.denied++
			b.mu.Unlock()
			return Ticket{}
		}
		return t
	default: // StateOpen
		b.denied++
		b.mu.Unlock()
		return Ticket{}
	}
}

// Done redeems a ticket with the operation's outcome. Stale tickets
// (minted before the last transition) are discarded.
func (b *Breaker) Done(t Ticket, success bool) {
	if b == nil || !t.ok {
		return
	}
	b.mu.Lock()
	if t.epoch != b.epoch {
		b.mu.Unlock()
		return
	}
	tripped := false
	if t.probe {
		b.probes--
		if success {
			b.streak++
			if b.streak >= b.cfg.CloseAfter {
				b.toClosedLocked()
			}
		} else {
			b.toOpenLocked(b.delayIdx + 1)
			b.reopens++
		}
	} else {
		b.recordLocked(!success)
		if b.shouldTripLocked() {
			b.toOpenLocked(0)
			b.trips++
			tripped = true
		}
	}
	b.mu.Unlock()
	if tripped {
		// Fired after the transition is visible and outside the lock;
		// the trip is a fact, so an injected error is ignored — OnHit
		// is the observable drills hook.
		_ = faults.Inject(FaultTrip)
	}
}

// Cancel returns a ticket without recording an outcome — for admitted
// operations that never ran (e.g. the load-shed limiter refused the
// work after the breaker admitted it).
func (b *Breaker) Cancel(t Ticket) {
	if b == nil || !t.ok || !t.probe {
		return
	}
	b.mu.Lock()
	if t.epoch == b.epoch {
		b.probes--
	}
	b.mu.Unlock()
}

// Report feeds one out-of-band outcome into the closed-state window —
// failure signals with no bracketed operation, like a canary-rejected
// reload or a query shard blowing its deadline budget. Ignored unless
// the breaker is closed (an open breaker is already acting on the
// news).
func (b *Breaker) Report(success bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	if b.state != StateClosed {
		b.mu.Unlock()
		return
	}
	b.recordLocked(!success)
	tripped := false
	if b.shouldTripLocked() {
		b.toOpenLocked(0)
		b.trips++
		tripped = true
	}
	b.mu.Unlock()
	if tripped {
		_ = faults.Inject(FaultTrip)
	}
}

// State returns the current stored state. An open breaker whose
// reopen delay has elapsed still reads open until the next Acquire
// performs the lazy half-open transition.
func (b *Breaker) State() State {
	if b == nil {
		return StateClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// recordLocked pushes one outcome into the sliding window.
func (b *Breaker) recordLocked(failure bool) {
	if b.count == len(b.outcomes) {
		if b.outcomes[b.head] {
			b.fails--
		}
	} else {
		b.count++
	}
	b.outcomes[b.head] = failure
	if failure {
		b.fails++
	}
	b.head = (b.head + 1) % len(b.outcomes)
}

func (b *Breaker) shouldTripLocked() bool {
	return b.state == StateClosed &&
		b.count >= b.cfg.MinSamples &&
		float64(b.fails)/float64(b.count) >= b.cfg.FailureRate
}

// toOpenLocked transitions to open with the delayIdx-th reopen delay.
func (b *Breaker) toOpenLocked(delayIdx int) {
	b.state = StateOpen
	b.epoch++
	b.openedAt = b.cfg.Clock()
	b.delayIdx = delayIdx
	b.probes = 0
	b.streak = 0
}

// toClosedLocked transitions to closed with a fresh window.
func (b *Breaker) toClosedLocked() {
	b.state = StateClosed
	b.epoch++
	b.head, b.count, b.fails = 0, 0, 0
	b.delayIdx = 0
	b.probes = 0
	b.streak = 0
	b.closes++
}

// Stats is a point-in-time snapshot for /readyz and drills.
type Stats struct {
	State       string  `json:"state"`
	WindowSize  int     `json:"window_size"`
	Samples     int     `json:"samples"`
	Failures    int     `json:"failures"`
	FailureRate float64 `json:"failure_rate"`
	Trips       int64   `json:"trips"`
	Reopens     int64   `json:"reopens"`
	Closes      int64   `json:"closes"`
	Probes      int64   `json:"probes_granted"`
	Denied      int64   `json:"denied"`
	ProbeStreak int     `json:"probe_streak"`
}

// Stats snapshots the breaker. A nil breaker reads as a closed,
// empty-window breaker.
func (b *Breaker) Stats() Stats {
	if b == nil {
		return Stats{State: StateClosed.String()}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := Stats{
		State:       b.state.String(),
		WindowSize:  len(b.outcomes),
		Samples:     b.count,
		Failures:    b.fails,
		Trips:       b.trips,
		Reopens:     b.reopens,
		Closes:      b.closes,
		Probes:      b.probesGranted,
		Denied:      b.denied,
		ProbeStreak: b.streak,
	}
	if b.count > 0 {
		st.FailureRate = float64(b.fails) / float64(b.count)
	}
	return st
}
