package breaker

import (
	"errors"
	"sync"
	"testing"
	"time"

	"recipemodel/internal/faults"
	"recipemodel/internal/resilience"
)

// fakeClock is a manually advanced time source; every test in this
// package is sleep-free by construction.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newClock() *fakeClock {
	return &fakeClock{now: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// testBreaker returns a small, fast-tripping breaker on a fake clock:
// window 8, trip at ≥50% of ≥4 samples, reopen after 1s, 1 probe,
// close after 2 consecutive probe successes.
func testBreaker(clk *fakeClock) *Breaker {
	return New(Config{
		Window:      8,
		FailureRate: 0.5,
		MinSamples:  4,
		OpenTimeout: time.Second,
		MaxProbes:   1,
		CloseAfter:  2,
		Clock:       clk.Now,
	})
}

// outcome pushes one closed-state result through the ticket protocol.
func outcome(t *testing.T, b *Breaker, success bool) {
	t.Helper()
	tk := b.Acquire()
	if !tk.OK() {
		t.Fatal("closed breaker denied admission")
	}
	b.Done(tk, success)
}

// TestBreakerTransitionTable walks every (state × event) cell of the
// state machine and asserts the resulting state.
func TestBreakerTransitionTable(t *testing.T) {
	clk := newClock()
	b := testBreaker(clk)

	// closed × success → closed.
	outcome(t, b, true)
	if b.State() != StateClosed {
		t.Fatalf("closed×success → %v", b.State())
	}

	// closed × failure below MinSamples → closed (no premature trip).
	outcome(t, b, false)
	outcome(t, b, false)
	if b.State() != StateClosed {
		t.Fatalf("closed×2 failures of 3 samples → %v (MinSamples=4 not met)", b.State())
	}

	// closed × failure reaching rate over MinSamples → open (trip).
	outcome(t, b, false) // window now {ok,fail,fail,fail}: 75% ≥ 50%, 4 ≥ 4
	if b.State() != StateOpen {
		t.Fatalf("closed×tripping failure → %v, want open", b.State())
	}
	if got := b.Stats().Trips; got != 1 {
		t.Fatalf("trips = %d, want 1", got)
	}

	// open × acquire before timeout → denied, still open.
	if tk := b.Acquire(); tk.OK() {
		t.Fatal("open breaker admitted before reopen delay")
	}
	if b.State() != StateOpen {
		t.Fatalf("open×early acquire → %v", b.State())
	}

	// open × acquire after timeout → half-open, probe granted.
	clk.Advance(time.Second)
	tk := b.Acquire()
	if !tk.OK() || !tk.Probe() {
		t.Fatalf("post-timeout acquire: ok=%v probe=%v, want probe ticket", tk.OK(), tk.Probe())
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("open×timeout acquire → %v, want half-open", b.State())
	}

	// half-open × probe budget spent → denied.
	if extra := b.Acquire(); extra.OK() {
		t.Fatal("second probe admitted with MaxProbes=1 outstanding")
	}

	// half-open × probe failure → open again (reopen, not trip).
	b.Done(tk, false)
	if b.State() != StateOpen {
		t.Fatalf("half-open×probe failure → %v, want open", b.State())
	}
	st := b.Stats()
	if st.Reopens != 1 || st.Trips != 1 {
		t.Fatalf("reopens=%d trips=%d, want 1/1", st.Reopens, st.Trips)
	}

	// half-open × probe success streak → closed after CloseAfter.
	clk.Advance(time.Second)
	p1 := b.Acquire()
	if !p1.Probe() {
		t.Fatal("expected probe after second reopen delay")
	}
	b.Done(p1, true)
	if b.State() != StateHalfOpen {
		t.Fatalf("1/2 probe successes → %v, want still half-open", b.State())
	}
	p2 := b.Acquire()
	b.Done(p2, true)
	if b.State() != StateClosed {
		t.Fatalf("2/2 probe successes → %v, want closed", b.State())
	}
	if got := b.Stats().Closes; got != 1 {
		t.Fatalf("closes = %d, want 1", got)
	}

	// The close wiped the window: old failures must not linger.
	if s := b.Stats(); s.Samples != 0 || s.Failures != 0 {
		t.Fatalf("window after close: samples=%d failures=%d, want 0/0", s.Samples, s.Failures)
	}
}

// TestBreakerWindowSlides pins that old outcomes age out: a burst of
// failures followed by enough successes drops the rate below the
// threshold without any transition.
func TestBreakerWindowSlides(t *testing.T) {
	clk := newClock()
	b := New(Config{Window: 4, FailureRate: 0.75, MinSamples: 4, Clock: clk.Now})
	// 2 failures then 6 successes: the failures leave the 4-wide window.
	outcome(t, b, false)
	outcome(t, b, false)
	for i := 0; i < 6; i++ {
		outcome(t, b, true)
	}
	if st := b.Stats(); st.Failures != 0 || st.Samples != 4 {
		t.Fatalf("failures=%d samples=%d, want 0/4 after sliding", st.Failures, st.Samples)
	}
	if b.State() != StateClosed {
		t.Fatalf("state = %v", b.State())
	}
}

// TestBreakerStaleDoneDiscarded: a Done carrying a ticket from before
// a transition must not pollute the new round's accounting.
func TestBreakerStaleDoneDiscarded(t *testing.T) {
	clk := newClock()
	b := testBreaker(clk)
	slow := b.Acquire() // minted in epoch 0, redeemed much later
	for i := 0; i < 4; i++ {
		outcome(t, b, false)
	}
	if b.State() != StateOpen {
		t.Fatal("did not trip")
	}
	clk.Advance(time.Second)
	probe := b.Acquire()
	if !probe.Probe() {
		t.Fatal("expected probe")
	}
	// The slow pre-trip decode finishes now, as a failure. If it were
	// counted it would be recorded into a half-open round's state.
	b.Done(slow, false)
	if b.State() != StateHalfOpen {
		t.Fatalf("stale Done moved state to %v", b.State())
	}
	b.Done(probe, true)
	b.Done(b.Acquire(), true)
	if b.State() != StateClosed {
		t.Fatalf("recovery blocked by stale ticket: %v", b.State())
	}
	// And a stale probe ticket redeemed after close is also inert.
	b.Done(probe, false)
	if b.State() != StateClosed {
		t.Fatalf("stale probe Done reopened: %v", b.State())
	}
}

// TestBreakerReopenBackoffSchedule pins delay escalation: consecutive
// reopens follow the injected Backoff schedule (seeded JitterSpread),
// and the breaker only admits probes once the scheduled delay for the
// current open period has elapsed.
func TestBreakerReopenBackoffSchedule(t *testing.T) {
	bo := &resilience.Backoff{
		Base: time.Second, Max: 4 * time.Second, Attempts: 4,
		Jitter: 0.5, Mode: resilience.JitterSpread, Seed: 11,
	}
	delays := bo.Delays() // 3 entries, deterministic for seed 11
	clk := newClock()
	b := New(Config{
		Window: 8, FailureRate: 0.5, MinSamples: 2,
		ReopenBackoff: bo, MaxProbes: 1, CloseAfter: 1, Clock: clk.Now,
	})
	outcome(t, b, false)
	outcome(t, b, false) // trip: delay index 0
	for k := 0; k < 4; k++ {
		want := delays[len(delays)-1] // schedule caps at its last entry
		if k < len(delays) {
			want = delays[k]
		}
		if tk := b.Acquire(); tk.OK() {
			t.Fatalf("reopen %d: admitted with no time elapsed", k)
		}
		clk.Advance(want - time.Nanosecond)
		if tk := b.Acquire(); tk.OK() {
			t.Fatalf("reopen %d: admitted %v early", k, time.Nanosecond)
		}
		clk.Advance(time.Nanosecond)
		tk := b.Acquire()
		if !tk.OK() || !tk.Probe() {
			t.Fatalf("reopen %d: no probe after scheduled delay %v", k, want)
		}
		if k < 3 {
			b.Done(tk, false) // fail the probe: escalate to delay k+1
		} else {
			b.Done(tk, true) // CloseAfter=1: recover
		}
	}
	if b.State() != StateClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

// TestBreakerProbeCapConcurrent hammers a half-open breaker from many
// goroutines: at most MaxProbes tickets may be outstanding at once.
// Run under -race (make tier-test does).
func TestBreakerProbeCapConcurrent(t *testing.T) {
	clk := newClock()
	b := New(Config{
		Window: 8, FailureRate: 0.5, MinSamples: 2,
		OpenTimeout: time.Second, MaxProbes: 3, CloseAfter: 100, Clock: clk.Now,
	})
	outcome(t, b, false)
	outcome(t, b, false)
	clk.Advance(time.Second)

	const goroutines = 32
	var wg sync.WaitGroup
	granted := make(chan Ticket, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if tk := b.Acquire(); tk.OK() {
				granted <- tk // hold the slot: nobody calls Done yet
			}
		}()
	}
	wg.Wait()
	close(granted)
	var held []Ticket
	for tk := range granted {
		held = append(held, tk)
	}
	if len(held) != 3 {
		t.Fatalf("%d probes granted with MaxProbes=3", len(held))
	}
	// Releasing a slot with a success frees exactly one more probe.
	b.Done(held[0], true)
	if tk := b.Acquire(); !tk.OK() {
		t.Fatal("freed probe slot not re-admitted")
	}
}

// TestBreakerTripFaultPoint: the trip publishes through the
// breaker.trip fault point so drills can timestamp it, and the probe
// point can deny probes deterministically.
func TestBreakerTripFaultPoint(t *testing.T) {
	defer faults.Reset()
	clk := newClock()
	b := testBreaker(clk)

	tripped := make(chan struct{}, 1)
	disable := faults.Enable(FaultTrip, faults.Fault{OnHit: func(int) { tripped <- struct{}{} }})
	for i := 0; i < 4; i++ {
		outcome(t, b, false)
	}
	if got := faults.Fired(FaultTrip); got != 1 {
		t.Fatalf("breaker.trip fired %d times, want 1", got)
	}
	disable()
	select {
	case <-tripped:
	default:
		t.Fatal("breaker.trip OnHit did not fire on trip")
	}

	// breaker.probe with an injected error denies the probe and
	// returns the slot.
	clk.Advance(time.Second)
	disable = faults.Enable(FaultProbe, faults.Fault{Err: errors.New("hold half-open")})
	if tk := b.Acquire(); tk.OK() {
		t.Fatal("probe admitted while breaker.probe injects an error")
	}
	disable()
	tk := b.Acquire()
	if !tk.OK() || !tk.Probe() {
		t.Fatal("probe slot leaked by denied probe")
	}
	b.Done(tk, true)
	b.Done(b.Acquire(), true)
	if b.State() != StateClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

// TestBreakerReport: out-of-band failures (canary-rejected reloads,
// shard budget overruns) trip a closed breaker and are ignored in
// other states.
func TestBreakerReport(t *testing.T) {
	clk := newClock()
	b := testBreaker(clk)
	for i := 0; i < 4; i++ {
		b.Report(false)
	}
	if b.State() != StateOpen {
		t.Fatalf("4 reported failures → %v, want open", b.State())
	}
	// Reports while open are discarded — they must not disturb the
	// reopen clock or the (empty) next window.
	b.Report(false)
	clk.Advance(time.Second)
	tk := b.Acquire()
	if !tk.Probe() {
		t.Fatal("probe expected")
	}
	b.Done(tk, true)
	b.Done(b.Acquire(), true)
	if st := b.Stats(); st.Samples != 0 {
		t.Fatalf("open-state Report leaked into window: samples=%d", st.Samples)
	}
}

// TestBreakerNil: a nil breaker is the no-tier configuration — always
// admits, never trips, reads closed.
func TestBreakerNil(t *testing.T) {
	var b *Breaker
	tk := b.Acquire()
	if !tk.OK() || tk.Probe() {
		t.Fatal("nil breaker must admit plain tickets")
	}
	b.Done(tk, false)
	b.Report(false)
	b.Cancel(tk)
	if b.State() != StateClosed {
		t.Fatalf("nil state = %v", b.State())
	}
	if st := b.Stats(); st.State != "closed" {
		t.Fatalf("nil stats = %+v", st)
	}
}

// TestBreakerCancelReturnsProbeSlot: an admitted probe whose operation
// never ran (limiter shed) must hand its slot back without counting as
// an outcome.
func TestBreakerCancelReturnsProbeSlot(t *testing.T) {
	clk := newClock()
	b := testBreaker(clk)
	for i := 0; i < 4; i++ {
		outcome(t, b, false)
	}
	clk.Advance(time.Second)
	tk := b.Acquire()
	if !tk.Probe() {
		t.Fatal("probe expected")
	}
	b.Cancel(tk)
	if b.State() != StateHalfOpen {
		t.Fatalf("Cancel moved state to %v", b.State())
	}
	again := b.Acquire()
	if !again.OK() {
		t.Fatal("cancelled probe slot not reusable")
	}
	b.Done(again, true)
	b.Done(b.Acquire(), true)
	if b.State() != StateClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

func TestStateString(t *testing.T) {
	if StateClosed.String() != "closed" || StateOpen.String() != "open" || StateHalfOpen.String() != "half-open" {
		t.Fatal("state names changed; /readyz consumers depend on them")
	}
}
