// Package cache is the heavy-tail annotation memo: a sharded,
// concurrency-safe LRU keyed on sanitized phrase bytes. The paper's
// corpus applies one CRF to 11.5M largely duplicated phrases ("salt",
// "2 eggs" dominate real ingredient traffic), so a serving stack that
// remembers the last few tens of thousands of decodes answers the
// bulk of a heavy-tail mix from a map lookup instead of a Viterbi
// pass.
//
// Two design points carry the correctness story:
//
//   - Keys are canonical: callers key on core.CanonicalKey(phrase)
//     (the PR 4 sanitizer), so byte-level variants of one phrase
//     (NBSP vs space, un-normalized composition) share an entry while
//     the echoed Phrase field stays the caller's raw string.
//   - Entries are generation-pinned: every Get and Put carries the
//     generation of the model the caller resolved, and Get returns an
//     entry only when its generation matches. A hot reload bumps the
//     serving generation (internal/server pairs it atomically with
//     the pipeline pointer), which invalidates every older entry
//     logically at zero cost — stale entries are collected lazily, on
//     the mismatching Get or by LRU pressure, never by a
//     stop-the-world flush.
//
// The cache.lookup fault point fires at the top of every Get; an
// injected error makes the lookup behave as a miss (a flaky cache
// degrades to decoding, never to wrong answers), and OnHit gives
// chaos drills a deterministic interleaving hook between a caller's
// lookup and its decode.
package cache

import (
	"sync"
	"sync/atomic"

	"recipemodel/internal/faults"
)

// FaultLookup fires at the top of every Get, before the shard lock is
// taken. Arm with Err to simulate an unavailable cache (lookups
// degrade to misses), or OnHit to gate drill interleavings at exact
// lookup counts.
const FaultLookup = "cache.lookup"

var _ = faults.MustRegister(FaultLookup)

// numShards spreads the key space over independent locks; 16 is
// plenty for a single process (the lock is held for a map probe and a
// couple of pointer swaps).
const numShards = 16

// entry is one cached record on its shard's intrusive LRU list.
type entry[V any] struct {
	key        string
	val        V
	gen        uint64
	prev, next *entry[V]
}

// shard is one lock's worth of the cache: a map for lookup plus a
// doubly-linked list in recency order (root.next is most recent).
type shard[V any] struct {
	mu    sync.Mutex
	items map[string]*entry[V]
	root  entry[V] // sentinel: root.next = MRU, root.prev = LRU
	limit int
}

func (s *shard[V]) init(limit int) {
	s.items = make(map[string]*entry[V])
	s.root.next = &s.root
	s.root.prev = &s.root
	s.limit = limit
}

func (s *shard[V]) unlink(e *entry[V]) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
}

func (s *shard[V]) pushFront(e *entry[V]) {
	e.next = s.root.next
	e.prev = &s.root
	s.root.next.prev = e
	s.root.next = e
}

func (s *shard[V]) moveFront(e *entry[V]) {
	s.unlink(e)
	s.pushFront(e)
}

// Stats is a point-in-time counter snapshot. Misses include lookups
// that found a stale-generation entry (which also count one eviction,
// since the entry is dropped on the spot).
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
}

// Cache is a sharded LRU of at most ~entries values. All methods are
// safe for concurrent use; a nil *Cache is a valid always-miss cache,
// so callers can keep one code path whether caching is on or off.
type Cache[V any] struct {
	shards    [numShards]shard[V]
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// New builds a cache bounded to roughly entries values (the bound is
// enforced per shard, so the effective capacity is the nearest
// multiple of the shard count, minimum one per shard). entries <= 0
// returns nil — the always-miss cache.
func New[V any](entries int) *Cache[V] {
	if entries <= 0 {
		return nil
	}
	perShard := (entries + numShards - 1) / numShards
	c := &Cache[V]{}
	for i := range c.shards {
		c.shards[i].init(perShard)
	}
	return c
}

// shardFor picks the shard by FNV-1a over the key bytes.
func (c *Cache[V]) shardFor(key string) *shard[V] {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &c.shards[h%numShards]
}

// Get returns the value cached under key for generation gen. A stored
// entry from another generation is a miss — and is evicted on the
// spot, since no future Get at the current generation can ever use
// it. An injected FaultLookup error also reads as a miss: the caller
// falls back to decoding.
func (c *Cache[V]) Get(key string, gen uint64) (v V, ok bool) {
	if c == nil {
		return v, false
	}
	if err := faults.Inject(FaultLookup); err != nil {
		c.misses.Add(1)
		return v, false
	}
	s := c.shardFor(key)
	s.mu.Lock()
	e, found := s.items[key]
	if !found {
		s.mu.Unlock()
		c.misses.Add(1)
		return v, false
	}
	if e.gen != gen {
		s.unlink(e)
		delete(s.items, key)
		s.mu.Unlock()
		c.evictions.Add(1)
		c.misses.Add(1)
		return v, false
	}
	s.moveFront(e)
	v = e.val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put stores v under key for generation gen, refreshing recency. When
// the shard is over its bound the least-recently-used entry is
// evicted. Storing over an existing key replaces its value and
// generation in place.
func (c *Cache[V]) Put(key string, gen uint64, v V) {
	if c == nil {
		return
	}
	s := c.shardFor(key)
	s.mu.Lock()
	if e, ok := s.items[key]; ok {
		e.val, e.gen = v, gen
		s.moveFront(e)
		s.mu.Unlock()
		return
	}
	e := &entry[V]{key: key, val: v, gen: gen}
	s.items[key] = e
	s.pushFront(e)
	var evicted bool
	if len(s.items) > s.limit {
		lru := s.root.prev
		s.unlink(lru)
		delete(s.items, lru.key)
		evicted = true
	}
	s.mu.Unlock()
	if evicted {
		c.evictions.Add(1)
	}
}

// Len reports the live entry count across all shards (including
// not-yet-collected stale-generation entries).
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}
