package cache

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"recipemodel/internal/faults"
)

func TestPutGet(t *testing.T) {
	c := New[string](64)
	if _, ok := c.Get("salt", 1); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("salt", 1, "NaCl")
	v, ok := c.Get("salt", 1)
	if !ok || v != "NaCl" {
		t.Fatalf("Get = (%q, %v)", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestGenerationMismatchIsMissAndEvicts: the reload-invalidation
// contract — an entry stored under generation g is unreachable at
// generation g+1, and the mismatching lookup collects it.
func TestGenerationMismatchIsMissAndEvicts(t *testing.T) {
	c := New[string](64)
	c.Put("salt", 1, "old model's answer")
	if _, ok := c.Get("salt", 2); ok {
		t.Fatal("stale-generation entry served")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 0 {
		t.Fatalf("stale entry not collected: %+v", st)
	}
	// the key is free for the new generation.
	c.Put("salt", 2, "new model's answer")
	if v, ok := c.Get("salt", 2); !ok || v != "new model's answer" {
		t.Fatalf("Get after refill = (%q, %v)", v, ok)
	}
}

// TestPutReplacesAcrossGenerations: Put over an existing key adopts
// the new value and generation in place.
func TestPutReplacesAcrossGenerations(t *testing.T) {
	c := New[int](64)
	c.Put("k", 1, 10)
	c.Put("k", 2, 20)
	if _, ok := c.Get("k", 1); ok {
		t.Fatal("old generation still served after replace")
	}
	// the gen-1 lookup evicted the entry; refill and check gen 2.
	c.Put("k", 2, 20)
	if v, ok := c.Get("k", 2); !ok || v != 20 {
		t.Fatalf("Get = (%d, %v)", v, ok)
	}
}

// TestLRUEviction: filling one shard past its bound drops the least
// recently used key. Keys are forced onto one shard by probing.
func TestLRUEviction(t *testing.T) {
	// capacity 16 → 1 entry per shard; find three keys on one shard.
	c := New[int](16)
	target := c.shardFor("seed")
	keys := make([]string, 0, 3)
	for i := 0; len(keys) < 3; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.shardFor(k) == target {
			keys = append(keys, k)
		}
	}
	c.Put(keys[0], 1, 0)
	c.Put(keys[1], 1, 1) // evicts keys[0] (shard bound is 1)
	if _, ok := c.Get(keys[0], 1); ok {
		t.Fatal("LRU entry survived over-bound Put")
	}
	if v, ok := c.Get(keys[1], 1); !ok || v != 1 {
		t.Fatalf("newest entry missing: (%d, %v)", v, ok)
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

// TestLRURecencyOrder: a Get refreshes recency, so the untouched key
// is the one evicted.
func TestLRURecencyOrder(t *testing.T) {
	c := New[int](32) // 2 per shard
	target := c.shardFor("seed")
	keys := make([]string, 0, 3)
	for i := 0; len(keys) < 3; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.shardFor(k) == target {
			keys = append(keys, k)
		}
	}
	c.Put(keys[0], 1, 0)
	c.Put(keys[1], 1, 1)
	if _, ok := c.Get(keys[0], 1); !ok { // refresh keys[0]
		t.Fatal("warm entry missing")
	}
	c.Put(keys[2], 1, 2) // evicts keys[1], the LRU
	if _, ok := c.Get(keys[1], 1); ok {
		t.Fatal("LRU entry survived")
	}
	if _, ok := c.Get(keys[0], 1); !ok {
		t.Fatal("refreshed entry evicted")
	}
}

// TestNilCacheAlwaysMisses: a nil cache is the cache-off mode; every
// operation is a safe no-op.
func TestNilCacheAlwaysMisses(t *testing.T) {
	var c *Cache[int]
	c.Put("k", 1, 1)
	if _, ok := c.Get("k", 1); ok {
		t.Fatal("nil cache hit")
	}
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Fatal("nil cache has state")
	}
	if New[int](0) != nil {
		t.Fatal("New(0) should be the nil always-miss cache")
	}
}

// TestFaultLookupDegradesToMiss: an injected lookup error reads as a
// miss — callers fall back to decoding, never to an error or a stale
// value.
func TestFaultLookupDegradesToMiss(t *testing.T) {
	defer faults.Reset()
	c := New[string](64)
	c.Put("salt", 1, "cached")
	faults.Enable(FaultLookup, faults.Fault{Err: errors.New("cache flake")})
	if _, ok := c.Get("salt", 1); ok {
		t.Fatal("hit through an injected lookup fault")
	}
	faults.Disable(FaultLookup)
	if v, ok := c.Get("salt", 1); !ok || v != "cached" {
		t.Fatalf("entry lost after fault: (%q, %v)", v, ok)
	}
}

// TestConcurrentAccess: hammer all shards from many goroutines; the
// race detector is the assertion, plus basic conservation of the
// counters.
func TestConcurrentAccess(t *testing.T) {
	c := New[int](128)
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%d", (w*31+i)%200)
				if v, ok := c.Get(k, 1); ok && v != len(k) {
					t.Errorf("corrupt value %d for %q", v, k)
					return
				}
				c.Put(k, 1, len(k))
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != workers*500 {
		t.Fatalf("lookups = %d, want %d", st.Hits+st.Misses, workers*500)
	}
	if st.Entries > 128+numShards {
		t.Fatalf("entries = %d exceeds bound", st.Entries)
	}
}
