// Package checkpoint is the durability primitive of the mining
// pipeline: a write-ahead manifest that records, after every batch of
// emitted records, how much of the output is durable — so a run killed
// at phrase 9M of 11.5M resumes from the last checkpoint instead of
// restarting from zero.
//
// The manifest is a tiny JSON sidecar next to the output file
// (out.jsonl → out.jsonl.ckpt) holding the records-emitted count, the
// output byte offset of the last durable record, and a fingerprint of
// the run configuration (corpus size, seed, model identity). The write
// discipline is the classic WAL ordering:
//
//  1. append records to the output file, flush, fsync
//  2. write the manifest to a temp file in the same directory, fsync
//  3. rename the temp file over the manifest, fsync the directory
//
// A crash at any point leaves the previous manifest intact and
// pointing at a prefix of the durable output; resume truncates any
// torn tail beyond Manifest.Offset and re-mines from Manifest.Records.
// Because mining is deterministic, the resumed output is byte-identical
// to an uninterrupted run.
package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"recipemodel/internal/faults"
)

// FaultSave fires at the top of every manifest save, before anything
// becomes durable. Tests arm it to simulate a crash after the data
// fsync but before the checkpoint advances — the window a resume must
// survive by re-mining the unrecorded tail.
const FaultSave = "checkpoint.save"

var _ = faults.MustRegister(FaultSave)

// manifestVersion guards against stale sidecar formats.
const manifestVersion = 1

// Manifest records how much of a mining run's output is durable.
type Manifest struct {
	// Version is the manifest wire version.
	Version int `json:"version"`
	// Fingerprint identifies the run configuration (corpus size, seed,
	// model). Resume refuses a checkpoint whose fingerprint differs —
	// continuing a run with a different corpus or model would splice
	// two incompatible outputs.
	Fingerprint string `json:"fingerprint"`
	// Records is the number of complete records durable in the output.
	Records int `json:"records"`
	// Offset is the output byte offset just past the last durable
	// record; any bytes beyond it are a torn tail to truncate.
	Offset int64 `json:"offset"`
	// Quarantined counts inputs rejected into the dead-letter file so
	// far. Inputs consumed = Records + Quarantined, which is where a
	// resume re-enters the corpus; keeping the two counts separate
	// keeps both files byte-identical across a kill.
	Quarantined int `json:"quarantined,omitempty"`
	// QuarantineOffset is the durable byte offset of the dead-letter
	// file (0 when no quarantine sink is configured); a resume
	// truncates the quarantine file's torn tail to it, mirroring
	// Offset for the output.
	QuarantineOffset int64 `json:"quarantineOffset,omitempty"`
}

// PathFor returns the manifest sidecar path for an output file.
func PathFor(output string) string { return output + ".ckpt" }

// Save atomically replaces the manifest at path: temp file in the same
// directory, fsync, rename, fsync the directory. A crash mid-save
// leaves the previous manifest readable.
func Save(path string, m Manifest) error {
	if err := faults.Inject(FaultSave); err != nil {
		return fmt.Errorf("checkpoint: save %s: %w", path, err)
	}
	m.Version = manifestVersion
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("checkpoint: save %s: %w", path, err)
	}
	if err := WriteFileAtomic(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("checkpoint: save %s: %w", path, err)
	}
	return nil
}

// Load reads and validates the manifest at path.
func Load(path string) (Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Manifest{}, fmt.Errorf("checkpoint: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	if m.Version != manifestVersion {
		return Manifest{}, fmt.Errorf("checkpoint: %s: manifest version %d, want %d", path, m.Version, manifestVersion)
	}
	if m.Records < 0 || m.Offset < 0 {
		return Manifest{}, fmt.Errorf("checkpoint: %s: negative records (%d) or offset (%d)", path, m.Records, m.Offset)
	}
	if m.Quarantined < 0 || m.QuarantineOffset < 0 {
		return Manifest{}, fmt.Errorf("checkpoint: %s: negative quarantined (%d) or quarantine offset (%d)", path, m.Quarantined, m.QuarantineOffset)
	}
	return m, nil
}

// WriteFileAtomic writes data to path so a crash can never leave a
// partially written file: the bytes land in a temp file in the same
// directory (same filesystem, so the rename is atomic), are fsync'd,
// renamed over path, and the parent directory is fsync'd so the rename
// itself is durable.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	// On any failure, remove the temp so retries don't accumulate junk.
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making renames inside it durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
