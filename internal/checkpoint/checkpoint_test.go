package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"recipemodel/internal/faults"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	path := PathFor(filepath.Join(t.TempDir(), "out.jsonl"))
	want := Manifest{Fingerprint: "abc123", Records: 42, Offset: 9001}
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint != want.Fingerprint || got.Records != want.Records || got.Offset != want.Offset {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
	if got.Version != manifestVersion {
		t.Fatalf("version = %d, want %d", got.Version, manifestVersion)
	}
}

func TestSaveReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ckpt")
	if err := Save(path, Manifest{Fingerprint: "f", Records: 1, Offset: 10}); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, Manifest{Fingerprint: "f", Records: 2, Offset: 20}); err != nil {
		t.Fatal(err)
	}
	m, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Records != 2 || m.Offset != 20 {
		t.Fatalf("second save not visible: %+v", m)
	}
	// no temp droppings left behind
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries, want 1: %v", len(entries), entries)
	}
}

// TestCrashedSaveKeepsPreviousManifest is the WAL guarantee: a save
// that dies (injected at the fault point, before anything is written)
// leaves the previous manifest intact and loadable.
func TestCrashedSaveKeepsPreviousManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.ckpt")
	if err := Save(path, Manifest{Fingerprint: "f", Records: 5, Offset: 50}); err != nil {
		t.Fatal(err)
	}
	errCrash := errors.New("simulated crash")
	defer faults.Enable(FaultSave, faults.Fault{Err: errCrash})()
	if err := Save(path, Manifest{Fingerprint: "f", Records: 9, Offset: 90}); !errors.Is(err, errCrash) {
		t.Fatalf("save under fault = %v, want injected crash", err)
	}
	faults.Reset()
	m, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if m.Records != 5 || m.Offset != 50 {
		t.Fatalf("previous manifest lost: %+v", m)
	}
}

func TestLoadRejectsCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"not-json":    `{"version": 1, "records":`,
		"bad-version": `{"version": 99, "records": 1, "offset": 1}`,
		"negative":    `{"version": 1, "records": -3, "offset": 1}`,
	}
	for name, body := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(path); err == nil {
			t.Errorf("%s: loaded without error", name)
		} else if !strings.Contains(err.Error(), path) {
			t.Errorf("%s: error %q does not name the file", name, err)
		}
	}
}

func TestLoadMissingManifest(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.ckpt")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing manifest: %v", err)
	}
}

func TestWriteFileAtomicCleansUpOnChmodTarget(t *testing.T) {
	// plain success path with a strict perm: file exists with content.
	path := filepath.Join(t.TempDir(), "f")
	if err := WriteFileAtomic(path, []byte("x"), 0o600); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "x" {
		t.Fatalf("read back: %q, %v", data, err)
	}
}
