package cluster

// AdjustedRandIndex measures agreement between two clusterings of the
// same points, corrected for chance: 1.0 for identical partitions
// (up to label permutation), ≈0 for independent ones. Used to verify
// that the POS-vector clustering is robust to the tagger backend.
func AdjustedRandIndex(a, b []int) float64 {
	n := len(a)
	if n != len(b) || n == 0 {
		return 0
	}
	// contingency table.
	type pair struct{ x, y int }
	cont := map[pair]int{}
	ca := map[int]int{}
	cb := map[int]int{}
	for i := 0; i < n; i++ {
		cont[pair{a[i], b[i]}]++
		ca[a[i]]++
		cb[b[i]]++
	}
	choose2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }
	var sumIJ, sumA, sumB float64
	for _, c := range cont {
		sumIJ += choose2(c)
	}
	for _, c := range ca {
		sumA += choose2(c)
	}
	for _, c := range cb {
		sumB += choose2(c)
	}
	total := choose2(n)
	if total == 0 {
		return 0
	}
	expected := sumA * sumB / total
	max := (sumA + sumB) / 2
	if max == expected {
		return 0
	}
	return (sumIJ - expected) / (max - expected)
}
