// Package cluster implements K-Means clustering with k-means++
// seeding, Lloyd iterations, inertia, the elbow criterion for model
// selection, and silhouette scoring. The paper clusters 1×36
// POS-tag-frequency vectors of ingredient phrases into 23 clusters
// selected by the elbow criterion (§II.E, Fig 2).
package cluster

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"recipemodel/internal/mathx"
	"recipemodel/internal/parallel"
)

// Result is a fitted K-Means clustering.
type Result struct {
	K          int
	Centroids  []mathx.Vector
	Assignment []int // Assignment[i] = cluster of point i
	Inertia    float64
	Iterations int
}

// Config controls the K-Means run.
type Config struct {
	K             int
	MaxIterations int     // default 100
	Tolerance     float64 // centroid-shift convergence threshold, default 1e-6
	Restarts      int     // independent seedings, best inertia wins; default 1
	// Workers bounds the goroutines used for the O(n·K·dim) distance
	// scans (Lloyd assignment, k-means++ seeding, inertia). <= 0 uses
	// every CPU; 1 forces serial execution. Results are bit-identical
	// at any worker count: per-point computations are pure, and every
	// floating-point reduction stays serial in index order. The RNG is
	// only ever touched by the calling goroutine.
	Workers int
}

// ErrBadInput is returned on empty data or invalid K.
var ErrBadInput = errors.New("cluster: need at least K non-empty points")

// KMeans fits cfg.K clusters to points using the provided RNG for
// seeding. The input points are not modified.
func KMeans(points []mathx.Vector, cfg Config, rng *rand.Rand) (*Result, error) {
	if cfg.K <= 0 || len(points) < cfg.K {
		return nil, ErrBadInput
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = 100
	}
	if cfg.Tolerance <= 0 {
		cfg.Tolerance = 1e-6
	}
	restarts := cfg.Restarts
	if restarts <= 0 {
		restarts = 1
	}
	var best *Result
	for r := 0; r < restarts; r++ {
		res := runLloyd(points, cfg, rng)
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

func runLloyd(points []mathx.Vector, cfg Config, rng *rand.Rand) *Result {
	cents := seedPlusPlus(points, cfg.K, rng, cfg.Workers)
	assign := make([]int, len(points))
	counts := make([]int, cfg.K)
	dim := len(points[0])

	var iter int
	for iter = 0; iter < cfg.MaxIterations; iter++ {
		// assignment step: pure per-point, fanned out over the pool.
		parallel.ForEachIndex(cfg.Workers, len(points), func(i int) {
			assign[i] = nearest(cents, points[i])
		})
		// update step
		next := make([]mathx.Vector, cfg.K)
		for c := range next {
			next[c] = make(mathx.Vector, dim)
			counts[c] = 0
		}
		for i, p := range points {
			next[assign[i]].Add(p)
			counts[assign[i]]++
		}
		shift := 0.0
		for c := range next {
			if counts[c] == 0 {
				// re-seed an empty cluster at the point farthest from
				// its current centroid, a standard Lloyd repair.
				far := farthestPoint(points, cents, assign)
				next[c] = points[far].Clone()
				assign[far] = c
				counts[c] = 1
			} else {
				next[c].Scale(1 / float64(counts[c]))
			}
			shift += mathx.Distance(cents[c], next[c])
		}
		cents = next
		if shift < cfg.Tolerance {
			iter++
			break
		}
	}
	// final assignment + inertia: distances computed in parallel, the
	// inertia sum reduced serially in index order (same FP order as a
	// fully serial run).
	d2 := make([]float64, len(points))
	parallel.ForEachIndex(cfg.Workers, len(points), func(i int) {
		assign[i] = nearest(cents, points[i])
		d2[i] = mathx.SquaredDistance(points[i], cents[assign[i]])
	})
	inertia := 0.0
	for _, d := range d2 {
		inertia += d
	}
	return &Result{
		K:          cfg.K,
		Centroids:  cents,
		Assignment: append([]int(nil), assign...),
		Inertia:    inertia,
		Iterations: iter,
	}
}

// seedPlusPlus implements k-means++ initialization: each subsequent
// centroid is sampled with probability proportional to its squared
// distance from the nearest already-chosen centroid. The distance
// scans fan out over workers; all RNG draws stay on the calling
// goroutine, so seeding is deterministic at any worker count.
func seedPlusPlus(points []mathx.Vector, k int, rng *rand.Rand, workers int) []mathx.Vector {
	cents := make([]mathx.Vector, 0, k)
	cents = append(cents, points[rng.Intn(len(points))].Clone())

	// minD2[i] = squared distance from points[i] to its nearest centroid.
	minD2 := make([]float64, len(points))
	parallel.ForEachIndex(workers, len(points), func(i int) {
		minD2[i] = mathx.SquaredDistance(points[i], cents[0])
	})
	for len(cents) < k {
		var sum float64
		for _, d := range minD2 {
			sum += d
		}
		var chosen int
		if sum == 0 {
			// all points coincide with chosen centroids: duplicate one.
			chosen = rng.Intn(len(points))
		} else {
			target := rng.Float64() * sum
			acc := 0.0
			chosen = len(points) - 1
			for i, d := range minD2 {
				acc += d
				if acc >= target {
					chosen = i
					break
				}
			}
		}
		cents = append(cents, points[chosen].Clone())
		latest := cents[len(cents)-1]
		parallel.ForEachIndex(workers, len(points), func(i int) {
			if d := mathx.SquaredDistance(points[i], latest); d < minD2[i] {
				minD2[i] = d
			}
		})
	}
	return cents
}

func nearest(cents []mathx.Vector, p mathx.Vector) int {
	best := 0
	bestD := math.MaxFloat64
	for c, cent := range cents {
		if d := mathx.SquaredDistance(p, cent); d < bestD {
			bestD = d
			best = c
		}
	}
	return best
}

func farthestPoint(points, cents []mathx.Vector, assign []int) int {
	far, farD := 0, -1.0
	for i, p := range points {
		d := mathx.SquaredDistance(p, cents[assign[i]])
		if d > farD {
			farD = d
			far = i
		}
	}
	return far
}

// Members returns, for each cluster, the indices of its points.
func (r *Result) Members() [][]int {
	out := make([][]int, r.K)
	for i, c := range r.Assignment {
		out[c] = append(out[c], i)
	}
	return out
}

// Sizes returns the number of points per cluster.
func (r *Result) Sizes() []int {
	out := make([]int, r.K)
	for _, c := range r.Assignment {
		out[c]++
	}
	return out
}

// Predict returns the index of the closest centroid to p.
func (r *Result) Predict(p mathx.Vector) int {
	return nearest(r.Centroids, p)
}

// ElbowPoint sweeps K over [kMin, kMax], fits each, and selects the
// knee of the inertia curve by the maximum-distance-to-chord method
// (the geometric formalization of the "Elbow Criterion" the paper
// cites). It returns the chosen K and the inertia for every K tried.
func ElbowPoint(points []mathx.Vector, kMin, kMax int, cfg Config, rng *rand.Rand) (int, []float64, error) {
	if kMin < 1 || kMax < kMin {
		return 0, nil, ErrBadInput
	}
	if kMax > len(points) {
		kMax = len(points)
	}
	inertias := make([]float64, 0, kMax-kMin+1)
	for k := kMin; k <= kMax; k++ {
		c := cfg
		c.K = k
		res, err := KMeans(points, c, rng)
		if err != nil {
			return 0, nil, err
		}
		inertias = append(inertias, res.Inertia)
	}
	return kMin + knee(inertias), inertias, nil
}

// knee returns the index of the point with the maximum perpendicular
// distance from the chord joining the first and last curve points.
func knee(ys []float64) int {
	n := len(ys)
	if n <= 2 {
		return 0
	}
	x0, y0 := 0.0, ys[0]
	x1, y1 := float64(n-1), ys[n-1]
	dx, dy := x1-x0, y1-y0
	norm := math.Hypot(dx, dy)
	if norm == 0 {
		return 0
	}
	best, bestD := 0, -1.0
	for i := 0; i < n; i++ {
		d := math.Abs(dy*float64(i)-dx*ys[i]+x1*y0-y1*x0) / norm
		if d > bestD {
			bestD = d
			best = i
		}
	}
	return best
}

// Silhouette computes the mean silhouette coefficient of a clustering,
// a standard internal validity measure in [-1, 1]. The O(n²) pairwise
// scan fans out one point per pool slot (every per-point coefficient
// is pure); the mean is reduced serially in index order, so the value
// is identical at any parallelism level.
func Silhouette(points []mathx.Vector, assign []int, k int) float64 {
	return SilhouetteWorkers(points, assign, k, 0)
}

// SilhouetteWorkers is Silhouette with an explicit worker bound
// (<= 0: all CPUs, 1: serial).
func SilhouetteWorkers(points []mathx.Vector, assign []int, k, workers int) float64 {
	n := len(points)
	if n == 0 || k < 2 {
		return 0
	}
	sizes := make([]int, k)
	for _, c := range assign {
		sizes[c]++
	}
	// coeff[i] = silhouette of point i; NaN marks undefined points
	// (singleton clusters, degenerate b).
	coeff := make([]float64, n)
	parallel.ForEachRange(workers, parallel.Chunks(n, parallel.Workers(workers)),
		func(_ int, r parallel.Range) {
			dists := make([]float64, k)
			for i := r.Lo; i < r.Hi; i++ {
				coeff[i] = math.NaN()
				for c := range dists {
					dists[c] = 0
				}
				for j := 0; j < n; j++ {
					if i == j {
						continue
					}
					dists[assign[j]] += mathx.Distance(points[i], points[j])
				}
				own := assign[i]
				if sizes[own] <= 1 {
					continue // silhouette undefined for singleton's member
				}
				a := dists[own] / float64(sizes[own]-1)
				b := math.MaxFloat64
				for c := 0; c < k; c++ {
					if c == own || sizes[c] == 0 {
						continue
					}
					if v := dists[c] / float64(sizes[c]); v < b {
						b = v
					}
				}
				if b == math.MaxFloat64 {
					continue
				}
				s := 0.0
				if den := math.Max(a, b); den > 0 {
					s = (b - a) / den
				}
				coeff[i] = s
			}
		})
	var total float64
	var counted int
	for _, s := range coeff {
		if math.IsNaN(s) {
			continue
		}
		total += s
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// StratifiedSample picks approximately frac of each cluster's members
// (at least one per non-empty cluster), reproducing the paper's
// cluster-stratified construction of NER training sets (§II.E: "From
// each cluster, 1% unique ingredient phrases were picked"). exclude
// marks indices that must not be selected (e.g. phrases already in the
// training set when drawing the test set). The returned indices are
// sorted.
func (r *Result) StratifiedSample(frac float64, exclude map[int]bool, rng *rand.Rand) []int {
	var out []int
	for _, members := range r.Members() {
		var pool []int
		for _, i := range members {
			if !exclude[i] {
				pool = append(pool, i)
			}
		}
		if len(pool) == 0 {
			continue
		}
		want := int(math.Round(frac * float64(len(pool))))
		if want < 1 {
			want = 1
		}
		if want > len(pool) {
			want = len(pool)
		}
		rng.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
		out = append(out, pool[:want]...)
	}
	sort.Ints(out)
	return out
}
