package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"recipemodel/internal/mathx"
)

func clusterTestPoints(n, dim int, seed int64) []mathx.Vector {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]mathx.Vector, n)
	for i := range pts {
		pts[i] = make(mathx.Vector, dim)
		for d := 0; d < 4; d++ {
			pts[i][rng.Intn(dim)] = float64(rng.Intn(5))
		}
	}
	return pts
}

// TestKMeansDeterministicAcrossWorkers: same seed, any worker count,
// bit-identical Result (centroids, assignment, inertia, iterations).
func TestKMeansDeterministicAcrossWorkers(t *testing.T) {
	pts := clusterTestPoints(400, 12, 3)
	run := func(workers int) *Result {
		rng := rand.New(rand.NewSource(7))
		res, err := KMeans(pts, Config{K: 9, Restarts: 2, Workers: workers}, rng)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, w := range []int{2, 4, 8, 0} {
		par := run(w)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d diverged from serial: inertia %v vs %v",
				w, par.Inertia, serial.Inertia)
		}
	}
}

// TestElbowDeterministicAcrossWorkers covers the full sweep path.
func TestElbowDeterministicAcrossWorkers(t *testing.T) {
	pts := clusterTestPoints(200, 8, 5)
	run := func(workers int) (int, []float64) {
		rng := rand.New(rand.NewSource(2))
		k, curve, err := ElbowPoint(pts, 2, 8, Config{Workers: workers}, rng)
		if err != nil {
			t.Fatal(err)
		}
		return k, curve
	}
	k1, c1 := run(1)
	k8, c8 := run(8)
	if k1 != k8 || !reflect.DeepEqual(c1, c8) {
		t.Fatalf("elbow diverged: k %d vs %d", k1, k8)
	}
}

// TestSilhouetteDeterministicAcrossWorkers: the parallel pairwise scan
// must reproduce the serial mean exactly.
func TestSilhouetteDeterministicAcrossWorkers(t *testing.T) {
	pts := clusterTestPoints(150, 10, 9)
	rng := rand.New(rand.NewSource(4))
	res, err := KMeans(pts, Config{K: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	serial := SilhouetteWorkers(pts, res.Assignment, res.K, 1)
	for _, w := range []int{2, 8, 0} {
		if got := SilhouetteWorkers(pts, res.Assignment, res.K, w); got != serial {
			t.Fatalf("workers=%d silhouette %v != serial %v", w, got, serial)
		}
	}
}
