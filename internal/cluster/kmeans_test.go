package cluster

import (
	"math"
	"math/rand"
	"testing"

	"recipemodel/internal/mathx"
)

// blobs generates n points around each of the given centers.
func blobs(rng *rand.Rand, centers []mathx.Vector, n int, spread float64) ([]mathx.Vector, []int) {
	var pts []mathx.Vector
	var labels []int
	for ci, c := range centers {
		for i := 0; i < n; i++ {
			p := make(mathx.Vector, len(c))
			for d := range p {
				p[d] = c[d] + rng.NormFloat64()*spread
			}
			pts = append(pts, p)
			labels = append(labels, ci)
		}
	}
	return pts, labels
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	centers := []mathx.Vector{{0, 0}, {10, 10}, {-10, 10}}
	pts, labels := blobs(rng, centers, 50, 0.5)
	res, err := KMeans(pts, Config{K: 3, Restarts: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Every gold cluster must map to exactly one predicted cluster.
	mapping := map[int]int{}
	for i, l := range labels {
		if prev, ok := mapping[l]; ok {
			if prev != res.Assignment[i] {
				t.Fatalf("gold cluster %d split across predicted clusters", l)
			}
		} else {
			mapping[l] = res.Assignment[i]
		}
	}
	if len(mapping) != 3 {
		t.Fatalf("expected 3 distinct predicted clusters, got %d", len(mapping))
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts, _ := blobs(rng, []mathx.Vector{{0, 0}, {8, 8}, {-8, 8}, {8, -8}}, 30, 1.0)
	var prev float64 = math.MaxFloat64
	for k := 1; k <= 6; k++ {
		res, err := KMeans(pts, Config{K: k, Restarts: 3}, rng)
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev*1.05 {
			t.Fatalf("inertia increased markedly at k=%d: %v > %v", k, res.Inertia, prev)
		}
		prev = res.Inertia
	}
}

func TestKMeansErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := KMeans(nil, Config{K: 2}, rng); err == nil {
		t.Error("nil points should error")
	}
	if _, err := KMeans([]mathx.Vector{{1}}, Config{K: 2}, rng); err == nil {
		t.Error("fewer points than K should error")
	}
	if _, err := KMeans([]mathx.Vector{{1}, {2}}, Config{K: 0}, rng); err == nil {
		t.Error("K=0 should error")
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := make([]mathx.Vector, 10)
	for i := range pts {
		pts[i] = mathx.Vector{1, 1}
	}
	res, err := KMeans(pts, Config{K: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Fatalf("identical points should give zero inertia, got %v", res.Inertia)
	}
}

func TestKMeansDeterministicWithSeed(t *testing.T) {
	pts, _ := blobs(rand.New(rand.NewSource(5)), []mathx.Vector{{0, 0}, {5, 5}}, 20, 0.3)
	a, _ := KMeans(pts, Config{K: 2}, rand.New(rand.NewSource(99)))
	b, _ := KMeans(pts, Config{K: 2}, rand.New(rand.NewSource(99)))
	if a.Inertia != b.Inertia {
		t.Fatal("same seed should reproduce the same clustering")
	}
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("assignments differ under identical seeds")
		}
	}
}

func TestMembersAndSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts, _ := blobs(rng, []mathx.Vector{{0, 0}, {9, 9}}, 10, 0.1)
	res, err := KMeans(pts, Config{K: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	members := res.Members()
	sizes := res.Sizes()
	total := 0
	for c := range members {
		if len(members[c]) != sizes[c] {
			t.Fatalf("Members/Sizes disagree for cluster %d", c)
		}
		total += sizes[c]
	}
	if total != len(pts) {
		t.Fatalf("cluster sizes sum to %d, want %d", total, len(pts))
	}
}

func TestPredictMatchesAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts, _ := blobs(rng, []mathx.Vector{{0, 0}, {20, 0}}, 15, 0.5)
	res, err := KMeans(pts, Config{K: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if res.Predict(p) != res.Assignment[i] {
			t.Fatalf("Predict disagrees with Assignment at %d", i)
		}
	}
}

func TestElbowFindsTrueK(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts, _ := blobs(rng, []mathx.Vector{{0, 0}, {30, 0}, {0, 30}, {30, 30}}, 40, 0.8)
	k, inertias, err := ElbowPoint(pts, 1, 10, Config{Restarts: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(inertias) != 10 {
		t.Fatalf("inertias length = %d", len(inertias))
	}
	if k < 3 || k > 5 {
		t.Fatalf("elbow found k=%d for 4 well-separated blobs", k)
	}
}

func TestElbowErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	if _, _, err := ElbowPoint(nil, 0, 5, Config{}, rng); err == nil {
		t.Error("kMin=0 should error")
	}
	if _, _, err := ElbowPoint([]mathx.Vector{{1}, {2}}, 3, 2, Config{}, rng); err == nil {
		t.Error("kMax < kMin should error")
	}
}

func TestSilhouetteWellSeparated(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pts, labels := blobs(rng, []mathx.Vector{{0, 0}, {50, 50}}, 25, 0.5)
	s := Silhouette(pts, labels, 2)
	if s < 0.9 {
		t.Fatalf("well-separated blobs should have silhouette near 1, got %v", s)
	}
}

func TestSilhouetteRandomLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts, _ := blobs(rng, []mathx.Vector{{0, 0}}, 60, 3.0)
	labels := make([]int, len(pts))
	for i := range labels {
		labels[i] = rng.Intn(3)
	}
	s := Silhouette(pts, labels, 3)
	if s > 0.2 {
		t.Fatalf("random labels should have low silhouette, got %v", s)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	if s := Silhouette(nil, nil, 2); s != 0 {
		t.Error("empty input")
	}
	if s := Silhouette([]mathx.Vector{{1}}, []int{0}, 1); s != 0 {
		t.Error("k<2")
	}
}

func TestStratifiedSample(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pts, _ := blobs(rng, []mathx.Vector{{0, 0}, {10, 10}, {-10, -10}}, 100, 0.5)
	res, err := KMeans(pts, Config{K: 3, Restarts: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	sample := res.StratifiedSample(0.1, nil, rng)
	// ~10% of each 100-point cluster → about 30 total.
	if len(sample) < 15 || len(sample) > 45 {
		t.Fatalf("sample size %d out of expected range", len(sample))
	}
	// every cluster must be represented
	seen := map[int]bool{}
	for _, i := range sample {
		seen[res.Assignment[i]] = true
	}
	if len(seen) != 3 {
		t.Fatalf("sample covers %d clusters, want 3", len(seen))
	}
	// sorted + unique
	for i := 1; i < len(sample); i++ {
		if sample[i] <= sample[i-1] {
			t.Fatal("sample not sorted/unique")
		}
	}
}

func TestStratifiedSampleExcludes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts, _ := blobs(rng, []mathx.Vector{{0, 0}, {10, 10}}, 50, 0.5)
	res, err := KMeans(pts, Config{K: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	first := res.StratifiedSample(0.2, nil, rng)
	excl := map[int]bool{}
	for _, i := range first {
		excl[i] = true
	}
	second := res.StratifiedSample(0.2, excl, rng)
	for _, i := range second {
		if excl[i] {
			t.Fatalf("excluded index %d re-sampled", i)
		}
	}
}

func TestStratifiedSampleMinimumOnePerCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	pts, _ := blobs(rng, []mathx.Vector{{0, 0}, {10, 10}}, 20, 0.1)
	res, err := KMeans(pts, Config{K: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	sample := res.StratifiedSample(0.0001, nil, rng)
	if len(sample) != 2 {
		t.Fatalf("tiny fraction should still pick 1 per cluster, got %d", len(sample))
	}
}

func TestKneeOnSyntheticCurve(t *testing.T) {
	// L-shaped curve with knee at index 2.
	ys := []float64{100, 50, 10, 9, 8, 7}
	if got := knee(ys); got != 2 {
		t.Fatalf("knee = %d, want 2", got)
	}
	if got := knee([]float64{5}); got != 0 {
		t.Fatalf("degenerate knee = %d", got)
	}
	if got := knee([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("flat knee = %d", got)
	}
}

func TestAdjustedRandIndexIdentical(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	if got := AdjustedRandIndex(a, a); got != 1 {
		t.Fatalf("identical ARI = %v", got)
	}
	// label permutation is still perfect agreement.
	b := []int{5, 5, 9, 9, 7, 7}
	if got := AdjustedRandIndex(a, b); got != 1 {
		t.Fatalf("permuted ARI = %v", got)
	}
}

func TestAdjustedRandIndexIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	n := 2000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = rng.Intn(5)
		b[i] = rng.Intn(5)
	}
	if got := AdjustedRandIndex(a, b); got < -0.05 || got > 0.05 {
		t.Fatalf("independent ARI = %v, want ≈0", got)
	}
}

func TestAdjustedRandIndexDegenerate(t *testing.T) {
	if AdjustedRandIndex(nil, nil) != 0 {
		t.Fatal("empty")
	}
	if AdjustedRandIndex([]int{1}, []int{1, 2}) != 0 {
		t.Fatal("length mismatch")
	}
	// all points in one cluster on both sides: max == expected → 0 by
	// convention.
	if got := AdjustedRandIndex([]int{0, 0}, []int{0, 0}); got != 0 {
		t.Fatalf("degenerate ARI = %v", got)
	}
}
