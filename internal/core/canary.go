package core

// CanaryCase pins one golden ingredient phrase together with the
// entity any healthy tagger must extract from it. The hot-reload path
// annotates the canary set with a candidate model before swapping it
// into the serving position; a candidate that misses a canary is
// rejected and the old model keeps serving. The phrases are chosen to
// be easy — they probe "is this model sane at all", not "is it better".
type CanaryCase struct {
	// Phrase is the raw ingredient phrase to annotate.
	Phrase string
	// WantName is the ingredient name the record must carry.
	WantName string
}

// CanarySet is the pinned golden phrase set for reload validation.
// Every case is comfortably inside the synthetic training distribution
// and is annotated correctly even by deliberately small test models
// (400 phrases, 3 epochs), so a miss signals real breakage — a
// mis-trained, truncated, or wrong-task bundle — not model variance.
func CanarySet() []CanaryCase {
	return []CanaryCase{
		{Phrase: "2 cups chopped onion", WantName: "onion"},
		{Phrase: "1 tsp salt", WantName: "salt"},
		{Phrase: "3 cloves garlic , minced", WantName: "garlic"},
		{Phrase: "2 tablespoons olive oil", WantName: "olive oil"},
	}
}
