// Per-record fault containment. The checked annotation APIs wrap each
// pipeline stage in a recover that converts a panic into a typed
// quarantine error, so one poison record costs exactly one record:
// the batch partial APIs collect the rejection, the legacy
// single-record APIs degrade to an empty record, and in neither case
// does the goroutine — or the batch — die.

package core

import (
	"errors"
	"sync"

	"recipemodel/internal/depparse"
	"recipemodel/internal/faults"
	"recipemodel/internal/ner"
	"recipemodel/internal/quarantine"
	"recipemodel/internal/tokenize"
)

// DefaultSanitize is the hardening policy applied by the annotation
// entry points: repair invalid UTF-8, default byte/token caps. Mine
// and serve share it by construction.
var DefaultSanitize = SanitizePolicy{}

// panicError converts a recovered panic value into a typed quarantine
// error: an already-typed error (or one wrapping a quarantine code)
// keeps its code, anything else is classified under fallback.
func panicError(r any, fallback quarantine.Code) error {
	if err, ok := r.(error); ok {
		var qe *quarantine.Error
		if errors.As(err, &qe) {
			return qe
		}
	}
	return quarantine.Errorf(fallback, "contained panic: %v", r)
}

// guard runs one pipeline stage with panic containment; a panic comes
// back as a typed quarantine error carrying code (unless the panic
// value itself was typed).
func guard(code quarantine.Code, stage func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = panicError(r, code)
		}
	}()
	stage()
	return nil
}

// annScratch carries the per-call buffers of the checked annotation
// paths. Every field is length-reset before use and fully overwritten
// before it is read, so recycling a scratch whose previous owner's
// stage panicked (the deferred Put still runs after guard recovers)
// can never leak stale tokens or spans into a later record.
type annScratch struct {
	toks  []tokenize.Token
	words []string
	spans []ner.Span
}

var annPool = sync.Pool{New: func() any {
	return &annScratch{
		toks:  make([]tokenize.Token, 0, 64),
		words: make([]string, 0, 64),
		spans: make([]ner.Span, 0, 16),
	}
}}

// AnnotateIngredientChecked is AnnotateIngredient with record-level
// containment surfaced: the phrase is sanitized (typed rejection on
// poison), and a tagger panic is contained and returned as
// ErrTaggerPanic instead of unwinding the caller. On error the record
// is zero but for the echoed phrase.
func (p *Pipeline) AnnotateIngredientChecked(phrase string) (IngredientRecord, error) {
	_ = faults.Inject(FaultAnnotate)
	rec := IngredientRecord{Phrase: phrase}
	clean, err := Sanitize(phrase, DefaultSanitize)
	if err != nil {
		return rec, err
	}
	s := annPool.Get().(*annScratch)
	defer annPool.Put(s)
	s.toks = tokenize.AppendTo(s.toks[:0], clean)
	s.words = s.words[:0]
	for _, t := range s.toks {
		s.words = append(s.words, t.Text)
	}
	tokens := s.words
	if err := checkTokens(tokens, DefaultSanitize); err != nil {
		return rec, err
	}
	err = guard(quarantine.CodeTaggerPanic, func() {
		s.spans = p.IngredientNER.AppendPredict(s.spans[:0], tokens)
		rec = RecordFromSpans(phrase, tokens, s.spans, p.lem)
	})
	if err != nil {
		return IngredientRecord{Phrase: phrase}, err
	}
	return rec, nil
}

// AnnotateInstructionChecked is AnnotateInstruction with the same
// containment contract: sanitization rejections are typed, a panic in
// the NER/POS tagging stage returns ErrTaggerPanic, and a panic in
// the dependency-parse/relation stage returns ErrParserPanic. On
// error the annotation carries only the echoed step.
func (p *Pipeline) AnnotateInstructionChecked(step string) (InstructionAnnotation, error) {
	_ = faults.Inject(FaultInstruction)
	ann := InstructionAnnotation{Step: step}
	clean, err := Sanitize(step, DefaultSanitize)
	if err != nil {
		return ann, err
	}
	// Only the token scratch is poolable here: the spans and the token
	// strings escape into the returned annotation (ann.Spans, ann.Tree).
	s := annPool.Get().(*annScratch)
	s.toks = tokenize.AppendTo(s.toks[:0], clean)
	tokens := tokenize.Words(s.toks)
	annPool.Put(s)
	if err := checkTokens(tokens, DefaultSanitize); err != nil {
		return ann, err
	}
	var tags []string
	err = guard(quarantine.CodeTaggerPanic, func() {
		ann.Spans = p.InstructionNER.Predict(tokens)
		tags = p.POS.Tag(tokens)
	})
	if err != nil {
		return InstructionAnnotation{Step: step}, err
	}
	err = guard(quarantine.CodeParserPanic, func() {
		ann.Tree = depparse.Parse(tokens, tags)
		ann.Relations = p.Extractor.Extract(ann.Tree, ann.Spans)
	})
	if err != nil {
		return InstructionAnnotation{Step: step}, err
	}
	return ann, nil
}
