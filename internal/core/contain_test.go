package core

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"recipemodel/internal/faults"
	"recipemodel/internal/quarantine"
)

// TestAnnotateIngredientEmptyPhrase pins the empty-input contract: an
// empty or whitespace-only phrase returns a well-formed empty record
// (echoing the phrase) — no panic, no garbage fields. This was the
// original bug: the tokenizer's empty output used to reach the tagger.
func TestAnnotateIngredientEmptyPhrase(t *testing.T) {
	p := trainTestPipeline(t)
	cases := []struct {
		name   string
		phrase string
	}{
		{"empty", ""},
		{"spaces", "   "},
		{"tabs and newlines", " \t \n \r "},
		{"nbsp only", "\u00a0\u00a0"},
		{"invisibles", "\ufeff\u200b"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := p.AnnotateIngredient(c.phrase)
			want := IngredientRecord{Phrase: c.phrase}
			if !reflect.DeepEqual(rec, want) {
				t.Fatalf("AnnotateIngredient(%q) = %+v, want empty record echoing the phrase", c.phrase, rec)
			}
			// and the JSON form is well-formed (mine writes these).
			if _, err := json.Marshal(rec); err != nil {
				t.Fatalf("marshal: %v", err)
			}
		})
	}
}

// TestAnnotateIngredientCheckedTaxonomy: each poison class maps to its
// code, and the error'd record still echoes the phrase.
func TestAnnotateIngredientCheckedTaxonomy(t *testing.T) {
	p := trainTestPipeline(t)
	cases := []struct {
		phrase string
		want   quarantine.Code
	}{
		{"", quarantine.CodeEmptyAfterClean},
		{"   \t  ", quarantine.CodeEmptyAfterClean},
		{strings.Repeat("very ", 40_000) + "long", quarantine.CodeTooLong},
		{strings.Repeat("a ", 30_000), quarantine.CodeTooManyTokens},
	}
	for _, c := range cases {
		rec, err := p.AnnotateIngredientChecked(c.phrase)
		if quarantine.CodeOf(err) != c.want {
			t.Fatalf("%.30q: code = %q, want %q", c.phrase, quarantine.CodeOf(err), c.want)
		}
		if rec.Phrase != c.phrase || rec.Name != "" {
			t.Fatalf("%.30q: rejected record = %+v", c.phrase, rec)
		}
	}
	// a clean phrase still annotates identically to the legacy API.
	rec, err := p.AnnotateIngredientChecked("2 cups chopped onion")
	if err != nil {
		t.Fatal(err)
	}
	if legacy := p.AnnotateIngredient("2 cups chopped onion"); !reflect.DeepEqual(rec, legacy) {
		t.Fatalf("checked %+v != legacy %+v", rec, legacy)
	}
}

// TestAnnotateCheckedNeverPanicsOnPoisonCorpus: the whole checked-in
// corpus, through both checked entry points, without a panic.
func TestAnnotateCheckedNeverPanicsOnPoisonCorpus(t *testing.T) {
	p := trainTestPipeline(t)
	for i, phrase := range quarantine.PoisonPhrases() {
		if rec, err := p.AnnotateIngredientChecked(phrase); err == nil && rec.Phrase != phrase {
			t.Fatalf("poison %d: record echoes %q", i, rec.Phrase)
		}
		if _, err := p.AnnotateInstructionChecked(phrase); err != nil {
			if quarantine.CodeOf(err) == "" {
				t.Fatalf("poison %d: untyped error %v", i, err)
			}
		}
	}
}

// TestContainedTaggerPanicIsTyped: a panic injected inside the
// annotate path comes back as a typed rejection, not a crash, and the
// pipeline keeps working afterwards.
func TestContainedTaggerPanicIsTyped(t *testing.T) {
	p := trainTestPipeline(t)
	defer faults.Enable(FaultRecord, faults.Fault{PanicMsg: "wedged tagger", Indices: []int{1}})()
	recs, rejs, err := p.AnnotateIngredientsPartial(context.Background(),
		[]string{"2 cups chopped onion", "1 tsp salt", "3 large eggs"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rejs) != 1 || rejs[0].Index != 1 || rejs[0].Code != quarantine.CodeRecordPanic {
		t.Fatalf("rejections = %+v", rejs)
	}
	if !strings.Contains(rejs[0].Detail, "wedged tagger") {
		t.Fatalf("detail = %q", rejs[0].Detail)
	}
	faults.Disable(FaultRecord)
	// the survivors are byte-identical to a clean run.
	clean, _, err := p.AnnotateIngredientsPartial(context.Background(),
		[]string{"2 cups chopped onion", "1 tsp salt", "3 large eggs"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs[0], clean[0]) || !reflect.DeepEqual(recs[2], clean[2]) {
		t.Fatal("surviving records differ from clean run")
	}
}

// TestPartialMixedBatchAtAnyWorkerCount: the partial API's core
// promise — N-1 good records byte-identical to a clean run, rejections
// index-ordered and typed — at worker counts 1 and 4.
func TestPartialMixedBatchAtAnyWorkerCount(t *testing.T) {
	p := trainTestPipeline(t)
	phrases := []string{
		"2 cups chopped onion",
		"", // poison: empty
		"1 tsp salt",
		strings.Repeat("a ", 30_000), // poison: token bomb
		"3 large eggs",
	}
	cleanIdx := []int{0, 2, 4}
	want := make(map[int]IngredientRecord)
	for _, i := range cleanIdx {
		want[i] = p.AnnotateIngredient(phrases[i])
	}
	for _, workers := range []int{1, 4} {
		recs, rejs, err := p.AnnotateIngredientsPartial(context.Background(), phrases, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(recs) != len(phrases) {
			t.Fatalf("workers=%d: %d slots", workers, len(recs))
		}
		if len(rejs) != 2 || rejs[0].Index != 1 || rejs[1].Index != 3 {
			t.Fatalf("workers=%d: rejections = %+v", workers, rejs)
		}
		if rejs[0].Code != quarantine.CodeEmptyAfterClean || rejs[1].Code != quarantine.CodeTooManyTokens {
			t.Fatalf("workers=%d: codes = %s/%s", workers, rejs[0].Code, rejs[1].Code)
		}
		for _, i := range cleanIdx {
			if !reflect.DeepEqual(recs[i], want[i]) {
				t.Fatalf("workers=%d: record %d differs from serial clean run", workers, i)
			}
		}
	}
}

// TestInstructionsPartialContainsParserStage: instruction annotation
// has two guarded stages; poison inputs reject typed, clean steps
// annotate identically to the legacy API.
func TestInstructionsPartialContainsParserStage(t *testing.T) {
	p := trainTestPipeline(t)
	steps := []string{
		"Bring the water to a boil in a large pot.",
		"\ufeff\u200b", // poison: invisibles only
		"Mix the flour and sugar in a bowl.",
	}
	anns, rejs, err := p.AnnotateInstructionsPartial(context.Background(), steps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rejs) != 1 || rejs[0].Index != 1 || rejs[0].Code != quarantine.CodeEmptyAfterClean {
		t.Fatalf("rejections = %+v", rejs)
	}
	spans, tree, rels := p.AnnotateInstruction(steps[0])
	if !reflect.DeepEqual(anns[0].Spans, spans) || !reflect.DeepEqual(anns[0].Tree, tree) || !reflect.DeepEqual(anns[0].Relations, rels) {
		t.Fatal("partial annotation differs from legacy API on a clean step")
	}
}

// TestModelRecipesPartialPoisonRecipe: an index-targeted panic inside
// recipe mining costs exactly that recipe; survivors match the clean
// run and Processed covers the full batch.
func TestModelRecipesPartialPoisonRecipe(t *testing.T) {
	p := trainTestPipeline(t)
	inputs := []RecipeInput{
		{Title: "Soup", IngredientLines: []string{"2 cups water"}, Instructions: "Boil the water."},
		{Title: "Cake", IngredientLines: []string{"1 cup sugar"}, Instructions: "Mix the sugar."},
		{Title: "Salad", IngredientLines: []string{"1 cup lettuce"}, Instructions: "Chop the lettuce."},
	}
	clean, rejs, err := p.ModelRecipesPartial(context.Background(), inputs, 2)
	if err != nil || len(rejs) != 0 {
		t.Fatalf("clean run: %v, %+v", err, rejs)
	}
	defer faults.Enable(FaultRecord, faults.Fault{PanicMsg: "poison recipe", Indices: []int{1}})()
	models, rejs, err := p.ModelRecipesPartial(context.Background(), inputs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rejs) != 1 || rejs[0].Index != 1 || rejs[0].Phrase != "Cake" {
		t.Fatalf("rejections = %+v", rejs)
	}
	if models[1] != nil {
		t.Fatal("poisoned slot holds a model")
	}
	if !reflect.DeepEqual(models[0], clean[0]) || !reflect.DeepEqual(models[2], clean[2]) {
		t.Fatal("surviving models differ from clean run")
	}
	if n := Processed(models, rejs); n != 3 {
		t.Fatalf("Processed = %d, want 3", n)
	}
}

// TestProcessedStopsAtUndispatchedSlot: the resume arithmetic under
// cancellation — a nil slot with no rejection ends the prefix.
func TestProcessedStopsAtUndispatchedSlot(t *testing.T) {
	m := &RecipeModel{}
	models := []*RecipeModel{m, nil, nil, m}
	rejs := []quarantine.Rejection{{Index: 1, Code: quarantine.CodeRecordPanic}}
	if n := Processed(models, rejs); n != 2 {
		t.Fatalf("Processed = %d, want 2 (slot 2 undispatched)", n)
	}
	if n := Processed(nil, nil); n != 0 {
		t.Fatalf("Processed(empty) = %d", n)
	}
}
