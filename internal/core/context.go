// Context-aware batch pipeline APIs. These are the cancellable twins
// of the batch methods in core.go: an uncancelled call is
// byte-identical to the plain method at any worker count (the pool
// dispatches in index order, result i lands in slot i), and a
// cancelled call stops dispatching, drains its workers, and returns
// the partial results with ctx.Err().

package core

import (
	"context"
	"strings"

	"recipemodel/internal/faults"
	"recipemodel/internal/parallel"
	"recipemodel/internal/relations"
	"recipemodel/internal/tokenize"
)

// Named fault points planted in the pipeline hot paths (see
// internal/faults). Disabled they cost one atomic load; armed they let
// tests inject latency, panics, or call-count-exact callbacks to prove
// cancellation, containment, and shedding without sleeps.
const (
	// FaultAnnotate fires at the top of every AnnotateIngredient call.
	FaultAnnotate = "core.annotate"
	// FaultInstruction fires at the top of every AnnotateInstruction call.
	FaultInstruction = "core.instruction"
	// FaultModel fires at the top of every ModelRecipe call.
	FaultModel = "core.model"
)

var (
	_ = faults.MustRegister(FaultAnnotate)
	_ = faults.MustRegister(FaultInstruction)
	_ = faults.MustRegister(FaultModel)
)

// AnnotateIngredientsContext is AnnotateIngredients with cooperative
// cancellation: on ctx cancellation no new phrase is dispatched,
// in-flight phrases finish, and the partial records are returned with
// ctx.Err(). Undispatched slots hold zero records.
func (p *Pipeline) AnnotateIngredientsContext(ctx context.Context, phrases []string, workers int) ([]IngredientRecord, error) {
	return parallel.MapOrderedCtx(ctx, workers, phrases, func(_ int, phrase string) IngredientRecord {
		return p.AnnotateIngredient(phrase)
	})
}

// AnnotateInstructionsContext is the cancellable form of
// AnnotateInstructions.
func (p *Pipeline) AnnotateInstructionsContext(ctx context.Context, steps []string, workers int) ([]InstructionAnnotation, error) {
	return parallel.MapOrderedCtx(ctx, workers, steps, func(_ int, step string) InstructionAnnotation {
		spans, tree, rels := p.AnnotateInstruction(step)
		return InstructionAnnotation{Step: step, Spans: spans, Tree: tree, Relations: rels}
	})
}

// ModelRecipesContext is the cancellable form of ModelRecipes: one
// recipe per pool slot, dispatch stops on cancellation, mined prefixes
// are returned with ctx.Err().
func (p *Pipeline) ModelRecipesContext(ctx context.Context, recipes []RecipeInput, workers int) ([]*RecipeModel, error) {
	return parallel.MapOrderedCtx(ctx, workers, recipes, func(_ int, r RecipeInput) *RecipeModel {
		// Pool contract: cancellation gates dispatch, never a record
		// mid-mine — in-flight recipes finish whole, so the worker
		// deliberately calls the non-ctx ModelRecipe.
		return p.ModelRecipe(r.Title, r.Cuisine, r.IngredientLines, r.Instructions) //recipelint:allow ctxflow in-flight records finish whole; cancellation stops dispatch, not a record mid-mine
	})
}

// ModelRecipeContext mines one recipe, checking ctx between ingredient
// lines and between instruction steps so a request deadline can stop a
// pathological recipe mid-way. On cancellation it returns the partial
// model together with ctx.Err(); the completed portions are identical
// to what ModelRecipe produces.
func (p *Pipeline) ModelRecipeContext(ctx context.Context, title, cuisine string, ingredientLines []string, instructionText string) (*RecipeModel, error) {
	_ = faults.InjectContext(ctx, FaultModel)
	m := &RecipeModel{Title: title, Cuisine: cuisine}
	for _, line := range ingredientLines {
		if err := ctx.Err(); err != nil {
			return m, err
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		m.Ingredients = append(m.Ingredients, p.AnnotateIngredient(line))
	}
	steps := tokenize.SplitSentences(instructionText)
	var perStep [][]relations.Relation
	for _, step := range steps {
		if err := ctx.Err(); err != nil {
			m.Events = relations.Chain(perStep)
			return m, err
		}
		m.Instructions = append(m.Instructions, step)
		_, _, rels := p.AnnotateInstruction(step)
		perStep = append(perStep, rels)
	}
	m.Events = relations.Chain(perStep)
	return m, ctx.Err()
}
