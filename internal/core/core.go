// Package core assembles the paper's full recipe-modeling pipeline
// (Fig 1): knowledge mining from the ingredients section (§II) and
// from the instructions section (§III), producing a uniform, computable
// RecipeModel — ingredient records with seven attributes, plus the
// temporal chain of many-to-many cooking events.
package core

import (
	"context"
	"strings"

	"recipemodel/internal/depparse"
	"recipemodel/internal/faults"
	"recipemodel/internal/gazetteer"
	"recipemodel/internal/lemma"
	"recipemodel/internal/ner"
	"recipemodel/internal/parallel"
	"recipemodel/internal/postag"
	"recipemodel/internal/relations"
	"recipemodel/internal/tokenize"
)

// IngredientRecord is one row of the paper's Table I: an ingredient
// phrase decomposed into its attributes.
type IngredientRecord struct {
	Phrase   string // the original phrase
	Name     string
	State    string
	Quantity string
	Unit     string
	Temp     string
	DryFresh string
	Size     string
}

// Event is one cooking event in the temporal chain: a process applied
// to sets of ingredients and utensils at a given instruction step.
type Event = relations.Event

// RecipeModel is the proposed recipe data structure (Fig 1).
type RecipeModel struct {
	Title        string
	Cuisine      string
	Ingredients  []IngredientRecord
	Instructions []string
	// Events is the temporal sequence of many-to-many relations.
	Events []Event
}

// Pipeline bundles the trained components needed to model a recipe.
type Pipeline struct {
	POS            *postag.Tagger
	IngredientNER  *ner.Tagger
	InstructionNER *ner.Tagger
	Extractor      *relations.Extractor
	lem            *lemma.Lemmatizer
}

// NewPipeline wires trained taggers into a pipeline. Pass nil for pos
// to use the embedded default tagger and nil for extractor to use the
// static-gazetteer extractor.
func NewPipeline(pos *postag.Tagger, ingredientNER, instructionNER *ner.Tagger, ex *relations.Extractor) *Pipeline {
	if pos == nil {
		pos = postag.Default()
	}
	if ex == nil {
		ex = relations.NewDefaultExtractor()
	}
	return &Pipeline{
		POS:            pos,
		IngredientNER:  ingredientNER,
		InstructionNER: instructionNER,
		Extractor:      ex,
		lem:            lemma.New(),
	}
}

// AnnotateIngredient runs the ingredient-section NER over one phrase
// and assembles the attribute record (Table I). Input is hardened
// first (see Sanitize); a rejected or panicking record degrades to a
// well-formed empty record that echoes the phrase — this method never
// panics on poison input. Callers that need the typed rejection use
// AnnotateIngredientChecked.
func (p *Pipeline) AnnotateIngredient(phrase string) IngredientRecord {
	rec, _ := p.AnnotateIngredientChecked(phrase)
	return rec
}

// RecordFromSpans assembles an IngredientRecord from entity spans;
// exported so gold annotations can be rendered identically.
func RecordFromSpans(phrase string, tokens []string, spans []ner.Span, lem *lemma.Lemmatizer) IngredientRecord {
	if lem == nil {
		lem = lemma.New()
	}
	rec := IngredientRecord{Phrase: phrase}
	set := func(dst *string, v string) {
		if *dst == "" {
			*dst = v
		} else {
			*dst += " " + v
		}
	}
	for _, s := range spans {
		surface := strings.ToLower(strings.Join(tokens[s.Start:s.End], " "))
		switch s.Type {
		case ner.Name:
			// canonicalize: lemmatize the head noun ("tomatoes"→"tomato").
			ws := strings.Fields(surface)
			ws[len(ws)-1] = lem.Lemma(ws[len(ws)-1], lemma.Noun)
			set(&rec.Name, strings.Join(ws, " "))
		case ner.State:
			set(&rec.State, surface)
		case ner.Quantity:
			set(&rec.Quantity, surface)
		case ner.Unit:
			set(&rec.Unit, surface)
		case ner.Temp:
			set(&rec.Temp, surface)
		case ner.DryFresh:
			set(&rec.DryFresh, surface)
		case ner.Size:
			set(&rec.Size, surface)
		}
	}
	return rec
}

// AnnotateInstruction runs the instruction-section stack over one
// step: NER entities, dependency parse, relation extraction. Like
// AnnotateIngredient it hardens its input and contains per-record
// panics: poison steps produce an empty annotation (nil spans, empty
// parse, nil relations), never a panic. AnnotateInstructionChecked
// surfaces the typed rejection.
func (p *Pipeline) AnnotateInstruction(step string) ([]ner.Span, *depparse.Tree, []relations.Relation) {
	ann, err := p.AnnotateInstructionChecked(step)
	if err != nil || ann.Tree == nil {
		return nil, depparse.Parse(nil, nil), nil
	}
	return ann.Spans, ann.Tree, ann.Relations
}

// ModelRecipe runs the full pipeline over a raw recipe: ingredient
// lines and instruction text (steps split on sentence boundaries).
func (p *Pipeline) ModelRecipe(title, cuisine string, ingredientLines []string, instructionText string) *RecipeModel {
	_ = faults.Inject(FaultModel)
	m := &RecipeModel{Title: title, Cuisine: cuisine}
	for _, line := range ingredientLines {
		if strings.TrimSpace(line) == "" {
			continue
		}
		m.Ingredients = append(m.Ingredients, p.AnnotateIngredient(line))
	}
	steps := tokenize.SplitSentences(instructionText)
	var perStep [][]relations.Relation
	for _, step := range steps {
		m.Instructions = append(m.Instructions, step)
		_, _, rels := p.AnnotateInstruction(step)
		perStep = append(perStep, rels)
	}
	m.Events = relations.Chain(perStep)
	return m
}

// InstructionAnnotation bundles the full instruction-stack output for
// one step, the batch-API counterpart of AnnotateInstruction's triple
// return.
type InstructionAnnotation struct {
	Step      string
	Spans     []ner.Span
	Tree      *depparse.Tree
	Relations []relations.Relation
}

// RecipeInput is one raw recipe as a website would present it — the
// unit of work of the batch mining engine.
type RecipeInput struct {
	Title           string
	Cuisine         string
	IngredientLines []string
	Instructions    string
}

// All pipeline components are read-only after construction (the CRF
// and perceptron weight maps are only written during training, the
// lemmatizer and gazetteers are static tables), so one Pipeline may
// serve any number of goroutines. The batch methods below exploit
// that: they fan pure per-item annotation out over a bounded worker
// pool with ordered result collection, making batch output
// byte-identical to a serial loop at any worker count.

// AnnotateIngredients decomposes a batch of ingredient phrases on up
// to workers goroutines (<= 0: all CPUs). Result i corresponds to
// phrases[i] and is identical to AnnotateIngredient(phrases[i]).
func (p *Pipeline) AnnotateIngredients(phrases []string, workers int) []IngredientRecord {
	out, _ := p.AnnotateIngredientsContext(context.Background(), phrases, workers) //recipelint:allow ctxflow documented non-ctx wrapper shim over the Context API
	return out
}

// AnnotateInstructions runs the instruction stack over a batch of
// steps on up to workers goroutines (<= 0: all CPUs).
func (p *Pipeline) AnnotateInstructions(steps []string, workers int) []InstructionAnnotation {
	out, _ := p.AnnotateInstructionsContext(context.Background(), steps, workers) //recipelint:allow ctxflow documented non-ctx wrapper shim over the Context API
	return out
}

// ModelRecipes mines a corpus of raw recipes into recipe models, one
// recipe per pool slot. Result i corresponds to recipes[i].
func (p *Pipeline) ModelRecipes(recipes []RecipeInput, workers int) []*RecipeModel {
	out, _ := p.ModelRecipesContext(context.Background(), recipes, workers) //recipelint:allow ctxflow documented non-ctx wrapper shim over the Context API
	return out
}

// BuildDictionaries runs the instruction NER over a corpus of steps
// and builds the frequency-thresholded technique and utensil
// dictionaries of §III.A (thresholds 47 and 10). It returns the two
// lexicons and the raw frequency tables. The per-step predictions fan
// out over every CPU (pure); the frequency counting stays serial in
// step order, so the dictionaries are identical to a serial pass.
func BuildDictionaries(tagger *ner.Tagger, steps [][]string, techniqueThreshold, utensilThreshold int) (tech, uten *gazetteer.Lexicon, techFreq, utenFreq *gazetteer.FrequencyDictionary) {
	techFreq = gazetteer.NewFrequencyDictionary()
	utenFreq = gazetteer.NewFrequencyDictionary()
	preds := parallel.MapOrdered(0, steps, func(_ int, tokens []string) []ner.Span {
		return tagger.Predict(tokens)
	})
	for i, tokens := range steps {
		for _, s := range preds[i] {
			surface := strings.ToLower(strings.Join(tokens[s.Start:s.End], " "))
			switch s.Type {
			case ner.Process:
				techFreq.Observe(surface)
			case ner.Utensil:
				utenFreq.Observe(surface)
			}
		}
	}
	return techFreq.Filter(techniqueThreshold), utenFreq.Filter(utensilThreshold), techFreq, utenFreq
}

// Preprocess applies the paper's §II.C normalization to a phrase:
// tokenize, drop stop words, lemmatize, lower-case. It returns the
// normalized token slice. The NER taggers consume raw tokens (their
// features normalize internally); Preprocess is used by the clustering
// stage and exposed for the ablation benches.
func Preprocess(phrase string) []string {
	toks := tokenize.Tokenize(phrase)
	lem := sharedLemmatizer
	stop := stopSet
	var out []string
	for _, t := range toks {
		if t.Kind == tokenize.Punct || t.Kind == tokenize.Open || t.Kind == tokenize.Close {
			continue
		}
		w := tokenize.Normalize(t.Text)
		if stop.Contains(w) {
			continue
		}
		out = append(out, lem.LemmaAuto(w))
	}
	return out
}
