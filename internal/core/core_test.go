package core

import (
	"math/rand"
	"strings"
	"testing"

	"recipemodel/internal/corpus"
	"recipemodel/internal/gazetteer"
	"recipemodel/internal/ner"
	"recipemodel/internal/recipedb"
)

// trainTestPipeline builds a small but functional pipeline for tests.
func trainTestPipeline(t testing.TB) *Pipeline {
	t.Helper()
	g := recipedb.NewGenerator(recipedb.SourceAllRecipes, 1)
	ingTrain := corpus.IngredientSentences(g.UniquePhrases(600))
	insTrain := corpus.InstructionSentences(g.Instructions(400))
	ingNER := ner.Train(ingTrain, ner.IngredientTypes,
		ner.NewIngredientExtractor(ner.DefaultFeatureOptions),
		ner.TrainConfig{Epochs: 5, Seed: 2})
	insNER := ner.Train(insTrain, ner.InstructionTypes,
		ner.NewInstructionExtractor(ner.DefaultFeatureOptions),
		ner.TrainConfig{Epochs: 5, Seed: 3})
	return NewPipeline(nil, ingNER, insNER, nil)
}

func TestAnnotateIngredient(t *testing.T) {
	p := trainTestPipeline(t)
	rec := p.AnnotateIngredient("2 cups chopped onion")
	if rec.Quantity != "2" || rec.Unit != "cups" || rec.State != "chopped" || rec.Name != "onion" {
		t.Fatalf("record = %+v", rec)
	}
}

func TestAnnotateIngredientLemmatizesName(t *testing.T) {
	p := trainTestPipeline(t)
	rec := p.AnnotateIngredient("2-3 medium tomatoes")
	if rec.Name != "tomato" {
		t.Fatalf("name = %q, want lemmatized 'tomato'", rec.Name)
	}
	if rec.Size != "medium" || rec.Quantity != "2-3" {
		t.Fatalf("record = %+v", rec)
	}
}

func TestAnnotateInstruction(t *testing.T) {
	p := trainTestPipeline(t)
	spans, tree, rels := p.AnnotateInstruction("Bring the water to a boil in a large pot.")
	if len(spans) == 0 {
		t.Fatal("no entities")
	}
	if tree.RootIndex() < 0 {
		t.Fatal("no parse root")
	}
	if len(rels) == 0 {
		t.Fatal("no relations")
	}
	found := false
	for _, r := range rels {
		if r.Process == "bring" {
			found = true
			if len(r.Ingredients) == 0 {
				t.Fatalf("bring without ingredient: %v", r)
			}
		}
	}
	if !found {
		t.Fatalf("bring relation missing: %v", rels)
	}
}

func TestModelRecipeEndToEnd(t *testing.T) {
	p := trainTestPipeline(t)
	m := p.ModelRecipe("Tomato Tart", "French",
		[]string{
			"1 sheet frozen puff pastry (thawed)",
			"2-3 medium tomatoes",
			"1/2 teaspoon pepper, freshly ground",
			"",
		},
		"Preheat the oven to 375 ° F. Add the tomatoes to the skillet. Cook for 10 minutes.")
	if m.Title != "Tomato Tart" || m.Cuisine != "French" {
		t.Fatal("metadata lost")
	}
	if len(m.Ingredients) != 3 {
		t.Fatalf("ingredients = %d", len(m.Ingredients))
	}
	if len(m.Instructions) != 3 {
		t.Fatalf("instructions = %d: %v", len(m.Instructions), m.Instructions)
	}
	if len(m.Events) == 0 {
		t.Fatal("no events extracted")
	}
	// events must be temporally ordered by step.
	for i := 1; i < len(m.Events); i++ {
		if m.Events[i].Step < m.Events[i-1].Step {
			t.Fatal("events out of temporal order")
		}
	}
}

func TestRecordFromSpansMultipleValues(t *testing.T) {
	tokens := strings.Fields("1 cup onion , chopped and drained")
	spans := []ner.Span{
		{Start: 0, End: 1, Type: ner.Quantity},
		{Start: 1, End: 2, Type: ner.Unit},
		{Start: 2, End: 3, Type: ner.Name},
		{Start: 4, End: 5, Type: ner.State},
		{Start: 6, End: 7, Type: ner.State},
	}
	rec := RecordFromSpans("1 cup onion, chopped and drained", tokens, spans, nil)
	if rec.State != "chopped drained" {
		t.Fatalf("states should concatenate: %q", rec.State)
	}
}

func TestBuildDictionaries(t *testing.T) {
	p := trainTestPipeline(t)
	g := recipedb.NewGenerator(recipedb.SourceAllRecipes, 9)
	var steps [][]string
	for _, in := range g.Instructions(600) {
		steps = append(steps, in.Tokens)
	}
	tech, uten, techFreq, _ := BuildDictionaries(p.InstructionNER, steps,
		gazetteer.TechniqueThreshold, gazetteer.UtensilThreshold)
	if tech.Len() == 0 {
		t.Fatal("technique dictionary empty at threshold 47")
	}
	if uten.Len() == 0 {
		t.Fatal("utensil dictionary empty at threshold 10")
	}
	// high-frequency staples must survive the threshold.
	if !tech.Contains("add") && !tech.Contains("cook") && !tech.Contains("preheat") {
		t.Fatalf("staple techniques missing: %v", tech.Terms())
	}
	if techFreq.Count("add") == 0 && techFreq.Count("cook") == 0 {
		t.Fatal("frequency table empty for staples")
	}
}

func TestPreprocess(t *testing.T) {
	got := Preprocess("2 Tomatoes, finely chopped (optional)")
	joined := strings.Join(got, " ")
	if strings.Contains(joined, "(") || strings.Contains(joined, ",") {
		t.Fatalf("punctuation survived: %v", got)
	}
	if !strings.Contains(joined, "tomato") {
		t.Fatalf("lemmatization failed: %v", got)
	}
	for _, w := range got {
		if w != strings.ToLower(w) {
			t.Fatalf("case folding failed: %v", got)
		}
	}
}

func TestSamplerStratifiedSplit(t *testing.T) {
	g := recipedb.NewGenerator(recipedb.SourceAllRecipes, 21)
	ps := g.UniquePhrases(800)
	texts := make([]string, len(ps))
	for i, p := range ps {
		texts[i] = p.Text
	}
	rng := rand.New(rand.NewSource(5))
	s, err := NewSampler(texts, nil, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	train, test := s.TrainTestSplit(0.10, 0.033, rng)
	if len(train) == 0 || len(test) == 0 {
		t.Fatal("empty split")
	}
	// disjoint
	inTrain := map[int]bool{}
	for _, i := range train {
		inTrain[i] = true
	}
	for _, i := range test {
		if inTrain[i] {
			t.Fatal("train/test overlap")
		}
	}
	// roughly proportional
	if len(train) < 40 || len(train) > 160 {
		t.Fatalf("train size %d far from 10%% of 800", len(train))
	}
}

func TestSamplerErrorOnTinyCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := NewSampler([]string{"1 cup sugar"}, nil, 5, rng); err == nil {
		t.Fatal("expected error for fewer phrases than clusters")
	}
}

func TestPaperClusterK(t *testing.T) {
	if PaperClusterK != 23 {
		t.Fatal("the paper's cluster count is 23")
	}
}

func TestScaleRecipe(t *testing.T) {
	m := &RecipeModel{Ingredients: []IngredientRecord{
		{Name: "flour", Quantity: "1 1/2", Unit: "cups"},
		{Name: "tomato", Quantity: "2-4"},
		{Name: "salt", Quantity: ""},
		{Name: "mystery", Quantity: "a splash"},
	}}
	doubled := ScaleRecipe(m, 2, 1)
	if got := doubled.Ingredients[0].Quantity; got != "3" {
		t.Fatalf("1 1/2 × 2 = %q", got)
	}
	if got := doubled.Ingredients[1].Quantity; got != "4-8" {
		t.Fatalf("2-4 × 2 = %q", got)
	}
	if doubled.Ingredients[2].Quantity != "" || doubled.Ingredients[3].Quantity != "a splash" {
		t.Fatal("unparseable quantities must be preserved")
	}
	// original untouched
	if m.Ingredients[0].Quantity != "1 1/2" {
		t.Fatal("ScaleRecipe mutated its input")
	}
	halved := ScaleRecipe(m, 1, 2)
	if got := halved.Ingredients[0].Quantity; got != "3/4" {
		t.Fatalf("1 1/2 ÷ 2 = %q", got)
	}
	if ScaleRecipe(nil, 2, 1) != nil {
		t.Fatal("nil input")
	}
	if ScaleRecipe(m, 1, 0) != m {
		t.Fatal("zero denominator should be a no-op")
	}
}

func TestRecipeModelString(t *testing.T) {
	p := trainTestPipeline(t)
	m := p.ModelRecipe("Tart", "French",
		[]string{"2-3 medium tomatoes", "1/2 teaspoon pepper, freshly ground"},
		"Preheat the oven to 400 ° F. Bake for 30 minutes.")
	s := m.String()
	for _, want := range []string{"Recipe: Tart (French)", "Ingredients", "temporal event chain", "tomato", "step 1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
}

func TestCanonicalUnit(t *testing.T) {
	cases := map[string]string{
		"cups":        "cup",
		"Cup":         "cup",
		"tbsp":        "tablespoon",
		"tbsp.":       "tablespoon",
		"tsps":        "teaspoon",
		"oz":          "ounce",
		"ounces":      "ounce",
		"lbs":         "pound",
		"pinches":     "pinch",
		"loaves":      "loaf",
		"packages":    "package",
		"pkg":         "package",
		"sprigs":      "sprig",
		"":            "",
		"glass":       "glass",
		"unknownunit": "unknownunit",
	}
	for in, want := range cases {
		if got := CanonicalUnit(in); got != want {
			t.Errorf("CanonicalUnit(%q) = %q, want %q", in, got, want)
		}
	}
	r := IngredientRecord{Unit: "Tablespoons"}
	if r.CanonicalUnit() != "tablespoon" {
		t.Fatalf("record canonical unit = %q", r.CanonicalUnit())
	}
}
