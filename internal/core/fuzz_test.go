package core

import (
	"testing"

	"recipemodel/internal/quarantine"
)

// The fuzz targets drive arbitrary bytes through the full annotate
// path — sanitizer, tokenizer, tagger, parser — end to end on a real
// trained pipeline. The only contract is "never panic, never return an
// untyped error": every rejection must carry a taxonomy code so the
// mining and serving layers can quarantine it.

func FuzzAnnotateIngredient(f *testing.F) {
	p := trainTestPipeline(f)
	f.Add("2 cups chopped onion")
	for _, s := range quarantine.PoisonPhrases() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, phrase string) {
		rec, err := p.AnnotateIngredientChecked(phrase)
		if err != nil {
			if quarantine.CodeOf(err) == "" {
				t.Fatalf("untyped rejection for %.60q: %v", phrase, err)
			}
			return
		}
		if rec.Phrase != phrase {
			t.Fatalf("accepted record does not echo its phrase: %.60q", rec.Phrase)
		}
	})
}

func FuzzAnnotateInstruction(f *testing.F) {
	p := trainTestPipeline(f)
	f.Add("Bring the water to a boil in a large pot.")
	for _, s := range quarantine.PoisonPhrases() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, step string) {
		if _, err := p.AnnotateInstructionChecked(step); err != nil {
			if quarantine.CodeOf(err) == "" {
				t.Fatalf("untyped rejection for %.60q: %v", step, err)
			}
		}
	})
}
