// Partial-result batch APIs: the containment-aware twins of the batch
// methods. Each record is processed under a per-record recover inside
// the worker function — the pool's ordering and cancellation
// contracts are untouched — and poison records come back as typed
// quarantine rejections alongside the N-1 good results, which are
// byte-identical to the same records in a clean run.

package core

import (
	"context"

	"recipemodel/internal/faults"
	"recipemodel/internal/parallel"
	"recipemodel/internal/quarantine"
)

// FaultRecord is the index-aware fault point at the top of every
// batch-record worker call. The chaos drills arm it with
// Fault{Indices: []int{i}, PanicMsg: ...} to make exactly record i
// panic at any worker count; the per-record containment converts the
// panic into a quarantine rejection.
const FaultRecord = "core.record"

var _ = faults.MustRegister(FaultRecord)

// outcome is one worker-slot result: the value, a typed rejection, and
// a dispatch marker distinguishing "processed" from "cancelled before
// dispatch" (whose slot stays the zero outcome).
type outcome[R any] struct {
	res  R
	err  error
	done bool
}

// contained runs one record's work with full containment: the indexed
// fault point fires first (inside the recover, so injected panics are
// contained like organic ones), then fn.
func contained[R any](i int, fallback quarantine.Code, fn func() (R, error)) (o outcome[R]) {
	o.done = true
	defer func() {
		if r := recover(); r != nil {
			o.err = panicError(r, fallback)
		}
	}()
	if err := faults.InjectIndexed(FaultRecord, i); err != nil {
		o.err = panicError(err, fallback)
		return o
	}
	o.res, o.err = fn()
	return o
}

// collect splits per-slot outcomes into the aligned result slice and
// the rejection list (index-ordered). Rejected and undispatched slots
// hold zero values; callers distinguish them by the rejection list —
// and, under cancellation, by the pool's contiguous-prefix guarantee:
// every slot before the first undispatched one is either a result or
// a rejection.
func collect[R any](outs []outcome[R], echo func(i int) string) ([]R, []quarantine.Rejection) {
	res := make([]R, len(outs))
	var rejs []quarantine.Rejection
	for i, o := range outs {
		switch {
		case !o.done:
		case o.err != nil:
			rejs = append(rejs, quarantine.Reject(i, echo(i), o.err))
		default:
			res[i] = o.res
		}
	}
	return res, rejs
}

// AnnotateIngredientsPartial is AnnotateIngredientsContext with
// record-level containment: record i of the result corresponds to
// phrases[i] and is byte-identical to a clean AnnotateIngredient call;
// poison phrases appear in the rejection list (typed, index-ordered)
// instead of aborting the batch. The error is ctx.Err() when the run
// was cancelled, nil otherwise — rejections alone never produce an
// error.
func (p *Pipeline) AnnotateIngredientsPartial(ctx context.Context, phrases []string, workers int) ([]IngredientRecord, []quarantine.Rejection, error) {
	outs, err := parallel.MapOrderedCtx(ctx, workers, phrases, func(i int, phrase string) outcome[IngredientRecord] {
		return contained(i, quarantine.CodeRecordPanic, func() (IngredientRecord, error) {
			return p.AnnotateIngredientChecked(phrase)
		})
	})
	recs, rejs := collect(outs, func(i int) string { return phrases[i] })
	return recs, rejs, err
}

// AnnotateInstructionsPartial is the containment-aware form of
// AnnotateInstructionsContext (same contract as
// AnnotateIngredientsPartial).
func (p *Pipeline) AnnotateInstructionsPartial(ctx context.Context, steps []string, workers int) ([]InstructionAnnotation, []quarantine.Rejection, error) {
	outs, err := parallel.MapOrderedCtx(ctx, workers, steps, func(i int, step string) outcome[InstructionAnnotation] {
		return contained(i, quarantine.CodeRecordPanic, func() (InstructionAnnotation, error) {
			return p.AnnotateInstructionChecked(step)
		})
	})
	anns, rejs := collect(outs, func(i int) string { return steps[i] })
	return anns, rejs, err
}

// ModelRecipesPartial is the containment-aware form of
// ModelRecipesContext: one recipe per pool slot, a poison recipe
// yields a nil slot plus a typed rejection (echoing the recipe title),
// and the surviving models are byte-identical to the same recipes in
// a clean run. Under cancellation the processed slots form a
// contiguous prefix and ctx.Err() is returned.
func (p *Pipeline) ModelRecipesPartial(ctx context.Context, recipes []RecipeInput, workers int) ([]*RecipeModel, []quarantine.Rejection, error) {
	outs, err := parallel.MapOrderedCtx(ctx, workers, recipes, func(i int, r RecipeInput) outcome[*RecipeModel] {
		return contained(i, quarantine.CodeRecordPanic, func() (*RecipeModel, error) {
			return p.ModelRecipe(r.Title, r.Cuisine, r.IngredientLines, r.Instructions), nil //recipelint:allow ctxflow in-flight records finish whole; cancellation stops dispatch, not a record mid-mine
		})
	})
	models, rejs := collect(outs, func(i int) string { return recipes[i].Title })
	return models, rejs, err
}

// Processed reports how many leading slots of a partial run were
// dispatched: for models, the contiguous prefix where each slot is
// either a mined model or a rejection. The durable miner uses it to
// advance its checkpoint under cancellation without counting
// undispatched slots.
func Processed(models []*RecipeModel, rejs []quarantine.Rejection) int {
	rejected := make(map[int]bool, len(rejs))
	for _, r := range rejs {
		rejected[r.Index] = true
	}
	n := 0
	for i, m := range models {
		if m == nil && !rejected[i] {
			break
		}
		n++
	}
	return n
}
