package core

import (
	"fmt"
	"strings"
)

// String renders the model as the paper's Fig 1 structure: the recipe
// decomposed into its ingredient records and its temporal chain of
// many-to-many events.
func (m *RecipeModel) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Recipe: %s", m.Title)
	if m.Cuisine != "" {
		fmt.Fprintf(&b, " (%s)", m.Cuisine)
	}
	b.WriteString("\n├── Ingredients\n")
	for i, r := range m.Ingredients {
		branch := "│   ├──"
		if i == len(m.Ingredients)-1 {
			branch = "│   └──"
		}
		fmt.Fprintf(&b, "%s %s", branch, orDash(r.Name))
		var attrs []string
		for _, k := range [...]struct{ label, v string }{
			{"qty", r.Quantity}, {"unit", r.Unit}, {"state", r.State},
			{"temp", r.Temp}, {"dry/fresh", r.DryFresh}, {"size", r.Size},
		} {
			if k.v != "" {
				attrs = append(attrs, k.label+"="+k.v)
			}
		}
		if len(attrs) > 0 {
			fmt.Fprintf(&b, " [%s]", strings.Join(attrs, ", "))
		}
		b.WriteByte('\n')
	}
	b.WriteString("└── Instructions (temporal event chain)\n")
	for i, e := range m.Events {
		branch := "    ├──"
		if i == len(m.Events)-1 {
			branch = "    └──"
		}
		fmt.Fprintf(&b, "%s step %d: %s\n", branch, e.Step+1, e.Relation)
	}
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "—"
	}
	return s
}
