package core

import (
	"math/rand"

	"recipemodel/internal/cluster"
	"recipemodel/internal/lemma"
	"recipemodel/internal/mathx"
	"recipemodel/internal/parallel"
	"recipemodel/internal/postag"
	"recipemodel/internal/stopwords"
)

// stopSet is the shared recipe-safe stop-word set.
var stopSet = stopwords.RecipeSafe()

// sharedLemmatizer is the package-wide lemmatizer instance (read-only
// after construction, safe for concurrent use).
var sharedLemmatizer = lemma.New()

// PaperClusterK is the cluster count the paper settles on via the
// elbow criterion (§II.E, Fig 2).
const PaperClusterK = 23

// Sampler implements the paper's training-set construction (§II.D-E):
// embed every unique ingredient phrase as a 1×36 POS-tag-frequency
// vector, K-Means-cluster the vectors, then draw a cluster-stratified
// sample for manual annotation.
type Sampler struct {
	Phrases []string
	Vectors []mathx.Vector
	Result  *cluster.Result
}

// NewSampler vectorizes the phrases with the tagger and fits K-Means
// with k clusters. Pass nil for pos to use the default tagger. It
// runs on every CPU; results are identical to a serial run (see
// NewSamplerWorkers).
func NewSampler(phrases []string, pos *postag.Tagger, k int, rng *rand.Rand) (*Sampler, error) {
	return NewSamplerWorkers(phrases, pos, k, 0, rng)
}

// NewSamplerWorkers is NewSampler with an explicit worker bound
// (<= 0: all CPUs, 1: serial). Phrase vectorization is pure per
// phrase and fans out over the pool; K-Means parallelizes its
// distance scans while keeping reductions and all RNG draws on the
// calling goroutine — so the clustering is byte-identical at any
// worker count.
func NewSamplerWorkers(phrases []string, pos *postag.Tagger, k, workers int, rng *rand.Rand) (*Sampler, error) {
	if pos == nil {
		pos = postag.Default()
	}
	s := &Sampler{Phrases: phrases}
	s.Vectors = make([]mathx.Vector, len(phrases))
	parallel.ForEachIndex(workers, len(phrases), func(i int) {
		s.Vectors[i] = pos.VectorizePhrase(Preprocess(phrases[i]))
	})
	res, err := cluster.KMeans(s.Vectors, cluster.Config{K: k, Restarts: 2, Workers: workers}, rng)
	if err != nil {
		return nil, err
	}
	s.Result = res
	return s, nil
}

// TrainTestSplit draws the paper's two disjoint cluster-stratified
// samples: trainFrac of each cluster for the training set, then
// testFrac of each cluster excluding the training phrases (§II.E:
// "specifically excluding the ingredient phrases in the training
// set"). It returns phrase indices.
func (s *Sampler) TrainTestSplit(trainFrac, testFrac float64, rng *rand.Rand) (train, test []int) {
	train = s.Result.StratifiedSample(trainFrac, nil, rng)
	exclude := make(map[int]bool, len(train))
	for _, i := range train {
		exclude[i] = true
	}
	test = s.Result.StratifiedSample(testFrac, exclude, rng)
	return train, test
}

// ElbowK sweeps K and returns the elbow-criterion choice over the
// sampler's vectors (used to justify PaperClusterK on fresh corpora).
func ElbowK(vectors []mathx.Vector, kMin, kMax int, rng *rand.Rand) (int, []float64, error) {
	return cluster.ElbowPoint(vectors, kMin, kMax, cluster.Config{Restarts: 2}, rng)
}
