// Input hardening: every phrase and instruction step passes through
// Sanitize before tokenization, in AnnotateIngredient and
// AnnotateInstruction alike, so the serving path and the mining path
// agree byte-for-byte on what a record means. Web corpora carry
// invalid UTF-8, invisible characters, decomposed diacritics, and
// megabyte "phrases"; the sanitizer repairs what is safely repairable
// and converts the rest into typed quarantine errors instead of
// letting it reach the taggers.

package core

import (
	"strings"
	"unicode"
	"unicode/utf8"

	"recipemodel/internal/quarantine"
)

// Default hardening caps. A real ingredient phrase is tens of bytes;
// the caps are three orders of magnitude above that, so they only ever
// trip on poison.
const (
	// DefaultMaxPhraseBytes caps a phrase/step before tokenization.
	DefaultMaxPhraseBytes = 64 << 10
	// DefaultMaxPhraseTokens caps the token count fed to the taggers
	// (CRF decoding is linear in tokens; a 100k-token "phrase" is a
	// denial of service, not an ingredient).
	DefaultMaxPhraseTokens = 512
)

// SanitizePolicy tunes input hardening. The zero value is the
// production default: replace invalid UTF-8, default caps.
type SanitizePolicy struct {
	// RejectInvalidUTF8 rejects malformed input with ErrInvalidUTF8
	// instead of repairing it with U+FFFD replacement runes.
	RejectInvalidUTF8 bool
	// MaxBytes overrides DefaultMaxPhraseBytes (<= 0: default).
	MaxBytes int
	// MaxTokens overrides DefaultMaxPhraseTokens (<= 0: default).
	MaxTokens int
}

// maxBytes resolves the byte cap.
func (p SanitizePolicy) maxBytes() int {
	if p.MaxBytes > 0 {
		return p.MaxBytes
	}
	return DefaultMaxPhraseBytes
}

// maxTokens resolves the token cap.
func (p SanitizePolicy) maxTokens() int {
	if p.MaxTokens > 0 {
		return p.MaxTokens
	}
	return DefaultMaxPhraseTokens
}

// nfcCompose maps (base letter, combining mark) pairs to their
// precomposed forms for the Latin letters recipe corpora actually
// contain (crème, jalapeño, früh…). The full NFC tables live in
// x/text, which the repository deliberately does not depend on; this
// subset covers the decomposed sequences observed in scraped recipe
// text, and unknown combinations pass through untouched.
var nfcCompose = map[[2]rune]rune{
	{'a', 0x0300}: 'à', {'a', 0x0301}: 'á', {'a', 0x0302}: 'â', {'a', 0x0303}: 'ã', {'a', 0x0308}: 'ä', {'a', 0x030A}: 'å',
	{'e', 0x0300}: 'è', {'e', 0x0301}: 'é', {'e', 0x0302}: 'ê', {'e', 0x0308}: 'ë',
	{'i', 0x0300}: 'ì', {'i', 0x0301}: 'í', {'i', 0x0302}: 'î', {'i', 0x0308}: 'ï',
	{'o', 0x0300}: 'ò', {'o', 0x0301}: 'ó', {'o', 0x0302}: 'ô', {'o', 0x0303}: 'õ', {'o', 0x0308}: 'ö',
	{'u', 0x0300}: 'ù', {'u', 0x0301}: 'ú', {'u', 0x0302}: 'û', {'u', 0x0308}: 'ü',
	{'n', 0x0303}: 'ñ', {'c', 0x0327}: 'ç', {'y', 0x0301}: 'ý', {'y', 0x0308}: 'ÿ',
	{'A', 0x0300}: 'À', {'A', 0x0301}: 'Á', {'A', 0x0302}: 'Â', {'A', 0x0303}: 'Ã', {'A', 0x0308}: 'Ä', {'A', 0x030A}: 'Å',
	{'E', 0x0300}: 'È', {'E', 0x0301}: 'É', {'E', 0x0302}: 'Ê', {'E', 0x0308}: 'Ë',
	{'I', 0x0300}: 'Ì', {'I', 0x0301}: 'Í', {'I', 0x0302}: 'Î', {'I', 0x0308}: 'Ï',
	{'O', 0x0300}: 'Ò', {'O', 0x0301}: 'Ó', {'O', 0x0302}: 'Ô', {'O', 0x0303}: 'Õ', {'O', 0x0308}: 'Ö',
	{'U', 0x0300}: 'Ù', {'U', 0x0301}: 'Ú', {'U', 0x0302}: 'Û', {'U', 0x0308}: 'Ü',
	{'N', 0x0303}: 'Ñ', {'C', 0x0327}: 'Ç',
}

// dropRune reports runes that carry no annotatable content and are
// deleted outright: BOM, zero-width space/joiner/non-joiner, and
// directional marks — the invisible-character soup of copy-pasted web
// text.
func dropRune(r rune) bool {
	switch r {
	case 0xFEFF, 0x200B, 0x200C, 0x200D, 0x200E, 0x200F, 0x2060:
		return true
	}
	return false
}

// spaceRune reports runes normalized to a plain space: non-breaking
// and typographic spaces, plus C0/C1 control characters (tab and
// newline included — a phrase is one logical line by the time it gets
// here).
func spaceRune(r rune) bool {
	if r == 0x00A0 || r == 0x202F || r == 0x205F || r == 0x3000 {
		return true
	}
	if unicode.Is(unicode.Zs, r) && r != ' ' {
		return true
	}
	return unicode.IsControl(r)
}

// CanonicalKey maps a raw phrase to its canonical cache-key bytes:
// the phrase as the default sanitization policy would hand it to the
// tokenizer. Byte-level variants of one phrase (NBSP vs space,
// decomposed diacritics, stray controls) collapse onto one key, which
// is what lets the serving cache share a decode across them while
// echoing each caller's raw Phrase untouched. The error is the same
// typed quarantine rejection Sanitize would produce — an unkeyable
// phrase is exactly a phrase the pipeline would quarantine.
func CanonicalKey(phrase string) (string, error) {
	return Sanitize(phrase, DefaultSanitize)
}

// Sanitize applies the hardening policy to one phrase: byte cap,
// UTF-8 validation (repair or reject), invisible-character removal,
// space normalization, and NFC-lite composition of decomposed Latin
// diacritics. It returns the cleaned phrase or a typed quarantine
// error; a clean ASCII phrase comes back unchanged (and unallocated).
func Sanitize(s string, pol SanitizePolicy) (string, error) {
	if len(s) > pol.maxBytes() {
		return "", quarantine.Errorf(quarantine.CodeTooLong,
			"phrase is %d bytes, cap %d", len(s), pol.maxBytes())
	}
	if !utf8.ValidString(s) {
		if pol.RejectInvalidUTF8 {
			return "", quarantine.ErrInvalidUTF8
		}
		s = strings.ToValidUTF8(s, "�")
	}
	// Fast path: printable ASCII needs no rewriting.
	clean := true
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] > 0x7E {
			clean = false
			break
		}
	}
	if !clean {
		var b strings.Builder
		b.Grow(len(s))
		runes := []rune(s)
		for i := 0; i < len(runes); i++ {
			r := runes[i]
			if i+1 < len(runes) {
				if comp, ok := nfcCompose[[2]rune{r, runes[i+1]}]; ok {
					b.WriteRune(comp)
					i++
					continue
				}
			}
			switch {
			case dropRune(r):
			case spaceRune(r):
				b.WriteByte(' ')
			default:
				b.WriteRune(r)
			}
		}
		s = b.String()
	}
	if strings.TrimSpace(s) == "" {
		return "", quarantine.ErrEmptyAfterClean
	}
	return s, nil
}

// checkTokens enforces the policy's token cap after tokenization and
// classifies a token-free phrase (punctuation soup survives Sanitize
// but tokenizes to nothing annotatable).
func checkTokens(tokens []string, pol SanitizePolicy) error {
	if len(tokens) == 0 {
		return quarantine.ErrEmptyAfterClean
	}
	if len(tokens) > pol.maxTokens() {
		return quarantine.Errorf(quarantine.CodeTooManyTokens,
			"phrase has %d tokens, cap %d", len(tokens), pol.maxTokens())
	}
	return nil
}
