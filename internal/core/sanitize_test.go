package core

import (
	"errors"
	"strings"
	"testing"

	"recipemodel/internal/quarantine"
)

// TestSanitizeCleanInputPassesThroughUnchanged: the golden-output
// invariant — clean phrases (the entire existing corpus) must come back
// byte-identical, or every determinism test in the repo would shift.
func TestSanitizeCleanInputPassesThroughUnchanged(t *testing.T) {
	for _, s := range []string{
		"2 cups chopped onion",
		"1/2 tsp salt, to taste",
		"3 large eggs (room temperature)",
		"1 cup crème fraîche", // precomposed Unicode is already NFC
	} {
		got, err := Sanitize(s, SanitizePolicy{})
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if got != s {
			t.Fatalf("clean phrase altered: %q -> %q", s, got)
		}
	}
}

func TestSanitizeTable(t *testing.T) {
	cases := []struct {
		name   string
		in     string
		pol    SanitizePolicy
		want   string
		wantIs error
	}{
		{name: "empty", in: "", wantIs: quarantine.ErrEmptyAfterClean},
		{name: "whitespace only", in: "   \t  \n", wantIs: quarantine.ErrEmptyAfterClean},
		{name: "invisibles only", in: "\ufeff\u200b\u200d", wantIs: quarantine.ErrEmptyAfterClean},
		{name: "invalid utf8 repaired", in: "\x80\xff tomatoes", want: "\ufffd tomatoes"},
		{name: "invalid utf8 rejected", in: "\x80\xff tomatoes",
			pol: SanitizePolicy{RejectInvalidUTF8: true}, wantIs: quarantine.ErrInvalidUTF8},
		{name: "nbsp to space", in: "1\u00a0cup\u00a0sugar", want: "1 cup sugar"},
		{name: "controls to space", in: "2 cups\x00\x01 onion", want: "2 cups   onion"},
		{name: "bom stripped", in: "\ufeff2 cups flour", want: "2 cups flour"},
		{name: "nfc composes diacritics", in: "1 cup cre\u0301me frai\u0302che",
			want: "1 cup cr\u00e9me fra\u00eeche"},
		{name: "byte cap", in: strings.Repeat("a", 100), pol: SanitizePolicy{MaxBytes: 64},
			wantIs: quarantine.ErrTooLong},
		{name: "under byte cap", in: strings.Repeat("a", 64), pol: SanitizePolicy{MaxBytes: 64},
			want: strings.Repeat("a", 64)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := Sanitize(c.in, c.pol)
			if c.wantIs != nil {
				if !errors.Is(err, c.wantIs) {
					t.Fatalf("err = %v, want %v", err, c.wantIs)
				}
				return
			}
			if err != nil {
				t.Fatalf("err = %v", err)
			}
			if got != c.want {
				t.Fatalf("Sanitize(%q) = %q, want %q", c.in, got, c.want)
			}
		})
	}
}

// TestCanonicalKeyCollapsesVariants: byte-level variants of one
// phrase share a key (the cache-sharing contract), while a clean
// phrase keys as itself and a quarantine-bound phrase is unkeyable
// with the same typed error the pipeline would reject it with.
func TestCanonicalKeyCollapsesVariants(t *testing.T) {
	base, err := CanonicalKey("2 cups onion")
	if err != nil || base != "2 cups onion" {
		t.Fatalf("clean phrase key = (%q, %v)", base, err)
	}
	for _, variant := range []string{
		"2 cups onion",  // NBSP
		"2 cups onion​", // zero-width space
		"2 cups onion",  // thin space
	} {
		k, err := CanonicalKey(variant)
		if err != nil {
			t.Fatalf("CanonicalKey(%q) = %v", variant, err)
		}
		if k != base {
			t.Fatalf("CanonicalKey(%q) = %q, want %q", variant, k, base)
		}
	}
	if _, err := CanonicalKey(strings.Repeat("a", 1<<20)); !errors.Is(err, quarantine.ErrTooLong) {
		t.Fatalf("oversized phrase err = %v, want too_long", err)
	}
}

func TestCheckTokensCaps(t *testing.T) {
	if err := checkTokens(nil, SanitizePolicy{}); !errors.Is(err, quarantine.ErrEmptyAfterClean) {
		t.Fatalf("zero tokens = %v", err)
	}
	if err := checkTokens([]string{"a", "b"}, SanitizePolicy{MaxTokens: 2}); err != nil {
		t.Fatalf("at cap = %v", err)
	}
	err := checkTokens([]string{"a", "b", "c"}, SanitizePolicy{MaxTokens: 2})
	if !errors.Is(err, quarantine.ErrTooManyTokens) {
		t.Fatalf("over cap = %v", err)
	}
}

// TestDefaultCapsTripOnPoison: the production defaults route every
// poison-corpus phrase through a taxonomy branch (or clean it) without
// a panic, and the pathological-size entry hits the byte cap.
func TestDefaultCapsTripOnPoison(t *testing.T) {
	tooLong := 0
	for _, p := range quarantine.PoisonPhrases() {
		if _, err := Sanitize(p, SanitizePolicy{}); errors.Is(err, quarantine.ErrTooLong) {
			tooLong++
		}
	}
	if tooLong == 0 {
		t.Fatal("no poison phrase tripped the byte cap")
	}
}
