package core

import (
	"recipemodel/internal/fraction"
)

// ScaleRecipe returns a copy of the model with every parseable
// quantity multiplied by factor (numerator/denominator), rendered back
// in recipe notation ("1 1/2", "2-4"). Unparseable quantities are kept
// verbatim — a mined attribute is never silently dropped. This is the
// kind of computation the paper's structure exists to enable: scaling
// "1 1/2 cups" textually is fragile; scaling a parsed rational is
// exact.
func ScaleRecipe(m *RecipeModel, num, den int64) *RecipeModel {
	if m == nil || den == 0 {
		return m
	}
	factor := fraction.R(num, den)
	out := *m
	out.Ingredients = make([]IngredientRecord, len(m.Ingredients))
	copy(out.Ingredients, m.Ingredients)
	for i := range out.Ingredients {
		out.Ingredients[i].Quantity = scaleQuantity(out.Ingredients[i].Quantity, factor)
	}
	return &out
}

// scaleQuantity scales a single quantity expression, preserving range
// structure.
func scaleQuantity(qty string, factor fraction.Rational) string {
	if qty == "" {
		return qty
	}
	q, err := fraction.Parse(qty)
	if err != nil {
		return qty
	}
	lo := q.Lo.Mul(factor)
	if !q.IsRange() {
		return lo.String()
	}
	hi := q.Hi.Mul(factor)
	return lo.String() + "-" + hi.String()
}
