package core

import "strings"

// unitAliases maps surface unit forms to canonical singular names.
var unitAliases = map[string]string{
	"tbsp": "tablespoon", "tbs": "tablespoon", "tbsps": "tablespoon",
	"tsp": "teaspoon", "tsps": "teaspoon",
	"oz": "ounce", "ozs": "ounce",
	"lb": "pound", "lbs": "pound",
	"g": "gram", "gr": "gram", "kg": "kilogram",
	"ml": "milliliter", "l": "liter", "litre": "liter",
	"c": "cup", "qt": "quart", "pt": "pint", "gal": "gallon",
	"pkg": "package", "pkgs": "package",
}

// CanonicalUnit normalizes a mined unit surface form to its canonical
// singular name: abbreviations expand ("tbsp" → "tablespoon") and
// plurals reduce ("cups" → "cup"). Unknown units are returned
// lower-cased but otherwise intact.
func CanonicalUnit(unit string) string {
	u := strings.ToLower(strings.TrimSpace(unit))
	if u == "" {
		return ""
	}
	u = strings.TrimSuffix(u, ".") // "tbsp."
	if c, ok := unitAliases[u]; ok {
		return c
	}
	// plural reduction with lexicon-free heuristics mirroring the
	// lemmatizer's noun rules.
	switch {
	case strings.HasSuffix(u, "ches") || strings.HasSuffix(u, "shes") ||
		strings.HasSuffix(u, "xes") || strings.HasSuffix(u, "sses"):
		u = u[:len(u)-2]
	case strings.HasSuffix(u, "ies") && len(u) > 4:
		u = u[:len(u)-3] + "y"
	case strings.HasSuffix(u, "ves") && len(u) > 4:
		u = u[:len(u)-3] + "f"
	case strings.HasSuffix(u, "s") && !strings.HasSuffix(u, "ss") && len(u) > 2:
		u = u[:len(u)-1]
	}
	if c, ok := unitAliases[u]; ok {
		return c
	}
	return u
}

// CanonicalUnit returns the record's unit in canonical singular form.
func (r IngredientRecord) CanonicalUnit() string {
	return CanonicalUnit(r.Unit)
}
