// Package corpus bridges the synthetic RecipeDB corpus and the NER
// training layer: conversion to labeled sentences, train/test splits,
// and the 5-fold cross-validation protocol the paper uses to validate
// its models (§II.F).
package corpus

import (
	"math/rand"

	"recipemodel/internal/ner"
	"recipemodel/internal/recipedb"
)

// IngredientSentences converts gold-annotated ingredient phrases to
// labeled NER sentences.
func IngredientSentences(ps []recipedb.IngredientPhrase) []ner.Sentence {
	out := make([]ner.Sentence, len(ps))
	for i, p := range ps {
		out[i] = ner.Sentence{Tokens: p.Tokens, Spans: p.Spans}
	}
	return out
}

// InstructionSentences converts gold-annotated instructions to labeled
// NER sentences.
func InstructionSentences(is []recipedb.Instruction) []ner.Sentence {
	out := make([]ner.Sentence, len(is))
	for i, in := range is {
		out[i] = ner.Sentence{Tokens: in.Tokens, Spans: in.Spans}
	}
	return out
}

// Split shuffles and partitions sentences into train/test with the
// given test fraction.
func Split(sents []ner.Sentence, testFrac float64, rng *rand.Rand) (train, test []ner.Sentence) {
	idx := rng.Perm(len(sents))
	nTest := int(float64(len(sents)) * testFrac)
	for i, j := range idx {
		if i < nTest {
			test = append(test, sents[j])
		} else {
			train = append(train, sents[j])
		}
	}
	return train, test
}

// Fold is one cross-validation fold.
type Fold struct {
	Train []ner.Sentence
	Test  []ner.Sentence
}

// KFold shuffles and partitions sentences into k folds; fold i's test
// set is the i-th shard.
func KFold(sents []ner.Sentence, k int, rng *rand.Rand) []Fold {
	if k < 2 || len(sents) < k {
		return nil
	}
	idx := rng.Perm(len(sents))
	shards := make([][]ner.Sentence, k)
	for i, j := range idx {
		shards[i%k] = append(shards[i%k], sents[j])
	}
	folds := make([]Fold, k)
	for i := 0; i < k; i++ {
		folds[i].Test = shards[i]
		for j := 0; j < k; j++ {
			if j != i {
				folds[i].Train = append(folds[i].Train, shards[j]...)
			}
		}
	}
	return folds
}

// Gold extracts the gold span sets, parallel to the sentences.
func Gold(sents []ner.Sentence) [][]ner.Span {
	out := make([][]ner.Span, len(sents))
	for i, s := range sents {
		out[i] = s.Spans
	}
	return out
}

// Predict runs the tagger over every sentence, returning predictions
// parallel to the input.
func Predict(t *ner.Tagger, sents []ner.Sentence) [][]ner.Span {
	out := make([][]ner.Span, len(sents))
	for i, s := range sents {
		out[i] = t.Predict(s.Tokens)
	}
	return out
}
