package corpus

import (
	"math/rand"
	"testing"

	"recipemodel/internal/ner"
	"recipemodel/internal/recipedb"
)

func sents(n int) []ner.Sentence {
	g := recipedb.NewGenerator(recipedb.SourceAllRecipes, 1)
	return IngredientSentences(g.IngredientPhrases(n))
}

func TestIngredientSentences(t *testing.T) {
	ss := sents(20)
	if len(ss) != 20 {
		t.Fatalf("got %d", len(ss))
	}
	for _, s := range ss {
		if len(s.Tokens) == 0 || len(s.Spans) == 0 {
			t.Fatal("empty sentence")
		}
	}
}

func TestInstructionSentences(t *testing.T) {
	g := recipedb.NewGenerator(recipedb.SourceFoodCom, 2)
	ss := InstructionSentences(g.Instructions(15))
	if len(ss) != 15 {
		t.Fatalf("got %d", len(ss))
	}
	for _, s := range ss {
		if len(s.Tokens) == 0 {
			t.Fatal("empty instruction sentence")
		}
	}
}

func TestSplit(t *testing.T) {
	ss := sents(100)
	train, test := Split(ss, 0.25, rand.New(rand.NewSource(3)))
	if len(test) != 25 || len(train) != 75 {
		t.Fatalf("split %d/%d", len(train), len(test))
	}
}

func TestSplitDeterministic(t *testing.T) {
	ss := sents(50)
	tr1, te1 := Split(ss, 0.2, rand.New(rand.NewSource(4)))
	tr2, te2 := Split(ss, 0.2, rand.New(rand.NewSource(4)))
	if len(tr1) != len(tr2) || len(te1) != len(te2) {
		t.Fatal("nondeterministic split sizes")
	}
	for i := range te1 {
		if te1[i].Tokens[0] != te2[i].Tokens[0] {
			t.Fatal("nondeterministic split content")
		}
	}
}

func TestKFold(t *testing.T) {
	ss := sents(53)
	folds := KFold(ss, 5, rand.New(rand.NewSource(5)))
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	totalTest := 0
	for _, f := range folds {
		totalTest += len(f.Test)
		if len(f.Train)+len(f.Test) != 53 {
			t.Fatalf("fold sizes %d + %d", len(f.Train), len(f.Test))
		}
	}
	if totalTest != 53 {
		t.Fatalf("test shards cover %d of 53", totalTest)
	}
}

func TestKFoldDegenerate(t *testing.T) {
	if KFold(sents(3), 5, rand.New(rand.NewSource(6))) != nil {
		t.Fatal("too few sentences should return nil")
	}
	if KFold(sents(5), 1, rand.New(rand.NewSource(6))) != nil {
		t.Fatal("k<2 should return nil")
	}
}

func TestGoldAndPredict(t *testing.T) {
	ss := sents(30)
	gold := Gold(ss)
	if len(gold) != 30 {
		t.Fatal("gold length")
	}
	tg := ner.Train(ss, ner.IngredientTypes,
		ner.NewIngredientExtractor(ner.DefaultFeatureOptions),
		ner.TrainConfig{Epochs: 3, Seed: 7})
	pred := Predict(tg, ss)
	if len(pred) != 30 {
		t.Fatal("pred length")
	}
}
