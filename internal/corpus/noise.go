package corpus

import (
	"math/rand"

	"recipemodel/internal/ner"
)

// confusions maps each entity type to the label a human annotator most
// plausibly confuses it with ("" means the span is simply missed).
// The paper's training data was manually tagged (§II.E); inter-
// annotator inconsistency is what keeps real-world F1 below 1.0, so
// the reproduction injects it explicitly at a configurable rate.
var confusions = map[string]string{
	ner.State:    ner.DryFresh, // "smoked" — state or dryness?
	ner.DryFresh: ner.State,
	ner.Temp:     ner.State, // "frozen" — temp or state?
	ner.Size:     "",        // sizes get missed
	ner.Unit:     ner.Name,  // "clove" homographs
	ner.Name:     "",        // names occasionally missed
	ner.Quantity: "",
	// instruction-section confusions (§III.A annotation).
	ner.Process:    "",             // technique verbs get missed
	ner.Utensil:    ner.Ingredient, // "grill", "steamer" read as food
	ner.Ingredient: "",
}

// Noisify returns a copy of sents where each span is independently
// corrupted with probability rate: half the corruptions swap the label
// for its confusable counterpart, the rest drop or truncate the span.
func Noisify(sents []ner.Sentence, rate float64, rng *rand.Rand) []ner.Sentence {
	out := make([]ner.Sentence, len(sents))
	for i, s := range sents {
		ns := ner.Sentence{Tokens: s.Tokens}
		for _, sp := range s.Spans {
			if rng.Float64() >= rate {
				ns.Spans = append(ns.Spans, sp)
				continue
			}
			switch {
			case rng.Float64() < 0.5 && confusions[sp.Type] != "":
				sp.Type = confusions[sp.Type]
				ns.Spans = append(ns.Spans, sp)
			case sp.End-sp.Start > 1:
				sp.End-- // boundary error on a multiword span
				ns.Spans = append(ns.Spans, sp)
			default:
				// span missed entirely.
			}
		}
		out[i] = ns
	}
	return out
}
