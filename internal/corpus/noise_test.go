package corpus

import (
	"math/rand"
	"testing"

	"recipemodel/internal/ner"
)

func TestNoisifyZeroRateIsIdentity(t *testing.T) {
	ss := sents(50)
	out := Noisify(ss, 0, rand.New(rand.NewSource(1)))
	for i := range ss {
		if len(out[i].Spans) != len(ss[i].Spans) {
			t.Fatal("zero-rate noise changed spans")
		}
		for j := range ss[i].Spans {
			if out[i].Spans[j] != ss[i].Spans[j] {
				t.Fatal("zero-rate noise mutated a span")
			}
		}
	}
}

func TestNoisifyDoesNotMutateInput(t *testing.T) {
	ss := sents(30)
	before := make([]int, len(ss))
	for i := range ss {
		before[i] = len(ss[i].Spans)
	}
	Noisify(ss, 0.5, rand.New(rand.NewSource(2)))
	for i := range ss {
		if len(ss[i].Spans) != before[i] {
			t.Fatal("Noisify mutated its input")
		}
	}
}

func TestNoisifyRateProportional(t *testing.T) {
	ss := sents(500)
	var total, kept int
	out := Noisify(ss, 0.3, rand.New(rand.NewSource(3)))
	for i := range ss {
		total += len(ss[i].Spans)
		// count exact survivals
		orig := map[ner.Span]bool{}
		for _, sp := range ss[i].Spans {
			orig[sp] = true
		}
		for _, sp := range out[i].Spans {
			if orig[sp] {
				kept++
			}
		}
	}
	frac := float64(kept) / float64(total)
	if frac < 0.62 || frac > 0.80 {
		t.Fatalf("survival fraction %.3f, want ≈0.70 at rate 0.3", frac)
	}
}

func TestNoisifySpansRemainValid(t *testing.T) {
	ss := sents(200)
	out := Noisify(ss, 0.8, rand.New(rand.NewSource(4)))
	for i := range out {
		for _, sp := range out[i].Spans {
			if sp.Start < 0 || sp.End > len(out[i].Tokens) || sp.Start >= sp.End {
				t.Fatalf("invalid span %+v", sp)
			}
		}
	}
}
