// The compiled decode fast path. Compile flattens a trained Model's
// map-of-slices weight tables into packed arrays indexed by interned
// feature ID × label, and Viterbi then runs over pooled flat lattices:
// steady-state decoding performs zero heap allocations and no string
// hashing.
//
// Determinism contract: Compiled.Decode must be BIT-IDENTICAL to
// Model.Decode. The packed emission loop adds the same float64 values
// in the same order as Model.emissionScores (per position, features in
// extraction order, labels innermost), and the Viterbi recurrence and
// its tie-breaking are verbatim ports, so every golden output and the
// parallel==serial guarantee carry over unchanged. The equivalence is
// pinned by TestCompiledDecodeEquivalence and the randomized property
// test in compiled_test.go.

package crf

import (
	"math"
	"sync"

	"recipemodel/internal/intern"
)

// Compiled is the packed, read-only decode form of a Model. It is safe
// for concurrent use: all weight tables are immutable after Compile
// and all mutable state lives in pooled per-call scratch.
type Compiled struct {
	labels []string
	l      int
	feats  *intern.Table
	// emit[fid*L+y] is the emission weight of feature fid for label y.
	emit []float64
	// trans[r*L+y] flattens Model.Trans; row L is the virtual
	// begin-of-sequence state.
	trans    []float64
	transEnd []float64

	pool sync.Pool // *decodeScratch
}

// decodeScratch holds one decode's lattice buffers. Every field is
// re-sliced and fully overwritten before use, so a scratch returned to
// the pool by a deferred Put after a contained panic (see core's
// record-level containment) can never leak stale state into a later
// decode.
type decodeScratch struct {
	emit  []float64 // n*L emission rows
	delta []float64 // n*L Viterbi scores
	back  []int32   // n*L backpointers
}

// Compile builds the packed decode form of m. Feature IDs are assigned
// in sorted feature-name order so compilation is deterministic.
func Compile(m *Model) *Compiled {
	L := m.L()
	c := &Compiled{
		labels:   append([]string(nil), m.Labels...),
		l:        L,
		feats:    intern.FromMapKeys(m.Emit),
		transEnd: append([]float64(nil), m.TransEnd...),
	}
	c.emit = make([]float64, c.feats.Len()*L)
	for name, w := range m.Emit {
		base := int(c.feats.Lookup(name)) * L
		copy(c.emit[base:base+L], w)
	}
	c.trans = make([]float64, (L+1)*L)
	for r, row := range m.Trans {
		copy(c.trans[r*L:(r+1)*L], row)
	}
	return c
}

// Compile returns the packed decode form of the model.
func (m *Model) Compile() *Compiled { return Compile(m) }

// Labels returns the label inventory (shared backing; do not mutate).
func (c *Compiled) Labels() []string { return c.labels }

// L returns the number of labels.
func (c *Compiled) L() int { return c.l }

// Features exposes the feature-interning table so callers can resolve
// feature IDs once and decode by ID.
func (c *Compiled) Features() *intern.Table { return c.feats }

func (c *Compiled) getScratch(n int) *decodeScratch {
	s, _ := c.pool.Get().(*decodeScratch)
	if s == nil {
		s = &decodeScratch{}
	}
	need := n * c.l
	if cap(s.emit) < need {
		s.emit = make([]float64, need)
		s.delta = make([]float64, need)
		s.back = make([]int32, need)
	}
	s.emit = s.emit[:need]
	s.delta = s.delta[:need]
	s.back = s.back[:need]
	return s
}

// AppendDecodeIDs runs Viterbi over a sequence given as an interned
// feature arena: ids[offs[t]:offs[t+1]] are position t's feature IDs
// (features absent from the model are simply not present; every ID
// must come from Features()). The optimal label IDs are appended to
// path and returned with the unnormalized path score. Steady-state
// calls perform zero heap allocations when path has capacity.
func (c *Compiled) AppendDecodeIDs(path []int32, ids []int32, offs []int32) ([]int32, float64) {
	n := len(offs) - 1
	L := c.l
	if n <= 0 || L == 0 {
		return path, 0
	}
	s := c.getScratch(n)
	defer c.pool.Put(s)

	// Emission rows: same value-addition order as Model.emissionScores
	// (feature outer, label inner) for bit-identical sums.
	emit := s.emit
	for i := range emit {
		emit[i] = 0
	}
	for t := 0; t < n; t++ {
		row := emit[t*L : (t+1)*L]
		for _, fid := range ids[offs[t]:offs[t+1]] {
			w := c.emit[int(fid)*L : int(fid)*L+L]
			for y := 0; y < L; y++ {
				row[y] += w[y]
			}
		}
	}

	// Viterbi, ported verbatim from Model.Decode (strict > keeps the
	// lowest-index tie-break).
	delta, back := s.delta, s.back
	bosRow := c.trans[L*L : (L+1)*L]
	for y := 0; y < L; y++ {
		delta[y] = bosRow[y] + emit[y]
		back[y] = -1
	}
	for t := 1; t < n; t++ {
		prev := delta[(t-1)*L : t*L]
		cur := delta[t*L : (t+1)*L]
		curBack := back[t*L : (t+1)*L]
		erow := emit[t*L : (t+1)*L]
		for y := 0; y < L; y++ {
			bestPrev, bestScore := int32(0), math.Inf(-1)
			for yp := 0; yp < L; yp++ {
				if sc := prev[yp] + c.trans[yp*L+y]; sc > bestScore {
					bestScore = sc
					bestPrev = int32(yp)
				}
			}
			cur[y] = bestScore + erow[y]
			curBack[y] = bestPrev
		}
	}
	bestLast, bestScore := int32(0), math.Inf(-1)
	last := delta[(n-1)*L : n*L]
	for y := 0; y < L; y++ {
		if sc := last[y] + c.transEnd[y]; sc > bestScore {
			bestScore = sc
			bestLast = int32(y)
		}
	}

	start := len(path)
	for i := 0; i < n; i++ {
		path = append(path, 0)
	}
	out := path[start:]
	out[n-1] = bestLast
	for t := n - 1; t > 0; t-- {
		out[t-1] = back[t*L+int(out[t])]
	}
	return path, bestScore
}

// Decode is the string-feature form of AppendDecodeIDs, provided for
// tests and drop-in comparison against Model.Decode. It returns the
// same path and score as the Model it was compiled from.
func (c *Compiled) Decode(features [][]string) ([]int, float64) {
	n := len(features)
	if n == 0 || c.l == 0 {
		return nil, 0
	}
	ids := make([]int32, 0, n*8)
	offs := make([]int32, 1, n+1)
	for _, feats := range features {
		for _, f := range feats {
			if id := c.feats.Lookup(f); id != intern.None {
				ids = append(ids, id)
			}
		}
		offs = append(offs, int32(len(ids)))
	}
	path32, score := c.AppendDecodeIDs(nil, ids, offs)
	path := make([]int, len(path32))
	for i, y := range path32 {
		path[i] = int(y)
	}
	return path, score
}
