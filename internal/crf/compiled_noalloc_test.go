// The race runtime instruments allocations of its own, so
// AllocsPerRun counts are only meaningful in normal builds.
//go:build !race

package crf

import (
	"math/rand"
	"testing"
)

// TestAppendDecodeIDsZeroAlloc pins the pooled decode's steady-state
// zero-allocation property at the crf layer.
func TestAppendDecodeIDsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := packedRandModel(rng, 5, 30)
	c := m.Compile()
	ids := []int32{0, 3, 7, 1, 2, 9, 4, 0, 5}
	offs := []int32{0, 2, 4, 7, 9}
	path := make([]int32, 0, 16)
	// warm the pool
	path, _ = c.AppendDecodeIDs(path[:0], ids, offs)
	_ = path
	allocs := testing.AllocsPerRun(100, func() {
		path, _ = c.AppendDecodeIDs(path[:0], ids, offs)
	})
	if allocs != 0 {
		t.Fatalf("AppendDecodeIDs allocated %.1f times per run, want 0", allocs)
	}
}
