package crf

import (
	"fmt"
	"math/rand"
	"testing"
)

// randomModel builds a CRF with random weights over nLabels labels and
// a feature vocabulary feat0..feat{nFeats-1}.
func packedRandModel(rng *rand.Rand, nLabels, nFeats int) *Model {
	labels := make([]string, nLabels)
	for i := range labels {
		labels[i] = fmt.Sprintf("L%d", i)
	}
	m := New(labels)
	for f := 0; f < nFeats; f++ {
		w := make([]float64, nLabels)
		for y := range w {
			w[y] = rng.NormFloat64()
		}
		m.Emit[fmt.Sprintf("feat%d", f)] = w
	}
	for r := range m.Trans {
		for y := range m.Trans[r] {
			m.Trans[r][y] = rng.NormFloat64()
		}
	}
	for y := range m.TransEnd {
		m.TransEnd[y] = rng.NormFloat64()
	}
	return m
}

// randomFeatures draws a feature sequence, mixing known features with
// ones the model has never seen (which both decoders must skip).
func packedRandFeatures(rng *rand.Rand, n, nFeats int) [][]string {
	out := make([][]string, n)
	for t := range out {
		k := 1 + rng.Intn(6)
		fs := make([]string, 0, k)
		for j := 0; j < k; j++ {
			if rng.Intn(4) == 0 {
				fs = append(fs, fmt.Sprintf("unseen%d", rng.Intn(50)))
			} else {
				fs = append(fs, fmt.Sprintf("feat%d", rng.Intn(nFeats)))
			}
		}
		out[t] = fs
	}
	return out
}

// TestCompiledDecodeProperty is the randomized old-vs-compiled
// property: for arbitrary models and inputs, Compile(m).Decode must
// reproduce m.Decode exactly — same path, bit-identical score.
func TestCompiledDecodeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nLabels := 1 + rng.Intn(9)
		nFeats := 1 + rng.Intn(40)
		m := packedRandModel(rng, nLabels, nFeats)
		c := m.Compile()
		for seq := 0; seq < 5; seq++ {
			feats := packedRandFeatures(rng, 1+rng.Intn(12), nFeats)
			wantPath, wantScore := m.Decode(feats)
			gotPath, gotScore := c.Decode(feats)
			if len(gotPath) != len(wantPath) {
				t.Fatalf("trial %d: path length %d vs %d", trial, len(gotPath), len(wantPath))
			}
			for i := range wantPath {
				if gotPath[i] != wantPath[i] {
					t.Fatalf("trial %d: path[%d] = %d, want %d", trial, i, gotPath[i], wantPath[i])
				}
			}
			if gotScore != wantScore {
				t.Fatalf("trial %d: score %v, want %v (must be bit-identical)", trial, gotScore, wantScore)
			}
		}
	}
}

func TestCompiledDecodeEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := packedRandModel(rng, 3, 5)
	c := m.Compile()
	if path, score := c.Decode(nil); path != nil || score != 0 {
		t.Errorf("empty input: got (%v, %v), want (nil, 0)", path, score)
	}
	// all-unknown features still decode (transition-only path).
	feats := [][]string{{"nope"}, {"also-nope"}}
	wantPath, wantScore := m.Decode(feats)
	gotPath, gotScore := c.Decode(feats)
	if gotScore != wantScore || len(gotPath) != len(wantPath) {
		t.Fatalf("unknown-only features diverge: (%v,%v) vs (%v,%v)", gotPath, gotScore, wantPath, wantScore)
	}
}

func BenchmarkCompiledDecodeIDs(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := packedRandModel(rng, 15, 5000)
	c := m.Compile()
	// a 10-token sequence with ~25 features per token, the ingredient
	// tagger's shape.
	var ids []int32
	offs := []int32{0}
	for t := 0; t < 10; t++ {
		for j := 0; j < 25; j++ {
			ids = append(ids, int32(rng.Intn(5000)))
		}
		offs = append(offs, int32(len(ids)))
	}
	path := make([]int32, 0, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path, _ = c.AppendDecodeIDs(path[:0], ids, offs)
	}
}

func BenchmarkMapDecode(b *testing.B) {
	// the pre-compile baseline decoder on the same shape, for the
	// speedup ratio in BENCH_PR6.json.
	rng := rand.New(rand.NewSource(3))
	m := packedRandModel(rng, 15, 5000)
	feats := make([][]string, 10)
	for t := range feats {
		for j := 0; j < 25; j++ {
			feats[t] = append(feats[t], fmt.Sprintf("feat%d", rng.Intn(5000)))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Decode(feats)
	}
}
