// Package crf implements a linear-chain conditional random field — the
// model class behind the Stanford NER tagger the paper trains (§II.B,
// §III.A). It provides log-space forward–backward inference, Viterbi
// decoding, maximum-likelihood training with AdaGrad and L2
// regularization, and an averaged structured-perceptron trainer as an
// alternative backend.
//
// Features are caller-extracted strings per position; the CRF itself
// is agnostic to the tagging task.
package crf

import (
	"fmt"
	"math"
)

// Sequence is one training or decoding instance: a feature set per
// position and (for training) the gold label index per position.
type Sequence struct {
	Features [][]string
	Labels   []int
}

// Model is a linear-chain CRF.
type Model struct {
	Labels  []string
	labelID map[string]int

	// Emit[feature][label] are the emission weights.
	Emit map[string][]float64
	// Trans[from][to] are transition weights; row index len(Labels)
	// is the virtual begin-of-sequence state.
	Trans [][]float64
	// TransEnd[label] scores ending a sequence in label.
	TransEnd []float64
}

// New creates an empty model over the given label inventory.
func New(labels []string) *Model {
	m := &Model{
		Labels:   append([]string(nil), labels...),
		labelID:  make(map[string]int, len(labels)),
		Emit:     make(map[string][]float64),
		Trans:    make([][]float64, len(labels)+1),
		TransEnd: make([]float64, len(labels)),
	}
	for i, l := range labels {
		m.labelID[l] = i
	}
	for i := range m.Trans {
		m.Trans[i] = make([]float64, len(labels))
	}
	return m
}

// L returns the number of labels.
func (m *Model) L() int { return len(m.Labels) }

// bos is the virtual begin state row in Trans.
func (m *Model) bos() int { return len(m.Labels) }

// LabelID returns the index of a label name, or -1.
func (m *Model) LabelID(l string) int {
	if id, ok := m.labelID[l]; ok {
		return id
	}
	return -1
}

// emissionScores computes, for every position, the per-label sum of
// emission weights for the active features.
func (m *Model) emissionScores(features [][]string) [][]float64 {
	L := m.L()
	out := make([][]float64, len(features))
	for t, feats := range features {
		row := make([]float64, L)
		for _, f := range feats {
			if w, ok := m.Emit[f]; ok {
				for y := 0; y < L; y++ {
					row[y] += w[y]
				}
			}
		}
		out[t] = row
	}
	return out
}

// Decode returns the Viterbi-optimal label sequence for the features,
// along with its unnormalized path score.
func (m *Model) Decode(features [][]string) ([]int, float64) {
	n := len(features)
	L := m.L()
	if n == 0 || L == 0 {
		return nil, 0
	}
	emit := m.emissionScores(features)

	delta := make([][]float64, n)
	back := make([][]int, n)
	for t := range delta {
		delta[t] = make([]float64, L)
		back[t] = make([]int, L)
	}
	for y := 0; y < L; y++ {
		delta[0][y] = m.Trans[m.bos()][y] + emit[0][y]
		back[0][y] = -1
	}
	for t := 1; t < n; t++ {
		for y := 0; y < L; y++ {
			bestPrev, bestScore := 0, math.Inf(-1)
			for yp := 0; yp < L; yp++ {
				s := delta[t-1][yp] + m.Trans[yp][y]
				if s > bestScore {
					bestScore = s
					bestPrev = yp
				}
			}
			delta[t][y] = bestScore + emit[t][y]
			back[t][y] = bestPrev
		}
	}
	bestLast, bestScore := 0, math.Inf(-1)
	for y := 0; y < L; y++ {
		s := delta[n-1][y] + m.TransEnd[y]
		if s > bestScore {
			bestScore = s
			bestLast = y
		}
	}
	path := make([]int, n)
	path[n-1] = bestLast
	for t := n - 1; t > 0; t-- {
		path[t-1] = back[t][path[t]]
	}
	return path, bestScore
}

// DecodeLabels is Decode returning label names.
func (m *Model) DecodeLabels(features [][]string) []string {
	ids, _ := m.Decode(features)
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = m.Labels[id]
	}
	return out
}

// PathScore returns the unnormalized log score of a specific path.
func (m *Model) PathScore(features [][]string, labels []int) float64 {
	if len(features) != len(labels) {
		panic(fmt.Sprintf("crf: %d positions vs %d labels", len(features), len(labels)))
	}
	emit := m.emissionScores(features)
	s := 0.0
	prev := m.bos()
	for t, y := range labels {
		s += m.Trans[prev][y] + emit[t][y]
		prev = y
	}
	if len(labels) > 0 {
		s += m.TransEnd[labels[len(labels)-1]]
	}
	return s
}

// lattice holds forward/backward tables for one sequence.
type lattice struct {
	emit  [][]float64
	alpha [][]float64
	beta  [][]float64
	logZ  float64
}

// forwardBackward fills the lattice in log space.
func (m *Model) forwardBackward(features [][]string) *lattice {
	n := len(features)
	L := m.L()
	lat := &lattice{emit: m.emissionScores(features)}
	lat.alpha = make([][]float64, n)
	lat.beta = make([][]float64, n)
	for t := 0; t < n; t++ {
		lat.alpha[t] = make([]float64, L)
		lat.beta[t] = make([]float64, L)
	}
	// forward
	for y := 0; y < L; y++ {
		lat.alpha[0][y] = m.Trans[m.bos()][y] + lat.emit[0][y]
	}
	buf := make([]float64, L)
	for t := 1; t < n; t++ {
		for y := 0; y < L; y++ {
			for yp := 0; yp < L; yp++ {
				buf[yp] = lat.alpha[t-1][yp] + m.Trans[yp][y]
			}
			lat.alpha[t][y] = logSumExp(buf) + lat.emit[t][y]
		}
	}
	// backward
	for y := 0; y < L; y++ {
		lat.beta[n-1][y] = m.TransEnd[y]
	}
	for t := n - 2; t >= 0; t-- {
		for yp := 0; yp < L; yp++ {
			for y := 0; y < L; y++ {
				buf[y] = m.Trans[yp][y] + lat.emit[t+1][y] + lat.beta[t+1][y]
			}
			lat.beta[t][yp] = logSumExp(buf)
		}
	}
	for y := 0; y < L; y++ {
		buf[y] = lat.alpha[n-1][y] + m.TransEnd[y]
	}
	lat.logZ = logSumExp(buf)
	return lat
}

// LogZ returns the log partition function for the features.
func (m *Model) LogZ(features [][]string) float64 {
	if len(features) == 0 {
		return 0
	}
	return m.forwardBackward(features).logZ
}

// LogLikelihood returns log p(labels | features) under the model.
func (m *Model) LogLikelihood(seq Sequence) float64 {
	if len(seq.Features) == 0 {
		return 0
	}
	return m.PathScore(seq.Features, seq.Labels) - m.LogZ(seq.Features)
}

// Marginals returns p(y_t = y | x) for every position and label.
func (m *Model) Marginals(features [][]string) [][]float64 {
	n := len(features)
	L := m.L()
	out := make([][]float64, n)
	if n == 0 {
		return out
	}
	lat := m.forwardBackward(features)
	for t := 0; t < n; t++ {
		out[t] = make([]float64, L)
		for y := 0; y < L; y++ {
			out[t][y] = math.Exp(lat.alpha[t][y] + lat.beta[t][y] - lat.logZ)
		}
	}
	return out
}

func logSumExp(xs []float64) float64 {
	max := math.Inf(-1)
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - max)
	}
	return max + math.Log(s)
}
