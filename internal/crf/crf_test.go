package crf

import (
	"math"
	"math/rand"
	"testing"
)

// enumerate all label paths of length n over L labels.
func allPaths(n, L int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	var out [][]int
	for _, p := range allPaths(n-1, L) {
		for y := 0; y < L; y++ {
			q := append(append([]int(nil), p...), y)
			out = append(out, q)
		}
	}
	return out
}

// randomModel builds a CRF with random weights over the features that
// appear in feats.
func randomModel(rng *rand.Rand, labels []string, feats [][]string) *Model {
	m := New(labels)
	seen := map[string]bool{}
	for _, row := range feats {
		for _, f := range row {
			if !seen[f] {
				seen[f] = true
				w := make([]float64, m.L())
				for y := range w {
					w[y] = rng.NormFloat64()
				}
				m.Emit[f] = w
			}
		}
	}
	for a := range m.Trans {
		for b := range m.Trans[a] {
			m.Trans[a][b] = rng.NormFloat64()
		}
	}
	for y := range m.TransEnd {
		m.TransEnd[y] = rng.NormFloat64()
	}
	return m
}

func randomFeatures(rng *rand.Rand, n int) [][]string {
	vocab := []string{"f1", "f2", "f3", "f4", "f5"}
	out := make([][]string, n)
	for t := range out {
		k := 1 + rng.Intn(3)
		for i := 0; i < k; i++ {
			out[t] = append(out[t], vocab[rng.Intn(len(vocab))])
		}
	}
	return out
}

// Property: LogZ equals the log of the explicit sum over all paths.
func TestLogZMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	labels := []string{"A", "B", "C"}
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(4)
		feats := randomFeatures(rng, n)
		m := randomModel(rng, labels, feats)

		var sum float64
		first := true
		var max float64
		scores := []float64{}
		for _, path := range allPaths(n, m.L()) {
			s := m.PathScore(feats, path)
			scores = append(scores, s)
			if first || s > max {
				max = s
				first = false
			}
		}
		for _, s := range scores {
			sum += math.Exp(s - max)
		}
		want := max + math.Log(sum)
		got := m.LogZ(feats)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: LogZ = %v, brute force = %v", trial, got, want)
		}
	}
}

// Property: Viterbi finds the same best path score as brute force.
func TestViterbiMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	labels := []string{"A", "B", "C", "D"}
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(4)
		feats := randomFeatures(rng, n)
		m := randomModel(rng, labels, feats)

		best := math.Inf(-1)
		for _, path := range allPaths(n, m.L()) {
			if s := m.PathScore(feats, path); s > best {
				best = s
			}
		}
		path, score := m.Decode(feats)
		if math.Abs(score-best) > 1e-9 {
			t.Fatalf("trial %d: Viterbi score %v != best %v", trial, score, best)
		}
		if math.Abs(m.PathScore(feats, path)-best) > 1e-9 {
			t.Fatalf("trial %d: returned path does not achieve best score", trial)
		}
	}
}

// Property: marginals are valid distributions at every position.
func TestMarginalsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	labels := []string{"X", "Y", "Z"}
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(6)
		feats := randomFeatures(rng, n)
		m := randomModel(rng, labels, feats)
		marg := m.Marginals(feats)
		for t2, row := range marg {
			var s float64
			for _, p := range row {
				if p < -1e-12 || p > 1+1e-12 {
					t.Fatalf("marginal out of range: %v", p)
				}
				s += p
			}
			if math.Abs(s-1) > 1e-9 {
				t.Fatalf("trial %d pos %d: marginals sum to %v", trial, t2, s)
			}
		}
	}
}

func TestLogLikelihoodNonPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	labels := []string{"A", "B"}
	feats := randomFeatures(rng, 5)
	m := randomModel(rng, labels, feats)
	seq := Sequence{Features: feats, Labels: []int{0, 1, 0, 1, 1}}
	if ll := m.LogLikelihood(seq); ll > 1e-12 {
		t.Fatalf("log-likelihood %v > 0", ll)
	}
}

func TestDecodeEmpty(t *testing.T) {
	m := New([]string{"A", "B"})
	path, score := m.Decode(nil)
	if path != nil || score != 0 {
		t.Fatalf("empty decode = %v, %v", path, score)
	}
}

func TestPathScoreMismatchPanics(t *testing.T) {
	m := New([]string{"A"})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.PathScore([][]string{{"f"}}, []int{0, 0})
}

// toyTask builds a deterministic tagging task: words carry their gold
// label as a feature ("w=aX" → label X) but with one ambiguous word
// whose label depends on the previous label, forcing the model to use
// transitions.
func toyTask(rng *rand.Rand, nseq int) []Sequence {
	var data []Sequence
	for i := 0; i < nseq; i++ {
		n := 3 + rng.Intn(5)
		feats := make([][]string, n)
		labels := make([]int, n)
		for t := 0; t < n; t++ {
			switch {
			case t > 0 && rng.Float64() < 0.3:
				// ambiguous word: label copies the previous label.
				feats[t] = []string{"w=amb"}
				labels[t] = labels[t-1]
			case rng.Float64() < 0.5:
				feats[t] = []string{"w=a0", "shape=lower"}
				labels[t] = 0
			default:
				feats[t] = []string{"w=a1", "shape=lower"}
				labels[t] = 1
			}
		}
		data = append(data, Sequence{Features: feats, Labels: labels})
	}
	return data
}

func accuracy(m *Model, data []Sequence) float64 {
	var correct, total int
	for _, seq := range data {
		pred, _ := m.Decode(seq.Features)
		for t := range pred {
			if pred[t] == seq.Labels[t] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

func TestTrainSGDLearnsToyTask(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	train := toyTask(rng, 120)
	test := toyTask(rng, 40)
	m := New([]string{"L0", "L1"})
	trace := m.Train(train, TrainConfig{Epochs: 8, Seed: 6})
	if len(trace) != 8 {
		t.Fatalf("trace length %d", len(trace))
	}
	if trace[len(trace)-1] < trace[0] {
		t.Fatalf("log-likelihood did not improve: %v", trace)
	}
	if acc := accuracy(m, test); acc < 0.95 {
		t.Fatalf("SGD test accuracy = %v", acc)
	}
}

func TestTrainPerceptronLearnsToyTask(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	train := toyTask(rng, 300)
	test := toyTask(rng, 60)
	m := New([]string{"L0", "L1"})
	m.Train(train, TrainConfig{Epochs: 12, Seed: 8, Method: "perceptron"})
	if acc := accuracy(m, test); acc < 0.95 {
		t.Fatalf("perceptron test accuracy = %v", acc)
	}
}

func TestTrainUsesTransitions(t *testing.T) {
	// The ambiguous word is only solvable through transition weights;
	// check that the learned model tags it by copying the previous
	// label in both directions.
	rng := rand.New(rand.NewSource(9))
	train := toyTask(rng, 200)
	m := New([]string{"L0", "L1"})
	m.Train(train, TrainConfig{Epochs: 10, Seed: 10})
	feats := [][]string{{"w=a0", "shape=lower"}, {"w=amb"}}
	pred, _ := m.Decode(feats)
	if pred[0] != 0 || pred[1] != 0 {
		t.Fatalf("amb after L0 → %v", pred)
	}
	feats = [][]string{{"w=a1", "shape=lower"}, {"w=amb"}}
	pred, _ = m.Decode(feats)
	if pred[0] != 1 || pred[1] != 1 {
		t.Fatalf("amb after L1 → %v", pred)
	}
}

func TestTrainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	train := toyTask(rng, 50)
	m1 := New([]string{"L0", "L1"})
	m1.Train(train, TrainConfig{Epochs: 3, Seed: 42})
	m2 := New([]string{"L0", "L1"})
	m2.Train(train, TrainConfig{Epochs: 3, Seed: 42})
	feats := [][]string{{"w=a0"}, {"w=amb"}, {"w=a1"}}
	p1, s1 := m1.Decode(feats)
	p2, s2 := m2.Decode(feats)
	if s1 != s2 {
		t.Fatal("same seed should give identical models")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed should give identical decodes")
		}
	}
}

func TestLabelID(t *testing.T) {
	m := New([]string{"O", "NAME"})
	if m.LabelID("NAME") != 1 || m.LabelID("nope") != -1 {
		t.Fatal("LabelID wrong")
	}
	if m.L() != 2 {
		t.Fatal("L wrong")
	}
}

func TestDecodeLabels(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	train := toyTask(rng, 80)
	m := New([]string{"L0", "L1"})
	m.Train(train, TrainConfig{Epochs: 5, Seed: 13})
	got := m.DecodeLabels([][]string{{"w=a1"}})
	if len(got) != 1 || got[0] != "L1" {
		t.Fatalf("DecodeLabels = %v", got)
	}
}

func TestL2ShrinksWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	train := toyTask(rng, 60)
	weak := New([]string{"L0", "L1"})
	weak.Train(train, TrainConfig{Epochs: 5, Seed: 15, L2: 1e-4})
	strong := New([]string{"L0", "L1"})
	strong.Train(train, TrainConfig{Epochs: 5, Seed: 15, L2: 0.5})
	norm := func(m *Model) float64 {
		var s float64
		for _, w := range m.Emit {
			for _, v := range w {
				s += v * v
			}
		}
		return s
	}
	if norm(strong) >= norm(weak) {
		t.Fatalf("strong L2 should shrink weights: %v vs %v", norm(strong), norm(weak))
	}
}
