package crf

import "fmt"

// Stats summarizes a model's parameter footprint.
type Stats struct {
	Labels       int
	Features     int // distinct emission features
	EmitNonZero  int // non-zero emission weights
	TransNonZero int // non-zero transition weights (incl. BOS and end)
}

// String renders "labels=15 features=48210 emit-nnz=312k trans-nnz=240".
func (s Stats) String() string {
	return fmt.Sprintf("labels=%d features=%d emit-nnz=%d trans-nnz=%d",
		s.Labels, s.Features, s.EmitNonZero, s.TransNonZero)
}

// Stats computes the model's parameter statistics.
func (m *Model) Stats() Stats {
	s := Stats{Labels: m.L(), Features: len(m.Emit)}
	for _, w := range m.Emit {
		for _, v := range w {
			if v != 0 {
				s.EmitNonZero++
			}
		}
	}
	for _, row := range m.Trans {
		for _, v := range row {
			if v != 0 {
				s.TransNonZero++
			}
		}
	}
	for _, v := range m.TransEnd {
		if v != 0 {
			s.TransNonZero++
		}
	}
	return s
}

// Prune removes emission features whose largest absolute weight is
// below minAbs, shrinking the model (and anything persisted from it)
// with negligible accuracy impact for small thresholds. It returns the
// number of features removed.
func (m *Model) Prune(minAbs float64) int {
	removed := 0
	for f, w := range m.Emit {
		keep := false
		for _, v := range w {
			if v >= minAbs || v <= -minAbs {
				keep = true
				break
			}
		}
		if !keep {
			delete(m.Emit, f)
			removed++
		}
	}
	return removed
}
