package crf

import (
	"math/rand"
	"strings"
	"testing"
)

func TestStatsAndPrune(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	train := toyTask(rng, 150)
	m := New([]string{"L0", "L1"})
	m.Train(train, TrainConfig{Epochs: 6, Seed: 32})

	st := m.Stats()
	if st.Labels != 2 || st.Features == 0 || st.EmitNonZero == 0 || st.TransNonZero == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if !strings.Contains(st.String(), "features=") {
		t.Fatal("render")
	}

	test := toyTask(rng, 50)
	before := accuracy(m, test)

	// prune tiny weights: accuracy must not collapse.
	removed := m.Prune(1e-3)
	after := accuracy(m, test)
	if after < before-0.02 {
		t.Fatalf("pruning at 1e-3 cost too much: %v → %v (removed %d)", before, after, removed)
	}
	// pruning at a huge threshold removes everything.
	m.Prune(1e9)
	if m.Stats().Features != 0 {
		t.Fatal("full prune left features behind")
	}
}
