package crf

import (
	"math"
	"math/rand"

	"recipemodel/internal/parallel"
)

// TrainConfig controls CRF training.
type TrainConfig struct {
	Epochs       int     // default 10
	LearningRate float64 // AdaGrad base step, default 0.2
	L2           float64 // L2 regularization strength, default 1e-4
	Seed         int64
	// Method selects the trainer: "sgd" (AdaGrad maximum likelihood,
	// default) or "perceptron" (averaged structured perceptron).
	Method string
	// Shards > 0 selects the epoch-synchronous sharded SGD trainer:
	// each epoch's forward–backward passes run over Shards contiguous
	// data chunks with per-shard gradient buffers, merged in shard
	// order at an epoch barrier before one AdaGrad step per parameter.
	// The fitted model depends only on Shards (and the other knobs),
	// never on Workers, so a seeded run is reproducible at any
	// parallelism level. Shards == 0 with Workers > 1 defaults to
	// DefaultShards.
	Shards int
	// Workers bounds the goroutines executing the shards (<= 0: all
	// CPUs when sharding is active). Ignored by the serial trainers.
	Workers int
}

// DefaultShards is the shard count used when Workers requests
// parallel training but Shards is unset. It is a fixed constant —
// not the CPU count — precisely so the same seed yields the same
// model on any machine.
const DefaultShards = 8

func (c *TrainConfig) defaults() {
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.2
	}
	if c.L2 < 0 {
		c.L2 = 0
	} else if c.L2 == 0 {
		c.L2 = 1e-4
	}
	if c.Method == "" {
		c.Method = "sgd"
	}
	if c.Shards <= 0 && c.Workers > 1 {
		c.Shards = DefaultShards
	}
}

// Train fits the model to the data. It returns the per-epoch mean
// log-likelihood (SGD) or training sequence accuracy (perceptron).
func (m *Model) Train(data []Sequence, cfg TrainConfig) []float64 {
	cfg.defaults()
	switch {
	case cfg.Method == "perceptron":
		return m.trainPerceptron(data, cfg)
	case cfg.Shards > 0:
		return m.trainShardedSGD(data, cfg)
	default:
		return m.trainSGD(data, cfg)
	}
}

// trainSGD maximizes conditional log-likelihood with per-parameter
// AdaGrad steps; gradients are exact (forward–backward) per sequence.
func (m *Model) trainSGD(data []Sequence, cfg TrainConfig) []float64 {
	rng := rand.New(rand.NewSource(cfg.Seed))
	L := m.L()
	bos := m.bos()

	// AdaGrad caches.
	emitCache := make(map[string][]float64)
	transCache := make([][]float64, L+1)
	for i := range transCache {
		transCache[i] = make([]float64, L)
	}
	endCache := make([]float64, L)

	const eps = 1e-8
	step := func(w *float64, g float64, cache *float64) {
		*cache += g * g
		*w += cfg.LearningRate * g / (math.Sqrt(*cache) + eps)
	}

	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	trace := make([]float64, 0, cfg.Epochs)
	for e := 0; e < cfg.Epochs; e++ {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		var llSum float64
		for _, di := range idx {
			seq := data[di]
			n := len(seq.Features)
			if n == 0 {
				continue
			}
			lat := m.forwardBackward(seq.Features)
			llSum += m.PathScore(seq.Features, seq.Labels) - lat.logZ

			// --- emission gradients: observed - expected ---
			for t := 0; t < n; t++ {
				gold := seq.Labels[t]
				for _, f := range seq.Features[t] {
					w, ok := m.Emit[f]
					if !ok {
						w = make([]float64, L)
						m.Emit[f] = w
						emitCache[f] = make([]float64, L)
					}
					c := emitCache[f]
					for y := 0; y < L; y++ {
						p := math.Exp(lat.alpha[t][y] + lat.beta[t][y] - lat.logZ)
						g := -p - cfg.L2*w[y]
						if y == gold {
							g += 1
						}
						step(&w[y], g, &c[y])
					}
				}
			}
			// --- transition gradients ---
			// BOS → y at t=0.
			for y := 0; y < L; y++ {
				p := math.Exp(lat.alpha[0][y] + lat.beta[0][y] - lat.logZ)
				g := -p - cfg.L2*m.Trans[bos][y]
				if y == seq.Labels[0] {
					g += 1
				}
				step(&m.Trans[bos][y], g, &transCache[bos][y])
			}
			// y' → y for t ≥ 1: pairwise marginals.
			for t := 1; t < n; t++ {
				for yp := 0; yp < L; yp++ {
					for y := 0; y < L; y++ {
						p := math.Exp(lat.alpha[t-1][yp] + m.Trans[yp][y] +
							lat.emit[t][y] + lat.beta[t][y] - lat.logZ)
						g := -p - cfg.L2*m.Trans[yp][y]
						if yp == seq.Labels[t-1] && y == seq.Labels[t] {
							g += 1
						}
						step(&m.Trans[yp][y], g, &transCache[yp][y])
					}
				}
			}
			// end transitions.
			for y := 0; y < L; y++ {
				p := math.Exp(lat.alpha[n-1][y] + m.TransEnd[y] - lat.logZ)
				g := -p - cfg.L2*m.TransEnd[y]
				if y == seq.Labels[n-1] {
					g += 1
				}
				step(&m.TransEnd[y], g, &endCache[y])
			}
		}
		if len(data) > 0 {
			trace = append(trace, llSum/float64(len(data)))
		}
	}
	return trace
}

// shardGrad accumulates the likelihood gradient of one data shard.
// Each shard owns its buffers; nothing here is shared across
// goroutines until the epoch barrier merges shards in index order.
type shardGrad struct {
	emit  map[string][]float64
	trans [][]float64
	end   []float64
	ll    float64
}

func newShardGrad(L int) *shardGrad {
	g := &shardGrad{
		emit:  make(map[string][]float64),
		trans: make([][]float64, L+1),
		end:   make([]float64, L),
	}
	for i := range g.trans {
		g.trans[i] = make([]float64, L)
	}
	return g
}

// accumulate adds the (observed − expected) gradient of one sequence,
// computed against the epoch-start weights of m (read-only here).
func (g *shardGrad) accumulate(m *Model, seq Sequence, bos, L int) {
	n := len(seq.Features)
	if n == 0 {
		return
	}
	lat := m.forwardBackward(seq.Features)
	g.ll += m.PathScore(seq.Features, seq.Labels) - lat.logZ

	for t := 0; t < n; t++ {
		gold := seq.Labels[t]
		for _, f := range seq.Features[t] {
			row, ok := g.emit[f]
			if !ok {
				row = make([]float64, L)
				g.emit[f] = row
			}
			for y := 0; y < L; y++ {
				p := math.Exp(lat.alpha[t][y] + lat.beta[t][y] - lat.logZ)
				row[y] -= p
				if y == gold {
					row[y]++
				}
			}
		}
	}
	for y := 0; y < L; y++ {
		p := math.Exp(lat.alpha[0][y] + lat.beta[0][y] - lat.logZ)
		g.trans[bos][y] -= p
		if y == seq.Labels[0] {
			g.trans[bos][y]++
		}
	}
	for t := 1; t < n; t++ {
		for yp := 0; yp < L; yp++ {
			for y := 0; y < L; y++ {
				p := math.Exp(lat.alpha[t-1][yp] + m.Trans[yp][y] +
					lat.emit[t][y] + lat.beta[t][y] - lat.logZ)
				g.trans[yp][y] -= p
				if yp == seq.Labels[t-1] && y == seq.Labels[t] {
					g.trans[yp][y]++
				}
			}
		}
	}
	for y := 0; y < L; y++ {
		p := math.Exp(lat.alpha[n-1][y] + m.TransEnd[y] - lat.logZ)
		g.end[y] -= p
		if y == seq.Labels[n-1] {
			g.end[y]++
		}
	}
}

// trainShardedSGD is the epoch-synchronous parallel trainer: per
// epoch, the shuffled data is cut into cfg.Shards contiguous chunks,
// each chunk's exact forward–backward gradient is accumulated into a
// private buffer on the worker pool, the buffers are merged in shard
// order (fixing the floating-point summation order), and a single
// AdaGrad step with L2 decay is applied per touched parameter.
//
// Numerically this is minibatch (one step per epoch) rather than the
// online trainer's one step per sequence, so the two converge to
// slightly different weights — but for a fixed (Seed, Shards) the
// result is byte-identical whether Workers is 1 or 64.
func (m *Model) trainShardedSGD(data []Sequence, cfg TrainConfig) []float64 {
	rng := rand.New(rand.NewSource(cfg.Seed))
	L := m.L()
	bos := m.bos()

	emitCache := make(map[string][]float64)
	transCache := make([][]float64, L+1)
	for i := range transCache {
		transCache[i] = make([]float64, L)
	}
	endCache := make([]float64, L)

	const eps = 1e-8
	step := func(w *float64, g float64, cache *float64) {
		*cache += g * g
		*w += cfg.LearningRate * g / (math.Sqrt(*cache) + eps)
	}

	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	trace := make([]float64, 0, cfg.Epochs)
	for e := 0; e < cfg.Epochs; e++ {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })

		// Gradient phase: shards read the epoch-start weights
		// concurrently and write only to their own buffers.
		grads := parallel.MapOrdered(cfg.Workers, parallel.Chunks(len(idx), cfg.Shards),
			func(_ int, r parallel.Range) *shardGrad {
				g := newShardGrad(L)
				for _, di := range idx[r.Lo:r.Hi] {
					g.accumulate(m, data[di], bos, L)
				}
				return g
			})

		// Barrier merge in shard order.
		total := newShardGrad(L)
		for _, g := range grads {
			total.ll += g.ll
			for f, row := range g.emit {
				acc, ok := total.emit[f]
				if !ok {
					acc = make([]float64, L)
					total.emit[f] = acc
				}
				for y := 0; y < L; y++ {
					acc[y] += row[y]
				}
			}
			for a := range g.trans {
				for b := range g.trans[a] {
					total.trans[a][b] += g.trans[a][b]
				}
			}
			for y := range g.end {
				total.end[y] += g.end[y]
			}
		}

		// Update phase (single goroutine). Parameters are independent
		// under AdaGrad, so map iteration order does not affect the
		// result.
		for f, grad := range total.emit {
			w, ok := m.Emit[f]
			if !ok {
				w = make([]float64, L)
				m.Emit[f] = w
				emitCache[f] = make([]float64, L)
			}
			c := emitCache[f]
			for y := 0; y < L; y++ {
				step(&w[y], grad[y]-cfg.L2*w[y], &c[y])
			}
		}
		for a := range total.trans {
			for b := range total.trans[a] {
				step(&m.Trans[a][b], total.trans[a][b]-cfg.L2*m.Trans[a][b], &transCache[a][b])
			}
		}
		for y := range total.end {
			step(&m.TransEnd[y], total.end[y]-cfg.L2*m.TransEnd[y], &endCache[y])
		}

		if len(data) > 0 {
			trace = append(trace, total.ll/float64(len(data)))
		}
	}
	return trace
}

// trainPerceptron runs the averaged structured perceptron: decode with
// Viterbi, promote the gold path, demote the predicted path.
func (m *Model) trainPerceptron(data []Sequence, cfg TrainConfig) []float64 {
	rng := rand.New(rand.NewSource(cfg.Seed))
	L := m.L()
	bos := m.bos()

	// Averaging accumulators (Daumé's trick).
	emitTot := make(map[string][]float64)
	emitStamp := make(map[string][]int)
	transTot := make([][]float64, L+1)
	transStamp := make([][]int, L+1)
	for i := range transTot {
		transTot[i] = make([]float64, L)
		transStamp[i] = make([]int, L)
	}
	endTot := make([]float64, L)
	endStamp := make([]int, L)
	tick := 0

	bumpEmit := func(f string, y int, d float64) {
		w, ok := m.Emit[f]
		if !ok {
			w = make([]float64, L)
			m.Emit[f] = w
			emitTot[f] = make([]float64, L)
			emitStamp[f] = make([]int, L)
		}
		emitTot[f][y] += float64(tick-emitStamp[f][y]) * w[y]
		emitStamp[f][y] = tick
		w[y] += d
	}
	bumpTrans := func(a, b int, d float64) {
		transTot[a][b] += float64(tick-transStamp[a][b]) * m.Trans[a][b]
		transStamp[a][b] = tick
		m.Trans[a][b] += d
	}
	bumpEnd := func(y int, d float64) {
		endTot[y] += float64(tick-endStamp[y]) * m.TransEnd[y]
		endStamp[y] = tick
		m.TransEnd[y] += d
	}

	idx := make([]int, len(data))
	for i := range idx {
		idx[i] = i
	}
	trace := make([]float64, 0, cfg.Epochs)
	for e := 0; e < cfg.Epochs; e++ {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		correct := 0
		for _, di := range idx {
			seq := data[di]
			n := len(seq.Features)
			if n == 0 {
				continue
			}
			tick++
			pred, _ := m.Decode(seq.Features)
			same := true
			for t := range pred {
				if pred[t] != seq.Labels[t] {
					same = false
					break
				}
			}
			if same {
				correct++
				continue
			}
			prevG, prevP := bos, bos
			for t := 0; t < n; t++ {
				g, p := seq.Labels[t], pred[t]
				if g != p {
					for _, f := range seq.Features[t] {
						bumpEmit(f, g, 1)
						bumpEmit(f, p, -1)
					}
				}
				if prevG != prevP || g != p {
					bumpTrans(prevG, g, 1)
					bumpTrans(prevP, p, -1)
				}
				prevG, prevP = g, p
			}
			if prevG != prevP {
				bumpEnd(prevG, 1)
				bumpEnd(prevP, -1)
			}
		}
		if len(data) > 0 {
			trace = append(trace, float64(correct)/float64(len(data)))
		}
	}
	// finalize averages.
	if tick > 0 {
		for f, w := range m.Emit {
			for y := range w {
				emitTot[f][y] += float64(tick-emitStamp[f][y]) * w[y]
				w[y] = emitTot[f][y] / float64(tick)
			}
		}
		for a := range m.Trans {
			for b := range m.Trans[a] {
				transTot[a][b] += float64(tick-transStamp[a][b]) * m.Trans[a][b]
				m.Trans[a][b] = transTot[a][b] / float64(tick)
			}
		}
		for y := range m.TransEnd {
			endTot[y] += float64(tick-endStamp[y]) * m.TransEnd[y]
			m.TransEnd[y] = endTot[y] / float64(tick)
		}
	}
	return trace
}
