package crf

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// syntheticData builds a small labeled corpus with a learnable
// structure: label = f(token class), tokens drawn from per-label
// vocabularies.
func syntheticData(n int, seed int64) ([]Sequence, []string) {
	labels := []string{"O", "B-X", "I-X"}
	vocab := [][]string{
		{"the", "a", "of", "and"},
		{"start", "begin", "open"},
		{"cont", "more", "tail"},
	}
	rng := rand.New(rand.NewSource(seed))
	data := make([]Sequence, n)
	for i := range data {
		ln := 3 + rng.Intn(5)
		seq := Sequence{Features: make([][]string, ln), Labels: make([]int, ln)}
		prev := 0
		for t := 0; t < ln; t++ {
			y := rng.Intn(3)
			if y == 2 && prev == 0 {
				y = 1
			}
			w := vocab[y][rng.Intn(len(vocab[y]))]
			seq.Features[t] = []string{"w=" + w, fmt.Sprintf("pos=%d", t%3)}
			seq.Labels[t] = y
			prev = y
		}
		data[i] = seq
	}
	return data, labels
}

func trainSharded(t *testing.T, shards, workers int) *Model {
	t.Helper()
	data, labels := syntheticData(60, 11)
	m := New(labels)
	m.Train(data, TrainConfig{Epochs: 4, Seed: 5, Shards: shards, Workers: workers})
	return m
}

func modelsEqual(a, b *Model) bool {
	return reflect.DeepEqual(a.Emit, b.Emit) &&
		reflect.DeepEqual(a.Trans, b.Trans) &&
		reflect.DeepEqual(a.TransEnd, b.TransEnd)
}

// TestShardedDeterministicAcrossWorkers is the core guarantee of the
// parallel trainer: for a fixed (Seed, Shards) the fitted weights are
// byte-identical at any worker count.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	base := trainSharded(t, 4, 1)
	for _, workers := range []int{2, 4, 8, 0} {
		m := trainSharded(t, 4, workers)
		if !modelsEqual(base, m) {
			t.Fatalf("shards=4: workers=%d produced different weights than workers=1", workers)
		}
	}
}

// TestShardedSingleShardMatchesAnyWorkers pins the degenerate case.
func TestShardedSingleShardMatchesAnyWorkers(t *testing.T) {
	if !modelsEqual(trainSharded(t, 1, 1), trainSharded(t, 1, 8)) {
		t.Fatal("shards=1 must be worker-count independent")
	}
}

// TestShardedLearns checks the minibatch trainer actually fits: the
// per-epoch mean log-likelihood must increase and decoding must beat
// chance on the training set.
func TestShardedLearns(t *testing.T) {
	data, labels := syntheticData(80, 3)
	m := New(labels)
	trace := m.Train(data, TrainConfig{Epochs: 8, Seed: 1, Shards: 4, Workers: 2})
	if len(trace) != 8 {
		t.Fatalf("want 8 epochs of trace, got %d", len(trace))
	}
	if trace[len(trace)-1] <= trace[0] {
		t.Fatalf("log-likelihood did not improve: %v", trace)
	}
	correct, total := 0, 0
	for _, seq := range data {
		pred, _ := m.Decode(seq.Features)
		for t2, y := range pred {
			if y == seq.Labels[t2] {
				correct++
			}
			total++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.8 {
		t.Fatalf("sharded trainer token accuracy %.3f < 0.8", acc)
	}
}

// TestWorkersImpliesSharding: Workers > 1 with Shards unset must route
// to the deterministic sharded path with DefaultShards.
func TestWorkersImpliesSharding(t *testing.T) {
	data, labels := syntheticData(40, 9)
	a := New(labels)
	a.Train(data, TrainConfig{Epochs: 3, Seed: 2, Workers: 4})
	b := New(labels)
	b.Train(data, TrainConfig{Epochs: 3, Seed: 2, Shards: DefaultShards, Workers: 1})
	if !modelsEqual(a, b) {
		t.Fatal("Workers>1 with Shards=0 must behave as Shards=DefaultShards")
	}
}
