// Package cuisine predicts a recipe's cuisine from its mined
// ingredient names — one of the use cases the paper's introduction
// gives for accurate ingredient-section modeling ("food pairing,
// flavor prediction, nutritional estimation, cost estimation and
// cuisine prediction", §I). The classifier is multinomial naive Bayes
// with add-one smoothing over ingredient-name features.
package cuisine

import (
	"math"
	"sort"
	"strings"
)

// Classifier is a multinomial naive Bayes cuisine model.
type Classifier struct {
	cuisines []string
	prior    map[string]float64
	// counts[cuisine][ingredient] and totals[cuisine].
	counts map[string]map[string]float64
	totals map[string]float64
	vocab  map[string]bool
}

// Example is one training instance: the mined ingredient names of a
// recipe and its cuisine label.
type Example struct {
	Ingredients []string
	Cuisine     string
}

// Train fits the classifier.
func Train(examples []Example) *Classifier {
	c := &Classifier{
		prior:  map[string]float64{},
		counts: map[string]map[string]float64{},
		totals: map[string]float64{},
		vocab:  map[string]bool{},
	}
	for _, ex := range examples {
		if ex.Cuisine == "" {
			continue
		}
		if c.counts[ex.Cuisine] == nil {
			c.counts[ex.Cuisine] = map[string]float64{}
			c.cuisines = append(c.cuisines, ex.Cuisine)
		}
		c.prior[ex.Cuisine]++
		for _, ing := range ex.Ingredients {
			ing = strings.ToLower(strings.TrimSpace(ing))
			if ing == "" {
				continue
			}
			c.counts[ex.Cuisine][ing]++
			c.totals[ex.Cuisine]++
			c.vocab[ing] = true
		}
	}
	sort.Strings(c.cuisines)
	total := 0.0
	for _, n := range c.prior {
		total += n
	}
	for k := range c.prior {
		c.prior[k] /= total
	}
	return c
}

// Cuisines returns the label inventory seen in training.
func (c *Classifier) Cuisines() []string {
	return append([]string(nil), c.cuisines...)
}

// Scores returns the per-cuisine log-posterior (unnormalized) for a
// set of ingredient names, sorted descending.
func (c *Classifier) Scores(ingredients []string) []Scored {
	v := float64(len(c.vocab))
	out := make([]Scored, 0, len(c.cuisines))
	for _, cu := range c.cuisines {
		s := math.Log(c.prior[cu])
		for _, ing := range ingredients {
			ing = strings.ToLower(strings.TrimSpace(ing))
			if ing == "" || !c.vocab[ing] {
				continue // unseen ingredients carry no signal
			}
			s += math.Log((c.counts[cu][ing] + 1) / (c.totals[cu] + v))
		}
		out = append(out, Scored{Cuisine: cu, LogProb: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LogProb != out[j].LogProb {
			return out[i].LogProb > out[j].LogProb
		}
		return out[i].Cuisine < out[j].Cuisine
	})
	return out
}

// Scored pairs a cuisine with its log-posterior.
type Scored struct {
	Cuisine string
	LogProb float64
}

// Predict returns the most probable cuisine, or "" for an untrained
// classifier.
func (c *Classifier) Predict(ingredients []string) string {
	scores := c.Scores(ingredients)
	if len(scores) == 0 {
		return ""
	}
	return scores[0].Cuisine
}

// Accuracy evaluates the classifier on held-out examples.
func (c *Classifier) Accuracy(examples []Example) float64 {
	if len(examples) == 0 {
		return 0
	}
	correct := 0
	for _, ex := range examples {
		if c.Predict(ex.Ingredients) == ex.Cuisine {
			correct++
		}
	}
	return float64(correct) / float64(len(examples))
}
