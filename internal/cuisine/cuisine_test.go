package cuisine

import (
	"testing"

	"recipemodel/internal/recipedb"
)

func synthetic(n int, seed int64) []Example {
	g := recipedb.NewGenerator(recipedb.SourceAllRecipes, seed)
	out := make([]Example, 0, n)
	for _, r := range g.Recipes(n) {
		ex := Example{Cuisine: r.Cuisine}
		for _, p := range r.Ingredients {
			ex.Ingredients = append(ex.Ingredients, p.Name)
		}
		out = append(out, ex)
	}
	return out
}

func TestTrainPredictToy(t *testing.T) {
	c := Train([]Example{
		{Ingredients: []string{"soy sauce", "ginger", "rice"}, Cuisine: "Chinese"},
		{Ingredients: []string{"soy sauce", "scallion", "rice"}, Cuisine: "Chinese"},
		{Ingredients: []string{"tomato", "basil", "pasta"}, Cuisine: "Italian"},
		{Ingredients: []string{"tomato", "mozzarella", "pasta"}, Cuisine: "Italian"},
	})
	if got := c.Predict([]string{"soy sauce", "rice"}); got != "Chinese" {
		t.Fatalf("Predict = %q", got)
	}
	if got := c.Predict([]string{"basil", "tomato"}); got != "Italian" {
		t.Fatalf("Predict = %q", got)
	}
	if len(c.Cuisines()) != 2 {
		t.Fatalf("cuisines = %v", c.Cuisines())
	}
}

func TestPredictUntrained(t *testing.T) {
	c := Train(nil)
	if got := c.Predict([]string{"salt"}); got != "" {
		t.Fatalf("untrained Predict = %q", got)
	}
	if acc := c.Accuracy(nil); acc != 0 {
		t.Fatalf("empty accuracy = %v", acc)
	}
}

func TestScoresSortedAndComplete(t *testing.T) {
	c := Train(synthetic(200, 1))
	scores := c.Scores([]string{"tomato", "garlic"})
	if len(scores) != len(c.Cuisines()) {
		t.Fatalf("scores = %d, cuisines = %d", len(scores), len(c.Cuisines()))
	}
	for i := 1; i < len(scores); i++ {
		if scores[i].LogProb > scores[i-1].LogProb {
			t.Fatal("scores not sorted")
		}
	}
}

func TestLearnsCuisineSignal(t *testing.T) {
	// the generator gives each cuisine a signature ingredient pool, so
	// a naive-Bayes classifier must beat the 1/40 random baseline by a
	// wide margin on held-out recipes.
	train := synthetic(3000, 2)
	test := synthetic(600, 3)
	c := Train(train)
	acc := c.Accuracy(test)
	if acc < 0.25 {
		t.Fatalf("held-out accuracy %.3f barely beats the 0.025 baseline", acc)
	}
}

func TestUnseenIngredientsIgnored(t *testing.T) {
	c := Train([]Example{
		{Ingredients: []string{"kimchi"}, Cuisine: "Korean"},
		{Ingredients: []string{"pasta"}, Cuisine: "Italian"},
	})
	// purely unseen evidence → decision falls back to priors (ties by
	// name, deterministic).
	got := c.Predict([]string{"zzz-unseen"})
	if got != "Italian" && got != "Korean" {
		t.Fatalf("Predict = %q", got)
	}
}
