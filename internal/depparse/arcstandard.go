package depparse

import (
	"sort"
	"strconv"
	"strings"

	"recipemodel/internal/perceptron"
)

// ArcStandardParser is a learned transition-based dependency parser
// (arc-standard system with an averaged-perceptron action classifier)
// — the same model family as the SpaCy parser the paper uses. It is
// trained by imitation of gold trees (here: the deterministic rule
// parser over synthetic instructions), giving the repository both a
// rule-driven and a learned parsing backend to compare.
type ArcStandardParser struct {
	model *perceptron.Model
}

// transition actions. Labeled arcs: actions are "S" (shift),
// "L:<label>" (left-arc), "R:<label>" (right-arc).
const shiftAction = "S"

// parserState is an arc-standard configuration over n tokens plus the
// virtual root (index n).
type parserState struct {
	stack  []int
	buffer int // next buffer index; buffer is [buffer, n)
	n      int
	heads  []int
	labels []string
}

func newState(n int) *parserState {
	s := &parserState{
		stack:  []int{n}, // virtual root at the bottom
		buffer: 0,
		n:      n,
		heads:  make([]int, n),
		labels: make([]string, n),
	}
	for i := range s.heads {
		s.heads[i] = -2
	}
	return s
}

func (s *parserState) done() bool {
	return s.buffer >= s.n && len(s.stack) == 1
}

// canShift / canLeft / canRight report action validity.
func (s *parserState) canShift() bool { return s.buffer < s.n }
func (s *parserState) canLeft() bool {
	// left-arc head = top, dependent = second; the virtual root may
	// never become a dependent.
	return len(s.stack) >= 2 && s.stack[len(s.stack)-2] != s.n
}
func (s *parserState) canRight() bool { return len(s.stack) >= 2 }

func (s *parserState) apply(action string) {
	switch {
	case action == shiftAction:
		s.stack = append(s.stack, s.buffer)
		s.buffer++
	case strings.HasPrefix(action, "L:"):
		top := s.stack[len(s.stack)-1]
		second := s.stack[len(s.stack)-2]
		s.heads[second] = normalizeHead(top, s.n)
		s.labels[second] = action[2:]
		s.stack = append(s.stack[:len(s.stack)-2], top)
	case strings.HasPrefix(action, "R:"):
		top := s.stack[len(s.stack)-1]
		second := s.stack[len(s.stack)-2]
		s.heads[top] = normalizeHead(second, s.n)
		s.labels[top] = action[2:]
		s.stack = s.stack[:len(s.stack)-1]
	}
}

// normalizeHead maps the virtual root index to -1.
func normalizeHead(h, n int) int {
	if h == n {
		return -1
	}
	return h
}

// features extracts the action-classifier features for a state.
func stateFeatures(s *parserState, tokens, tags []string) []string {
	word := func(i int) string {
		switch {
		case i == s.n:
			return "-ROOT-"
		case i < 0 || i > s.n:
			return "-NONE-"
		default:
			return strings.ToLower(tokens[i])
		}
	}
	tag := func(i int) string {
		switch {
		case i == s.n:
			return "ROOT"
		case i < 0 || i > s.n:
			return "NONE"
		default:
			return tags[i]
		}
	}
	s1, s2 := -10, -10
	if len(s.stack) >= 1 {
		s1 = s.stack[len(s.stack)-1]
	}
	if len(s.stack) >= 2 {
		s2 = s.stack[len(s.stack)-2]
	}
	b1, b2 := -10, -10
	if s.buffer < s.n {
		b1 = s.buffer
	}
	if s.buffer+1 < s.n {
		b2 = s.buffer + 1
	}
	dist := "-"
	if s1 >= 0 && s2 >= 0 && s1 != s.n && s2 != s.n {
		d := s1 - s2
		if d < 0 {
			d = -d
		}
		if d > 4 {
			d = 4
		}
		dist = strconv.Itoa(d)
	}
	return []string{
		"bias",
		"s1w=" + word(s1), "s1t=" + tag(s1),
		"s2w=" + word(s2), "s2t=" + tag(s2),
		"b1w=" + word(b1), "b1t=" + tag(b1),
		"b2t=" + tag(b2),
		"s1ts2t=" + tag(s1) + "|" + tag(s2),
		"s1tb1t=" + tag(s1) + "|" + tag(b1),
		"s1ws2t=" + word(s1) + "|" + tag(s2),
		"s2ws1t=" + word(s2) + "|" + tag(s1),
		"s1ts2tb1t=" + tag(s1) + "|" + tag(s2) + "|" + tag(b1),
		"dist=" + dist,
	}
}

// oracle returns the gold action for a state under a projective gold
// tree (static arc-standard oracle).
func oracle(s *parserState, goldHeads []int, goldLabels []string) string {
	if len(s.stack) >= 2 {
		top := s.stack[len(s.stack)-1]
		second := s.stack[len(s.stack)-2]
		// LEFT: second's head is top.
		if second != s.n && goldHead(goldHeads, second, s.n) == top {
			return "L:" + goldLabels[second]
		}
		// RIGHT: top's head is second, and all of top's gold dependents
		// are already attached.
		if top != s.n && goldHead(goldHeads, top, s.n) == second {
			ready := true
			for d := 0; d < s.n; d++ {
				if goldHead(goldHeads, d, s.n) == top && s.heads[d] == -2 {
					ready = false
					break
				}
			}
			if ready {
				return "R:" + goldLabels[top]
			}
		}
	}
	if s.canShift() {
		return shiftAction
	}
	// non-projective or malformed gold: force a right-arc to unwind.
	if s.canRight() {
		top := s.stack[len(s.stack)-1]
		if top != s.n {
			return "R:" + Dep
		}
	}
	return shiftAction
}

// goldHead maps -1 (root) to the virtual root index n.
func goldHead(heads []int, i, n int) int {
	if heads[i] == -1 {
		return n
	}
	return heads[i]
}

// TrainArcStandard fits the action classifier by imitation of gold
// trees. Epochs defaults to 5.
func TrainArcStandard(trees []*Tree, epochs int, seed int64) *ArcStandardParser {
	if epochs <= 0 {
		epochs = 5
	}
	// collect the action inventory from the gold trees.
	actionSet := map[string]bool{shiftAction: true}
	for _, t := range trees {
		for _, l := range t.Labels {
			actionSet["L:"+l] = true
			actionSet["R:"+l] = true
		}
	}
	actions := make([]string, 0, len(actionSet))
	for a := range actionSet {
		actions = append(actions, a)
	}
	sort.Strings(actions)
	model := perceptron.New(actions)

	var examples []perceptron.Example
	for _, t := range trees {
		n := len(t.Tokens)
		if n == 0 {
			continue
		}
		s := newState(n)
		for steps := 0; !s.done() && steps < 4*n+8; steps++ {
			gold := oracle(s, t.Heads, t.Labels)
			examples = append(examples, perceptron.Example{
				Features: stateFeatures(s, t.Tokens, t.POS),
				Class:    model.ClassID(gold),
			})
			s.apply(gold)
		}
	}
	model.Train(examples, perceptron.TrainConfig{Epochs: epochs, Seed: seed})
	return &ArcStandardParser{model: model}
}

// Parse runs the greedy learned parser.
func (p *ArcStandardParser) Parse(tokens, tags []string) *Tree {
	n := len(tokens)
	t := &Tree{Tokens: tokens, POS: tags, Heads: make([]int, n), Labels: make([]string, n)}
	if n == 0 {
		return t
	}
	s := newState(n)
	for steps := 0; !s.done() && steps < 4*n+8; steps++ {
		scores := p.model.Scores(stateFeatures(s, tokens, tags))
		best, bestScore := "", 0.0
		for ci, a := range p.model.Classes {
			valid := false
			switch {
			case a == shiftAction:
				valid = s.canShift()
			case strings.HasPrefix(a, "L:"):
				valid = s.canLeft()
			case strings.HasPrefix(a, "R:"):
				valid = s.canRight() &&
					!(s.stack[len(s.stack)-1] == s.n) // root never a dependent
			}
			if !valid {
				continue
			}
			if best == "" || scores[ci] > bestScore {
				best = a
				bestScore = scores[ci]
			}
		}
		if best == "" {
			break
		}
		s.apply(best)
	}
	copy(t.Heads, s.heads)
	copy(t.Labels, s.labels)
	// repair any unattached tokens (can happen on early loop exit).
	root := -1
	for i, h := range t.Heads {
		if h == -1 {
			root = i
			break
		}
	}
	if root == -1 {
		for i, h := range t.Heads {
			if h == -2 {
				t.Heads[i] = -1
				t.Labels[i] = Root
				root = i
				break
			}
		}
		if root == -1 {
			t.Heads[0] = -1
			t.Labels[0] = Root
			root = 0
		}
	}
	for i, h := range t.Heads {
		if h == -2 {
			t.Heads[i] = root
			if i == root {
				t.Heads[i] = -1
			} else {
				t.Labels[i] = Dep
			}
		}
	}
	// exactly one root.
	seenRoot := false
	for i, h := range t.Heads {
		if h == -1 {
			if seenRoot {
				t.Heads[i] = root
				t.Labels[i] = Dep
			} else {
				seenRoot = true
				t.Labels[i] = Root
			}
		}
	}
	return t
}

// UAS computes unlabeled attachment agreement between two parses of
// the same sentence set.
func UAS(gold, pred []*Tree) float64 {
	var correct, total int
	for i := range gold {
		for j := range gold[i].Heads {
			if j < len(pred[i].Heads) && gold[i].Heads[j] == pred[i].Heads[j] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// LAS computes labeled attachment agreement.
func LAS(gold, pred []*Tree) float64 {
	var correct, total int
	for i := range gold {
		for j := range gold[i].Heads {
			if j < len(pred[i].Heads) &&
				gold[i].Heads[j] == pred[i].Heads[j] &&
				gold[i].Labels[j] == pred[i].Labels[j] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}
