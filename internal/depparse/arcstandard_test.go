package depparse

import (
	"testing"

	"recipemodel/internal/postag"
	"recipemodel/internal/recipedb"
)

// instructionTrees parses synthetic instructions with the rule parser,
// producing the imitation-learning corpus.
func instructionTrees(n int, seed int64) []*Tree {
	g := recipedb.NewGenerator(recipedb.SourceAllRecipes, seed)
	tagger := postag.Default()
	var out []*Tree
	for _, in := range g.Instructions(n) {
		tags := tagger.Tag(in.Tokens)
		out = append(out, Parse(in.Tokens, tags))
	}
	return out
}

func TestArcStandardLearnsRuleParser(t *testing.T) {
	train := instructionTrees(600, 1)
	test := instructionTrees(150, 2)
	p := TrainArcStandard(train, 5, 3)

	pred := make([]*Tree, len(test))
	for i, g := range test {
		pred[i] = p.Parse(g.Tokens, g.POS)
	}
	uas := UAS(test, pred)
	las := LAS(test, pred)
	if uas < 0.85 {
		t.Fatalf("UAS = %.4f, want >= 0.85", uas)
	}
	if las < 0.80 {
		t.Fatalf("LAS = %.4f, want >= 0.80", las)
	}
	if las > uas+1e-9 {
		t.Fatal("LAS cannot exceed UAS")
	}
}

func TestArcStandardWellFormedOutput(t *testing.T) {
	p := TrainArcStandard(instructionTrees(300, 4), 3, 5)
	for _, g := range instructionTrees(80, 6) {
		tr := p.Parse(g.Tokens, g.POS)
		roots := 0
		for i, h := range tr.Heads {
			if h == -1 {
				roots++
				continue
			}
			if h < 0 || h >= len(tr.Tokens) || h == i {
				t.Fatalf("bad head %d at %d in %v", h, i, tr.Tokens)
			}
		}
		if roots != 1 {
			t.Fatalf("%d roots in %v", roots, tr.Tokens)
		}
	}
}

func TestArcStandardEmptyAndTiny(t *testing.T) {
	p := TrainArcStandard(instructionTrees(100, 7), 2, 8)
	if tr := p.Parse(nil, nil); len(tr.Heads) != 0 {
		t.Fatal("empty parse")
	}
	tr := p.Parse([]string{"Serve"}, []string{"VB"})
	if tr.Heads[0] != -1 {
		t.Fatalf("single-token parse: %+v", tr)
	}
}

func TestOracleReconstructsTree(t *testing.T) {
	// running the oracle to completion must reproduce the gold tree.
	for _, g := range instructionTrees(60, 9) {
		n := len(g.Tokens)
		s := newState(n)
		for steps := 0; !s.done() && steps < 4*n+8; steps++ {
			s.apply(oracle(s, g.Heads, g.Labels))
		}
		for i := range g.Heads {
			if s.heads[i] == -2 {
				t.Fatalf("oracle left token %d unattached in %v", i, g.Tokens)
			}
			if s.heads[i] != g.Heads[i] {
				// non-projective trees are legitimately unreachable; the
				// rule parser can produce a handful. Tolerate only those.
				if isProjective(g) {
					t.Fatalf("oracle mismatch at %d: %d vs %d in %v",
						i, s.heads[i], g.Heads[i], g.Tokens)
				}
				break
			}
		}
	}
}

// isProjective checks the no-crossing-arcs property.
func isProjective(t *Tree) bool {
	type arc struct{ lo, hi int }
	var arcs []arc
	for d, h := range t.Heads {
		if h < 0 {
			continue
		}
		lo, hi := d, h
		if lo > hi {
			lo, hi = hi, lo
		}
		arcs = append(arcs, arc{lo, hi})
	}
	for i := 0; i < len(arcs); i++ {
		for j := i + 1; j < len(arcs); j++ {
			a, b := arcs[i], arcs[j]
			if a.lo < b.lo && b.lo < a.hi && a.hi < b.hi {
				return false
			}
			if b.lo < a.lo && a.lo < b.hi && b.hi < a.hi {
				return false
			}
		}
	}
	return true
}

func TestUASAndLAS(t *testing.T) {
	a := &Tree{Heads: []int{-1, 0, 0}, Labels: []string{Root, Dobj, Punct}}
	b := &Tree{Heads: []int{-1, 0, 1}, Labels: []string{Root, Prep, Punct}}
	if got := UAS([]*Tree{a}, []*Tree{b}); got < 0.66 || got > 0.67 {
		t.Fatalf("UAS = %v", got)
	}
	if got := LAS([]*Tree{a}, []*Tree{b}); got < 0.33 || got > 0.34 {
		t.Fatalf("LAS = %v", got)
	}
	if UAS(nil, nil) != 0 || LAS(nil, nil) != 0 {
		t.Fatal("empty agreement should be 0")
	}
}
