// Package depparse implements a deterministic dependency parser for
// imperative recipe instructions, producing the arc types the paper's
// relation-extraction stage consumes from SpaCy (§III.B, Fig 3):
// root, conj between coordinated verbs, dobj/nsubj on noun heads,
// prep/pobj chains, and the usual NP-internal relations (det, amod,
// nummod, compound).
//
// The parser is rule-driven over POS tags. Recipe instructions are
// short imperative clauses with a rigid structure ("Bring water to a
// boil in a large pot"), which a grammar of chunking plus attachment
// rules recovers reliably — and deterministically, which matters for
// reproducibility.
package depparse

import (
	"fmt"
	"strings"
)

// Dependency relation labels.
const (
	Root     = "root"
	Dobj     = "dobj"
	Nsubj    = "nsubj"
	Conj     = "conj"
	CC       = "cc"
	Det      = "det"
	Amod     = "amod"
	Nummod   = "nummod"
	Compound = "compound"
	Prep     = "prep"
	Pobj     = "pobj"
	Advmod   = "advmod"
	Prt      = "prt"
	Punct    = "punct"
	Dep      = "dep"
	Acomp    = "acomp"
	Mark     = "mark"
	Advcl    = "advcl"
)

// Tree is a dependency parse: Heads[i] is the index of token i's head
// (-1 for the root), Labels[i] the relation to that head.
type Tree struct {
	Tokens []string
	POS    []string
	Heads  []int
	Labels []string
}

// RootIndex returns the index of the root token, or -1 on an empty
// tree.
func (t *Tree) RootIndex() int {
	for i, h := range t.Heads {
		if h == -1 {
			return i
		}
	}
	return -1
}

// Children returns the indices whose head is i, in order.
func (t *Tree) Children(i int) []int {
	var out []int
	for j, h := range t.Heads {
		if h == i {
			out = append(out, j)
		}
	}
	return out
}

// ChildrenByLabel returns children of i holding the given relation.
func (t *Tree) ChildrenByLabel(i int, label string) []int {
	var out []int
	for j, h := range t.Heads {
		if h == i && t.Labels[j] == label {
			out = append(out, j)
		}
	}
	return out
}

// isVerbTag reports a verb POS (any VB*).
func isVerbTag(tag string) bool { return strings.HasPrefix(tag, "VB") }

// isNounTag reports a noun POS (any NN*) or pronoun.
func isNounTag(tag string) bool {
	return strings.HasPrefix(tag, "NN") || tag == "PRP"
}

func isPrepTag(tag string) bool { return tag == "IN" || tag == "TO" }

// Parse builds the dependency tree for tokens with the given POS tags.
// len(tokens) must equal len(tags).
func Parse(tokens, tags []string) *Tree {
	n := len(tokens)
	if n != len(tags) {
		panic(fmt.Sprintf("depparse: %d tokens vs %d tags", n, len(tags)))
	}
	t := &Tree{
		Tokens: tokens,
		POS:    tags,
		Heads:  make([]int, n),
		Labels: make([]string, n),
	}
	if n == 0 {
		return t
	}
	for i := range t.Heads {
		t.Heads[i] = -2 // unattached sentinel
	}

	// --- 1. chunk noun phrases and pick their heads ---
	npHead := make([]int, n) // npHead[i] = head index of the NP containing i, or -1
	for i := range npHead {
		npHead[i] = -1
	}
	i := 0
	for i < n {
		if !npStart(tags[i]) {
			i++
			continue
		}
		j := i
		for j < n && npInternal(tags[j]) {
			j++
		}
		// head of the chunk = last noun in [i, j); if no noun, last token.
		head := -1
		for k := j - 1; k >= i; k-- {
			if isNounTag(tags[k]) {
				head = k
				break
			}
		}
		if head == -1 {
			head = j - 1
		}
		for k := i; k < j; k++ {
			npHead[k] = head
		}
		// NP-internal attachments.
		for k := i; k < j; k++ {
			if k == head {
				continue
			}
			t.Heads[k] = head
			switch {
			case tags[k] == "DT" || tags[k] == "PDT" || tags[k] == "PRP$":
				t.Labels[k] = Det
			case tags[k] == "CD":
				t.Labels[k] = Nummod
			case tags[k] == "JJ" || tags[k] == "JJR" || tags[k] == "JJS" ||
				tags[k] == "VBN" || tags[k] == "VBG":
				t.Labels[k] = Amod
			case isNounTag(tags[k]):
				t.Labels[k] = Compound
			case tags[k] == "RB":
				t.Labels[k] = Advmod
			default:
				t.Labels[k] = Dep
			}
		}
		i = j
	}

	// --- 2. find the verbs; first verb is the root ---
	var verbs []int
	for k := 0; k < n; k++ {
		if isVerbTag(tags[k]) && npHead[k] == -1 {
			verbs = append(verbs, k)
		}
	}
	root := -1
	if len(verbs) > 0 {
		root = verbs[0]
	} else {
		// verbless fragment: root the first NP head, else token 0.
		for k := 0; k < n; k++ {
			if npHead[k] == k {
				root = k
				break
			}
		}
		if root == -1 {
			root = 0
		}
	}
	t.Heads[root] = -1
	t.Labels[root] = Root

	// later verbs: conjuncts of the previous verb.
	for vi := 1; vi < len(verbs); vi++ {
		t.Heads[verbs[vi]] = verbs[vi-1]
		t.Labels[verbs[vi]] = Conj
	}

	// --- 3. attach prepositions and their objects ---
	// prepAt[k] = true marks prepositions; their pobj is the next NP head.
	for k := 0; k < n; k++ {
		if !isPrepTag(tags[k]) || npHead[k] != -1 || t.Heads[k] != -2 {
			continue
		}
		// subordinating use: "until golden", "while stirring" → mark/advcl
		// handled below; standard prep attaches to nearest verb or noun
		// to the left.
		gov := nearestGovernor(t, npHead, verbs, k)
		t.Heads[k] = gov
		t.Labels[k] = Prep
		// object: first NP head or verb (gerund) to the right before the
		// next preposition/verb boundary.
		obj := -1
		for m := k + 1; m < n; m++ {
			if npHead[m] == m {
				obj = m
				break
			}
			if isPrepTag(tags[m]) && npHead[m] == -1 {
				break
			}
			if isVerbTag(tags[m]) && npHead[m] == -1 {
				if tags[m] == "VBG" {
					obj = m
				}
				break
			}
		}
		if obj >= 0 && t.Heads[obj] == -2 {
			t.Heads[obj] = k
			t.Labels[obj] = Pobj
		}
	}

	// --- 4. attach remaining NP heads to verbs ---
	for k := 0; k < n; k++ {
		if npHead[k] != k || t.Heads[k] != -2 {
			continue
		}
		// find nearest verb to the left → dobj; if none, nearest verb to
		// the right → nsubj ("water boils").
		leftVerb := -1
		for _, v := range verbs {
			if v < k {
				leftVerb = v
			}
		}
		if leftVerb >= 0 {
			// conjoined object? if there is an already-attached NP head
			// between leftVerb and k separated only by CC/comma, attach as
			// conj to that NP instead.
			if cj := conjTarget(t, tags, npHead, leftVerb, k); cj >= 0 {
				t.Heads[k] = cj
				t.Labels[k] = Conj
			} else {
				t.Heads[k] = leftVerb
				t.Labels[k] = Dobj
			}
			continue
		}
		rightVerb := -1
		for _, v := range verbs {
			if v > k {
				rightVerb = v
				break
			}
		}
		if rightVerb >= 0 {
			t.Heads[k] = rightVerb
			t.Labels[k] = Nsubj
		} else if k != root {
			// verbless fragment ("salt and pepper to taste"): coordinate
			// with an earlier attached NP head when only CC/comma
			// intervenes, else attach loosely to the root.
			if cj := conjTarget(t, tags, npHead, root-1, k); cj >= 0 && cj != k {
				t.Heads[k] = cj
				t.Labels[k] = Conj
			} else {
				t.Heads[k] = root
				t.Labels[k] = Dep
			}
		}
	}

	// --- 5. everything else ---
	for k := 0; k < n; k++ {
		if t.Heads[k] != -2 {
			continue
		}
		gov := nearestGovernor(t, npHead, verbs, k)
		t.Heads[k] = gov
		switch {
		case tags[k] == "RB" || tags[k] == "RBR" || tags[k] == "RBS":
			t.Labels[k] = Advmod
		case tags[k] == "RP":
			t.Labels[k] = Prt
		case tags[k] == "CC":
			t.Labels[k] = CC
		case tags[k] == "JJ":
			t.Labels[k] = Acomp
		case tags[k] == "." || tags[k] == "," || tags[k] == ":" ||
			tokens[k] == "." || tokens[k] == "," || tokens[k] == ";":
			t.Labels[k] = Punct
		default:
			t.Labels[k] = Dep
		}
	}
	// safety: no -2 heads remain, and exactly one root.
	for k := range t.Heads {
		if t.Heads[k] == -2 {
			t.Heads[k] = root
			t.Labels[k] = Dep
		}
	}
	return t
}

// npStart reports whether a chunk may begin at this tag.
func npStart(tag string) bool {
	switch tag {
	case "DT", "PDT", "PRP$", "CD", "JJ", "JJR", "JJS":
		return true
	}
	return isNounTag(tag)
}

// npInternal reports whether the tag may continue an NP chunk.
func npInternal(tag string) bool {
	switch tag {
	case "DT", "PDT", "PRP$", "CD", "JJ", "JJR", "JJS", "VBN":
		return true
	}
	return isNounTag(tag)
}

// nearestGovernor picks the closest verb to the left, else the closest
// NP head to the left, else the closest verb to the right, else 0-ish
// root fallback.
func nearestGovernor(t *Tree, npHead []int, verbs []int, k int) int {
	for m := k - 1; m >= 0; m-- {
		if isVerbTag(t.POS[m]) && npHead[m] == -1 {
			return m
		}
	}
	for m := k - 1; m >= 0; m-- {
		if npHead[m] == m {
			return m
		}
	}
	for m := k + 1; m < len(t.POS); m++ {
		if isVerbTag(t.POS[m]) && npHead[m] == -1 {
			return m
		}
	}
	if r := t.RootIndex(); r >= 0 && r != k {
		return r
	}
	if k > 0 {
		return k - 1
	}
	if k+1 < len(t.POS) {
		return k + 1
	}
	return -1
}

// conjTarget looks for an NP head attached between verb v and k with
// only CC/comma/NP material between it and k — the "potatoes and
// carrots" pattern — and returns it, or -1.
func conjTarget(t *Tree, tags []string, npHead []int, v, k int) int {
	sawCC := false
	for m := k - 1; m > v; m-- {
		switch {
		case tags[m] == "CC" || tags[m] == ",":
			sawCC = true
		case npHead[m] == m && t.Heads[m] != -2:
			if sawCC {
				return m
			}
			return -1
		case npHead[m] != -1:
			// inside an NP chunk: keep scanning.
		default:
			return -1
		}
	}
	return -1
}
