package depparse

import (
	"strings"
	"testing"
)

// tagged is a convenience for hand-tagged inputs.
func parse(t *testing.T, text, tagstr string) *Tree {
	t.Helper()
	tokens := strings.Fields(text)
	tags := strings.Fields(tagstr)
	if len(tokens) != len(tags) {
		t.Fatalf("bad fixture: %d tokens vs %d tags", len(tokens), len(tags))
	}
	return Parse(tokens, tags)
}

func label(tr *Tree, tok string) (string, int) {
	for i, w := range tr.Tokens {
		if w == tok {
			return tr.Labels[i], tr.Heads[i]
		}
	}
	return "", -99
}

func TestParseBringWaterToABoil(t *testing.T) {
	// the paper's running example (Figs 3–5).
	tr := parse(t,
		"Bring water to a boil in a large pot",
		"VB NN TO DT NN IN DT JJ NN")
	if tr.RootIndex() != 0 {
		t.Fatalf("root = %d", tr.RootIndex())
	}
	if l, h := label(tr, "water"); l != Dobj || h != 0 {
		t.Errorf("water: %s → %d", l, h)
	}
	if l, h := label(tr, "to"); l != Prep || h != 0 {
		t.Errorf("to: %s → %d", l, h)
	}
	if l, h := label(tr, "boil"); l != Pobj || h != 2 {
		t.Errorf("boil: %s → %d", l, h)
	}
	if l, h := label(tr, "in"); l != Prep || h != 0 {
		t.Errorf("in: %s → %d", l, h)
	}
	if l, h := label(tr, "pot"); l != Pobj || h != 5 {
		t.Errorf("pot: %s → %d", l, h)
	}
	if l, h := label(tr, "large"); l != Amod || h != 8 {
		t.Errorf("large: %s → %d", l, h)
	}
}

func TestParseConjoinedObjects(t *testing.T) {
	tr := parse(t,
		"fry the potatoes and carrots in a pan",
		"VB DT NNS CC NNS IN DT NN")
	if l, h := label(tr, "potatoes"); l != Dobj || h != 0 {
		t.Errorf("potatoes: %s → %d", l, h)
	}
	if l, h := label(tr, "carrots"); l != Conj || h != 2 {
		t.Errorf("carrots: %s → %d", l, h)
	}
	if l, _ := label(tr, "and"); l != CC {
		t.Errorf("and: %s", l)
	}
	if l, h := label(tr, "pan"); l != Pobj || h != 5 {
		t.Errorf("pan: %s → %d", l, h)
	}
}

func TestParseConjoinedVerbs(t *testing.T) {
	tr := parse(t,
		"drain and serve the pasta",
		"VB CC VB DT NN")
	if tr.RootIndex() != 0 {
		t.Fatalf("root = %d", tr.RootIndex())
	}
	if l, h := label(tr, "serve"); l != Conj || h != 0 {
		t.Errorf("serve: %s → %d", l, h)
	}
	if l, h := label(tr, "pasta"); l != Dobj || h != 2 {
		t.Errorf("pasta: %s → %d", l, h)
	}
}

func TestParseSubjectBeforeVerb(t *testing.T) {
	tr := parse(t,
		"the water boils",
		"DT NN VBZ")
	if tr.RootIndex() != 2 {
		t.Fatalf("root = %d", tr.RootIndex())
	}
	if l, h := label(tr, "water"); l != Nsubj || h != 2 {
		t.Errorf("water: %s → %d", l, h)
	}
}

func TestParseParticleAndAdverb(t *testing.T) {
	tr := parse(t,
		"gently stir in the flour",
		"RB VB RP DT NN")
	if tr.RootIndex() != 1 {
		t.Fatalf("root = %d", tr.RootIndex())
	}
	if l, h := label(tr, "gently"); l != Advmod || h != 1 {
		t.Errorf("gently: %s → %d", l, h)
	}
	if l, h := label(tr, "in"); l != Prt || h != 1 {
		t.Errorf("in: %s → %d", l, h)
	}
	if l, _ := label(tr, "flour"); l != Dobj {
		t.Errorf("flour: %s", l)
	}
}

func TestParseNPInternals(t *testing.T) {
	tr := parse(t,
		"add 2 cups chopped fresh basil",
		"VB CD NNS VBN JJ NN")
	// head of "2 cups chopped fresh basil" = basil
	if l, h := label(tr, "basil"); l != Dobj || h != 0 {
		t.Errorf("basil: %s → %d", l, h)
	}
	if l, h := label(tr, "2"); l != Nummod || h != 5 {
		t.Errorf("2: %s → %d", l, h)
	}
	if l, h := label(tr, "cups"); l != Compound || h != 5 {
		t.Errorf("cups: %s → %d", l, h)
	}
	if l, h := label(tr, "chopped"); l != Amod || h != 5 {
		t.Errorf("chopped: %s → %d", l, h)
	}
}

func TestParseVerblessFragment(t *testing.T) {
	tr := parse(t, "salt and pepper to taste", "NN CC NN TO NN")
	if tr.RootIndex() != 0 {
		t.Fatalf("root = %d", tr.RootIndex())
	}
	if l, h := label(tr, "pepper"); l != Conj || h != 0 {
		t.Errorf("pepper: %s → %d", l, h)
	}
}

func TestParseEmptyAndSingle(t *testing.T) {
	tr := Parse(nil, nil)
	if tr.RootIndex() != -1 {
		t.Fatal("empty tree should have no root")
	}
	tr = Parse([]string{"Serve"}, []string{"VB"})
	if tr.RootIndex() != 0 || tr.Labels[0] != Root {
		t.Fatalf("single token tree: %+v", tr)
	}
}

func TestParseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Parse([]string{"a", "b"}, []string{"DT"})
}

func TestTreeIsWellFormed(t *testing.T) {
	// every token has a head in range (or -1 exactly once), no self-loops.
	cases := []struct{ text, tags string }{
		{"Bring water to a boil in a large pot", "VB NN TO DT NN IN DT JJ NN"},
		{"preheat the oven to 350 ° F", "VB DT NN TO CD SYM NNP"},
		{"mix the flour , sugar and salt in a bowl", "VB DT NN , NN CC NN IN DT NN"},
		{"cook until golden brown", "VB IN JJ JJ"},
		{"season with salt and pepper", "VB IN NN CC NN"},
		{"cover and simmer for 20 minutes", "VB CC VB IN CD NNS"},
	}
	for _, c := range cases {
		tr := parse(t, c.text, c.tags)
		roots := 0
		for i, h := range tr.Heads {
			if h == -1 {
				roots++
				continue
			}
			if h < 0 || h >= len(tr.Tokens) {
				t.Fatalf("%q: head out of range at %d: %d", c.text, i, h)
			}
			if h == i {
				t.Fatalf("%q: self-loop at %d", c.text, i)
			}
		}
		if roots != 1 {
			t.Fatalf("%q: %d roots", c.text, roots)
		}
		// acyclicity: walking up from any node reaches the root.
		for i := range tr.Heads {
			seen := map[int]bool{}
			j := i
			for j != -1 {
				if seen[j] {
					t.Fatalf("%q: cycle through %d", c.text, j)
				}
				seen[j] = true
				j = tr.Heads[j]
			}
		}
	}
}

func TestChildrenByLabel(t *testing.T) {
	tr := parse(t,
		"Bring water to a boil in a large pot",
		"VB NN TO DT NN IN DT JJ NN")
	preps := tr.ChildrenByLabel(0, Prep)
	if len(preps) != 2 {
		t.Fatalf("preps of root = %v", preps)
	}
	dobjs := tr.ChildrenByLabel(0, Dobj)
	if len(dobjs) != 1 || tr.Tokens[dobjs[0]] != "water" {
		t.Fatalf("dobjs = %v", dobjs)
	}
}

func TestRenderers(t *testing.T) {
	tr := parse(t, "Bring water to a boil", "VB NN TO DT NN")
	s := tr.String()
	if !strings.Contains(s, "root") || !strings.Contains(s, "Bring") {
		t.Fatalf("String() = %q", s)
	}
	a := tr.ASCII()
	if !strings.HasPrefix(a, "Bring") {
		t.Fatalf("ASCII() = %q", a)
	}
	if !strings.Contains(a, "  water") {
		t.Fatalf("ASCII() should indent children: %q", a)
	}
	if Parse(nil, nil).ASCII() != "" {
		t.Fatal("empty ASCII should be empty")
	}
}
