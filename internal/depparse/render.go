package depparse

import (
	"fmt"
	"strings"
)

// String renders the tree as an arc table, one token per line:
//
//	0  Bring  VB   root
//	1  water  NN   dobj  → Bring(0)
func (t *Tree) String() string {
	var b strings.Builder
	for i, tok := range t.Tokens {
		fmt.Fprintf(&b, "%2d  %-14s %-5s %-8s", i, tok, t.POS[i], t.Labels[i])
		if t.Heads[i] >= 0 {
			fmt.Fprintf(&b, " → %s(%d)", t.Tokens[t.Heads[i]], t.Heads[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ASCII renders the tree as an indented hierarchy rooted at the root
// token — the textual analogue of the paper's Fig 3.
func (t *Tree) ASCII() string {
	root := t.RootIndex()
	if root < 0 {
		return ""
	}
	var b strings.Builder
	var walk func(i, depth int)
	walk = func(i, depth int) {
		fmt.Fprintf(&b, "%s%s [%s/%s]\n",
			strings.Repeat("  ", depth), t.Tokens[i], t.POS[i], t.Labels[i])
		for _, c := range t.Children(i) {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	return b.String()
}
