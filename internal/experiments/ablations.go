package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"recipemodel/internal/cluster"
	"recipemodel/internal/core"
	"recipemodel/internal/corpus"
	"recipemodel/internal/depparse"
	"recipemodel/internal/mathx"
	"recipemodel/internal/metrics"
	"recipemodel/internal/ner"
	"recipemodel/internal/postag"
	"recipemodel/internal/recipedb"
)

// Ablation compares two pipeline variants on the same data.
type Ablation struct {
	Name     string
	VariantA string
	VariantB string
	F1A      float64
	F1B      float64
}

// Render formats the comparison.
func (a Ablation) Render() string {
	return fmt.Sprintf("%-28s %-26s F1=%.4f | %-26s F1=%.4f",
		a.Name, a.VariantA, a.F1A, a.VariantB, a.F1B)
}

// ablationData builds one noisified train/test pair on the AllRecipes
// source for the ingredient ablations.
func ablationData(cfg Config, nTrain, nTest int) (train, test []ner.Sentence) {
	rng := rand.New(rand.NewSource(cfg.Seed + 70))
	g := recipedb.NewGenerator(recipedb.SourceAllRecipes, cfg.Seed+71)
	train = corpus.Noisify(corpus.IngredientSentences(g.UniquePhrases(nTrain)), cfg.NoiseRate, rng)
	test = corpus.Noisify(corpus.IngredientSentences(g.UniquePhrases(nTest)), cfg.NoiseRate, rng)
	return train, test
}

func f1Of(t *ner.Tagger, test []ner.Sentence) float64 {
	return metrics.EvaluateEntities(corpus.Gold(test), corpus.Predict(t, test)).Micro.F1
}

// AblationTrainer compares the CRF's SGD trainer against the averaged
// structured perceptron.
func AblationTrainer(cfg Config) Ablation {
	train, test := ablationData(cfg, 1200, 400)
	sgd := ner.Train(train, ner.IngredientTypes, ner.NewIngredientExtractor(cfg.Features),
		ner.TrainConfig{Epochs: cfg.Epochs, Seed: cfg.Seed, Method: "sgd"})
	perc := ner.Train(train, ner.IngredientTypes, ner.NewIngredientExtractor(cfg.Features),
		ner.TrainConfig{Epochs: cfg.Epochs, Seed: cfg.Seed, Method: "perceptron"})
	return Ablation{
		Name: "trainer", VariantA: "CRF/AdaGrad", VariantB: "structured perceptron",
		F1A: f1Of(sgd, test), F1B: f1Of(perc, test),
	}
}

// AblationGazetteer compares the full feature set against one without
// gazetteer features.
func AblationGazetteer(cfg Config) Ablation {
	train, test := ablationData(cfg, 1200, 400)
	full := ner.Train(train, ner.IngredientTypes,
		ner.NewIngredientExtractor(ner.FeatureOptions{Gazetteers: true, Lemmas: true}),
		ner.TrainConfig{Epochs: cfg.Epochs, Seed: cfg.Seed})
	bare := ner.Train(train, ner.IngredientTypes,
		ner.NewIngredientExtractor(ner.FeatureOptions{Gazetteers: false, Lemmas: true}),
		ner.TrainConfig{Epochs: cfg.Epochs, Seed: cfg.Seed})
	return Ablation{
		Name: "gazetteer features", VariantA: "with gazetteers", VariantB: "without gazetteers",
		F1A: f1Of(full, test), F1B: f1Of(bare, test),
	}
}

// AblationPreprocess compares the full feature set against one without
// lemma features (the paper's pre-processing contribution).
func AblationPreprocess(cfg Config) Ablation {
	train, test := ablationData(cfg, 1200, 400)
	full := ner.Train(train, ner.IngredientTypes,
		ner.NewIngredientExtractor(ner.FeatureOptions{Gazetteers: true, Lemmas: true}),
		ner.TrainConfig{Epochs: cfg.Epochs, Seed: cfg.Seed})
	bare := ner.Train(train, ner.IngredientTypes,
		ner.NewIngredientExtractor(ner.FeatureOptions{Gazetteers: true, Lemmas: false}),
		ner.TrainConfig{Epochs: cfg.Epochs, Seed: cfg.Seed})
	return Ablation{
		Name: "lemma features", VariantA: "with lemmas", VariantB: "without lemmas",
		F1A: f1Of(full, test), F1B: f1Of(bare, test),
	}
}

// AblationSampling compares cluster-stratified sampling against a
// uniform random sample of the same budget — the pipeline's central
// design claim (§II.E).
func AblationSampling(cfg Config) (Ablation, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 72))
	g := recipedb.NewGenerator(recipedb.SourceAllRecipes, cfg.Seed+73)
	pool := cfg.PoolAllRecipes / 2
	if pool < 2000 {
		pool = 2000
	}
	phrases := g.UniquePhrases(pool)
	texts := make([]string, len(phrases))
	for i, p := range phrases {
		texts[i] = p.Text
	}
	sampler, err := core.NewSampler(texts, nil, cfg.ClusterK, rng)
	if err != nil {
		return Ablation{}, err
	}
	trainIdx, testIdx := sampler.TrainTestSplit(0.05, 0.02, rng)
	budget := len(trainIdx)

	pick := func(idx []int) []ner.Sentence {
		ps := make([]recipedb.IngredientPhrase, len(idx))
		for i, j := range idx {
			ps[i] = phrases[j]
		}
		return corpus.IngredientSentences(ps)
	}
	test := corpus.Noisify(pick(testIdx), cfg.NoiseRate, rng)

	// uniform sample of the same budget, also excluding test items.
	inTest := map[int]bool{}
	for _, i := range testIdx {
		inTest[i] = true
	}
	var uniformIdx []int
	for _, i := range rng.Perm(len(phrases)) {
		if len(uniformIdx) == budget {
			break
		}
		if !inTest[i] {
			uniformIdx = append(uniformIdx, i)
		}
	}

	cfgT := ner.TrainConfig{Epochs: cfg.Epochs, Seed: cfg.Seed}
	strat := ner.Train(corpus.Noisify(pick(trainIdx), cfg.NoiseRate, rng),
		ner.IngredientTypes, ner.NewIngredientExtractor(cfg.Features), cfgT)
	unif := ner.Train(corpus.Noisify(pick(uniformIdx), cfg.NoiseRate, rng),
		ner.IngredientTypes, ner.NewIngredientExtractor(cfg.Features), cfgT)
	return Ablation{
		Name:     "training-set sampling",
		VariantA: fmt.Sprintf("cluster-stratified (n=%d)", budget),
		VariantB: fmt.Sprintf("uniform random (n=%d)", budget),
		F1A:      f1Of(strat, test), F1B: f1Of(unif, test),
	}, nil
}

// AblationThreshold compares instruction-NER evaluation with and
// without the frequency-dictionary filter of §III.A.
func AblationThreshold(cfg Config) Ablation {
	small := cfg
	res := RunInstruction(small)

	// recompute without the dictionary filter.
	rng := rand.New(rand.NewSource(cfg.Seed + 40))
	gA := recipedb.NewGenerator(recipedb.SourceAllRecipes, cfg.Seed+41)
	gF := recipedb.NewGenerator(recipedb.SourceFoodCom, cfg.Seed+42)
	// regenerate the same test corpus (same seeds and sizes as
	// RunInstruction, consuming the generators identically).
	half := cfg.InstructionTrain / 2
	_ = corpus.Noisify(append(
		corpus.InstructionSentences(gA.Instructions(half)),
		corpus.InstructionSentences(gF.Instructions(cfg.InstructionTrain-half))...), cfg.NoiseRate, rng)
	halfT := cfg.InstructionTest / 2
	testInstr := append(gA.Instructions(halfT), gF.Instructions(cfg.InstructionTest-halfT)...)
	test := corpus.Noisify(corpus.InstructionSentences(testInstr), cfg.NoiseRate, rng)

	var unfiltered metrics.PRF
	for _, s := range test {
		pred := res.Tagger.Predict(s.Tokens)
		g := map[ner.Span]bool{}
		for _, sp := range s.Spans {
			if sp.Type == ner.Process {
				g[sp] = true
			}
		}
		for _, sp := range pred {
			if sp.Type != ner.Process {
				continue
			}
			if g[sp] {
				unfiltered.TP++
				delete(g, sp)
			} else {
				unfiltered.FP++
			}
		}
		unfiltered.FN += len(g)
	}
	tmp := metrics.PRF{}
	tmp.Add(unfiltered)
	return Ablation{
		Name:     "dictionary threshold (processes)",
		VariantA: "filtered (threshold 47)",
		VariantB: "unfiltered",
		F1A:      res.Processes.F1, F1B: tmp.F1,
	}
}

// AblationParser compares the deterministic rule parser against the
// learned arc-standard parser: agreement (UAS) of the learned parser
// with the rule parser it imitates, on held-out instructions.
func AblationParser(cfg Config) Ablation {
	tagger := postag.Default()
	trees := func(n int, seed int64) []*depparse.Tree {
		g := recipedb.NewGenerator(recipedb.SourceAllRecipes, seed)
		var out []*depparse.Tree
		for _, in := range g.Instructions(n) {
			out = append(out, depparse.Parse(in.Tokens, tagger.Tag(in.Tokens)))
		}
		return out
	}
	train := trees(cfg.InstructionTrain, cfg.Seed+90)
	test := trees(cfg.InstructionTest, cfg.Seed+91)
	learned := depparse.TrainArcStandard(train, cfg.Epochs, cfg.Seed+92)
	pred := make([]*depparse.Tree, len(test))
	for i, g := range test {
		pred[i] = learned.Parse(g.Tokens, g.POS)
	}
	return Ablation{
		Name:     "dependency parser",
		VariantA: "rule-based (reference)",
		VariantB: "learned arc-standard (UAS/LAS vs A)",
		F1A:      depparse.UAS(test, pred),
		F1B:      depparse.LAS(test, pred),
	}
}

// AblationTagger checks that the K-Means clustering of POS vectors is
// robust to the tagger backend: the same phrases are vectorized with
// the perceptron tagger and with the bigram HMM, clustered separately,
// and compared with the Adjusted Rand Index (F1A; 1.0 = identical
// partitions). F1B reports raw token-level agreement of the two
// taggers.
func AblationTagger(cfg Config) (Ablation, error) {
	g := recipedb.NewGenerator(recipedb.SourceAllRecipes, cfg.Seed+95)
	n := cfg.PoolAllRecipes / 8
	if n < 300 {
		n = 300
	}
	phrases := g.UniquePhrases(n)
	perc := postag.Default()
	hmm := postag.TrainHMM(postag.Corpus())

	rng := rand.New(rand.NewSource(cfg.Seed + 96))
	var vecsP, vecsH []mathx.Vector
	var agree, total int
	for _, p := range phrases {
		pre := core.Preprocess(p.Text)
		tp := perc.Tag(pre)
		th := hmm.Tag(pre)
		for i := range tp {
			if tp[i] == th[i] {
				agree++
			}
			total++
		}
		vecsP = append(vecsP, postag.Vectorize(tp))
		vecsH = append(vecsH, postag.Vectorize(th))
	}
	k := cfg.ClusterK
	cp, err := cluster.KMeans(vecsP, cluster.Config{K: k, Restarts: 2}, rng)
	if err != nil {
		return Ablation{}, err
	}
	ch, err := cluster.KMeans(vecsH, cluster.Config{K: k, Restarts: 2}, rng)
	if err != nil {
		return Ablation{}, err
	}
	return Ablation{
		Name:     "POS tagger backend",
		VariantA: "clustering ARI (perceptron vs HMM)",
		VariantB: "token-level tag agreement",
		F1A:      cluster.AdjustedRandIndex(cp.Assignment, ch.Assignment),
		F1B:      float64(agree) / float64(total),
	}, nil
}

// RenderAblations runs every ablation and formats the comparison
// table.
func RenderAblations(cfg Config) (string, error) {
	var b strings.Builder
	b.WriteString("Ablation benches (DESIGN.md §5)\n")
	for _, a := range []Ablation{AblationTrainer(cfg), AblationGazetteer(cfg), AblationPreprocess(cfg)} {
		b.WriteString(a.Render())
		b.WriteByte('\n')
	}
	s, err := AblationSampling(cfg)
	if err != nil {
		return "", err
	}
	b.WriteString(s.Render())
	b.WriteByte('\n')
	b.WriteString(AblationThreshold(cfg).Render())
	b.WriteByte('\n')
	b.WriteString(AblationParser(cfg).Render())
	b.WriteByte('\n')
	tg, err := AblationTagger(cfg)
	if err != nil {
		return "", err
	}
	b.WriteString(tg.Render())
	b.WriteByte('\n')
	return b.String(), nil
}
