package experiments

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"recipemodel/internal/faults"
)

// TestRunConclusionContextCancel proves the corpus-mining pool honors
// cancellation: the FaultMine point cancels the context at an exact
// recipe count (no sleeps), after which dispatch stops, the partial
// statistics come back with ctx.Err(), and no worker goroutine leaks
// (before/after accounting).
func TestRunConclusionContextCancel(t *testing.T) {
	cfg := tinyConfig()
	cfg.ConclusionRecipes = 60
	cfg.Workers = 2
	ing, err := RunIngredient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ins := RunInstruction(cfg)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	defer faults.Enable(FaultMine, faults.Fault{OnHit: func(hit int) {
		if hit == 3 {
			cancel()
		}
	}})()

	before := runtime.NumGoroutine()
	res, err := RunConclusionContext(ctx, cfg, ing.Models[CorpusBoth], ins.Tagger)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Recipes >= cfg.ConclusionRecipes {
		t.Fatalf("all %d recipes mined despite cancellation", res.Recipes)
	}
	if res.Recipes < 3 {
		t.Fatalf("recipes mined = %d, want >= 3 (in-flight work must finish)", res.Recipes)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
	}
}
