package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"recipemodel/internal/alias"
	"recipemodel/internal/core"
	"recipemodel/internal/depparse"
	"recipemodel/internal/faults"
	"recipemodel/internal/mathx"
	"recipemodel/internal/ner"
	"recipemodel/internal/parallel"
	"recipemodel/internal/recipedb"
)

// FaultMine fires once per recipe inside the corpus-mining pool of
// RunConclusionContext (see internal/faults).
const FaultMine = "experiments.mine"

var _ = faults.MustRegister(FaultMine)

// ConclusionResult reproduces the §V statistics: the relations-per-
// instruction distribution over a large recipe corpus and the unique
// ingredient-name census.
type ConclusionResult struct {
	Recipes          int
	Instructions     int
	RelationsPerStep mathx.Summary
	UniqueNames      int
	// DedupedNames is the census after alias resolution — the paper
	// notes its 20,280 count is inflated by aliases such as
	// okhra/ladyfinger; this is the de-inflated figure.
	DedupedNames int
}

// RunConclusion applies the trained pipeline to cfg.ConclusionRecipes
// synthetic recipes (half per source), extracting relations from every
// instruction and ingredient names from every phrase.
func RunConclusion(cfg Config, ingredientNER, instructionNER *ner.Tagger) *ConclusionResult {
	res, _ := RunConclusionContext(context.Background(), cfg, ingredientNER, instructionNER) //recipelint:allow ctxflow documented non-ctx wrapper shim over the Context API
	return res
}

// RunConclusionContext is the cancellable corpus-mining run: when ctx
// is cancelled the pool stops dispatching recipes, drains its workers,
// and the statistics over the recipes mined so far are returned with
// ctx.Err() (Recipes reports how many were actually mined).
func RunConclusionContext(ctx context.Context, cfg Config, ingredientNER, instructionNER *ner.Tagger) (*ConclusionResult, error) {
	pipe := core.NewPipeline(nil, ingredientNER, instructionNER, nil)

	// Recipe generation is sequential (the generators own their RNGs),
	// but annotation — the expensive part — fans out over a worker
	// pool. Results are reduced deterministically: per-recipe outputs
	// are collected by index, so the summary is identical to the
	// sequential pass regardless of scheduling.
	gens := []*recipedb.Generator{
		recipedb.NewGenerator(recipedb.SourceAllRecipes, cfg.Seed+60),
		recipedb.NewGenerator(recipedb.SourceFoodCom, cfg.Seed+61),
	}
	recipes := make([]recipedb.Recipe, 0, cfg.ConclusionRecipes)
	for gi, g := range gens {
		n := cfg.ConclusionRecipes / 2
		if gi == 0 {
			n = cfg.ConclusionRecipes - cfg.ConclusionRecipes/2
		}
		recipes = append(recipes, g.Recipes(n)...)
	}

	type recipeStats struct {
		mined   bool
		perStep []float64
		names   []string
	}
	stats, err := parallel.MapOrderedCtx(ctx, cfg.Workers, recipes, func(_ int, r recipedb.Recipe) recipeStats {
		_ = faults.InjectContext(ctx, FaultMine)
		st := recipeStats{mined: true}
		for _, in := range r.Instructions {
			spans := pipe.InstructionNER.Predict(in.Tokens)
			tags := pipe.POS.Tag(in.Tokens)
			tree := depparse.Parse(in.Tokens, tags)
			rels := pipe.Extractor.Extract(tree, spans)
			pairs := 0
			for _, rel := range rels {
				pairs += rel.PairCount()
			}
			st.perStep = append(st.perStep, float64(pairs))
		}
		for _, p := range r.Ingredients {
			rec := pipe.AnnotateIngredient(p.Text)
			if rec.Name != "" {
				st.names = append(st.names, rec.Name)
			}
		}
		return st
	})

	res := &ConclusionResult{}
	for _, st := range stats {
		if st.mined {
			res.Recipes++
		}
	}
	var perStep []float64
	names := map[string]bool{}
	for _, st := range stats {
		res.Instructions += len(st.perStep)
		perStep = append(perStep, st.perStep...)
		for _, n := range st.names {
			names[n] = true
		}
	}
	res.RelationsPerStep = mathx.Summarize(perStep)
	res.UniqueNames = len(names)
	resolver := alias.NewResolver()
	all := make([]string, 0, len(names))
	for n := range names {
		all = append(all, n)
	}
	// Sorted so the alias resolver sees a deterministic order — its
	// count is order-independent today, but the determinism contract
	// (and recipelint's nondeterminism rule) want no map-order leak.
	sort.Strings(all)
	res.DedupedNames = len(resolver.Dedup(all))
	return res, err
}

// Render formats the §V statistics.
func (r *ConclusionResult) Render() string {
	var b strings.Builder
	b.WriteString("Conclusion statistics (§V)\n")
	fmt.Fprintf(&b, "recipes processed:            %d\n", r.Recipes)
	fmt.Fprintf(&b, "instruction steps:            %d\n", r.Instructions)
	fmt.Fprintf(&b, "relations per instruction:    mean=%.3f std=%.2f (paper: 6.164 ± 5.70)\n",
		r.RelationsPerStep.Mean, r.RelationsPerStep.StdDev)
	fmt.Fprintf(&b, "unique ingredient names:      %d (paper: 20,280 from 118k recipes)\n", r.UniqueNames)
	fmt.Fprintf(&b, "after alias resolution:       %d (okhra/ladyfinger de-inflation, §II.F)\n", r.DedupedNames)
	return b.String()
}
