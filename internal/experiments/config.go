// Package experiments reproduces every table and figure of the
// paper's evaluation on the synthetic RecipeDB corpus. Each experiment
// is a pure function of a Config, returns a typed result, and renders
// itself as text so cmd/benchtables and the benchmark harness share
// one implementation.
//
// Scale note: the paper's phrase pools are 1.5M (AllRecipes) and 10M
// (FOOD.com) with sampling fractions 1%/0.33% and 0.5%/0.165%. The
// reproduction shrinks the pools (×10 / ×40) and raises the fractions
// by the same factor so the *absolute* training and testing set sizes
// match Table III exactly (1470/483 and 5142/1705).
package experiments

import (
	"recipemodel/internal/ner"
)

// Config controls every experiment. DefaultConfig reproduces the
// paper-scale runs; Scaled produces cheaper variants for unit tests.
type Config struct {
	Seed int64

	// Workers bounds the goroutines used by the parallelizable stages
	// (phrase vectorization, K-Means scans, concurrent model training,
	// the 3×3 evaluation matrix, CV folds, batch prediction). <= 0
	// uses every CPU. Every parallel stage is order-preserving, so
	// results are identical at any worker count.
	Workers int

	// unique-phrase pool sizes per source.
	PoolAllRecipes int
	PoolFoodCom    int

	// cluster-stratified sampling fractions (train, test) per source.
	TrainFracA, TestFracA float64
	TrainFracF, TestFracF float64

	// NoiseRate simulates human annotation inconsistency on both the
	// training and testing annotations (§II.E manual tagging).
	NoiseRate float64

	// ClusterK is the K-Means cluster count (paper: 23).
	ClusterK int

	// CRF training.
	Epochs int
	Method string // "sgd" or "perceptron"

	// feature ablation toggles.
	Features ner.FeatureOptions

	// instruction experiment sizes.
	InstructionTrain int
	InstructionTest  int

	// conclusion-stats corpus size (paper: 40,000 recipes).
	ConclusionRecipes int
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config {
	return Config{
		Seed:              1,
		PoolAllRecipes:    14700,
		PoolFoodCom:       25710,
		TrainFracA:        0.10,
		TestFracA:         0.0365, // of the pool minus the training set → ≈483
		TrainFracF:        0.20,
		TestFracF:         0.083, // → ≈1705
		NoiseRate:         0.04,
		ClusterK:          23,
		Epochs:            6,
		Method:            "sgd",
		Features:          ner.DefaultFeatureOptions,
		InstructionTrain:  1200,
		InstructionTest:   400,
		ConclusionRecipes: 40000,
	}
}

// Scaled returns a configuration shrunk by factor f (>1 shrinks) for
// fast tests, preserving all proportions.
func (c Config) Scaled(f int) Config {
	if f <= 1 {
		return c
	}
	c.PoolAllRecipes /= f
	c.PoolFoodCom /= f
	c.TrainFracA *= 1 // fractions unchanged: sizes shrink with pools
	c.InstructionTrain /= f
	c.InstructionTest /= f
	c.ConclusionRecipes /= f
	if c.ClusterK > c.PoolAllRecipes/20 {
		c.ClusterK = max(2, c.PoolAllRecipes/20)
	}
	return c
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Corpus labels, in the order Tables III and IV use.
const (
	CorpusAllRecipes = "AllRecipes"
	CorpusFoodCom    = "FOOD.com"
	CorpusBoth       = "BOTH"
)

// CorpusOrder is the row/column order of the paper's tables.
var CorpusOrder = []string{CorpusAllRecipes, CorpusFoodCom, CorpusBoth}
