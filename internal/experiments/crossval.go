package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"recipemodel/internal/corpus"
	"recipemodel/internal/metrics"
	"recipemodel/internal/ner"
	"recipemodel/internal/parallel"
	"recipemodel/internal/recipedb"
)

// CrossValResult holds a k-fold cross-validation of the ingredient
// NER, reproducing the validation protocol of §II.F ("The models were
// validated by 5-fold cross validation").
type CrossValResult struct {
	K     int
	Folds []float64 // micro-F1 per fold
	Mean  float64
	Std   float64
}

// RunCrossValidation runs k-fold CV of the ingredient NER over a
// combined two-source corpus.
func RunCrossValidation(cfg Config, k int) *CrossValResult {
	rng := rand.New(rand.NewSource(cfg.Seed + 80))
	gA := recipedb.NewGenerator(recipedb.SourceAllRecipes, cfg.Seed+81)
	gF := recipedb.NewGenerator(recipedb.SourceFoodCom, cfg.Seed+82)

	n := cfg.PoolAllRecipes / 10
	if n < 200 {
		n = 200
	}
	sents := append(
		corpus.IngredientSentences(gA.UniquePhrases(n)),
		corpus.IngredientSentences(gF.UniquePhrases(n))...)
	sents = corpus.Noisify(sents, cfg.NoiseRate, rng)

	folds := corpus.KFold(sents, k, rng)
	res := &CrossValResult{K: k}
	// Folds consume no shared randomness after the split, so each
	// trains and evaluates on its own pool slot; the per-fold F1s are
	// identical to a sequential loop.
	res.Folds = parallel.MapOrdered(cfg.Workers, folds, func(_ int, fold corpus.Fold) float64 {
		tagger := ner.Train(fold.Train, ner.IngredientTypes,
			ner.NewIngredientExtractor(cfg.Features),
			ner.TrainConfig{Epochs: cfg.Epochs, Seed: cfg.Seed, Method: cfg.Method})
		return metrics.EvaluateEntities(corpus.Gold(fold.Test), corpus.Predict(tagger, fold.Test)).Micro.F1
	})
	var sum float64
	for _, f := range res.Folds {
		sum += f
	}
	res.Mean = sum / float64(len(res.Folds))
	var ss float64
	for _, f := range res.Folds {
		d := f - res.Mean
		ss += d * d
	}
	if len(res.Folds) > 1 {
		res.Std = math.Sqrt(ss / float64(len(res.Folds)-1))
	}
	return res
}

// Render formats the cross-validation summary.
func (r *CrossValResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d-fold cross-validation of the ingredient NER (§II.F)\n", r.K)
	for i, f := range r.Folds {
		fmt.Fprintf(&b, "  fold %d: F1=%.4f\n", i+1, f)
	}
	fmt.Fprintf(&b, "  mean F1 = %.4f ± %.4f\n", r.Mean, r.Std)
	return b.String()
}
