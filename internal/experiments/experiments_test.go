package experiments

import (
	"strings"
	"testing"

	"recipemodel/internal/ner"
)

// testConfig is a cheap configuration for unit tests.
func testConfig() Config {
	c := DefaultConfig()
	c.PoolAllRecipes = 1800
	c.PoolFoodCom = 2400
	c.TrainFracA = 0.30
	c.TestFracA = 0.10
	c.TrainFracF = 0.30
	c.TestFracF = 0.10
	c.ClusterK = 10
	c.Epochs = 4
	c.InstructionTrain = 400
	c.InstructionTest = 150
	c.ConclusionRecipes = 120
	return c
}

func TestRunIngredientShape(t *testing.T) {
	res, err := RunIngredient(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Table III structure
	for _, c := range CorpusOrder {
		if res.TrainSize[c] == 0 || res.TestSize[c] == 0 {
			t.Fatalf("empty sizes for %s", c)
		}
	}
	if res.TrainSize[CorpusBoth] != res.TrainSize[CorpusAllRecipes]+res.TrainSize[CorpusFoodCom] {
		t.Fatal("BOTH training size must be the sum")
	}
	// Table IV shape: diagonal strong...
	for i := 0; i < 2; i++ {
		if res.F1[i][i] < 0.90 {
			t.Errorf("diagonal F1[%d][%d] = %.4f, want >= 0.90", i, i, res.F1[i][i])
		}
	}
	// ...and the BOTH model at least on par with the cross-domain cells.
	for ti := 0; ti < 3; ti++ {
		worst := 1.0
		for mi := 0; mi < 2; mi++ {
			if res.F1[ti][mi] < worst {
				worst = res.F1[ti][mi]
			}
		}
		if res.F1[ti][2] < worst-0.02 {
			t.Errorf("BOTH model underperforms on test %s: %.4f < worst single %.4f",
				CorpusOrder[ti], res.F1[ti][2], worst)
		}
	}
	// rendering
	if s := res.RenderTableIII(); !strings.Contains(s, "Training Set Size") {
		t.Error("Table III render")
	}
	if s := res.RenderTableIV(); !strings.Contains(s, "Testing Set") {
		t.Error("Table IV render")
	}
}

func TestRunTableI(t *testing.T) {
	cfg := testConfig()
	res, err := RunIngredient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs, table := RunTableI(res.Models[CorpusBoth])
	if len(recs) != len(TableIExamples) {
		t.Fatalf("records = %d", len(recs))
	}
	// the famous first row: frozen puff pastry.
	first := recs[0]
	if first.Name == "" {
		t.Errorf("puff pastry row has no name: %+v", first)
	}
	if !strings.Contains(table, "Ingredient Phrase") {
		t.Error("table header missing")
	}
	// tomatoes row must be lemmatized.
	if recs[3].Name != "tomato" {
		t.Errorf("tomatoes row name = %q", recs[3].Name)
	}
}

func TestRenderTableII(t *testing.T) {
	s := RenderTableII()
	for _, tag := range []string{"NAME", "STATE", "UNIT", "QUANTITY", "SIZE", "TEMP", "DF"} {
		if !strings.Contains(s, tag) {
			t.Errorf("Table II missing %s", tag)
		}
	}
}

func TestRunInstructionShape(t *testing.T) {
	res := RunInstruction(testConfig())
	if res.Processes.F1 < 0.75 || res.Utensils.F1 < 0.75 {
		t.Fatalf("instruction F1 too low: %v / %v", res.Processes, res.Utensils)
	}
	if res.Processes.F1 > 0.999 && res.Utensils.F1 > 0.999 {
		t.Fatal("suspiciously perfect — noise/difficulty not applied")
	}
	if res.TechDict.Len() == 0 || res.UtenDict.Len() == 0 {
		t.Fatal("dictionaries empty")
	}
	if s := res.RenderTableV(); !strings.Contains(s, "Processes") {
		t.Error("Table V render")
	}
}

func TestFilterSpans(t *testing.T) {
	res := RunInstruction(testConfig())
	tokens := []string{"glorbulate", "the", "water"}
	spans := []ner.Span{{Start: 0, End: 1, Type: ner.Process}}
	if got := FilterSpans(spans, tokens, res.TechDict, res.UtenDict); len(got) != 0 {
		t.Fatalf("unknown process should be filtered: %v", got)
	}
}

func TestRunFigure2(t *testing.T) {
	cfg := testConfig()
	res, err := RunFigure2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PointsA) == 0 || len(res.PointsB) == 0 {
		t.Fatal("no points")
	}
	if res.ElbowK < 2 {
		t.Fatalf("elbow K = %d", res.ElbowK)
	}
	if len(res.SampledPhrases) != len(res.PointsA) {
		t.Fatal("sampled phrases not parallel to points")
	}
	if !strings.HasPrefix(res.SVGA(), "<svg") || !strings.HasPrefix(res.SVGB(), "<svg") {
		t.Fatal("SVG output")
	}
	if !strings.Contains(res.Render(), "inertia sweep") {
		t.Fatal("render")
	}
	// inertia must be non-increasing overall (elbow curve shape).
	if res.Inertias[0] < res.Inertias[len(res.Inertias)-1] {
		t.Fatal("inertia should decrease with k")
	}
}

func TestRunFigure3(t *testing.T) {
	tree, text := RunFigure3()
	if tree.RootIndex() < 0 {
		t.Fatal("no root")
	}
	if tree.Tokens[tree.RootIndex()] != "Bring" {
		t.Fatalf("root = %q, want Bring", tree.Tokens[tree.RootIndex()])
	}
	if !strings.Contains(text, "root") {
		t.Fatal("render")
	}
}

func TestRunFigures4And5(t *testing.T) {
	res := RunInstruction(testConfig())
	text, all := RunFigure4(res.Tagger)
	if len(all) != 4 {
		t.Fatalf("steps = %d", len(all))
	}
	if !strings.Contains(text, "PROCESS") {
		t.Fatalf("no process entities in:\n%s", text)
	}
	rels, fig5 := RunFigure5(res.Tagger)
	if len(rels) == 0 {
		t.Fatal("no relations")
	}
	found := false
	for _, r := range rels {
		if r.Process == "bring" && len(r.Ingredients) > 0 && len(r.Utensils) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("bring{water | pot} not reproduced: %v\n%s", rels, fig5)
	}
}

func TestRunConclusion(t *testing.T) {
	cfg := testConfig()
	ing, err := RunIngredient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ins := RunInstruction(cfg)
	res := RunConclusion(cfg, ing.Models[CorpusBoth], ins.Tagger)
	if res.Recipes != cfg.ConclusionRecipes {
		t.Fatalf("recipes = %d", res.Recipes)
	}
	if res.Instructions == 0 || res.UniqueNames == 0 {
		t.Fatalf("empty stats: %+v", res)
	}
	if res.RelationsPerStep.Mean <= 0 {
		t.Fatalf("mean relations = %v", res.RelationsPerStep.Mean)
	}
	// the paper's argument: large dispersion relative to the mean
	// motivates many-to-many modeling.
	if res.RelationsPerStep.StdDev == 0 {
		t.Fatal("no variance in relation counts")
	}
	if !strings.Contains(res.Render(), "relations per instruction") {
		t.Fatal("render")
	}
}

func TestAblations(t *testing.T) {
	cfg := testConfig()
	a := AblationTrainer(cfg)
	if a.F1A == 0 || a.F1B == 0 {
		t.Fatalf("trainer ablation: %+v", a)
	}
	g := AblationGazetteer(cfg)
	if g.F1A < g.F1B-0.05 {
		t.Errorf("gazetteers should not hurt: %+v", g)
	}
	p := AblationPreprocess(cfg)
	if p.F1A == 0 || p.F1B == 0 {
		t.Fatalf("preprocess ablation: %+v", p)
	}
	s, err := AblationSampling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.F1A == 0 || s.F1B == 0 {
		t.Fatalf("sampling ablation: %+v", s)
	}
	th := AblationThreshold(cfg)
	if th.F1A == 0 {
		t.Fatalf("threshold ablation: %+v", th)
	}
	if !strings.Contains(a.Render(), "F1=") {
		t.Fatal("render")
	}
}

func TestScaledConfig(t *testing.T) {
	c := DefaultConfig().Scaled(10)
	if c.PoolAllRecipes != 1470 || c.ConclusionRecipes != 4000 {
		t.Fatalf("scaled config: %+v", c)
	}
	if DefaultConfig().Scaled(1).PoolAllRecipes != 14700 {
		t.Fatal("Scaled(1) should be identity")
	}
}

func TestAblationParserAndTagger(t *testing.T) {
	cfg := testConfig()
	p := AblationParser(cfg)
	if p.F1A < 0.8 {
		t.Fatalf("learned parser UAS = %v", p.F1A)
	}
	if p.F1B > p.F1A+1e-9 {
		t.Fatalf("LAS %v > UAS %v", p.F1B, p.F1A)
	}
	tg, err := AblationTagger(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// the two backends agree on most tokens but cluster moderately
	// differently — an honest sensitivity finding (see EXPERIMENTS.md).
	if tg.F1B < 0.70 {
		t.Fatalf("tagger token agreement = %v", tg.F1B)
	}
	if tg.F1A < 0.10 {
		t.Fatalf("clustering ARI across taggers = %v", tg.F1A)
	}
}

func TestRunCrossValidation(t *testing.T) {
	cfg := testConfig()
	res := RunCrossValidation(cfg, 5)
	if len(res.Folds) != 5 {
		t.Fatalf("folds = %d", len(res.Folds))
	}
	if res.Mean < 0.85 {
		t.Fatalf("CV mean F1 = %v", res.Mean)
	}
	if res.Std > 0.1 {
		t.Fatalf("CV std = %v", res.Std)
	}
	if !strings.Contains(res.Render(), "cross-validation") {
		t.Fatal("render")
	}
}

func TestIngredientCI(t *testing.T) {
	res, err := RunIngredient(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !res.CI.Contains(res.F1[2][2]) {
		t.Fatalf("CI [%v, %v] misses point %v", res.CI.Lo, res.CI.Hi, res.F1[2][2])
	}
	if !strings.Contains(res.RenderTableIV(), "bootstrap") {
		t.Fatal("CI not rendered")
	}
}

func TestRunFigure1(t *testing.T) {
	cfg := testConfig()
	ing, err := RunIngredient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ins := RunInstruction(cfg)
	out := RunFigure1(ing.Models[CorpusBoth], ins.Tagger)
	for _, want := range []string{"Fig 1", "Recipe:", "puff pastry", "preheat"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig1 missing %q:\n%s", want, out)
		}
	}
}
