package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"recipemodel/internal/cluster"
	"recipemodel/internal/core"
	"recipemodel/internal/depparse"
	"recipemodel/internal/mathx"
	"recipemodel/internal/ner"
	"recipemodel/internal/plot"
	"recipemodel/internal/postag"
	"recipemodel/internal/recipedb"
	"recipemodel/internal/relations"
	"recipemodel/internal/tokenize"
)

// Figure2Result holds both Fig 2 variants: (a) cluster in 36-D then
// project with PCA, and (b) project to 2-D with PCA then cluster.
type Figure2Result struct {
	K int
	// PointsA: cluster-then-project; PointsB: project-then-cluster.
	PointsA []plot.Point
	PointsB []plot.Point
	// Inertias over the elbow sweep and the chosen elbow K.
	Inertias []float64
	ElbowK   int
	// Phrases sampled for visualization (≤50 per cluster, variant A).
	SampledPhrases []string
}

// RunFigure2 reproduces Fig 2 on a fresh phrase pool.
func RunFigure2(cfg Config) (*Figure2Result, error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 50))
	g := recipedb.NewGenerator(recipedb.SourceAllRecipes, cfg.Seed+51)
	pool := cfg.PoolAllRecipes / 4
	if pool < cfg.ClusterK*4 {
		pool = cfg.ClusterK * 4
	}
	phrases := g.UniquePhrases(pool)
	pos := postag.Default()
	vectors := make([]mathx.Vector, len(phrases))
	texts := make([]string, len(phrases))
	for i, p := range phrases {
		texts[i] = p.Text
		vectors[i] = pos.VectorizePhrase(core.Preprocess(p.Text))
	}

	res := &Figure2Result{K: cfg.ClusterK}

	// elbow sweep (justifies the paper's k=23).
	kMax := cfg.ClusterK + 7
	elbow, inertias, err := cluster.ElbowPoint(vectors, 2, kMax, cluster.Config{MaxIterations: 30}, rng)
	if err != nil {
		return nil, err
	}
	res.ElbowK = elbow
	res.Inertias = inertias

	// (a) cluster in 36-D, then PCA to 2-D.
	ca, err := cluster.KMeans(vectors, cluster.Config{K: cfg.ClusterK, Restarts: 2}, rng)
	if err != nil {
		return nil, err
	}
	pca := mathx.FitPCA(vectors, 2)
	proj := pca.TransformAll(vectors)

	// sample ≤50 phrases per cluster for the visualization, as the
	// paper does.
	perCluster := map[int]int{}
	for i, v := range proj {
		c := ca.Assignment[i]
		if perCluster[c] >= 50 {
			continue
		}
		perCluster[c]++
		res.PointsA = append(res.PointsA, plot.Point{X: v[0], Y: v[1], C: c})
		res.SampledPhrases = append(res.SampledPhrases, texts[i])
	}

	// (b) PCA to 2-D first, then cluster the projections.
	cb, err := cluster.KMeans(proj, cluster.Config{K: cfg.ClusterK, Restarts: 2}, rng)
	if err != nil {
		return nil, err
	}
	perCluster = map[int]int{}
	for i, v := range proj {
		c := cb.Assignment[i]
		if perCluster[c] >= 50 {
			continue
		}
		perCluster[c]++
		res.PointsB = append(res.PointsB, plot.Point{X: v[0], Y: v[1], C: c})
	}
	return res, nil
}

// SVGA renders variant (a) as SVG.
func (r *Figure2Result) SVGA() string {
	return plot.SVG(r.PointsA, fmt.Sprintf("Fig 2(a): k-means in 36-D, PCA projection (k=%d)", r.K), 720, 540)
}

// SVGB renders variant (b) as SVG.
func (r *Figure2Result) SVGB() string {
	return plot.SVG(r.PointsB, fmt.Sprintf("Fig 2(b): PCA first, k-means in 2-D (k=%d)", r.K), 720, 540)
}

// Render summarizes the figure as text with ASCII scatters.
func (r *Figure2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 2: K-Means over POS-tag-frequency vectors (k=%d, elbow suggests k=%d)\n", r.K, r.ElbowK)
	fmt.Fprintf(&b, "inertia sweep (k=2..%d): ", len(r.Inertias)+1)
	for _, in := range r.Inertias {
		fmt.Fprintf(&b, "%.0f ", in)
	}
	b.WriteString("\n(a) cluster-then-project:\n")
	b.WriteString(plot.ASCII(r.PointsA, 72, 20))
	b.WriteString("(b) project-then-cluster:\n")
	b.WriteString(plot.ASCII(r.PointsB, 72, 20))
	return b.String()
}

// RunFigure1 renders the proposed recipe data structure (the paper's
// Fig 1) populated with the running tart example, using the given
// trained pipeline components.
func RunFigure1(ingredientNER, instructionNER *ner.Tagger) string {
	pipe := core.NewPipeline(nil, ingredientNER, instructionNER, nil)
	m := pipe.ModelRecipe("Heirloom Tomato and Blue Cheese Tart", "French",
		TableIExamples,
		"Preheat the oven to 400 ° F. Spread the blue cheese over the puff pastry. Add the tomatoes to the pastry. Bake for 30 minutes.")
	return "Fig 1: the proposed Recipe Data Structure, populated\n" + m.String()
}

// Figure3Instruction is the running example instruction used by Figs
// 3–5 (the paper's pot-of-water example).
const Figure3Instruction = "Bring the water to a boil in a large pot."

// RunFigure3 produces the dependency parse of the example instruction.
func RunFigure3() (*depparse.Tree, string) {
	tokens := tokenize.Words(tokenize.Tokenize(Figure3Instruction))
	tags := postag.Default().Tag(tokens)
	tree := depparse.Parse(tokens, tags)
	var b strings.Builder
	b.WriteString("Fig 3: dependency parse of a typical instruction\n")
	b.WriteString(tree.String())
	b.WriteString("\n")
	b.WriteString(tree.ASCII())
	return tree, b.String()
}

// Figure4Section is a short instruction section for the NER inference
// demonstration of Fig 4.
const Figure4Section = "Bring the water to a boil in a large pot. Add the pasta and the salt to the pot. Cook for 10 minutes. Drain and serve."

// RunFigure4 tags the section with the instruction NER.
func RunFigure4(tagger *ner.Tagger) (string, [][]ner.Span) {
	var b strings.Builder
	b.WriteString("Fig 4: NER inference over an instruction section\n")
	var all [][]ner.Span
	for _, step := range tokenize.SplitSentences(Figure4Section) {
		tokens := tokenize.Words(tokenize.Tokenize(step))
		spans := tagger.Predict(tokens)
		all = append(all, spans)
		fmt.Fprintf(&b, "%s\n", step)
		for _, sp := range spans {
			fmt.Fprintf(&b, "    [%s] %s\n", sp.Type, strings.Join(tokens[sp.Start:sp.End], " "))
		}
	}
	return b.String(), all
}

// RunFigure5 extracts the relation tuples for the first instruction of
// the section, reproducing the Bring+Water / Bring+Pot merge of Fig 5.
func RunFigure5(tagger *ner.Tagger) ([]relations.Relation, string) {
	pipe := core.NewPipeline(nil, nil, tagger, nil)
	_, _, rels := pipe.AnnotateInstruction(Figure3Instruction)
	var b strings.Builder
	b.WriteString("Fig 5: many-to-many relations for the first instruction\n")
	fmt.Fprintf(&b, "%s\n", Figure3Instruction)
	for _, r := range rels {
		fmt.Fprintf(&b, "    %s\n", r)
	}
	return rels, b.String()
}
