package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"recipemodel/internal/core"
	"recipemodel/internal/corpus"
	"recipemodel/internal/metrics"
	"recipemodel/internal/ner"
	"recipemodel/internal/parallel"
	"recipemodel/internal/recipedb"
)

// IngredientResult holds everything the ingredient-section experiments
// produce: the dataset sizes of Table III, the 3×3 F1 matrix of Table
// IV, and the trained models (reused by Table I and the examples).
type IngredientResult struct {
	// TrainSize/TestSize per corpus (Table III).
	TrainSize map[string]int
	TestSize  map[string]int
	// F1[test][train] over CorpusOrder (Table IV).
	F1 [3][3]float64
	// Models per training corpus.
	Models map[string]*ner.Tagger
	// Tests per test corpus (kept for cross-validation reuse).
	Tests map[string][]ner.Sentence
	// CI is the bootstrap 95% confidence interval of the BOTH model on
	// the BOTH test set.
	CI metrics.BootstrapCI
}

// RunIngredient executes the full §II pipeline for both sources:
// generate unique phrase pools, embed + cluster + stratified-sample
// (Table III), train the three NER models and evaluate the 3×3 matrix
// (Table IV).
func RunIngredient(cfg Config) (*IngredientResult, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))

	build := func(src recipedb.Source, pool int, trainFrac, testFrac float64, seed int64) (train, test []ner.Sentence, err error) {
		g := recipedb.NewGenerator(src, seed)
		phrases := g.UniquePhrases(pool)
		texts := make([]string, len(phrases))
		for i, p := range phrases {
			texts[i] = p.Text
		}
		sampler, err := core.NewSamplerWorkers(texts, nil, cfg.ClusterK, cfg.Workers, rng)
		if err != nil {
			return nil, nil, fmt.Errorf("sampler(%s): %w", src, err)
		}
		trainIdx, testIdx := sampler.TrainTestSplit(trainFrac, testFrac, rng)
		pick := func(idx []int) []recipedb.IngredientPhrase {
			out := make([]recipedb.IngredientPhrase, len(idx))
			for i, j := range idx {
				out[i] = phrases[j]
			}
			return out
		}
		train = corpus.Noisify(corpus.IngredientSentences(pick(trainIdx)), cfg.NoiseRate, rng)
		test = corpus.Noisify(corpus.IngredientSentences(pick(testIdx)), cfg.NoiseRate, rng)
		return train, test, nil
	}

	trainA, testA, err := build(recipedb.SourceAllRecipes, cfg.PoolAllRecipes, cfg.TrainFracA, cfg.TestFracA, cfg.Seed+10)
	if err != nil {
		return nil, err
	}
	trainF, testF, err := build(recipedb.SourceFoodCom, cfg.PoolFoodCom, cfg.TrainFracF, cfg.TestFracF, cfg.Seed+20)
	if err != nil {
		return nil, err
	}
	trainB := append(append([]ner.Sentence{}, trainA...), trainF...)
	testB := append(append([]ner.Sentence{}, testA...), testF...)

	res := &IngredientResult{
		TrainSize: map[string]int{
			CorpusAllRecipes: len(trainA), CorpusFoodCom: len(trainF), CorpusBoth: len(trainB),
		},
		TestSize: map[string]int{
			CorpusAllRecipes: len(testA), CorpusFoodCom: len(testF), CorpusBoth: len(testB),
		},
		Models: map[string]*ner.Tagger{},
		Tests: map[string][]ner.Sentence{
			CorpusAllRecipes: testA, CorpusFoodCom: testF, CorpusBoth: testB,
		},
	}

	trains := map[string][]ner.Sentence{
		CorpusAllRecipes: trainA, CorpusFoodCom: trainF, CorpusBoth: trainB,
	}
	// The three models are independent (each training run owns its RNG
	// via the fixed seed), so they train concurrently and come out
	// identical to a sequential loop.
	models := parallel.MapOrdered(cfg.Workers, CorpusOrder, func(_ int, name string) *ner.Tagger {
		return ner.Train(trains[name], ner.IngredientTypes,
			ner.NewIngredientExtractor(cfg.Features),
			ner.TrainConfig{Epochs: cfg.Epochs, Seed: cfg.Seed + 30, Method: cfg.Method})
	})
	for i, name := range CorpusOrder {
		res.Models[name] = models[i]
	}

	// The 3×3 evaluation matrix (Table IV): every (test, model) cell is
	// a pure prediction pass, so all nine evaluate concurrently. The
	// BOTH/BOTH predictions are kept for the bootstrap CI, which runs
	// after the barrier because it consumes the shared experiment RNG.
	type cell struct{ ti, mi int }
	var cells []cell
	for ti := range CorpusOrder {
		for mi := range CorpusOrder {
			cells = append(cells, cell{ti, mi})
		}
	}
	preds := parallel.MapOrdered(cfg.Workers, cells, func(_ int, c cell) [][]ner.Span {
		return corpus.Predict(res.Models[CorpusOrder[c.mi]], res.Tests[CorpusOrder[c.ti]])
	})
	var bothPred [][]ner.Span
	for i, c := range cells {
		gold := corpus.Gold(res.Tests[CorpusOrder[c.ti]])
		res.F1[c.ti][c.mi] = metrics.EvaluateEntities(gold, preds[i]).Micro.F1
		if CorpusOrder[c.ti] == CorpusBoth && CorpusOrder[c.mi] == CorpusBoth {
			bothPred = preds[i]
		}
	}
	res.CI = metrics.BootstrapF1(corpus.Gold(res.Tests[CorpusBoth]), bothPred, 300, 0.95, rng)
	return res, nil
}

// RenderTableIII formats the dataset sizes like the paper's Table III.
func (r *IngredientResult) RenderTableIII() string {
	var b strings.Builder
	b.WriteString("Table III: Training and Testing Dataset Sizes For NER on Ingredients Section\n")
	fmt.Fprintf(&b, "%-18s %12s %12s %12s\n", "Datasets", "AllRecipes", "FOOD.com", "BOTH")
	fmt.Fprintf(&b, "%-18s %12d %12d %12d\n", "Training Set Size",
		r.TrainSize[CorpusAllRecipes], r.TrainSize[CorpusFoodCom], r.TrainSize[CorpusBoth])
	fmt.Fprintf(&b, "%-18s %12d %12d %12d\n", "Testing Set Size",
		r.TestSize[CorpusAllRecipes], r.TestSize[CorpusFoodCom], r.TestSize[CorpusBoth])
	return b.String()
}

// RenderTableIV formats the F1 matrix like the paper's Table IV
// (rows = testing set, columns = training-set model).
func (r *IngredientResult) RenderTableIV() string {
	var b strings.Builder
	b.WriteString("Table IV: Evaluation of NER Model for Ingredients Section (F1)\n")
	fmt.Fprintf(&b, "%-12s %12s %12s %12s\n", "Testing Set", "AllRecipes", "FOOD.com", "BOTH")
	for ti, testName := range CorpusOrder {
		fmt.Fprintf(&b, "%-12s %12.4f %12.4f %12.4f\n", testName,
			r.F1[ti][0], r.F1[ti][1], r.F1[ti][2])
	}
	fmt.Fprintf(&b, "BOTH/BOTH bootstrap %.0f%% CI: [%.4f, %.4f]\n",
		r.CI.Level*100, r.CI.Lo, r.CI.Hi)
	return b.String()
}

// TableIExamples are the seven ingredient phrases of the paper's
// Table I, verbatim.
var TableIExamples = []string{
	"1 sheet frozen puff pastry ( thawed )",
	"6 ounces blue cheese , at room temperature",
	"1 tablespoon whole milk ( or half-and-half )",
	"2-3 medium tomatoes",
	"1/2 teaspoon pepper , freshly ground",
	"1/2 teaspoon fresh thyme , minced",
	"1 teaspoon extra virgin olive oil",
}

// RunTableI annotates the Table I examples with the given model and
// renders the attribute table.
func RunTableI(model *ner.Tagger) ([]core.IngredientRecord, string) {
	pipe := core.NewPipeline(nil, model, nil, nil)
	var recs []core.IngredientRecord
	var b strings.Builder
	b.WriteString("Table I: Annotations on the Ingredients Section by the NER Model\n")
	fmt.Fprintf(&b, "%-48s %-22s %-10s %-9s %-12s %-18s %-10s %-8s\n",
		"Ingredient Phrase", "Name", "State", "Quantity", "Unit", "Temperature", "Dry/Fresh", "Size")
	for _, phrase := range TableIExamples {
		rec := pipe.AnnotateIngredient(phrase)
		recs = append(recs, rec)
		fmt.Fprintf(&b, "%-48s %-22s %-10s %-9s %-12s %-18s %-10s %-8s\n",
			rec.Phrase, rec.Name, rec.State, rec.Quantity, rec.Unit, rec.Temp, rec.DryFresh, rec.Size)
	}
	return recs, b.String()
}

// RenderTableII reproduces the static tag-definition table.
func RenderTableII() string {
	rows := []struct{ tag, sig, ex string }{
		{ner.Name, "Name of Ingredient", "salt, pepper"},
		{ner.State, "Processing State of Ingredient", "ground, thawed"},
		{ner.Unit, "Measuring unit(s)", "gram, cup"},
		{ner.Quantity, "Quantity associated with the unit(s)", "1, 1 1/2, 2-4"},
		{ner.Size, "Portion sizes mentioned", "small, large"},
		{ner.Temp, "Temperature applied prior to cooking", "hot, frozen"},
		{ner.DryFresh, "Fresh otherwise as mentioned", "dry, fresh"},
	}
	var b strings.Builder
	b.WriteString("Table II: Named Entity Recognition Tags\n")
	fmt.Fprintf(&b, "%-10s %-40s %s\n", "Tag", "Significance", "Example")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-40s %s\n", r.tag, r.sig, r.ex)
	}
	return b.String()
}
