package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"recipemodel/internal/core"
	"recipemodel/internal/corpus"
	"recipemodel/internal/gazetteer"
	"recipemodel/internal/metrics"
	"recipemodel/internal/ner"
	"recipemodel/internal/parallel"
	"recipemodel/internal/recipedb"
)

// InstructionResult holds the instruction-section NER evaluation
// (Table V) and the trained artifacts the downstream relation
// extraction uses.
type InstructionResult struct {
	Processes metrics.PRF
	Utensils  metrics.PRF
	Tagger    *ner.Tagger
	TechDict  *gazetteer.Lexicon
	UtenDict  *gazetteer.Lexicon
}

// RunInstruction trains the instruction NER on gold-annotated steps
// drawn across all cuisines (the paper annotates the longest-
// instruction recipes from 40 cuisines), builds the
// frequency-thresholded dictionaries from a large unlabeled pass, and
// evaluates processes and utensils separately (Table V).
func RunInstruction(cfg Config) *InstructionResult {
	rng := rand.New(rand.NewSource(cfg.Seed + 40))
	gA := recipedb.NewGenerator(recipedb.SourceAllRecipes, cfg.Seed+41)
	gF := recipedb.NewGenerator(recipedb.SourceFoodCom, cfg.Seed+42)

	half := cfg.InstructionTrain / 2
	train := append(
		corpus.InstructionSentences(gA.Instructions(half)),
		corpus.InstructionSentences(gF.Instructions(cfg.InstructionTrain-half))...)
	train = corpus.Noisify(train, cfg.NoiseRate, rng)

	halfT := cfg.InstructionTest / 2
	testInstr := append(gA.Instructions(halfT), gF.Instructions(cfg.InstructionTest-halfT)...)
	test := corpus.Noisify(corpus.InstructionSentences(testInstr), cfg.NoiseRate, rng)

	tagger := ner.Train(train, ner.InstructionTypes,
		ner.NewInstructionExtractor(cfg.Features),
		ner.TrainConfig{Epochs: cfg.Epochs, Seed: cfg.Seed + 43, Method: cfg.Method})

	// dictionary pass over a larger unlabeled corpus (§III.A). The
	// paper builds its dictionaries from the whole of RecipeDB, so the
	// pass must be large enough for legitimate utensils to clear the
	// threshold-10 bar.
	gDict := recipedb.NewGenerator(recipedb.SourceFoodCom, cfg.Seed+44)
	dictPass := 2 * cfg.InstructionTrain
	if dictPass < 4000 {
		dictPass = 4000
	}
	var steps [][]string
	for _, in := range gDict.Instructions(dictPass) {
		steps = append(steps, in.Tokens)
	}
	tech, uten, _, _ := core.BuildDictionaries(tagger, steps,
		gazetteer.TechniqueThreshold, gazetteer.UtensilThreshold)

	res := &InstructionResult{Tagger: tagger, TechDict: tech, UtenDict: uten}

	// evaluate with dictionary filtering applied to predictions, per
	// type: the filter trades recall for precision, the P>R pattern the
	// paper reports. Prediction is pure per sentence and fans out over
	// the pool; scoring stays serial.
	filtered := parallel.MapOrdered(cfg.Workers, test, func(_ int, s ner.Sentence) []ner.Span {
		return FilterSpans(tagger.Predict(s.Tokens), s.Tokens, tech, uten)
	})
	for i := range test {
		pred := filtered[i]
		scoreType := func(typ string, prf *metrics.PRF) {
			g := map[ner.Span]bool{}
			for _, sp := range test[i].Spans {
				if sp.Type == typ {
					g[sp] = true
				}
			}
			for _, sp := range pred {
				if sp.Type != typ {
					continue
				}
				if g[sp] {
					prf.TP++
					delete(g, sp)
				} else {
					prf.FP++
				}
			}
			prf.FN += len(g)
		}
		scoreType(ner.Process, &res.Processes)
		scoreType(ner.Utensil, &res.Utensils)
	}
	recompute(&res.Processes)
	recompute(&res.Utensils)
	return res
}

func recompute(p *metrics.PRF) {
	tmp := metrics.PRF{}
	tmp.Add(*p)
	*p = tmp
}

// FilterSpans drops PROCESS spans absent from the technique dictionary
// and UTENSIL spans absent from the utensil dictionary — the paper's
// §III.A inconsistency filter.
func FilterSpans(spans []ner.Span, tokens []string, tech, uten *gazetteer.Lexicon) []ner.Span {
	var out []ner.Span
	for _, sp := range spans {
		surface := strings.ToLower(strings.Join(tokens[sp.Start:sp.End], " "))
		switch sp.Type {
		case ner.Process:
			if tech.Len() > 0 && !tech.Contains(surface) {
				continue
			}
		case ner.Utensil:
			if uten.Len() > 0 && !uten.Contains(surface) {
				continue
			}
		}
		out = append(out, sp)
	}
	return out
}

// RenderTableV formats the instruction NER evaluation like Table V.
func (r *InstructionResult) RenderTableV() string {
	var b strings.Builder
	b.WriteString("Table V: Evaluation of NER model for Instructions Section\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %10s\n", "", "Precision", "Recall", "F1 Score")
	fmt.Fprintf(&b, "%-10s %10.2f %10.2f %10.2f\n", "Processes",
		r.Processes.Precision, r.Processes.Recall, r.Processes.F1)
	fmt.Fprintf(&b, "%-10s %10.2f %10.2f %10.2f\n", "Utensils",
		r.Utensils.Precision, r.Utensils.Recall, r.Utensils.F1)
	return b.String()
}
