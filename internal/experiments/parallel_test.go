package experiments

import (
	"reflect"
	"testing"
)

// tinyConfig is a minimal configuration for determinism comparisons
// (each run trains several CRFs, so it must stay small).
func tinyConfig() Config {
	c := testConfig()
	c.PoolAllRecipes = 600
	c.PoolFoodCom = 800
	c.ClusterK = 6
	c.Epochs = 2
	c.InstructionTrain = 150
	c.InstructionTest = 60
	return c
}

// TestRunIngredientWorkerInvariant: the experiment harness is a pure
// function of its Config — Workers must change wall-clock only, never
// the Table III/IV numbers or the trained models' predictions.
func TestRunIngredientWorkerInvariant(t *testing.T) {
	serialCfg := tinyConfig()
	serialCfg.Workers = 1
	serial, err := RunIngredient(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	parCfg := tinyConfig()
	parCfg.Workers = 4
	par, err := RunIngredient(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.F1, par.F1) {
		t.Fatalf("F1 matrix diverged:\nserial %v\npar    %v", serial.F1, par.F1)
	}
	if !reflect.DeepEqual(serial.TrainSize, par.TrainSize) ||
		!reflect.DeepEqual(serial.TestSize, par.TestSize) {
		t.Fatal("Table III sizes diverged across worker counts")
	}
	if serial.CI != par.CI {
		t.Fatalf("bootstrap CI diverged: %+v vs %+v", serial.CI, par.CI)
	}
}

// TestRunCrossValidationWorkerInvariant: per-fold F1s must be
// identical whether folds run sequentially or on the pool.
func TestRunCrossValidationWorkerInvariant(t *testing.T) {
	serialCfg := tinyConfig()
	serialCfg.Workers = 1
	parCfg := tinyConfig()
	parCfg.Workers = 4
	serial := RunCrossValidation(serialCfg, 3)
	par := RunCrossValidation(parCfg, 3)
	if !reflect.DeepEqual(serial.Folds, par.Folds) {
		t.Fatalf("fold F1s diverged:\nserial %v\npar    %v", serial.Folds, par.Folds)
	}
}

// TestRunInstructionWorkerInvariant covers the Table V path.
func TestRunInstructionWorkerInvariant(t *testing.T) {
	serialCfg := tinyConfig()
	serialCfg.Workers = 1
	parCfg := tinyConfig()
	parCfg.Workers = 4
	serial := RunInstruction(serialCfg)
	par := RunInstruction(parCfg)
	if serial.Processes != par.Processes || serial.Utensils != par.Utensils {
		t.Fatalf("Table V diverged:\nserial %+v/%+v\npar    %+v/%+v",
			serial.Processes, serial.Utensils, par.Processes, par.Utensils)
	}
}
