// Package faults is a deterministic fault-injection harness: named
// failure points planted in production code paths (annotate, model,
// mine, serve) that tests arm to inject errors, panics, or latency at
// exactly reproducible call counts — no sleeps, no flakes.
//
// Production code plants a point with a single call:
//
//	if err := faults.Inject("core.annotate"); err != nil { ... }
//
// When nothing is armed (the production default) Inject is one atomic
// load and returns nil — the point compiles down to a no-op branch.
// Tests arm points by name:
//
//	defer faults.Enable("core.annotate", faults.Fault{Err: errBoom, Skip: 2})()
//
// which makes the 3rd hit (and every later one) return errBoom.
// Probabilistic firing stays deterministic too: Prob derives each
// hit's decision from (point name, Seed, hit counter) via SplitMix64,
// so a fixed seed always fires on the same hit sequence.
package faults

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Fault describes what an armed point injects. Exactly one of Err and
// PanicMsg is typically set; Delay may accompany either (latency is
// injected before the error/panic). The zero Fault fires but injects
// nothing — useful for hit counting.
type Fault struct {
	// Err is returned from Inject when the fault fires.
	Err error
	// PanicMsg, when non-empty, makes the point panic with this
	// message instead of returning an error.
	PanicMsg string
	// Delay is injected latency before the fault resolves. Tests that
	// need "a slow call" should prefer OnHit/Block gates; Delay exists
	// for callers exercising timeout paths with real clocks.
	Delay time.Duration
	// Skip suppresses the fault for the first Skip hits.
	Skip int
	// Limit caps how many times the fault fires (0 = unlimited).
	Limit int
	// Prob fires the fault on a hit with this probability (0 means
	// "always", i.e. probability 1). Decisions are derived from
	// (name, Seed, hit index), never from a global RNG, so a fixed
	// seed reproduces the exact firing sequence.
	Prob float64
	// Seed keys the Prob decision stream.
	Seed int64
	// OnHit, when non-nil, is called synchronously on every firing hit
	// with the 1-based hit index — the deterministic replacement for
	// sleeps: tests use it to block a worker on a channel, record
	// interleavings, or cancel a context at an exact call count.
	OnHit func(hit int)
	// Indices, when non-empty, restricts firing to InjectIndexed calls
	// whose index is in the set — the poison-record drills use it to
	// make a specific batch index fail regardless of worker count or
	// scheduling (hit counts are scheduling-dependent under a pool;
	// indices are not). Plain Inject calls never match an indexed
	// fault.
	Indices []int
}

// point is one armed failure site.
type point struct {
	fault Fault
	hits  int
	fired int
}

var (
	mu     sync.Mutex
	points map[string]*point
	// armed is the fast-path gate: 0 means no point is armed anywhere
	// and Inject returns immediately.
	armed atomic.Int32
)

// The fault-point registry: the runtime twin of recipelint's static
// faultpoint rule. Every package that plants a point declares
//
//	const FaultX = "pkg.point"
//	var _ = faults.MustRegister(FaultX)
//
// so the full inventory of names is built at init time, and two
// packages claiming the same name panic the moment they are linked
// into one binary — a test run, not a production incident, is where a
// collision or a renamed drill hook surfaces.
var (
	regMu    sync.Mutex
	registry = map[string]bool{}
)

// MustRegister records a declared fault-point name, panicking on a
// duplicate or empty name. It returns the name so registration can
// ride a package-level `var _ =` next to the constant.
func MustRegister(name string) string {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" {
		panic("faults: MustRegister of empty fault-point name")
	}
	if registry[name] {
		panic(fmt.Sprintf("faults: duplicate fault point name %q", name))
	}
	registry[name] = true
	return name
}

// Registered reports whether name was declared via MustRegister.
func Registered(name string) bool {
	regMu.Lock()
	defer regMu.Unlock()
	return registry[name]
}

// RegisteredNames returns the sorted declared fault-point names.
func RegisteredNames() []string {
	regMu.Lock()
	defer regMu.Unlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Enable arms the named point and returns a disarm func (convenient
// for defer). Re-enabling a name replaces the previous fault and
// resets its counters.
func Enable(name string, f Fault) (disable func()) {
	mu.Lock()
	defer mu.Unlock()
	if points == nil {
		points = make(map[string]*point)
	}
	if _, ok := points[name]; !ok {
		armed.Add(1)
	}
	points[name] = &point{fault: f}
	return func() { Disable(name) }
}

// Disable disarms the named point; disarming an unarmed name is a
// no-op.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := points[name]; ok {
		delete(points, name)
		armed.Add(-1)
	}
}

// Reset disarms every point.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armed.Add(-int32(len(points)))
	points = nil
}

// Hits reports how many times the named point has been reached since
// it was armed (whether or not the fault fired).
func Hits(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.hits
	}
	return 0
}

// Fired reports how many times the named point actually injected its
// fault (a subset of Hits once Skip/Limit/Prob are applied). Crash
// tests use it to assert a kill point fired exactly once before the
// run died.
func Fired(name string) int {
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[name]; ok {
		return p.fired
	}
	return 0
}

// splitmix64 is the SplitMix64 finalizer (same stream-splitting
// discipline as internal/parallel).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashName folds a point name into a 64-bit key (FNV-1a).
func hashName(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// fires decides whether hit number n (1-based) with record index idx
// fires, deterministically.
func (f *Fault) fires(name string, n, idx int) bool {
	if len(f.Indices) > 0 {
		match := false
		for _, want := range f.Indices {
			if idx == want {
				match = true
				break
			}
		}
		if !match {
			return false
		}
	}
	if n <= f.Skip {
		return false
	}
	if f.Prob > 0 && f.Prob < 1 {
		u := splitmix64(hashName(name) ^ splitmix64(uint64(f.Seed)+uint64(n)))
		if float64(u>>11)/float64(1<<53) >= f.Prob {
			return false
		}
	}
	return true
}

// Inject is the planted hook. It returns nil instantly when the named
// point is not armed; otherwise it counts the hit and, if the fault
// fires, injects the configured delay, callback, panic, or error (in
// that order). A plain Inject carries index -1 and so never matches a
// fault armed with Indices.
func Inject(name string) error {
	//recipelint:allow ctxflow Inject is the documented non-ctx wrapper shim for call sites with no context; ctx-bearing callers use InjectContext
	return InjectIndexedContext(context.Background(), name, -1)
}

// InjectContext is Inject for points planted on request paths that
// carry a context: an injected Delay is interruptible — cancellation
// cuts the stall short and the context error is returned, exactly as
// if the stalled dependency had honored the caller's deadline.
func InjectContext(ctx context.Context, name string) error {
	return InjectIndexedContext(ctx, name, -1)
}

// InjectIndexed is Inject for points planted inside per-record batch
// workers: the caller passes the record's batch index, and a fault
// armed with Indices fires only on the targeted records — the
// scheduling-independent way to poison "record i" under a worker
// pool.
func InjectIndexed(name string, index int) error {
	//recipelint:allow ctxflow InjectIndexed is the documented non-ctx wrapper shim for batch workers without a context; ctx-bearing callers use InjectIndexedContext
	return InjectIndexedContext(context.Background(), name, index)
}

// InjectIndexedContext combines InjectIndexed and InjectContext.
func InjectIndexedContext(ctx context.Context, name string, index int) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	p, ok := points[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	p.hits++
	hit := p.hits
	f := p.fault
	if !f.fires(name, hit, index) || (f.Limit > 0 && p.fired >= f.Limit) {
		mu.Unlock()
		return nil
	}
	p.fired++
	mu.Unlock()

	if f.Delay > 0 {
		// A cancelled caller escapes the stall immediately: the delay
		// models a slow dependency, and a slow dependency does not get
		// to hold a request past its deadline.
		t := time.NewTimer(f.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if f.OnHit != nil {
		f.OnHit(hit)
	}
	if f.PanicMsg != "" {
		panic(fmt.Sprintf("faults: injected panic at %q (hit %d): %s", name, hit, f.PanicMsg))
	}
	return f.Err
}
