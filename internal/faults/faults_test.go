package faults

import (
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
)

var errBoom = errors.New("boom")

func TestDisabledIsNoOp(t *testing.T) {
	Reset()
	if err := Inject("nowhere"); err != nil {
		t.Fatalf("unarmed Inject = %v", err)
	}
}

func TestErrorInjectionWithSkipAndLimit(t *testing.T) {
	Reset()
	defer Reset()
	defer Enable("p", Fault{Err: errBoom, Skip: 2, Limit: 1})()
	var got []error
	for i := 0; i < 5; i++ {
		got = append(got, Inject("p"))
	}
	want := []error{nil, nil, errBoom, nil, nil}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("firing sequence = %v, want %v", got, want)
	}
	if Hits("p") != 5 {
		t.Fatalf("hits = %d, want 5", Hits("p"))
	}
	if Fired("p") != 1 {
		t.Fatalf("fired = %d, want 1 (Skip ate 2, Limit capped at 1)", Fired("p"))
	}
	if Fired("nowhere") != 0 {
		t.Fatalf("unarmed Fired = %d", Fired("nowhere"))
	}
}

func TestPanicInjection(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Fault{PanicMsg: "kaboom"})
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "kaboom") {
			t.Fatalf("recover = %v", r)
		}
	}()
	_ = Inject("p")
	t.Fatal("expected panic")
}

func TestProbDeterministic(t *testing.T) {
	Reset()
	defer Reset()
	run := func(seed int64) []bool {
		Enable("p", Fault{Err: errBoom, Prob: 0.5, Seed: seed})
		out := make([]bool, 64)
		for i := range out {
			out[i] = Inject("p") != nil
		}
		Disable("p")
		return out
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different firing sequences")
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("Prob=0.5 fired %d/%d times", fired, len(a))
	}
	if reflect.DeepEqual(a, run(8)) {
		t.Fatal("different seeds produced identical firing sequences")
	}
}

func TestOnHitGate(t *testing.T) {
	Reset()
	defer Reset()
	var hits []int
	Enable("p", Fault{OnHit: func(h int) { hits = append(hits, h) }, Skip: 1})
	for i := 0; i < 3; i++ {
		_ = Inject("p")
	}
	if !reflect.DeepEqual(hits, []int{2, 3}) {
		t.Fatalf("OnHit hits = %v", hits)
	}
}

func TestConcurrentInjectIsSafe(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Fault{Err: errBoom, Prob: 0.5, Seed: 3})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = Inject("p")
			}
		}()
	}
	wg.Wait()
	if Hits("p") != 800 {
		t.Fatalf("hits = %d, want 800", Hits("p"))
	}
}
