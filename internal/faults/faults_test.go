package faults

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

func TestDisabledIsNoOp(t *testing.T) {
	Reset()
	if err := Inject("nowhere"); err != nil {
		t.Fatalf("unarmed Inject = %v", err)
	}
}

func TestErrorInjectionWithSkipAndLimit(t *testing.T) {
	Reset()
	defer Reset()
	defer Enable("p", Fault{Err: errBoom, Skip: 2, Limit: 1})()
	var got []error
	for i := 0; i < 5; i++ {
		got = append(got, Inject("p"))
	}
	want := []error{nil, nil, errBoom, nil, nil}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("firing sequence = %v, want %v", got, want)
	}
	if Hits("p") != 5 {
		t.Fatalf("hits = %d, want 5", Hits("p"))
	}
	if Fired("p") != 1 {
		t.Fatalf("fired = %d, want 1 (Skip ate 2, Limit capped at 1)", Fired("p"))
	}
	if Fired("nowhere") != 0 {
		t.Fatalf("unarmed Fired = %d", Fired("nowhere"))
	}
}

func TestPanicInjection(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Fault{PanicMsg: "kaboom"})
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "kaboom") {
			t.Fatalf("recover = %v", r)
		}
	}()
	_ = Inject("p")
	t.Fatal("expected panic")
}

func TestProbDeterministic(t *testing.T) {
	Reset()
	defer Reset()
	run := func(seed int64) []bool {
		Enable("p", Fault{Err: errBoom, Prob: 0.5, Seed: seed})
		out := make([]bool, 64)
		for i := range out {
			out[i] = Inject("p") != nil
		}
		Disable("p")
		return out
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different firing sequences")
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("Prob=0.5 fired %d/%d times", fired, len(a))
	}
	if reflect.DeepEqual(a, run(8)) {
		t.Fatal("different seeds produced identical firing sequences")
	}
}

func TestOnHitGate(t *testing.T) {
	Reset()
	defer Reset()
	var hits []int
	Enable("p", Fault{OnHit: func(h int) { hits = append(hits, h) }, Skip: 1})
	for i := 0; i < 3; i++ {
		_ = Inject("p")
	}
	if !reflect.DeepEqual(hits, []int{2, 3}) {
		t.Fatalf("OnHit hits = %v", hits)
	}
}

func TestConcurrentInjectIsSafe(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Fault{Err: errBoom, Prob: 0.5, Seed: 3})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = Inject("p")
			}
		}()
	}
	wg.Wait()
	if Hits("p") != 800 {
		t.Fatalf("hits = %d, want 800", Hits("p"))
	}
}

// TestIndexedFaultFiresOnlyOnTargetIndices: a fault armed with Indices
// fires on InjectIndexed calls carrying a listed index — every listed
// index, regardless of arrival order — and on nothing else.
func TestIndexedFaultFiresOnlyOnTargetIndices(t *testing.T) {
	Reset()
	defer Reset()
	defer Enable("rec", Fault{Err: errBoom, Indices: []int{3, 7}})()
	var fired []int
	for _, idx := range []int{7, 0, 1, 2, 3, 4, 3} {
		if err := InjectIndexed("rec", idx); err != nil {
			if !errors.Is(err, errBoom) {
				t.Fatalf("index %d: err = %v", idx, err)
			}
			fired = append(fired, idx)
		}
	}
	if !reflect.DeepEqual(fired, []int{7, 3, 3}) {
		t.Fatalf("fired on %v, want [7 3 3]", fired)
	}
	if Hits("rec") != 7 || Fired("rec") != 3 {
		t.Fatalf("hits = %d fired = %d, want 7/3", Hits("rec"), Fired("rec"))
	}
}

// TestPlainInjectNeverMatchesIndexedFault: the drills rely on plain
// Inject call sites staying inert when a fault targets record indices.
func TestPlainInjectNeverMatchesIndexedFault(t *testing.T) {
	Reset()
	defer Reset()
	defer Enable("rec", Fault{Err: errBoom, Indices: []int{0}})()
	for i := 0; i < 3; i++ {
		if err := Inject("rec"); err != nil {
			t.Fatalf("plain Inject fired an indexed fault: %v", err)
		}
	}
	if err := InjectIndexed("rec", 0); !errors.Is(err, errBoom) {
		t.Fatalf("indexed call = %v, want errBoom", err)
	}
}

// TestIndexedFaultWithLimit: Limit still caps an indexed fault, so a
// drill can poison "index i, first pass only".
func TestIndexedFaultWithLimit(t *testing.T) {
	Reset()
	defer Reset()
	defer Enable("rec", Fault{Err: errBoom, Indices: []int{5}, Limit: 1})()
	if err := InjectIndexed("rec", 5); !errors.Is(err, errBoom) {
		t.Fatalf("first hit = %v", err)
	}
	if err := InjectIndexed("rec", 5); err != nil {
		t.Fatalf("post-limit hit = %v, want nil", err)
	}
}

// TestIndexedPanicInjection: indexed faults can panic too — the form
// the containment drills use.
func TestIndexedPanicInjection(t *testing.T) {
	Reset()
	defer Reset()
	defer Enable("rec", Fault{PanicMsg: "poisoned", Indices: []int{2}})()
	_ = InjectIndexed("rec", 1)
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(r.(string), "poisoned") {
			t.Fatalf("recover = %v", r)
		}
	}()
	_ = InjectIndexed("rec", 2)
	t.Fatal("index 2 did not panic")
}

// TestMustRegisterDuplicatePanics: the registry is the runtime half of
// the faultpoint lint rule — two packages declaring the same point
// name blow up the moment both are linked into one binary.
func TestMustRegisterDuplicatePanics(t *testing.T) {
	const name = "faults_test.dup"
	if got := MustRegister(name); got != name {
		t.Fatalf("MustRegister = %q, want %q", got, name)
	}
	if !Registered(name) {
		t.Fatalf("Registered(%q) = false after MustRegister", name)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate MustRegister did not panic")
		}
	}()
	MustRegister(name)
}

// TestMustRegisterEmptyPanics: a nameless point is unaddressable.
func TestMustRegisterEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty-name MustRegister did not panic")
		}
	}()
	MustRegister("")
}

// TestRegisteredNamesSorted: the inventory is deterministic.
func TestRegisteredNamesSorted(t *testing.T) {
	MustRegister("faults_test.names-b")
	MustRegister("faults_test.names-a")
	names := RegisteredNames()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("RegisteredNames not sorted: %q", names)
	}
	found := 0
	for _, n := range names {
		if n == "faults_test.names-a" || n == "faults_test.names-b" {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("registered names missing from inventory %q", names)
	}
}

// TestDelayHonorsContext: an injected Delay models a slow dependency,
// and a slow dependency must not hold a cancelled caller — the stall
// breaks the instant the context dies and the context error surfaces.
func TestDelayHonorsContext(t *testing.T) {
	Reset()
	defer Reset()
	defer Enable("p", Fault{Err: errBoom, Delay: time.Hour})()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan error, 1)
	go func() { done <- InjectContext(ctx, "p") }()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled delayed inject = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled InjectContext still stalled in the injected delay")
	}
}

// TestDelayContextUncancelled: with a live context the delayed fault
// behaves exactly like the plain path — delay, then the armed error.
func TestDelayContextUncancelled(t *testing.T) {
	Reset()
	defer Reset()
	defer Enable("p", Fault{Err: errBoom, Delay: time.Microsecond})()
	if err := InjectContext(context.Background(), "p"); !errors.Is(err, errBoom) {
		t.Fatalf("delayed inject = %v, want errBoom", err)
	}
}
