// Package flight is request coalescing for the heavy-tail traffic
// shape: when N concurrent callers ask for the same uncached phrase,
// exactly one of them (the leader) runs the expensive decode and the
// other N-1 (the waiters) receive its result — the classic
// singleflight idea, adapted to the serving stack's contracts:
//
//   - Waiters are context-aware: a waiter whose request context dies
//     detaches immediately with ctx.Err() instead of blocking on a
//     slow leader. The leader keeps running — its result is still
//     useful to the cache and to the waiters that stayed.
//   - A panicking leader must not poison its waiters: the panic
//     propagates to the leader's own caller (where the server's
//     recovery middleware turns it into a 500), while every waiter
//     falls through to its own fn call rather than re-throwing a
//     panic it cannot attribute or returning a fabricated error.
//   - Calls are keyed by the caller; the server keys on
//     (generation, phrase) so a hot reload mid-herd starts a fresh
//     flight for the new model instead of handing new requests a
//     stale leader's result.
//
// The flight.leader fault point fires in the leader path after the
// call slot is published, so drills can hold a leader in place while
// a herd assembles (OnHit), fail it (Err), or kill it (PanicMsg) at a
// deterministic hit count — no sleeps anywhere.
package flight

import (
	"context"
	"sync"

	"recipemodel/internal/faults"
)

// FaultLeader fires inside the leader path of every Do call, after
// the leader has won the election and published its call slot (so
// concurrent Do calls for the same key are guaranteed to join as
// waiters while the fault holds the leader). Arm with OnHit to gate a
// herd deterministically, PanicMsg to drill leader-panic containment,
// or Err to fail the whole flight.
const FaultLeader = "flight.leader"

var _ = faults.MustRegister(FaultLeader)

// call is one in-flight computation. done is closed exactly once,
// after val/err/panicked are final; waiters read them only after the
// close, so the fields need no lock of their own.
type call[V any] struct {
	done     chan struct{}
	val      V
	err      error
	panicked bool
	waiters  int // joins so far; Group.mu-protected, test introspection
}

// Group coalesces concurrent calls by key. The zero value is ready to
// use. A Group must not be copied after first use.
type Group[V any] struct {
	mu    sync.Mutex
	calls map[string]*call[V]
}

// Do executes fn exactly once per key among concurrent callers: the
// first caller for a key becomes the leader and runs fn; callers that
// arrive while the leader is running become waiters and receive the
// leader's (value, error) with shared=true. Sequential calls do not
// coalesce — once the leader finishes, the key is free and the next
// caller leads its own flight.
//
// A waiter whose ctx is done returns ctx.Err() without waiting for
// the leader. If the leader panics, the panic propagates out of the
// leader's Do, and each waiter runs fn itself (shared=false) — a dead
// leader never poisons the herd. The leader itself ignores ctx: by
// the time it is elected it is doing work others depend on.
func (g *Group[V]) Do(ctx context.Context, key string, fn func() (V, error)) (v V, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*call[V])
	}
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		select {
		case <-c.done:
			if c.panicked {
				v, err = fn()
				return v, false, err
			}
			return c.val, true, c.err
		case <-ctx.Done():
			return v, false, ctx.Err()
		}
	}
	c := &call[V]{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	// The deferred epilogue runs on both the normal return and the
	// panic unwind; completed distinguishes them so waiters learn the
	// leader died and fall through to their own fn.
	completed := false
	defer func() {
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
		c.panicked = !completed
		close(c.done)
	}()
	if ferr := faults.InjectContext(ctx, FaultLeader); ferr != nil {
		c.err = ferr
		completed = true
		return v, false, ferr
	}
	c.val, c.err = fn()
	completed = true
	return c.val, false, c.err
}

// Waiters reports how many callers have joined the in-flight call for
// key (0 when no call is in flight). Drills poll it to know a herd
// has fully assembled behind a fault-held leader before releasing —
// the sleep-free way to pin "N waiters, one decode".
func (g *Group[V]) Waiters(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c.waiters
	}
	return 0
}

// InFlight reports the number of keys with a live leader.
func (g *Group[V]) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}
