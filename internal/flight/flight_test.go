package flight

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"recipemodel/internal/faults"
)

// waitFor spins until cond holds — a convergent, clock-free gate (the
// condition is monotone in every test that uses it).
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; !cond(); i++ {
		if i > 1e8 {
			t.Fatal("condition never became true")
		}
		runtime.Gosched()
	}
}

// TestHerdOneExecution: a held leader plus N waiters resolve with
// exactly one fn call, every caller seeing the leader's value and the
// waiters flagged shared.
func TestHerdOneExecution(t *testing.T) {
	defer faults.Reset()
	const herd = 50
	release := make(chan struct{})
	// OnHit fires in the leader after its call slot is published, so
	// blocking here guarantees every other Do joins as a waiter.
	faults.Enable(FaultLeader, faults.Fault{OnHit: func(int) { <-release }})

	var g Group[string]
	var calls atomic.Int32
	fn := func() (string, error) {
		calls.Add(1)
		return "decoded", nil
	}

	type result struct {
		v      string
		shared bool
		err    error
	}
	results := make(chan result, herd)
	for i := 0; i < herd; i++ {
		go func() {
			v, shared, err := g.Do(context.Background(), "salt", fn)
			results <- result{v, shared, err}
		}()
	}
	waitFor(t, func() bool { return g.Waiters("salt") == herd-1 })
	close(release)

	sharedCount := 0
	for i := 0; i < herd; i++ {
		r := <-results
		if r.err != nil || r.v != "decoded" {
			t.Fatalf("result = (%q, %v)", r.v, r.err)
		}
		if r.shared {
			sharedCount++
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	if sharedCount != herd-1 {
		t.Fatalf("shared results = %d, want %d", sharedCount, herd-1)
	}
	if g.InFlight() != 0 {
		t.Fatalf("InFlight = %d after completion", g.InFlight())
	}
}

// TestWaiterDetachesOnCancel: a waiter whose context dies returns
// ctx.Err() immediately instead of blocking on the held leader; the
// leader still completes normally.
func TestWaiterDetachesOnCancel(t *testing.T) {
	defer faults.Reset()
	release := make(chan struct{})
	faults.Enable(FaultLeader, faults.Fault{OnHit: func(int) { <-release }})

	var g Group[int]
	fn := func() (int, error) { return 42, nil }

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do(context.Background(), "k", fn)
		leaderDone <- err
	}()
	waitFor(t, func() bool { return g.InFlight() == 1 })

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, "k", fn)
		waiterDone <- err
	}()
	waitFor(t, func() bool { return g.Waiters("k") == 1 })

	cancel()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter error = %v, want context.Canceled", err)
	}
	// the leader is unaffected by the waiter's departure.
	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader error = %v", err)
	}
}

// TestLeaderPanicDoesNotPoisonWaiters: the leader's panic propagates
// to the leader's caller only; every waiter falls through to its own
// fn call and succeeds.
func TestLeaderPanicDoesNotPoisonWaiters(t *testing.T) {
	defer faults.Reset()
	const waiters = 8
	release := make(chan struct{})
	// OnHit assembles the herd, then the injected panic kills the
	// leader (Inject order: Delay, OnHit, PanicMsg, Err).
	faults.Enable(FaultLeader, faults.Fault{
		OnHit:    func(int) { <-release },
		PanicMsg: "leader corrupted",
		Limit:    1,
	})

	var g Group[string]
	var calls atomic.Int32
	fn := func() (string, error) {
		calls.Add(1)
		return "own decode", nil
	}

	leaderPanic := make(chan any, 1)
	go func() {
		defer func() { leaderPanic <- recover() }()
		g.Do(context.Background(), "k", fn)
	}()
	waitFor(t, func() bool { return g.InFlight() == 1 })

	var wg sync.WaitGroup
	results := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := g.Do(context.Background(), "k", fn)
			if shared {
				results <- errors.New("waiter got shared result from a dead leader")
				return
			}
			if v != "own decode" {
				results <- errors.New("waiter value = " + v)
				return
			}
			results <- err
		}()
	}
	waitFor(t, func() bool { return g.Waiters("k") == waiters })
	close(release)

	rec := <-leaderPanic
	if rec == nil {
		t.Fatal("leader did not panic")
	}
	if !strings.Contains(rec.(string), "leader corrupted") {
		t.Fatalf("panic value = %v", rec)
	}
	wg.Wait()
	for i := 0; i < waiters; i++ {
		if err := <-results; err != nil {
			t.Fatal(err)
		}
	}
	// every waiter decoded on its own; the leader never reached fn.
	if got := calls.Load(); got != waiters {
		t.Fatalf("fn ran %d times, want %d", got, waiters)
	}
}

// TestLeaderFaultErrorShared: an injected leader error is the flight's
// result — waiters share it rather than re-decoding (the fault models
// a failure fn itself would have hit).
func TestLeaderFaultErrorShared(t *testing.T) {
	defer faults.Reset()
	errBoom := errors.New("boom")
	release := make(chan struct{})
	faults.Enable(FaultLeader, faults.Fault{
		OnHit: func(int) { <-release },
		Err:   errBoom,
	})

	var g Group[int]
	var calls atomic.Int32
	fn := func() (int, error) { calls.Add(1); return 1, nil }

	errs := make(chan error, 2)
	sharedc := make(chan bool, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, shared, err := g.Do(context.Background(), "k", fn)
			sharedc <- shared
			errs <- err
		}()
	}
	waitFor(t, func() bool { return g.Waiters("k") == 1 })
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, errBoom) {
			t.Fatalf("error = %v, want boom", err)
		}
	}
	if calls.Load() != 0 {
		t.Fatalf("fn ran %d times, want 0 (fault preempted the leader)", calls.Load())
	}
	shared := 0
	for i := 0; i < 2; i++ {
		if <-sharedc {
			shared++
		}
	}
	if shared != 1 {
		t.Fatalf("shared results = %d, want 1", shared)
	}
}

// TestKeysIndependent: flights on different keys run concurrently and
// do not share results.
func TestKeysIndependent(t *testing.T) {
	defer faults.Reset()
	var g Group[string]
	var wg sync.WaitGroup
	for _, key := range []string{"a", "b", "c"} {
		key := key
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := g.Do(context.Background(), key, func() (string, error) { return "v:" + key, nil })
			if err != nil || v != "v:"+key {
				t.Errorf("Do(%q) = (%q, %v)", key, v, err)
			}
		}()
	}
	wg.Wait()
}

// TestSequentialCallsEachExecute: coalescing is a property of
// concurrency, not of the key's history.
func TestSequentialCallsEachExecute(t *testing.T) {
	var g Group[int]
	var calls atomic.Int32
	for i := 0; i < 3; i++ {
		v, shared, err := g.Do(context.Background(), "k", func() (int, error) {
			return int(calls.Add(1)), nil
		})
		if err != nil || shared || v != i+1 {
			t.Fatalf("call %d = (%d, shared=%v, %v)", i, v, shared, err)
		}
	}
}

// TestFnErrorShared: a leader's real error propagates to waiters as
// the shared flight result.
func TestFnErrorShared(t *testing.T) {
	defer faults.Reset()
	errDecode := errors.New("decode failed")
	release := make(chan struct{})
	faults.Enable(FaultLeader, faults.Fault{OnHit: func(int) { <-release }})

	var g Group[int]
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, _, err := g.Do(context.Background(), "k", func() (int, error) { return 0, errDecode })
			errs <- err
		}()
	}
	waitFor(t, func() bool { return g.Waiters("k") == 1 })
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, errDecode) {
			t.Fatalf("error = %v, want decode failed", err)
		}
	}
}
