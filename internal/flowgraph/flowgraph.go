// Package flowgraph converts a mined recipe model into a dataflow
// graph — the representation of Mori et al.'s "Flow Graph Corpus from
// Recipe Texts" that the paper cites as the traditional modeling of
// recipes ([3], §I) and subsumes with its event chains. Each cooking
// event consumes ingredients (and the running intermediate mixtures in
// its utensil) and produces a new intermediate node; the final node is
// the dish.
//
// The flow graph makes the implicit temporal structure explicit and
// queryable: which raw ingredients end up in the final dish, which
// steps are independent (parallelizable), and what the critical path
// of the preparation is.
package flowgraph

import (
	"fmt"
	"sort"
	"strings"

	"recipemodel/internal/core"
)

// NodeKind distinguishes raw inputs, intermediate products, and
// process applications.
type NodeKind int

// Node kinds.
const (
	RawIngredient NodeKind = iota
	Intermediate
	Action
)

// String names the kind.
func (k NodeKind) String() string {
	switch k {
	case RawIngredient:
		return "ingredient"
	case Intermediate:
		return "intermediate"
	default:
		return "action"
	}
}

// Node is one flow-graph vertex.
type Node struct {
	ID   int
	Kind NodeKind
	// Label is the ingredient name, the process name (actions), or a
	// generated mixture label (intermediates).
	Label string
	// Step is the instruction index for action nodes, -1 otherwise.
	Step int
	// Utensil holds the location of an action, when known.
	Utensil string
}

// Graph is the dataflow DAG. Edges point from inputs to the action
// that consumes them and from each action to its output node.
type Graph struct {
	Nodes []Node
	// Edges[i] lists the successor node ids of node i.
	Edges map[int][]int
	// Final is the id of the final product node, or -1 for an empty
	// recipe.
	Final int
}

// Build constructs the flow graph from a mined model. Heuristics
// follow the event chain: an action consumes (a) every raw ingredient
// named in its relation that has not been consumed yet, (b) the
// current intermediate held in its utensil if that utensil was used
// before, and (c) with no utensil, the most recent intermediate.
func Build(m *core.RecipeModel) *Graph {
	g := &Graph{Edges: map[int][]int{}, Final: -1}
	newNode := func(k NodeKind, label string, step int, utensil string) int {
		id := len(g.Nodes)
		g.Nodes = append(g.Nodes, Node{ID: id, Kind: k, Label: label, Step: step, Utensil: utensil})
		return id
	}
	addEdge := func(from, to int) {
		g.Edges[from] = append(g.Edges[from], to)
	}

	// raw ingredient nodes, by canonical name.
	rawOf := map[string]int{}
	for _, rec := range m.Ingredients {
		n := strings.ToLower(rec.Name)
		if n == "" {
			continue
		}
		if _, ok := rawOf[n]; !ok {
			rawOf[n] = newNode(RawIngredient, n, -1, "")
		}
	}

	consumed := map[string]bool{}    // raw ingredients already flowed in
	ingredientAt := map[string]int{} // ingredient → intermediate containing it
	inUtensil := map[string]int{}    // utensil → current intermediate node
	lastIntermediate := -1           // most recent product
	mixCounter := 0

	for _, e := range m.Events {
		act := newNode(Action, strings.ToLower(e.Process), e.Step, firstUtensil(e))

		inputs := map[int]bool{} // dedupe edges into act
		consume := func(from int) {
			if !inputs[from] {
				inputs[from] = true
				addEdge(from, act)
			}
		}
		var touched []string

		// (a) ingredients named by the relation: raw on first mention,
		// else the intermediate currently containing them.
		for _, a := range e.Ingredients {
			name := canonical(a.Text, rawOf)
			if name == "" {
				continue
			}
			touched = append(touched, name)
			if !consumed[name] {
				consumed[name] = true
				consume(rawOf[name])
			} else if at, ok := ingredientAt[name]; ok {
				consume(at)
			}
		}
		// (b)/(c) intermediate inputs.
		ut := firstUtensil(e)
		if ut != "" {
			if prev, ok := inUtensil[ut]; ok {
				consume(prev)
			}
		} else if lastIntermediate >= 0 && len(g.Edges[lastIntermediate]) == 0 {
			// utensil-less verbs ("drain", "serve") chain off the latest
			// unconsumed product.
			consume(lastIntermediate)
		}
		// implicit transfer: an action with no inputs at all operates on
		// the running preparation ("transfer the mixture to a platter").
		if len(inputs) == 0 && lastIntermediate >= 0 {
			consume(lastIntermediate)
		}

		// output intermediate.
		mixCounter++
		out := newNode(Intermediate, fmt.Sprintf("mixture-%d", mixCounter), -1, ut)
		addEdge(act, out)
		if ut != "" {
			inUtensil[ut] = out
		}
		// everything that flowed in now lives in the output, as does
		// anything carried by a consumed intermediate.
		for _, name := range touched {
			ingredientAt[name] = out
		}
		for name, at := range ingredientAt {
			if inputs[at] {
				ingredientAt[name] = out
			}
		}
		lastIntermediate = out
		g.Final = out
	}
	return g
}

func firstUtensil(e core.Event) string {
	if len(e.Utensils) > 0 {
		return strings.ToLower(e.Utensils[0].Text)
	}
	return ""
}

// canonical maps an argument surface to a known raw-ingredient name
// (exact, then head-word containment).
func canonical(text string, rawOf map[string]int) string {
	t := strings.ToLower(text)
	if _, ok := rawOf[t]; ok {
		return t
	}
	for name := range rawOf {
		if strings.Contains(t, name) || strings.Contains(name, t) {
			return name
		}
	}
	return ""
}

// Predecessors returns the node ids with an edge into id.
func (g *Graph) Predecessors(id int) []int {
	var out []int
	for from, tos := range g.Edges {
		for _, to := range tos {
			if to == id {
				out = append(out, from)
			}
		}
	}
	sort.Ints(out)
	return out
}

// ReachesFinal reports which raw ingredients flow (transitively) into
// the final product.
func (g *Graph) ReachesFinal() map[string]bool {
	out := map[string]bool{}
	if g.Final < 0 {
		return out
	}
	// reverse reachability from Final.
	seen := map[int]bool{g.Final: true}
	queue := []int{g.Final}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, p := range g.Predecessors(cur) {
			if !seen[p] {
				seen[p] = true
				queue = append(queue, p)
			}
		}
	}
	for id := range seen {
		if g.Nodes[id].Kind == RawIngredient {
			out[g.Nodes[id].Label] = true
		}
	}
	return out
}

// CriticalPath returns the longest action chain (by node count) ending
// at the final node — the steps that cannot be parallelized.
func (g *Graph) CriticalPath() []Node {
	if g.Final < 0 {
		return nil
	}
	memo := map[int][]int{}
	var longest func(id int) []int
	longest = func(id int) []int {
		if p, ok := memo[id]; ok {
			return p
		}
		var best []int
		for _, pred := range g.Predecessors(id) {
			if p := longest(pred); len(p) > len(best) {
				best = p
			}
		}
		path := append(append([]int(nil), best...), id)
		memo[id] = path
		return path
	}
	var out []Node
	for _, id := range longest(g.Final) {
		if g.Nodes[id].Kind == Action {
			out = append(out, g.Nodes[id])
		}
	}
	return out
}

// Actions returns the action nodes in step order.
func (g *Graph) Actions() []Node {
	var out []Node
	for _, n := range g.Nodes {
		if n.Kind == Action {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DOT renders the flow graph as a Graphviz document.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph flow {\n  rankdir=TB;\n")
	for _, n := range g.Nodes {
		shape := "ellipse"
		switch n.Kind {
		case Action:
			shape = "box"
		case Intermediate:
			shape = "diamond"
		}
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s];\n", n.ID, n.Label, shape)
	}
	var froms []int
	for from := range g.Edges {
		froms = append(froms, from)
	}
	sort.Ints(froms)
	for _, from := range froms {
		for _, to := range g.Edges[from] {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", from, to)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
