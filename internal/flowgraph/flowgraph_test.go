package flowgraph

import (
	"strings"
	"testing"

	"recipemodel/internal/core"
	"recipemodel/internal/relations"
)

// pastaModel is a hand-built mined model:
//
//	step 0: boil water in pot
//	step 1: add pasta to pot
//	step 2: chop tomato (in bowl)
//	step 3: toss tomato into pot
//	step 4: serve
func pastaModel() *core.RecipeModel {
	arg := func(names ...string) []relations.Argument {
		var out []relations.Argument
		for _, n := range names {
			out = append(out, relations.Argument{Text: n})
		}
		return out
	}
	return &core.RecipeModel{
		Ingredients: []core.IngredientRecord{
			{Name: "water"}, {Name: "pasta"}, {Name: "tomato"}, {Name: "basil"},
		},
		Events: []core.Event{
			{Step: 0, Relation: relations.Relation{Process: "boil", Ingredients: arg("water"), Utensils: arg("pot")}},
			{Step: 1, Relation: relations.Relation{Process: "add", Ingredients: arg("pasta"), Utensils: arg("pot")}},
			{Step: 2, Relation: relations.Relation{Process: "chop", Ingredients: arg("tomato"), Utensils: arg("bowl")}},
			{Step: 3, Relation: relations.Relation{Process: "toss", Ingredients: arg("tomato"), Utensils: arg("pot")}},
			{Step: 4, Relation: relations.Relation{Process: "serve"}},
		},
	}
}

func TestBuildShape(t *testing.T) {
	g := Build(pastaModel())
	if g.Final < 0 {
		t.Fatal("no final node")
	}
	actions := g.Actions()
	if len(actions) != 5 {
		t.Fatalf("actions = %d", len(actions))
	}
	// every action has exactly one product edge.
	for _, a := range actions {
		outs := g.Edges[a.ID]
		if len(outs) != 1 || g.Nodes[outs[0]].Kind != Intermediate {
			t.Fatalf("action %s has outputs %v", a.Label, outs)
		}
	}
}

func TestUtensilChaining(t *testing.T) {
	g := Build(pastaModel())
	// the "add" action must consume the boil product (same pot).
	var addID, boilOut int = -1, -1
	for _, n := range g.Nodes {
		if n.Kind == Action && n.Label == "add" {
			addID = n.ID
		}
		if n.Kind == Action && n.Label == "boil" {
			boilOut = g.Edges[n.ID][0]
		}
	}
	found := false
	for _, p := range g.Predecessors(addID) {
		if p == boilOut {
			found = true
		}
	}
	if !found {
		t.Fatal("add does not consume the pot's previous contents")
	}
}

func TestReachesFinal(t *testing.T) {
	g := Build(pastaModel())
	reach := g.ReachesFinal()
	for _, want := range []string{"water", "pasta", "tomato"} {
		if !reach[want] {
			t.Errorf("%s should reach the final dish: %v", want, reach)
		}
	}
	// basil is declared but never used in any event.
	if reach["basil"] {
		t.Error("basil never flows into the dish")
	}
}

func TestCriticalPath(t *testing.T) {
	g := Build(pastaModel())
	path := g.CriticalPath()
	if len(path) < 3 {
		t.Fatalf("critical path too short: %v", path)
	}
	// the path must end at the last action feeding the final node and
	// be ordered by step.
	for i := 1; i < len(path); i++ {
		if path[i].Step < path[i-1].Step {
			t.Fatalf("critical path out of order: %v", path)
		}
	}
	// chop (bowl branch) is parallel to the pot branch: boil → add →
	// toss (+serve) is longer, so chop should not be on the critical
	// path's pot prefix.
	labels := map[string]bool{}
	for _, n := range path {
		labels[n.Label] = true
	}
	if !labels["boil"] || !labels["toss"] {
		t.Fatalf("pot chain missing from critical path: %v", path)
	}
}

func TestEmptyRecipe(t *testing.T) {
	g := Build(&core.RecipeModel{})
	if g.Final != -1 {
		t.Fatal("empty recipe should have no final node")
	}
	if len(g.ReachesFinal()) != 0 || g.CriticalPath() != nil {
		t.Fatal("empty graph queries should be empty")
	}
}

func TestDOT(t *testing.T) {
	g := Build(pastaModel())
	dot := g.DOT()
	if !strings.HasPrefix(dot, "digraph flow") {
		t.Fatal("not a DOT document")
	}
	if !strings.Contains(dot, "\"boil\"") || !strings.Contains(dot, "shape=box") {
		t.Fatalf("DOT content:\n%s", dot)
	}
	if !strings.Contains(dot, "->") {
		t.Fatal("no edges")
	}
}

func TestNodeKindString(t *testing.T) {
	if RawIngredient.String() != "ingredient" || Intermediate.String() != "intermediate" || Action.String() != "action" {
		t.Fatal("kind names")
	}
}

func TestCanonicalMatching(t *testing.T) {
	// relation argument "tomatoes" should map onto raw node "tomato".
	m := pastaModel()
	m.Events[3].Ingredients[0].Text = "tomatoes"
	g := Build(m)
	if !g.ReachesFinal()["tomato"] {
		t.Fatal("surface-form argument did not resolve to the raw ingredient")
	}
}
