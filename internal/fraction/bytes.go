package fraction

// LooksLower is Looks for an already-lower-cased token given as bytes.
// It is the compiled annotation path's form of the quantity feature
// test and performs no heap allocation: map probes use the
// string-conversion-in-index-position idiom and prefix checks compare
// in place.
//
// Contract (pinned by TestLooksLowerMatchesLooks): for any string s,
// LooksLower([]byte(lower(s))) == Looks(lower(s)).
func LooksLower(b []byte) bool {
	if len(b) == 0 {
		return false
	}
	if _, ok := numberWords[string(b)]; ok {
		return true
	}
	if b[0] >= '0' && b[0] <= '9' {
		return true
	}
	for v := range vulgar {
		if len(b) >= len(v) && string(b[:len(v)]) == v {
			return true
		}
	}
	return false
}
