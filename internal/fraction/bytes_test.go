package fraction

import (
	"strings"
	"testing"
)

func TestLooksLowerMatchesLooks(t *testing.T) {
	inputs := []string{
		"", "1", "12", "1/2", "1 1/2", "2.5", "2-4", "½", "1½", "⅞x",
		"one", "dozen", "half", "a", "an", "few", "couple",
		"cup", "cups", "salt", "-", ".", "x½", "0abc", "9", "tomato",
		"\xff\xfe", "\x00", "onehalf",
	}
	for w := range numberWords {
		inputs = append(inputs, w, w+"x", "x"+w)
	}
	for v := range vulgar {
		inputs = append(inputs, v, v+"cup", "cup"+v)
	}
	for _, in := range inputs {
		lw := strings.ToLower(in)
		if got, want := LooksLower([]byte(lw)), Looks(lw); got != want {
			t.Errorf("LooksLower(%q) = %v, Looks = %v", lw, got, want)
		}
	}
}

func TestLooksLowerZeroAlloc(t *testing.T) {
	probes := [][]byte{[]byte("1/2"), []byte("dozen"), []byte("salt"), []byte("½")}
	allocs := testing.AllocsPerRun(200, func() {
		for _, p := range probes {
			LooksLower(p)
		}
	})
	if allocs != 0 {
		t.Fatalf("LooksLower allocated %.1f times per run, want 0", allocs)
	}
}
