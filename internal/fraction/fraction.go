// Package fraction parses the numeric quantity expressions that occur
// in ingredient phrases: integers ("2"), decimals ("2.5"), fractions
// ("3/4"), mixed numbers ("1 1/2"), unicode vulgar fractions ("½",
// "1½"), ranges ("2-4", "1-1/2"), and number words ("one", "dozen").
// Quantities evaluate to an exact rational interval [Lo, Hi].
package fraction

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Rational is an exact fraction Num/Den with Den > 0.
type Rational struct {
	Num int64
	Den int64
}

// R constructs a normalized rational.
func R(num, den int64) Rational {
	if den == 0 {
		return Rational{0, 1}
	}
	if den < 0 {
		num, den = -num, -den
	}
	g := gcd(abs64(num), den)
	if g > 1 {
		num /= g
		den /= g
	}
	return Rational{num, den}
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// Float returns the floating-point value of r.
func (r Rational) Float() float64 {
	return float64(r.Num) / float64(r.Den)
}

// Add returns r + o.
func (r Rational) Add(o Rational) Rational {
	return R(r.Num*o.Den+o.Num*r.Den, r.Den*o.Den)
}

// Mul returns r * o.
func (r Rational) Mul(o Rational) Rational {
	return R(r.Num*o.Num, r.Den*o.Den)
}

// Cmp compares r and o: -1, 0, or +1.
func (r Rational) Cmp(o Rational) int {
	l := r.Num * o.Den
	rr := o.Num * r.Den
	switch {
	case l < rr:
		return -1
	case l > rr:
		return 1
	default:
		return 0
	}
}

// String renders r as an integer, proper fraction, or mixed number.
func (r Rational) String() string {
	if r.Den == 1 {
		return strconv.FormatInt(r.Num, 10)
	}
	if abs64(r.Num) > r.Den {
		whole := r.Num / r.Den
		rem := abs64(r.Num % r.Den)
		return fmt.Sprintf("%d %d/%d", whole, rem, r.Den)
	}
	return fmt.Sprintf("%d/%d", r.Num, r.Den)
}

// Quantity is a parsed amount: a point value (Lo == Hi) or a range.
type Quantity struct {
	Lo Rational
	Hi Rational
}

// IsRange reports whether the quantity spans an interval.
func (q Quantity) IsRange() bool { return q.Lo.Cmp(q.Hi) != 0 }

// Mid returns the midpoint of the interval as a float (used by the
// nutrition estimator when a recipe says "2-3 tomatoes").
func (q Quantity) Mid() float64 {
	return (q.Lo.Float() + q.Hi.Float()) / 2
}

// String renders the quantity the way a recipe would print it.
func (q Quantity) String() string {
	if q.IsRange() {
		return q.Lo.String() + "-" + q.Hi.String()
	}
	return q.Lo.String()
}

var vulgar = map[string]Rational{
	"½": R(1, 2), "⅓": R(1, 3), "⅔": R(2, 3), "¼": R(1, 4),
	"¾": R(3, 4), "⅕": R(1, 5), "⅖": R(2, 5), "⅗": R(3, 5),
	"⅘": R(4, 5), "⅙": R(1, 6), "⅚": R(5, 6), "⅛": R(1, 8),
	"⅜": R(3, 8), "⅝": R(5, 8), "⅞": R(7, 8),
}

var numberWords = map[string]Rational{
	"zero": R(0, 1), "one": R(1, 1), "two": R(2, 1), "three": R(3, 1),
	"four": R(4, 1), "five": R(5, 1), "six": R(6, 1), "seven": R(7, 1),
	"eight": R(8, 1), "nine": R(9, 1), "ten": R(10, 1),
	"eleven": R(11, 1), "twelve": R(12, 1), "dozen": R(12, 1),
	"half": R(1, 2), "quarter": R(1, 4), "couple": R(2, 1),
	"a": R(1, 1), "an": R(1, 1), "few": R(3, 1), "several": R(3, 1),
}

// ErrNotQuantity is returned when the input cannot be read as an
// amount.
var ErrNotQuantity = errors.New("fraction: not a quantity")

// Parse reads a quantity expression. It accepts the full surface
// grammar found in RecipeDB-style ingredient phrases.
func Parse(s string) (Quantity, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Quantity{}, ErrNotQuantity
	}
	// Range "a-b" or "a–b" at the top level (but not a leading minus).
	if i := rangeSplit(s); i > 0 {
		lo, err := parsePoint(strings.TrimSpace(s[:i]))
		if err != nil {
			return Quantity{}, err
		}
		hi, err := parsePoint(strings.TrimSpace(s[i+len(rangeRuneAt(s, i)):]))
		if err != nil {
			return Quantity{}, err
		}
		if hi.Cmp(lo) < 0 {
			lo, hi = hi, lo
		}
		return Quantity{Lo: lo, Hi: hi}, nil
	}
	v, err := parsePoint(s)
	if err != nil {
		return Quantity{}, err
	}
	return Quantity{Lo: v, Hi: v}, nil
}

func rangeRuneAt(s string, i int) string {
	if strings.HasPrefix(s[i:], "–") {
		return "–"
	}
	return "-"
}

// rangeSplit returns the index of the top-level range dash, or -1.
func rangeSplit(s string) int {
	for i := 1; i < len(s); i++ {
		if s[i] == '-' {
			return i
		}
		if strings.HasPrefix(s[i:], "–") {
			return i
		}
	}
	return -1
}

// parsePoint reads a single (non-range) value.
func parsePoint(s string) (Rational, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if s == "" {
		return Rational{}, ErrNotQuantity
	}
	if v, ok := numberWords[s]; ok {
		return v, nil
	}
	if v, ok := vulgar[s]; ok {
		return v, nil
	}
	// mixed with space: "1 1/2"
	if sp := strings.IndexByte(s, ' '); sp > 0 {
		whole, err := parsePoint(s[:sp])
		if err != nil {
			return Rational{}, err
		}
		frac, err := parsePoint(s[sp+1:])
		if err != nil {
			return Rational{}, err
		}
		return whole.Add(frac), nil
	}
	// attached vulgar: "1½"
	for v, r := range vulgar {
		if strings.HasSuffix(s, v) {
			head := strings.TrimSuffix(s, v)
			if head == "" {
				return r, nil
			}
			whole, err := parsePoint(head)
			if err != nil {
				return Rational{}, err
			}
			return whole.Add(r), nil
		}
	}
	// simple fraction "a/b"
	if i := strings.IndexByte(s, '/'); i > 0 {
		num, err1 := strconv.ParseInt(s[:i], 10, 64)
		den, err2 := strconv.ParseInt(s[i+1:], 10, 64)
		if err1 != nil || err2 != nil || den == 0 {
			return Rational{}, ErrNotQuantity
		}
		return R(num, den), nil
	}
	// decimal "2.5" → exact rational
	if i := strings.IndexByte(s, '.'); i >= 0 {
		intPart := s[:i]
		fracPart := s[i+1:]
		if fracPart == "" || !allDigits(fracPart) || (intPart != "" && !allDigits(intPart)) {
			return Rational{}, ErrNotQuantity
		}
		if len(fracPart) > 9 {
			fracPart = fracPart[:9]
		}
		den := int64(1)
		for range fracPart {
			den *= 10
		}
		fn, _ := strconv.ParseInt(fracPart, 10, 64)
		var in int64
		if intPart != "" {
			in, _ = strconv.ParseInt(intPart, 10, 64)
		}
		return R(in*den+fn, den), nil
	}
	// plain integer
	if allDigits(s) {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Rational{}, ErrNotQuantity
		}
		return R(n, 1), nil
	}
	return Rational{}, ErrNotQuantity
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// Looks reports whether s plausibly begins a quantity expression; it
// is cheaper than Parse and is used as a tagging feature.
func Looks(s string) bool {
	if s == "" {
		return false
	}
	if _, ok := numberWords[strings.ToLower(s)]; ok {
		return true
	}
	if s[0] >= '0' && s[0] <= '9' {
		return true
	}
	for v := range vulgar {
		if strings.HasPrefix(s, v) {
			return true
		}
	}
	return false
}
