package fraction

import (
	"math"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, s string) Quantity {
	t.Helper()
	q, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return q
}

func TestParseInteger(t *testing.T) {
	q := mustParse(t, "2")
	if q.Lo != R(2, 1) || q.IsRange() {
		t.Fatalf("got %+v", q)
	}
}

func TestParseFraction(t *testing.T) {
	q := mustParse(t, "3/4")
	if q.Lo != R(3, 4) {
		t.Fatalf("got %+v", q)
	}
}

func TestParseMixed(t *testing.T) {
	q := mustParse(t, "1 1/2")
	if q.Lo != R(3, 2) {
		t.Fatalf("got %+v", q)
	}
}

func TestParseDecimal(t *testing.T) {
	q := mustParse(t, "2.5")
	if q.Lo != R(5, 2) {
		t.Fatalf("got %+v", q)
	}
	q = mustParse(t, "0.25")
	if q.Lo != R(1, 4) {
		t.Fatalf("got %+v", q)
	}
}

func TestParseVulgar(t *testing.T) {
	if q := mustParse(t, "½"); q.Lo != R(1, 2) {
		t.Fatalf("got %+v", q)
	}
	if q := mustParse(t, "1½"); q.Lo != R(3, 2) {
		t.Fatalf("got %+v", q)
	}
}

func TestParseRange(t *testing.T) {
	q := mustParse(t, "2-4")
	if !q.IsRange() || q.Lo != R(2, 1) || q.Hi != R(4, 1) {
		t.Fatalf("got %+v", q)
	}
	if got := q.Mid(); got != 3 {
		t.Fatalf("Mid = %v", got)
	}
}

func TestParseRangeWithFraction(t *testing.T) {
	q := mustParse(t, "1-1/2")
	// "1-1/2" in recipes means the range [1/2, 1] — unusual but legal;
	// our parser reads lo=1, hi=1/2 and normalizes order.
	if q.Lo != R(1, 2) || q.Hi != R(1, 1) {
		t.Fatalf("got %+v", q)
	}
}

func TestParseEnDashRange(t *testing.T) {
	q := mustParse(t, "2–3")
	if !q.IsRange() || q.Hi != R(3, 1) {
		t.Fatalf("got %+v", q)
	}
}

func TestParseNumberWords(t *testing.T) {
	cases := map[string]Rational{
		"one": R(1, 1), "two": R(2, 1), "dozen": R(12, 1),
		"half": R(1, 2), "a": R(1, 1),
	}
	for in, want := range cases {
		if q := mustParse(t, in); q.Lo != want {
			t.Errorf("Parse(%q).Lo = %v, want %v", in, q.Lo, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "1/0", "x/2", "..", "1.a", "-"} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestRationalString(t *testing.T) {
	cases := map[Rational]string{
		R(2, 1):  "2",
		R(1, 2):  "1/2",
		R(3, 2):  "1 1/2",
		R(10, 4): "2 1/2",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", in, got, want)
		}
	}
}

func TestQuantityString(t *testing.T) {
	q := mustParse(t, "2-4")
	if q.String() != "2-4" {
		t.Fatalf("got %q", q.String())
	}
	q = mustParse(t, "1 1/2")
	if q.String() != "1 1/2" {
		t.Fatalf("got %q", q.String())
	}
}

func TestArithmetic(t *testing.T) {
	if got := R(1, 2).Add(R(1, 3)); got != R(5, 6) {
		t.Errorf("1/2+1/3 = %v", got)
	}
	if got := R(2, 3).Mul(R(3, 4)); got != R(1, 2) {
		t.Errorf("2/3*3/4 = %v", got)
	}
	if R(1, 2).Cmp(R(2, 3)) != -1 || R(1, 1).Cmp(R(1, 1)) != 0 {
		t.Error("Cmp broken")
	}
}

func TestNormalization(t *testing.T) {
	if R(2, 4) != R(1, 2) {
		t.Error("R does not normalize")
	}
	if r := R(1, -2); r.Num != -1 || r.Den != 2 {
		t.Errorf("negative denominator: %+v", r)
	}
	if r := R(5, 0); r != (Rational{0, 1}) {
		t.Errorf("zero denominator: %+v", r)
	}
}

func TestLooks(t *testing.T) {
	for _, s := range []string{"2", "1/2", "½", "one", "dozen", "2-4"} {
		if !Looks(s) {
			t.Errorf("Looks(%q) = false", s)
		}
	}
	for _, s := range []string{"", "salt", "fresh"} {
		if Looks(s) {
			t.Errorf("Looks(%q) = true", s)
		}
	}
}

// Property: R always returns a normalized fraction with positive
// denominator and gcd(|num|, den) == 1.
func TestRationalNormalizedProperty(t *testing.T) {
	f := func(n int32, d int32) bool {
		r := R(int64(n), int64(d))
		if r.Den <= 0 {
			return false
		}
		return gcd(abs64(r.Num), r.Den) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: parsing a rendered rational round-trips.
func TestRationalRoundTripProperty(t *testing.T) {
	f := func(n uint16, d uint8) bool {
		den := int64(d%64) + 1
		r := R(int64(n%500), den)
		q, err := Parse(r.String())
		if err != nil {
			return false
		}
		return q.Lo == r && q.Hi == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Float of Add equals sum of Floats (within epsilon).
func TestAddFloatProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		x := R(int64(a%40), int64(a%7)+1)
		y := R(int64(b%40), int64(b%9)+1)
		return math.Abs(x.Add(y).Float()-(x.Float()+y.Float())) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
