package fraction

import "testing"

// FuzzParse checks that the quantity parser never panics and that
// successful parses satisfy basic interval invariants.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"1", "1/2", "1 1/2", "2-4", "2.5", "½", "1½", "2–3",
		"dozen", "a", "1/0", "-", "9999999999999999999",
		"1.googol", "0.000000001",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		q, err := Parse(s)
		if err != nil {
			return
		}
		if q.Lo.Den <= 0 || q.Hi.Den <= 0 {
			t.Fatalf("non-positive denominator from %q: %+v", s, q)
		}
		if q.Lo.Cmp(q.Hi) > 0 {
			t.Fatalf("inverted interval from %q: %+v", s, q)
		}
		// rendering a parsed quantity must itself re-parse.
		if _, err := Parse(q.String()); err != nil {
			t.Fatalf("render of %q (%q) does not re-parse", s, q.String())
		}
	})
}
