package gazetteer

// Term inventories. These double as the generative inventory for the
// synthetic RecipeDB corpus, so every entry is a term that really
// occurs in AllRecipes/FOOD.com-style recipe text.

// IngredientTerms are ingredient names, including multiword names.
var IngredientTerms = []string{
	"allspice", "almond", "almond extract", "anchovy", "apple",
	"apple cider", "apple cider vinegar", "apricot", "artichoke",
	"arugula", "asparagus", "avocado", "bacon", "baking powder",
	"baking soda", "balsamic vinegar", "banana", "barley", "basil",
	"bay leaf", "bean", "beef", "beef broth", "beet", "bell pepper",
	"black bean", "black pepper", "blackberry", "blue cheese",
	"blueberry", "bran", "bread", "breadcrumb", "broccoli", "broth",
	"brown rice", "brown sugar", "butter", "buttermilk", "cabbage",
	"canola oil", "caper", "cardamom", "carrot", "cashew",
	"cauliflower", "cayenne pepper", "celery", "cheddar cheese",
	"cheese", "cherry", "cherry tomato", "chicken", "chicken breast",
	"chicken broth", "chicken stock", "chickpea", "chili", "chili pepper",
	"chili powder", "chive", "chocolate", "chocolate chip", "cilantro",
	"cinnamon", "clam", "clove", "cocoa powder", "coconut",
	"coconut milk", "cod", "coffee", "condensed milk", "coriander",
	"corn", "corn syrup", "cornmeal", "cornstarch", "cottage cheese",
	"crab", "cracker", "cranberry", "cream", "cream cheese",
	"cream of tartar", "cucumber", "cumin", "currant", "curry powder",
	"date", "dill", "dough", "dressing", "duck", "egg", "egg white",
	"egg yolk", "eggplant", "evaporated milk", "extra virgin olive oil",
	"fennel", "feta cheese", "fig", "fillet", "fish sauce", "flour",
	"all-purpose flour", "garlic", "garlic clove", "garlic powder",
	"gelatin", "ginger", "goat cheese", "gravy", "grape", "grapefruit",
	"green bean", "green onion", "ground beef", "ground cinnamon",
	"ground cumin", "ground ginger", "ground pepper", "ham",
	"hazelnut", "heavy cream", "honey", "horseradish", "hot sauce",
	"jalapeno", "jam", "juice", "kale", "ketchup", "kidney bean",
	"lamb", "lard", "leek", "lemon", "lemon juice", "lemon zest",
	"lemongrass", "lentil", "lettuce", "lime", "lime juice", "liver",
	"lobster", "macaroni", "mango", "maple syrup", "margarine",
	"marjoram", "mayonnaise", "milk", "mint", "molasses", "mozzarella",
	"mozzarella cheese", "mushroom", "mussel", "mustard", "noodle",
	"nutmeg", "oat", "oatmeal", "oil", "okra", "olive", "olive oil",
	"onion", "onion powder", "orange", "orange juice", "orange zest",
	"oregano", "oyster", "paprika", "parmesan", "parmesan cheese",
	"parsley", "parsnip", "pasta", "pastry", "pea", "peach",
	"peanut", "peanut butter", "pear", "pecan", "pepper", "peppercorn",
	"pickle", "pie crust", "pineapple", "pine nut", "pistachio",
	"plum", "pork", "pork chop", "potato", "powdered sugar", "prune",
	"puff pastry", "pumpkin", "quinoa", "radish", "raisin",
	"raspberry", "red onion", "red pepper", "red pepper flake",
	"red wine", "red wine vinegar", "rhubarb", "rice", "ricotta",
	"rosemary", "rum", "saffron", "sage", "salmon", "salsa", "salt",
	"sausage", "scallion", "scallop", "sesame oil", "sesame seed",
	"shallot", "sherry", "shortening", "shrimp", "sour cream",
	"soy sauce", "spaghetti", "spinach", "squash", "steak",
	"strawberry", "sugar", "sweet potato", "swiss cheese", "syrup",
	"tahini", "tarragon", "thyme", "tofu", "tomato", "tomato paste",
	"tomato sauce", "tortilla", "trout", "tuna", "turkey", "turmeric",
	"turnip", "vanilla", "vanilla extract", "veal", "vegetable broth",
	"vegetable oil", "vinegar", "walnut", "water", "watercress",
	"watermelon", "wheat", "whipping cream", "white pepper",
	"white sugar", "white wine", "whole milk", "wine", "worcestershire sauce",
	"yeast", "yogurt", "zucchini",
}

// UnitTerms are measuring units and packaging counts.
var UnitTerms = []string{
	"bag", "batch", "block", "bottle", "box", "bunch", "can", "carton",
	"clove", "container", "cube", "cup", "dash", "dollop", "drop",
	"envelope", "fillet", "gallon", "gram", "handful", "head", "inch",
	"jar", "jigger", "kilogram", "liter", "loaf", "milliliter",
	"ounce", "package", "packet", "pinch", "pint", "pound", "quart",
	"scoop", "sheet", "slice", "sliver", "splash", "sprig", "stalk",
	"stick", "strip", "tablespoon", "teaspoon", "wedge", "piece",
}

// StateTerms are processing states applied to ingredients before or
// during cooking.
var StateTerms = []string{
	"beaten", "blanched", "boiled", "boned", "browned", "chopped",
	"coarsely chopped", "cooked", "cooled", "cored", "crumbled",
	"crushed", "cubed", "cut", "deveined", "diced", "drained",
	"finely chopped", "flaked", "grated", "grilled", "ground",
	"halved", "hard-boiled", "hulled", "juiced", "julienned", "mashed",
	"melted", "minced", "packed", "peeled", "pitted", "pounded",
	"pureed", "quartered", "rinsed", "roasted", "scalded", "seeded",
	"separated", "shelled", "shredded", "shucked", "sifted", "skinned",
	"sliced", "slivered", "smashed", "softened", "squeezed", "steamed",
	"stemmed", "strained", "thawed", "thinly sliced", "toasted",
	"torn", "trimmed", "washed", "whipped", "zested",
}

// SizeTerms are portion-size attributes.
var SizeTerms = []string{
	"small", "medium", "large", "extra-large", "jumbo", "baby",
	"bite-size", "heaping", "scant", "thick", "thin", "mini",
}

// TempTerms are temperature attributes applied before cooking.
var TempTerms = []string{
	"frozen", "chilled", "cold", "iced", "cool", "room temperature",
	"warm", "warmed", "hot", "lukewarm", "tepid", "boiling",
	"refrigerated",
}

// DryFreshTerms mark dryness/freshness state.
var DryFreshTerms = []string{
	"dry", "dried", "fresh", "freshly", "canned", "jarred", "smoked",
	"cured", "pickled", "preserved",
}

// UtensilTerms are the utensils and equipment inventory (the paper
// annotates 69 utensils).
var UtensilTerms = []string{
	"baking dish", "baking pan", "baking sheet", "blender", "bowl",
	"bundt pan", "cake pan", "can opener", "casserole", "casserole dish",
	"cheesecloth", "colander", "cookie cutter", "cookie sheet",
	"cutting board", "double boiler", "dutch oven", "food processor",
	"fork", "freezer", "frying pan", "grater", "griddle", "grill",
	"grill pan", "grinder", "kettle", "knife", "ladle", "lid",
	"loaf pan", "mandoline", "masher", "measuring cup",
	"measuring spoon", "microwave", "mixer", "mixing bowl", "mold",
	"mortar", "muffin tin", "oven", "pan", "parchment paper",
	"pastry bag", "pastry brush", "peeler", "pestle", "pie dish",
	"pie plate", "plate", "platter", "pot", "pressure cooker",
	"ramekin", "refrigerator", "roasting pan", "rolling pin",
	"saucepan", "saute pan", "sieve", "skewer", "skillet",
	"slow cooker", "spatula", "spoon", "springform pan", "steamer",
	"stockpot", "stove", "strainer", "thermometer", "toaster",
	"tongs", "tray", "whisk", "wire rack", "wok", "wooden spoon",
	"zester", "aluminum foil", "plastic wrap", "paper towel",
}

// TechniqueTerms are cooking techniques/processes (the paper annotates
// 268 processes; this inventory covers the common surface verbs and
// their frequent variants).
var TechniqueTerms = []string{
	"add", "adjust", "arrange", "bake", "baste", "beat", "blanch",
	"blend", "boil", "braise", "bread", "bring", "broil", "brown",
	"brush", "bury", "butter", "caramelize", "carve", "char", "check",
	"chill", "chop", "coat", "combine", "cook", "cool", "core",
	"cover", "cream", "crimp", "crumble", "crush", "cube", "cut",
	"debone", "decorate", "deep-fry", "deglaze", "degrease", "dice",
	"dilute", "dip", "discard", "dissolve", "divide", "dot", "drain",
	"dredge", "drizzle", "drop", "dry", "dust", "emulsify", "fill",
	"filter", "flambe", "flatten", "flip", "fold", "form", "freeze",
	"fry", "garnish", "glaze", "grate", "grease", "grill", "grind",
	"halve", "heat", "hull", "incorporate", "insert", "julienne",
	"knead", "ladle", "layer", "let", "lift", "line", "marinate",
	"mash", "measure", "melt", "microwave", "mince", "mix", "moisten",
	"mound", "open", "overlap", "pan-fry", "parboil", "pat", "peel",
	"pierce", "pinch", "pipe", "pit", "place", "poach", "pound",
	"pour", "preheat", "prepare", "press", "prick", "puree", "push",
	"put", "quarter", "reduce", "refrigerate", "reheat", "remove",
	"repeat", "reserve", "rest", "return", "rinse", "roast", "roll",
	"rotate", "rub", "saute", "scald", "scatter", "scoop", "score",
	"scrape", "scrub", "sear", "season", "separate", "serve", "set",
	"shake", "shape", "shred", "sift", "simmer", "skewer", "skim",
	"slice", "slit", "smear", "smoke", "soak", "soften", "spoon",
	"spread", "sprinkle", "squeeze", "stack", "steam", "steep",
	"sterilize", "stir", "strain", "stretch", "stuff", "submerge",
	"swirl", "taste", "temper", "tenderize", "thaw", "thicken",
	"thin", "tie", "tilt", "toast", "top", "toss", "transfer",
	"trim", "turn", "twist", "uncover", "unmold", "warm", "wash",
	"whip", "whisk", "wilt", "wipe", "work", "wrap", "zest",
}
