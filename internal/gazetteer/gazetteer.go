// Package gazetteer holds the curated recipe-domain vocabularies used
// across the pipeline: ingredient names, measuring units, processing
// states, sizes, temperatures, dry/fresh markers, utensils and cooking
// techniques. The instruction-section pipeline additionally builds
// frequency-thresholded dictionaries of techniques and utensils from
// NER output, reproducing §III.A of the paper (thresholds 47 and 10).
package gazetteer

import (
	"sort"
	"strings"
)

// Lexicon is a set of lower-case terms; multiword terms use single
// spaces.
type Lexicon struct {
	terms map[string]bool
	// maxWords is the longest term length in words, for greedy
	// longest-match scanning.
	maxWords int
}

// NewLexicon builds a lexicon from terms (case-insensitive).
func NewLexicon(terms []string) *Lexicon {
	l := &Lexicon{terms: make(map[string]bool, len(terms))}
	for _, t := range terms {
		t = strings.ToLower(strings.TrimSpace(t))
		if t == "" {
			continue
		}
		l.terms[t] = true
		if n := len(strings.Fields(t)); n > l.maxWords {
			l.maxWords = n
		}
	}
	return l
}

// Contains reports whether term is in the lexicon (case-insensitive).
func (l *Lexicon) Contains(term string) bool {
	return l.terms[strings.ToLower(term)]
}

// Len returns the number of terms.
func (l *Lexicon) Len() int { return len(l.terms) }

// MaxWords returns the longest term length in words.
func (l *Lexicon) MaxWords() int { return l.maxWords }

// Terms returns the sorted term list.
func (l *Lexicon) Terms() []string {
	out := make([]string, 0, len(l.terms))
	for t := range l.terms {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// MatchSpans finds all non-overlapping longest matches of lexicon
// terms in the token slice (tokens should be lower-cased). It returns
// [start, end) index pairs.
func (l *Lexicon) MatchSpans(tokens []string) [][2]int {
	var spans [][2]int
	i := 0
	for i < len(tokens) {
		matched := 0
		limit := l.maxWords
		if rem := len(tokens) - i; rem < limit {
			limit = rem
		}
		for n := limit; n >= 1; n-- {
			cand := strings.Join(tokens[i:i+n], " ")
			if l.terms[strings.ToLower(cand)] {
				matched = n
				break
			}
		}
		if matched > 0 {
			spans = append(spans, [2]int{i, i + matched})
			i += matched
		} else {
			i++
		}
	}
	return spans
}

// Singletons: the standard domain vocabularies. Each call returns a
// fresh Lexicon over the shared term lists.

// Ingredients returns the ingredient-name lexicon.
func Ingredients() *Lexicon { return NewLexicon(IngredientTerms) }

// Units returns the measuring-unit lexicon.
func Units() *Lexicon { return NewLexicon(UnitTerms) }

// States returns the processing-state lexicon.
func States() *Lexicon { return NewLexicon(StateTerms) }

// Sizes returns the portion-size lexicon.
func Sizes() *Lexicon { return NewLexicon(SizeTerms) }

// Temperatures returns the temperature-attribute lexicon.
func Temperatures() *Lexicon { return NewLexicon(TempTerms) }

// DryFresh returns the dryness/freshness lexicon.
func DryFresh() *Lexicon { return NewLexicon(DryFreshTerms) }

// Utensils returns the utensil lexicon.
func Utensils() *Lexicon { return NewLexicon(UtensilTerms) }

// Techniques returns the cooking-technique lexicon.
func Techniques() *Lexicon { return NewLexicon(TechniqueTerms) }

// FrequencyDictionary accumulates how often the NER model emitted each
// surface form for an entity type, then filters by a minimum count.
// The paper builds dictionaries of Cooking Techniques and Utensils
// with thresholds 47 and 10 to remove tagger inconsistencies (§III.A).
type FrequencyDictionary struct {
	counts map[string]int
}

// NewFrequencyDictionary returns an empty dictionary.
func NewFrequencyDictionary() *FrequencyDictionary {
	return &FrequencyDictionary{counts: make(map[string]int)}
}

// Observe records one occurrence of term.
func (d *FrequencyDictionary) Observe(term string) {
	d.counts[strings.ToLower(term)]++
}

// Count returns the number of observations of term.
func (d *FrequencyDictionary) Count(term string) int {
	return d.counts[strings.ToLower(term)]
}

// Filter returns the lexicon of terms observed at least threshold
// times.
func (d *FrequencyDictionary) Filter(threshold int) *Lexicon {
	var keep []string
	for t, c := range d.counts {
		if c >= threshold {
			keep = append(keep, t)
		}
	}
	return NewLexicon(keep)
}

// Paper-specified dictionary thresholds (§III.A).
const (
	TechniqueThreshold = 47
	UtensilThreshold   = 10
)
