// Package gazetteer holds the curated recipe-domain vocabularies used
// across the pipeline: ingredient names, measuring units, processing
// states, sizes, temperatures, dry/fresh markers, utensils and cooking
// techniques. The instruction-section pipeline additionally builds
// frequency-thresholded dictionaries of techniques and utensils from
// NER output, reproducing §III.A of the paper (thresholds 47 and 10).
package gazetteer

import (
	"sort"
	"strings"
)

// Lexicon is a set of lower-case terms; multiword terms use single
// spaces.
type Lexicon struct {
	terms map[string]bool
	// maxWords is the longest term length in words, for greedy
	// longest-match scanning.
	maxWords int
}

// NewLexicon builds a lexicon from terms (case-insensitive). Interior
// whitespace runs are normalized to single spaces so a term written
// "sour  cream" still matches the token sequence ["sour","cream"] —
// match candidates are always assembled with single spaces.
func NewLexicon(terms []string) *Lexicon {
	l := &Lexicon{terms: make(map[string]bool, len(terms))}
	for _, t := range terms {
		fields := strings.Fields(strings.ToLower(t))
		if len(fields) == 0 {
			continue
		}
		l.terms[strings.Join(fields, " ")] = true
		if len(fields) > l.maxWords {
			l.maxWords = len(fields)
		}
	}
	return l
}

// Contains reports whether term is in the lexicon (case-insensitive).
func (l *Lexicon) Contains(term string) bool {
	return l.terms[strings.ToLower(term)]
}

// Len returns the number of terms.
func (l *Lexicon) Len() int { return len(l.terms) }

// MaxWords returns the longest term length in words.
func (l *Lexicon) MaxWords() int { return l.maxWords }

// Terms returns the sorted term list.
func (l *Lexicon) Terms() []string {
	out := make([]string, 0, len(l.terms))
	for t := range l.terms {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// ContainsBytes reports whether the exact byte phrase (lower-case,
// single-spaced) is a term. The probe compiles to a map lookup without
// materializing a string, so it never allocates.
func (l *Lexicon) ContainsBytes(b []byte) bool { return l.terms[string(b)] }

// MatchAt returns the length in tokens of the longest lexicon term
// starting at tokens[i], or 0 when no term starts there. Candidate
// phrases are assembled into *buf — grown once, reused across calls —
// with ASCII upper-case folded while appending, so a steady-state scan
// over any capacity-sufficient buffer performs zero allocations. Terms
// are matched greedily: among all lexicon terms anchored at i, the
// longest wins.
func (l *Lexicon) MatchAt(tokens []string, i int, buf *[]byte) int {
	limit := l.maxWords
	if rem := len(tokens) - i; rem < limit {
		limit = rem
	}
	b := (*buf)[:0]
	best := 0
	for n := 0; n < limit; n++ {
		if n > 0 {
			b = append(b, ' ')
		}
		b = appendLowerASCII(b, tokens[i+n])
		if l.terms[string(b)] {
			best = n + 1
		}
	}
	*buf = b
	return best
}

// appendLowerASCII appends s to dst with ASCII letters lower-cased.
// Lexicon terms are ASCII, so this is sufficient case folding for
// candidate assembly and keeps the hot path allocation-free.
func appendLowerASCII(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		dst = append(dst, c)
	}
	return dst
}

// MatchSpans finds all non-overlapping matches of lexicon terms in the
// token slice under greedy-leftmost-longest semantics: scanning left
// to right, at each position the longest term anchored there is taken
// and the scan resumes after it — an earlier anchor always beats a
// longer term starting inside the span it claimed ("sour cream" wins
// over "cream cheese" in ["sour","cream","cheese"], leaving "cheese"
// to match alone). It returns [start, end) index pairs.
func (l *Lexicon) MatchSpans(tokens []string) [][2]int {
	var spans [][2]int
	var buf []byte
	i := 0
	for i < len(tokens) {
		if n := l.MatchAt(tokens, i, &buf); n > 0 {
			spans = append(spans, [2]int{i, i + n})
			i += n
		} else {
			i++
		}
	}
	return spans
}

// Singletons: the standard domain vocabularies. Each call returns a
// fresh Lexicon over the shared term lists.

// Ingredients returns the ingredient-name lexicon.
func Ingredients() *Lexicon { return NewLexicon(IngredientTerms) }

// Units returns the measuring-unit lexicon.
func Units() *Lexicon { return NewLexicon(UnitTerms) }

// States returns the processing-state lexicon.
func States() *Lexicon { return NewLexicon(StateTerms) }

// Sizes returns the portion-size lexicon.
func Sizes() *Lexicon { return NewLexicon(SizeTerms) }

// Temperatures returns the temperature-attribute lexicon.
func Temperatures() *Lexicon { return NewLexicon(TempTerms) }

// DryFresh returns the dryness/freshness lexicon.
func DryFresh() *Lexicon { return NewLexicon(DryFreshTerms) }

// Utensils returns the utensil lexicon.
func Utensils() *Lexicon { return NewLexicon(UtensilTerms) }

// Techniques returns the cooking-technique lexicon.
func Techniques() *Lexicon { return NewLexicon(TechniqueTerms) }

// FrequencyDictionary accumulates how often the NER model emitted each
// surface form for an entity type, then filters by a minimum count.
// The paper builds dictionaries of Cooking Techniques and Utensils
// with thresholds 47 and 10 to remove tagger inconsistencies (§III.A).
type FrequencyDictionary struct {
	counts map[string]int
}

// NewFrequencyDictionary returns an empty dictionary.
func NewFrequencyDictionary() *FrequencyDictionary {
	return &FrequencyDictionary{counts: make(map[string]int)}
}

// Observe records one occurrence of term.
func (d *FrequencyDictionary) Observe(term string) {
	d.counts[strings.ToLower(term)]++
}

// Count returns the number of observations of term.
func (d *FrequencyDictionary) Count(term string) int {
	return d.counts[strings.ToLower(term)]
}

// Filter returns the lexicon of terms observed at least threshold
// times.
func (d *FrequencyDictionary) Filter(threshold int) *Lexicon {
	var keep []string
	for t, c := range d.counts {
		if c >= threshold {
			keep = append(keep, t)
		}
	}
	return NewLexicon(keep)
}

// Paper-specified dictionary thresholds (§III.A).
const (
	TechniqueThreshold = 47
	UtensilThreshold   = 10
)
