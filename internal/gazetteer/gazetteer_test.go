package gazetteer

import (
	"strings"
	"testing"
)

func TestLexiconContains(t *testing.T) {
	l := Ingredients()
	for _, w := range []string{"tomato", "olive oil", "Olive Oil", "extra virgin olive oil", "cream cheese"} {
		if !l.Contains(w) {
			t.Errorf("Ingredients should contain %q", w)
		}
	}
	if l.Contains("skillet") {
		t.Error("Ingredients should not contain skillet")
	}
}

func TestLexiconMaxWords(t *testing.T) {
	if got := Ingredients().MaxWords(); got < 4 {
		t.Errorf("MaxWords = %d, want >= 4 (extra virgin olive oil)", got)
	}
	if got := NewLexicon([]string{"a"}).MaxWords(); got != 1 {
		t.Errorf("MaxWords = %d", got)
	}
}

func TestNewLexiconNormalizes(t *testing.T) {
	l := NewLexicon([]string{"  Olive OIL ", "", "salt"})
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if !l.Contains("olive oil") {
		t.Fatal("normalized term missing")
	}
}

func TestMatchSpansLongest(t *testing.T) {
	l := Ingredients()
	tokens := strings.Fields("add extra virgin olive oil and salt to the pan")
	spans := l.MatchSpans(tokens)
	// "extra virgin olive oil" [1,5) and "salt" [6,7).
	if len(spans) != 2 {
		t.Fatalf("spans = %v", spans)
	}
	if spans[0] != [2]int{1, 5} {
		t.Errorf("first span = %v, want [1 5) (longest match)", spans[0])
	}
	if spans[1] != [2]int{6, 7} {
		t.Errorf("second span = %v", spans[1])
	}
}

func TestMatchSpansNoOverlap(t *testing.T) {
	l := NewLexicon([]string{"cream cheese", "cheese cake"})
	spans := l.MatchSpans([]string{"cream", "cheese", "cake"})
	if len(spans) != 1 || spans[0] != [2]int{0, 2} {
		t.Fatalf("spans = %v", spans)
	}
}

func TestMatchSpansEmpty(t *testing.T) {
	if spans := Ingredients().MatchSpans(nil); spans != nil {
		t.Fatalf("spans = %v", spans)
	}
}

func TestTermsSorted(t *testing.T) {
	terms := Units().Terms()
	for i := 1; i < len(terms); i++ {
		if terms[i] < terms[i-1] {
			t.Fatal("Terms not sorted")
		}
	}
}

func TestInventorySizes(t *testing.T) {
	// sanity floor: the paper annotates 268 processes and 69 utensils.
	if n := Techniques().Len(); n < 150 {
		t.Errorf("techniques inventory too small: %d", n)
	}
	if n := Utensils().Len(); n < 69 {
		t.Errorf("utensils inventory too small: %d", n)
	}
	if n := Ingredients().Len(); n < 200 {
		t.Errorf("ingredients inventory too small: %d", n)
	}
	if n := States().Len(); n < 40 {
		t.Errorf("states inventory too small: %d", n)
	}
}

func TestDisjointAttributeClasses(t *testing.T) {
	// Sizes, temps and dry/fresh must not overlap each other: the NER
	// tags are mutually exclusive.
	sets := map[string]*Lexicon{
		"sizes": Sizes(), "temps": Temperatures(), "dryfresh": DryFresh(),
	}
	for an, a := range sets {
		for bn, b := range sets {
			if an >= bn {
				continue
			}
			for _, term := range a.Terms() {
				if b.Contains(term) {
					t.Errorf("%q in both %s and %s", term, an, bn)
				}
			}
		}
	}
}

func TestFrequencyDictionary(t *testing.T) {
	d := NewFrequencyDictionary()
	for i := 0; i < 50; i++ {
		d.Observe("boil")
	}
	for i := 0; i < 46; i++ {
		d.Observe("Glorp") // below the technique threshold
	}
	if d.Count("BOIL") != 50 {
		t.Fatalf("Count = %d", d.Count("BOIL"))
	}
	lex := d.Filter(TechniqueThreshold)
	if !lex.Contains("boil") {
		t.Error("boil should survive threshold 47")
	}
	if lex.Contains("glorp") {
		t.Error("glorp should be filtered at threshold 47")
	}
	lex10 := d.Filter(UtensilThreshold)
	if !lex10.Contains("glorp") {
		t.Error("glorp should survive threshold 10")
	}
}

func TestThresholdConstants(t *testing.T) {
	if TechniqueThreshold != 47 || UtensilThreshold != 10 {
		t.Fatal("paper thresholds changed")
	}
}
