package gazetteer

import (
	"strings"
	"testing"
)

func TestLexiconContains(t *testing.T) {
	l := Ingredients()
	for _, w := range []string{"tomato", "olive oil", "Olive Oil", "extra virgin olive oil", "cream cheese"} {
		if !l.Contains(w) {
			t.Errorf("Ingredients should contain %q", w)
		}
	}
	if l.Contains("skillet") {
		t.Error("Ingredients should not contain skillet")
	}
}

func TestLexiconMaxWords(t *testing.T) {
	if got := Ingredients().MaxWords(); got < 4 {
		t.Errorf("MaxWords = %d, want >= 4 (extra virgin olive oil)", got)
	}
	if got := NewLexicon([]string{"a"}).MaxWords(); got != 1 {
		t.Errorf("MaxWords = %d", got)
	}
}

func TestNewLexiconNormalizes(t *testing.T) {
	l := NewLexicon([]string{"  Olive OIL ", "", "salt"})
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	if !l.Contains("olive oil") {
		t.Fatal("normalized term missing")
	}
}

func TestMatchSpansLongest(t *testing.T) {
	l := Ingredients()
	tokens := strings.Fields("add extra virgin olive oil and salt to the pan")
	spans := l.MatchSpans(tokens)
	// "extra virgin olive oil" [1,5) and "salt" [6,7).
	if len(spans) != 2 {
		t.Fatalf("spans = %v", spans)
	}
	if spans[0] != [2]int{1, 5} {
		t.Errorf("first span = %v, want [1 5) (longest match)", spans[0])
	}
	if spans[1] != [2]int{6, 7} {
		t.Errorf("second span = %v", spans[1])
	}
}

func TestMatchSpansNoOverlap(t *testing.T) {
	l := NewLexicon([]string{"cream cheese", "cheese cake"})
	spans := l.MatchSpans([]string{"cream", "cheese", "cake"})
	if len(spans) != 1 || spans[0] != [2]int{0, 2} {
		t.Fatalf("spans = %v", spans)
	}
}

// TestMatchSpansGreedyLeftmostLongest pins the overlap-resolution
// contract: scanning left to right, the longest term anchored at the
// current position wins, and the scan resumes after it — even when a
// longer term starts inside the claimed span. The rules tier (DESIGN
// §15) depends on these exact semantics being deterministic.
func TestMatchSpansGreedyLeftmostLongest(t *testing.T) {
	cases := []struct {
		name   string
		terms  []string
		tokens []string
		want   [][2]int
	}{
		{
			// Leftmost anchor beats a longer match starting later:
			// "sour cream" claims [0,2), then "cheese" matches alone —
			// "cream cheese" never gets a chance at [1,3).
			name:   "leftmost wins over interior longer match",
			terms:  []string{"sour cream", "cream cheese", "cheese"},
			tokens: []string{"sour", "cream", "cheese"},
			want:   [][2]int{{0, 2}, {2, 3}},
		},
		{
			// At a single anchor the longest term wins over its prefix.
			name:   "longest at anchor beats prefix term",
			terms:  []string{"ground", "ground black pepper", "ground black"},
			tokens: []string{"ground", "black", "pepper"},
			want:   [][2]int{{0, 3}},
		},
		{
			// A failed long candidate must not block the short one.
			name:   "prefix matches when extension fails",
			terms:  []string{"olive", "olive oil"},
			tokens: []string{"olive", "pit"},
			want:   [][2]int{{0, 1}},
		},
		{
			// Adjacent multiword terms tile without gaps.
			name:   "adjacent multiword terms",
			terms:  []string{"red wine", "wine vinegar", "red wine vinegar"},
			tokens: []string{"red", "wine", "vinegar", "red", "wine"},
			want:   [][2]int{{0, 3}, {3, 5}},
		},
		{
			// Unmatched tokens advance the scan by one, so a term
			// starting mid-phrase is still found.
			name:   "scan advances past unmatched tokens",
			terms:  []string{"cream cheese"},
			tokens: []string{"whipped", "cream", "cheese"},
			want:   [][2]int{{1, 3}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := NewLexicon(tc.terms).MatchSpans(tc.tokens)
			if len(got) != len(tc.want) {
				t.Fatalf("spans = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("spans = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// TestNewLexiconInteriorWhitespace pins the bugfix: a term written
// with doubled interior spaces used to be stored verbatim and could
// never match, because candidates are assembled with single spaces.
func TestNewLexiconInteriorWhitespace(t *testing.T) {
	l := NewLexicon([]string{"sour  cream", "ice\t tea", "   "})
	if l.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (whitespace-only term dropped)", l.Len())
	}
	if got := l.MatchSpans([]string{"sour", "cream"}); len(got) != 1 || got[0] != [2]int{0, 2} {
		t.Fatalf("double-spaced term did not match: %v", got)
	}
	if got := l.MatchSpans([]string{"ice", "tea"}); len(got) != 1 || got[0] != [2]int{0, 2} {
		t.Fatalf("tab-separated term did not match: %v", got)
	}
	if l.MaxWords() != 2 {
		t.Fatalf("MaxWords = %d, want 2", l.MaxWords())
	}
}

func TestMatchAt(t *testing.T) {
	l := NewLexicon([]string{"olive oil", "salt"})
	var buf []byte
	tokens := []string{"Olive", "OIL", "salt"}
	if n := l.MatchAt(tokens, 0, &buf); n != 2 {
		t.Fatalf("MatchAt(0) = %d, want 2 (ASCII case folded)", n)
	}
	if n := l.MatchAt(tokens, 2, &buf); n != 1 {
		t.Fatalf("MatchAt(2) = %d, want 1", n)
	}
	if n := l.MatchAt(tokens, 1, &buf); n != 0 {
		t.Fatalf("MatchAt(1) = %d, want 0", n)
	}
}

// The rules tier scans every token of every phrase through MatchAt;
// the candidate buffer must absorb all growth so steady-state matching
// allocates nothing.
func TestMatchAtZeroAlloc(t *testing.T) {
	l := Ingredients()
	tokens := []string{"extra", "virgin", "olive", "oil", "and", "salt"}
	buf := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(200, func() {
		for i := range tokens {
			l.MatchAt(tokens, i, &buf)
		}
	})
	if allocs != 0 {
		t.Fatalf("MatchAt allocates %.1f/scan, want 0", allocs)
	}
}

func TestContainsBytes(t *testing.T) {
	l := Units()
	if !l.ContainsBytes([]byte("tablespoon")) {
		t.Fatal("ContainsBytes(tablespoon) = false")
	}
	if l.ContainsBytes([]byte("Tablespoon")) {
		t.Fatal("ContainsBytes is exact-match; upper case must miss")
	}
}

func TestMatchSpansEmpty(t *testing.T) {
	if spans := Ingredients().MatchSpans(nil); spans != nil {
		t.Fatalf("spans = %v", spans)
	}
}

func TestTermsSorted(t *testing.T) {
	terms := Units().Terms()
	for i := 1; i < len(terms); i++ {
		if terms[i] < terms[i-1] {
			t.Fatal("Terms not sorted")
		}
	}
}

func TestInventorySizes(t *testing.T) {
	// sanity floor: the paper annotates 268 processes and 69 utensils.
	if n := Techniques().Len(); n < 150 {
		t.Errorf("techniques inventory too small: %d", n)
	}
	if n := Utensils().Len(); n < 69 {
		t.Errorf("utensils inventory too small: %d", n)
	}
	if n := Ingredients().Len(); n < 200 {
		t.Errorf("ingredients inventory too small: %d", n)
	}
	if n := States().Len(); n < 40 {
		t.Errorf("states inventory too small: %d", n)
	}
}

func TestDisjointAttributeClasses(t *testing.T) {
	// Sizes, temps and dry/fresh must not overlap each other: the NER
	// tags are mutually exclusive.
	sets := map[string]*Lexicon{
		"sizes": Sizes(), "temps": Temperatures(), "dryfresh": DryFresh(),
	}
	for an, a := range sets {
		for bn, b := range sets {
			if an >= bn {
				continue
			}
			for _, term := range a.Terms() {
				if b.Contains(term) {
					t.Errorf("%q in both %s and %s", term, an, bn)
				}
			}
		}
	}
}

func TestFrequencyDictionary(t *testing.T) {
	d := NewFrequencyDictionary()
	for i := 0; i < 50; i++ {
		d.Observe("boil")
	}
	for i := 0; i < 46; i++ {
		d.Observe("Glorp") // below the technique threshold
	}
	if d.Count("BOIL") != 50 {
		t.Fatalf("Count = %d", d.Count("BOIL"))
	}
	lex := d.Filter(TechniqueThreshold)
	if !lex.Contains("boil") {
		t.Error("boil should survive threshold 47")
	}
	if lex.Contains("glorp") {
		t.Error("glorp should be filtered at threshold 47")
	}
	lex10 := d.Filter(UtensilThreshold)
	if !lex10.Contains("glorp") {
		t.Error("glorp should survive threshold 10")
	}
}

func TestThresholdConstants(t *testing.T) {
	if TechniqueThreshold != 47 || UtensilThreshold != 10 {
		t.Fatal("paper thresholds changed")
	}
}
