// Package graph builds a knowledge graph over mined recipe models —
// the §IV direction of "interpreting Knowledge Graphs and Thought
// Graphs from such relationships". Nodes are ingredients, utensils and
// processes; weighted edges record how often a process was applied to
// an entity, how often two ingredients co-occur in a recipe, and which
// process follows which in the temporal chains.
package graph

import (
	"fmt"
	"sort"
	"strings"

	"recipemodel/internal/core"
)

// Kind classifies a node.
type Kind int

// Node kinds.
const (
	Ingredient Kind = iota
	Utensil
	Process
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Ingredient:
		return "ingredient"
	case Utensil:
		return "utensil"
	default:
		return "process"
	}
}

// Node identifies a graph node.
type Node struct {
	Kind Kind
	Name string
}

// Weighted pairs a node with an occurrence count.
type Weighted struct {
	Node  Node
	Count int
}

// Graph is the accumulated knowledge graph. The zero value is not
// usable; call New.
type Graph struct {
	recipes int
	nodes   map[Node]int // node → occurrence count
	// appliedTo[process][entity node] — the many-to-many relations.
	appliedTo map[string]map[Node]int
	// pairings[a][b] — ingredient co-occurrence within a recipe (a < b).
	pairings map[string]map[string]int
	// follows[p1][p2] — temporal process bigrams.
	follows map[string]map[string]int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes:     map[Node]int{},
		appliedTo: map[string]map[Node]int{},
		pairings:  map[string]map[string]int{},
		follows:   map[string]map[string]int{},
	}
}

// AddRecipe folds one mined recipe model into the graph.
func (g *Graph) AddRecipe(m *core.RecipeModel) {
	g.recipes++
	var names []string
	seen := map[string]bool{}
	for _, rec := range m.Ingredients {
		n := strings.ToLower(rec.Name)
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		names = append(names, n)
		g.nodes[Node{Ingredient, n}]++
	}
	sort.Strings(names)
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if g.pairings[names[i]] == nil {
				g.pairings[names[i]] = map[string]int{}
			}
			g.pairings[names[i]][names[j]]++
		}
	}
	var prevProc string
	for _, e := range m.Events {
		p := strings.ToLower(e.Process)
		g.nodes[Node{Process, p}]++
		if g.appliedTo[p] == nil {
			g.appliedTo[p] = map[Node]int{}
		}
		for _, a := range e.Ingredients {
			n := Node{Ingredient, strings.ToLower(a.Text)}
			g.appliedTo[p][n]++
			g.nodes[n]++
		}
		for _, a := range e.Utensils {
			n := Node{Utensil, strings.ToLower(a.Text)}
			g.appliedTo[p][n]++
			g.nodes[n]++
		}
		if prevProc != "" {
			if g.follows[prevProc] == nil {
				g.follows[prevProc] = map[string]int{}
			}
			g.follows[prevProc][p]++
		}
		prevProc = p
	}
}

// Recipes returns how many recipes the graph has absorbed.
func (g *Graph) Recipes() int { return g.recipes }

// NodeCount returns the number of distinct nodes.
func (g *Graph) NodeCount() int { return len(g.nodes) }

// topOf converts a count map to a sorted Weighted list (ties by name).
func topOf(m map[Node]int, n int) []Weighted {
	out := make([]Weighted, 0, len(m))
	for node, c := range m {
		out = append(out, Weighted{Node: node, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Node.Name < out[j].Node.Name
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// ArgumentsOf returns the entities a process is most often applied to.
func (g *Graph) ArgumentsOf(process string, n int) []Weighted {
	return topOf(g.appliedTo[strings.ToLower(process)], n)
}

// ProcessesFor returns the processes most often applied to the entity.
func (g *Graph) ProcessesFor(entity string, n int) []Weighted {
	entity = strings.ToLower(entity)
	acc := map[Node]int{}
	for p, args := range g.appliedTo {
		for node, c := range args {
			if node.Name == entity {
				acc[Node{Process, p}] += c
			}
		}
	}
	return topOf(acc, n)
}

// Pairings returns the ingredients that most often co-occur with the
// given ingredient inside a recipe — the "food pairing" use case of
// the paper's introduction.
func (g *Graph) Pairings(ingredient string, n int) []Weighted {
	ingredient = strings.ToLower(ingredient)
	acc := map[Node]int{}
	for b, c := range g.pairings[ingredient] {
		acc[Node{Ingredient, b}] += c
	}
	for a, m := range g.pairings {
		if c, ok := m[ingredient]; ok {
			acc[Node{Ingredient, a}] += c
		}
	}
	return topOf(acc, n)
}

// NextProcesses returns the processes that most often follow the given
// process in the temporal chains.
func (g *Graph) NextProcesses(process string, n int) []Weighted {
	acc := map[Node]int{}
	for p, c := range g.follows[strings.ToLower(process)] {
		acc[Node{Process, p}] += c
	}
	return topOf(acc, n)
}

// TopNodes returns the most frequent nodes of a kind.
func (g *Graph) TopNodes(kind Kind, n int) []Weighted {
	acc := map[Node]int{}
	for node, c := range g.nodes {
		if node.Kind == kind {
			acc[node] += c
		}
	}
	return topOf(acc, n)
}

// DOT renders the strongest process→entity edges as a Graphviz
// document (top edges per process).
func (g *Graph) DOT(edgesPerProcess int) string {
	var b strings.Builder
	b.WriteString("digraph recipes {\n  rankdir=LR;\n")
	var procs []string
	for p := range g.appliedTo {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	for _, p := range procs {
		for _, w := range topOf(g.appliedTo[p], edgesPerProcess) {
			fmt.Fprintf(&b, "  %q -> %q [label=%d];\n", p, w.Node.Name, w.Count)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
