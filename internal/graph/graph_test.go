package graph

import (
	"strings"
	"testing"

	"recipemodel/internal/core"
	"recipemodel/internal/relations"
)

func demoModel() *core.RecipeModel {
	return &core.RecipeModel{
		Ingredients: []core.IngredientRecord{
			{Name: "tomato"}, {Name: "basil"}, {Name: "pasta"},
		},
		Events: []core.Event{
			{Step: 0, Relation: relations.Relation{
				Process:     "boil",
				Ingredients: []relations.Argument{{Text: "pasta"}},
				Utensils:    []relations.Argument{{Text: "pot"}},
			}},
			{Step: 1, Relation: relations.Relation{
				Process:     "chop",
				Ingredients: []relations.Argument{{Text: "tomato"}, {Text: "basil"}},
			}},
			{Step: 2, Relation: relations.Relation{
				Process:     "toss",
				Ingredients: []relations.Argument{{Text: "pasta"}, {Text: "tomato"}},
			}},
		},
	}
}

func TestAddRecipeAndCounts(t *testing.T) {
	g := New()
	g.AddRecipe(demoModel())
	g.AddRecipe(demoModel())
	if g.Recipes() != 2 {
		t.Fatalf("recipes = %d", g.Recipes())
	}
	if g.NodeCount() == 0 {
		t.Fatal("no nodes")
	}
}

func TestArgumentsOf(t *testing.T) {
	g := New()
	g.AddRecipe(demoModel())
	args := g.ArgumentsOf("boil", 5)
	if len(args) != 2 {
		t.Fatalf("args = %v", args)
	}
	names := map[string]bool{}
	for _, w := range args {
		names[w.Node.Name] = true
	}
	if !names["pasta"] || !names["pot"] {
		t.Fatalf("args = %v", args)
	}
	if got := g.ArgumentsOf("levitate", 5); len(got) != 0 {
		t.Fatalf("unknown process: %v", got)
	}
}

func TestProcessesFor(t *testing.T) {
	g := New()
	g.AddRecipe(demoModel())
	procs := g.ProcessesFor("pasta", 5)
	if len(procs) != 2 {
		t.Fatalf("procs = %v", procs)
	}
	seen := map[string]bool{}
	for _, w := range procs {
		seen[w.Node.Name] = true
	}
	if !seen["boil"] || !seen["toss"] {
		t.Fatalf("procs = %v", procs)
	}
}

func TestPairingsSymmetric(t *testing.T) {
	g := New()
	g.AddRecipe(demoModel())
	a := g.Pairings("tomato", 5)
	b := g.Pairings("basil", 5)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("pairings: %v / %v", a, b)
	}
	find := func(ws []Weighted, name string) int {
		for _, w := range ws {
			if w.Node.Name == name {
				return w.Count
			}
		}
		return -1
	}
	if find(a, "basil") != find(b, "tomato") {
		t.Fatal("pairing counts not symmetric")
	}
}

func TestNextProcesses(t *testing.T) {
	g := New()
	g.AddRecipe(demoModel())
	next := g.NextProcesses("boil", 5)
	if len(next) != 1 || next[0].Node.Name != "chop" {
		t.Fatalf("next = %v", next)
	}
	if got := g.NextProcesses("toss", 5); len(got) != 0 {
		t.Fatalf("terminal process: %v", got)
	}
}

func TestTopNodesAndRanking(t *testing.T) {
	g := New()
	for i := 0; i < 3; i++ {
		g.AddRecipe(demoModel())
	}
	top := g.TopNodes(Ingredient, 2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	if top[0].Count < top[1].Count {
		t.Fatal("not sorted by count")
	}
	if kinds := []string{Ingredient.String(), Utensil.String(), Process.String()}; kinds[0] != "ingredient" || kinds[1] != "utensil" || kinds[2] != "process" {
		t.Fatalf("kind names: %v", kinds)
	}
}

func TestDOT(t *testing.T) {
	g := New()
	g.AddRecipe(demoModel())
	dot := g.DOT(2)
	if !strings.HasPrefix(dot, "digraph") || !strings.Contains(dot, "\"boil\" -> \"pasta\"") {
		t.Fatalf("DOT:\n%s", dot)
	}
}
