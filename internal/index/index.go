// Package index provides structured retrieval over a corpus of mined
// recipe models — the "exploring recipes" capability RecipeDB itself
// exposes [1]. Because recipes are mined into typed fields, queries
// can target facets the raw text cannot: find recipes that *fry*
// *chicken* in a *skillet*, recipes using a given ingredient in a
// given processing state, or recipes whose technique chain contains a
// given subsequence.
package index

import (
	"sort"
	"strings"

	"recipemodel/internal/core"
)

// Index is an inverted index over mined recipe models.
type Index struct {
	models []*core.RecipeModel

	byIngredient map[string][]int
	byProcess    map[string][]int
	byUtensil    map[string][]int
	byCuisine    map[string][]int
	// byPair indexes "process|ingredient" combinations — the
	// many-to-many relations, searchable directly.
	byPair map[string][]int
	// byState indexes "ingredient|state" combinations.
	byState map[string][]int
}

// New builds an index over the models (which are retained by
// reference).
func New(models []*core.RecipeModel) *Index {
	ix := &Index{
		models:       models,
		byIngredient: map[string][]int{},
		byProcess:    map[string][]int{},
		byUtensil:    map[string][]int{},
		byCuisine:    map[string][]int{},
		byPair:       map[string][]int{},
		byState:      map[string][]int{},
	}
	post := func(m map[string][]int, key string, doc int) {
		key = strings.ToLower(strings.TrimSpace(key))
		if key == "" {
			return
		}
		ids := m[key]
		if len(ids) > 0 && ids[len(ids)-1] == doc {
			return
		}
		m[key] = append(ids, doc)
	}
	for doc, m := range models {
		post(ix.byCuisine, m.Cuisine, doc)
		for _, rec := range m.Ingredients {
			post(ix.byIngredient, rec.Name, doc)
			if rec.State != "" {
				post(ix.byState, strings.ToLower(rec.Name)+"|"+strings.ToLower(rec.State), doc)
			}
		}
		for _, e := range m.Events {
			post(ix.byProcess, e.Process, doc)
			for _, u := range e.Utensils {
				post(ix.byUtensil, u.Text, doc)
			}
			for _, a := range e.Ingredients {
				post(ix.byPair, strings.ToLower(e.Process)+"|"+strings.ToLower(a.Text), doc)
			}
		}
	}
	return ix
}

// Len returns the corpus size.
func (ix *Index) Len() int { return len(ix.models) }

// Model returns the model for a document id.
func (ix *Index) Model(doc int) *core.RecipeModel { return ix.models[doc] }

// Query is a conjunctive structured query; empty fields are wildcards.
// The JSON tags are the wire form of the query service's /query/search
// endpoint, which decodes request bodies straight into this type.
type Query struct {
	// Ingredients the recipe must contain (all of them).
	Ingredients []string `json:"ingredients,omitempty"`
	// Processes the event chain must contain (all of them).
	Processes []string `json:"processes,omitempty"`
	// Utensils the recipe must use.
	Utensils []string `json:"utensils,omitempty"`
	// Cuisine restricts the cuisine label.
	Cuisine string `json:"cuisine,omitempty"`
	// Applied restricts to recipes where Applied.Process is applied to
	// Applied.Ingredient in one relation (the many-to-many structure).
	Applied []Pair `json:"applied,omitempty"`
	// InState requires an ingredient mined with a processing state.
	InState []Pair `json:"in_state,omitempty"`
}

// Pair is a (process, ingredient) or (ingredient, state) combination.
type Pair struct {
	A string `json:"a"`
	B string `json:"b"`
}

// Search returns the matching document ids in ascending order.
func (ix *Index) Search(q Query) []int {
	var lists [][]int
	add := func(ids []int, ok bool) bool {
		if !ok {
			return false
		}
		lists = append(lists, ids)
		return true
	}
	get := func(m map[string][]int, key string) ([]int, bool) {
		ids, ok := m[strings.ToLower(strings.TrimSpace(key))]
		return ids, ok
	}
	for _, t := range q.Ingredients {
		if ids, ok := get(ix.byIngredient, t); !add(ids, ok) {
			return nil
		}
	}
	for _, t := range q.Processes {
		if ids, ok := get(ix.byProcess, t); !add(ids, ok) {
			return nil
		}
	}
	for _, t := range q.Utensils {
		if ids, ok := get(ix.byUtensil, t); !add(ids, ok) {
			return nil
		}
	}
	if q.Cuisine != "" {
		if ids, ok := get(ix.byCuisine, q.Cuisine); !add(ids, ok) {
			return nil
		}
	}
	for _, p := range q.Applied {
		key := strings.ToLower(p.A) + "|" + strings.ToLower(p.B)
		if ids, ok := ix.byPair[key]; !add(ids, ok) {
			return nil
		}
	}
	for _, p := range q.InState {
		key := strings.ToLower(p.A) + "|" + strings.ToLower(p.B)
		if ids, ok := ix.byState[key]; !add(ids, ok) {
			return nil
		}
	}
	if len(lists) == 0 {
		// wildcard query: everything.
		out := make([]int, len(ix.models))
		for i := range out {
			out[i] = i
		}
		return out
	}
	return intersectAll(lists)
}

// intersectAll intersects sorted posting lists, smallest first.
func intersectAll(lists [][]int) []int {
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	out := lists[0]
	for _, l := range lists[1:] {
		out = intersect(out, l)
		if len(out) == 0 {
			return nil
		}
	}
	return append([]int(nil), out...)
}

func intersect(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Vocabulary returns the distinct keys of a facet, sorted.
func (ix *Index) Vocabulary(facet string) []string {
	var m map[string][]int
	switch facet {
	case "ingredient":
		m = ix.byIngredient
	case "process":
		m = ix.byProcess
	case "utensil":
		m = ix.byUtensil
	case "cuisine":
		m = ix.byCuisine
	default:
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
