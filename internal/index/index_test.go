package index

import (
	"reflect"
	"testing"

	"recipemodel/internal/core"
	"recipemodel/internal/relations"
)

func corpus() []*core.RecipeModel {
	arg := func(names ...string) []relations.Argument {
		var out []relations.Argument
		for _, n := range names {
			out = append(out, relations.Argument{Text: n})
		}
		return out
	}
	return []*core.RecipeModel{
		{ // 0: fried chicken
			Cuisine: "American",
			Ingredients: []core.IngredientRecord{
				{Name: "chicken", State: "trimmed"}, {Name: "flour"}, {Name: "oil"},
			},
			Events: []core.Event{
				{Step: 0, Relation: relations.Relation{Process: "dredge", Ingredients: arg("chicken", "flour")}},
				{Step: 1, Relation: relations.Relation{Process: "fry", Ingredients: arg("chicken"), Utensils: arg("skillet")}},
			},
		},
		{ // 1: chicken soup
			Cuisine: "American",
			Ingredients: []core.IngredientRecord{
				{Name: "chicken"}, {Name: "carrot", State: "chopped"}, {Name: "celery"},
			},
			Events: []core.Event{
				{Step: 0, Relation: relations.Relation{Process: "boil", Ingredients: arg("chicken"), Utensils: arg("pot")}},
				{Step: 1, Relation: relations.Relation{Process: "add", Ingredients: arg("carrot", "celery")}},
			},
		},
		{ // 2: pasta
			Cuisine: "Italian",
			Ingredients: []core.IngredientRecord{
				{Name: "pasta"}, {Name: "tomato", State: "chopped"},
			},
			Events: []core.Event{
				{Step: 0, Relation: relations.Relation{Process: "boil", Ingredients: arg("pasta"), Utensils: arg("pot")}},
				{Step: 1, Relation: relations.Relation{Process: "toss", Ingredients: arg("tomato")}},
			},
		},
	}
}

func TestWildcardQuery(t *testing.T) {
	ix := New(corpus())
	if got := ix.Search(Query{}); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("wildcard = %v", got)
	}
	if ix.Len() != 3 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestIngredientQuery(t *testing.T) {
	ix := New(corpus())
	if got := ix.Search(Query{Ingredients: []string{"chicken"}}); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("chicken = %v", got)
	}
	if got := ix.Search(Query{Ingredients: []string{"Chicken", "carrot"}}); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("chicken+carrot = %v", got)
	}
	if got := ix.Search(Query{Ingredients: []string{"durian"}}); got != nil {
		t.Fatalf("missing term = %v", got)
	}
}

func TestProcessAndUtensilQuery(t *testing.T) {
	ix := New(corpus())
	if got := ix.Search(Query{Processes: []string{"boil"}}); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("boil = %v", got)
	}
	if got := ix.Search(Query{Processes: []string{"boil"}, Utensils: []string{"pot"}, Cuisine: "Italian"}); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("boil+pot+Italian = %v", got)
	}
}

func TestAppliedPairQuery(t *testing.T) {
	ix := New(corpus())
	// "fry applied to chicken" must hit only recipe 0 — recipe 1 has
	// chicken and recipe 2 has boiling, but only 0 fries chicken.
	got := ix.Search(Query{Applied: []Pair{{A: "fry", B: "chicken"}}})
	if !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("fry|chicken = %v", got)
	}
	if got := ix.Search(Query{Applied: []Pair{{A: "fry", B: "pasta"}}}); got != nil {
		t.Fatalf("fry|pasta = %v", got)
	}
}

func TestInStateQuery(t *testing.T) {
	ix := New(corpus())
	got := ix.Search(Query{InState: []Pair{{A: "tomato", B: "chopped"}}})
	if !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("tomato|chopped = %v", got)
	}
	got = ix.Search(Query{InState: []Pair{{A: "carrot", B: "chopped"}}})
	if !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("carrot|chopped = %v", got)
	}
}

func TestVocabulary(t *testing.T) {
	ix := New(corpus())
	if got := ix.Vocabulary("cuisine"); !reflect.DeepEqual(got, []string{"american", "italian"}) {
		t.Fatalf("cuisines = %v", got)
	}
	if got := ix.Vocabulary("process"); len(got) != 5 {
		t.Fatalf("processes = %v", got)
	}
	if ix.Vocabulary("nope") != nil {
		t.Fatal("unknown facet should be nil")
	}
}

func TestModelAccess(t *testing.T) {
	ix := New(corpus())
	hits := ix.Search(Query{Ingredients: []string{"pasta"}})
	if len(hits) != 1 || ix.Model(hits[0]).Cuisine != "Italian" {
		t.Fatalf("model access: %v", hits)
	}
}

func TestIntersect(t *testing.T) {
	if got := intersect([]int{1, 3, 5, 7}, []int{2, 3, 6, 7, 9}); !reflect.DeepEqual(got, []int{3, 7}) {
		t.Fatalf("intersect = %v", got)
	}
	if got := intersect(nil, []int{1}); got != nil {
		t.Fatalf("empty intersect = %v", got)
	}
}
