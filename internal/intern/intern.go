// Package intern maps strings to dense int32 IDs. It is the backbone
// of the compiled annotation fast path: feature names, vocabulary
// words, and suffixes are interned once at model build/load time, and
// the hot decode loops then work entirely in IDs against packed weight
// arrays instead of hashing strings into map[string][]float64.
//
// The zero-allocation contract: LookupBytes performs a map access with
// a string([]byte) conversion in index position, which the compiler
// compiles without copying the bytes. A decode loop can therefore
// assemble candidate keys in a reusable scratch buffer and probe the
// table with no per-token heap allocation.
package intern

import (
	"sort"
	"unicode"
	"unicode/utf8"
)

// None is the ID returned for strings that are not in the table.
const None int32 = -1

// Table is an immutable-after-build string→ID mapping. IDs are dense:
// 0..Len()-1. Lookups are safe for concurrent use once the table is
// no longer being mutated by Add.
type Table struct {
	ids   map[string]int32
	names []string
}

// New returns an empty table with capacity for n entries.
func New(n int) *Table {
	return &Table{ids: make(map[string]int32, n), names: make([]string, 0, n)}
}

// FromSorted builds a table whose ID assignment follows the given
// order. Callers that start from a Go map must sort the keys first so
// the table — and everything serialized or logged from it — is
// deterministic (the repo's nondeterminism lint bans map-ordered
// output).
func FromSorted(keys []string) *Table {
	t := New(len(keys))
	for _, k := range keys {
		t.Add(k)
	}
	return t
}

// FromMapKeys builds a deterministic table over the keys of m by
// sorting them first.
func FromMapKeys[V any](m map[string]V) *Table {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return FromSorted(keys)
}

// Add interns s, returning its ID (existing or newly assigned).
func (t *Table) Add(s string) int32 {
	if id, ok := t.ids[s]; ok {
		return id
	}
	id := int32(len(t.names))
	t.ids[s] = id
	t.names = append(t.names, s)
	return id
}

// Lookup returns the ID of s, or None.
func (t *Table) Lookup(s string) int32 {
	if id, ok := t.ids[s]; ok {
		return id
	}
	return None
}

// LookupBytes is Lookup over a byte slice without allocating: the
// string conversion happens in map-index position, which the compiler
// performs without copying.
func (t *Table) LookupBytes(b []byte) int32 {
	if id, ok := t.ids[string(b)]; ok {
		return id
	}
	return None
}

// AppendLower appends strings.ToLower(s) to dst without allocating:
// rune-wise unicode.ToLower with invalid bytes mapped to U+FFFD,
// exactly the strings.Map semantics ToLower uses. Shared by the
// compiled extractors, which lower each token once into an arena and
// probe tables with the bytes.
func AppendLower(dst []byte, s string) []byte {
	for _, r := range s {
		dst = utf8.AppendRune(dst, unicode.ToLower(r))
	}
	return dst
}

// Len returns the number of interned strings.
func (t *Table) Len() int { return len(t.names) }

// Name returns the string with the given ID; it panics on an ID not
// produced by this table, matching slice-index semantics.
func (t *Table) Name(id int32) string { return t.names[id] }
