package intern

import (
	"fmt"
	"sort"
	"testing"

	"recipemodel/internal/quarantine"
)

func TestAddLookupRoundTrip(t *testing.T) {
	tab := New(4)
	words := []string{"salt", "pepper", "olive oil", "", "salt"}
	ids := make([]int32, len(words))
	for i, w := range words {
		ids[i] = tab.Add(w)
	}
	if ids[0] != ids[4] {
		t.Fatalf("re-adding %q changed its ID: %d vs %d", words[0], ids[0], ids[4])
	}
	if tab.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (duplicate must not mint a new ID)", tab.Len())
	}
	for i, w := range words {
		if got := tab.Lookup(w); got != ids[i] {
			t.Errorf("Lookup(%q) = %d, want %d", w, got, ids[i])
		}
		if got := tab.LookupBytes([]byte(w)); got != ids[i] {
			t.Errorf("LookupBytes(%q) = %d, want %d", w, got, ids[i])
		}
		if name := tab.Name(ids[i]); name != w {
			t.Errorf("Name(%d) = %q, want %q", ids[i], name, w)
		}
	}
	if got := tab.Lookup("cumin"); got != None {
		t.Errorf("Lookup(absent) = %d, want None", got)
	}
	if got := tab.LookupBytes([]byte("cumin")); got != None {
		t.Errorf("LookupBytes(absent) = %d, want None", got)
	}
}

func TestFromMapKeysDeterministic(t *testing.T) {
	m := map[string]int{"zz": 1, "aa": 2, "mm": 3, "bb": 4}
	a, b := FromMapKeys(m), FromMapKeys(m)
	if a.Len() != len(m) || b.Len() != len(m) {
		t.Fatalf("Len = %d/%d, want %d", a.Len(), b.Len(), len(m))
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if a.Lookup(k) != int32(i) || b.Lookup(k) != int32(i) {
			t.Errorf("key %q: IDs %d/%d, want sorted position %d", k, a.Lookup(k), b.Lookup(k), i)
		}
	}
}

func TestLookupBytesZeroAlloc(t *testing.T) {
	tab := FromSorted([]string{"w=salt", "suf3=alt", "bias"})
	key := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(200, func() {
		key = append(key[:0], "w="...)
		key = append(key, "salt"...)
		if tab.LookupBytes(key) == None {
			t.Fatal("lost key")
		}
		key = append(key[:0], "pre2=xx"...)
		_ = tab.LookupBytes(key) // miss path must not allocate either
	})
	if allocs != 0 {
		t.Fatalf("LookupBytes allocated %.1f times per run, want 0", allocs)
	}
}

// FuzzLookupBytes feeds dirty input — seeded with the quarantine
// poison corpus: invalid UTF-8, NUL bytes, pathological lengths —
// through both lookup forms and checks they agree and never corrupt
// the table.
func FuzzLookupBytes(f *testing.F) {
	for _, p := range quarantine.PoisonPhrases() {
		f.Add([]byte(p))
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xfe, 0x00})
	tab := New(64)
	for i, s := range []string{"", "bias", "w=\x00", "w=\xff\xfe", "gaz=ingr"} {
		if id := tab.Add(s); id != int32(i) {
			f.Fatalf("seed Add(%q) = %d, want %d", s, id, i)
		}
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		want := tab.Lookup(string(b))
		if got := tab.LookupBytes(b); got != want {
			t.Fatalf("LookupBytes(%q) = %d, Lookup = %d", b, got, want)
		}
		// interning dirty bytes must round-trip exactly
		id := tab.Add(string(b))
		if tab.Name(id) != string(b) {
			t.Fatalf("round trip lost bytes: %q -> %q", b, tab.Name(id))
		}
		if got := tab.LookupBytes(b); got != id {
			t.Fatalf("post-Add LookupBytes(%q) = %d, want %d", b, got, id)
		}
	})
}

func BenchmarkLookupBytes(b *testing.B) {
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = fmt.Sprintf("w=token%03d", i)
	}
	tab := FromSorted(keys)
	probe := make([]byte, 0, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe = append(probe[:0], keys[i%len(keys)]...)
		if tab.LookupBytes(probe) == None {
			b.Fatal("missing key")
		}
	}
}
