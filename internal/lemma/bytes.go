// Byte-slice twins of the lemmatizer used by the compiled annotation
// fast path. AppendAuto reproduces LemmaAuto exactly (pinned by the
// differential tests in bytes_test.go) while performing zero heap
// allocations for ordinary tokens: candidates are assembled in a
// stack buffer and every lexicon/exception probe uses the
// string-conversion-in-map-index idiom, which does not copy.

package lemma

// maxFastWord bounds the token length served by the allocation-free
// path; longer (pathological) tokens fall back to the string
// implementation, trading an allocation for unchanged behaviour.
const maxFastWord = 64

// AppendAuto appends LemmaAuto(string(w)) to dst and returns the
// extended slice. w must already be lower-cased (the compiled
// extractor lowers once per token into an arena); LemmaAuto lower-cases
// idempotently, so the results agree.
func (l *Lemmatizer) AppendAuto(dst []byte, w []byte) []byte {
	if len(w) > maxFastWord {
		return append(dst, l.LemmaAuto(string(w))...)
	}
	// candidate scratch: longest candidate is len(w)+3 ("men"→"man"
	// style rules never grow by more than the new suffix).
	var scratch [maxFastWord + 8]byte
	for _, pos := range [...]POS{Noun, Verb, Adj} {
		if out, ok := l.lemmaLower(scratch[:0], w, pos); ok {
			return append(dst, out...)
		}
	}
	return append(dst, w...)
}

// lemmaLower computes Lemma(string(w), pos) for lower-cased w into buf,
// returning (lemma, true) iff the lemma differs from w. The branch
// structure mirrors Lemma exactly; see the differential tests.
func (l *Lemmatizer) lemmaLower(buf []byte, w []byte, pos POS) ([]byte, bool) {
	if len(w) == 0 {
		return nil, false
	}
	if base, ok := l.exceptions[pos][string(w)]; ok {
		if base == string(w) {
			return nil, false
		}
		return append(buf, base...), true
	}
	if l.lexicon[string(w)] && !looksInflectedLower(w, pos) {
		return nil, false
	}
	for _, r := range detachments[pos] {
		if !hasSuffixLower(w, r.old) || len(w) <= len(r.old) {
			continue
		}
		cand := append(buf[:0], w[:len(w)-len(r.old)]...)
		cand = append(cand, r.new...)
		if len(cand) < 2 {
			continue
		}
		// A detachment hit always differs from w: every rule has
		// r.new != r.old.
		if l.lexicon[string(cand)] {
			return cand, true
		}
	}
	// Every fallback branch strictly shortens w, so a hit differs.
	return fallbackLower(buf[:0], w, pos)
}

// looksInflectedLower mirrors looksInflected over bytes.
func looksInflectedLower(w []byte, pos POS) bool {
	switch pos {
	case Noun:
		if hasSuffixLower(w, "ss") || hasSuffixLower(w, "us") || hasSuffixLower(w, "is") {
			return false
		}
		return hasSuffixLower(w, "s")
	case Verb:
		if hasSuffixLower(w, "ing") || hasSuffixLower(w, "ed") {
			return true
		}
		return hasSuffixLower(w, "s") && !hasSuffixLower(w, "ss")
	}
	return false
}

// fallbackLower mirrors fallback over bytes, building the candidate in
// buf.
func fallbackLower(buf []byte, w []byte, pos POS) ([]byte, bool) {
	switch pos {
	case Noun:
		switch {
		case hasSuffixLower(w, "ies") && len(w) > 4:
			return append(append(buf, w[:len(w)-3]...), 'y'), true
		case hasSuffixLower(w, "ches") || hasSuffixLower(w, "shes") ||
			hasSuffixLower(w, "xes") || hasSuffixLower(w, "sses") ||
			hasSuffixLower(w, "zes"):
			return append(buf, w[:len(w)-2]...), true
		case hasSuffixLower(w, "oes") && len(w) > 4:
			return append(buf, w[:len(w)-2]...), true
		case hasSuffixLower(w, "s") && !hasSuffixLower(w, "ss") &&
			!hasSuffixLower(w, "us") && !hasSuffixLower(w, "is") && len(w) > 3:
			return append(buf, w[:len(w)-1]...), true
		}
	case Verb:
		switch {
		case hasSuffixLower(w, "ies") && len(w) > 4:
			return append(append(buf, w[:len(w)-3]...), 'y'), true
		case hasSuffixLower(w, "ing") && len(w) > 5:
			stem := w[:len(w)-3]
			if isDoubledFinalLower(stem) {
				return append(buf, stem[:len(stem)-1]...), true
			}
			return appendRestoreE(buf, stem), true
		case hasSuffixLower(w, "ed") && len(w) > 4:
			stem := w[:len(w)-2]
			if isDoubledFinalLower(stem) {
				return append(buf, stem[:len(stem)-1]...), true
			}
			return appendRestoreE(buf, stem), true
		case hasSuffixLower(w, "es") && len(w) > 4:
			stem := w[:len(w)-2]
			if hasSuffixLower(stem, "ch") || hasSuffixLower(stem, "sh") ||
				hasSuffixLower(stem, "ss") || hasSuffixLower(stem, "x") ||
				hasSuffixLower(stem, "zz") || hasSuffixLower(stem, "o") {
				return append(buf, stem...), true
			}
			return append(buf, w[:len(w)-1]...), true
		case hasSuffixLower(w, "s") && !hasSuffixLower(w, "ss") && len(w) > 3:
			return append(buf, w[:len(w)-1]...), true
		}
	}
	return nil, false
}

// appendRestoreE mirrors restoreE over bytes.
func appendRestoreE(buf []byte, stem []byte) []byte {
	buf = append(buf, stem...)
	n := len(stem)
	if n < 2 {
		return buf
	}
	last := stem[n-1]
	switch {
	case last == 'v' || last == 'c' || last == 'u' || last == 'z':
		return append(buf, 'e')
	case last == 'l' && !isVowelByte(stem[n-2]):
		return append(buf, 'e')
	}
	return buf
}

func isDoubledFinalLower(stem []byte) bool {
	n := len(stem)
	if n < 3 {
		return false
	}
	a, b := stem[n-2], stem[n-1]
	if a != b {
		return false
	}
	switch b {
	case 'b', 'd', 'g', 'l', 'm', 'n', 'p', 'r', 't':
		return true
	}
	return false
}

// hasSuffixLower reports whether b ends with s, comparing without
// allocating.
func hasSuffixLower(b []byte, s string) bool {
	return len(b) >= len(s) && string(b[len(b)-len(s):]) == s
}
