package lemma

import (
	"math/rand"
	"strings"
	"testing"
)

// byteTwinInputs assembles a word list that exercises every branch of
// the lemmatizer: the full embedded lexicon, all exception keys and
// values, systematic suffix mutations, and dirty strings.
func byteTwinInputs() []string {
	var words []string
	for w := range baseLexicon {
		words = append(words, w)
	}
	for _, exc := range []map[string]string{nounExceptions, verbExceptions, adjExceptions} {
		for k, v := range exc {
			words = append(words, k, v)
		}
	}
	base := append([]string(nil), words...)
	for _, w := range base {
		for _, suf := range []string{"s", "es", "ies", "ed", "ing", "er", "est", "men", "ves", "oes"} {
			words = append(words, w+suf)
		}
	}
	words = append(words,
		"", "s", "ss", "a", "½", "1/2", "co-op", "tomatoes",
		"molasses", "cookies", "chopped", "dancing", "mixes", "washes",
		"sizes", "crumbled", "caramelized", "\xff\xfe", "x\x00y",
		strings.Repeat("tomatoes", 20), // past the fast-path length cap
	)
	return words
}

// TestAppendAutoMatchesLemmaAuto is the differential pin: the
// byte-path lemmatizer must agree with the string path on every input.
func TestAppendAutoMatchesLemmaAuto(t *testing.T) {
	l := New()
	buf := make([]byte, 0, 128)
	for _, w := range byteTwinInputs() {
		lw := strings.ToLower(w)
		want := l.LemmaAuto(lw)
		buf = l.AppendAuto(buf[:0], []byte(lw))
		if string(buf) != want {
			t.Fatalf("AppendAuto(%q) = %q, want %q", lw, buf, want)
		}
	}
}

// TestAppendAutoRandomized mutates random lexicon words with random
// suffix garbage to hit rule interactions the curated list misses.
func TestAppendAutoRandomized(t *testing.T) {
	l := New()
	words := make([]string, 0, len(baseLexicon))
	for w := range baseLexicon {
		words = append(words, w)
	}
	rng := rand.New(rand.NewSource(99))
	sufs := []string{"", "s", "es", "ies", "ed", "ing", "zes", "ches", "shes", "xes", "sses"}
	buf := make([]byte, 0, 128)
	for trial := 0; trial < 5000; trial++ {
		w := words[rng.Intn(len(words))]
		if n := rng.Intn(3); n > 0 && len(w) > n {
			w = w[:len(w)-n]
		}
		w += sufs[rng.Intn(len(sufs))]
		want := l.LemmaAuto(w)
		buf = l.AppendAuto(buf[:0], []byte(w))
		if string(buf) != want {
			t.Fatalf("AppendAuto(%q) = %q, want %q", w, buf, want)
		}
	}
}

func TestAppendAutoZeroAlloc(t *testing.T) {
	l := New()
	buf := make([]byte, 0, 128)
	inputs := [][]byte{
		[]byte("tomatoes"), []byte("chopped"), []byte("cups"),
		[]byte("molasses"), []byte("xyzzies"),
	}
	allocs := testing.AllocsPerRun(200, func() {
		for _, w := range inputs {
			buf = l.AppendAuto(buf[:0], w)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendAuto allocated %.1f times per run, want 0", allocs)
	}
}

func BenchmarkAppendAuto(b *testing.B) {
	l := New()
	buf := make([]byte, 0, 64)
	w := []byte("tomatoes")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = l.AppendAuto(buf[:0], w)
	}
}

func BenchmarkLemmaAuto(b *testing.B) {
	l := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = l.LemmaAuto("tomatoes")
	}
}
