// Package lemma implements a WordNet-morphy-style lemmatizer: an
// exception list consulted first, then POS-specific suffix detachment
// rules whose candidates are validated against an embedded lexicon of
// base forms. This mirrors the behaviour of the NLTK WordNetLemmatizer
// the paper uses during pre-processing ("tomatoes" → "tomato").
package lemma

import "strings"

// POS selects the detachment rule set, following WordNet's four
// syntactic categories.
type POS int

// Part-of-speech categories understood by the lemmatizer.
const (
	Noun POS = iota
	Verb
	Adj
	Adv
)

// rule is one suffix detachment: strip old, append new.
type rule struct {
	old, new string
}

var detachments = map[POS][]rule{
	Noun: {
		{"ses", "s"}, {"ves", "f"}, {"xes", "x"}, {"zes", "z"},
		{"ches", "ch"}, {"shes", "sh"}, {"oes", "o"}, {"men", "man"},
		{"ies", "y"}, {"s", ""},
	},
	Verb: {
		{"ies", "y"}, {"es", "e"}, {"es", ""}, {"ed", "e"},
		{"ed", ""}, {"ing", "e"}, {"ing", ""}, {"s", ""},
	},
	Adj: {
		{"er", ""}, {"est", ""}, {"er", "e"}, {"est", "e"},
	},
	Adv: {},
}

// Lemmatizer maps inflected forms to base forms.
type Lemmatizer struct {
	exceptions map[POS]map[string]string
	lexicon    map[string]bool
}

// New returns a lemmatizer loaded with the embedded exception lists
// and base-form lexicon.
func New() *Lemmatizer {
	l := &Lemmatizer{
		exceptions: map[POS]map[string]string{
			Noun: nounExceptions,
			Verb: verbExceptions,
			Adj:  adjExceptions,
			Adv:  {},
		},
		lexicon: baseLexicon,
	}
	return l
}

// Lemma returns the base form of word under the given part of speech.
// Unknown words are returned unchanged (lower-cased), matching
// WordNet-morphy's contract of never inventing forms it cannot verify.
func (l *Lemmatizer) Lemma(word string, pos POS) string {
	w := strings.ToLower(word)
	if w == "" {
		return w
	}
	if base, ok := l.exceptions[pos][w]; ok {
		return base
	}
	// If the surface form itself is a known base form, keep it. This is
	// what prevents "molasses" from becoming "molasse".
	if l.lexicon[w] && !looksInflected(w, pos) {
		return w
	}
	for _, r := range detachments[pos] {
		if !strings.HasSuffix(w, r.old) || len(w) <= len(r.old) {
			continue
		}
		cand := w[:len(w)-len(r.old)] + r.new
		if len(cand) < 2 {
			continue
		}
		if l.lexicon[cand] {
			return cand
		}
	}
	// Second pass: accept the highest-priority morphologically plausible
	// candidate even when the lexicon has no entry, but only for the
	// regular plural/participle endings where over-stripping is rare.
	if cand, ok := fallback(w, pos); ok {
		return cand
	}
	return w
}

// looksInflected reports whether a lexicon word should nevertheless be
// run through detachment (e.g. "cookies" appears in the lexicon as a
// plural by accident of the corpus; we only shortcut words that do not
// end in an inflection suffix for the POS).
func looksInflected(w string, pos POS) bool {
	switch pos {
	case Noun:
		// Nouns ending in "ss"/"us"/"is" are not plural inflections.
		if strings.HasSuffix(w, "ss") || strings.HasSuffix(w, "us") || strings.HasSuffix(w, "is") {
			return false
		}
		return strings.HasSuffix(w, "s")
	case Verb:
		if strings.HasSuffix(w, "ing") || strings.HasSuffix(w, "ed") {
			return true
		}
		return strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss")
	}
	return false
}

// fallback applies conservative regular-morphology stripping for
// out-of-lexicon words.
func fallback(w string, pos POS) (string, bool) {
	switch pos {
	case Noun:
		switch {
		case strings.HasSuffix(w, "ies") && len(w) > 4:
			return w[:len(w)-3] + "y", true
		case strings.HasSuffix(w, "ches") || strings.HasSuffix(w, "shes") ||
			strings.HasSuffix(w, "xes") || strings.HasSuffix(w, "sses") ||
			strings.HasSuffix(w, "zes"):
			return w[:len(w)-2], true
		case strings.HasSuffix(w, "oes") && len(w) > 4:
			return w[:len(w)-2], true
		case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") &&
			!strings.HasSuffix(w, "us") && !strings.HasSuffix(w, "is") && len(w) > 3:
			return w[:len(w)-1], true
		}
	case Verb:
		switch {
		case strings.HasSuffix(w, "ies") && len(w) > 4:
			return w[:len(w)-3] + "y", true
		case strings.HasSuffix(w, "ing") && len(w) > 5:
			stem := w[:len(w)-3]
			if isDoubledFinal(stem) {
				return stem[:len(stem)-1], true
			}
			return restoreE(stem), true
		case strings.HasSuffix(w, "ed") && len(w) > 4:
			stem := w[:len(w)-2]
			if isDoubledFinal(stem) {
				return stem[:len(stem)-1], true
			}
			return restoreE(stem), true
		case strings.HasSuffix(w, "es") && len(w) > 4:
			// sibilant stems take -es ("mixes", "washes"); elsewhere the
			// "e" belongs to the base ("sizes" → "size").
			stem := w[:len(w)-2]
			if strings.HasSuffix(stem, "ch") || strings.HasSuffix(stem, "sh") ||
				strings.HasSuffix(stem, "ss") || strings.HasSuffix(stem, "x") ||
				strings.HasSuffix(stem, "zz") || strings.HasSuffix(stem, "o") {
				return stem, true
			}
			return w[:len(w)-1], true
		case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && len(w) > 3:
			return w[:len(w)-1], true
		}
	}
	return "", false
}

// restoreE appends the silent "e" that -ed/-ing stripping removed when
// the stem shape demands it: "caramelize", "crumble", "serve",
// "dance", "rescue".
func restoreE(stem string) string {
	n := len(stem)
	if n < 2 {
		return stem
	}
	last := stem[n-1]
	switch {
	case last == 'v' || last == 'c' || last == 'u' || last == 'z':
		return stem + "e"
	case last == 'l' && n >= 2 && !isVowelByte(stem[n-2]):
		return stem + "e"
	}
	return stem
}

func isVowelByte(b byte) bool {
	switch b {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// isDoubledFinal reports whether the stem ends in a doubled consonant
// produced by gemination ("chopp" from "chopped").
func isDoubledFinal(stem string) bool {
	n := len(stem)
	if n < 3 {
		return false
	}
	a, b := stem[n-2], stem[n-1]
	if a != b {
		return false
	}
	switch b {
	case 'b', 'd', 'g', 'l', 'm', 'n', 'p', 'r', 't':
		return true
	}
	return false
}

// LemmaAuto lemmatizes trying Noun then Verb then Adj categories,
// returning the first analysis that changes the word; this mirrors how
// the paper's pre-processing lemmatizes without gold POS.
func (l *Lemmatizer) LemmaAuto(word string) string {
	w := strings.ToLower(word)
	for _, pos := range []POS{Noun, Verb, Adj} {
		if out := l.Lemma(w, pos); out != w {
			return out
		}
	}
	return w
}

// KnownBase reports whether w is in the embedded base-form lexicon.
func (l *Lemmatizer) KnownBase(w string) bool {
	return l.lexicon[strings.ToLower(w)]
}
