package lemma

import (
	"testing"
	"testing/quick"
)

func TestNounPlurals(t *testing.T) {
	l := New()
	cases := map[string]string{
		"tomatoes":  "tomato",
		"Tomatoes":  "tomato",
		"potatoes":  "potato",
		"onions":    "onion",
		"berries":   "berry",
		"knives":    "knife",
		"leaves":    "leaf",
		"loaves":    "loaf",
		"children":  "child",
		"peaches":   "peach",
		"dishes":    "dish",
		"boxes":     "box",
		"cups":      "cup",
		"teaspoons": "teaspoon",
		"sprigs":    "sprig",
	}
	for in, want := range cases {
		if got := l.Lemma(in, Noun); got != want {
			t.Errorf("Lemma(%q, Noun) = %q, want %q", in, got, want)
		}
	}
}

func TestInvariantNouns(t *testing.T) {
	l := New()
	for _, w := range []string{"molasses", "couscous", "hummus", "asparagus", "salmon", "shrimp", "tongs"} {
		if got := l.Lemma(w, Noun); got != w {
			t.Errorf("Lemma(%q, Noun) = %q, want unchanged", w, got)
		}
	}
}

func TestVerbForms(t *testing.T) {
	l := New()
	cases := map[string]string{
		"chopped":   "chop",
		"chopping":  "chop",
		"boiled":    "boil",
		"boiling":   "boil",
		"mixed":     "mix",
		"stirring":  "stir",
		"frozen":    "freeze",
		"thawed":    "thaw",
		"ground":    "grind",
		"simmering": "simmer",
		"brought":   "bring",
		"minces":    "mince",
		"bakes":     "bake",
		"baked":     "bake",
		"sliced":    "slice",
		"dicing":    "dice",
		"whisked":   "whisk",
		"preheated": "preheat",
	}
	for in, want := range cases {
		if got := l.Lemma(in, Verb); got != want {
			t.Errorf("Lemma(%q, Verb) = %q, want %q", in, got, want)
		}
	}
}

func TestAdjectives(t *testing.T) {
	l := New()
	cases := map[string]string{
		"larger":   "large",
		"hottest":  "hot",
		"finer":    "fine",
		"driest":   "dry",
		"fresher":  "fresh",
		"thinnest": "thin",
	}
	for in, want := range cases {
		if got := l.Lemma(in, Adj); got != want {
			t.Errorf("Lemma(%q, Adj) = %q, want %q", in, got, want)
		}
	}
}

func TestLemmaAuto(t *testing.T) {
	l := New()
	cases := map[string]string{
		"tomatoes": "tomato",
		"chopped":  "chop",
		"cups":     "cup",
		"salt":     "salt",
	}
	for in, want := range cases {
		if got := l.LemmaAuto(in); got != want {
			t.Errorf("LemmaAuto(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLemmaEmptyAndShort(t *testing.T) {
	l := New()
	if got := l.Lemma("", Noun); got != "" {
		t.Errorf("empty lemma = %q", got)
	}
	if got := l.Lemma("a", Noun); got != "a" {
		t.Errorf("short lemma = %q", got)
	}
	if got := l.Lemma("as", Noun); got != "as" {
		t.Errorf("Lemma(as) = %q, want as", got)
	}
}

func TestLemmaCaseInsensitive(t *testing.T) {
	l := New()
	if got := l.Lemma("TOMATOES", Noun); got != "tomato" {
		t.Errorf("uppercase lemma = %q", got)
	}
}

func TestKnownBase(t *testing.T) {
	l := New()
	if !l.KnownBase("tomato") || !l.KnownBase("Boil") {
		t.Error("expected known bases")
	}
	if l.KnownBase("zzzzz") {
		t.Error("unexpected known base")
	}
}

// Property: lemmatization is idempotent — Lemma(Lemma(w)) == Lemma(w).
func TestLemmaIdempotentProperty(t *testing.T) {
	l := New()
	f := func(s string) bool {
		for _, pos := range []POS{Noun, Verb, Adj} {
			once := l.Lemma(s, pos)
			twice := l.Lemma(once, pos)
			// Allow at most one more reduction step for chained
			// out-of-lexicon fallbacks, but it must then be stable.
			if twice != once && l.Lemma(twice, pos) != twice {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: output is never longer than input + 2 (detachment only
// shrinks or swaps short suffixes) and is always lower-case.
func TestLemmaLengthProperty(t *testing.T) {
	l := New()
	f := func(s string) bool {
		out := l.Lemma(s, Noun)
		return len(out) <= len(s)+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNounFallbackOOV(t *testing.T) {
	// out-of-lexicon nouns exercise the conservative fallback rules.
	l := New()
	cases := map[string]string{
		"flamingoes": "flamingo",
		"wombats":    "wombat",
		"gazpachos":  "gazpacho",
		"kumquats":   "kumquat",
		"brioches":   "brioch", // ambiguous without a lexicon entry (peaches→peach pattern wins)
		"blintzes":   "blintz",
		"knishes":    "knish",
		"latkes":     "latke",
		"ramenis":    "ramenis", // "-is" endings are not plurals
		"hibiscus":   "hibiscus",
		"mess":       "mess",
	}
	for in, want := range cases {
		if got := l.Lemma(in, Noun); got != want {
			t.Errorf("Lemma(%q, Noun) = %q, want %q", in, got, want)
		}
	}
}

func TestVerbFallbackOOV(t *testing.T) {
	l := New()
	cases := map[string]string{
		"spiralizes":   "spiralize",
		"spiralized":   "spiralize",
		"flumbled":     "flumble", // consonant+l stem restores the silent e
		"zhuzhing":     "zhuzh",
		"caramelizes":  "caramelize",
		"spatchcocked": "spatchcock",
		"glopped":      "glop", // doubled-consonant gemination undone
		"whirring":     "whir",
	}
	for in, want := range cases {
		got := l.Lemma(in, Verb)
		if got != want {
			t.Errorf("Lemma(%q, Verb) = %q, want %q", in, got, want)
		}
	}
}

func TestVerbIesFallback(t *testing.T) {
	l := New()
	if got := l.Lemma("zombifies", Verb); got != "zombify" {
		t.Errorf("zombifies → %q", got)
	}
}

func TestAdvPassthrough(t *testing.T) {
	l := New()
	// Adv has no detachment rules: words pass through lower-cased.
	if got := l.Lemma("Quickly", Adv); got != "quickly" {
		t.Errorf("adv lemma = %q", got)
	}
}

func TestNounVesDetachment(t *testing.T) {
	l := New()
	// "ves"→"f" detachment validated by lexicon ("loaves" is in the
	// exception list; "calves" too — use a rule-path case).
	if got := l.Lemma("wolves", Noun); got != "wolf" {
		t.Errorf("wolves → %q", got)
	}
}

func TestAdjOOVPassthrough(t *testing.T) {
	l := New()
	// out-of-lexicon adjectives have no fallback: unchanged.
	if got := l.Lemma("zestier", Adj); got != "zestier" {
		t.Errorf("zestier → %q", got)
	}
}

func TestLemmaAutoVerbOnly(t *testing.T) {
	l := New()
	// a word only analyzable as a verb form routes through the Verb
	// pass of LemmaAuto.
	if got := l.LemmaAuto("simmering"); got != "simmer" {
		t.Errorf("simmering → %q", got)
	}
	if got := l.LemmaAuto("largest"); got != "large" {
		t.Errorf("largest → %q", got)
	}
}
