package mathx

import (
	"math"
	"sort"
)

// Eigen holds an eigendecomposition of a symmetric matrix: Values are
// sorted descending, and Vectors[i] is the unit eigenvector for
// Values[i].
type Eigen struct {
	Values  []float64
	Vectors []Vector
}

// SymmetricEigen computes the eigendecomposition of a symmetric matrix
// using the cyclic Jacobi rotation method. The input is not modified.
// It converges quadratically; 100 sweeps is far more than ever needed
// for the ≤36-dimensional matrices this repository produces.
func SymmetricEigen(m *Matrix) Eigen {
	n := m.Rows
	if n == 0 {
		return Eigen{}
	}
	// working copy a, accumulated rotations v (starts as identity).
	a := make([]float64, len(m.Data))
	copy(a, m.Data)
	v := make([]float64, n*n)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}

	off := func() float64 {
		var s float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += a[i*n+j] * a[i*n+j]
			}
		}
		return s
	}

	const eps = 1e-14
	for sweep := 0; sweep < 100 && off() > eps; sweep++ {
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a[p*n+q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := a[p*n+p]
				aqq := a[q*n+q]
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c

				// rotate rows/cols p and q of a.
				for k := 0; k < n; k++ {
					akp := a[k*n+p]
					akq := a[k*n+q]
					a[k*n+p] = c*akp - s*akq
					a[k*n+q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk := a[p*n+k]
					aqk := a[q*n+k]
					a[p*n+k] = c*apk - s*aqk
					a[q*n+k] = s*apk + c*aqk
				}
				// accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp := v[k*n+p]
					vkq := v[k*n+q]
					v[k*n+p] = c*vkp - s*vkq
					v[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}

	eig := Eigen{
		Values:  make([]float64, n),
		Vectors: make([]Vector, n),
	}
	idx := make([]int, n)
	for i := 0; i < n; i++ {
		eig.Values[i] = a[i*n+i]
		idx[i] = i
	}
	sort.Slice(idx, func(x, y int) bool { return eig.Values[idx[x]] > eig.Values[idx[y]] })

	sortedVals := make([]float64, n)
	for rank, i := range idx {
		sortedVals[rank] = eig.Values[i]
		vec := make(Vector, n)
		for k := 0; k < n; k++ {
			vec[k] = v[k*n+i]
		}
		eig.Vectors[rank] = vec
	}
	eig.Values = sortedVals
	return eig
}

// PCA holds a fitted principal-component analysis.
type PCA struct {
	Mean       Vector
	Components []Vector  // unit principal axes, strongest first
	Explained  []float64 // eigenvalues (variance along each axis)
}

// FitPCA fits a PCA with the given number of components on the rows.
// k is clamped to the data dimension.
func FitPCA(rows []Vector, k int) *PCA {
	if len(rows) == 0 {
		return &PCA{}
	}
	d := len(rows[0])
	if k > d {
		k = d
	}
	cov := Covariance(rows)
	eig := SymmetricEigen(cov)
	p := &PCA{
		Mean:       Mean(rows),
		Components: eig.Vectors[:k],
		Explained:  eig.Values[:k],
	}
	return p
}

// Transform projects v onto the fitted components.
func (p *PCA) Transform(v Vector) Vector {
	if len(p.Components) == 0 {
		return Vector{}
	}
	c := v.Sub(p.Mean)
	out := make(Vector, len(p.Components))
	for i, axis := range p.Components {
		out[i] = c.Dot(axis)
	}
	return out
}

// TransformAll projects every row.
func (p *PCA) TransformAll(rows []Vector) []Vector {
	out := make([]Vector, len(rows))
	for i, r := range rows {
		out[i] = p.Transform(r)
	}
	return out
}

// ExplainedRatio returns the fraction of total variance captured by
// each retained component (sums to ≤ 1).
func (p *PCA) ExplainedRatio(totalVariance float64) []float64 {
	out := make([]float64, len(p.Explained))
	if totalVariance <= 0 {
		return out
	}
	for i, e := range p.Explained {
		out[i] = e / totalVariance
	}
	return out
}

// TotalVariance returns the trace of the covariance of rows — the
// denominator for ExplainedRatio.
func TotalVariance(rows []Vector) float64 {
	cov := Covariance(rows)
	var tr float64
	for i := 0; i < cov.Rows; i++ {
		tr += cov.At(i, i)
	}
	return tr
}
