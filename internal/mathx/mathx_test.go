package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	o := Vector{4, 5, 6}
	if got := v.Dot(o); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := Distance(v, o); !almost(got, math.Sqrt(27), 1e-12) {
		t.Errorf("Distance = %v", got)
	}
	s := v.Sub(o)
	if s[0] != -3 || s[1] != -3 || s[2] != -3 {
		t.Errorf("Sub = %v", s)
	}
	c := v.Clone()
	c.Scale(2)
	if v[0] != 1 || c[0] != 2 {
		t.Error("Clone/Scale aliasing")
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestCosineSimilarity(t *testing.T) {
	if got := CosineSimilarity(Vector{1, 0}, Vector{1, 0}); !almost(got, 1, 1e-12) {
		t.Errorf("parallel = %v", got)
	}
	if got := CosineSimilarity(Vector{1, 0}, Vector{0, 1}); !almost(got, 0, 1e-12) {
		t.Errorf("orthogonal = %v", got)
	}
	if got := CosineSimilarity(Vector{0, 0}, Vector{1, 1}); got != 0 {
		t.Errorf("zero vector = %v", got)
	}
}

func TestMeanCovariance(t *testing.T) {
	rows := []Vector{{1, 2}, {3, 4}, {5, 6}}
	mu := Mean(rows)
	if !almost(mu[0], 3, 1e-12) || !almost(mu[1], 4, 1e-12) {
		t.Fatalf("Mean = %v", mu)
	}
	cov := Covariance(rows)
	// var of {1,3,5} = 4; cov(x,y) = 4 since y = x+1.
	if !almost(cov.At(0, 0), 4, 1e-12) || !almost(cov.At(0, 1), 4, 1e-12) ||
		!almost(cov.At(1, 1), 4, 1e-12) {
		t.Fatalf("Covariance = %+v", cov)
	}
}

func TestCovarianceEdgeCases(t *testing.T) {
	if cov := Covariance(nil); cov.Rows != 0 {
		t.Error("nil rows")
	}
	cov := Covariance([]Vector{{1, 2}})
	if cov.At(0, 0) != 0 {
		t.Error("single row should give zero covariance")
	}
}

func TestSymmetricEigenDiagonal(t *testing.T) {
	m := NewMatrix(3, 3)
	m.Set(0, 0, 3)
	m.Set(1, 1, 1)
	m.Set(2, 2, 2)
	eig := SymmetricEigen(m)
	want := []float64{3, 2, 1}
	for i, w := range want {
		if !almost(eig.Values[i], w, 1e-10) {
			t.Fatalf("Values = %v", eig.Values)
		}
	}
}

func TestSymmetricEigen2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := NewMatrix(2, 2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2)
	eig := SymmetricEigen(m)
	if !almost(eig.Values[0], 3, 1e-10) || !almost(eig.Values[1], 1, 1e-10) {
		t.Fatalf("Values = %v", eig.Values)
	}
	// eigenvector for 3 is (1,1)/√2 up to sign.
	v := eig.Vectors[0]
	if !almost(math.Abs(v[0]), 1/math.Sqrt2, 1e-8) || !almost(math.Abs(v[1]), 1/math.Sqrt2, 1e-8) {
		t.Fatalf("Vector = %v", v)
	}
}

// Property: for random symmetric matrices, A·v = λ·v for every
// eigenpair, eigenvectors are unit length, and the eigenvalue sum
// equals the trace.
func TestEigenReconstructionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(6)
		m := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				x := rng.NormFloat64()
				m.Set(i, j, x)
				m.Set(j, i, x)
			}
		}
		eig := SymmetricEigen(m)
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += m.At(i, i)
			sum += eig.Values[i]
		}
		if !almost(trace, sum, 1e-8) {
			t.Fatalf("trace %v != eigenvalue sum %v", trace, sum)
		}
		for k := 0; k < n; k++ {
			v := eig.Vectors[k]
			if !almost(v.Norm(), 1, 1e-8) {
				t.Fatalf("eigenvector %d not unit: %v", k, v.Norm())
			}
			// A v
			av := make(Vector, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					av[i] += m.At(i, j) * v[j]
				}
			}
			for i := 0; i < n; i++ {
				if !almost(av[i], eig.Values[k]*v[i], 1e-7) {
					t.Fatalf("Av != λv at trial %d, pair %d", trial, k)
				}
			}
		}
	}
}

func TestPCARecoversDominantDirection(t *testing.T) {
	// Points along direction (1,1) with small noise: first PC ≈ (1,1)/√2.
	rng := rand.New(rand.NewSource(42))
	var rows []Vector
	for i := 0; i < 200; i++ {
		tt := rng.NormFloat64() * 10
		rows = append(rows, Vector{tt + rng.NormFloat64()*0.1, tt + rng.NormFloat64()*0.1})
	}
	p := FitPCA(rows, 2)
	pc1 := p.Components[0]
	if !almost(math.Abs(pc1[0]), 1/math.Sqrt2, 0.02) || !almost(math.Abs(pc1[1]), 1/math.Sqrt2, 0.02) {
		t.Fatalf("PC1 = %v", pc1)
	}
	if p.Explained[0] < 100*p.Explained[1] {
		t.Fatalf("explained variance not dominant: %v", p.Explained)
	}
}

func TestPCATransformDimensions(t *testing.T) {
	rows := []Vector{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}, {0, 1, 0}}
	p := FitPCA(rows, 2)
	proj := p.TransformAll(rows)
	if len(proj) != 4 || len(proj[0]) != 2 {
		t.Fatalf("projection shape wrong: %d×%d", len(proj), len(proj[0]))
	}
	// k larger than dimension clamps.
	p = FitPCA(rows, 10)
	if len(p.Components) != 3 {
		t.Fatalf("clamp failed: %d", len(p.Components))
	}
}

func TestPCAExplainedRatio(t *testing.T) {
	rows := []Vector{{1, 0}, {2, 0}, {3, 0}, {4, 0}}
	p := FitPCA(rows, 2)
	total := TotalVariance(rows)
	ratios := p.ExplainedRatio(total)
	if !almost(ratios[0], 1, 1e-9) || !almost(ratios[1], 0, 1e-9) {
		t.Fatalf("ratios = %v", ratios)
	}
	if got := p.ExplainedRatio(0); got[0] != 0 {
		t.Fatal("zero total variance should yield zeros")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !almost(s.Mean, 5, 1e-12) {
		t.Fatalf("Summary = %+v", s)
	}
	if !almost(s.StdDev, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

// Property: distance is symmetric and satisfies the triangle
// inequality on random small vectors.
func TestDistanceMetricProperty(t *testing.T) {
	f := func(a, b, c [4]float64) bool {
		va, vb, vc := Vector(a[:]), Vector(b[:]), Vector(c[:])
		for _, v := range [][4]float64{a, b, c} {
			for _, x := range v {
				if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
					return true // skip degenerate float inputs
				}
			}
		}
		if !almost(Distance(va, vb), Distance(vb, va), 1e-9) {
			return false
		}
		return Distance(va, vc) <= Distance(va, vb)+Distance(vb, vc)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
