package mathx

import "math"

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
}

// Summarize computes descriptive statistics of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min = xs[0]
	s.Max = xs[0]
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}
