// Package mathx provides the small dense linear-algebra and statistics
// kernel used by the clustering and visualization stages: vectors,
// matrices, mean/covariance, a Jacobi eigensolver for symmetric
// matrices, and PCA projection (Fig 2 of the paper).
package mathx

import (
	"fmt"
	"math"
)

// Vector is a dense float64 vector.
type Vector []float64

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Add accumulates o into v in place. Panics on dimension mismatch.
func (v Vector) Add(o Vector) {
	checkDim(len(v), len(o))
	for i := range v {
		v[i] += o[i]
	}
}

// Sub returns v - o as a new vector.
func (v Vector) Sub(o Vector) Vector {
	checkDim(len(v), len(o))
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - o[i]
	}
	return out
}

// Scale multiplies v by s in place.
func (v Vector) Scale(s float64) {
	for i := range v {
		v[i] *= s
	}
}

// Dot returns the inner product of v and o.
func (v Vector) Dot(o Vector) float64 {
	checkDim(len(v), len(o))
	var s float64
	for i := range v {
		s += v[i] * o[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 {
	return math.Sqrt(v.Dot(v))
}

// SquaredDistance returns ||v-o||².
func SquaredDistance(v, o Vector) float64 {
	checkDim(len(v), len(o))
	var s float64
	for i := range v {
		d := v[i] - o[i]
		s += d * d
	}
	return s
}

// Distance returns the Euclidean distance between v and o.
func Distance(v, o Vector) float64 {
	return math.Sqrt(SquaredDistance(v, o))
}

// CosineSimilarity returns the cosine of the angle between v and o,
// and 0 when either vector is all-zero.
func CosineSimilarity(v, o Vector) float64 {
	nv, no := v.Norm(), o.Norm()
	if nv == 0 || no == 0 {
		return 0
	}
	return v.Dot(o) / (nv * no)
}

func checkDim(a, b int) {
	if a != b {
		panic(fmt.Sprintf("mathx: dimension mismatch %d vs %d", a, b))
	}
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a vector view (not a copy).
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Mean returns the column-wise mean of the rows of a data matrix given
// as a slice of equal-length vectors.
func Mean(rows []Vector) Vector {
	if len(rows) == 0 {
		return nil
	}
	out := make(Vector, len(rows[0]))
	for _, r := range rows {
		out.Add(r)
	}
	out.Scale(1 / float64(len(rows)))
	return out
}

// Covariance returns the sample covariance matrix of the rows
// (features along columns). With fewer than two rows it returns the
// zero matrix of the right shape.
func Covariance(rows []Vector) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	d := len(rows[0])
	cov := NewMatrix(d, d)
	if len(rows) < 2 {
		return cov
	}
	mu := Mean(rows)
	for _, r := range rows {
		c := r.Sub(mu)
		for i := 0; i < d; i++ {
			for j := i; j < d; j++ {
				cov.Data[i*d+j] += c[i] * c[j]
			}
		}
	}
	inv := 1 / float64(len(rows)-1)
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			v := cov.Data[i*d+j] * inv
			cov.Data[i*d+j] = v
			cov.Data[j*d+i] = v
		}
	}
	return cov
}
