package metrics

import (
	"math/rand"
	"sort"

	"recipemodel/internal/ner"
)

// BootstrapCI is a percentile bootstrap confidence interval for the
// micro-F1 of an entity evaluation.
type BootstrapCI struct {
	Point float64 // F1 on the full sample
	Lo    float64 // lower percentile bound
	Hi    float64 // upper percentile bound
	Level float64 // confidence level, e.g. 0.95
}

// BootstrapF1 resamples sentences with replacement iters times and
// returns the percentile CI at the given level (e.g. 0.95). gold and
// pred are parallel per-sentence span sets.
func BootstrapF1(gold, pred [][]ner.Span, iters int, level float64, rng *rand.Rand) BootstrapCI {
	if iters <= 0 {
		iters = 1000
	}
	if level <= 0 || level >= 1 {
		level = 0.95
	}
	n := len(gold)
	out := BootstrapCI{
		Point: EvaluateEntities(gold, pred).Micro.F1,
		Level: level,
	}
	if n == 0 {
		return out
	}
	f1s := make([]float64, iters)
	rg := make([][]ner.Span, n)
	rp := make([][]ner.Span, n)
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			rg[i] = gold[j]
			rp[i] = pred[j]
		}
		f1s[it] = EvaluateEntities(rg, rp).Micro.F1
	}
	sort.Float64s(f1s)
	alpha := (1 - level) / 2
	lo := int(alpha * float64(iters))
	hi := int((1 - alpha) * float64(iters))
	if hi >= iters {
		hi = iters - 1
	}
	out.Lo = f1s[lo]
	out.Hi = f1s[hi]
	return out
}

// Contains reports whether the interval covers x.
func (c BootstrapCI) Contains(x float64) bool {
	return x >= c.Lo && x <= c.Hi
}
