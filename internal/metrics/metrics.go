// Package metrics computes the evaluation measures the paper reports:
// precision, recall and F1 at the entity level (exact span + type
// match, the CoNLL convention the Stanford NER evaluator uses) and at
// the token level, plus confusion matrices and micro/macro averaging.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"recipemodel/internal/ner"
)

// PRF holds precision, recall, F1 and the supporting counts.
type PRF struct {
	TP, FP, FN int
	Precision  float64
	Recall     float64
	F1         float64
}

// compute fills the derived fields from the counts.
func (p *PRF) compute() {
	if p.TP+p.FP > 0 {
		p.Precision = float64(p.TP) / float64(p.TP+p.FP)
	}
	if p.TP+p.FN > 0 {
		p.Recall = float64(p.TP) / float64(p.TP+p.FN)
	}
	if p.Precision+p.Recall > 0 {
		p.F1 = 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
	}
}

// Add merges counts from o and recomputes.
func (p *PRF) Add(o PRF) {
	p.TP += o.TP
	p.FP += o.FP
	p.FN += o.FN
	p.compute()
}

// String renders "P=0.92 R=0.85 F1=0.88".
func (p PRF) String() string {
	return fmt.Sprintf("P=%.4f R=%.4f F1=%.4f", p.Precision, p.Recall, p.F1)
}

// EntityReport is a per-type and overall entity-level evaluation.
type EntityReport struct {
	PerType map[string]*PRF
	Micro   PRF
}

// EvaluateEntities scores predicted spans against gold spans for a
// collection of sentences (slices must be parallel). A prediction is a
// true positive iff both the span boundaries and the type match
// exactly.
func EvaluateEntities(gold, pred [][]ner.Span) *EntityReport {
	if len(gold) != len(pred) {
		panic(fmt.Sprintf("metrics: %d gold vs %d predicted sentence sets", len(gold), len(pred)))
	}
	rep := &EntityReport{PerType: make(map[string]*PRF)}
	get := func(typ string) *PRF {
		if p, ok := rep.PerType[typ]; ok {
			return p
		}
		p := &PRF{}
		rep.PerType[typ] = p
		return p
	}
	for i := range gold {
		gset := make(map[ner.Span]bool, len(gold[i]))
		for _, s := range gold[i] {
			gset[s] = true
		}
		pset := make(map[ner.Span]bool, len(pred[i]))
		for _, s := range pred[i] {
			pset[s] = true
		}
		for s := range pset {
			if gset[s] {
				get(s.Type).TP++
				rep.Micro.TP++
			} else {
				get(s.Type).FP++
				rep.Micro.FP++
			}
		}
		for s := range gset {
			if !pset[s] {
				get(s.Type).FN++
				rep.Micro.FN++
			}
		}
	}
	for _, p := range rep.PerType {
		p.compute()
	}
	rep.Micro.compute()
	return rep
}

// MacroF1 returns the unweighted mean F1 across types.
func (r *EntityReport) MacroF1() float64 {
	if len(r.PerType) == 0 {
		return 0
	}
	var s float64
	for _, p := range r.PerType {
		s += p.F1
	}
	return s / float64(len(r.PerType))
}

// String renders the report sorted by type name.
func (r *EntityReport) String() string {
	var types []string
	for t := range r.PerType {
		types = append(types, t)
	}
	sort.Strings(types)
	var b strings.Builder
	for _, t := range types {
		fmt.Fprintf(&b, "%-10s %s\n", t, r.PerType[t])
	}
	fmt.Fprintf(&b, "%-10s %s\n", "micro", r.Micro)
	return b.String()
}

// TokenAccuracy computes per-token tag accuracy over parallel tag
// sequences.
func TokenAccuracy(gold, pred [][]string) float64 {
	var correct, total int
	for i := range gold {
		for j := range gold[i] {
			if j < len(pred[i]) && gold[i][j] == pred[i][j] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// Confusion is a labeled confusion matrix.
type Confusion struct {
	Labels []string
	index  map[string]int
	Counts [][]int
}

// NewConfusion creates an empty matrix over the label inventory.
func NewConfusion(labels []string) *Confusion {
	c := &Confusion{
		Labels: append([]string(nil), labels...),
		index:  make(map[string]int, len(labels)),
		Counts: make([][]int, len(labels)),
	}
	for i, l := range c.Labels {
		c.index[l] = i
		c.Counts[i] = make([]int, len(labels))
	}
	return c
}

// Observe records one (gold, predicted) pair; unknown labels are
// ignored.
func (c *Confusion) Observe(gold, pred string) {
	gi, ok1 := c.index[gold]
	pi, ok2 := c.index[pred]
	if ok1 && ok2 {
		c.Counts[gi][pi]++
	}
}

// Accuracy returns the trace fraction.
func (c *Confusion) Accuracy() float64 {
	var diag, total int
	for i := range c.Counts {
		for j, n := range c.Counts[i] {
			total += n
			if i == j {
				diag += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(diag) / float64(total)
}

// String renders the matrix with row=gold, col=predicted.
func (c *Confusion) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "gold\\pred")
	for _, l := range c.Labels {
		fmt.Fprintf(&b, "%8s", l)
	}
	b.WriteByte('\n')
	for i, l := range c.Labels {
		fmt.Fprintf(&b, "%-10s", l)
		for j := range c.Labels {
			fmt.Fprintf(&b, "%8d", c.Counts[i][j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
