package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"recipemodel/internal/ner"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestEvaluateEntitiesPerfect(t *testing.T) {
	gold := [][]ner.Span{{{Start: 0, End: 1, Type: "NAME"}, {Start: 2, End: 3, Type: "UNIT"}}}
	rep := EvaluateEntities(gold, gold)
	if !almost(rep.Micro.F1, 1) || rep.Micro.TP != 2 {
		t.Fatalf("perfect eval: %+v", rep.Micro)
	}
	if !almost(rep.MacroF1(), 1) {
		t.Fatalf("macro = %v", rep.MacroF1())
	}
}

func TestEvaluateEntitiesPartial(t *testing.T) {
	gold := [][]ner.Span{{
		{Start: 0, End: 1, Type: "NAME"},
		{Start: 2, End: 4, Type: "UNIT"},
	}}
	pred := [][]ner.Span{{
		{Start: 0, End: 1, Type: "NAME"}, // TP
		{Start: 2, End: 3, Type: "UNIT"}, // boundary wrong: FP + FN
		{Start: 5, End: 6, Type: "SIZE"}, // spurious: FP
	}}
	rep := EvaluateEntities(gold, pred)
	if rep.Micro.TP != 1 || rep.Micro.FP != 2 || rep.Micro.FN != 1 {
		t.Fatalf("counts: %+v", rep.Micro)
	}
	if !almost(rep.Micro.Precision, 1.0/3.0) || !almost(rep.Micro.Recall, 0.5) {
		t.Fatalf("P/R: %+v", rep.Micro)
	}
	if p := rep.PerType["NAME"]; p.TP != 1 || p.FP != 0 {
		t.Fatalf("NAME: %+v", p)
	}
	if p := rep.PerType["UNIT"]; p.TP != 0 || p.FP != 1 || p.FN != 1 {
		t.Fatalf("UNIT: %+v", p)
	}
}

func TestEvaluateEntitiesTypeMismatch(t *testing.T) {
	gold := [][]ner.Span{{{Start: 0, End: 1, Type: "NAME"}}}
	pred := [][]ner.Span{{{Start: 0, End: 1, Type: "UNIT"}}}
	rep := EvaluateEntities(gold, pred)
	if rep.Micro.TP != 0 || rep.Micro.FP != 1 || rep.Micro.FN != 1 {
		t.Fatalf("type mismatch: %+v", rep.Micro)
	}
}

func TestEvaluateEntitiesEmpty(t *testing.T) {
	rep := EvaluateEntities([][]ner.Span{{}}, [][]ner.Span{{}})
	if rep.Micro.F1 != 0 || rep.Micro.TP != 0 {
		t.Fatalf("empty eval: %+v", rep.Micro)
	}
}

func TestEvaluateEntitiesMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EvaluateEntities(make([][]ner.Span, 2), make([][]ner.Span, 1))
}

func TestPRFAddAndString(t *testing.T) {
	a := PRF{TP: 1, FP: 1, FN: 0}
	a.Add(PRF{TP: 1, FP: 0, FN: 1})
	if a.TP != 2 || a.FP != 1 || a.FN != 1 {
		t.Fatalf("Add: %+v", a)
	}
	if !strings.Contains(a.String(), "F1=") {
		t.Fatal("String format")
	}
}

func TestTokenAccuracy(t *testing.T) {
	gold := [][]string{{"O", "B-NAME", "O"}, {"B-UNIT"}}
	pred := [][]string{{"O", "B-NAME", "B-NAME"}, {"B-UNIT"}}
	if acc := TokenAccuracy(gold, pred); !almost(acc, 0.75) {
		t.Fatalf("accuracy = %v", acc)
	}
	if acc := TokenAccuracy(nil, nil); acc != 0 {
		t.Fatalf("empty accuracy = %v", acc)
	}
}

func TestConfusion(t *testing.T) {
	c := NewConfusion([]string{"A", "B"})
	c.Observe("A", "A")
	c.Observe("A", "B")
	c.Observe("B", "B")
	c.Observe("Z", "A") // unknown: ignored
	if !almost(c.Accuracy(), 2.0/3.0) {
		t.Fatalf("accuracy = %v", c.Accuracy())
	}
	s := c.String()
	if !strings.Contains(s, "gold\\pred") {
		t.Fatalf("render: %q", s)
	}
	if c.Counts[0][1] != 1 {
		t.Fatalf("counts: %v", c.Counts)
	}
}

func TestConfusionEmpty(t *testing.T) {
	c := NewConfusion([]string{"A"})
	if c.Accuracy() != 0 {
		t.Fatal("empty confusion accuracy should be 0")
	}
}

func TestReportString(t *testing.T) {
	gold := [][]ner.Span{{{Start: 0, End: 1, Type: "NAME"}}}
	rep := EvaluateEntities(gold, gold)
	s := rep.String()
	if !strings.Contains(s, "NAME") || !strings.Contains(s, "micro") {
		t.Fatalf("report: %q", s)
	}
}

func TestBootstrapF1(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// 100 sentences, 90% correct: F1 ≈ 0.947; CI should bracket it.
	var gold, pred [][]ner.Span
	for i := 0; i < 100; i++ {
		g := []ner.Span{{Start: 0, End: 1, Type: "NAME"}}
		p := g
		if i%10 == 0 {
			p = []ner.Span{{Start: 0, End: 1, Type: "UNIT"}}
		}
		gold = append(gold, g)
		pred = append(pred, p)
	}
	ci := BootstrapF1(gold, pred, 500, 0.95, rng)
	if !ci.Contains(ci.Point) {
		t.Fatalf("CI [%v, %v] does not contain point %v", ci.Lo, ci.Hi, ci.Point)
	}
	if ci.Hi-ci.Lo <= 0 || ci.Hi-ci.Lo > 0.25 {
		t.Fatalf("CI width implausible: [%v, %v]", ci.Lo, ci.Hi)
	}
	if ci.Point < 0.89 || ci.Point > 0.91 {
		t.Fatalf("point = %v", ci.Point)
	}
}

func TestBootstrapF1Empty(t *testing.T) {
	ci := BootstrapF1(nil, nil, 10, 0.95, rand.New(rand.NewSource(2)))
	if ci.Point != 0 || ci.Lo != 0 || ci.Hi != 0 {
		t.Fatalf("empty CI = %+v", ci)
	}
}

func TestBootstrapDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gold := [][]ner.Span{{{Start: 0, End: 1, Type: "NAME"}}}
	ci := BootstrapF1(gold, gold, 0, 2.0, rng) // bad params → defaults
	if ci.Level != 0.95 {
		t.Fatalf("level = %v", ci.Level)
	}
}
