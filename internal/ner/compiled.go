// The compiled tagging fast path. CompileFor pre-resolves everything
// the legacy extractor does per token — feature-name hashing, string
// lowering, lemmatization, gazetteer membership — into interned-ID
// lookups against packed tables, and decodes over pooled scratch so
// steady-state tagging performs zero per-token heap allocations.
//
// Determinism contract: the compiled extractor must produce, for every
// token, exactly the model-known subset of the legacy extractor's
// feature list, in the same order. Combined with the bit-identical
// crf.Compiled decoder this makes PredictTags/Predict byte-identical
// to the legacy path. The contract is pinned three ways: a canary
// self-check at compile time (CompileFor fails loudly if task/opts
// don't match the extractor the model was trained with), randomized
// old-vs-compiled tests in this package, and the full-corpus
// equivalence test at the repo root.

package ner

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"unicode/utf8"

	"recipemodel/internal/crf"
	"recipemodel/internal/fraction"
	"recipemodel/internal/gazetteer"
	"recipemodel/internal/intern"
)

// Task selects which feature extractor a compiled tagger replicates.
type Task int

// The two tagging tasks of the paper: ingredient phrases (Table II)
// and instruction steps (§III.A).
const (
	TaskIngredient Task = iota
	TaskInstruction
)

// Gazetteer membership bits, one per lexicon consulted by
// gazetteerFeatures.
const (
	mIngr uint16 = 1 << iota
	mUnit
	mState
	mSize
	mTemp
	mDF
	mUtensil
	mTech
)

// BIO label kinds for compiled span decoding.
const (
	bioO uint8 = iota // O, empty, or malformed: closes any open span
	bioB
	bioI
)

// compiled is the packed form of a Tagger's extractor + decoder.
// Immutable after build; all mutable state lives in pooled scratch.
type compiled struct {
	task Task
	opts FeatureOptions
	dec  *crf.Compiled
	lex  *sharedLex

	feats *intern.Table

	// Static feature IDs (intern.None when the model never saw them).
	fBias, fIsnum, fPastish, fHyphen, fFirst, fLast int32
	fPrevBOS, fPrevIsnum, fNextEOS, fInparen        int32
	fImperative                                     int32
	fGazIngr, fGazUnit, fGazState, fGazSize         int32
	fGazTemp, fGazDF, fGazUtensil, fGazTech         int32
	fGazmwIngr, fGazmwUtensil                       int32

	// Interned gazetteer union: masks[id] is the OR of membership bits
	// for term id.
	gaz   *intern.Table
	masks []uint16

	// Per-label-ID span decoding tables.
	kind []uint8
	typ  []string

	// Word cache: every word-local feature (everything but shape=,
	// which is case-sensitive, and the position/context features) is a
	// pure function of the lowered token, and the model's own "w="
	// features enumerate the training vocabulary — so the whole local
	// block is resolved at compile time. vocab maps a lowered token to
	// its entries index; mwWords holds the individual words of
	// multiword gazetteer terms, the skip-filter for multiword probes.
	vocab   *intern.Table
	entries []wordEntry
	mwWords *intern.Table

	pool sync.Pool // *extractScratch
}

// wordEntry is the precomputed word-local feature set of one
// vocabulary word. The ID slices carry only model-known features, in
// legacy extraction order, so the hot loop appends them verbatim.
type wordEntry struct {
	pre  []int32 // w=, suf3=, suf2=, pre2= (shape= is emitted between)
	post []int32 // lemma=, isnum, pastish, hyphen
	gaz  []int32 // single-token gazetteer features
	// IDs of this word seen as a neighbor: "w-1=<w>" etc.
	prev1, prev2, next1, next2 int32
	isnum                      bool // fraction.LooksLower of the word
	mw                         bool // occurs inside a multiword gazetteer term
}

// extractScratch holds one phrase's working buffers. Every slice is
// length-reset before use, so a scratch returned to the pool after a
// contained panic cannot leak stale state into a later phrase.
type extractScratch struct {
	low    []byte  // lowered-token arena
	lowOff []int32 // n+1 offsets into low
	lem    []byte  // lemma arena
	lemOff []int32
	isnum  []bool  // per-token fraction.LooksLower
	wids   []int32 // per-token vocab entry ID (intern.None = uncached)
	mw     []bool  // per-token multiword-gazetteer-word membership
	ids    []int32 // feature-ID arena
	offs   []int32 // n+1 offsets into ids
	key    []byte  // feature-key / gazetteer-candidate build buffer
	path   []int32 // decoded label IDs
}

func (s *extractScratch) lowTok(i int) []byte { return s.low[s.lowOff[i]:s.lowOff[i+1]] }
func (s *extractScratch) lemTok(i int) []byte { return s.lem[s.lemOff[i]:s.lemOff[i+1]] }

// CompileFor builds the compiled fast path for the tagger, replicating
// the extractor for the given task and options. It verifies the
// compiled extractor against t.Extract on canary phrases and fails
// (leaving the tagger on the legacy path) if they disagree — the
// guard against compiling with a task/opts pair that doesn't match
// how the model was trained.
func (t *Tagger) CompileFor(task Task, opts FeatureOptions) error {
	if t.Model == nil {
		return errors.New("ner: CompileFor: tagger has no model")
	}
	if t.Extract == nil {
		return errors.New("ner: CompileFor: tagger has no extractor to verify against")
	}
	c := newCompiled(t.Model, task, opts)
	if err := c.verify(t.Extract); err != nil {
		return err
	}
	t.compiled = c
	return nil
}

// Compiled reports whether the tagger has an active compiled fast
// path.
func (t *Tagger) Compiled() bool { return t.compiled != nil }

func newCompiled(m *crf.Model, task Task, opts FeatureOptions) *compiled {
	c := &compiled{task: task, opts: opts, dec: m.Compile(), lex: newSharedLex()}
	c.feats = c.dec.Features()

	f := c.feats.Lookup
	c.fBias = f("bias")
	c.fIsnum = f("isnum")
	c.fPastish = f("pastish")
	c.fHyphen = f("hyphen")
	c.fFirst = f("first")
	c.fLast = f("last")
	c.fPrevBOS = f("w-1=-BOS-")
	c.fPrevIsnum = f("w-1isnum")
	c.fNextEOS = f("w+1=-EOS-")
	c.fInparen = f("inparen")
	c.fImperative = f("imperative")
	c.fGazIngr = f("gaz=ingr")
	c.fGazUnit = f("gaz=unit")
	c.fGazState = f("gaz=state")
	c.fGazSize = f("gaz=size")
	c.fGazTemp = f("gaz=temp")
	c.fGazDF = f("gaz=df")
	c.fGazUtensil = f("gaz=utensil")
	c.fGazTech = f("gaz=tech")
	c.fGazmwIngr = f("gazmw=ingr")
	c.fGazmwUtensil = f("gazmw=utensil")

	// Interned gazetteer union with membership masks, built in sorted
	// term order for determinism.
	mm := make(map[string]uint16)
	addLex := func(l *gazetteer.Lexicon, bit uint16) {
		for _, t := range l.Terms() {
			mm[t] |= bit
		}
	}
	addLex(c.lex.ingredients, mIngr)
	addLex(c.lex.units, mUnit)
	addLex(c.lex.states, mState)
	addLex(c.lex.sizes, mSize)
	addLex(c.lex.temps, mTemp)
	addLex(c.lex.dryFresh, mDF)
	addLex(c.lex.utensils, mUtensil)
	addLex(c.lex.techniques, mTech)
	terms := make([]string, 0, len(mm))
	for t := range mm {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	c.gaz = intern.FromSorted(terms)
	c.masks = make([]uint16, len(terms))
	for i, t := range terms {
		c.masks[i] = mm[t]
	}

	// Multiword skip-filter: a span candidate can only match a
	// multiword term if every one of its words occurs in some multiword
	// term of a lexicon the multiword features consult (ingredients,
	// and utensils for the instruction task) — checking the per-token
	// bit is far cheaper than building and hashing the joined
	// candidate.
	mwSet := make(map[string]struct{})
	for i, t := range terms {
		if c.masks[i]&(mIngr|mUtensil) == 0 || !strings.Contains(t, " ") {
			continue
		}
		for _, w := range strings.Split(t, " ") {
			mwSet[w] = struct{}{}
		}
	}
	c.mwWords = intern.FromMapKeys(mwSet)

	c.buildWordCache()

	// Span-decoding tables, mirroring BIOToSpans's classification.
	labels := c.dec.Labels()
	c.kind = make([]uint8, len(labels))
	c.typ = make([]string, len(labels))
	for id, lab := range labels {
		switch {
		case len(lab) > 2 && lab[:2] == "B-":
			c.kind[id], c.typ[id] = bioB, lab[2:]
		case len(lab) > 2 && lab[:2] == "I-":
			c.kind[id], c.typ[id] = bioI, lab[2:]
		default:
			c.kind[id] = bioO
		}
	}
	return c
}

// buildWordCache precomputes a wordEntry for every word of the
// model's training vocabulary, enumerated from its "w=" features. The
// feature table is built in sorted-name order, so the "w=" slice of it
// — and therefore vocab and entries — is deterministic.
func (c *compiled) buildWordCache() {
	var words []string
	for id := int32(0); id < int32(c.feats.Len()); id++ {
		if name := c.feats.Name(id); len(name) > 2 && name[:2] == "w=" {
			words = append(words, name[2:])
		}
	}
	c.vocab = intern.FromSorted(words)
	c.entries = make([]wordEntry, len(words))
	for i, w := range words {
		c.entries[i] = c.buildEntry(w)
	}
}

// buildEntry resolves every word-local feature of one lowered
// vocabulary word, mirroring the slow path of extract exactly (same
// features, same order, same model-known filtering).
func (c *compiled) buildEntry(lw string) wordEntry {
	var e wordEntry
	lwb := []byte(lw)
	addKnown := func(dst []int32, id int32) []int32 {
		if id != intern.None {
			dst = append(dst, id)
		}
		return dst
	}
	e.pre = addKnown(e.pre, c.feats.Lookup("w="+lw))
	e.pre = addKnown(e.pre, c.feats.Lookup("suf3="+string(sufBytes(lwb, 3))))
	e.pre = addKnown(e.pre, c.feats.Lookup("suf2="+string(sufBytes(lwb, 2))))
	e.pre = addKnown(e.pre, c.feats.Lookup("pre2="+string(preBytes(lwb, 2))))

	lem := c.lex.lem.LemmaAuto(lw)
	if c.opts.Lemmas {
		e.post = addKnown(e.post, c.feats.Lookup("lemma="+lem))
	}
	e.isnum = fraction.LooksLower(lwb)
	if e.isnum {
		e.post = addKnown(e.post, c.fIsnum)
	}
	if strings.HasSuffix(lw, "ed") || strings.HasSuffix(lw, "en") {
		e.post = addKnown(e.post, c.fPastish)
	}
	if strings.ContainsRune(lw, '-') {
		e.post = addKnown(e.post, c.fHyphen)
	}

	m := c.gazMask(lwb) | c.gazMask([]byte(lem))
	for _, g := range [...]struct {
		bit uint16
		id  int32
	}{
		{mIngr, c.fGazIngr}, {mUnit, c.fGazUnit}, {mState, c.fGazState},
		{mSize, c.fGazSize}, {mTemp, c.fGazTemp}, {mDF, c.fGazDF},
	} {
		if m&g.bit != 0 {
			e.gaz = addKnown(e.gaz, g.id)
		}
	}
	if c.task == TaskInstruction {
		if m&mUtensil != 0 {
			e.gaz = addKnown(e.gaz, c.fGazUtensil)
		}
		if m&mTech != 0 {
			e.gaz = addKnown(e.gaz, c.fGazTech)
		}
	}

	e.prev1 = c.feats.Lookup("w-1=" + lw)
	e.prev2 = c.feats.Lookup("w-2=" + lw)
	e.next1 = c.feats.Lookup("w+1=" + lw)
	e.next2 = c.feats.Lookup("w+2=" + lw)
	e.mw = c.mwWords.Lookup(lw) != intern.None
	return e
}

func (c *compiled) getScratch() *extractScratch {
	s, _ := c.pool.Get().(*extractScratch)
	if s == nil {
		s = &extractScratch{
			low: make([]byte, 0, 256), lowOff: make([]int32, 0, 32),
			lem: make([]byte, 0, 256), lemOff: make([]int32, 0, 32),
			isnum: make([]bool, 0, 32), wids: make([]int32, 0, 32),
			mw:  make([]bool, 0, 32),
			ids: make([]int32, 0, 512), offs: make([]int32, 0, 32),
			key:  make([]byte, 0, 64),
			path: make([]int32, 0, 32),
		}
	}
	return s
}

func (c *compiled) gazMask(b []byte) uint16 {
	id := c.gaz.LookupBytes(b)
	if id == intern.None {
		return 0
	}
	return c.masks[id]
}

// emit appends a static feature ID if the model knows it. Skipping
// unknown features here (rather than filtering later) preserves the
// legacy value-addition order over the model-known subset, which is
// what bit-identical decoding requires.
func (c *compiled) emit(s *extractScratch, id int32) {
	if id != intern.None {
		s.ids = append(s.ids, id)
	}
}

// emitKey builds prefix+val in the key buffer and emits its ID if the
// model knows the feature.
func (c *compiled) emitKey(s *extractScratch, prefix string, val []byte) {
	s.key = append(s.key[:0], prefix...)
	s.key = append(s.key, val...)
	if id := c.feats.LookupBytes(s.key); id != intern.None {
		s.ids = append(s.ids, id)
	}
}

// extract fills s.ids/s.offs with the interned feature stream for
// tokens, replicating baseFeatures + gazetteerFeatures (+ imperative)
// feature-for-feature over the model-known subset.
func (c *compiled) extract(s *extractScratch, tokens []string) {
	n := len(tokens)

	s.low = s.low[:0]
	s.lowOff = append(s.lowOff[:0], 0)
	s.wids = s.wids[:0]
	s.isnum = s.isnum[:0]
	s.mw = s.mw[:0]
	for i, w := range tokens {
		s.low = intern.AppendLower(s.low, w)
		s.lowOff = append(s.lowOff, int32(len(s.low)))
		lw := s.lowTok(i)
		wid := c.vocab.LookupBytes(lw)
		s.wids = append(s.wids, wid)
		if wid != intern.None {
			e := &c.entries[wid]
			s.isnum = append(s.isnum, e.isnum)
			s.mw = append(s.mw, e.mw)
		} else {
			s.isnum = append(s.isnum, fraction.LooksLower(lw))
			s.mw = append(s.mw, c.mwWords.LookupBytes(lw) != intern.None)
		}
	}
	// Lemma arena: only uncached words ever read their span — cached
	// words folded the lemma into their entry at compile time.
	// (gazetteerFeatures lemmatizes unconditionally, so the arena is
	// needed whenever either feature family is on.)
	if c.opts.Lemmas || c.opts.Gazetteers {
		s.lem = s.lem[:0]
		s.lemOff = append(s.lemOff[:0], 0)
		for i := 0; i < n; i++ {
			if s.wids[i] == intern.None {
				s.lem = c.lex.lem.AppendAuto(s.lem, s.lowTok(i))
			}
			s.lemOff = append(s.lemOff, int32(len(s.lem)))
		}
	}

	s.ids = s.ids[:0]
	s.offs = append(s.offs[:0], 0)
	depth := 0
	for i := 0; i < n; i++ {
		c.emit(s, c.fBias)
		var e *wordEntry
		if wid := s.wids[i]; wid != intern.None {
			e = &c.entries[wid]
			s.ids = append(s.ids, e.pre...)
		} else {
			lw := s.lowTok(i)
			c.emitKey(s, "w=", lw)
			c.emitKey(s, "suf3=", sufBytes(lw, 3))
			c.emitKey(s, "suf2=", sufBytes(lw, 2))
			c.emitKey(s, "pre2=", preBytes(lw, 2))
		}
		s.key = append(s.key[:0], "shape="...)
		s.key = appendShape(s.key, tokens[i])
		if id := c.feats.LookupBytes(s.key); id != intern.None {
			s.ids = append(s.ids, id)
		}
		if e != nil {
			s.ids = append(s.ids, e.post...)
		} else {
			lw := s.lowTok(i)
			if c.opts.Lemmas {
				c.emitKey(s, "lemma=", s.lemTok(i))
			}
			if s.isnum[i] {
				c.emit(s, c.fIsnum)
			}
			if hasSuffixB(lw, "ed") || hasSuffixB(lw, "en") {
				c.emit(s, c.fPastish)
			}
			if containsByte(lw, '-') {
				c.emit(s, c.fHyphen)
			}
		}
		switch {
		case i == 0:
			c.emit(s, c.fFirst)
		case i == n-1:
			c.emit(s, c.fLast)
		}
		if i > 0 {
			if wp := s.wids[i-1]; wp != intern.None {
				c.emit(s, c.entries[wp].prev1)
			} else {
				c.emitKey(s, "w-1=", s.lowTok(i-1))
			}
			if s.isnum[i-1] {
				c.emit(s, c.fPrevIsnum)
			}
		} else {
			c.emit(s, c.fPrevBOS)
		}
		if i > 1 {
			if wp := s.wids[i-2]; wp != intern.None {
				c.emit(s, c.entries[wp].prev2)
			} else {
				c.emitKey(s, "w-2=", s.lowTok(i-2))
			}
		}
		if i+1 < n {
			if wn := s.wids[i+1]; wn != intern.None {
				c.emit(s, c.entries[wn].next1)
			} else {
				c.emitKey(s, "w+1=", s.lowTok(i+1))
			}
		} else {
			c.emit(s, c.fNextEOS)
		}
		if i+2 < n {
			if wn := s.wids[i+2]; wn != intern.None {
				c.emit(s, c.entries[wn].next2)
			} else {
				c.emitKey(s, "w+2=", s.lowTok(i+2))
			}
		}
		if depth > 0 {
			c.emit(s, c.fInparen)
		}
		if c.opts.Gazetteers {
			if e != nil {
				s.ids = append(s.ids, e.gaz...)
			} else {
				c.gazSingles(s, i)
			}
			c.gazMultiword(s, i, n)
		}
		if c.task == TaskInstruction && i == 0 {
			c.emit(s, c.fImperative)
		}
		s.offs = append(s.offs, int32(len(s.ids)))
		// Depth counts brackets strictly before the next token,
		// matching the legacy j<i scan.
		switch tokens[i] {
		case "(", "[":
			depth++
		case ")", "]":
			depth--
		}
	}
}

// gazSingles emits the single-token gazetteer features of an uncached
// token (the cached form is wordEntry.gaz).
func (c *compiled) gazSingles(s *extractScratch, i int) {
	m := c.gazMask(s.lowTok(i)) | c.gazMask(s.lemTok(i))
	if m&mIngr != 0 {
		c.emit(s, c.fGazIngr)
	}
	if m&mUnit != 0 {
		c.emit(s, c.fGazUnit)
	}
	if m&mState != 0 {
		c.emit(s, c.fGazState)
	}
	if m&mSize != 0 {
		c.emit(s, c.fGazSize)
	}
	if m&mTemp != 0 {
		c.emit(s, c.fGazTemp)
	}
	if m&mDF != 0 {
		c.emit(s, c.fGazDF)
	}
	if c.task == TaskInstruction {
		if m&mUtensil != 0 {
			c.emit(s, c.fGazUtensil)
		}
		if m&mTech != 0 {
			c.emit(s, c.fGazTech)
		}
	}
}

// gazMultiword probes multiword membership around i. The candidate is
// the lowered tokens joined by spaces; ToLower distributes over join,
// so this equals the legacy ToLower(Join(raw)) byte-for-byte. Windows
// containing a word that occurs in no multiword term are skipped
// without building the candidate — the mw bits make that a slice read.
func (c *compiled) gazMultiword(s *extractScratch, i, n int) {
	for span := 2; span <= 3; span++ {
		for start := i - span + 1; start <= i; start++ {
			if start < 0 || start+span > n {
				continue
			}
			ok := true
			for j := start; j < start+span; j++ {
				if !s.mw[j] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			s.key = s.key[:0]
			for j := start; j < start+span; j++ {
				if j > start {
					s.key = append(s.key, ' ')
				}
				s.key = append(s.key, s.lowTok(j)...)
			}
			cm := c.gazMask(s.key)
			if cm&mIngr != 0 {
				c.emit(s, c.fGazmwIngr)
			}
			if c.task == TaskInstruction && cm&mUtensil != 0 {
				c.emit(s, c.fGazmwUtensil)
			}
		}
	}
}

// appendPredict extracts, decodes, and appends the predicted spans,
// allocating nothing per token (and nothing at all once spans has
// capacity).
func (c *compiled) appendPredict(spans []Span, tokens []string) []Span {
	n := len(tokens)
	if n == 0 {
		return spans
	}
	s := c.getScratch()
	defer c.pool.Put(s)
	c.extract(s, tokens)
	s.path, _ = c.dec.AppendDecodeIDs(s.path[:0], s.ids, s.offs)
	// Span assembly over label IDs, mirroring BIOToSpans (including
	// its I-without-B repair).
	curStart := -1
	var curType string
	for i := 0; i < n; i++ {
		id := s.path[i]
		switch c.kind[id] {
		case bioB:
			if curStart >= 0 {
				spans = append(spans, Span{curStart, i, curType})
			}
			curStart, curType = i, c.typ[id]
		case bioI:
			t := c.typ[id]
			if curStart < 0 || curType != t {
				if curStart >= 0 {
					spans = append(spans, Span{curStart, i, curType})
				}
				curStart, curType = i, t
			}
		default:
			if curStart >= 0 {
				spans = append(spans, Span{curStart, i, curType})
				curStart = -1
			}
		}
	}
	if curStart >= 0 {
		spans = append(spans, Span{curStart, n, curType})
	}
	return spans
}

func (c *compiled) predictTags(tokens []string) []string {
	s := c.getScratch()
	defer c.pool.Put(s)
	c.extract(s, tokens)
	s.path, _ = c.dec.AppendDecodeIDs(s.path[:0], s.ids, s.offs)
	labels := c.dec.Labels()
	out := make([]string, len(tokens))
	for i, y := range s.path {
		out[i] = labels[y]
	}
	return out
}

// canaryPhrases exercise every feature family: quantities and
// fractions, parenthesized packaging, hyphens, multiword gazetteer
// hits, lemmatizable plurals, mixed case, non-ASCII, imperative
// position, and a single-token phrase.
var canaryPhrases = [][]string{
	{"1", "1/2", "cups", "chopped", "tomatoes", ",", "softened"},
	{"2", "(", "8", "ounce", ")", "packages", "cream", "cheese", ",", "cubed"},
	{"Preheat", "the", "Olive", "oil", "in", "a", "large", "frying", "pan"},
	{"add", "half-and-half", "to", "the", "sauté", "pan", "über", "½"},
	{"salt"},
	{"Stir", "in", "one", "DOZEN", "egg", "whites", "(", "beaten", ")"},
}

// verify compares the compiled feature stream against the legacy
// extractor on the canary phrases. Any model-known feature produced by
// one side and not the other — or out of order — is a compile error.
func (c *compiled) verify(extract Extractor) error {
	s := c.getScratch()
	defer c.pool.Put(s)
	var want []int32
	for _, toks := range canaryPhrases {
		c.extract(s, toks)
		for i := range toks {
			want = want[:0]
			for _, f := range extract(toks, i) {
				if id := c.feats.Lookup(f); id != intern.None {
					want = append(want, id)
				}
			}
			got := s.ids[s.offs[i]:s.offs[i+1]]
			if !idsEqual(got, want) {
				return fmt.Errorf(
					"ner: compiled extractor disagrees with legacy extractor at %q token %d (%q): got %s, want %s; task/opts passed to CompileFor likely differ from training",
					strings.Join(toks, " "), i, toks[i], c.idNames(got), c.idNames(want))
			}
		}
	}
	return nil
}

func idsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (c *compiled) idNames(ids []int32) string {
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = c.feats.Name(id)
	}
	return "[" + strings.Join(names, " ") + "]"
}

// appendShape appends shape(w), replicating its quirks exactly
// (initial `last` of rune 0, consecutive-duplicate collapsing).
func appendShape(dst []byte, w string) []byte {
	var last rune
	for _, r := range w {
		var c rune
		switch {
		case r >= 'A' && r <= 'Z':
			c = 'X'
		case r >= 'a' && r <= 'z':
			c = 'x'
		case r >= '0' && r <= '9':
			c = 'd'
		default:
			c = r
		}
		if c != last {
			dst = utf8.AppendRune(dst, c)
			last = c
		}
	}
	return dst
}

func sufBytes(w []byte, n int) []byte {
	if len(w) <= n {
		return w
	}
	return w[len(w)-n:]
}

func preBytes(w []byte, n int) []byte {
	if len(w) <= n {
		return w
	}
	return w[:n]
}

func hasSuffixB(b []byte, s string) bool {
	return len(b) >= len(s) && string(b[len(b)-len(s):]) == s
}

func containsByte(b []byte, c byte) bool {
	for _, x := range b {
		if x == c {
			return true
		}
	}
	return false
}
