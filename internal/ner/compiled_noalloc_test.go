// The race runtime instruments allocations of its own, so
// AllocsPerRun counts are only meaningful in normal builds.
//go:build !race

package ner

import "testing"

// TestAppendPredictZeroAlloc pins the tentpole property: steady-state
// compiled prediction allocates nothing.
func TestAppendPredictZeroAlloc(t *testing.T) {
	compiled, _ := trainedPair(t)
	toks := []string{"2", "cups", "chopped", "flour", "(", "sifted", ")"}
	spans := make([]Span, 0, 16)
	spans = compiled.AppendPredict(spans[:0], toks) // warm pools
	_ = spans
	allocs := testing.AllocsPerRun(100, func() {
		spans = compiled.AppendPredict(spans[:0], toks)
	})
	if allocs != 0 {
		t.Fatalf("AppendPredict allocated %.1f times per run, want 0", allocs)
	}
	if len(spans) == 0 {
		t.Fatal("AppendPredict produced no spans on an in-sample phrase")
	}
}
