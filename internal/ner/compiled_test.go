package ner

import (
	"math/rand"
	"strings"
	"testing"
)

// trainedPair returns the same trained ingredient model as a compiled
// tagger and an untouched legacy tagger.
func trainedPair(t *testing.T) (compiledTg, legacyTg *Tagger) {
	t.Helper()
	tg := Train(tinyCorpus(), IngredientTypes, NewIngredientExtractor(DefaultFeatureOptions),
		TrainConfig{Epochs: 8, Seed: 1})
	legacy := FromModel(tg.Model, tg.Extract)
	if err := tg.CompileFor(TaskIngredient, DefaultFeatureOptions); err != nil {
		t.Fatalf("CompileFor: %v", err)
	}
	if !tg.Compiled() {
		t.Fatal("tagger not compiled after CompileFor")
	}
	return tg, legacy
}

// equivalencePhrases mix clean recipe text with dirty input: empty
// tokens, lone brackets, non-ASCII, invalid UTF-8, multiword
// gazetteer hits, and inflected forms.
var equivalencePhrases = [][]string{
	{"2", "cups", "chopped", "flour"},
	{"1/2", "teaspoon", "fresh", "pepper"},
	{"1", "(", "8", "ounce", ")", "can", "tomato"},
	{"2", "tablespoons", "olive", "oil"},
	{"tomatoes"},
	{"", "cups", ""},
	{"½", "cup", "half-and-half"},
	{"1", "POUND", "Chicken", "Breasts"},
	{"\xff\xfe", "cups", "x\x00y"},
	{"(", "(", ")", "]", "[", "sugar", ")"},
	{"one", "dozen", "eggs", ",", "beaten"},
	{"3", "cups", "milk", "warmed", "slowly", "over", "low", "heat"},
}

func TestCompiledTaggerEquivalence(t *testing.T) {
	compiled, legacy := trainedPair(t)
	for _, toks := range equivalencePhrases {
		wantTags := legacy.PredictTags(toks)
		gotTags := compiled.PredictTags(toks)
		if strings.Join(gotTags, " ") != strings.Join(wantTags, " ") {
			t.Errorf("PredictTags(%q): got %v, want %v", toks, gotTags, wantTags)
		}
		wantSpans := legacy.Predict(toks)
		gotSpans := compiled.Predict(toks)
		if len(gotSpans) != len(wantSpans) {
			t.Fatalf("Predict(%q): got %v, want %v", toks, gotSpans, wantSpans)
		}
		for i := range wantSpans {
			if gotSpans[i] != wantSpans[i] {
				t.Errorf("Predict(%q)[%d]: got %v, want %v", toks, i, gotSpans[i], wantSpans[i])
			}
		}
	}
}

// TestCompiledTaggerRandomized fuzzes token sequences from a mixed
// clean/dirty vocabulary and checks tag-level equivalence.
func TestCompiledTaggerRandomized(t *testing.T) {
	compiled, legacy := trainedPair(t)
	vocab := []string{
		"1", "2", "1/2", "½", "cup", "cups", "teaspoon", "chopped",
		"fresh", "flour", "salt", "olive", "oil", "tomato", "tomatoes",
		"(", ")", "[", "]", ",", "", "Butter", "HALF-AND-HALF",
		"\xff", "sauté", "über", "egg", "whites", "dozen",
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(10)
		toks := make([]string, n)
		for i := range toks {
			toks[i] = vocab[rng.Intn(len(vocab))]
		}
		want := legacy.PredictTags(toks)
		got := compiled.PredictTags(toks)
		if strings.Join(got, " ") != strings.Join(want, " ") {
			t.Fatalf("trial %d: PredictTags(%q): got %v, want %v", trial, toks, got, want)
		}
	}
}

func TestCompiledInstructionTagger(t *testing.T) {
	mk := func(text string, spans ...Span) Sentence {
		return Sentence{Tokens: strings.Fields(text), Spans: spans}
	}
	corpus := []Sentence{
		mk("preheat the oven", Span{0, 1, Process}, Span{2, 3, Utensil}),
		mk("boil the milk", Span{0, 1, Process}, Span{2, 3, Ingredient}),
		mk("stir in the flour", Span{0, 1, Process}, Span{3, 4, Ingredient}),
		mk("heat oil in a frying pan", Span{0, 1, Process}, Span{1, 2, Ingredient}, Span{4, 6, Utensil}),
		mk("bake in the oven", Span{0, 1, Process}, Span{3, 4, Utensil}),
		mk("chop the onion", Span{0, 1, Process}, Span{2, 3, Ingredient}),
	}
	tg := Train(corpus, InstructionTypes, NewInstructionExtractor(DefaultFeatureOptions),
		TrainConfig{Epochs: 8, Seed: 3})
	legacy := FromModel(tg.Model, tg.Extract)
	if err := tg.CompileFor(TaskInstruction, DefaultFeatureOptions); err != nil {
		t.Fatalf("CompileFor: %v", err)
	}
	phrases := [][]string{
		{"preheat", "the", "oven"},
		{"boil", "milk", "in", "a", "frying", "pan"},
		{"the", "oven", "preheat"}, // imperative position moved
		{"stir", "(", "gently", ")", "in", "flour"},
	}
	for _, toks := range phrases {
		want := legacy.PredictTags(toks)
		got := tg.PredictTags(toks)
		if strings.Join(got, " ") != strings.Join(want, " ") {
			t.Errorf("PredictTags(%q): got %v, want %v", toks, got, want)
		}
	}
}

// TestCompileForRejectsWrongOpts pins the canary self-check: compiling
// with feature options that differ from training must fail loudly, not
// silently change predictions.
func TestCompileForRejectsWrongOpts(t *testing.T) {
	tg := Train(tinyCorpus(), IngredientTypes, NewIngredientExtractor(DefaultFeatureOptions),
		TrainConfig{Epochs: 2, Seed: 1})
	err := tg.CompileFor(TaskIngredient, FeatureOptions{Gazetteers: true, Lemmas: false})
	if err == nil {
		t.Fatal("CompileFor with mismatched Lemmas option succeeded, want canary error")
	}
	if tg.Compiled() {
		t.Fatal("failed CompileFor must leave the tagger on the legacy path")
	}
	err = tg.CompileFor(TaskIngredient, FeatureOptions{Gazetteers: false, Lemmas: true})
	if err == nil {
		t.Fatal("CompileFor with mismatched Gazetteers option succeeded, want canary error")
	}
}

func TestCompileForRequiresModelAndExtractor(t *testing.T) {
	if err := (&Tagger{}).CompileFor(TaskIngredient, DefaultFeatureOptions); err == nil {
		t.Error("CompileFor on empty tagger succeeded")
	}
	tg := &Tagger{Model: Train(tinyCorpus()[:3], IngredientTypes,
		NewIngredientExtractor(DefaultFeatureOptions), TrainConfig{Epochs: 1, Seed: 1}).Model}
	if err := tg.CompileFor(TaskIngredient, DefaultFeatureOptions); err == nil {
		t.Error("CompileFor without extractor succeeded")
	}
}

func BenchmarkPredictLegacy(b *testing.B) {
	tg := Train(tinyCorpus(), IngredientTypes, NewIngredientExtractor(DefaultFeatureOptions),
		TrainConfig{Epochs: 8, Seed: 1})
	toks := []string{"2", "cups", "chopped", "flour", "(", "sifted", ")"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tg.Predict(toks)
	}
}

func BenchmarkPredictCompiled(b *testing.B) {
	tg := Train(tinyCorpus(), IngredientTypes, NewIngredientExtractor(DefaultFeatureOptions),
		TrainConfig{Epochs: 8, Seed: 1})
	if err := tg.CompileFor(TaskIngredient, DefaultFeatureOptions); err != nil {
		b.Fatal(err)
	}
	toks := []string{"2", "cups", "chopped", "flour", "(", "sifted", ")"}
	spans := make([]Span, 0, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spans = tg.AppendPredict(spans[:0], toks)
	}
}
