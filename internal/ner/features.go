package ner

import (
	"strings"

	"recipemodel/internal/fraction"
	"recipemodel/internal/gazetteer"
	"recipemodel/internal/lemma"
)

// FeatureOptions toggles feature families, enabling the ablations
// DESIGN.md calls out.
type FeatureOptions struct {
	// Gazetteers enables dictionary-membership features.
	Gazetteers bool
	// Lemmas enables lemma features.
	Lemmas bool
}

// DefaultFeatureOptions is the full feature set.
var DefaultFeatureOptions = FeatureOptions{Gazetteers: true, Lemmas: true}

// sharedLex bundles the gazetteer lexicons consulted by the feature
// extractors; built once per extractor.
type sharedLex struct {
	ingredients *gazetteer.Lexicon
	units       *gazetteer.Lexicon
	states      *gazetteer.Lexicon
	sizes       *gazetteer.Lexicon
	temps       *gazetteer.Lexicon
	dryFresh    *gazetteer.Lexicon
	utensils    *gazetteer.Lexicon
	techniques  *gazetteer.Lexicon
	lem         *lemma.Lemmatizer
}

func newSharedLex() *sharedLex {
	return &sharedLex{
		ingredients: gazetteer.Ingredients(),
		units:       gazetteer.Units(),
		states:      gazetteer.States(),
		sizes:       gazetteer.Sizes(),
		temps:       gazetteer.Temperatures(),
		dryFresh:    gazetteer.DryFresh(),
		utensils:    gazetteer.Utensils(),
		techniques:  gazetteer.Techniques(),
		lem:         lemma.New(),
	}
}

// baseFeatures are the task-independent token features.
func baseFeatures(tokens []string, i int, lex *sharedLex, opts FeatureOptions) []string {
	w := tokens[i]
	lw := strings.ToLower(w)
	fs := make([]string, 0, 24)
	fs = append(fs,
		"bias",
		"w="+lw,
		"suf3="+suffix(lw, 3),
		"suf2="+suffix(lw, 2),
		"pre2="+prefix(lw, 2),
		"shape="+shape(w),
	)
	if opts.Lemmas {
		fs = append(fs, "lemma="+lex.lem.LemmaAuto(lw))
	}
	if fraction.Looks(lw) {
		fs = append(fs, "isnum")
	}
	if strings.HasSuffix(lw, "ed") || strings.HasSuffix(lw, "en") {
		fs = append(fs, "pastish")
	}
	if strings.Contains(lw, "-") {
		fs = append(fs, "hyphen")
	}
	switch {
	case i == 0:
		fs = append(fs, "first")
	case i == len(tokens)-1:
		fs = append(fs, "last")
	}
	// context windows
	if i > 0 {
		pw := strings.ToLower(tokens[i-1])
		fs = append(fs, "w-1="+pw)
		if fraction.Looks(pw) {
			fs = append(fs, "w-1isnum")
		}
	} else {
		fs = append(fs, "w-1=-BOS-")
	}
	if i > 1 {
		fs = append(fs, "w-2="+strings.ToLower(tokens[i-2]))
	}
	if i+1 < len(tokens) {
		nw := strings.ToLower(tokens[i+1])
		fs = append(fs, "w+1="+nw)
	} else {
		fs = append(fs, "w+1=-EOS-")
	}
	if i+2 < len(tokens) {
		fs = append(fs, "w+2="+strings.ToLower(tokens[i+2]))
	}
	// parenthesis depth: "(8 ounce)" style packaging subphrases.
	depth := 0
	for j := 0; j < i; j++ {
		switch tokens[j] {
		case "(", "[":
			depth++
		case ")", "]":
			depth--
		}
	}
	if depth > 0 {
		fs = append(fs, "inparen")
	}
	return fs
}

// gazetteerFeatures appends dictionary-membership features. Multiword
// membership is tested on the bigram and trigram around i so that
// "olive oil" lights up on both tokens.
func gazetteerFeatures(fs []string, tokens []string, i int, lex *sharedLex, instruction bool) []string {
	lw := strings.ToLower(tokens[i])
	lemma := lex.lem.LemmaAuto(lw)
	check := func(l *gazetteer.Lexicon, tag string) {
		if l.Contains(lw) || l.Contains(lemma) {
			fs = append(fs, "gaz="+tag)
		}
	}
	check(lex.ingredients, "ingr")
	check(lex.units, "unit")
	check(lex.states, "state")
	check(lex.sizes, "size")
	check(lex.temps, "temp")
	check(lex.dryFresh, "df")
	if instruction {
		check(lex.utensils, "utensil")
		check(lex.techniques, "tech")
	}
	// multiword ingredient membership around i.
	for span := 2; span <= 3; span++ {
		for start := i - span + 1; start <= i; start++ {
			if start < 0 || start+span > len(tokens) {
				continue
			}
			cand := strings.ToLower(strings.Join(tokens[start:start+span], " "))
			if lex.ingredients.Contains(cand) {
				fs = append(fs, "gazmw=ingr")
			}
			if instruction && lex.utensils.Contains(cand) {
				fs = append(fs, "gazmw=utensil")
			}
		}
	}
	return fs
}

// NewIngredientExtractor builds the feature extractor for
// ingredient-phrase tagging (Table II entities).
func NewIngredientExtractor(opts FeatureOptions) Extractor {
	lex := newSharedLex()
	return func(tokens []string, i int) []string {
		fs := baseFeatures(tokens, i, lex, opts)
		if opts.Gazetteers {
			fs = gazetteerFeatures(fs, tokens, i, lex, false)
		}
		return fs
	}
}

// NewInstructionExtractor builds the feature extractor for
// instruction-step tagging (process/utensil/ingredient entities).
func NewInstructionExtractor(opts FeatureOptions) Extractor {
	lex := newSharedLex()
	return func(tokens []string, i int) []string {
		fs := baseFeatures(tokens, i, lex, opts)
		if opts.Gazetteers {
			fs = gazetteerFeatures(fs, tokens, i, lex, true)
		}
		// imperative-position feature: instruction steps usually open
		// with the main technique verb.
		if i == 0 {
			fs = append(fs, "imperative")
		}
		return fs
	}
}

func suffix(w string, n int) string {
	if len(w) <= n {
		return w
	}
	return w[len(w)-n:]
}

func prefix(w string, n int) string {
	if len(w) <= n {
		return w
	}
	return w[:n]
}

func shape(w string) string {
	var b strings.Builder
	var last rune
	for _, r := range w {
		var c rune
		switch {
		case r >= 'A' && r <= 'Z':
			c = 'X'
		case r >= 'a' && r <= 'z':
			c = 'x'
		case r >= '0' && r <= '9':
			c = 'd'
		default:
			c = r
		}
		if c != last {
			b.WriteRune(c)
			last = c
		}
	}
	return b.String()
}
