// Package ner provides named-entity recognition over recipe text: the
// BIO tagging scheme, feature extractors for the ingredients section
// (7 entity types, Table II of the paper) and the instructions section
// (processes, utensils, ingredients, §III.A), and a trainable tagger
// wrapping the linear-chain CRF.
package ner

import (
	"sort"

	"recipemodel/internal/crf"
)

// Ingredient-section entity types (Table II).
const (
	Name     = "NAME"     // name of ingredient: salt, pepper
	State    = "STATE"    // processing state: ground, thawed
	Unit     = "UNIT"     // measuring unit: gram, cup
	Quantity = "QUANTITY" // quantity: 1, 1 1/2, 2-4
	Size     = "SIZE"     // portion size: small, large
	Temp     = "TEMP"     // temperature: hot, frozen
	DryFresh = "DF"       // dry/fresh state: dry, fresh
)

// Instruction-section entity types (§III.A).
const (
	Process    = "PROCESS" // cooking technique: boil, preheat
	Utensil    = "UTENSIL" // utensil: pan, oven
	Ingredient = "INGR"    // ingredient mention inside an instruction
)

// Outside is the non-entity label.
const Outside = "O"

// IngredientTypes is the entity inventory for the ingredients section.
var IngredientTypes = []string{Name, State, Unit, Quantity, Size, Temp, DryFresh}

// InstructionTypes is the entity inventory for the instructions
// section.
var InstructionTypes = []string{Process, Utensil, Ingredient}

// Span is a labeled token range [Start, End).
type Span struct {
	Start, End int
	Type       string
}

// Sentence is a labeled example: tokens plus gold entity spans.
type Sentence struct {
	Tokens []string
	Spans  []Span
}

// BIOLabels returns the label inventory for a set of entity types:
// O plus B-X/I-X per type, in deterministic order.
func BIOLabels(types []string) []string {
	out := []string{Outside}
	for _, t := range types {
		out = append(out, "B-"+t, "I-"+t)
	}
	return out
}

// SpansToBIO encodes entity spans as per-token BIO tags for a sentence
// of n tokens. Overlapping spans are resolved in favor of the earlier,
// longer span.
func SpansToBIO(n int, spans []Span) []string {
	tags := make([]string, n)
	for i := range tags {
		tags[i] = Outside
	}
	ordered := append([]Span(nil), spans...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Start != ordered[j].Start {
			return ordered[i].Start < ordered[j].Start
		}
		return ordered[i].End > ordered[j].End
	})
	for _, s := range ordered {
		if s.Start < 0 || s.End > n || s.Start >= s.End {
			continue
		}
		free := true
		for i := s.Start; i < s.End; i++ {
			if tags[i] != Outside {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		tags[s.Start] = "B-" + s.Type
		for i := s.Start + 1; i < s.End; i++ {
			tags[i] = "I-" + s.Type
		}
	}
	return tags
}

// BIOToSpans decodes BIO tags back into spans. Malformed I-X openings
// (an I without a preceding B of the same type) are treated as B-X,
// the conventional repair.
func BIOToSpans(tags []string) []Span {
	var spans []Span
	var cur *Span
	flush := func(end int) {
		if cur != nil {
			cur.End = end
			spans = append(spans, *cur)
			cur = nil
		}
	}
	for i, tag := range tags {
		switch {
		case tag == Outside || tag == "":
			flush(i)
		case len(tag) > 2 && tag[:2] == "B-":
			flush(i)
			cur = &Span{Start: i, Type: tag[2:]}
		case len(tag) > 2 && tag[:2] == "I-":
			typ := tag[2:]
			if cur == nil || cur.Type != typ {
				flush(i)
				cur = &Span{Start: i, Type: typ}
			}
		default:
			flush(i)
		}
	}
	flush(len(tags))
	return spans
}

// Extractor computes the feature strings for position i of tokens.
type Extractor func(tokens []string, i int) []string

// Tagger couples a trained CRF with its feature extractor and label
// scheme. CompileFor installs a compiled fast path (see compiled.go)
// that Predict/PredictTags route through when present; the two paths
// produce byte-identical output.
type Tagger struct {
	Model    *crf.Model
	Extract  Extractor
	labels   []string
	compiled *compiled
}

// TrainConfig re-exports the CRF training knobs.
type TrainConfig = crf.TrainConfig

// Train fits a tagger for the given entity types on labeled sentences.
func Train(sents []Sentence, types []string, extract Extractor, cfg TrainConfig) *Tagger {
	labels := BIOLabels(types)
	model := crf.New(labels)
	data := make([]crf.Sequence, 0, len(sents))
	for _, s := range sents {
		if len(s.Tokens) == 0 {
			continue
		}
		bio := SpansToBIO(len(s.Tokens), s.Spans)
		seq := crf.Sequence{
			Features: extractAll(extract, s.Tokens),
			Labels:   make([]int, len(s.Tokens)),
		}
		for i, tag := range bio {
			seq.Labels[i] = model.LabelID(tag)
		}
		data = append(data, seq)
	}
	model.Train(data, cfg)
	return &Tagger{Model: model, Extract: extract, labels: labels}
}

func extractAll(extract Extractor, tokens []string) [][]string {
	out := make([][]string, len(tokens))
	for i := range tokens {
		out[i] = extract(tokens, i)
	}
	return out
}

// FromModel wraps an existing CRF and extractor as a tagger (used
// when loading persisted models).
func FromModel(model *crf.Model, extract Extractor) *Tagger {
	return &Tagger{Model: model, Extract: extract, labels: model.Labels}
}

// PredictTags returns the BIO tag per token.
func (t *Tagger) PredictTags(tokens []string) []string {
	if len(tokens) == 0 {
		return nil
	}
	if t.compiled != nil {
		return t.compiled.predictTags(tokens)
	}
	return t.Model.DecodeLabels(extractAll(t.Extract, tokens))
}

// Predict returns the entity spans for the tokens.
func (t *Tagger) Predict(tokens []string) []Span {
	if t.compiled != nil {
		return t.compiled.appendPredict(nil, tokens)
	}
	return BIOToSpans(t.PredictTags(tokens))
}

// AppendPredict appends the predicted entity spans to spans and
// returns the extended slice. On a compiled tagger this is the
// zero-allocation form of Predict (no heap allocation once spans has
// capacity); otherwise it falls back to the legacy path.
func (t *Tagger) AppendPredict(spans []Span, tokens []string) []Span {
	if t.compiled != nil {
		return t.compiled.appendPredict(spans, tokens)
	}
	return append(spans, BIOToSpans(t.PredictTags(tokens))...)
}

// Labels returns the tagger's BIO label inventory.
func (t *Tagger) Labels() []string { return t.labels }
