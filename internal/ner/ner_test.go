package ner

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestBIOLabels(t *testing.T) {
	got := BIOLabels([]string{"NAME", "UNIT"})
	want := []string{"O", "B-NAME", "I-NAME", "B-UNIT", "I-UNIT"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestSpansToBIO(t *testing.T) {
	tags := SpansToBIO(6, []Span{
		{Start: 0, End: 1, Type: Quantity},
		{Start: 1, End: 2, Type: Unit},
		{Start: 3, End: 5, Type: Name},
	})
	want := []string{"B-QUANTITY", "B-UNIT", "O", "B-NAME", "I-NAME", "O"}
	if !reflect.DeepEqual(tags, want) {
		t.Fatalf("got %v want %v", tags, want)
	}
}

func TestSpansToBIOOverlap(t *testing.T) {
	tags := SpansToBIO(4, []Span{
		{Start: 0, End: 3, Type: Name},
		{Start: 1, End: 2, Type: Unit}, // overlaps, must lose
	})
	want := []string{"B-NAME", "I-NAME", "I-NAME", "O"}
	if !reflect.DeepEqual(tags, want) {
		t.Fatalf("got %v want %v", tags, want)
	}
}

func TestSpansToBIOOutOfRange(t *testing.T) {
	tags := SpansToBIO(2, []Span{
		{Start: -1, End: 1, Type: Name},
		{Start: 1, End: 5, Type: Unit},
		{Start: 1, End: 1, Type: Size},
	})
	want := []string{"O", "O"}
	if !reflect.DeepEqual(tags, want) {
		t.Fatalf("got %v want %v", tags, want)
	}
}

func TestBIOToSpans(t *testing.T) {
	spans := BIOToSpans([]string{"B-QUANTITY", "B-UNIT", "O", "B-NAME", "I-NAME", "O"})
	want := []Span{
		{Start: 0, End: 1, Type: Quantity},
		{Start: 1, End: 2, Type: Unit},
		{Start: 3, End: 5, Type: Name},
	}
	if !reflect.DeepEqual(spans, want) {
		t.Fatalf("got %v want %v", spans, want)
	}
}

func TestBIOToSpansMalformed(t *testing.T) {
	// orphan I- opens a new span; type change inside I- splits.
	spans := BIOToSpans([]string{"I-NAME", "I-UNIT", "I-UNIT"})
	want := []Span{
		{Start: 0, End: 1, Type: Name},
		{Start: 1, End: 3, Type: Unit},
	}
	if !reflect.DeepEqual(spans, want) {
		t.Fatalf("got %v want %v", spans, want)
	}
}

func TestBIOToSpansTrailingEntity(t *testing.T) {
	spans := BIOToSpans([]string{"O", "B-NAME", "I-NAME"})
	want := []Span{{Start: 1, End: 3, Type: Name}}
	if !reflect.DeepEqual(spans, want) {
		t.Fatalf("got %v want %v", spans, want)
	}
}

// Property: SpansToBIO → BIOToSpans round-trips for any set of
// non-overlapping in-range spans.
func TestBIORoundTripProperty(t *testing.T) {
	types := []string{Name, Unit, Quantity}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		var spans []Span
		pos := 0
		for pos < n {
			if rng.Float64() < 0.4 {
				length := 1 + rng.Intn(3)
				if pos+length > n {
					length = n - pos
				}
				spans = append(spans, Span{Start: pos, End: pos + length, Type: types[rng.Intn(len(types))]})
				pos += length
			} else {
				pos++
			}
		}
		got := BIOToSpans(SpansToBIO(n, spans))
		if len(got) != len(spans) {
			return false
		}
		for i := range got {
			if got[i] != spans[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// tinyCorpus builds a small deterministic labeled corpus of ingredient
// phrases for end-to-end tagger tests.
func tinyCorpus() []Sentence {
	mk := func(text string, spans ...Span) Sentence {
		return Sentence{Tokens: strings.Fields(text), Spans: spans}
	}
	var out []Sentence
	patterns := []struct {
		qty, unit, name string
	}{
		{"1", "cup", "sugar"}, {"2", "cups", "flour"},
		{"3", "teaspoons", "salt"}, {"1/2", "teaspoon", "pepper"},
		{"2", "tablespoons", "butter"}, {"1", "pound", "chicken"},
		{"4", "ounces", "cheese"}, {"1", "pinch", "nutmeg"},
		{"2", "cloves", "garlic"}, {"1", "can", "tomato"},
		{"3", "cups", "milk"}, {"1", "cup", "rice"},
		{"2", "sprigs", "thyme"}, {"1", "stalk", "celery"},
		{"5", "ounces", "spinach"}, {"1", "head", "lettuce"},
	}
	for _, p := range patterns {
		out = append(out, mk(p.qty+" "+p.unit+" "+p.name,
			Span{0, 1, Quantity}, Span{1, 2, Unit}, Span{2, 3, Name}))
		out = append(out, mk(p.qty+" "+p.unit+" chopped "+p.name,
			Span{0, 1, Quantity}, Span{1, 2, Unit}, Span{2, 3, State}, Span{3, 4, Name}))
		out = append(out, mk(p.qty+" "+p.unit+" fresh "+p.name,
			Span{0, 1, Quantity}, Span{1, 2, Unit}, Span{2, 3, DryFresh}, Span{3, 4, Name}))
	}
	return out
}

func TestTaggerLearnsTinyCorpus(t *testing.T) {
	corpus := tinyCorpus()
	tg := Train(corpus, IngredientTypes, NewIngredientExtractor(DefaultFeatureOptions),
		TrainConfig{Epochs: 8, Seed: 1})

	// in-sample shape
	spans := tg.Predict(strings.Fields("2 cups chopped flour"))
	want := []Span{{0, 1, Quantity}, {1, 2, Unit}, {2, 3, State}, {3, 4, Name}}
	if !reflect.DeepEqual(spans, want) {
		t.Fatalf("got %v want %v", spans, want)
	}

	// generalization to an unseen combination
	spans = tg.Predict(strings.Fields("7 cups fresh basil"))
	if len(spans) != 4 || spans[0].Type != Quantity || spans[3].Type != Name {
		t.Fatalf("unseen combination: %v", spans)
	}
}

func TestTaggerEmptyInput(t *testing.T) {
	tg := Train(tinyCorpus(), IngredientTypes, NewIngredientExtractor(DefaultFeatureOptions),
		TrainConfig{Epochs: 2, Seed: 1})
	if got := tg.Predict(nil); got != nil {
		t.Fatalf("Predict(nil) = %v", got)
	}
	if got := tg.PredictTags(nil); got != nil {
		t.Fatalf("PredictTags(nil) = %v", got)
	}
}

func TestTrainSkipsEmptySentences(t *testing.T) {
	corpus := append(tinyCorpus(), Sentence{})
	tg := Train(corpus, IngredientTypes, NewIngredientExtractor(DefaultFeatureOptions),
		TrainConfig{Epochs: 2, Seed: 1})
	if tg == nil {
		t.Fatal("nil tagger")
	}
}

func TestInstructionExtractorFeatures(t *testing.T) {
	ex := NewInstructionExtractor(DefaultFeatureOptions)
	fs := ex(strings.Fields("boil the water in a pot"), 0)
	joined := strings.Join(fs, " ")
	if !strings.Contains(joined, "imperative") {
		t.Error("missing imperative feature at position 0")
	}
	if !strings.Contains(joined, "gaz=tech") {
		t.Error("missing technique gazetteer feature for 'boil'")
	}
	fs = ex(strings.Fields("boil the water in a pot"), 5)
	if !strings.Contains(strings.Join(fs, " "), "gaz=utensil") {
		t.Error("missing utensil gazetteer feature for 'pot'")
	}
}

func TestIngredientExtractorGazetteerToggle(t *testing.T) {
	on := NewIngredientExtractor(FeatureOptions{Gazetteers: true, Lemmas: true})
	off := NewIngredientExtractor(FeatureOptions{Gazetteers: false, Lemmas: true})
	tokens := strings.Fields("1 cup sugar")
	fsOn := strings.Join(on(tokens, 2), " ")
	fsOff := strings.Join(off(tokens, 2), " ")
	if !strings.Contains(fsOn, "gaz=ingr") {
		t.Error("gazetteer features missing when enabled")
	}
	if strings.Contains(fsOff, "gaz=") {
		t.Error("gazetteer features present when disabled")
	}
}

func TestMultiwordGazetteerFeature(t *testing.T) {
	ex := NewIngredientExtractor(DefaultFeatureOptions)
	tokens := strings.Fields("2 tablespoons olive oil")
	for _, i := range []int{2, 3} {
		if !strings.Contains(strings.Join(ex(tokens, i), " "), "gazmw=ingr") {
			t.Errorf("token %d of 'olive oil' missing multiword feature", i)
		}
	}
}

func TestParenthesisFeature(t *testing.T) {
	ex := NewIngredientExtractor(DefaultFeatureOptions)
	tokens := strings.Fields("1 ( 8 ounce ) package cream cheese")
	if !strings.Contains(strings.Join(ex(tokens, 2), " "), "inparen") {
		t.Error("token inside parens should have inparen")
	}
	if strings.Contains(strings.Join(ex(tokens, 5), " "), "inparen") {
		t.Error("token after parens should not have inparen")
	}
}

func TestNumericFeature(t *testing.T) {
	ex := NewIngredientExtractor(DefaultFeatureOptions)
	if !strings.Contains(strings.Join(ex([]string{"1 1/2", "cups"}, 0), " "), "isnum") {
		t.Error("mixed number should be isnum")
	}
}
