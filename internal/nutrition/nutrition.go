// Package nutrition estimates the nutritional profile of a modeled
// recipe — the application the paper highlights in §IV and implements
// in its companion work [13]. The mined ingredient records (name,
// quantity, unit) resolve against an embedded per-100g nutrient table
// standing in for the USDA SR Legacy database.
package nutrition

import (
	"fmt"
	"strings"

	"recipemodel/internal/core"
	"recipemodel/internal/fraction"
	"recipemodel/internal/lemma"
)

// Profile is a nutrient total for a recipe or ingredient amount.
type Profile struct {
	Calories float64 // kcal
	Protein  float64 // g
	Fat      float64 // g
	Carbs    float64 // g
}

// Add accumulates o into p.
func (p *Profile) Add(o Profile) {
	p.Calories += o.Calories
	p.Protein += o.Protein
	p.Fat += o.Fat
	p.Carbs += o.Carbs
}

// Scale returns p scaled by f.
func (p Profile) Scale(f float64) Profile {
	return Profile{p.Calories * f, p.Protein * f, p.Fat * f, p.Carbs * f}
}

// String renders "312 kcal, 12.0g protein, 8.2g fat, 44.1g carbs".
func (p Profile) String() string {
	return fmt.Sprintf("%.0f kcal, %.1fg protein, %.1fg fat, %.1fg carbs",
		p.Calories, p.Protein, p.Fat, p.Carbs)
}

// gramsPerUnit converts recipe units to grams (approximate culinary
// conversions; densities folded into a water-like default).
var gramsPerUnit = map[string]float64{
	"cup": 240, "teaspoon": 5, "tablespoon": 15, "ounce": 28.35,
	"pound": 453.6, "gram": 1, "kilogram": 1000, "liter": 1000,
	"milliliter": 1, "pint": 473, "quart": 946, "gallon": 3785,
	"tsp": 5, "tbsp": 15, "oz": 28.35, "lb": 453.6, "g": 1, "kg": 1000,
	"ml": 1, "pinch": 0.4, "dash": 0.6, "stick": 113, "can": 400,
	"package": 227, "packet": 10, "jar": 350, "bottle": 500,
	"clove": 3, "sprig": 2, "stalk": 40, "head": 500, "bunch": 100,
	"slice": 25, "sheet": 250, "piece": 50, "wedge": 40, "splash": 5,
	"handful": 30, "sliver": 5, "strip": 10, "cube": 10, "block": 200,
	"loaf": 500, "scoop": 60, "dollop": 20, "drop": 0.05, "jigger": 44,
	"envelope": 7, "box": 400, "bag": 300, "carton": 500, "container": 400,
	"inch": 15, "batch": 500,
}

// defaultPieceGrams is the weight assumed for unit-less counts
// ("2 tomatoes").
const defaultPieceGrams = 100

// Estimator resolves ingredient records to nutrient profiles.
type Estimator struct {
	table map[string]Profile // per 100 g
	lem   *lemma.Lemmatizer
}

// NewEstimator loads the embedded nutrient table.
func NewEstimator() *Estimator {
	return &Estimator{table: nutrientTable, lem: lemma.New()}
}

// Lookup finds the per-100g profile for an ingredient name, trying the
// full name, its lemma, and its head word.
func (e *Estimator) Lookup(name string) (Profile, bool) {
	n := strings.ToLower(strings.TrimSpace(name))
	if p, ok := e.table[n]; ok {
		return p, true
	}
	// lemmatized head word fallback: "cherry tomatoes" → "tomato".
	ws := strings.Fields(n)
	if len(ws) > 0 {
		head := e.lem.Lemma(ws[len(ws)-1], lemma.Noun)
		if p, ok := e.table[head]; ok {
			return p, true
		}
		if len(ws) > 1 {
			tail := strings.Join(ws[len(ws)-2:], " ")
			if p, ok := e.table[tail]; ok {
				return p, true
			}
		}
	}
	return Profile{}, false
}

// Grams estimates the gram weight of an ingredient record from its
// quantity and unit; ranges use their midpoint.
func (e *Estimator) Grams(rec core.IngredientRecord) float64 {
	qty := 1.0
	if rec.Quantity != "" {
		// multiple quantities ("1 (8 ounce) package") concatenate with a
		// space and the parser reads that as a mixed number; take the
		// first field instead.
		first := strings.Fields(rec.Quantity)
		probe := rec.Quantity
		if q, err := fraction.Parse(probe); err == nil {
			qty = q.Mid()
		} else if len(first) > 0 {
			if q, err := fraction.Parse(first[0]); err == nil {
				qty = q.Mid()
			}
		}
	}
	unit := strings.ToLower(rec.Unit)
	// plural units: strip the trailing s.
	if _, ok := gramsPerUnit[unit]; !ok {
		unit = strings.TrimSuffix(unit, "es")
		if _, ok := gramsPerUnit[unit]; !ok {
			unit = strings.TrimSuffix(strings.ToLower(rec.Unit), "s")
		}
	}
	if g, ok := gramsPerUnit[unit]; ok {
		return qty * g
	}
	return qty * defaultPieceGrams
}

// EstimateRecord computes the profile for one ingredient record; ok is
// false when the name is not in the table (the record contributes
// nothing, mirroring how unresolvable ingredients are skipped in the
// paper's nutrition application).
func (e *Estimator) EstimateRecord(rec core.IngredientRecord) (Profile, bool) {
	per100, ok := e.Lookup(rec.Name)
	if !ok {
		return Profile{}, false
	}
	return per100.Scale(e.Grams(rec) / 100), true
}

// EstimateRecipe totals the profile over a modeled recipe and reports
// how many ingredients resolved against the table.
func (e *Estimator) EstimateRecipe(m *core.RecipeModel) (total Profile, resolved int) {
	for _, rec := range m.Ingredients {
		if p, ok := e.EstimateRecord(rec); ok {
			total.Add(p)
			resolved++
		}
	}
	return total, resolved
}

// RecipeProfile is one precomputed recipe estimate: the nutrient
// totals plus how many of the recipe's ingredients resolved against
// the table (the coverage signal the paper's nutrition application
// reports alongside every profile).
type RecipeProfile struct {
	Profile     Profile `json:"profile"`
	Ingredients int     `json:"ingredients"`
	Resolved    int     `json:"resolved"`
}

// EstimateAll precomputes the profile of every model, in order — the
// shard-build form: a corpus snapshot's nutrition state is computed
// once at load, so serving a profile is an array lookup instead of a
// per-request table walk.
func (e *Estimator) EstimateAll(models []*core.RecipeModel) []RecipeProfile {
	out := make([]RecipeProfile, len(models))
	for i, m := range models {
		total, resolved := e.EstimateRecipe(m)
		out[i] = RecipeProfile{Profile: total, Ingredients: len(m.Ingredients), Resolved: resolved}
	}
	return out
}
