package nutrition

import (
	"math"
	"strings"
	"testing"

	"recipemodel/internal/core"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestLookupDirect(t *testing.T) {
	e := NewEstimator()
	p, ok := e.Lookup("butter")
	if !ok || p.Calories != 717 {
		t.Fatalf("butter: %+v %v", p, ok)
	}
}

func TestLookupLemmatizedHead(t *testing.T) {
	e := NewEstimator()
	if _, ok := e.Lookup("tomatoes"); !ok {
		t.Fatal("plural lookup failed")
	}
	if _, ok := e.Lookup("cherry tomatoes"); !ok {
		t.Fatal("head-word lookup failed")
	}
	if _, ok := e.Lookup("zzgarbage"); ok {
		t.Fatal("unknown ingredient resolved")
	}
}

func TestGramsUnits(t *testing.T) {
	e := NewEstimator()
	cases := []struct {
		rec   core.IngredientRecord
		grams float64
	}{
		{core.IngredientRecord{Quantity: "2", Unit: "cups"}, 480},
		{core.IngredientRecord{Quantity: "1/2", Unit: "teaspoon"}, 2.5},
		{core.IngredientRecord{Quantity: "1 1/2", Unit: "tablespoons"}, 22.5},
		{core.IngredientRecord{Quantity: "2-4", Unit: "ounces"}, 3 * 28.35},
		{core.IngredientRecord{Quantity: "3", Unit: ""}, 300}, // unit-less pieces
		{core.IngredientRecord{Quantity: "", Unit: "cup"}, 240},
		{core.IngredientRecord{Quantity: "2", Unit: "tbsp"}, 30},
	}
	for _, c := range cases {
		if got := e.Grams(c.rec); !almost(got, c.grams, 0.01) {
			t.Errorf("Grams(%+v) = %v, want %v", c.rec, got, c.grams)
		}
	}
}

func TestEstimateRecord(t *testing.T) {
	e := NewEstimator()
	// 100 g of sugar = 387 kcal.
	p, ok := e.EstimateRecord(core.IngredientRecord{Name: "sugar", Quantity: "100", Unit: "grams"})
	if !ok || !almost(p.Calories, 387, 0.1) {
		t.Fatalf("sugar: %+v %v", p, ok)
	}
	if _, ok := e.EstimateRecord(core.IngredientRecord{Name: "mystery"}); ok {
		t.Fatal("unknown ingredient should not resolve")
	}
}

func TestEstimateRecipe(t *testing.T) {
	e := NewEstimator()
	m := &core.RecipeModel{Ingredients: []core.IngredientRecord{
		{Name: "sugar", Quantity: "100", Unit: "grams"},
		{Name: "butter", Quantity: "100", Unit: "grams"},
		{Name: "unknownium", Quantity: "1", Unit: "cup"},
	}}
	total, resolved := e.EstimateRecipe(m)
	if resolved != 2 {
		t.Fatalf("resolved = %d", resolved)
	}
	if !almost(total.Calories, 387+717, 0.1) {
		t.Fatalf("total = %+v", total)
	}
}

func TestProfileOps(t *testing.T) {
	p := Profile{100, 10, 5, 20}
	p.Add(Profile{50, 5, 2.5, 10})
	if p.Calories != 150 || p.Protein != 15 {
		t.Fatalf("Add: %+v", p)
	}
	s := p.Scale(2)
	if s.Calories != 300 || p.Calories != 150 {
		t.Fatalf("Scale aliasing: %+v %+v", s, p)
	}
	if !strings.Contains(p.String(), "kcal") {
		t.Fatal("String")
	}
}

func TestTableSanity(t *testing.T) {
	for name, p := range nutrientTable {
		if p.Calories < 0 || p.Protein < 0 || p.Fat < 0 || p.Carbs < 0 {
			t.Errorf("%s has negative values", name)
		}
		// Atwater check: kcal should be in the ballpark of 4P+9F+4C.
		// Alcohol-bearing entries (7 kcal/g ethanol) are exempt.
		if name == "wine" || name == "vanilla" {
			continue
		}
		atwater := 4*p.Protein + 9*p.Fat + 4*p.Carbs
		if p.Calories > 50 && (p.Calories > atwater*1.6+60 || p.Calories < atwater*0.4-60) {
			t.Errorf("%s calories %v far from Atwater %v", name, p.Calories, atwater)
		}
	}
	if len(nutrientTable) < 120 {
		t.Fatalf("table too small: %d", len(nutrientTable))
	}
}

func TestEstimateAll(t *testing.T) {
	e := NewEstimator()
	models := []*core.RecipeModel{
		{Ingredients: []core.IngredientRecord{
			{Name: "sugar", Quantity: "100", Unit: "grams"},
			{Name: "unknownium", Quantity: "1", Unit: "cup"},
		}},
		{Ingredients: []core.IngredientRecord{
			{Name: "butter", Quantity: "100", Unit: "grams"},
		}},
		{},
	}
	profiles := e.EstimateAll(models)
	if len(profiles) != len(models) {
		t.Fatalf("got %d profiles for %d models", len(profiles), len(models))
	}
	// Each entry must agree with a direct EstimateRecipe of its model.
	for i, m := range models {
		total, resolved := e.EstimateRecipe(m)
		p := profiles[i]
		if p.Profile != total || p.Resolved != resolved || p.Ingredients != len(m.Ingredients) {
			t.Fatalf("model %d: %+v, want profile %+v resolved %d ingredients %d",
				i, p, total, resolved, len(m.Ingredients))
		}
	}
	if profiles[0].Resolved != 1 || profiles[0].Ingredients != 2 {
		t.Fatalf("partial resolution: %+v", profiles[0])
	}
	if profiles[2].Ingredients != 0 || profiles[2].Profile.Calories != 0 {
		t.Fatalf("empty model: %+v", profiles[2])
	}
}
