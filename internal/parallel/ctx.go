// Context-aware variants of the pool primitives. They preserve the
// package invariant — an uncancelled run is byte-identical to the
// plain variant at any worker count — and add one guarantee on top:
// once ctx is cancelled no new item is dispatched, every in-flight
// item finishes, all workers exit before the call returns, and the
// caller gets ctx.Err(). Cancellation can therefore never leak a
// goroutine or leave one writing into the result slice after return.

package parallel

import (
	"context"
	"sync"
)

// MapOrderedCtx is MapOrdered with cooperative cancellation: fn is
// applied to items in index order across the pool, result i landing in
// slot i. When ctx is cancelled, dispatch stops, in-flight calls run
// to completion, and the partial results are returned together with
// ctx.Err() — slots whose items were never dispatched hold zero
// values. A nil error means every item was processed.
func MapOrderedCtx[T, R any](ctx context.Context, workers int, items []T, fn func(i int, item T) R) ([]R, error) {
	out := make([]R, len(items))
	workers = Workers(workers)
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i, it := range items {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			out[i] = fn(i, it)
		}
		return out, ctx.Err()
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	done := ctx.Done()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(out) {
					return
				}
				out[i] = fn(i, items[i])
			}
		}()
	}
	wg.Wait()
	return out, ctx.Err()
}

// ForEachRangeCtx runs fn once per range on the pool, stopping
// dispatch of further ranges when ctx is cancelled. Ranges already
// started run to completion; the error is ctx.Err() (nil when all
// ranges ran).
func ForEachRangeCtx(ctx context.Context, workers int, ranges []Range, fn func(chunk int, r Range)) error {
	_, err := MapOrderedCtx(ctx, workers, ranges, func(i int, r Range) struct{} {
		fn(i, r)
		return struct{}{}
	})
	return err
}

// ForEachIndexCtx partitions [0, n) across the pool and calls fn for
// every index, checking ctx between indices so even a single large
// chunk stops promptly. Indices are each visited at most once; on
// cancellation some tail of each chunk is skipped and ctx.Err() is
// returned.
func ForEachIndexCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	done := ctx.Done()
	return ForEachRangeCtx(ctx, workers, Chunks(n, Workers(workers)), func(_ int, r Range) {
		for i := r.Lo; i < r.Hi; i++ {
			select {
			case <-done:
				return
			default:
			}
			fn(i)
		}
	})
}
