package parallel

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrderedCtxMatchesUncancelled: with a background context the
// ctx variant must be byte-identical to MapOrdered at any worker
// count.
func TestMapOrderedCtxMatchesUncancelled(t *testing.T) {
	items := make([]int, 137)
	for i := range items {
		items[i] = i * 7
	}
	fn := func(i, v int) int { return v*v - i }
	want := MapOrdered(1, items, fn)
	for _, w := range []int{1, 2, 8, 0} {
		got, err := MapOrderedCtx(context.Background(), w, items, fn)
		if err != nil {
			t.Fatalf("workers=%d: err = %v", w, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: ctx variant diverges from MapOrdered", w)
		}
	}
}

// TestMapOrderedCtxCancelStopsDispatch: cancelling mid-run must stop
// new dispatch, finish in-flight items, and report ctx.Err() — each
// index still computed at most once.
func TestMapOrderedCtxCancelStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 1000
	var hits [n]int32
	var calls atomic.Int32
	items := make([]int, n)
	out, err := MapOrderedCtx(ctx, 4, items, func(i, _ int) int {
		atomic.AddInt32(&hits[i], 1)
		if calls.Add(1) == 10 {
			cancel()
		}
		return i + 1
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	done := int(calls.Load())
	if done >= n {
		t.Fatal("cancellation did not stop dispatch")
	}
	for i, h := range hits {
		if h > 1 {
			t.Fatalf("index %d computed %d times", i, h)
		}
	}
	// every computed slot holds its result; never a torn write.
	computed := 0
	for i, v := range out {
		if v != 0 {
			computed++
			if v != i+1 {
				t.Fatalf("slot %d = %d, want %d", i, v, i+1)
			}
		}
	}
	if computed != done {
		t.Fatalf("computed slots = %d, calls = %d", computed, done)
	}
}

// TestMapOrderedCtxKillResumePrefix is the resume contract the
// checkpointed miner builds on: a run killed mid-flight leaves a
// CONTIGUOUS prefix of completed slots (dispatch is ordered and
// in-flight items finish), and re-running the unprocessed tail
// serially splices into output identical to an uninterrupted serial
// run. If cancellation could ever leave a hole mid-slice, -resume
// would silently drop records.
func TestMapOrderedCtxKillResumePrefix(t *testing.T) {
	const n = 500
	items := make([]int, n)
	for i := range items {
		items[i] = i * 13
	}
	fn := func(i, v int) int { return v*v + i + 1 } // never 0: zero marks "not dispatched"
	want := MapOrdered(1, items, fn)

	for _, killAt := range []int32{1, 7, 63} {
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int32
		out, err := MapOrderedCtx(ctx, 4, items, func(i, v int) int {
			if calls.Add(1) == killAt {
				cancel()
			}
			return fn(i, v)
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("kill@%d: err = %v, want context.Canceled", killAt, err)
		}
		// the completed slots must be a contiguous, correct prefix.
		prefix := 0
		for prefix < n && out[prefix] != 0 {
			prefix++
		}
		if prefix == 0 || prefix >= n {
			t.Fatalf("kill@%d: prefix = %d of %d", killAt, prefix, n)
		}
		for i := prefix; i < n; i++ {
			if out[i] != 0 {
				t.Fatalf("kill@%d: hole before slot %d — completed slots are not a prefix", killAt, i)
			}
		}
		if !reflect.DeepEqual(out[:prefix], want[:prefix]) {
			t.Fatalf("kill@%d: killed prefix differs from serial prefix", killAt)
		}
		// resume: serially process the tail and splice.
		tail := MapOrdered(1, items[prefix:], func(i, v int) int { return fn(i+prefix, v) })
		resumed := append(append([]int{}, out[:prefix]...), tail...)
		if !reflect.DeepEqual(resumed, want) {
			t.Fatalf("kill@%d: resumed output differs from uninterrupted run", killAt)
		}
	}
}

// TestMapOrderedCtxPreCancelled: an already-dead context must not run
// fn at all (serial and pooled paths).
func TestMapOrderedCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 4} {
		var calls atomic.Int32
		_, err := MapOrderedCtx(ctx, w, make([]int, 50), func(i, _ int) int {
			calls.Add(1)
			return i
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v", w, err)
		}
		if c := calls.Load(); c > int32(w) {
			t.Fatalf("workers=%d: %d items dispatched after pre-cancel", w, c)
		}
	}
}

// TestMapOrderedCtxNoGoroutineLeak: before/after goroutine accounting
// across many cancelled runs.
func TestMapOrderedCtxNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 20; round++ {
		ctx, cancel := context.WithCancel(context.Background())
		var calls atomic.Int32
		_, _ = MapOrderedCtx(ctx, 8, make([]int, 200), func(i, _ int) int {
			if calls.Add(1) == 5 {
				cancel()
			}
			return i
		})
		cancel()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
	}
}

func TestForEachIndexCtxCoversAllUncancelled(t *testing.T) {
	var hits [311]int32
	if err := ForEachIndexCtx(context.Background(), 8, len(hits), func(i int) {
		atomic.AddInt32(&hits[i], 1)
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

// TestForEachIndexCtxCancelSkipsTail: cancellation inside a chunk must
// stop the remaining indices of that chunk (the per-index check), not
// just future chunks.
func TestForEachIndexCtxCancelSkipsTail(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 10_000
	var calls atomic.Int32
	err := ForEachIndexCtx(ctx, 2, n, func(i int) {
		if calls.Add(1) == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if c := calls.Load(); int(c) >= n {
		t.Fatalf("all %d indices ran despite cancellation", c)
	}
}

func TestForEachRangeCtxUncancelled(t *testing.T) {
	var total atomic.Int32
	if err := ForEachRangeCtx(context.Background(), 4, Chunks(100, 8), func(_ int, r Range) {
		total.Add(int32(r.Hi - r.Lo))
	}); err != nil {
		t.Fatal(err)
	}
	if total.Load() != 100 {
		t.Fatalf("ranges covered %d indices", total.Load())
	}
}

// TestForEachRangeCtxKillResumePrefix: the chunked-write resume
// contract. A killed run leaves fully-completed chunks as a contiguous
// prefix of the range list (ordered dispatch + in-flight chunks
// finish), so a resumer can re-run ranges[prefix:] and every index
// ends up processed exactly once.
func TestForEachRangeCtxKillResumePrefix(t *testing.T) {
	ranges := Chunks(400, 16)
	for _, killAt := range []int32{1, 5, 11} {
		ctx, cancel := context.WithCancel(context.Background())
		visits := make([]int32, 400)
		completed := make([]int32, len(ranges))
		var calls atomic.Int32
		err := ForEachRangeCtx(ctx, 4, ranges, func(chunk int, r Range) {
			for i := r.Lo; i < r.Hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
			atomic.StoreInt32(&completed[chunk], 1)
			if calls.Add(1) == killAt {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("kill@%d: err = %v, want context.Canceled", killAt, err)
		}
		prefix := 0
		for prefix < len(ranges) && completed[prefix] == 1 {
			prefix++
		}
		if prefix == 0 || prefix >= len(ranges) {
			t.Fatalf("kill@%d: prefix = %d of %d chunks", killAt, prefix, len(ranges))
		}
		for c := prefix; c < len(ranges); c++ {
			if completed[c] == 1 {
				t.Fatalf("kill@%d: chunk %d completed past the gap at %d", killAt, c, prefix)
			}
		}
		// resume: run the undispatched tail on a fresh context.
		if err := ForEachRangeCtx(context.Background(), 4, ranges[prefix:], func(_ int, r Range) {
			for i := r.Lo; i < r.Hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		}); err != nil {
			t.Fatalf("kill@%d: resume err = %v", killAt, err)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("kill@%d: index %d visited %d times after resume", killAt, i, v)
			}
		}
	}
}

// TestForEachIndexCtxKillResume: per-index cancellation may skip the
// tail of every in-flight chunk, so the survivors are NOT one prefix —
// the guarantee is at-most-once. A resumer that re-runs exactly the
// missed indices must land every index on exactly one visit.
func TestForEachIndexCtxKillResume(t *testing.T) {
	const n = 2000
	for _, killAt := range []int32{1, 17, 200} {
		ctx, cancel := context.WithCancel(context.Background())
		visits := make([]int32, n)
		var calls atomic.Int32
		err := ForEachIndexCtx(ctx, 4, n, func(i int) {
			atomic.AddInt32(&visits[i], 1)
			if calls.Add(1) == killAt {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("kill@%d: err = %v, want context.Canceled", killAt, err)
		}
		var missing []int
		for i, v := range visits {
			if v > 1 {
				t.Fatalf("kill@%d: index %d visited %d times", killAt, i, v)
			}
			if v == 0 {
				missing = append(missing, i)
			}
		}
		if len(missing) == 0 {
			t.Fatalf("kill@%d: nothing left to resume", killAt)
		}
		if err := ForEachIndexCtx(context.Background(), 4, len(missing), func(k int) {
			atomic.AddInt32(&visits[missing[k]], 1)
		}); err != nil {
			t.Fatalf("kill@%d: resume err = %v", killAt, err)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("kill@%d: index %d at %d visits after resume", killAt, i, v)
			}
		}
	}
}
