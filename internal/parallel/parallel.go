// Package parallel provides the bounded-concurrency primitives behind
// the batch-mining engine: an ordered fan-out map over a worker pool,
// contiguous index chunking for shard-style decomposition, and a
// deterministic seed splitter so concurrent code that consumes
// randomness stays reproducible for a fixed seed.
//
// The package encodes one invariant used throughout the repository:
// parallel output must be byte-identical to serial output. MapOrdered
// writes result i to slot i regardless of completion order, Chunks
// always produces the same ranges for the same (n, parts), and
// SplitSeeds derives per-shard seeds from the shard index alone — so
// the worker count only changes wall-clock time, never results.
package parallel

import (
	"math/rand"
	"runtime"
	"sync"
)

// Workers normalizes a worker-count knob: values <= 0 mean "use every
// available CPU" (GOMAXPROCS).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// MapOrdered applies fn to every item on a pool of workers goroutines
// and returns the results in input order. fn receives the item index
// and the item; it must not touch shared mutable state. With
// workers <= 1 (or a single item) it degenerates to a plain serial
// loop with no goroutine overhead.
func MapOrdered[T, R any](workers int, items []T, fn func(i int, item T) R) []R {
	out := make([]R, len(items))
	workers = Workers(workers)
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for i, it := range items {
			out[i] = fn(i, it)
		}
		return out
	}
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(out) {
					return
				}
				out[i] = fn(i, items[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Range is one contiguous half-open index interval [Lo, Hi).
type Range struct{ Lo, Hi int }

// Chunks splits [0, n) into at most parts contiguous ranges of
// near-equal size (the first n%parts ranges are one element longer).
// Empty ranges are never produced; for n == 0 it returns nil. The
// decomposition depends only on (n, parts), which is what makes
// shard-deterministic algorithms independent of the worker count.
func Chunks(n, parts int) []Range {
	if n <= 0 {
		return nil
	}
	if parts <= 1 || parts > n {
		if parts > n {
			parts = n
		}
		if parts <= 1 {
			return []Range{{0, n}}
		}
	}
	out := make([]Range, 0, parts)
	size, rem := n/parts, n%parts
	lo := 0
	for i := 0; i < parts; i++ {
		hi := lo + size
		if i < rem {
			hi++
		}
		out = append(out, Range{lo, hi})
		lo = hi
	}
	return out
}

// ForEachRange runs fn once per range on a pool of workers goroutines
// and blocks until all complete. fn must write only to per-index or
// per-range state.
func ForEachRange(workers int, ranges []Range, fn func(chunk int, r Range)) {
	MapOrdered(workers, ranges, func(i int, r Range) struct{} {
		fn(i, r)
		return struct{}{}
	})
}

// ForEachIndex partitions [0, n) across the pool and calls fn for
// every index. It is the chunked equivalent of `for i := range ...`
// for pure per-index work (each index computed exactly once, by one
// goroutine).
func ForEachIndex(workers, n int, fn func(i int)) {
	ForEachRange(workers, Chunks(n, Workers(workers)), func(_ int, r Range) {
		for i := r.Lo; i < r.Hi; i++ {
			fn(i)
		}
	})
}

// splitmix64 is the SplitMix64 finalizer, the standard generator for
// deriving statistically independent streams from a base seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SplitSeeds derives n decorrelated child seeds from one base seed.
// Child i depends only on (seed, i), never on how many goroutines end
// up consuming the streams — the per-worker RNG discipline that keeps
// seeded concurrent runs deterministic.
func SplitSeeds(seed int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(splitmix64(uint64(seed) + uint64(i)*0x9e3779b97f4a7c15))
	}
	return out
}

// RNGs returns n independent rand.Rand instances seeded via
// SplitSeeds; each is owned by exactly one worker (rand.Rand itself is
// not safe for concurrent use).
func RNGs(seed int64, n int) []*rand.Rand {
	seeds := SplitSeeds(seed, n)
	out := make([]*rand.Rand, n)
	for i, s := range seeds {
		out[i] = rand.New(rand.NewSource(s))
	}
	return out
}
