package parallel

import (
	"reflect"
	"sync/atomic"
	"testing"
)

func TestMapOrderedMatchesSerial(t *testing.T) {
	items := make([]int, 257)
	for i := range items {
		items[i] = i * 3
	}
	want := MapOrdered(1, items, func(i, v int) int { return v*v + i })
	for _, w := range []int{2, 4, 8, 16, 100, 0} {
		got := MapOrdered(w, items, func(i, v int) int { return v*v + i })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: parallel result diverges from serial", w)
		}
	}
}

func TestMapOrderedEmpty(t *testing.T) {
	if got := MapOrdered(4, nil, func(i int, v string) string { return v }); len(got) != 0 {
		t.Fatalf("expected empty result, got %v", got)
	}
}

func TestMapOrderedEachIndexOnce(t *testing.T) {
	n := 500
	var hits [500]int32
	items := make([]struct{}, n)
	MapOrdered(8, items, func(i int, _ struct{}) struct{} {
		atomic.AddInt32(&hits[i], 1)
		return struct{}{}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestChunksCoverExactly(t *testing.T) {
	cases := []struct{ n, parts int }{
		{0, 4}, {1, 4}, {4, 4}, {5, 4}, {100, 7}, {7, 100}, {10, 1}, {10, 0},
	}
	for _, c := range cases {
		rs := Chunks(c.n, c.parts)
		covered := 0
		prev := 0
		for _, r := range rs {
			if r.Lo != prev || r.Hi <= r.Lo {
				t.Fatalf("Chunks(%d,%d): bad range %+v (prev end %d)", c.n, c.parts, r, prev)
			}
			covered += r.Hi - r.Lo
			prev = r.Hi
		}
		if covered != c.n {
			t.Fatalf("Chunks(%d,%d): covered %d indices", c.n, c.parts, covered)
		}
		if c.parts > 0 && len(rs) > c.parts {
			t.Fatalf("Chunks(%d,%d): %d ranges exceeds parts", c.n, c.parts, len(rs))
		}
	}
}

func TestChunksDeterministic(t *testing.T) {
	a := Chunks(101, 8)
	b := Chunks(101, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Chunks not deterministic")
	}
}

func TestForEachIndexCoversAll(t *testing.T) {
	var hits [333]int32
	ForEachIndex(8, len(hits), func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestSplitSeedsStable(t *testing.T) {
	a := SplitSeeds(42, 8)
	b := SplitSeeds(42, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SplitSeeds not deterministic")
	}
	// A prefix of a longer split must match: child i depends only on
	// (seed, i).
	long := SplitSeeds(42, 16)
	if !reflect.DeepEqual(a, long[:8]) {
		t.Fatal("SplitSeeds child depends on n")
	}
	seen := map[int64]bool{}
	for _, s := range long {
		if seen[s] {
			t.Fatalf("duplicate child seed %d", s)
		}
		seen[s] = true
	}
	if reflect.DeepEqual(a, SplitSeeds(43, 8)) {
		t.Fatal("different base seeds produced identical children")
	}
}

func TestRNGsIndependent(t *testing.T) {
	rngs := RNGs(7, 4)
	if len(rngs) != 4 {
		t.Fatalf("want 4 rngs, got %d", len(rngs))
	}
	a, b := rngs[0].Int63(), rngs[1].Int63()
	if a == b {
		t.Fatal("adjacent worker RNGs emitted identical first draws")
	}
}

func TestWorkersDefault(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must resolve non-positive to >= 1")
	}
	if Workers(5) != 5 {
		t.Fatal("Workers must pass positive values through")
	}
}
