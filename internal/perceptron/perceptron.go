// Package perceptron implements a sparse multiclass averaged
// perceptron. It is the learning core of the POS tagger and a second
// training backend for the NER layer: simple, fast, deterministic, and
// strong on the handcrafted feature templates the paper's pipeline
// uses.
package perceptron

import (
	"math/rand"
	"sort"
)

// Model is a multiclass averaged perceptron over string features.
// The zero value is not usable; call New.
type Model struct {
	Classes []string
	classID map[string]int

	// weights[feature][class]
	weights map[string][]float64
	// averaging bookkeeping (Daumé's trick): totals accumulate
	// weight × survival time; stamps record the last update tick.
	totals map[string][]float64
	stamps map[string][]int
	ticks  int
	frozen bool
}

// New creates a model for the given class inventory.
func New(classes []string) *Model {
	m := &Model{
		Classes: append([]string(nil), classes...),
		classID: make(map[string]int, len(classes)),
		weights: make(map[string][]float64),
		totals:  make(map[string][]float64),
		stamps:  make(map[string][]int),
	}
	for i, c := range classes {
		m.classID[c] = i
	}
	return m
}

// ClassID returns the index for a class name, or -1.
func (m *Model) ClassID(c string) int {
	if id, ok := m.classID[c]; ok {
		return id
	}
	return -1
}

// Scores returns the per-class activation for a feature set.
func (m *Model) Scores(features []string) []float64 {
	s := make([]float64, len(m.Classes))
	for _, f := range features {
		w, ok := m.weights[f]
		if !ok {
			continue
		}
		for c, v := range w {
			s[c] += v
		}
	}
	return s
}

// Predict returns the best class index for the features; ties break
// toward the lower class index for determinism.
func (m *Model) Predict(features []string) int {
	s := m.Scores(features)
	best := 0
	for c := 1; c < len(s); c++ {
		if s[c] > s[best] {
			best = c
		}
	}
	return best
}

// PredictLabel returns the best class name.
func (m *Model) PredictLabel(features []string) string {
	return m.Classes[m.Predict(features)]
}

// Update performs one perceptron update: promote gold, demote the
// prediction, when they differ. Returns whether the prediction was
// correct. Must not be called after Average.
func (m *Model) Update(features []string, gold int) bool {
	if m.frozen {
		panic("perceptron: Update after Average")
	}
	m.ticks++
	pred := m.Predict(features)
	if pred == gold {
		return true
	}
	for _, f := range features {
		m.bump(f, gold, 1)
		m.bump(f, pred, -1)
	}
	return false
}

func (m *Model) bump(f string, class int, delta float64) {
	w, ok := m.weights[f]
	if !ok {
		n := len(m.Classes)
		w = make([]float64, n)
		m.weights[f] = w
		m.totals[f] = make([]float64, n)
		m.stamps[f] = make([]int, n)
	}
	t := m.totals[f]
	st := m.stamps[f]
	t[class] += float64(m.ticks-st[class]) * w[class]
	st[class] = m.ticks
	w[class] += delta
}

// Average replaces the working weights with their running average,
// which is what should be used at inference time. After averaging the
// model is frozen.
func (m *Model) Average() {
	if m.frozen {
		return
	}
	for f, w := range m.weights {
		t := m.totals[f]
		st := m.stamps[f]
		for c := range w {
			t[c] += float64(m.ticks-st[c]) * w[c]
			if m.ticks > 0 {
				w[c] = t[c] / float64(m.ticks)
			}
		}
	}
	m.totals = nil
	m.stamps = nil
	m.frozen = true
}

// Example is one training instance.
type Example struct {
	Features []string
	Class    int
}

// TrainConfig controls Train.
type TrainConfig struct {
	Epochs int // default 5
	Seed   int64
}

// Train runs epochs of shuffled perceptron training and averages the
// weights. It returns the per-epoch training accuracy trace.
func (m *Model) Train(examples []Example, cfg TrainConfig) []float64 {
	epochs := cfg.Epochs
	if epochs <= 0 {
		epochs = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, len(examples))
	for i := range idx {
		idx[i] = i
	}
	trace := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		correct := 0
		for _, i := range idx {
			if m.Update(examples[i].Features, examples[i].Class) {
				correct++
			}
		}
		if len(examples) > 0 {
			trace = append(trace, float64(correct)/float64(len(examples)))
		}
	}
	m.Average()
	return trace
}

// FeatureCount returns the number of distinct features seen.
func (m *Model) FeatureCount() int { return len(m.weights) }

// TopFeatures returns up to n (feature, weight) pairs with the largest
// absolute weight for a class — useful for model inspection.
func (m *Model) TopFeatures(class string, n int) []WeightedFeature {
	id := m.ClassID(class)
	if id < 0 {
		return nil
	}
	out := make([]WeightedFeature, 0, len(m.weights))
	for f, w := range m.weights {
		if w[id] != 0 {
			out = append(out, WeightedFeature{Feature: f, Weight: w[id]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := out[i].Weight, out[j].Weight
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		if ai != aj {
			return ai > aj
		}
		return out[i].Feature < out[j].Feature
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// WeightedFeature pairs a feature name with its learned weight.
type WeightedFeature struct {
	Feature string
	Weight  float64
}
