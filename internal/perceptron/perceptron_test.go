package perceptron

import (
	"math/rand"
	"testing"
)

func TestPredictUntrainedIsDeterministic(t *testing.T) {
	m := New([]string{"a", "b"})
	if got := m.Predict([]string{"x"}); got != 0 {
		t.Fatalf("untrained predict = %d", got)
	}
}

func TestLearnsLinearlySeparable(t *testing.T) {
	m := New([]string{"fruit", "vegetable"})
	examples := []Example{
		{Features: []string{"w=apple", "sweet"}, Class: 0},
		{Features: []string{"w=banana", "sweet"}, Class: 0},
		{Features: []string{"w=cherry", "sweet"}, Class: 0},
		{Features: []string{"w=carrot", "savory"}, Class: 1},
		{Features: []string{"w=potato", "savory"}, Class: 1},
		{Features: []string{"w=onion", "savory"}, Class: 1},
	}
	trace := m.Train(examples, TrainConfig{Epochs: 10, Seed: 1})
	if trace[len(trace)-1] != 1.0 {
		t.Fatalf("final epoch accuracy = %v", trace)
	}
	if m.PredictLabel([]string{"w=plum", "sweet"}) != "fruit" {
		t.Fatal("generalization via shared feature failed")
	}
	if m.PredictLabel([]string{"w=leek", "savory"}) != "vegetable" {
		t.Fatal("generalization via shared feature failed")
	}
}

func TestAveragingImprovesStability(t *testing.T) {
	// noisy data: averaged weights should still classify the clean core.
	rng := rand.New(rand.NewSource(7))
	var examples []Example
	for i := 0; i < 200; i++ {
		c := i % 2
		feats := []string{"bias"}
		if c == 0 {
			feats = append(feats, "sig0")
		} else {
			feats = append(feats, "sig1")
		}
		if rng.Float64() < 0.1 { // label noise
			c = 1 - c
		}
		examples = append(examples, Example{Features: feats, Class: c})
	}
	m := New([]string{"0", "1"})
	m.Train(examples, TrainConfig{Epochs: 5, Seed: 2})
	if m.PredictLabel([]string{"bias", "sig0"}) != "0" {
		t.Fatal("averaged model lost the clean signal for class 0")
	}
	if m.PredictLabel([]string{"bias", "sig1"}) != "1" {
		t.Fatal("averaged model lost the clean signal for class 1")
	}
}

func TestUpdateAfterAveragePanics(t *testing.T) {
	m := New([]string{"a", "b"})
	m.Average()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Update([]string{"x"}, 0)
}

func TestAverageIdempotent(t *testing.T) {
	m := New([]string{"a", "b"})
	m.Update([]string{"x"}, 1)
	m.Average()
	w := m.Scores([]string{"x"})[1]
	m.Average()
	if m.Scores([]string{"x"})[1] != w {
		t.Fatal("second Average changed weights")
	}
}

func TestClassID(t *testing.T) {
	m := New([]string{"a", "b", "c"})
	if m.ClassID("b") != 1 || m.ClassID("zz") != -1 {
		t.Fatal("ClassID wrong")
	}
}

func TestTopFeatures(t *testing.T) {
	m := New([]string{"a", "b"})
	for i := 0; i < 5; i++ {
		m.Update([]string{"strong"}, 1)
		m.Update([]string{"weak", "strong"}, 1)
	}
	m.Average()
	top := m.TopFeatures("b", 1)
	if len(top) != 1 || top[0].Feature != "strong" {
		t.Fatalf("TopFeatures = %+v", top)
	}
	if m.TopFeatures("nope", 3) != nil {
		t.Fatal("unknown class should return nil")
	}
}

func TestFeatureCount(t *testing.T) {
	m := New([]string{"a", "b"})
	m.Update([]string{"f1", "f2"}, 1)
	m.Update([]string{"f2", "f3"}, 0)
	if got := m.FeatureCount(); got < 2 || got > 3 {
		t.Fatalf("FeatureCount = %d", got)
	}
}

func TestTrainEmptyCorpus(t *testing.T) {
	m := New([]string{"a", "b"})
	trace := m.Train(nil, TrainConfig{Epochs: 3})
	if len(trace) != 0 {
		t.Fatalf("trace = %v", trace)
	}
}
