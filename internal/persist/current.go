// The CURRENT pointer: the one-file commit protocol shared by every
// versioned store in the system. A store directory holds immutable
// version directories plus a single CURRENT file naming the serving
// version; publishing and rollback are both an atomic rename of that
// file, so a reader sees the old complete version or the new complete
// version, never a mixture. The model store (store.go) and the corpus
// snapshot store (internal/snapshot) both speak this protocol.

package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"recipemodel/internal/checkpoint"
)

// currentFile is the pointer file naming the serving version.
const currentFile = "CURRENT"

// WriteCurrentPointer atomically points dir's CURRENT file at version.
// The caller is responsible for having made the version durable first;
// this is only the commit record.
func WriteCurrentPointer(dir, version string) error {
	return checkpoint.WriteFileAtomic(filepath.Join(dir, currentFile), []byte(version+"\n"), 0o644)
}

// ReadCurrentPointer reads the serving version from dir's CURRENT
// file; an empty pointer is an error (it names nothing servable).
func ReadCurrentPointer(dir string) (string, error) {
	path := filepath.Join(dir, currentFile)
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	version := strings.TrimSpace(string(data))
	if version == "" {
		return "", fmt.Errorf("%s is empty", path)
	}
	return version, nil
}
