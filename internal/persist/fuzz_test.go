package persist

import (
	"bytes"
	"encoding/gob"
	"strings"
	"testing"

	"recipemodel/internal/ner"
)

// tinyCRF builds the smallest savedCRF whose dimensions are
// consistent, without training anything.
func tinyCRF() savedCRF {
	return savedCRF{
		Labels:   []string{"B-NAME", "O"},
		Emit:     map[string][]float64{"w=onion": {1.5, -0.5}},
		Trans:    [][]float64{{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}},
		TransEnd: []float64{0.7, 0.8},
	}
}

func tinyBundleBytes(tb testing.TB) []byte {
	tb.Helper()
	b := savedBundle{
		Version:     wireVersion,
		Ingredient:  savedTagger{Task: TaskIngredient, Options: ner.DefaultFeatureOptions, CRF: tinyCRF()},
		Instruction: savedTagger{Task: TaskInstruction, Options: ner.DefaultFeatureOptions, CRF: tinyCRF()},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// mutateBundle encodes a bundle after fn has corrupted it.
func mutateBundle(tb testing.TB, fn func(*savedBundle)) []byte {
	tb.Helper()
	b := savedBundle{
		Version:     wireVersion,
		Ingredient:  savedTagger{Task: TaskIngredient, Options: ner.DefaultFeatureOptions, CRF: tinyCRF()},
		Instruction: savedTagger{Task: TaskInstruction, Options: ner.DefaultFeatureOptions, CRF: tinyCRF()},
	}
	fn(&b)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzLoadBundle asserts the core decode contract: arbitrary bytes
// must produce either a usable tagger pair or an error — never a
// panic, neither during decode nor on the first prediction.
func FuzzLoadBundle(f *testing.F) {
	valid := tinyBundleBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-stream
	f.Add(valid[:1])
	f.Add([]byte("not a gob stream"))
	f.Add([]byte{})
	// A structurally valid gob whose weight tables are inconsistent.
	f.Add(mutateBundle(f, func(b *savedBundle) { b.Ingredient.CRF.TransEnd = nil }))
	f.Fuzz(func(t *testing.T, data []byte) {
		ing, ins, err := LoadBundle(bytes.NewReader(data))
		if err != nil {
			return
		}
		tokens := []string{"2", "cups", "chopped", "onion"}
		if got := ing.PredictTags(tokens); len(got) != len(tokens) {
			t.Fatalf("ingredient tagger predicted %d labels for %d tokens", len(got), len(tokens))
		}
		if got := ins.PredictTags(tokens); len(got) != len(tokens) {
			t.Fatalf("instruction tagger predicted %d labels for %d tokens", len(got), len(tokens))
		}
	})
}

// FuzzLoadTagger is the single-tagger variant of the same contract.
func FuzzLoadTagger(f *testing.F) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(savedTagger{
		Task: TaskIngredient, Options: ner.DefaultFeatureOptions, CRF: tinyCRF(),
	}); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/3])
	f.Add([]byte("junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tg, err := LoadTagger(bytes.NewReader(data))
		if err != nil {
			return
		}
		tokens := []string{"1", "cup", "sugar"}
		if got := tg.PredictTags(tokens); len(got) != len(tokens) {
			t.Fatalf("predicted %d labels for %d tokens", len(got), len(tokens))
		}
	})
}

// The regression cases below pin the corruption classes the fuzz
// targets cover, so plain `go test` exercises them without -fuzz.

func TestLoadBundleTruncated(t *testing.T) {
	valid := tinyBundleBytes(t)
	for cut := 0; cut < len(valid); cut += 7 {
		if _, _, err := LoadBundle(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", cut, len(valid))
		}
	}
}

func TestLoadBundleBadDimensions(t *testing.T) {
	cases := map[string]func(*savedBundle){
		"no labels":        func(b *savedBundle) { b.Ingredient.CRF.Labels = nil },
		"missing bos row":  func(b *savedBundle) { b.Ingredient.CRF.Trans = b.Ingredient.CRF.Trans[:2] },
		"ragged trans row": func(b *savedBundle) { b.Instruction.CRF.Trans[1] = []float64{1} },
		"short trans-end":  func(b *savedBundle) { b.Instruction.CRF.TransEnd = []float64{1} },
		"short emit vec":   func(b *savedBundle) { b.Ingredient.CRF.Emit["w=onion"] = []float64{1} },
		"bad version":      func(b *savedBundle) { b.Version = 99 },
		"bad task":         func(b *savedBundle) { b.Ingredient.Task = "weird" },
	}
	for name, fn := range cases {
		if _, _, err := LoadBundle(bytes.NewReader(mutateBundle(t, fn))); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestLoadBundleTinyValid(t *testing.T) {
	ing, ins, err := LoadBundle(bytes.NewReader(tinyBundleBytes(t)))
	if err != nil {
		t.Fatal(err)
	}
	if got := ing.PredictTags([]string{"onion"}); len(got) != 1 {
		t.Fatalf("ingredient predict: %v", got)
	}
	if got := ins.PredictTags([]string{"boil"}); len(got) != 1 {
		t.Fatalf("instruction predict: %v", got)
	}
}

func TestLoadTaggerBadDimensions(t *testing.T) {
	c := tinyCRF()
	c.TransEnd = nil
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(savedTagger{
		Task: TaskIngredient, Options: ner.DefaultFeatureOptions, CRF: c,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTagger(&buf); err == nil {
		t.Fatal("inconsistent tagger decoded without error")
	}
	if _, err := LoadTagger(strings.NewReader("")); err == nil {
		t.Fatal("empty stream decoded without error")
	}
}
