// Package persist serializes trained models so a pipeline can be
// trained once and shipped: the CRF weights travel as gob; feature
// extractors (closures) are reconstructed from a recorded task name
// and feature options on load.
package persist

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"recipemodel/internal/crf"
	"recipemodel/internal/ner"
)

// Task names a feature-extractor family that can be rebuilt on load.
type Task string

// The serializable tagger tasks.
const (
	TaskIngredient  Task = "ingredient"
	TaskInstruction Task = "instruction"
)

// savedCRF is the gob wire form of a CRF.
type savedCRF struct {
	Labels   []string
	Emit     map[string][]float64
	Trans    [][]float64
	TransEnd []float64
}

// savedTagger is the gob wire form of a NER tagger.
type savedTagger struct {
	Task    Task
	Options ner.FeatureOptions
	CRF     savedCRF
}

// savedBundle is the wire form of a full pipeline (both taggers).
type savedBundle struct {
	Version     int
	Ingredient  savedTagger
	Instruction savedTagger
}

// wireVersion guards against stale files.
const wireVersion = 1

func toSavedCRF(m *crf.Model) savedCRF {
	return savedCRF{
		Labels:   m.Labels,
		Emit:     m.Emit,
		Trans:    m.Trans,
		TransEnd: m.TransEnd,
	}
}

// validateCRF rejects wire forms whose weight tables do not match the
// label inventory. Gob decoding alone accepts any shapes; skipping
// this check would defer the failure to an index-out-of-range panic in
// the middle of Viterbi on the first prediction.
func validateCRF(s savedCRF) error {
	L := len(s.Labels)
	if L == 0 {
		return fmt.Errorf("persist: CRF has no labels")
	}
	// Trans carries one extra row: the virtual begin-of-sequence state.
	if len(s.Trans) != L+1 {
		return fmt.Errorf("persist: CRF has %d transition rows, want %d", len(s.Trans), L+1)
	}
	for i, row := range s.Trans {
		if len(row) != L {
			return fmt.Errorf("persist: transition row %d has %d weights, want %d", i, len(row), L)
		}
	}
	if len(s.TransEnd) != L {
		return fmt.Errorf("persist: CRF has %d end weights, want %d", len(s.TransEnd), L)
	}
	for f, w := range s.Emit {
		if len(w) != L {
			return fmt.Errorf("persist: feature %q has %d emission weights, want %d", f, len(w), L)
		}
	}
	return nil
}

func fromSavedCRF(s savedCRF) (*crf.Model, error) {
	if err := validateCRF(s); err != nil {
		return nil, err
	}
	m := crf.New(s.Labels)
	m.Emit = s.Emit
	m.Trans = s.Trans
	m.TransEnd = s.TransEnd
	return m, nil
}

// extractorFor rebuilds the feature extractor for a task.
func extractorFor(task Task, opts ner.FeatureOptions) (ner.Extractor, error) {
	switch task {
	case TaskIngredient:
		return ner.NewIngredientExtractor(opts), nil
	case TaskInstruction:
		return ner.NewInstructionExtractor(opts), nil
	default:
		return nil, fmt.Errorf("persist: unknown task %q", task)
	}
}

// compile installs the interned/packed fast path on a freshly loaded
// tagger. Compilation happens on load rather than in the wire format,
// so bundles saved by earlier versions stay format-compatible; the
// compile step's canary self-check guards against a recorded task or
// option set that no longer matches the extractor it names.
func compile(t *ner.Tagger, task Task, opts ner.FeatureOptions) (*ner.Tagger, error) {
	nt := ner.TaskIngredient
	if task == TaskInstruction {
		nt = ner.TaskInstruction
	}
	if err := t.CompileFor(nt, opts); err != nil {
		return nil, fmt.Errorf("persist: compile %s fast path: %w", task, err)
	}
	return t, nil
}

// SaveTagger writes one tagger.
func SaveTagger(w io.Writer, t *ner.Tagger, task Task, opts ner.FeatureOptions) error {
	enc := gob.NewEncoder(w)
	return enc.Encode(savedTagger{Task: task, Options: opts, CRF: toSavedCRF(t.Model)})
}

// LoadTagger reads one tagger.
func LoadTagger(r io.Reader) (*ner.Tagger, error) {
	var s savedTagger
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("persist: decode tagger: %w", err)
	}
	ex, err := extractorFor(s.Task, s.Options)
	if err != nil {
		return nil, err
	}
	m, err := fromSavedCRF(s.CRF)
	if err != nil {
		return nil, err
	}
	return compile(ner.FromModel(m, ex), s.Task, s.Options)
}

// SaveBundle writes an ingredient + instruction tagger pair.
func SaveBundle(w io.Writer, ingredient, instruction *ner.Tagger, opts ner.FeatureOptions) error {
	b := savedBundle{
		Version:     wireVersion,
		Ingredient:  savedTagger{Task: TaskIngredient, Options: opts, CRF: toSavedCRF(ingredient.Model)},
		Instruction: savedTagger{Task: TaskInstruction, Options: opts, CRF: toSavedCRF(instruction.Model)},
	}
	return gob.NewEncoder(w).Encode(b)
}

// LoadBundle reads an ingredient + instruction tagger pair.
func LoadBundle(r io.Reader) (ingredient, instruction *ner.Tagger, err error) {
	var b savedBundle
	if err := gob.NewDecoder(r).Decode(&b); err != nil {
		return nil, nil, fmt.Errorf("persist: decode bundle: %w", err)
	}
	if b.Version != wireVersion {
		return nil, nil, fmt.Errorf("persist: unsupported version %d", b.Version)
	}
	exIng, err := extractorFor(b.Ingredient.Task, b.Ingredient.Options)
	if err != nil {
		return nil, nil, fmt.Errorf("ingredient tagger: %w", err)
	}
	exIns, err := extractorFor(b.Instruction.Task, b.Instruction.Options)
	if err != nil {
		return nil, nil, fmt.Errorf("instruction tagger: %w", err)
	}
	mIng, err := fromSavedCRF(b.Ingredient.CRF)
	if err != nil {
		return nil, nil, fmt.Errorf("ingredient tagger: %w", err)
	}
	mIns, err := fromSavedCRF(b.Instruction.CRF)
	if err != nil {
		return nil, nil, fmt.Errorf("instruction tagger: %w", err)
	}
	ingredient, err = compile(ner.FromModel(mIng, exIng), b.Ingredient.Task, b.Ingredient.Options)
	if err != nil {
		return nil, nil, fmt.Errorf("ingredient tagger: %w", err)
	}
	instruction, err = compile(ner.FromModel(mIns, exIns), b.Instruction.Task, b.Instruction.Options)
	if err != nil {
		return nil, nil, fmt.Errorf("instruction tagger: %w", err)
	}
	return ingredient, instruction, nil
}

// LoadBundleFile is LoadBundle against a file path; errors name the
// path so an operator staring at a failed load knows which artifact on
// disk is the corrupt one.
func LoadBundleFile(path string) (ingredient, instruction *ner.Tagger, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	ingredient, instruction, err = LoadBundle(f)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return ingredient, instruction, nil
}

// LoadTaggerFile is LoadTagger against a file path, with the same
// error-names-the-file contract as LoadBundleFile.
func LoadTaggerFile(path string) (*ner.Tagger, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	defer f.Close()
	t, err := LoadTagger(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
