package persist

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"recipemodel/internal/corpus"
	"recipemodel/internal/ner"
	"recipemodel/internal/recipedb"
)

func trainSmall(t *testing.T) (*ner.Tagger, *ner.Tagger) {
	t.Helper()
	g := recipedb.NewGenerator(recipedb.SourceAllRecipes, 1)
	ing := ner.Train(corpus.IngredientSentences(g.UniquePhrases(400)),
		ner.IngredientTypes, ner.NewIngredientExtractor(ner.DefaultFeatureOptions),
		ner.TrainConfig{Epochs: 4, Seed: 2})
	ins := ner.Train(corpus.InstructionSentences(g.Instructions(300)),
		ner.InstructionTypes, ner.NewInstructionExtractor(ner.DefaultFeatureOptions),
		ner.TrainConfig{Epochs: 4, Seed: 3})
	return ing, ins
}

func TestTaggerRoundTrip(t *testing.T) {
	ing, _ := trainSmall(t)
	var buf bytes.Buffer
	if err := SaveTagger(&buf, ing, TaskIngredient, ner.DefaultFeatureOptions); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTagger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// predictions must be identical.
	for _, phrase := range []string{
		"2 cups chopped onion",
		"1 ( 8 ounce ) package cream cheese , softened",
		"2-3 medium tomatoes",
	} {
		tokens := strings.Fields(phrase)
		a := ing.Predict(tokens)
		b := loaded.Predict(tokens)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%q: %v vs %v", phrase, a, b)
		}
	}
}

func TestBundleRoundTrip(t *testing.T) {
	ing, ins := trainSmall(t)
	var buf bytes.Buffer
	if err := SaveBundle(&buf, ing, ins, ner.DefaultFeatureOptions); err != nil {
		t.Fatal(err)
	}
	li, ls, err := LoadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tokens := strings.Fields("bring the water to a boil in a large pot")
	if !reflect.DeepEqual(ins.Predict(tokens), ls.Predict(tokens)) {
		t.Fatal("instruction predictions differ after round trip")
	}
	tokens = strings.Fields("1 cup sugar")
	if !reflect.DeepEqual(ing.Predict(tokens), li.Predict(tokens)) {
		t.Fatal("ingredient predictions differ after round trip")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := LoadTagger(strings.NewReader("not gob")); err == nil {
		t.Fatal("expected decode error")
	}
	if _, _, err := LoadBundle(strings.NewReader("junk")); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestUnknownTask(t *testing.T) {
	if _, err := extractorFor(Task("weird"), ner.DefaultFeatureOptions); err == nil {
		t.Fatal("expected unknown-task error")
	}
}
