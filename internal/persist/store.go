// Versioned model store: the crash-safe deployment form of a trained
// bundle. Layout on disk:
//
//	<dir>/
//	  CURRENT                      ← version name, swapped by atomic rename
//	  bundles/
//	    v000001/
//	      bundle.gob               ← gob bundle (SaveBundle wire form)
//	      MANIFEST.json            ← size + sha256 of bundle.gob
//	    v000002/
//	      ...
//
// Publishing a version is a two-phase install: the bundle and its
// manifest are written and fsync'd inside a hidden temp directory,
// the temp directory is renamed to bundles/<version> (atomic), and
// only then is CURRENT swapped — also via atomic rename — to point at
// it. A crash anywhere in the sequence leaves CURRENT pointing at the
// previous, fully durable version; a half-written install is an
// orphaned directory that a later Save overwrites, never a version
// CURRENT can name. Loads verify the manifest checksum before
// decoding, so silent corruption is a named error, not a bad model.

package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"recipemodel/internal/checkpoint"
	"recipemodel/internal/faults"
	"recipemodel/internal/ner"
)

// FaultInstall fires after a version directory is durable but before
// CURRENT swings to it — the exact window a crash must not be able to
// corrupt. Tests arm it to prove the store stays loadable at the
// previous version.
const FaultInstall = "persist.install"

var _ = faults.MustRegister(FaultInstall)

// Store is a versioned, crash-safe bundle directory.
type Store struct {
	dir string
}

// OpenStore opens (creating if necessary) a versioned store rooted at
// dir.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "bundles"), 0o755); err != nil {
		return nil, fmt.Errorf("persist: open store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

func (s *Store) bundlesDir() string { return filepath.Join(s.dir, "bundles") }

func (s *Store) versionDir(version string) string {
	return filepath.Join(s.bundlesDir(), version)
}

// bundleManifest is the integrity record written next to each bundle.
type bundleManifest struct {
	Version string `json:"version"`
	Size    int64  `json:"size"`
	SHA256  string `json:"sha256"`
}

// Versions lists the installed versions in ascending order (temp
// directories from interrupted installs are excluded).
func (s *Store) Versions() ([]string, error) {
	entries, err := os.ReadDir(s.bundlesDir())
	if err != nil {
		return nil, fmt.Errorf("persist: list versions: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "v") {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// nextVersion allocates the next sequential version name.
func (s *Store) nextVersion() (string, error) {
	versions, err := s.Versions()
	if err != nil {
		return "", err
	}
	n := 0
	for _, v := range versions {
		var i int
		if _, err := fmt.Sscanf(v, "v%06d", &i); err == nil && i > n {
			n = i
		}
	}
	return fmt.Sprintf("v%06d", n+1), nil
}

// Save installs a new version containing the tagger pair and swaps
// CURRENT to it, returning the version name. The install is crash-safe:
// until the final CURRENT rename commits, a loader sees the previous
// version.
func (s *Store) Save(ingredient, instruction *ner.Tagger, opts ner.FeatureOptions) (version string, err error) {
	version, err = s.nextVersion()
	if err != nil {
		return "", err
	}
	tmpDir := filepath.Join(s.bundlesDir(), ".install-"+version)
	// A previous interrupted install may have left the temp dir behind.
	if err := os.RemoveAll(tmpDir); err != nil {
		return "", fmt.Errorf("persist: install %s: %w", version, err)
	}
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return "", fmt.Errorf("persist: install %s: %w", version, err)
	}
	defer func() {
		if err != nil {
			os.RemoveAll(tmpDir)
		}
	}()

	// Encode once, hash the exact bytes that hit the disk.
	var buf bytes.Buffer
	if err := SaveBundle(&buf, ingredient, instruction, opts); err != nil {
		return "", fmt.Errorf("persist: install %s: %w", version, err)
	}
	sum := sha256.Sum256(buf.Bytes())
	bundlePath := filepath.Join(tmpDir, "bundle.gob")
	if err := checkpoint.WriteFileAtomic(bundlePath, buf.Bytes(), 0o644); err != nil {
		return "", fmt.Errorf("persist: install %s: %w", version, err)
	}
	man, err := json.Marshal(bundleManifest{
		Version: version,
		Size:    int64(buf.Len()),
		SHA256:  hex.EncodeToString(sum[:]),
	})
	if err != nil {
		return "", fmt.Errorf("persist: install %s: %w", version, err)
	}
	if err := checkpoint.WriteFileAtomic(filepath.Join(tmpDir, "MANIFEST.json"), append(man, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("persist: install %s: %w", version, err)
	}
	if err := os.Rename(tmpDir, s.versionDir(version)); err != nil {
		return "", fmt.Errorf("persist: install %s: %w", version, err)
	}
	if err := checkpoint.SyncDir(s.bundlesDir()); err != nil {
		return "", fmt.Errorf("persist: install %s: %w", version, err)
	}
	// The version is durable; the swap below publishes it. A crash in
	// this window (the armed fault simulates one) must leave CURRENT on
	// the previous version.
	if err := faults.Inject(FaultInstall); err != nil {
		return version, fmt.Errorf("persist: install %s: %w", version, err)
	}
	if err := s.SetCurrent(version); err != nil {
		return version, err
	}
	return version, nil
}

// SetCurrent atomically points CURRENT at an installed version —
// also the rollback primitive: point it back at a previous version.
func (s *Store) SetCurrent(version string) error {
	if _, err := os.Stat(s.versionDir(version)); err != nil {
		return fmt.Errorf("persist: set current: version %q not installed: %w", version, err)
	}
	if err := WriteCurrentPointer(s.dir, version); err != nil {
		return fmt.Errorf("persist: set current %s: %w", version, err)
	}
	return nil
}

// Current reads the serving version from CURRENT.
func (s *Store) Current() (string, error) {
	version, err := ReadCurrentPointer(s.dir)
	if err != nil {
		return "", fmt.Errorf("persist: %w", err)
	}
	return version, nil
}

// Load opens the CURRENT version, verifying integrity before decode.
func (s *Store) Load() (ingredient, instruction *ner.Tagger, version string, err error) {
	version, err = s.Current()
	if err != nil {
		return nil, nil, "", err
	}
	ingredient, instruction, err = s.LoadVersion(version)
	return ingredient, instruction, version, err
}

// LoadVersion loads one installed version: the manifest is read first,
// the bundle's size and sha256 are checked against it, and only then is
// the gob decoded. Every error names the offending file; checksum
// failures carry both the expected and the found digest.
func (s *Store) LoadVersion(version string) (ingredient, instruction *ner.Tagger, err error) {
	verDir := s.versionDir(version)
	manPath := filepath.Join(verDir, "MANIFEST.json")
	manData, err := os.ReadFile(manPath)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	var man bundleManifest
	if err := json.Unmarshal(manData, &man); err != nil {
		return nil, nil, fmt.Errorf("persist: %s: %w", manPath, err)
	}
	bundlePath := filepath.Join(verDir, "bundle.gob")
	data, err := os.ReadFile(bundlePath)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: %w", err)
	}
	if int64(len(data)) != man.Size {
		return nil, nil, fmt.Errorf("persist: %s: size %d bytes, manifest expects %d", bundlePath, len(data), man.Size)
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != man.SHA256 {
		return nil, nil, fmt.Errorf("persist: %s: checksum mismatch: manifest expects sha256 %s, file has %s", bundlePath, man.SHA256, got)
	}
	ingredient, instruction, err = LoadBundle(bytes.NewReader(data))
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", bundlePath, err)
	}
	return ingredient, instruction, nil
}
