package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"recipemodel/internal/faults"
	"recipemodel/internal/ner"
)

// tinyTaggers builds a loadable tagger pair without training, from the
// consistent tinyCRF wire form shared with the fuzz tests.
func tinyTaggers(tb testing.TB) (*ner.Tagger, *ner.Tagger) {
	tb.Helper()
	ing, ins, err := LoadBundle(bytes.NewReader(tinyBundleBytes(tb)))
	if err != nil {
		tb.Fatal(err)
	}
	return ing, ins
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ing, ins := tinyTaggers(t)
	v, err := st.Save(ing, ins, ner.DefaultFeatureOptions)
	if err != nil {
		t.Fatal(err)
	}
	if v != "v000001" {
		t.Fatalf("first version = %q", v)
	}
	gotIng, gotIns, gotV, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if gotV != v {
		t.Fatalf("loaded version %q, want %q", gotV, v)
	}
	if got := gotIng.PredictTags([]string{"onion"}); len(got) != 1 {
		t.Fatalf("ingredient predict: %v", got)
	}
	if got := gotIns.PredictTags([]string{"boil"}); len(got) != 1 {
		t.Fatalf("instruction predict: %v", got)
	}
}

func TestStoreVersionsAdvance(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ing, ins := tinyTaggers(t)
	for i, want := range []string{"v000001", "v000002", "v000003"} {
		v, err := st.Save(ing, ins, ner.DefaultFeatureOptions)
		if err != nil {
			t.Fatal(err)
		}
		if v != want {
			t.Fatalf("save %d: version %q, want %q", i, v, want)
		}
	}
	versions, err := st.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 3 {
		t.Fatalf("versions = %v", versions)
	}
	cur, err := st.Current()
	if err != nil {
		t.Fatal(err)
	}
	if cur != "v000003" {
		t.Fatalf("current = %q", cur)
	}
}

// TestStoreCrashBeforeCurrentSwap is the acceptance criterion: a crash
// injected between the bundle write and the CURRENT swap must leave the
// store loadable at the previous version — no torn state reachable.
func TestStoreCrashBeforeCurrentSwap(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ing, ins := tinyTaggers(t)
	if _, err := st.Save(ing, ins, ner.DefaultFeatureOptions); err != nil {
		t.Fatal(err)
	}

	errCrash := errors.New("simulated crash")
	disarm := faults.Enable(FaultInstall, faults.Fault{Err: errCrash})
	_, err = st.Save(ing, ins, ner.DefaultFeatureOptions)
	disarm()
	if !errors.Is(err, errCrash) {
		t.Fatalf("save under fault = %v, want injected crash", err)
	}

	// CURRENT still names v1; loading serves the previous version.
	_, _, v, err := st.Load()
	if err != nil {
		t.Fatalf("store unloadable after crashed install: %v", err)
	}
	if v != "v000001" {
		t.Fatalf("current after crashed install = %q, want v000001", v)
	}

	// A retried save self-heals: the next version installs and publishes.
	v3, err := st.Save(ing, ins, ner.DefaultFeatureOptions)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, cur, err := st.Load(); err != nil || cur != v3 {
		t.Fatalf("after retry: version %q err %v, want %q", cur, err, v3)
	}
}

// A rollback is just SetCurrent at an older version.
func TestStoreRollback(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ing, ins := tinyTaggers(t)
	v1, err := st.Save(ing, ins, ner.DefaultFeatureOptions)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Save(ing, ins, ner.DefaultFeatureOptions); err != nil {
		t.Fatal(err)
	}
	if err := st.SetCurrent(v1); err != nil {
		t.Fatal(err)
	}
	if _, _, cur, err := st.Load(); err != nil || cur != v1 {
		t.Fatalf("after rollback: version %q err %v, want %q", cur, err, v1)
	}
	if err := st.SetCurrent("v999999"); err == nil {
		t.Fatal("SetCurrent accepted an uninstalled version")
	}
}

// TestStoreDetectsCorruption: a flipped byte in the bundle must fail
// the checksum check with an error naming the file and both digests.
func TestStoreDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ing, ins := tinyTaggers(t)
	v, err := st.Save(ing, ins, ner.DefaultFeatureOptions)
	if err != nil {
		t.Fatal(err)
	}
	bundlePath := filepath.Join(dir, "bundles", v, "bundle.gob")
	data, err := os.ReadFile(bundlePath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(bundlePath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = st.Load()
	if err == nil {
		t.Fatal("corrupt bundle loaded without error")
	}
	msg := err.Error()
	if !strings.Contains(msg, bundlePath) || !strings.Contains(msg, "checksum mismatch") ||
		!strings.Contains(msg, "expects sha256") {
		t.Fatalf("corruption error lacks path/expected-vs-found: %v", err)
	}
}

// A truncated bundle fails the size check before any decode runs.
func TestStoreDetectsTruncation(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ing, ins := tinyTaggers(t)
	v, err := st.Save(ing, ins, ner.DefaultFeatureOptions)
	if err != nil {
		t.Fatal(err)
	}
	bundlePath := filepath.Join(dir, "bundles", v, "bundle.gob")
	data, err := os.ReadFile(bundlePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bundlePath, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, _, err = st.Load()
	if err == nil || !strings.Contains(err.Error(), "manifest expects") {
		t.Fatalf("truncated bundle: %v", err)
	}
}

func TestStoreLoadEmpty(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := st.Load(); err == nil {
		t.Fatal("empty store loaded without error")
	}
}

// The tagger-level decode error must say which of the two taggers in a
// bundle is the corrupt one (the satellite error-message contract).
func TestLoadBundleErrorNamesTagger(t *testing.T) {
	bad := mutateBundle(t, func(b *savedBundle) { b.Instruction.CRF.TransEnd = []float64{1} })
	_, _, err := LoadBundle(bytes.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "instruction tagger") {
		t.Fatalf("error does not name the corrupt tagger: %v", err)
	}
	bad = mutateBundle(t, func(b *savedBundle) { b.Ingredient.CRF.Labels = nil })
	_, _, err = LoadBundle(bytes.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "ingredient tagger") {
		t.Fatalf("error does not name the corrupt tagger: %v", err)
	}
}

func TestLoadBundleFileNamesPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.gob")
	if err := os.WriteFile(path, []byte("not a gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := LoadBundleFile(path)
	if err == nil || !strings.Contains(err.Error(), path) {
		t.Fatalf("error does not name the file: %v", err)
	}
	if _, err := LoadTaggerFile(path); err == nil || !strings.Contains(err.Error(), path) {
		t.Fatalf("tagger error does not name the file: %v", err)
	}
}
