// Package plot renders 2-D scatter plots as SVG documents and ASCII
// grids — enough to regenerate the paper's Fig 2 cluster
// visualizations without any graphics dependency.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Point is a 2-D point with a category (cluster id) used for coloring.
type Point struct {
	X, Y float64
	C    int
}

// palette cycles through visually distinct SVG colors.
var palette = []string{
	"#e6194b", "#3cb44b", "#ffe119", "#4363d8", "#f58231", "#911eb4",
	"#46f0f0", "#f032e6", "#bcf60c", "#fabebe", "#008080", "#e6beff",
	"#9a6324", "#fffac8", "#800000", "#aaffc3", "#808000", "#ffd8b1",
	"#000075", "#808080", "#d45087", "#2f4b7c", "#ffa600",
}

// bounds returns the bounding box with a small margin.
func bounds(pts []Point) (x0, y0, x1, y1 float64) {
	if len(pts) == 0 {
		return 0, 0, 1, 1
	}
	x0, y0 = math.Inf(1), math.Inf(1)
	x1, y1 = math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		x0 = math.Min(x0, p.X)
		y0 = math.Min(y0, p.Y)
		x1 = math.Max(x1, p.X)
		y1 = math.Max(y1, p.Y)
	}
	if x1 == x0 {
		x1 = x0 + 1
	}
	if y1 == y0 {
		y1 = y0 + 1
	}
	mx, my := (x1-x0)*0.05, (y1-y0)*0.05
	return x0 - mx, y0 - my, x1 + mx, y1 + my
}

// SVG renders the points as a standalone SVG scatter plot.
func SVG(pts []Point, title string, width, height int) string {
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 480
	}
	x0, y0, x1, y1 := bounds(pts)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if title != "" {
		fmt.Fprintf(&b, `<text x="%d" y="16" font-family="sans-serif" font-size="13" text-anchor="middle">%s</text>`+"\n", width/2, escape(title))
	}
	for _, p := range pts {
		px := (p.X - x0) / (x1 - x0) * float64(width-20)
		py := float64(height-30) - (p.Y-y0)/(y1-y0)*float64(height-50)
		color := palette[((p.C%len(palette))+len(palette))%len(palette)]
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s" fill-opacity="0.75"/>`+"\n", px+10, py+10, color)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// ASCII renders the points on a character grid; each cell shows the
// category of the last point landing there (as base-36 digit).
func ASCII(pts []Point, cols, rows int) string {
	if cols <= 0 {
		cols = 72
	}
	if rows <= 0 {
		rows = 24
	}
	grid := make([][]rune, rows)
	for r := range grid {
		grid[r] = make([]rune, cols)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	x0, y0, x1, y1 := bounds(pts)
	const digits = "0123456789abcdefghijklmnopqrstuvwxyz"
	for _, p := range pts {
		c := int((p.X - x0) / (x1 - x0) * float64(cols-1))
		r := rows - 1 - int((p.Y-y0)/(y1-y0)*float64(rows-1))
		if c >= 0 && c < cols && r >= 0 && r < rows {
			grid[r][c] = rune(digits[((p.C%36)+36)%36])
		}
	}
	var b strings.Builder
	for _, row := range grid {
		b.WriteString(strings.TrimRight(string(row), " "))
		b.WriteByte('\n')
	}
	return b.String()
}
