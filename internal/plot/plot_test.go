package plot

import (
	"strings"
	"testing"
)

func pts() []Point {
	return []Point{
		{0, 0, 0}, {1, 1, 1}, {2, 0.5, 2}, {0.5, 2, 0}, {1.5, 1.5, 1},
	}
}

func TestSVGWellFormed(t *testing.T) {
	s := SVG(pts(), "Clusters <k=23>", 640, 480)
	if !strings.HasPrefix(s, "<svg") || !strings.HasSuffix(strings.TrimSpace(s), "</svg>") {
		t.Fatal("not an SVG document")
	}
	if strings.Count(s, "<circle") != 5 {
		t.Fatalf("circle count = %d", strings.Count(s, "<circle"))
	}
	if !strings.Contains(s, "&lt;k=23&gt;") {
		t.Fatal("title not escaped")
	}
}

func TestSVGDefaultsAndEmpty(t *testing.T) {
	s := SVG(nil, "", 0, 0)
	if !strings.Contains(s, `width="640"`) {
		t.Fatal("default width missing")
	}
	if strings.Contains(s, "<circle") {
		t.Fatal("empty input should have no points")
	}
}

func TestASCII(t *testing.T) {
	a := ASCII(pts(), 40, 10)
	lines := strings.Split(strings.TrimRight(a, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("rows = %d", len(lines))
	}
	// every category digit present somewhere
	for _, d := range []string{"0", "1", "2"} {
		if !strings.Contains(a, d) {
			t.Fatalf("category %s missing from grid:\n%s", d, a)
		}
	}
}

func TestASCIIDegenerate(t *testing.T) {
	a := ASCII([]Point{{1, 1, 3}}, 0, 0)
	if !strings.Contains(a, "3") {
		t.Fatal("single point missing")
	}
	if out := ASCII(nil, 10, 5); strings.Count(out, "\n") != 5 {
		t.Fatal("empty grid shape wrong")
	}
}

func TestNegativeCategory(t *testing.T) {
	// must not panic
	_ = SVG([]Point{{0, 0, -3}}, "", 100, 100)
	_ = ASCII([]Point{{0, 0, -3}}, 10, 5)
}
