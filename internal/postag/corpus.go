package postag

import (
	"strings"

	"recipemodel/internal/gazetteer"
)

// TaggedSentence is a training instance: words with gold PTB tags.
type TaggedSentence struct {
	Words []string
	Tags  []string
}

// word lists with fixed gold tags, used by the corpus templates.
var (
	determiners = []string{"the", "a", "an", "each", "every", "some", "any", "no", "this", "that"}
	preps       = []string{"in", "on", "with", "over", "into", "from", "until", "at", "for", "of", "before", "after", "without", "under", "through", "about"}
	conjs       = []string{"and", "or", "but"}
	cardinals   = []string{"1", "2", "3", "4", "5", "6", "8", "10", "12", "20", "30", "45", "350", "375", "400", "1/2", "1/4", "3/4", "2/3", "1 1/2", "2-3", "1-2", "one", "two", "three", "half", "dozen"}
	adjectives  = []string{"fresh", "large", "small", "medium", "hot", "cold", "dry", "golden", "brown", "extra", "virgin", "whole", "ripe", "lean", "raw", "sweet", "sour", "crisp", "tender", "warm", "smooth", "firm", "light", "dark", "plain", "thick", "thin", "soft", "heaping", "scant", "red", "green", "white", "black", "all-purpose", "low-fat", "extra-large", "gluten-free", "semi-sweet", "old-fashioned", "long-grain", "low-sodium", "extra-virgin", "bite-size"}
	adverbs     = []string{"finely", "coarsely", "thinly", "freshly", "gently", "well", "immediately", "thoroughly", "lightly", "evenly", "occasionally", "completely", "carefully", "slowly", "quickly", "together", "aside", "again", "thoroughly"}
	particles   = []string{"up", "down", "off", "out"}
	pronouns    = []string{"it", "they", "them", "you"}
	possessives = []string{"its", "their", "your"}
	modals      = []string{"can", "should", "will", "may", "must"}
	vbzForms    = []string{"is", "has", "simmers", "boils", "thickens", "looks", "becomes", "forms", "starts", "begins"}
	vbpForms    = []string{"are", "have", "begin", "form", "look"}
	vbgForms    = []string{"boiling", "simmering", "stirring", "cooking", "baking", "whisking", "mixing", "melting", "browning", "bubbling"}
	vbdForms    = []string{"was", "were", "added", "cooked", "turned", "became"}
	comparJJ    = []string{"larger", "smaller", "finer", "thicker", "hotter"}
	superlJJ    = []string{"largest", "smallest", "finest", "thickest", "best"}
	comparRB    = []string{"more", "less"}
	superlRB    = []string{"most", "least"}
	whAdverbs   = []string{"when", "where", "how", "why"}
	whDets      = []string{"which", "whatever"}
	whPronouns  = []string{"who", "what"}
	properNouns = []string{"Fahrenheit", "Celsius", "French", "Italian", "Dijon", "Worcestershire", "Parmesan", "Cajun", "Thai", "Greek"}
)

// singular/plural noun inventories derived from the gazetteers.
func nounInventories() (nn []string, nns []string) {
	seen := map[string]bool{}
	addNN := func(w string) {
		if !seen[w] {
			seen[w] = true
			nn = append(nn, w)
		}
	}
	for _, t := range gazetteer.IngredientTerms {
		if !strings.Contains(t, " ") && !strings.Contains(t, "-") {
			addNN(t)
		}
	}
	for _, t := range gazetteer.UnitTerms {
		if !strings.Contains(t, " ") && len(t) > 2 {
			addNN(t)
		}
	}
	for _, t := range gazetteer.UtensilTerms {
		if !strings.Contains(t, " ") {
			addNN(t)
		}
	}
	for _, w := range []string{"boil", "simmer", "heat", "mixture", "batter", "dough", "side", "top", "bottom", "minute", "hour", "second", "degree", "edge", "center", "surface", "layer", "half", "piece", "boiler"} {
		addNN(w)
	}
	for _, w := range nn {
		nns = append(nns, pluralOf(w))
	}
	return nn, nns
}

// pluralOf forms a regular English plural for corpus generation.
func pluralOf(w string) string {
	switch {
	case strings.HasSuffix(w, "y") && len(w) > 1 && !isVowel(w[len(w)-2]):
		return w[:len(w)-1] + "ies"
	case strings.HasSuffix(w, "s") || strings.HasSuffix(w, "sh") ||
		strings.HasSuffix(w, "ch") || strings.HasSuffix(w, "x") ||
		strings.HasSuffix(w, "z") || strings.HasSuffix(w, "o"):
		return w + "es"
	default:
		return w + "s"
	}
}

func isVowel(b byte) bool {
	switch b {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// verb inventories from the technique gazetteer.
func verbInventories() (vb, vbn, vbg []string) {
	for _, t := range gazetteer.TechniqueTerms {
		if strings.Contains(t, " ") || strings.Contains(t, "-") {
			continue
		}
		vb = append(vb, t)
	}
	for _, t := range gazetteer.StateTerms {
		if strings.Contains(t, " ") {
			continue
		}
		if strings.HasSuffix(t, "ed") || strings.HasSuffix(t, "en") || t == "cut" || t == "torn" || t == "ground" {
			vbn = append(vbn, t)
		}
	}
	vbg = vbgForms
	return vb, vbn, vbg
}

// Corpus generates the embedded gold-tagged training corpus. It is
// deterministic: templates are instantiated by cycling through the
// word inventories with co-prime strides so successive sentences vary.
func Corpus() []TaggedSentence {
	nn, nns := nounInventories()
	vb, vbn, _ := verbInventories()

	pick := func(list []string, i, stride int) string {
		return list[(i*stride)%len(list)]
	}

	var out []TaggedSentence
	add := func(words, tags []string) {
		if len(words) != len(tags) {
			panic("postag: corpus template length mismatch")
		}
		out = append(out, TaggedSentence{Words: words, Tags: tags})
	}

	n := 260 // instantiations per template family
	for i := 0; i < n; i++ {
		v1 := pick(vb, i, 7)
		v2 := pick(vb, i, 11)
		n1 := pick(nn, i, 5)
		n2 := pick(nn, i, 13)
		n3 := pick(nn, i, 17)
		p1 := pick(nns, i, 3)
		p2 := pick(nns, i, 19)
		dt := pick(determiners, i, 1)
		in1 := pick(preps, i, 1)
		in2 := pick(preps, i, 5)
		jj := pick(adjectives, i, 1)
		jj2 := pick(adjectives, i, 7)
		rb := pick(adverbs, i, 1)
		cd := pick(cardinals, i, 1)
		cc := pick(conjs, i, 1)
		st := pick(vbn, i, 3)
		rp := pick(particles, i, 1)
		pr := pick(pronouns, i, 1)
		md := pick(modals, i, 1)
		vz := pick(vbzForms, i, 1)
		vg := pick(vbgForms, i, 1)
		vd := pick(vbdForms, i, 1)

		// --- imperative instruction shapes ---
		add([]string{v1, dt, n1, "."},
			[]string{"VB", "DT", "NN", "."})
		add([]string{v1, dt, jj, n1, in1, dt, n2, "."},
			[]string{"VB", "DT", "JJ", "NN", "IN", "DT", "NN", "."})
		add([]string{v1, dt, n1, cc, dt, n2, in1, dt, n3, "."},
			[]string{"VB", "DT", "NN", "CC", "DT", "NN", "IN", "DT", "NN", "."})
		add([]string{v1, dt, n1, "to", dt, n2, "."},
			[]string{"VB", "DT", "NN", "TO", "DT", "NN", "."})
		add([]string{rb, v1, dt, n1, "."},
			[]string{"RB", "VB", "DT", "NN", "."})
		add([]string{v1, rp, dt, n1, "."},
			[]string{"VB", "RP", "DT", "NN", "."})
		add([]string{v1, in1, cd, p1, "."},
			[]string{"VB", "IN", "CD", "NNS", "."})
		add([]string{v1, dt, p1, in1, dt, jj, n1, "."},
			[]string{"VB", "DT", "NNS", "IN", "DT", "JJ", "NN", "."})
		add([]string{v1, "until", jj, cc, jj2, "."},
			[]string{"VB", "IN", "JJ", "CC", "JJ", "."})
		add([]string{v1, dt, n1, ",", v2, dt, n2, ",", cc, v2, rb, "."},
			[]string{"VB", "DT", "NN", ",", "VB", "DT", "NN", ",", "CC", "VB", "RB", "."})
		add([]string{v1, "to", "a", n1, ",", "then", v2, "."},
			[]string{"VB", "TO", "DT", "NN", ",", "RB", "VB", "."})
		add([]string{"when", dt, n1, vz, jj, ",", v1, dt, n2, "."},
			[]string{"WRB", "DT", "NN", "VBZ", "JJ", ",", "VB", "DT", "NN", "."})
		add([]string{pr, md, v2, dt, n1, in2, dt, n2, "."},
			[]string{"PRP", "MD", "VB", "DT", "NN", "IN", "DT", "NN", "."})
		add([]string{"there", vz, dt, jj, n1, in1, dt, n2, "."},
			[]string{"EX", "VBZ", "DT", "JJ", "NN", "IN", "DT", "NN", "."})
		add([]string{v1, dt, n1, "while", vg, dt, n2, "."},
			[]string{"VB", "DT", "NN", "IN", "VBG", "DT", "NN", "."})
		add([]string{dt, n1, vd, jj, "."},
			[]string{"DT", "NN", "VBD", "JJ", "."})
		add([]string{v1, dt, vg, n1, in1, dt, n2, "."},
			[]string{"VB", "DT", "VBG", "NN", "IN", "DT", "NN", "."})
		add([]string{v1, dt, n1, in1, "the", st, p2, "."},
			[]string{"VB", "DT", "NN", "IN", "DT", "VBN", "NNS", "."})

		// --- ingredient phrase shapes (the paper's main input) ---
		add([]string{cd, n1, n2},
			[]string{"CD", "NN", "NN"})
		add([]string{cd, p1, n2},
			[]string{"CD", "NNS", "NN"})
		add([]string{cd, n1, st, n2},
			[]string{"CD", "NN", "VBN", "NN"})
		add([]string{cd, jj, p1},
			[]string{"CD", "JJ", "NNS"})
		add([]string{cd, n1, n2, ",", st},
			[]string{"CD", "NN", "NN", ",", "VBN"})
		add([]string{cd, n1, jj, n2, ",", rb, st},
			[]string{"CD", "NN", "JJ", "NN", ",", "RB", "VBN"})
		add([]string{cd, "(", cd, n1, ")", n2, n3, ",", st},
			[]string{"CD", "(", "CD", "NN", ")", "NN", "NN", ",", "VBN"})
		add([]string{cd, jj, n1, ",", st, cc, st},
			[]string{"CD", "JJ", "NN", ",", "VBN", "CC", "VBN"})
		add([]string{jj, n1, ",", "to", n2},
			[]string{"JJ", "NN", ",", "TO", "NN"})
		add([]string{cd, n1, jj, jj2, n2, n3},
			[]string{"CD", "NN", "JJ", "JJ", "NN", "NN"})
		add([]string{cd, p1, st, n1},
			[]string{"CD", "NNS", "VBN", "NN"})

		// --- auxiliary shapes for the rarer tags ---
		if i < len(comparJJ) {
			add([]string{dt, comparJJ[i], n1, vz, comparRB[i%len(comparRB)], jj, "."},
				[]string{"DT", "JJR", "NN", "VBZ", "RBR", "JJ", "."})
			add([]string{dt, superlJJ[i], n1, vz, superlRB[i%len(superlRB)], jj, "."},
				[]string{"DT", "JJS", "NN", "VBZ", "RBS", "JJ", "."})
		}
		if i < len(whDets) {
			add([]string{whDets[i], n1, pr, md, "use", vz, "up", "to", pr, "."},
				[]string{"WDT", "NN", "PRP", "MD", "VB", "VBZ", "RP", "TO", "PRP", "."})
		}
		if i < len(whPronouns) {
			add([]string{whPronouns[i], vz, dt, n1, "?"},
				[]string{"WP", "VBZ", "DT", "NN", "."})
		}
		if i < len(whAdverbs) {
			add([]string{whAdverbs[i], "do", pronouns[i%len(pronouns)], "add", dt, n1, "?"},
				[]string{"WRB", "VBP", "PRP", "VB", "DT", "NN", "."})
		}
		if i < len(possessives) {
			add([]string{v1, possessives[i], n1, in1, dt, n2, "."},
				[]string{"VB", "PRP$", "NN", "IN", "DT", "NN", "."})
		}
		if i < len(properNouns) {
			add([]string{v1, "to", cd, "°", properNouns[i], "."},
				[]string{"VB", "TO", "CD", "SYM", "NNP", "."})
			add([]string{cd, n1, properNouns[i], n2},
				[]string{"CD", "NN", "NNP", "NN"})
		}
		if i%23 == 0 {
			add([]string{"all", dt, p1, "and", "half", dt, n1, "."},
				[]string{"PDT", "DT", "NNS", "CC", "PDT", "DT", "NN", "."})
			add([]string{"cook", "until", "al", "dente", "."},
				[]string{"VB", "IN", "FW", "FW", "."})
			add([]string{"the", n1, "'s", n2, vz, jj, "."},
				[]string{"DT", "NN", "POS", "NN", "VBZ", "JJ", "."})
		}
	}
	return out
}
