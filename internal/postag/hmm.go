package postag

import (
	"math"
	"strings"
)

// HMM is a bigram hidden-Markov-model POS tagger: multinomial
// emissions with add-one smoothing, a suffix back-off model for
// unknown words, and Viterbi decoding. It is the second tagging
// backend (the classical alternative to the discriminative perceptron
// tagger), used to show the pipeline's POS-vector clustering is robust
// to the choice of tagger.
type HMM struct {
	tags []string
	// logInit[t], logTrans[t1][t2], logEmit[t]["word"].
	logInit  []float64
	logTrans [][]float64
	logEmit  []map[string]float64
	// unknown-word back-off: logSuffix[t][suffix] over 1–3 char
	// suffixes, and logFloor as the final fallback. The floor is shared
	// across tags: a per-tag floor of 1/(total_t+V) would
	// systematically favour rare tags on unknown words.
	logSuffix []map[string]float64
	logFloor  float64
	vocab     map[string]bool
}

// TrainHMM estimates the model from a gold-tagged corpus.
func TrainHMM(corpus []TaggedSentence) *HMM {
	tagID := map[string]int{}
	var tags []string
	intern := func(t string) int {
		if id, ok := tagID[t]; ok {
			return id
		}
		tagID[t] = len(tags)
		tags = append(tags, t)
		return len(tags) - 1
	}
	// count
	type counts struct {
		init   map[int]float64
		trans  map[[2]int]float64
		emit   map[int]map[string]float64
		suffix map[int]map[string]float64
		total  map[int]float64
	}
	c := counts{
		init:   map[int]float64{},
		trans:  map[[2]int]float64{},
		emit:   map[int]map[string]float64{},
		suffix: map[int]map[string]float64{},
		total:  map[int]float64{},
	}
	vocab := map[string]bool{}
	for _, s := range corpus {
		prev := -1
		for i, w := range s.Words {
			// punctuation is handled deterministically at decode time;
			// keep it out of the state space entirely (transparent to
			// transitions).
			if _, isPunct := punctTagFor(w); isPunct || IsPunctTag(s.Tags[i]) {
				continue
			}
			t := intern(s.Tags[i])
			lw := strings.ToLower(w)
			vocab[lw] = true
			if c.emit[t] == nil {
				c.emit[t] = map[string]float64{}
				c.suffix[t] = map[string]float64{}
			}
			c.emit[t][lw]++
			c.total[t]++
			for n := 1; n <= 3 && n <= len(lw); n++ {
				c.suffix[t][lw[len(lw)-n:]]++
			}
			if prev < 0 {
				c.init[t]++
			} else {
				c.trans[[2]int{prev, t}]++
			}
			prev = t
		}
	}

	T := len(tags)
	h := &HMM{
		tags:      tags,
		logInit:   make([]float64, T),
		logTrans:  make([][]float64, T),
		logEmit:   make([]map[string]float64, T),
		logSuffix: make([]map[string]float64, T),
		vocab:     vocab,
	}
	var maxTotal float64
	for _, n := range c.total {
		if n > maxTotal {
			maxTotal = n
		}
	}
	h.logFloor = math.Log(1 / (maxTotal + float64(len(vocab)) + 1))
	var initTotal float64
	for _, n := range c.init {
		initTotal += n
	}
	for t := 0; t < T; t++ {
		h.logInit[t] = math.Log((c.init[t] + 1) / (initTotal + float64(T)))
		h.logTrans[t] = make([]float64, T)
		var rowTotal float64
		for t2 := 0; t2 < T; t2++ {
			rowTotal += c.trans[[2]int{t, t2}]
		}
		for t2 := 0; t2 < T; t2++ {
			h.logTrans[t][t2] = math.Log((c.trans[[2]int{t, t2}] + 1) / (rowTotal + float64(T)))
		}
		V := float64(len(vocab))
		h.logEmit[t] = make(map[string]float64, len(c.emit[t]))
		for w, n := range c.emit[t] {
			h.logEmit[t][w] = math.Log((n + 1) / (c.total[t] + V))
		}
		h.logSuffix[t] = make(map[string]float64, len(c.suffix[t]))
		for suf, n := range c.suffix[t] {
			h.logSuffix[t][suf] = math.Log((n + 1) / (c.total[t] + V))
		}
	}
	return h
}

// emission returns log P(word | tag), backing off to suffixes for
// unknown words, with a numeric-shape shortcut to CD.
func (h *HMM) emission(t int, lw string) float64 {
	if p, ok := h.logEmit[t][lw]; ok {
		return p
	}
	if h.vocab[lw] {
		// known word never seen with this tag: shared smoothed floor.
		return h.logFloor
	}
	if looksNumeric(lw) {
		if h.tags[t] == "CD" {
			return math.Log(0.9)
		}
		return h.logFloor * 2
	}
	// take the best-estimated suffix evidence rather than the longest:
	// a rare long suffix ("ats", seen only on "oats") must not shadow a
	// well-attested short one ("s" over all plurals).
	best := math.Inf(-1)
	for n := 3; n >= 1; n-- {
		if n > len(lw) {
			continue
		}
		if p, ok := h.logSuffix[t][lw[len(lw)-n:]]; ok && p > best {
			best = p
		}
	}
	if !math.IsInf(best, -1) {
		return best
	}
	return h.logFloor
}

// Tag runs Viterbi decoding; punctuation is handled deterministically
// like the perceptron tagger.
func (h *HMM) Tag(words []string) []string {
	n := len(words)
	out := make([]string, n)
	if n == 0 {
		return out
	}
	T := len(h.tags)
	delta := make([][]float64, n)
	back := make([][]int, n)
	for i := range delta {
		delta[i] = make([]float64, T)
		back[i] = make([]int, T)
	}
	lw := make([]string, n)
	punct := make([]bool, n)
	for i, w := range words {
		lw[i] = strings.ToLower(w)
		if pt, ok := punctTagFor(w); ok {
			punct[i] = true
			out[i] = pt
		}
	}
	for t := 0; t < T; t++ {
		delta[0][t] = h.logInit[t] + h.emission(t, lw[0])
	}
	for i := 1; i < n; i++ {
		for t := 0; t < T; t++ {
			best, bestScore := 0, math.Inf(-1)
			for tp := 0; tp < T; tp++ {
				if s := delta[i-1][tp] + h.logTrans[tp][t]; s > bestScore {
					bestScore = s
					best = tp
				}
			}
			delta[i][t] = bestScore + h.emission(t, lw[i])
			back[i][t] = best
		}
	}
	bestLast, bestScore := 0, math.Inf(-1)
	for t := 0; t < T; t++ {
		if delta[n-1][t] > bestScore {
			bestScore = delta[n-1][t]
			bestLast = t
		}
	}
	path := make([]int, n)
	path[n-1] = bestLast
	for i := n - 1; i > 0; i-- {
		path[i-1] = back[i][path[i]]
	}
	for i := range out {
		if !punct[i] {
			out[i] = h.tags[path[i]]
		}
	}
	return out
}
