package postag

import (
	"math"
	"strings"
	"sync"

	"recipemodel/internal/intern"
)

// HMM is a bigram hidden-Markov-model POS tagger: multinomial
// emissions with add-one smoothing, a suffix back-off model for
// unknown words, and Viterbi decoding. It is the second tagging
// backend (the classical alternative to the discriminative perceptron
// tagger), used to show the pipeline's POS-vector clustering is robust
// to the choice of tagger.
type HMM struct {
	tags []string
	// logInit[t], logTrans[t1][t2], logEmit[t]["word"].
	logInit  []float64
	logTrans [][]float64
	logEmit  []map[string]float64
	// unknown-word back-off: logSuffix[t][suffix] over 1–3 char
	// suffixes, and logFloor as the final fallback. The floor is shared
	// across tags: a per-tag floor of 1/(total_t+V) would
	// systematically favour rare tags on unknown words.
	logSuffix []map[string]float64
	logFloor  float64
	vocab     map[string]bool

	// Packed decode tables, built by finalize at the end of training.
	// The maps above stay the source of truth; Tag decodes against
	// these flat arrays with pooled scratch so the hot path performs
	// no string hashing and no per-call lattice allocation. The packed
	// values are copied bit-for-bit from the maps, so decoding is
	// bit-identical to the map path (pinned by the reference test).
	vocabTab   *intern.Table
	emitPacked []float64 // emitPacked[wid*T+t]; logFloor where unseen with t
	sufTab     *intern.Table
	sufPacked  []float64 // sufPacked[sid*T+t]; -Inf where (suffix,tag) unseen
	cdTag      int       // index of "CD", or -1
	logCD      float64   // log 0.9, the numeric-shape shortcut
	pool       sync.Pool // *hmmScratch
}

// hmmScratch is one Tag call's working memory. Every slice is
// length-reset and fully overwritten before reads.
type hmmScratch struct {
	low    []byte // lowered-token arena
	lowOff []int32
	wid    []int32    // vocab ID per token, intern.None if unknown
	num    []bool     // looksNumeric per unknown token
	suf    [][3]int32 // suffix IDs (n=3,2,1) per token
	punct  []bool
	delta  []float64 // n*T
	back   []int32   // n*T
	path   []int32
}

// TrainHMM estimates the model from a gold-tagged corpus.
func TrainHMM(corpus []TaggedSentence) *HMM {
	tagID := map[string]int{}
	var tags []string
	intern := func(t string) int {
		if id, ok := tagID[t]; ok {
			return id
		}
		tagID[t] = len(tags)
		tags = append(tags, t)
		return len(tags) - 1
	}
	// count
	type counts struct {
		init   map[int]float64
		trans  map[[2]int]float64
		emit   map[int]map[string]float64
		suffix map[int]map[string]float64
		total  map[int]float64
	}
	c := counts{
		init:   map[int]float64{},
		trans:  map[[2]int]float64{},
		emit:   map[int]map[string]float64{},
		suffix: map[int]map[string]float64{},
		total:  map[int]float64{},
	}
	vocab := map[string]bool{}
	for _, s := range corpus {
		prev := -1
		for i, w := range s.Words {
			// punctuation is handled deterministically at decode time;
			// keep it out of the state space entirely (transparent to
			// transitions).
			if _, isPunct := punctTagFor(w); isPunct || IsPunctTag(s.Tags[i]) {
				continue
			}
			t := intern(s.Tags[i])
			lw := strings.ToLower(w)
			vocab[lw] = true
			if c.emit[t] == nil {
				c.emit[t] = map[string]float64{}
				c.suffix[t] = map[string]float64{}
			}
			c.emit[t][lw]++
			c.total[t]++
			for n := 1; n <= 3 && n <= len(lw); n++ {
				c.suffix[t][lw[len(lw)-n:]]++
			}
			if prev < 0 {
				c.init[t]++
			} else {
				c.trans[[2]int{prev, t}]++
			}
			prev = t
		}
	}

	T := len(tags)
	h := &HMM{
		tags:      tags,
		logInit:   make([]float64, T),
		logTrans:  make([][]float64, T),
		logEmit:   make([]map[string]float64, T),
		logSuffix: make([]map[string]float64, T),
		vocab:     vocab,
	}
	var maxTotal float64
	for _, n := range c.total {
		if n > maxTotal {
			maxTotal = n
		}
	}
	h.logFloor = math.Log(1 / (maxTotal + float64(len(vocab)) + 1))
	var initTotal float64
	for _, n := range c.init {
		initTotal += n
	}
	for t := 0; t < T; t++ {
		h.logInit[t] = math.Log((c.init[t] + 1) / (initTotal + float64(T)))
		h.logTrans[t] = make([]float64, T)
		var rowTotal float64
		for t2 := 0; t2 < T; t2++ {
			rowTotal += c.trans[[2]int{t, t2}]
		}
		for t2 := 0; t2 < T; t2++ {
			h.logTrans[t][t2] = math.Log((c.trans[[2]int{t, t2}] + 1) / (rowTotal + float64(T)))
		}
		V := float64(len(vocab))
		h.logEmit[t] = make(map[string]float64, len(c.emit[t]))
		for w, n := range c.emit[t] {
			h.logEmit[t][w] = math.Log((n + 1) / (c.total[t] + V))
		}
		h.logSuffix[t] = make(map[string]float64, len(c.suffix[t]))
		for suf, n := range c.suffix[t] {
			h.logSuffix[t][suf] = math.Log((n + 1) / (c.total[t] + V))
		}
	}
	h.finalize()
	return h
}

// finalize builds the packed decode tables from the trained maps.
func (h *HMM) finalize() {
	T := len(h.tags)
	h.vocabTab = intern.FromMapKeys(h.vocab)
	h.emitPacked = make([]float64, h.vocabTab.Len()*T)
	for i := range h.emitPacked {
		h.emitPacked[i] = h.logFloor
	}
	sufSet := make(map[string]bool)
	for t := 0; t < T; t++ {
		for w, p := range h.logEmit[t] {
			h.emitPacked[int(h.vocabTab.Lookup(w))*T+t] = p
		}
		for s := range h.logSuffix[t] {
			sufSet[s] = true
		}
	}
	h.sufTab = intern.FromMapKeys(sufSet)
	h.sufPacked = make([]float64, h.sufTab.Len()*T)
	for i := range h.sufPacked {
		h.sufPacked[i] = math.Inf(-1)
	}
	for t := 0; t < T; t++ {
		for s, p := range h.logSuffix[t] {
			h.sufPacked[int(h.sufTab.Lookup(s))*T+t] = p
		}
	}
	h.cdTag = -1
	for t, tag := range h.tags {
		if tag == "CD" {
			h.cdTag = t
		}
	}
	h.logCD = math.Log(0.9)
}

// emission returns log P(word | tag), backing off to suffixes for
// unknown words, with a numeric-shape shortcut to CD.
func (h *HMM) emission(t int, lw string) float64 {
	if p, ok := h.logEmit[t][lw]; ok {
		return p
	}
	if h.vocab[lw] {
		// known word never seen with this tag: shared smoothed floor.
		return h.logFloor
	}
	if looksNumeric(lw) {
		if h.tags[t] == "CD" {
			return math.Log(0.9)
		}
		return h.logFloor * 2
	}
	// take the best-estimated suffix evidence rather than the longest:
	// a rare long suffix ("ats", seen only on "oats") must not shadow a
	// well-attested short one ("s" over all plurals).
	best := math.Inf(-1)
	for n := 3; n >= 1; n-- {
		if n > len(lw) {
			continue
		}
		if p, ok := h.logSuffix[t][lw[len(lw)-n:]]; ok && p > best {
			best = p
		}
	}
	if !math.IsInf(best, -1) {
		return best
	}
	return h.logFloor
}

func (h *HMM) getScratch(n, T int) *hmmScratch {
	s, _ := h.pool.Get().(*hmmScratch)
	if s == nil {
		s = &hmmScratch{}
	}
	need := n * T
	if cap(s.delta) < need {
		s.delta = make([]float64, need)
		s.back = make([]int32, need)
	}
	s.delta = s.delta[:need]
	s.back = s.back[:need]
	return s
}

// emitPackedAt returns log P(word i | tag t) from the packed tables —
// the exact float emission() computes from the maps.
func (h *HMM) emitPackedAt(s *hmmScratch, t, i, T int) float64 {
	if wid := s.wid[i]; wid != intern.None {
		return h.emitPacked[int(wid)*T+t]
	}
	if s.num[i] {
		if t == h.cdTag {
			return h.logCD
		}
		return h.logFloor * 2
	}
	best := math.Inf(-1)
	for k := 0; k < 3; k++ {
		if sid := s.suf[i][k]; sid != intern.None {
			if p := h.sufPacked[int(sid)*T+t]; p > best {
				best = p
			}
		}
	}
	if !math.IsInf(best, -1) {
		return best
	}
	return h.logFloor
}

// Tag runs Viterbi decoding; punctuation is handled deterministically
// like the perceptron tagger. Decoding goes through the packed tables
// and pooled scratch (zero per-token heap allocation); output is
// bit-identical to the map-based reference (see TestHMMTagMatchesReference).
func (h *HMM) Tag(words []string) []string {
	n := len(words)
	out := make([]string, n)
	if n == 0 {
		return out
	}
	T := len(h.tags)
	s := h.getScratch(n, T)
	defer h.pool.Put(s)

	// Per-token precomputation: lowered bytes, vocab/suffix IDs,
	// numeric shape, punctuation.
	s.low = s.low[:0]
	s.lowOff = append(s.lowOff[:0], 0)
	s.wid = s.wid[:0]
	s.num = s.num[:0]
	s.suf = s.suf[:0]
	s.punct = s.punct[:0]
	for i, w := range words {
		start := len(s.low)
		s.low = intern.AppendLower(s.low, w)
		lw := s.low[start:]
		s.lowOff = append(s.lowOff, int32(len(s.low)))
		wid := h.vocabTab.LookupBytes(lw)
		numeric := false
		suf := [3]int32{intern.None, intern.None, intern.None}
		if wid == intern.None {
			numeric = looksNumericBytes(lw)
			if !numeric {
				for k, sn := 0, 3; sn >= 1; k, sn = k+1, sn-1 {
					if sn <= len(lw) {
						suf[k] = h.sufTab.LookupBytes(lw[len(lw)-sn:])
					}
				}
			}
		}
		s.wid = append(s.wid, wid)
		s.num = append(s.num, numeric)
		s.suf = append(s.suf, suf)
		if pt, ok := punctTagFor(w); ok {
			s.punct = append(s.punct, true)
			out[i] = pt
		} else {
			s.punct = append(s.punct, false)
		}
	}

	for t := 0; t < T; t++ {
		s.delta[t] = h.logInit[t] + h.emitPackedAt(s, t, 0, T)
	}
	for i := 1; i < n; i++ {
		prev := s.delta[(i-1)*T : i*T]
		cur := s.delta[i*T : (i+1)*T]
		curBack := s.back[i*T : (i+1)*T]
		for t := 0; t < T; t++ {
			best, bestScore := int32(0), math.Inf(-1)
			for tp := 0; tp < T; tp++ {
				if sc := prev[tp] + h.logTrans[tp][t]; sc > bestScore {
					bestScore = sc
					best = int32(tp)
				}
			}
			cur[t] = bestScore + h.emitPackedAt(s, t, i, T)
			curBack[t] = best
		}
	}
	bestLast, bestScore := int32(0), math.Inf(-1)
	last := s.delta[(n-1)*T:]
	for t := 0; t < T; t++ {
		if last[t] > bestScore {
			bestScore = last[t]
			bestLast = int32(t)
		}
	}
	s.path = s.path[:0]
	for i := 0; i < n; i++ {
		s.path = append(s.path, 0)
	}
	s.path[n-1] = bestLast
	for i := n - 1; i > 0; i-- {
		s.path[i-1] = s.back[i*T+int(s.path[i])]
	}
	for i := range out {
		if !s.punct[i] {
			out[i] = h.tags[s.path[i]]
		}
	}
	return out
}

// looksNumericBytes mirrors looksNumeric over a byte slice.
func looksNumericBytes(w []byte) bool {
	if len(w) == 0 {
		return false
	}
	digits := 0
	for i := 0; i < len(w); i++ {
		c := w[i]
		switch {
		case c >= '0' && c <= '9':
			digits++
		case c == '/' || c == '.' || c == '-' || c == ' ' || c == ',':
		default:
			return false
		}
	}
	return digits > 0
}
