package postag

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// tagRef is the original map-based Viterbi decode, kept verbatim as
// the differential reference for the packed rewrite. It calls the
// still-live emission() so the packed tables are checked against the
// maps they were built from.
func (h *HMM) tagRef(words []string) []string {
	n := len(words)
	out := make([]string, n)
	if n == 0 {
		return out
	}
	T := len(h.tags)
	delta := make([][]float64, n)
	back := make([][]int, n)
	for i := range delta {
		delta[i] = make([]float64, T)
		back[i] = make([]int, T)
	}
	lw := make([]string, n)
	punct := make([]bool, n)
	for i, w := range words {
		lw[i] = strings.ToLower(w)
		if pt, ok := punctTagFor(w); ok {
			punct[i] = true
			out[i] = pt
		}
	}
	for t := 0; t < T; t++ {
		delta[0][t] = h.logInit[t] + h.emission(t, lw[0])
	}
	for i := 1; i < n; i++ {
		for t := 0; t < T; t++ {
			best, bestScore := 0, math.Inf(-1)
			for tp := 0; tp < T; tp++ {
				if s := delta[i-1][tp] + h.logTrans[tp][t]; s > bestScore {
					bestScore = s
					best = tp
				}
			}
			delta[i][t] = bestScore + h.emission(t, lw[i])
			back[i][t] = best
		}
	}
	bestLast, bestScore := 0, math.Inf(-1)
	for t := 0; t < T; t++ {
		if delta[n-1][t] > bestScore {
			bestScore = delta[n-1][t]
			bestLast = t
		}
	}
	path := make([]int, n)
	path[n-1] = bestLast
	for i := n - 1; i > 0; i-- {
		path[i-1] = back[i][path[i]]
	}
	for i := range out {
		if !punct[i] {
			out[i] = h.tags[path[i]]
		}
	}
	return out
}

// TestHMMTagMatchesReference pins the packed decode against the
// map-based reference on corpus sentences, unknown words, numerics,
// punctuation, and dirty input.
func TestHMMTagMatchesReference(t *testing.T) {
	h := TrainHMM(Corpus())
	var phrases [][]string
	for _, s := range Corpus()[:50] {
		phrases = append(phrases, s.Words)
	}
	phrases = append(phrases,
		[]string{"Preheat", "the", "oven", "to", "350", "degrees"},
		[]string{"unknownword", "flibbertigibbet", "zs"},
		[]string{"1", "1/2", "2-4", "3.5", ","},
		[]string{"(", "8", "ounce", ")", "!", "?"},
		[]string{"½", "sauté", "über", "\xff\xfe"},
		[]string{""},
		[]string{"x"},
	)
	for _, words := range phrases {
		want := h.tagRef(words)
		got := h.Tag(words)
		if strings.Join(got, " ") != strings.Join(want, " ") {
			t.Errorf("Tag(%q): got %v, want %v", words, got, want)
		}
	}
}

// TestHMMTagRandomizedDifferential mixes known corpus words with
// generated unknowns and punctuation.
func TestHMMTagRandomizedDifferential(t *testing.T) {
	corpus := Corpus()
	h := TrainHMM(corpus)
	var vocab []string
	for _, s := range corpus[:30] {
		vocab = append(vocab, s.Words...)
	}
	vocab = append(vocab, "zzz", "9-12", "x½y", "(", ")", ".", ",", "", "ments", "ingly", "\xff")
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(12)
		words := make([]string, n)
		for i := range words {
			words[i] = vocab[rng.Intn(len(vocab))]
		}
		want := h.tagRef(words)
		got := h.Tag(words)
		if strings.Join(got, " ") != strings.Join(want, " ") {
			t.Fatalf("trial %d: Tag(%q): got %v, want %v", trial, words, got, want)
		}
	}
}

func BenchmarkHMMTag(b *testing.B) {
	h := TrainHMM(Corpus())
	words := []string{"Bring", "the", "water", "to", "a", "boil", "in", "a", "large", "pot", "."}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Tag(words)
	}
}

func BenchmarkHMMTagRef(b *testing.B) {
	h := TrainHMM(Corpus())
	words := []string{"Bring", "the", "water", "to", "a", "boil", "in", "a", "large", "pot", "."}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.tagRef(words)
	}
}
