package postag

import (
	"strings"
	"testing"
)

func splitCorpus() (train, test []TaggedSentence) {
	for i, s := range Corpus() {
		if i%10 == 0 {
			test = append(test, s)
		} else {
			train = append(train, s)
		}
	}
	return train, test
}

func TestHMMHeldOutAccuracy(t *testing.T) {
	train, test := splitCorpus()
	h := TrainHMM(train)
	var correct, total int
	for _, s := range test {
		got := h.Tag(s.Words)
		for i := range got {
			if got[i] == s.Tags[i] {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.93 {
		t.Fatalf("HMM held-out accuracy = %.4f, want >= 0.93", acc)
	}
}

func TestHMMBasicPhrases(t *testing.T) {
	h := TrainHMM(Corpus())
	got := h.Tag(strings.Fields("3 teaspoons olive oil"))
	if got[0] != "CD" {
		t.Fatalf("number tag = %q", got[0])
	}
	if got[1] != "NNS" {
		t.Fatalf("plural tag = %q", got[1])
	}
}

func TestHMMUnknownWordSuffixBackoff(t *testing.T) {
	h := TrainHMM(Corpus())
	// "kumquats" unseen → NNS via suffix; "flumbled" unseen → VBN-ish
	got := h.Tag([]string{"2", "kumquats"})
	if got[1] != "NNS" {
		t.Fatalf("unknown plural = %q", got[1])
	}
}

func TestHMMPunctuation(t *testing.T) {
	h := TrainHMM(Corpus())
	got := h.Tag(strings.Fields("add the salt , then serve ."))
	if got[3] != "," || got[len(got)-1] != "." {
		t.Fatalf("punct tags = %v", got)
	}
}

func TestHMMEmpty(t *testing.T) {
	h := TrainHMM(Corpus())
	if got := h.Tag(nil); len(got) != 0 {
		t.Fatalf("empty = %v", got)
	}
}

func TestHMMAgreesWithPerceptronOnClusteringVectors(t *testing.T) {
	// The pipeline claim: the POS-vector clustering is robust to the
	// tagger backend. Structurally identical phrases must still get
	// identical vectors under the HMM tagger.
	h := TrainHMM(Corpus())
	a := Vectorize(h.Tag(strings.Fields("3 teaspoons olive oil")))
	b := Vectorize(h.Tag(strings.Fields("2 tablespoons canola oil")))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("vectors differ at %s", PTBTags[i])
		}
	}
}
