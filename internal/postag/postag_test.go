package postag

import (
	"strings"
	"testing"
)

func TestTagSetHas36Tags(t *testing.T) {
	if len(PTBTags) != 36 {
		t.Fatalf("PTB tagset has %d tags, want 36", len(PTBTags))
	}
	seen := map[string]bool{}
	for _, tag := range PTBTags {
		if seen[tag] {
			t.Fatalf("duplicate tag %q", tag)
		}
		seen[tag] = true
	}
}

func TestTagIndex(t *testing.T) {
	if TagIndex("NN") < 0 || TagIndex("VBG") < 0 {
		t.Fatal("known tags missing")
	}
	if TagIndex(".") != -1 || TagIndex(",") != -1 {
		t.Fatal("punctuation should be outside the 36")
	}
}

func TestPunctTagFor(t *testing.T) {
	cases := map[string]string{
		".": ".", "!": ".", ",": ",", ";": ":", "(": "(", ")": ")",
		"°": "SYM", "%": "SYM",
	}
	for in, want := range cases {
		got, ok := punctTagFor(in)
		if !ok || got != want {
			t.Errorf("punctTagFor(%q) = %q,%v want %q", in, got, ok, want)
		}
	}
	if _, ok := punctTagFor("salt"); ok {
		t.Error("word misidentified as punctuation")
	}
}

func TestCorpusWellFormed(t *testing.T) {
	corpus := Corpus()
	if len(corpus) < 2000 {
		t.Fatalf("corpus too small: %d sentences", len(corpus))
	}
	tagsSeen := map[string]bool{}
	for _, s := range corpus {
		if len(s.Words) != len(s.Tags) {
			t.Fatal("length mismatch in corpus")
		}
		for _, tag := range s.Tags {
			tagsSeen[tag] = true
		}
	}
	// the corpus must exercise (nearly) the whole 36-tag inventory.
	missing := []string{}
	for _, tag := range PTBTags {
		if !tagsSeen[tag] {
			missing = append(missing, tag)
		}
	}
	// LS, UH, NNPS, WP$ are legitimately absent from recipe text.
	if len(missing) > 4 {
		t.Fatalf("too many tags missing from corpus: %v", missing)
	}
}

func TestTaggerOnIngredientPhrases(t *testing.T) {
	tg := Default()
	cases := []struct {
		words []string
		want  []string
	}{
		{strings.Fields("3 teaspoons olive oil"), []string{"CD", "NNS", "NN", "NN"}},
		{strings.Fields("2 tablespoons all-purpose flour"), []string{"CD", "NNS", "JJ", "NN"}},
		{strings.Fields("2-3 medium tomatoes"), []string{"CD", "JJ", "NNS"}},
	}
	for _, c := range cases {
		got := tg.Tag(c.words)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("Tag(%v) = %v, want %v", c.words, got, c.want)
				break
			}
		}
	}
}

func TestTaggerOnInstruction(t *testing.T) {
	tg := Default()
	words := strings.Fields("bring the water to a boil in a large pot .")
	got := tg.Tag(words)
	want := []string{"VB", "DT", "NN", "TO", "DT", "NN", "IN", "DT", "JJ", "NN", "."}
	mismatches := 0
	for i := range want {
		if got[i] != want[i] {
			mismatches++
		}
	}
	if mismatches > 1 {
		t.Fatalf("Tag = %v, want %v (%d mismatches)", got, want, mismatches)
	}
}

func TestTaggerNumbersAreCD(t *testing.T) {
	tg := Default()
	for _, n := range []string{"7", "350", "1/2", "1 1/2", "2-3", "99"} {
		got := tg.Tag([]string{n, "cups", "sugar"})
		if got[0] != "CD" {
			t.Errorf("Tag(%q) = %q, want CD", n, got[0])
		}
	}
}

func TestTaggerPluralsAreNNS(t *testing.T) {
	tg := Default()
	// unseen plurals should still be NNS via the suffix features.
	got := tg.Tag([]string{"2", "kumquats"})
	if got[1] != "NNS" {
		t.Errorf("unseen plural tagged %q, want NNS", got[1])
	}
}

func TestTaggerHeldOutAccuracy(t *testing.T) {
	// Split the embedded corpus into train/test deterministically and
	// require high held-out token accuracy.
	corpus := Corpus()
	var train, test []TaggedSentence
	for i, s := range corpus {
		if i%10 == 0 {
			test = append(test, s)
		} else {
			train = append(train, s)
		}
	}
	tg := Train(train, TrainConfig{Epochs: 5, Seed: 2})
	var correct, total int
	for _, s := range test {
		got := tg.Tag(s.Words)
		for i := range got {
			if got[i] == s.Tags[i] {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.97 {
		t.Fatalf("held-out accuracy = %.4f, want >= 0.97", acc)
	}
}

func TestVectorize(t *testing.T) {
	v := Vectorize([]string{"CD", "NN", "NN", ",", "VBN"})
	if len(v) != Dim {
		t.Fatalf("vector dim = %d", len(v))
	}
	if v[TagIndex("NN")] != 2 || v[TagIndex("CD")] != 1 || v[TagIndex("VBN")] != 1 {
		t.Fatalf("vector = %v", v)
	}
	var sum float64
	for _, x := range v {
		sum += x
	}
	if sum != 4 { // the comma is not counted
		t.Fatalf("vector mass = %v, want 4", sum)
	}
}

func TestVectorizePhrase(t *testing.T) {
	tg := Default()
	v := tg.VectorizePhrase(strings.Fields("3 teaspoons olive oil"))
	if len(v) != 36 {
		t.Fatalf("dim = %d", len(v))
	}
	var sum float64
	for _, x := range v {
		sum += x
	}
	if sum != 4 {
		t.Fatalf("mass = %v", sum)
	}
}

func TestSimilarPhrasesHaveIdenticalVectors(t *testing.T) {
	// the paper's motivating example (§II.E): these two phrases have
	// the same lexical structure, so their POS vectors must coincide.
	tg := Default()
	a := tg.VectorizePhrase(strings.Fields("3 teaspoons olive oil"))
	b := tg.VectorizePhrase(strings.Fields("2 tablespoons canola oil"))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("vectors differ at %s: %v vs %v", PTBTags[i], a, b)
		}
	}
}

func TestShape(t *testing.T) {
	cases := map[string]string{
		"Tomato": "Xx", "USA": "X", "low-fat": "x-x", "350": "d",
		"1/2": "d/d",
	}
	for in, want := range cases {
		if got := shape(in); got != want {
			t.Errorf("shape(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLooksNumeric(t *testing.T) {
	for _, s := range []string{"1", "1/2", "1 1/2", "2-3", "2.5"} {
		if !looksNumeric(s) {
			t.Errorf("looksNumeric(%q) = false", s)
		}
	}
	for _, s := range []string{"", "half", "a-b", "-", "/"} {
		if looksNumeric(s) {
			t.Errorf("looksNumeric(%q) = true", s)
		}
	}
}

func TestDefaultIsSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default should return the same tagger")
	}
}
