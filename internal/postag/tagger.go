package postag

import (
	"strings"
	"sync"

	"recipemodel/internal/perceptron"
)

// Tagger is a greedy left-to-right averaged-perceptron POS tagger.
type Tagger struct {
	model *perceptron.Model
	// classes holds the tag inventory in model order (the 36 PTB tags;
	// punctuation is handled deterministically before the model runs).
	classes []string
}

// TrainConfig controls tagger training.
type TrainConfig struct {
	Epochs int // default 5
	Seed   int64
}

// Train fits a tagger on the given gold-tagged corpus.
func Train(corpus []TaggedSentence, cfg TrainConfig) *Tagger {
	t := &Tagger{classes: append([]string(nil), PTBTags...)}
	t.model = perceptron.New(t.classes)

	var examples []perceptron.Example
	for _, sent := range corpus {
		prev, prev2 := "-START-", "-START2-"
		for i, w := range sent.Words {
			gold := sent.Tags[i]
			if _, ok := punctTagFor(w); ok {
				prev2, prev = prev, gold
				continue
			}
			id := t.model.ClassID(gold)
			if id < 0 {
				// tag outside the 36 (stray punctuation gold): skip.
				prev2, prev = prev, gold
				continue
			}
			examples = append(examples, perceptron.Example{
				Features: features(sent.Words, i, prev, prev2),
				Class:    id,
			})
			prev2, prev = prev, gold
		}
	}
	t.model.Train(examples, perceptron.TrainConfig{Epochs: cfg.Epochs, Seed: cfg.Seed})
	return t
}

// Tag assigns a PTB tag to every token.
func (t *Tagger) Tag(words []string) []string {
	tags := make([]string, len(words))
	prev, prev2 := "-START-", "-START2-"
	for i, w := range words {
		if pt, ok := punctTagFor(w); ok {
			tags[i] = pt
		} else {
			tags[i] = t.model.PredictLabel(features(words, i, prev, prev2))
		}
		prev2, prev = prev, tags[i]
	}
	return tags
}

// features extracts the perceptron feature set for position i. The
// templates follow the classic perceptron-tagger recipe: word
// identity, affixes, shape, and the two previous predicted tags.
func features(words []string, i int, prev, prev2 string) []string {
	w := words[i]
	lw := strings.ToLower(w)
	fs := make([]string, 0, 20)
	fs = append(fs,
		"bias",
		"w="+normWord(lw),
		"suf3="+suffix(lw, 3),
		"suf2="+suffix(lw, 2),
		"suf1="+suffix(lw, 1),
		"pre1="+prefix(lw, 1),
		"shape="+shape(w),
		"t-1="+prev,
		"t-2t-1="+prev2+"|"+prev,
	)
	if i > 0 {
		pw := strings.ToLower(words[i-1])
		fs = append(fs, "w-1="+normWord(pw), "w-1suf3="+suffix(pw, 3))
	} else {
		fs = append(fs, "w-1=-START-")
	}
	if i+1 < len(words) {
		nw := strings.ToLower(words[i+1])
		fs = append(fs, "w+1="+normWord(nw), "w+1suf3="+suffix(nw, 3))
	} else {
		fs = append(fs, "w+1=-END-")
	}
	return fs
}

// normWord collapses numeric tokens onto a single marker so every
// cardinal shares statistics.
func normWord(lw string) string {
	if looksNumeric(lw) {
		return "!num"
	}
	return lw
}

func looksNumeric(w string) bool {
	if w == "" {
		return false
	}
	digits := 0
	for i := 0; i < len(w); i++ {
		c := w[i]
		switch {
		case c >= '0' && c <= '9':
			digits++
		case c == '/' || c == '.' || c == '-' || c == ' ' || c == ',':
		default:
			return false
		}
	}
	return digits > 0
}

func suffix(w string, n int) string {
	if len(w) <= n {
		return w
	}
	return w[len(w)-n:]
}

func prefix(w string, n int) string {
	if len(w) <= n {
		return w
	}
	return w[:n]
}

// shape produces a coarse orthographic signature: X for uppercase, x
// for lowercase, d for digit, runs collapsed.
func shape(w string) string {
	var b strings.Builder
	var last rune
	for _, r := range w {
		var c rune
		switch {
		case r >= 'A' && r <= 'Z':
			c = 'X'
		case r >= 'a' && r <= 'z':
			c = 'x'
		case r >= '0' && r <= '9':
			c = 'd'
		default:
			c = r
		}
		if c != last {
			b.WriteRune(c)
			last = c
		}
	}
	return b.String()
}

var (
	defaultOnce   sync.Once
	defaultTagger *Tagger
)

// Default returns the package-level tagger trained once on the
// embedded corpus. It is safe for concurrent use after construction.
func Default() *Tagger {
	defaultOnce.Do(func() {
		defaultTagger = Train(Corpus(), TrainConfig{Epochs: 5, Seed: 1})
	})
	return defaultTagger
}
