// Package postag implements a Penn-Treebank part-of-speech tagger: an
// averaged perceptron with suffix/shape/context features trained on an
// embedded recipe-flavoured corpus, standing in for the Stanford POS
// Twitter model the paper uses (§II.D). The package also provides the
// 1×36 POS-tag-frequency vectorizer whose output feeds K-Means.
package postag

// PTBTags is the 36-tag Penn Treebank word-level tagset, the dimension
// basis of the paper's 1×36 phrase vectors. Punctuation tags are
// handled separately and never enter the vector.
var PTBTags = []string{
	"CC", "CD", "DT", "EX", "FW", "IN", "JJ", "JJR", "JJS", "LS",
	"MD", "NN", "NNP", "NNPS", "NNS", "PDT", "POS", "PRP", "PRP$",
	"RB", "RBR", "RBS", "RP", "SYM", "TO", "UH", "VB", "VBD", "VBG",
	"VBN", "VBP", "VBZ", "WDT", "WP", "WP$", "WRB",
}

// tagIndex maps tag → position in PTBTags.
var tagIndex = func() map[string]int {
	m := make(map[string]int, len(PTBTags))
	for i, t := range PTBTags {
		m[t] = i
	}
	return m
}()

// TagIndex returns the PTBTags position of tag, or -1 for tags outside
// the 36 (punctuation, symbols).
func TagIndex(tag string) int {
	if i, ok := tagIndex[tag]; ok {
		return i
	}
	return -1
}

// IsPunctTag reports whether tag is a punctuation tag (".", ",", ":",
// "(", ")", "”", "“", "#", "$").
func IsPunctTag(tag string) bool {
	switch tag {
	case ".", ",", ":", "(", ")", "''", "``", "#", "$", "HYPH":
		return true
	}
	return false
}

// punctTagFor returns the deterministic tag for punctuation surface
// forms, and ok=false if w is not punctuation.
func punctTagFor(w string) (string, bool) {
	switch w {
	case ".", "!", "?":
		return ".", true
	case ",":
		return ",", true
	case ":", ";", "...", "--", "-", "–":
		return ":", true
	case "(", "[", "{":
		return "(", true
	case ")", "]", "}":
		return ")", true
	case "\"", "''", "”":
		return "''", true
	case "``", "“":
		return "``", true
	case "#":
		return "#", true
	case "$", "°", "%", "&", "+", "*", "=", "<", ">", "@":
		return "SYM", true
	case "'":
		return "POS", true
	}
	return "", false
}
