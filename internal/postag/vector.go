package postag

import "recipemodel/internal/mathx"

// Vectorize builds the 1×36 POS-tag-frequency vector the paper embeds
// ingredient phrases into (§II.D): component i counts occurrences of
// PTBTags[i] in the tag sequence. Punctuation tags are outside the 36
// and are ignored.
func Vectorize(tags []string) mathx.Vector {
	v := make(mathx.Vector, len(PTBTags))
	for _, t := range tags {
		if i := TagIndex(t); i >= 0 {
			v[i]++
		}
	}
	return v
}

// VectorizePhrase tags the tokens with the tagger and vectorizes the
// result in one step.
func (t *Tagger) VectorizePhrase(words []string) mathx.Vector {
	return Vectorize(t.Tag(words))
}

// Dim is the dimensionality of the phrase vectors (36, per the paper).
const Dim = 36
