// The checked-in poison corpus: ingredient-phrase shapes that real
// web-scraped corpora are known to contain (TASTEset and the UCL
// ingredient-parser work both report malformed, truncated, and
// mixed-encoding phrases as a primary failure mode). The chaos drills
// feed these through every batch path, and the end-to-end fuzz targets
// seed from them.

package quarantine

import "strings"

// PoisonPhrases returns the known-bad phrase corpus. The slice is
// rebuilt per call so callers may mutate it freely; contents are fully
// deterministic.
func PoisonPhrases() []string {
	return []string{
		// nothing annotatable.
		"",
		"   \t   ",
		"\n\r\n",
		// invalid and truncated UTF-8 (mixed-encoding scrapes).
		"\x80\xff tomatoes",
		"cr\u00e8me fra\xc3",        // phrase cut mid-rune
		"\xc0\xafsalt",              // overlong-style sequence
		"1 cup \xed\xa0\x80 butter", // surrogate half encoded as WTF-8
		// invisible-character soup: BOM + zero-width space/joiner.
		"\ufeff\u200b\u200d",
		"1\u00a0cup\u00a0sugar", // NBSP-joined
		// control characters embedded mid-phrase.
		"2 cups\x00\x01\x02 chopped onion",
		// decomposed diacritics (NFC-normalization targets).
		"1 cup cre\u0301me frai\u0302che",
		// pathological length: a "phrase" the size of a small page.
		strings.Repeat("very ", 40_000) + "long phrase",
		// pathological token count with tiny byte count per token.
		strings.Repeat("a ", 30_000),
		// bracket bomb for the tokenizer/parser.
		strings.Repeat("(", 2_000) + "x" + strings.Repeat(")", 2_000),
		// numeric garbage that stresses fraction handling.
		"\u215b\u215b\u215b\u215b 1/0/0/1//2 -- - \u00bd\u00bd\u00bd\u00bd",
	}
}
