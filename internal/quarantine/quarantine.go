// Package quarantine is the record-level fault-containment vocabulary
// of the batch pipeline. Web-scraped recipe corpora are dirty — invalid
// UTF-8, megabyte "phrases", tokens that wedge a tagger — and the paper
// runs over 11.5M of them (Table III), so the production posture is:
// one poison record must cost exactly one record, never the batch.
//
// The package supplies the three pieces every batch path shares:
//
//   - a typed error taxonomy with stable machine-readable codes
//     (ErrInvalidUTF8, ErrTooLong, ErrTaggerPanic, ...) so operators
//     can alert on poison *kinds*, not log strings;
//   - Rejection, the per-record containment report (input index, a
//     truncated echo of the phrase, code, human detail);
//   - a dead-letter sink that appends rejections as JSONL with the
//     same flush/fsync discipline as internal/checkpoint, so a mining
//     run's quarantine file resumes as deterministically as its output.
package quarantine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"unicode/utf8"
)

// Code is a stable, machine-readable rejection cause. Codes are wire
// format: they appear in dead-letter files, HTTP responses, and
// checkpoint manifests, so existing values must never be renamed.
type Code string

// The rejection taxonomy. Input-validation codes come from the
// sanitizer in internal/core; panic codes from the per-record recover
// in the batch worker functions.
const (
	// CodeInvalidUTF8: the phrase is not valid UTF-8 and the active
	// policy is reject (the replace policy repairs instead).
	CodeInvalidUTF8 Code = "invalid_utf8"
	// CodeTooLong: the phrase exceeds the byte cap.
	CodeTooLong Code = "too_long"
	// CodeTooManyTokens: the phrase tokenizes past the token cap.
	CodeTooManyTokens Code = "too_many_tokens"
	// CodeEmptyAfterClean: nothing annotatable survived sanitization
	// (empty, whitespace, or control characters only).
	CodeEmptyAfterClean Code = "empty_after_clean"
	// CodeTaggerPanic: the NER/POS tagging stage panicked on this
	// record and the panic was contained.
	CodeTaggerPanic Code = "tagger_panic"
	// CodeParserPanic: the dependency-parse/relation stage panicked on
	// this record and the panic was contained.
	CodeParserPanic Code = "parser_panic"
	// CodeRecordPanic: a contained panic outside an attributable stage
	// (the catch-all for ModelRecipe and injected drills).
	CodeRecordPanic Code = "record_panic"
)

// Sentinel errors, one per code — the `errors.Is` handles for the
// taxonomy. Wrap them with Errorf to attach detail.
var (
	ErrInvalidUTF8     = &Error{Code: CodeInvalidUTF8, Detail: "phrase is not valid UTF-8"}
	ErrTooLong         = &Error{Code: CodeTooLong, Detail: "phrase exceeds the byte cap"}
	ErrTooManyTokens   = &Error{Code: CodeTooManyTokens, Detail: "phrase exceeds the token cap"}
	ErrEmptyAfterClean = &Error{Code: CodeEmptyAfterClean, Detail: "nothing annotatable after sanitization"}
	ErrTaggerPanic     = &Error{Code: CodeTaggerPanic, Detail: "tagger panicked"}
	ErrParserPanic     = &Error{Code: CodeParserPanic, Detail: "parser panicked"}
	ErrRecordPanic     = &Error{Code: CodeRecordPanic, Detail: "record processing panicked"}
)

// Error is a typed rejection cause. Two Errors Is-match when their
// codes match, so `errors.Is(err, quarantine.ErrTooLong)` works for
// any detail string.
type Error struct {
	Code   Code
	Detail string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("quarantine[%s]: %s", e.Code, e.Detail) }

// Is matches any *Error with the same code.
func (e *Error) Is(target error) bool {
	var qe *Error
	return errors.As(target, &qe) && qe.Code == e.Code
}

// Errorf builds a typed rejection with the given code and formatted
// detail.
func Errorf(code Code, format string, args ...any) *Error {
	return &Error{Code: code, Detail: fmt.Sprintf(format, args...)}
}

// CodeOf extracts the taxonomy code from err, unwrapping as needed.
// Errors outside the taxonomy report CodeRecordPanic's sibling "" so
// callers can distinguish typed from untyped causes.
func CodeOf(err error) Code {
	var qe *Error
	if errors.As(err, &qe) {
		return qe.Code
	}
	return ""
}

// maxEchoBytes bounds the phrase echo stored in a Rejection: enough to
// recognize the record, never enough to turn a 1 MiB poison phrase
// into a 1 MiB dead-letter line.
const maxEchoBytes = 200

// Truncate returns s cut to at most maxEchoBytes bytes on a rune
// boundary, with a "..." marker when anything was dropped. Invalid
// UTF-8 is echoed byte-truncated (the JSON encoder sanitizes it).
func Truncate(s string) string {
	if len(s) <= maxEchoBytes {
		return s
	}
	cut := maxEchoBytes
	for cut > 0 && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut] + "..."
}

// Rejection is one quarantined record: the dead-letter file line and
// the per-item HTTP status, produced by the partial-result batch APIs.
type Rejection struct {
	// Index is the record's position in the batch input.
	Index int `json:"index"`
	// Phrase echoes the offending input, truncated to a bounded prefix.
	Phrase string `json:"phrase"`
	// Code is the machine-readable rejection cause.
	Code Code `json:"code"`
	// Detail is the human-readable cause.
	Detail string `json:"detail"`
}

// Reject builds a Rejection from a typed (or untyped) error, echoing a
// truncated phrase. Untyped errors are classified CodeRecordPanic.
func Reject(index int, phrase string, err error) Rejection {
	code := CodeOf(err)
	detail := ""
	if err != nil {
		detail = err.Error()
		var qe *Error
		if errors.As(err, &qe) {
			detail = qe.Detail
		}
	}
	if code == "" {
		code = CodeRecordPanic
	}
	return Rejection{Index: index, Phrase: Truncate(phrase), Code: code, Detail: detail}
}

// Counters accumulates rejection tallies (total and by code) across a
// run or a server's lifetime; safe for concurrent use. The zero value
// is ready.
type Counters struct {
	mu     sync.Mutex
	total  int64
	byCode map[Code]int64
}

// Observe records one rejection with the given code.
func (c *Counters) Observe(code Code) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.byCode == nil {
		c.byCode = make(map[Code]int64)
	}
	c.total++
	c.byCode[code]++
}

// Total reports the cumulative rejection count.
func (c *Counters) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// ByCode returns a copy of the per-code tallies.
func (c *Counters) ByCode() map[Code]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[Code]int64, len(c.byCode))
	for k, v := range c.byCode {
		out[k] = v
	}
	return out
}

// Summary renders the tallies as "total (code=n, code=n)" with codes
// sorted for deterministic log lines; "0" when nothing was observed.
func (c *Counters) Summary() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.total == 0 {
		return "0"
	}
	codes := make([]string, 0, len(c.byCode))
	for k := range c.byCode {
		codes = append(codes, string(k))
	}
	sort.Strings(codes)
	s := fmt.Sprintf("%d (", c.total)
	for i, k := range codes {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s=%d", k, c.byCode[Code(k)])
	}
	return s + ")"
}
