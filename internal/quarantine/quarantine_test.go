package quarantine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"unicode/utf8"
)

// TestErrorIsMatchesByCode: errors.Is must match any taxonomy error of
// the same code, regardless of detail — the contract alerting code
// relies on.
func TestErrorIsMatchesByCode(t *testing.T) {
	detailed := Errorf(CodeTooLong, "phrase is %d bytes", 1<<20)
	if !errors.Is(detailed, ErrTooLong) {
		t.Fatal("detailed too_long error must Is-match ErrTooLong")
	}
	if errors.Is(detailed, ErrInvalidUTF8) {
		t.Fatal("too_long must not match invalid_utf8")
	}
	wrapped := fmt.Errorf("mine record 7: %w", ErrTaggerPanic)
	if !errors.Is(wrapped, ErrTaggerPanic) {
		t.Fatal("wrapped sentinel must still match")
	}
	if CodeOf(wrapped) != CodeTaggerPanic {
		t.Fatalf("CodeOf(wrapped) = %q", CodeOf(wrapped))
	}
	if CodeOf(errors.New("untyped")) != "" {
		t.Fatal("untyped error must report empty code")
	}
}

// TestRejectClassifiesUntypedAsRecordPanic: the catch-all for contained
// panics whose value carried no taxonomy code.
func TestRejectClassifiesUntypedAsRecordPanic(t *testing.T) {
	r := Reject(3, "some phrase", errors.New("slice bounds out of range"))
	if r.Code != CodeRecordPanic || r.Index != 3 || r.Phrase != "some phrase" {
		t.Fatalf("rejection = %+v", r)
	}
	typed := Reject(0, "x", Errorf(CodeTooManyTokens, "30000 tokens"))
	if typed.Code != CodeTooManyTokens || typed.Detail != "30000 tokens" {
		t.Fatalf("typed rejection = %+v", typed)
	}
}

// TestTruncateBoundsEchoOnRuneBoundary: a megabyte poison phrase must
// not become a megabyte dead-letter line, and the cut never splits a
// rune.
func TestTruncateBoundsEchoOnRuneBoundary(t *testing.T) {
	if got := Truncate("short"); got != "short" {
		t.Fatalf("short phrase altered: %q", got)
	}
	// é is 2 bytes; position the cap mid-rune.
	long := strings.Repeat("x", maxEchoBytes-1) + "é" + strings.Repeat("y", 50)
	got := Truncate(long)
	if len(got) > maxEchoBytes+len("...") {
		t.Fatalf("echo is %d bytes", len(got))
	}
	if !strings.HasSuffix(got, "...") {
		t.Fatalf("truncated echo lacks marker: %q", got[len(got)-10:])
	}
	if strings.ContainsRune(got[:len(got)-3], '�') {
		t.Fatal("truncation split a rune")
	}
}

// TestCountersSummaryDeterministic: codes sort, totals add up, zero
// reads "0".
func TestCountersSummaryDeterministic(t *testing.T) {
	var c Counters
	if c.Summary() != "0" {
		t.Fatalf("empty summary = %q", c.Summary())
	}
	c.Observe(CodeTooLong)
	c.Observe(CodeEmptyAfterClean)
	c.Observe(CodeTooLong)
	want := "3 (empty_after_clean=1, too_long=2)"
	if c.Summary() != want {
		t.Fatalf("summary = %q, want %q", c.Summary(), want)
	}
	if c.Total() != 3 || c.ByCode()[CodeTooLong] != 2 {
		t.Fatalf("total = %d byCode = %v", c.Total(), c.ByCode())
	}
}

// TestSinkRoundTrip: append → sync → read back, byte offsets reported
// correctly.
func TestSinkRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rejs := []Rejection{
		{Index: 2, Phrase: "\x80\xff tomatoes", Code: CodeInvalidUTF8, Detail: "not UTF-8"},
		{Index: 9, Phrase: "", Code: CodeEmptyAfterClean, Detail: "empty"},
	}
	for _, r := range rejs {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	off, err := s.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if fi, _ := os.Stat(path); fi.Size() != off {
		t.Fatalf("reported offset %d, file is %d bytes", off, fi.Size())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Index != 2 || got[0].Code != CodeInvalidUTF8 || got[1].Index != 9 {
		t.Fatalf("read back %+v", got)
	}
	if s.Counters().Total() != 2 {
		t.Fatalf("sink counters = %d", s.Counters().Total())
	}
}

// TestSinkResumeTruncatesTornTail: resuming at a durable offset drops
// bytes past it (a torn line from a crash) and subsequent appends land
// exactly after the durable prefix — the same discipline as the mining
// output.
func TestSinkResumeTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	s, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Rejection{Index: 0, Code: CodeTooLong}); err != nil {
		t.Fatal(err)
	}
	durable, err := s.Sync()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// simulate a crash that left a torn line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"index":1,"co`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s, err = Resume(path, durable)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Rejection{Index: 1, Code: CodeTaggerPanic}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("file did not decode after torn-tail resume: %v", err)
	}
	if len(got) != 2 || got[0].Code != CodeTooLong || got[1].Code != CodeTaggerPanic {
		t.Fatalf("resumed file = %+v", got)
	}
}

// TestSinkResumeAtZeroRecreates: offset 0 means "nothing durable" — a
// fresh file even if a stale one exists.
func TestSinkResumeAtZeroRecreates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("stale garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Resume(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	got, err := ReadFile(path)
	if err != nil || len(got) != 0 {
		t.Fatalf("file = %+v, %v — stale content survived", got, err)
	}
}

// TestNilSinkIsSafe: the discard sink accepts every call.
func TestNilSinkIsSafe(t *testing.T) {
	var s *Sink
	if err := s.Append(Rejection{Code: CodeTooLong}); err != nil {
		t.Fatal(err)
	}
	if off, err := s.Sync(); off != 0 || err != nil {
		t.Fatalf("nil Sync = %d, %v", off, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Counters().Total() != 0 {
		t.Fatal("nil sink counted")
	}
}

// TestPoisonCorpusShape: the checked-in corpus keeps its advertised
// properties — deterministic, and covering the taxonomy's input
// classes.
func TestPoisonCorpusShape(t *testing.T) {
	a, b := PoisonPhrases(), PoisonPhrases()
	if len(a) != len(b) {
		t.Fatal("corpus not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("phrase %d differs between calls", i)
		}
	}
	var hasInvalid, hasHuge, hasEmpty bool
	for _, p := range a {
		if !hasInvalid {
			hasInvalid = !utf8.ValidString(p)
		}
		if len(p) > 100_000 {
			hasHuge = true
		}
		if strings.TrimSpace(p) == "" {
			hasEmpty = true
		}
	}
	if !hasInvalid || !hasHuge || !hasEmpty {
		t.Fatalf("corpus coverage: invalid=%v huge=%v empty=%v", hasInvalid, hasHuge, hasEmpty)
	}
}
