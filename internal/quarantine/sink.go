// The dead-letter sink: quarantined records append to a JSONL file
// with the same durability discipline as the mining output it rides
// alongside (flush, fsync — see internal/checkpoint). The checkpoint
// manifest records the sink's durable byte offset, so a -resume
// truncates the quarantine file's torn tail exactly as it truncates
// the output's, keeping the pair byte-identical to an uninterrupted
// run.

package quarantine

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Sink appends rejections as JSON Lines. The zero/nil Sink discards
// writes but still counts them, so callers never branch on "was a
// dead-letter file configured".
type Sink struct {
	f        *os.File
	bw       *bufio.Writer
	enc      *json.Encoder
	counters Counters
}

// Create opens a fresh dead-letter sink at path, truncating any
// previous file (the caller gates overwrite semantics the way mine
// gates -o).
func Create(path string) (*Sink, error) {
	return open(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0)
}

// Resume reopens an existing dead-letter file, truncates everything
// past offset (the torn tail a crash may have left), and appends from
// there. A missing file is recreated when offset is 0.
func Resume(path string, offset int64) (*Sink, error) {
	if offset == 0 {
		return Create(path)
	}
	return open(path, os.O_RDWR, offset)
}

func open(path string, flags int, offset int64) (*Sink, error) {
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("quarantine: %w", err)
	}
	if offset > 0 {
		if err := f.Truncate(offset); err != nil {
			f.Close()
			return nil, fmt.Errorf("quarantine: truncate torn tail: %w", err)
		}
		if _, err := f.Seek(offset, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("quarantine: %w", err)
		}
	}
	s := &Sink{f: f, bw: bufio.NewWriter(f)}
	s.enc = json.NewEncoder(s.bw)
	return s, nil
}

// Append writes one rejection line (or only counts it on a nil/discard
// sink).
func (s *Sink) Append(r Rejection) error {
	if s == nil {
		return nil
	}
	s.counters.Observe(r.Code)
	if s.enc == nil {
		return nil
	}
	if err := s.enc.Encode(r); err != nil {
		return fmt.Errorf("quarantine: append: %w", err)
	}
	return nil
}

// Sync flushes buffered lines and fsyncs the file, then reports the
// durable byte offset — the value the checkpoint manifest records. A
// nil/discard sink reports offset 0.
func (s *Sink) Sync() (int64, error) {
	if s == nil || s.f == nil {
		return 0, nil
	}
	if err := s.bw.Flush(); err != nil {
		return 0, fmt.Errorf("quarantine: flush: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return 0, fmt.Errorf("quarantine: fsync: %w", err)
	}
	off, err := s.f.Seek(0, io.SeekCurrent)
	if err != nil {
		return 0, fmt.Errorf("quarantine: %w", err)
	}
	return off, nil
}

// Counters exposes the sink's cumulative tallies.
func (s *Sink) Counters() *Counters {
	if s == nil {
		return &Counters{}
	}
	return &s.counters
}

// Close flushes and closes the underlying file.
func (s *Sink) Close() error {
	if s == nil || s.f == nil {
		return nil
	}
	if err := s.bw.Flush(); err != nil {
		s.f.Close()
		return fmt.Errorf("quarantine: close: %w", err)
	}
	return s.f.Close()
}

// ReadFile loads a dead-letter JSONL file back into rejections —
// triage tooling and the drill tests share this decoder.
func ReadFile(path string) ([]Rejection, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("quarantine: %w", err)
	}
	defer f.Close()
	var out []Rejection
	dec := json.NewDecoder(f)
	for {
		var r Rejection
		if err := dec.Decode(&r); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("quarantine: %s: %w", path, err)
		}
		out = append(out, r)
	}
}
