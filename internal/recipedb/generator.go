package recipedb

import (
	"fmt"
	"math/rand"

	"recipemodel/internal/parallel"
)

// Generator produces synthetic recipes for one source site. It is
// deterministic for a given (source, seed) pair and not safe for
// concurrent use; create one generator per goroutine.
type Generator struct {
	source      Source
	rng         *rand.Rand
	inv         *inventory
	distractors []string
	oovRate     float64
	nextID      int
	// cuisineBias, when non-nil, is the signature ingredient pool of
	// the recipe currently being generated; IngredientPhrase draws from
	// it half the time, giving each cuisine a distinguishable
	// ingredient distribution (the signal behind the cuisine-prediction
	// application the paper's introduction motivates).
	cuisineBias []string
}

// NewGenerator creates a generator for the source with the given seed.
func NewGenerator(source Source, seed int64) *Generator {
	d := distractorsAllRecipes
	if source == SourceFoodCom {
		d = distractorsFoodCom
	}
	return &Generator{
		source:      source,
		rng:         rand.New(rand.NewSource(seed)),
		inv:         newInventory(source),
		distractors: d,
		oovRate:     0.10,
	}
}

// Fork returns n independent generators for the same source whose RNG
// streams are decorrelated by a SplitMix64 split of the given seed:
// child i depends only on (source, seed, i) — never on n, nor on how
// much any sibling has consumed. This is the supported way to generate
// recipes on a worker pool: hand each goroutine its own fork instead
// of sharing (or locking) one Generator, which would make output
// depend on scheduling order.
func Fork(source Source, seed int64, n int) []*Generator {
	seeds := parallel.SplitSeeds(seed, n)
	out := make([]*Generator, n)
	for i := range out {
		out[i] = NewGenerator(source, seeds[i])
	}
	return out
}

// SetOOVRate overrides the out-of-vocabulary ingredient rate
// (default 0.06).
func (g *Generator) SetOOVRate(r float64) { g.oovRate = r }

// Source returns the generator's source site.
func (g *Generator) Source() Source { return g.source }

// Recipe generates one full synthetic recipe.
func (g *Generator) Recipe() Recipe {
	id := g.nextID
	g.nextID++

	nIngr := 4 + g.rng.Intn(7)  // 4–10 ingredient phrases
	nInstr := 3 + g.rng.Intn(6) // 3–8 instruction steps

	r := Recipe{
		ID:      id,
		Cuisine: Cuisines[g.rng.Intn(len(Cuisines))],
		Source:  g.source,
		Title: fmt.Sprintf("%s %s %s",
			titleAdjectives[g.rng.Intn(len(titleAdjectives))],
			capitalizeFirst(g.inv.ingredients[g.rng.Intn(len(g.inv.ingredients))]),
			titleDishes[g.rng.Intn(len(titleDishes))]),
	}
	g.cuisineBias = CuisineSignature(r.Cuisine, g.inv.ingredients)
	defer func() { g.cuisineBias = nil }()
	names := make([]string, 0, nIngr)
	for i := 0; i < nIngr; i++ {
		p := g.IngredientPhrase()
		r.Ingredients = append(r.Ingredients, p)
		if p.Name != "" {
			names = append(names, p.Name)
		}
	}
	for i := 0; i < nInstr; i++ {
		r.Instructions = append(r.Instructions, g.Instruction(names))
	}
	return r
}

// Recipes generates n recipes.
func (g *Generator) Recipes(n int) []Recipe {
	out := make([]Recipe, n)
	for i := range out {
		out[i] = g.Recipe()
	}
	return out
}

// CuisineSignature deterministically selects the signature ingredient
// pool of a cuisine from an inventory: a stable pseudo-random subset
// keyed by the cuisine name. Every generator (and the cuisine
// classifier's evaluation) sees the same signature for the same
// cuisine and inventory.
func CuisineSignature(cuisine string, inventory []string) []string {
	if len(inventory) == 0 {
		return nil
	}
	h := fnv64(cuisine)
	const signatureSize = 12
	out := make([]string, 0, signatureSize)
	seen := map[int]bool{}
	for len(out) < signatureSize && len(seen) < len(inventory) {
		h = h*6364136223846793005 + 1442695040888963407
		idx := int(h % uint64(len(inventory)))
		if !seen[idx] {
			seen[idx] = true
			out = append(out, inventory[idx])
		}
	}
	return out
}

func fnv64(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Instructions generates n standalone instruction steps drawing from
// the whole inventory (used for instruction-NER training corpora).
func (g *Generator) Instructions(n int) []Instruction {
	out := make([]Instruction, n)
	for i := range out {
		out[i] = g.Instruction(nil)
	}
	return out
}
