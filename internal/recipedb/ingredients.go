package recipedb

import (
	"strings"

	"recipemodel/internal/ner"
)

// phraseBuilder assembles a token sequence with gold spans.
type phraseBuilder struct {
	tokens []string
	spans  []ner.Span
}

// add appends words as one entity span of the given type; typ "" means
// outside any entity.
func (b *phraseBuilder) add(typ string, words ...string) {
	start := len(b.tokens)
	b.tokens = append(b.tokens, words...)
	if typ != "" {
		b.spans = append(b.spans, ner.Span{Start: start, End: len(b.tokens), Type: typ})
	}
}

// wordsOf splits a (possibly multiword) inventory term into tokens.
func wordsOf(term string) []string { return strings.Fields(term) }

// pluralizeName forms the plural surface of a count-noun ingredient.
func pluralizeName(name string) string {
	ws := wordsOf(name)
	last := ws[len(ws)-1]
	switch {
	case strings.HasSuffix(last, "y") && len(last) > 1 && !strings.ContainsRune("aeiou", rune(last[len(last)-2])):
		last = last[:len(last)-1] + "ies"
	case strings.HasSuffix(last, "s") || strings.HasSuffix(last, "sh") ||
		strings.HasSuffix(last, "ch") || strings.HasSuffix(last, "x") ||
		strings.HasSuffix(last, "o"):
		last += "es"
	default:
		last += "s"
	}
	ws[len(ws)-1] = last
	return strings.Join(ws, " ")
}

// countNounList holds ingredients that pluralize naturally after a
// bare count ("2 tomatoes"), in deterministic order.
var countNounList = []string{
	"tomato", "onion", "potato", "carrot", "egg", "lemon", "lime",
	"apple", "banana", "orange", "pear", "peach", "shallot",
	"jalapeno", "zucchini", "cucumber", "radish", "beet", "leek",
	"scallion", "mushroom", "fig", "date",
}

var countNouns = func() map[string]bool {
	m := make(map[string]bool, len(countNounList))
	for _, w := range countNounList {
		m[w] = true
	}
	return m
}()

// IngredientPhraseAt generates one gold-annotated ingredient phrase.
func (g *Generator) IngredientPhrase() IngredientPhrase {
	rng := g.rng
	inv := g.inv
	var b phraseBuilder
	var p IngredientPhrase

	name := inv.ingredients[rng.Intn(len(inv.ingredients))]
	if g.cuisineBias != nil && rng.Float64() < 0.5 {
		name = g.cuisineBias[rng.Intn(len(g.cuisineBias))]
	}
	if rng.Float64() < g.oovRate {
		name = oovIngredient(rng)
	}
	qty := quantityPool[rng.Intn(len(quantityPool))]
	unit := inv.units[rng.Intn(len(inv.units))]
	unitSurface := unit
	if pl, ok := inv.unitPlurals[unit]; ok && rng.Float64() < 0.55 {
		unitSurface = pl
	}
	state := inv.states[rng.Intn(len(inv.states))]
	if rng.Float64() < 0.05 {
		state = oovState(rng) // unknown attribute (§II.A challenge 1)
	}
	size := inv.sizes[rng.Intn(len(inv.sizes))]
	temp := inv.temps[rng.Intn(len(inv.temps))]
	df := inv.dryFresh[rng.Intn(len(inv.dryFresh))]

	// distractor modifier before the name, annotated O, with a
	// site-specific vocabulary ("2 cups organic flour").
	maybeDistract := func() {
		if rng.Float64() < 0.15 {
			b.add("", g.distractors[rng.Intn(len(g.distractors))])
		}
	}

	record := func() IngredientPhrase {
		// site-specific trailing decorations annotated O.
		switch {
		case g.source == SourceFoodCom && rng.Float64() < 0.10:
			b.add("", "(", "optional", ")")
		case g.source == SourceAllRecipes && rng.Float64() < 0.08:
			b.add("", ",", "divided")
		}
		p.Tokens = b.tokens
		p.Spans = b.spans
		p.Text = Detokenize(b.tokens)
		return p
	}
	setName := func(n string) { p.Name = n }

	// weighted template choice differs by source: FOOD.com leans on
	// abbreviations and "of" constructions that AllRecipes rarely uses.
	r := rng.Float64()
	foodCom := g.source == SourceFoodCom
	switch {
	case r < 0.14:
		// "2 cups flour"
		b.add(ner.Quantity, qty)
		b.add(ner.Unit, unitSurface)
		maybeDistract()
		b.add(ner.Name, wordsOf(name)...)
		p.Quantity, p.Unit = qty, unitSurface
		setName(name)
	case r < 0.26:
		// "2 cups chopped onion"
		b.add(ner.Quantity, qty)
		b.add(ner.Unit, unitSurface)
		b.add(ner.State, wordsOf(state)...)
		maybeDistract()
		b.add(ner.Name, wordsOf(name)...)
		p.Quantity, p.Unit, p.State = qty, unitSurface, state
		setName(name)
	case r < 0.38:
		// "1 cup onion , chopped"
		b.add(ner.Quantity, qty)
		b.add(ner.Unit, unitSurface)
		maybeDistract()
		b.add(ner.Name, wordsOf(name)...)
		b.add("", ",")
		b.add(ner.State, wordsOf(state)...)
		p.Quantity, p.Unit, p.State = qty, unitSurface, state
		setName(name)
	case r < 0.46:
		// "1 teaspoon fresh thyme , minced"
		b.add(ner.Quantity, qty)
		b.add(ner.Unit, unitSurface)
		b.add(ner.DryFresh, df)
		maybeDistract()
		b.add(ner.Name, wordsOf(name)...)
		b.add("", ",")
		b.add(ner.State, wordsOf(state)...)
		p.Quantity, p.Unit, p.DryFresh, p.State = qty, unitSurface, df, state
		setName(name)
	case r < 0.54:
		// "2-3 medium tomatoes"
		b.add(ner.Quantity, qty)
		b.add(ner.Size, size)
		b.add(ner.Name, wordsOf(pluralizeName(name))...)
		p.Quantity, p.Size = qty, size
		setName(name)
	case r < 0.60 && !foodCom:
		// "1 (8 ounce) package cream cheese , softened"
		inner := []string{"4", "8", "10", "12", "14", "16"}[rng.Intn(6)]
		b.add(ner.Quantity, qty)
		b.add("", "(")
		b.add(ner.Quantity, inner)
		b.add(ner.Unit, "ounce")
		b.add("", ")")
		b.add(ner.Unit, "package")
		maybeDistract()
		b.add(ner.Name, wordsOf(name)...)
		b.add("", ",")
		b.add(ner.State, wordsOf(state)...)
		p.Quantity, p.Unit, p.State = qty, "package", state
		setName(name)
	case r < 0.64 && !foodCom:
		// "1 sheet frozen puff pastry ( thawed )"
		b.add(ner.Quantity, qty)
		b.add(ner.Unit, "sheet")
		b.add(ner.Temp, wordsOf(temp)...)
		maybeDistract()
		b.add(ner.Name, wordsOf(name)...)
		b.add("", "(")
		b.add(ner.State, wordsOf(state)...)
		b.add("", ")")
		p.Quantity, p.Unit, p.Temp, p.State = qty, "sheet", temp, state
		setName(name)
	case r < 0.67:
		// "salt to taste"
		maybeDistract()
		b.add(ner.Name, wordsOf(name)...)
		b.add("", "to", "taste")
		setName(name)
	case r < 0.72:
		// "1/2 teaspoon pepper , freshly ground"
		b.add(ner.Quantity, qty)
		b.add(ner.Unit, unitSurface)
		maybeDistract()
		b.add(ner.Name, wordsOf(name)...)
		b.add("", ",")
		b.add("", "freshly")
		b.add(ner.State, "ground")
		p.Quantity, p.Unit, p.State = qty, unitSurface, "ground"
		setName(name)
	case r < 0.76:
		// "6 ounces blue cheese , at room temperature"
		b.add(ner.Quantity, qty)
		b.add(ner.Unit, unitSurface)
		maybeDistract()
		b.add(ner.Name, wordsOf(name)...)
		b.add("", ",", "at")
		b.add(ner.Temp, "room", "temperature")
		p.Quantity, p.Unit, p.Temp = qty, unitSurface, "room temperature"
		setName(name)
	case r < 0.80 && !foodCom:
		// "1 tablespoon whole milk ( or half-and-half )"
		alt := inv.ingredients[rng.Intn(len(inv.ingredients))]
		b.add(ner.Quantity, qty)
		b.add(ner.Unit, unitSurface)
		maybeDistract()
		b.add(ner.Name, wordsOf(name)...)
		b.add("", "(", "or")
		b.add("", wordsOf(alt)...)
		b.add("", ")")
		p.Quantity, p.Unit = qty, unitSurface
		setName(name)
	case r < 0.80 && foodCom:
		// FOOD.com: "1 cup of flour"
		b.add(ner.Quantity, qty)
		b.add(ner.Unit, unitSurface)
		b.add("", "of")
		maybeDistract()
		b.add(ner.Name, wordsOf(name)...)
		p.Quantity, p.Unit = qty, unitSurface
		setName(name)
	case r < 0.86:
		// homograph drill: "2 cloves garlic" vs "1 teaspoon ground cloves"
		if rng.Float64() < 0.5 {
			b.add(ner.Quantity, qty)
			b.add(ner.Unit, "cloves")
			b.add(ner.Name, "garlic")
			p.Quantity, p.Unit = qty, "cloves"
			setName("garlic")
		} else {
			b.add(ner.Quantity, qty)
			b.add(ner.Unit, unitSurface)
			b.add(ner.State, "ground")
			b.add(ner.Name, "cloves")
			p.Quantity, p.Unit, p.State = qty, unitSurface, "ground"
			setName("cloves")
		}
	case r < 0.93:
		// bare count: "2 eggs" / "3 large tomatoes"
		cn := name
		if !countNouns[cn] {
			cn = countNounList[rng.Intn(len(countNounList))]
		}
		b.add(ner.Quantity, qty)
		if rng.Float64() < 0.4 {
			b.add(ner.Size, size)
			p.Size = size
		}
		b.add(ner.Name, wordsOf(pluralizeName(cn))...)
		p.Quantity = qty
		setName(cn)
	default:
		// "1 lb chicken , trimmed" (FOOD.com-flavoured brevity)
		b.add(ner.Quantity, qty)
		b.add(ner.Unit, unitSurface)
		maybeDistract()
		b.add(ner.Name, wordsOf(name)...)
		if rng.Float64() < 0.5 {
			b.add("", ",")
			b.add(ner.State, wordsOf(state)...)
			p.State = state
		}
		p.Quantity, p.Unit = qty, unitSurface
		setName(name)
	}
	return record()
}

// IngredientPhrases generates n gold-annotated phrases.
func (g *Generator) IngredientPhrases(n int) []IngredientPhrase {
	out := make([]IngredientPhrase, n)
	for i := range out {
		out[i] = g.IngredientPhrase()
	}
	return out
}

// UniquePhrases generates phrases until it has collected n with
// distinct text (or hits the attempt budget of 50×n, whichever comes
// first).
func (g *Generator) UniquePhrases(n int) []IngredientPhrase {
	seen := make(map[string]bool, n)
	out := make([]IngredientPhrase, 0, n)
	for attempts := 0; len(out) < n && attempts < 50*n; attempts++ {
		p := g.IngredientPhrase()
		if seen[p.Text] {
			continue
		}
		seen[p.Text] = true
		out = append(out, p)
	}
	return out
}
