package recipedb

import (
	"strings"

	"recipemodel/internal/ner"
)

// instrBuilder assembles an instruction's tokens, entity spans and
// gold relations.
type instrBuilder struct {
	tokens    []string
	spans     []ner.Span
	relations []GoldRelation
}

func (b *instrBuilder) add(typ string, words ...string) {
	start := len(b.tokens)
	b.tokens = append(b.tokens, words...)
	if typ != "" {
		b.spans = append(b.spans, ner.Span{Start: start, End: len(b.tokens), Type: typ})
	}
}

func (b *instrBuilder) relate(process string, ingredients, utensils []string) {
	b.relations = append(b.relations, GoldRelation{
		Process:     process,
		Ingredients: append([]string(nil), ingredients...),
		Utensils:    append([]string(nil), utensils...),
	})
}

func (b *instrBuilder) build() Instruction {
	return Instruction{
		Text:      capitalizeFirst(Detokenize(b.tokens)),
		Tokens:    b.tokens,
		Spans:     b.spans,
		Relations: b.relations,
	}
}

func capitalizeFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// pickIngredients selects up to k distinct ingredient names from the
// recipe's ingredient list (falling back to the inventory when the
// recipe is shorter).
func (g *Generator) pickIngredients(names []string, k int) []string {
	if len(names) == 0 {
		names = g.inv.ingredients
	}
	idx := g.rng.Perm(len(names))
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]string, 0, k)
	seen := map[string]bool{}
	for _, i := range idx {
		if len(out) == k {
			break
		}
		if seen[names[i]] {
			continue
		}
		seen[names[i]] = true
		out = append(out, names[i])
	}
	return out
}

// Instruction generates one gold-annotated instruction step drawing
// ingredient mentions from names (the recipe's ingredient inventory).
// Real recipe steps frequently pack several clauses into one step
// ("Mix the flour and the sugar in a bowl, then add the eggs."), which
// is where the long tail of the relations-per-instruction distribution
// comes from (§V: 6.164 ± 5.70); with probability ~0.45 the generated
// step is a compound of two or three clauses.
func (g *Generator) Instruction(names []string) Instruction {
	in := g.simpleInstruction(names)
	for parts := 1; parts < 3 && g.rng.Float64() < 0.45; parts++ {
		in = joinInstructions(in, g.simpleInstruction(names))
	}
	return in
}

// joinInstructions splices two clause-level instructions into one
// compound step, shifting the second clause's spans.
func joinInstructions(a, b Instruction) Instruction {
	ta := a.Tokens
	if n := len(ta); n > 0 && ta[n-1] == "." {
		ta = ta[:n-1]
	}
	sep := []string{",", "then"}
	off := len(ta) + len(sep)
	tokens := make([]string, 0, off+len(b.Tokens))
	tokens = append(tokens, ta...)
	tokens = append(tokens, sep...)
	tokens = append(tokens, b.Tokens...)
	out := Instruction{Tokens: tokens}
	for _, sp := range a.Spans {
		if sp.End <= len(ta) {
			out.Spans = append(out.Spans, sp)
		}
	}
	for _, sp := range b.Spans {
		sp.Start += off
		sp.End += off
		out.Spans = append(out.Spans, sp)
	}
	out.Relations = append(append([]GoldRelation{}, a.Relations...), b.Relations...)
	out.Text = capitalizeFirst(Detokenize(tokens))
	return out
}

// simpleInstruction generates one gold-annotated clause.
func (g *Generator) simpleInstruction(names []string) Instruction {
	rng := g.rng
	inv := g.inv
	var b instrBuilder

	utensil := inv.utensils[rng.Intn(len(inv.utensils))]
	if rng.Float64() < 0.12 {
		utensil = rareUtensils[rng.Intn(len(rareUtensils))]
	}
	verb := inv.verbs[rng.Intn(len(inv.verbs))]
	duration := []string{"5", "10", "15", "20", "30", "45"}[rng.Intn(6)]

	switch rng.Intn(10) {
	case 0:
		// "Preheat the oven to 350 ° F ."
		temp := []string{"325", "350", "375", "400", "425"}[rng.Intn(5)]
		b.add(ner.Process, "preheat")
		b.add("", "the")
		b.add(ner.Utensil, "oven")
		b.add("", "to", temp, "°", "F", ".")
		b.relate("preheat", nil, []string{"oven"})
	case 1:
		// "Bring the water to a boil in a large pot ."
		ingr := g.pickIngredients(names, 1)
		b.add(ner.Process, "bring")
		b.add("", "the")
		b.add(ner.Ingredient, wordsOf(ingr[0])...)
		b.add("", "to", "a")
		b.add(ner.Process, "boil")
		b.add("", "in", "a", "large")
		b.add(ner.Utensil, wordsOf(utensil)...)
		b.add("", ".")
		b.relate("bring", ingr, []string{utensil})
	case 2:
		// "Add the X , Y , ... and Z to the U ." — entity-rich steps
		// with a long tail, the source of the high-variance relation
		// counts the paper reports (6.164 ± 5.70).
		ingr := g.pickIngredients(names, 2+rng.Intn(5))
		b.add(ner.Process, "add")
		b.add("", "the")
		for i, n := range ingr {
			if i > 0 {
				if i == len(ingr)-1 {
					b.add("", "and")
				} else {
					b.add("", ",")
				}
			}
			b.add(ner.Ingredient, wordsOf(n)...)
		}
		b.add("", "to", "the")
		b.add(ner.Utensil, wordsOf(utensil)...)
		b.add("", ".")
		b.relate("add", ingr, []string{utensil})
	case 3:
		// "{Verb} the X and Y in a U ."
		ingr := g.pickIngredients(names, 2)
		b.add(ner.Process, verb)
		b.add("", "the")
		b.add(ner.Ingredient, wordsOf(ingr[0])...)
		if len(ingr) > 1 {
			b.add("", "and")
			b.add(ner.Ingredient, wordsOf(ingr[1])...)
		}
		b.add("", "in", "a")
		b.add(ner.Utensil, wordsOf(utensil)...)
		b.add("", ".")
		b.relate(verb, ingr, []string{utensil})
	case 4:
		// "Stir in the X ."
		ingr := g.pickIngredients(names, 1)
		b.add(ner.Process, "stir")
		b.add("", "in", "the")
		b.add(ner.Ingredient, wordsOf(ingr[0])...)
		b.add("", ".")
		b.relate("stir", ingr, nil)
	case 5:
		// "Cook for 10 minutes ."
		b.add(ner.Process, "cook")
		b.add("", "for", duration, "minutes", ".")
		b.relate("cook", nil, nil)
	case 6:
		// "Drain and serve ."
		b.add(ner.Process, "drain")
		b.add("", "and")
		b.add(ner.Process, "serve")
		b.add("", ".")
		b.relate("drain", nil, nil)
		b.relate("serve", nil, nil)
	case 7:
		// "Season with X and Y ."
		ingr := g.pickIngredients(names, 2)
		b.add(ner.Process, "season")
		b.add("", "with")
		b.add(ner.Ingredient, wordsOf(ingr[0])...)
		if len(ingr) > 1 {
			b.add("", "and")
			b.add(ner.Ingredient, wordsOf(ingr[1])...)
		}
		b.add("", ".")
		b.relate("season", ingr, nil)
	case 8:
		// "Transfer the mixture to a U and {verb} until golden ."
		b.add(ner.Process, "transfer")
		b.add("", "the", "mixture", "to", "a")
		b.add(ner.Utensil, wordsOf(utensil)...)
		b.add("", "and")
		b.add(ner.Process, verb)
		b.add("", "until", "golden", ".")
		b.relate("transfer", nil, []string{utensil})
		b.relate(verb, nil, []string{utensil})
	default:
		// "{Verb} the X with the Y in a U for 10 minutes ."
		ingr := g.pickIngredients(names, 2)
		b.add(ner.Process, verb)
		b.add("", "the")
		b.add(ner.Ingredient, wordsOf(ingr[0])...)
		if len(ingr) > 1 {
			b.add("", "with", "the")
			b.add(ner.Ingredient, wordsOf(ingr[1])...)
		}
		b.add("", "in", "a")
		b.add(ner.Utensil, wordsOf(utensil)...)
		b.add("", "for", duration, "minutes", ".")
		b.relate(verb, ingr, []string{utensil})
	}
	return b.build()
}
