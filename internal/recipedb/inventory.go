package recipedb

import (
	"math/rand"
	"strings"

	"recipemodel/internal/gazetteer"
)

// inventory holds the word pools a generator draws from; pools differ
// by source to create the domain gap the paper observes between
// AllRecipes and FOOD.com models (Table IV).
type inventory struct {
	ingredients []string // ingredient names (may be multiword)
	units       []string
	unitPlurals map[string]string
	states      []string
	sizes       []string
	temps       []string
	dryFresh    []string
	utensils    []string
	verbs       []string
}

// splitInventory partitions the master ingredient list into a shared
// core plus two site-exclusive tails, deterministically.
func splitInventory(src Source) []string {
	all := append([]string(nil), gazetteer.IngredientTerms...)
	// deterministic interleave: indices 0,1 mod 3 are shared; 2 mod 3
	// alternates between the two sites.
	var out []string
	for i, t := range all {
		switch i % 4 {
		case 0, 1:
			out = append(out, t) // shared core (half the inventory)
		case 2:
			if src == SourceAllRecipes {
				out = append(out, t)
			}
		case 3:
			if src == SourceFoodCom {
				out = append(out, t)
			}
		}
	}
	return out
}

// newInventory builds the pool set for a source.
func newInventory(src Source) *inventory {
	inv := &inventory{
		ingredients: splitInventory(src),
		states:      append([]string(nil), gazetteer.StateTerms...),
		sizes:       append([]string(nil), gazetteer.SizeTerms...),
		temps:       append([]string(nil), gazetteer.TempTerms...),
		dryFresh:    append([]string(nil), gazetteer.DryFreshTerms...),
		utensils:    append([]string(nil), gazetteer.UtensilTerms...),
		verbs:       append([]string(nil), gazetteer.TechniqueTerms...),
	}
	longUnits := []string{
		"cup", "teaspoon", "tablespoon", "ounce", "pound", "package",
		"can", "pinch", "clove", "sheet", "slice", "stalk", "sprig",
		"head", "bunch", "dash", "jar", "bottle", "piece", "wedge",
	}
	abbrevUnits := []string{"tbsp", "tsp", "oz", "lb", "g", "kg", "ml"}
	switch src {
	case SourceAllRecipes:
		// AllRecipes spells units out.
		inv.units = longUnits
	default:
		// FOOD.com mixes spelled-out and abbreviated units.
		inv.units = append(append([]string(nil), longUnits...), abbrevUnits...)
		inv.units = append(inv.units, abbrevUnits...) // double weight
	}
	inv.unitPlurals = map[string]string{}
	for _, u := range longUnits {
		switch {
		case strings.HasSuffix(u, "ch") || strings.HasSuffix(u, "sh"):
			inv.unitPlurals[u] = u + "es"
		default:
			inv.unitPlurals[u] = u + "s"
		}
	}
	return inv
}

// syllables for out-of-vocabulary ingredient invention.
var oovOnsets = []string{"br", "ch", "cl", "dr", "fl", "gr", "kh", "pl", "qu", "sk", "sm", "tr", "v", "z", "m", "n", "t", "k"}
var oovNuclei = []string{"a", "e", "i", "o", "u", "ai", "ou", "ee"}
var oovCodas = []string{"n", "m", "l", "r", "sh", "t", "k", "nda", "lli", "rra", "mba"}

// oovIngredient invents a plausible unseen ingredient name. The paper
// stresses that models must be "robust to identify unknown
// ingredients" (§II.A challenge 1); these names exercise exactly that
// path because they appear in no gazetteer.
func oovIngredient(rng *rand.Rand) string {
	n := 2 + rng.Intn(2)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteString(oovOnsets[rng.Intn(len(oovOnsets))])
		b.WriteString(oovNuclei[rng.Intn(len(oovNuclei))])
	}
	b.WriteString(oovCodas[rng.Intn(len(oovCodas))])
	return b.String()
}

// distractor modifiers: descriptors that belong to none of the seven
// entity classes and are annotated O; they resemble attributes closely
// enough to confuse a tagger. Each site favours a different subset,
// widening the domain gap the paper measures in Table IV.
var distractorsAllRecipes = []string{
	"organic", "homemade", "premium", "good-quality", "store-bought",
	"favorite", "seasonal", "local", "leftover", "prepared",
}
var distractorsFoodCom = []string{
	"organic", "imported", "low-fat", "reduced-sodium", "fat-free",
	"sugar-free", "gourmet", "day-old", "instant", "quick-cooking",
}

// rareUtensils are legitimate but uncommon utensils absent from the
// static gazetteer — they depress utensil recall the way the long tail
// of real kitchen equipment does (Table V: R=0.86 < P=0.94).
var rareUtensils = []string{
	"tagine", "paella pan", "chinois", "salamander", "bain-marie",
	"spider", "comal", "molcajete", "tawa", "karahi", "donabe",
	"palayok", "braiser", "cocotte", "salad spinner", "flan ring",
	"madeleine tray", "crepe pan", "idli stand", "couscoussier",
}

// oovState invents an unseen processing-state word ("flumbled") —
// §II.A challenge 1 covers unknown attributes, not just unknown
// ingredient names.
func oovState(rng *rand.Rand) string {
	return oovIngredient(rng) + "ed"
}

// quantityPool produces the surface quantity forms, weighted toward
// the common ones.
var quantityPool = []string{
	"1", "2", "3", "4", "5", "6", "8", "10", "12",
	"1/2", "1/4", "3/4", "1/3", "2/3", "1/8",
	"1 1/2", "2 1/2", "1 1/4", "1 3/4",
	"2-3", "1-2", "3-4", "4-6",
	"½", "¼", "¾", "1½",
}

// titles
var titleAdjectives = []string{"Classic", "Easy", "Homemade", "Creamy", "Spicy", "Grandma's", "Quick", "Roasted", "Grilled", "Rustic", "Golden", "Hearty"}
var titleDishes = []string{"Casserole", "Soup", "Stew", "Salad", "Tart", "Pie", "Bake", "Stir-Fry", "Curry", "Pasta", "Roast", "Chowder", "Gratin", "Skillet"}
