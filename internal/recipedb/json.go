package recipedb

import (
	"encoding/json"
	"io"

	"recipemodel/internal/ner"
)

// jsonRecipe is the stable export schema for gold corpora. Field names
// are lowerCamel so the files read naturally from Python/JS tooling.
type jsonRecipe struct {
	ID           int               `json:"id"`
	Title        string            `json:"title"`
	Cuisine      string            `json:"cuisine"`
	Source       string            `json:"source"`
	Ingredients  []jsonPhrase      `json:"ingredients"`
	Instructions []jsonInstruction `json:"instructions"`
}

type jsonPhrase struct {
	Text   string     `json:"text"`
	Tokens []string   `json:"tokens"`
	Spans  []jsonSpan `json:"spans"`
	Name   string     `json:"name,omitempty"`
}

type jsonInstruction struct {
	Text      string         `json:"text"`
	Tokens    []string       `json:"tokens"`
	Spans     []jsonSpan     `json:"spans"`
	Relations []jsonRelation `json:"relations"`
}

type jsonSpan struct {
	Start int    `json:"start"`
	End   int    `json:"end"`
	Type  string `json:"type"`
}

type jsonRelation struct {
	Process     string   `json:"process"`
	Ingredients []string `json:"ingredients,omitempty"`
	Utensils    []string `json:"utensils,omitempty"`
}

// WriteJSONL streams recipes as JSON Lines (one recipe object per
// line), the interchange format for shipping gold corpora to external
// tooling.
func WriteJSONL(w io.Writer, recipes []Recipe) error {
	enc := json.NewEncoder(w)
	for _, r := range recipes {
		jr := jsonRecipe{
			ID: r.ID, Title: r.Title, Cuisine: r.Cuisine,
			Source: r.Source.String(),
		}
		for _, p := range r.Ingredients {
			jp := jsonPhrase{Text: p.Text, Tokens: p.Tokens, Name: p.Name}
			for _, s := range p.Spans {
				jp.Spans = append(jp.Spans, jsonSpan{s.Start, s.End, s.Type})
			}
			jr.Ingredients = append(jr.Ingredients, jp)
		}
		for _, in := range r.Instructions {
			ji := jsonInstruction{Text: in.Text, Tokens: in.Tokens}
			for _, s := range in.Spans {
				ji.Spans = append(ji.Spans, jsonSpan{s.Start, s.End, s.Type})
			}
			for _, rel := range in.Relations {
				ji.Relations = append(ji.Relations, jsonRelation{
					Process: rel.Process, Ingredients: rel.Ingredients, Utensils: rel.Utensils,
				})
			}
			jr.Instructions = append(jr.Instructions, ji)
		}
		if err := enc.Encode(jr); err != nil {
			return err
		}
	}
	return nil
}

// spanFromJSON converts the export schema span back to a ner.Span.
func spanFromJSON(s jsonSpan) ner.Span {
	return ner.Span{Start: s.Start, End: s.End, Type: s.Type}
}

// ReadJSONL decodes recipes written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Recipe, error) {
	dec := json.NewDecoder(r)
	var out []Recipe
	for dec.More() {
		var jr jsonRecipe
		if err := dec.Decode(&jr); err != nil {
			return nil, err
		}
		rec := Recipe{ID: jr.ID, Title: jr.Title, Cuisine: jr.Cuisine}
		if jr.Source == SourceFoodCom.String() {
			rec.Source = SourceFoodCom
		}
		for _, jp := range jr.Ingredients {
			p := IngredientPhrase{Text: jp.Text, Tokens: jp.Tokens, Name: jp.Name}
			for _, s := range jp.Spans {
				p.Spans = append(p.Spans, spanFromJSON(s))
			}
			rec.Ingredients = append(rec.Ingredients, p)
		}
		for _, ji := range jr.Instructions {
			in := Instruction{Text: ji.Text, Tokens: ji.Tokens}
			for _, s := range ji.Spans {
				in.Spans = append(in.Spans, spanFromJSON(s))
			}
			for _, rel := range ji.Relations {
				in.Relations = append(in.Relations, GoldRelation{
					Process: rel.Process, Ingredients: rel.Ingredients, Utensils: rel.Utensils,
				})
			}
			rec.Instructions = append(rec.Instructions, in)
		}
		out = append(out, rec)
	}
	return out, nil
}
