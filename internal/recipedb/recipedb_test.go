package recipedb

import (
	"strings"
	"testing"

	"recipemodel/internal/ner"
	"recipemodel/internal/tokenize"
)

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(SourceAllRecipes, 7).Recipes(5)
	b := NewGenerator(SourceAllRecipes, 7).Recipes(5)
	for i := range a {
		if a[i].Title != b[i].Title || len(a[i].Ingredients) != len(b[i].Ingredients) {
			t.Fatal("same seed should reproduce recipes")
		}
		for j := range a[i].Ingredients {
			if a[i].Ingredients[j].Text != b[i].Ingredients[j].Text {
				t.Fatal("ingredient phrases differ under same seed")
			}
		}
	}
}

func TestGeneratorSourcesDiffer(t *testing.T) {
	a := NewGenerator(SourceAllRecipes, 7).IngredientPhrases(500)
	f := NewGenerator(SourceFoodCom, 7).IngredientPhrases(500)
	// FOOD.com uses abbreviations that AllRecipes never emits.
	abbrev := func(ps []IngredientPhrase) int {
		n := 0
		for _, p := range ps {
			for _, tok := range p.Tokens {
				switch tok {
				case "tbsp", "tsp", "oz", "lb":
					n++
				}
			}
		}
		return n
	}
	if abbrev(a) != 0 {
		t.Errorf("AllRecipes emitted abbreviations: %d", abbrev(a))
	}
	if abbrev(f) == 0 {
		t.Error("FOOD.com emitted no abbreviations")
	}
}

func TestIngredientPhraseSpanValidity(t *testing.T) {
	g := NewGenerator(SourceFoodCom, 11)
	for i := 0; i < 2000; i++ {
		p := g.IngredientPhrase()
		if len(p.Tokens) == 0 {
			t.Fatal("empty phrase")
		}
		for _, s := range p.Spans {
			if s.Start < 0 || s.End > len(p.Tokens) || s.Start >= s.End {
				t.Fatalf("bad span %+v in %q", s, p.Text)
			}
		}
		// spans must not overlap
		used := make([]bool, len(p.Tokens))
		for _, s := range p.Spans {
			for k := s.Start; k < s.End; k++ {
				if used[k] {
					t.Fatalf("overlapping spans in %q", p.Text)
				}
				used[k] = true
			}
		}
		// every phrase must have a NAME span
		hasName := false
		for _, s := range p.Spans {
			if s.Type == ner.Name {
				hasName = true
			}
		}
		if !hasName {
			t.Fatalf("phrase without NAME: %q", p.Text)
		}
	}
}

func TestIngredientPhraseGoldAttributesMatchSpans(t *testing.T) {
	g := NewGenerator(SourceAllRecipes, 13)
	for i := 0; i < 500; i++ {
		p := g.IngredientPhrase()
		for _, s := range p.Spans {
			surface := strings.Join(p.Tokens[s.Start:s.End], " ")
			switch s.Type {
			case ner.Quantity:
				if p.Quantity != "" && !strings.Contains(p.Quantity+" extra", surface) && surface != p.Quantity {
					// multiple QUANTITY spans occur in packaging templates;
					// the primary gold quantity must match one of them.
					continue
				}
			case ner.Name:
				// surface may be pluralized; gold name is the base form.
				if !strings.HasPrefix(surface, p.Name[:min(len(p.Name), 3)]) && p.Name != "cloves" {
					t.Fatalf("NAME span %q vs gold %q in %q", surface, p.Name, p.Text)
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPhraseTokensMatchTokenizer(t *testing.T) {
	// Detokenize → Tokenize must reproduce the generated token stream,
	// so the pipeline sees exactly what the site text would produce.
	g := NewGenerator(SourceAllRecipes, 17)
	for i := 0; i < 1000; i++ {
		p := g.IngredientPhrase()
		got := tokenize.Words(tokenize.Tokenize(p.Text))
		if len(got) != len(p.Tokens) {
			t.Fatalf("token count mismatch for %q: %v vs %v", p.Text, got, p.Tokens)
		}
		for j := range got {
			if got[j] != p.Tokens[j] {
				t.Fatalf("token mismatch for %q: %v vs %v", p.Text, got, p.Tokens)
			}
		}
	}
}

func TestInstructionSpanValidity(t *testing.T) {
	g := NewGenerator(SourceFoodCom, 19)
	for i := 0; i < 1000; i++ {
		in := g.Instruction(nil)
		if len(in.Tokens) == 0 {
			t.Fatal("empty instruction")
		}
		hasProcess := false
		for _, s := range in.Spans {
			if s.Start < 0 || s.End > len(in.Tokens) || s.Start >= s.End {
				t.Fatalf("bad span %+v in %q", s, in.Text)
			}
			if s.Type == ner.Process {
				hasProcess = true
			}
		}
		if !hasProcess {
			t.Fatalf("instruction without PROCESS: %q", in.Text)
		}
		if len(in.Relations) == 0 {
			t.Fatalf("instruction without relations: %q", in.Text)
		}
		for _, r := range in.Relations {
			if r.Process == "" {
				t.Fatalf("relation without process in %q", in.Text)
			}
		}
	}
}

func TestInstructionRelationEntitiesAreTagged(t *testing.T) {
	// every gold relation argument must appear as an entity span.
	g := NewGenerator(SourceAllRecipes, 23)
	for i := 0; i < 500; i++ {
		in := g.Instruction(nil)
		tagged := map[string]bool{}
		for _, s := range in.Spans {
			tagged[strings.ToLower(strings.Join(in.Tokens[s.Start:s.End], " "))] = true
		}
		for _, r := range in.Relations {
			for _, ing := range r.Ingredients {
				if !tagged[strings.ToLower(ing)] {
					t.Fatalf("relation ingredient %q untagged in %q", ing, in.Text)
				}
			}
			for _, u := range r.Utensils {
				if !tagged[strings.ToLower(u)] {
					t.Fatalf("relation utensil %q untagged in %q", u, in.Text)
				}
			}
		}
	}
}

func TestRecipeShape(t *testing.T) {
	g := NewGenerator(SourceAllRecipes, 29)
	for _, r := range g.Recipes(50) {
		if len(r.Ingredients) < 4 || len(r.Ingredients) > 10 {
			t.Fatalf("ingredient count %d", len(r.Ingredients))
		}
		if len(r.Instructions) < 3 || len(r.Instructions) > 8 {
			t.Fatalf("instruction count %d", len(r.Instructions))
		}
		if r.Title == "" || r.Cuisine == "" {
			t.Fatal("missing title/cuisine")
		}
	}
}

func TestRecipeIDsIncrease(t *testing.T) {
	g := NewGenerator(SourceAllRecipes, 31)
	rs := g.Recipes(3)
	if rs[0].ID >= rs[1].ID || rs[1].ID >= rs[2].ID {
		t.Fatal("IDs not increasing")
	}
}

func TestUniquePhrases(t *testing.T) {
	g := NewGenerator(SourceFoodCom, 37)
	ps := g.UniquePhrases(300)
	if len(ps) != 300 {
		t.Fatalf("got %d unique phrases", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Text] {
			t.Fatalf("duplicate %q", p.Text)
		}
		seen[p.Text] = true
	}
}

func TestOOVRate(t *testing.T) {
	g := NewGenerator(SourceAllRecipes, 41)
	g.SetOOVRate(0)
	known := map[string]bool{}
	for _, t2 := range g.inv.ingredients {
		known[t2] = true
	}
	known["cloves"] = true
	known["garlic"] = true
	known["egg"] = true
	for k := range countNouns {
		known[k] = true
	}
	for i := 0; i < 300; i++ {
		p := g.IngredientPhrase()
		if !known[p.Name] {
			t.Fatalf("OOV name %q at rate 0", p.Name)
		}
	}
}

func TestDetokenize(t *testing.T) {
	got := Detokenize([]string{"1", "cup", "onion", ",", "chopped"})
	if got != "1 cup onion, chopped" {
		t.Fatalf("got %q", got)
	}
	got = Detokenize([]string{"1", "(", "8", "ounce", ")", "package"})
	if got != "1 (8 ounce) package" {
		t.Fatalf("got %q", got)
	}
}

func TestSourceString(t *testing.T) {
	if SourceAllRecipes.String() != "AllRecipes" || SourceFoodCom.String() != "FOOD.com" {
		t.Fatal("source names")
	}
	if Source(9).String() != "BOTH" {
		t.Fatal("unknown source should read BOTH")
	}
}

func TestCuisinesCount(t *testing.T) {
	if len(Cuisines) != 40 {
		t.Fatalf("cuisine inventory = %d, paper uses 40", len(Cuisines))
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	g := NewGenerator(SourceFoodCom, 51)
	recipes := g.Recipes(8)
	var buf strings.Builder
	if err := WriteJSONL(&buf, recipes); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recipes) {
		t.Fatalf("round trip count %d vs %d", len(back), len(recipes))
	}
	for i := range recipes {
		a, b := recipes[i], back[i]
		if a.Title != b.Title || a.Cuisine != b.Cuisine || a.Source != b.Source {
			t.Fatalf("metadata mismatch at %d", i)
		}
		if len(a.Ingredients) != len(b.Ingredients) || len(a.Instructions) != len(b.Instructions) {
			t.Fatalf("section sizes mismatch at %d", i)
		}
		for j := range a.Ingredients {
			if a.Ingredients[j].Text != b.Ingredients[j].Text {
				t.Fatalf("phrase text mismatch at %d/%d", i, j)
			}
			if len(a.Ingredients[j].Spans) != len(b.Ingredients[j].Spans) {
				t.Fatalf("span count mismatch at %d/%d", i, j)
			}
			for k := range a.Ingredients[j].Spans {
				if a.Ingredients[j].Spans[k] != b.Ingredients[j].Spans[k] {
					t.Fatalf("span mismatch at %d/%d/%d", i, j, k)
				}
			}
		}
		for j := range a.Instructions {
			if len(a.Instructions[j].Relations) != len(b.Instructions[j].Relations) {
				t.Fatalf("relation count mismatch at %d/%d", i, j)
			}
		}
	}
}

func TestReadJSONLGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{broken")); err == nil {
		t.Fatal("expected decode error")
	}
}

// TestForkDecorrelated: forked generators must be deterministic,
// mutually distinct, and stable under the prefix property (fork i of a
// wider fan-out equals fork i of a narrower one), so a worker pool can
// grow without reshuffling earlier workers' corpora.
func TestForkDecorrelated(t *testing.T) {
	wide := Fork(SourceAllRecipes, 42, 8)
	narrow := Fork(SourceAllRecipes, 42, 3)
	for i := range narrow {
		a := narrow[i].Recipes(3)
		b := wide[i].Recipes(3)
		for j := range a {
			if a[j].Title != b[j].Title {
				t.Fatalf("fork %d diverges between widths: %q vs %q", i, a[j].Title, b[j].Title)
			}
		}
	}
	// distinct streams: sibling forks must not generate the same corpus.
	again := Fork(SourceAllRecipes, 42, 8)
	first := again[0].Recipes(5)
	second := again[1].Recipes(5)
	same := 0
	for i := range first {
		if first[i].Title == second[i].Title {
			same++
		}
	}
	if same == len(first) {
		t.Fatal("fork 0 and fork 1 produced identical corpora")
	}
}

// TestForkConcurrent exercises one-generator-per-goroutine under the
// race detector: no shared mutable state between forks.
func TestForkConcurrent(t *testing.T) {
	forks := Fork(SourceFoodCom, 11, 4)
	done := make(chan int, len(forks))
	for i, g := range forks {
		go func(i int, g *Generator) {
			done <- len(g.Recipes(4))
		}(i, g)
	}
	for range forks {
		if n := <-done; n != 4 {
			t.Fatalf("fork generated %d recipes, want 4", n)
		}
	}
}
